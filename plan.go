package flowrel

import (
	"context"
	"fmt"

	"flowrel/internal/anytime"
	"flowrel/internal/core"
	"flowrel/internal/graph"
)

// Plan is a compiled reliability plan: the structure phase of the
// bottleneck decomposition — cut search, assignment enumeration and the
// O(2^{α|E|}·|V|·|E|) side realization arrays — run once and frozen. Every
// subsequent probability-only question (a sweep point, a conditional with
// some links forced up or down, a shared-risk scenario) is a Plan.Eval:
// pure aggregation, no max-flow calls, microseconds instead of a fresh
// solve. Plans are immutable and safe for concurrent use.
//
// Probabilities are evaluate-phase inputs; topology and capacities are
// compile-phase inputs. Changing a link's failure probability needs only a
// new vector, changing its capacity needs a new CompilePlan.
type Plan struct {
	core *core.Plan
	// base holds the failure probabilities of the graph this Plan was
	// requested for. The cached core.Plan may have been compiled from a
	// structurally identical graph with different probabilities, so the
	// wrapper carries its own baseline.
	base        []float64
	parallelism int
	// cached records whether the compile phase was skipped entirely
	// because the plan cache already held this structure.
	cached bool
	// g, dem and cfg are the instance this Plan answers for — kept so
	// Mutate can delta-compile successors without asking the caller to
	// re-supply what the Plan already knows.
	g   *Graph
	dem Demand
	cfg Config
}

// Mutation is one single-link change to a graph: a capacity update, a
// link addition or a link removal. It is the unit of overlay churn the
// delta compiler (Plan.Mutate) understands.
type Mutation = graph.Mutation

// MutationKind discriminates Mutation variants.
type MutationKind = graph.MutationKind

// Re-exported mutation kinds.
const (
	MutateCapacity = graph.MutateCapacity
	MutateAdd      = graph.MutateAdd
	MutateRemove   = graph.MutateRemove
)

// CompilePlan compiles the structure of (g, dem) into a reusable Plan,
// consulting the process-wide plan cache first: if the same topology,
// capacities and demand were compiled before, no max-flow work runs at
// all. Only the bottleneck-decomposition engine compiles to a plan; cfg's
// Engine field is ignored and cfg.Reduce is rejected (reductions renumber
// links, which would silently misindex every Eval vector).
func CompilePlan(g *Graph, dem Demand, cfg Config) (*Plan, error) {
	return CompilePlanCtx(context.Background(), g, dem, cfg)
}

// CompilePlanCtx is CompilePlan honouring a context and cfg.Budget during
// the compile phase. An interrupted compile returns an error wrapping
// ErrInterrupted — a half-built side array certifies nothing.
func CompilePlanCtx(ctx context.Context, g *Graph, dem Demand, cfg Config) (*Plan, error) {
	if err := cfg.Validate(g); err != nil {
		return nil, err
	}
	if cfg.Reduce {
		return nil, fmt.Errorf("flowrel: CompilePlan does not support Reduce; reductions renumber links, so Eval probability vectors would no longer address the original graph")
	}
	if g == nil {
		return nil, fmt.Errorf("flowrel: CompilePlan on a nil graph")
	}
	ctl := anytime.New(ctx, cfg.Budget)
	cp, hit, err := planFor(ctl, g, dem, cfg)
	if err != nil {
		return nil, err
	}
	return &Plan{core: cp, base: pfailOf(g), parallelism: cfg.Parallelism, cached: hit, g: g, dem: dem, cfg: cfg}, nil
}

// Mutate derives the Plan for the graph after one single-link change —
// a capacity update, a link addition or a link removal — reusing as much
// of this Plan's compile work as the change provably leaves valid. When
// the mutation stays off the bottleneck cut, only the touched side's
// affected configurations re-run max-flows; the other side's realization
// array and the kernel's tables for it transfer verbatim. The result is
// bit-identical to CompilePlan on the mutated graph, cheaper by the work
// the parent already did. The parent Plan is unchanged and remains valid.
//
// The successor is a full citizen: it is inserted into the plan cache
// under the mutated graph's own structural hash, and can itself be
// mutated, chaining through arbitrary churn. Mutations that invalidate
// the parent's decomposition (a cut link changed or removed, a structural
// re-split) fall back to a cold compile transparently — the result is
// still correct, just not cheaper.
func (p *Plan) Mutate(m Mutation) (*Plan, error) {
	return p.MutateCtx(context.Background(), m, p.cfg.Budget)
}

// MutateCtx is Mutate honouring a context and an explicit work budget for
// the delta compile. The budget meters configurations exactly as a cold
// compile of the mutated graph would, so a budget sufficient cold is
// sufficient here.
func (p *Plan) MutateCtx(ctx context.Context, m Mutation, b Budget) (*Plan, error) {
	g2, remap, err := m.Apply(p.g)
	if err != nil {
		return nil, err
	}
	cfg := p.cfg
	cfg.Budget = b
	if cfg.Bottleneck != nil {
		// A pinned bottleneck names parent-graph links; carry it through
		// the mutation's link renumbering.
		pinned := make([]EdgeID, len(cfg.Bottleneck))
		for i, id := range cfg.Bottleneck {
			if int(id) >= len(remap) || remap[id] < 0 {
				return nil, fmt.Errorf("flowrel: mutation %v removes pinned bottleneck link %d", m, id)
			}
			pinned[i] = remap[id]
		}
		cfg.Bottleneck = pinned
	}
	ctl := anytime.New(ctx, cfg.Budget)
	cp, hit, err := planForMutate(ctl, p.core, p.g, g2, p.dem, cfg, m, remap)
	if err != nil {
		return nil, err
	}
	return &Plan{core: cp, base: pfailOf(g2), parallelism: cfg.Parallelism, cached: hit, g: g2, dem: p.dem, cfg: cfg}, nil
}

// Version is the Plan's position in its mutation chain: 0 for a cold
// compile, parent version + 1 for each Mutate. A cache hit returns the
// version of whichever equivalent plan was compiled first.
func (p *Plan) Version() int { return p.core.Version() }

// Graph returns the graph this Plan was compiled for. The graph is
// immutable; mutate it through Plan.Mutate or Mutation.Apply.
func (p *Plan) Graph() *Graph { return p.g }

// Demand returns the flow demand this Plan answers for.
func (p *Plan) Demand() Demand { return p.dem }

// pfailOf collects the per-link failure probabilities of g, indexed by
// link ID.
func pfailOf(g *Graph) []float64 {
	p := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		p[i] = e.PFail
	}
	return p
}

// Eval returns the exact reliability under the given per-link failure
// probabilities (indexed by link ID; nil means the probabilities of the
// graph the Plan was compiled for). Forcing a link down is pfail[e] = 1,
// forcing it up is pfail[e] = 0 — valid for any link, bottleneck or side.
func (p *Plan) Eval(pfail []float64) (float64, error) {
	if pfail == nil {
		pfail = p.base
	}
	return p.core.Eval(pfail)
}

// EvalBatch evaluates many probability scenarios in parallel (nil entries
// mean the probabilities of the graph the Plan was requested for).
// Results are deterministic — bit-identical to per-scenario Eval —
// regardless of parallelism.
func (p *Plan) EvalBatch(scenarios [][]float64) ([]float64, error) {
	return p.EvalBatchWith(scenarios, EvalBatchOptions{})
}

// EvalBatchOptions tunes EvalBatchWith and EvalBatchInto.
type EvalBatchOptions struct {
	// Parallelism is the evaluation worker count; ≤ 0 means the
	// Config.Parallelism the Plan was compiled with (and GOMAXPROCS when
	// that is unset too). Results do not depend on it.
	Parallelism int
}

// EvalBatchWith is EvalBatch with explicit options.
func (p *Plan) EvalBatchWith(scenarios [][]float64, opt EvalBatchOptions) ([]float64, error) {
	out := make([]float64, len(scenarios))
	if err := p.EvalBatchInto(out, scenarios, opt); err != nil {
		return nil, err
	}
	return out, nil
}

// EvalBatchInto evaluates scenarios[i] into dst[i] (len(dst) must equal
// len(scenarios)) without allocating result storage — the steady-state
// form for callers that re-evaluate batches in a loop. nil scenarios
// evaluate the Plan's base probabilities directly, with no per-call
// copying.
func (p *Plan) EvalBatchInto(dst []float64, scenarios [][]float64, opt EvalBatchOptions) error {
	par := opt.Parallelism
	if par <= 0 {
		par = p.parallelism
	}
	return p.core.EvalBatchInto(dst, scenarios, core.BatchOptions{Parallelism: par, Base: p.base})
}

// Report evaluates pfail (nil = compile-time probabilities) and packages
// the result like a Compute call with EngineCore, including the
// decomposition description. MaxFlowCalls and Configs reflect the compile
// phase this Plan came from; for a cache-hit Plan they are zero — the
// evaluation itself never runs a max-flow.
func (p *Plan) Report(pfail []float64) (Report, error) {
	r, err := p.Eval(pfail)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		Reliability: r,
		Engine:      EngineCore,
		Cut:         p.Cut(),
		K:           p.core.K(),
		Alpha:       p.core.Alpha,
		Assignments: p.Assignments(),
		Lo:          r,
		Hi:          r,
	}
	if !p.cached {
		rep.MaxFlowCalls = p.core.Stats.MaxFlowCalls
		rep.Configs = p.core.Stats.SideConfigs[0] + p.core.Stats.SideConfigs[1]
	}
	return rep, nil
}

// Cached reports whether the compile phase was skipped entirely because
// the plan cache already held this structure (from an earlier CompilePlan
// or a concurrent one this call deduplicated onto).
func (p *Plan) Cached() bool { return p.cached }

// Cut returns a copy of the bottleneck link set E'.
func (p *Plan) Cut() []EdgeID {
	return append([]EdgeID(nil), p.core.Cut...)
}

// K returns the number of bottleneck links.
func (p *Plan) K() int { return p.core.K() }

// Alpha returns the balance max(|E_s|, |E_t|)/|E| of the split.
func (p *Plan) Alpha() float64 { return p.core.Alpha }

// Assignments returns a copy of the enumerated assignment family 𝒟.
func (p *Plan) Assignments() []Assignment {
	return append([]Assignment(nil), p.core.Assignments...)
}

// NumEdges returns the link count of the compiled graph; Eval vectors must
// have exactly this length.
func (p *Plan) NumEdges() int { return p.core.NumEdges() }

// BasePFail returns a copy of the failure probabilities of the graph the
// Plan was compiled for — the natural starting point for what-if vectors.
func (p *Plan) BasePFail() []float64 {
	return append([]float64(nil), p.base...)
}

// MaxFlowCalls reports the max-flow work of the compile phase that built
// this Plan's arrays; zero when the Plan came from the cache.
func (p *Plan) MaxFlowCalls() int64 {
	if p.cached {
		return 0
	}
	return p.core.Stats.MaxFlowCalls
}

// birnbaumFromPlan derives every link's conditionals from one compiled
// plan: forcing a link up is p(e) = 0, forcing it down is p(e) = 1, so
// the whole ranking is 2|E| probability evaluations — one EvalBatch
// through the block kernels — and zero max-flow calls.
func birnbaumFromPlan(g *Graph, plan *Plan) ([]LinkImportance, error) {
	base := plan.BasePFail()
	scenarios := make([][]float64, 2*g.NumEdges())
	for _, e := range g.Edges() {
		up := append([]float64(nil), base...)
		up[e.ID] = 0
		down := append([]float64(nil), base...)
		down[e.ID] = 1
		scenarios[2*e.ID] = up
		scenarios[2*e.ID+1] = down
	}
	rs, err := plan.EvalBatch(scenarios)
	if err != nil {
		return nil, err
	}
	out := make([]LinkImportance, g.NumEdges())
	for _, e := range g.Edges() {
		up, down := rs[2*e.ID], rs[2*e.ID+1]
		out[e.ID] = LinkImportance{
			Link:        e.ID,
			Birnbaum:    up - down,
			Improvement: up - ((1-e.PFail)*up + e.PFail*down),
			RUp:         up,
			RDown:       down,
		}
	}
	return out, nil
}

// upgradesFromPlan runs the greedy hardening loop against one compiled
// plan: hardening is p(e) → 0 in the probability vector, every round is
// one EvalBatch of at most |E| candidate scenarios, and the winning
// candidate's conditional IS the next round's baseline — no re-solve
// between rounds.
func upgradesFromPlan(plan *Plan, budget int) (UpgradePlan, error) {
	pf := plan.BasePFail()
	curR, err := plan.Eval(pf)
	if err != nil {
		return UpgradePlan{}, err
	}
	up := UpgradePlan{Before: curR}
	for round := 0; round < budget; round++ {
		var ids []EdgeID
		var scenarios [][]float64
		for id := range pf {
			if pf[id] == 0 {
				continue // already perfect (or hardened in an earlier round)
			}
			cand := append([]float64(nil), pf...)
			cand[id] = 0
			ids = append(ids, EdgeID(id))
			scenarios = append(scenarios, cand)
		}
		rs, err := plan.EvalBatch(scenarios)
		if err != nil {
			return UpgradePlan{}, err
		}
		bestLink := EdgeID(-1)
		bestR := curR
		for i, r := range rs {
			if r > bestR+1e-15 {
				bestR = r
				bestLink = ids[i]
			}
		}
		if bestLink < 0 {
			break // nothing improves further
		}
		pf[bestLink] = 0
		curR = bestR
		up.Links = append(up.Links, bestLink)
		up.After = append(up.After, curR)
	}
	return up, nil
}
