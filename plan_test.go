package flowrel

import (
	"math"
	"strings"
	"testing"
	"time"

	"flowrel/internal/overlay"
	"flowrel/internal/testutil"
)

// rescaleProbs rebuilds g with every link's failure probability multiplied
// by f (link IDs and capacities preserved).
func rescaleProbs(t testing.TB, g *Graph, f float64) *Graph {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNamedNode(g.NodeName(NodeID(i)))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V, e.Cap, e.PFail*f)
	}
	out, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestPlanCacheHitIdentical: the second Compute of the same instance must
// come from the plan cache — bit-identical reliability, zero compile work
// reported — and the cache counters must say so.
func TestPlanCacheHitIdentical(t *testing.T) {
	ResetPlanCache()
	g, dem := figure2Demand()
	first, err := Compute(g, dem, Config{Engine: EngineCore})
	if err != nil {
		t.Fatal(err)
	}
	if first.MaxFlowCalls == 0 {
		t.Fatal("cold solve reported no max-flow work")
	}
	second, err := Compute(g, dem, Config{Engine: EngineCore})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(second.Reliability, first.Reliability, 0) {
		t.Fatalf("cache hit changed the answer: %.17g vs %.17g", second.Reliability, first.Reliability)
	}
	if second.MaxFlowCalls != 0 || second.Configs != 0 {
		t.Fatalf("cache hit reported compile work: calls=%d configs=%d", second.MaxFlowCalls, second.Configs)
	}
	if second.K != first.K || !testutil.AlmostEqual(second.Alpha, first.Alpha, 0) || len(second.Cut) != len(first.Cut) {
		t.Fatalf("cache hit changed the decomposition: %+v vs %+v", second, first)
	}
	hits, misses, entries := PlanCacheStats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("cache stats hits=%d misses=%d entries=%d, want 1/1/1", hits, misses, entries)
	}
}

// TestPlanCacheStructuralKey: the key is topology + capacities + demand
// only. Rescaled probabilities hit the same entry and still produce the
// right answer for the *new* probabilities; a capacity change misses.
func TestPlanCacheStructuralKey(t *testing.T) {
	ResetPlanCache()
	g, dem := figure2Demand()
	if _, err := Compute(g, dem, Config{Engine: EngineCore}); err != nil {
		t.Fatal(err)
	}
	scaled := rescaleProbs(t, g, 0.5)
	rep, err := Compute(scaled, dem, Config{Engine: EngineCore})
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := PlanCacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("rescaled probabilities should hit: hits=%d misses=%d", hits, misses)
	}
	// The hit must answer for scaled's probabilities, not the cached
	// graph's: compare against a fresh solve of scaled alone.
	ResetPlanCache()
	want, err := Compute(scaled, dem, Config{Engine: EngineCore})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(rep.Reliability, want.Reliability, 0) {
		t.Fatalf("cache-hit eval %.17g != fresh solve %.17g", rep.Reliability, want.Reliability)
	}

	// A capacity change is a different structure: must miss.
	ResetPlanCache()
	if _, err := Compute(g, dem, Config{Engine: EngineCore}); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNamedNode(g.NodeName(NodeID(i)))
	}
	for _, e := range g.Edges() {
		cap := e.Cap
		if e.ID == 0 {
			cap++
		}
		b.AddEdge(e.U, e.V, cap, e.PFail)
	}
	bumped, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compute(bumped, dem, Config{Engine: EngineCore}); err != nil {
		t.Fatal(err)
	}
	_, misses, _ = PlanCacheStats()
	if misses != 2 {
		t.Fatalf("capacity change should miss: misses=%d, want 2", misses)
	}
}

// TestCompilePlanPublicAPI covers the public Plan surface: compile once,
// evaluate the base and a conditioned vector, and confirm cache-hit plans
// report zero compile work.
func TestCompilePlanPublicAPI(t *testing.T) {
	ResetPlanCache()
	g, dem := figure2Demand()
	plan, err := CompilePlan(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.MaxFlowCalls() == 0 {
		t.Fatal("cold compile reported no max-flow work")
	}
	direct, err := Compute(g, dem, Config{Engine: EngineCore})
	if err != nil {
		t.Fatal(err)
	}
	r, err := plan.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(r, direct.Reliability, 0) {
		t.Fatalf("Eval(nil) %.17g != Compute %.17g", r, direct.Reliability)
	}
	rep, err := plan.Report(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(rep.Reliability, r, 0) || rep.Engine != EngineCore || rep.K != direct.K {
		t.Fatalf("Report mismatch: %+v vs direct %+v", rep, direct)
	}

	// Conditioning every link up gives exactly 1.
	perfect := make([]float64, plan.NumEdges())
	r, err = plan.Eval(perfect)
	if err != nil {
		t.Fatal(err)
	}
	if r != 1 {
		t.Fatalf("all links perfect: R = %g, want exactly 1", r)
	}

	// Second compile of the same structure: cache hit, zero compile work.
	again, err := CompilePlan(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if again.MaxFlowCalls() != 0 {
		t.Fatalf("cache-hit plan reports %d max-flow calls, want 0", again.MaxFlowCalls())
	}
	rep2, err := again.Report(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.MaxFlowCalls != 0 || rep2.Configs != 0 {
		t.Fatalf("cache-hit Report shows compile work: %+v", rep2)
	}
	if !testutil.AlmostEqual(rep2.Reliability, direct.Reliability, 0) {
		t.Fatalf("cache-hit Report %.17g != direct %.17g", rep2.Reliability, direct.Reliability)
	}
}

// TestCompilePlanRejectsReduce: reductions renumber links, so Eval vectors
// would silently misindex — CompilePlan must refuse.
func TestCompilePlanRejectsReduce(t *testing.T) {
	g, dem := figure2Demand()
	if _, err := CompilePlan(g, dem, Config{Reduce: true}); err == nil {
		t.Fatal("CompilePlan accepted Reduce")
	} else if !strings.Contains(err.Error(), "Reduce") {
		t.Fatalf("unhelpful error: %v", err)
	}
	if _, err := CompilePlan(nil, dem, Config{}); err == nil {
		t.Fatal("CompilePlan accepted a nil graph")
	}
}

// TestPlanEvalBatchFacade: the public EvalBatch treats nil entries as the
// compile-time probabilities and agrees with sequential Eval.
func TestPlanEvalBatchFacade(t *testing.T) {
	ResetPlanCache()
	g, dem := figure2Demand()
	plan, err := CompilePlan(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	scenarios := make([][]float64, 10)
	for i := 1; i < len(scenarios); i++ {
		pf := plan.BasePFail()
		for j := range pf {
			pf[j] = pf[j] * float64(i) / float64(len(scenarios))
		}
		scenarios[i] = pf
	}
	rs, err := plan.EvalBatch(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range scenarios {
		want, err := plan.Eval(s)
		if err != nil {
			t.Fatal(err)
		}
		if rs[i] != want {
			t.Fatalf("scenario %d: batch %.17g != Eval %.17g", i, rs[i], want)
		}
	}
}

// TestPlanReuseSpeedup is the headline perf claim as a test: a 20-point
// probability sweep through one compiled plan must beat 20 independent
// cold solves by at least 5x. Kept out of -short runs: it measures wall
// time.
func TestPlanReuseSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	o, err := overlay.Clustered(6, 9, 2, 2, 2, 0.1, 6)
	if err != nil {
		t.Fatal(err)
	}
	g, dem := o.G, o.Demand(o.Peers[len(o.Peers)-1])
	const points = 20

	scenarios := make([][]float64, points)
	base := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		base[i] = e.PFail
	}
	for i := range scenarios {
		pf := append([]float64(nil), base...)
		sc := float64(i) / float64(points-1)
		for j := range pf {
			pf[j] = math.Min(pf[j]*sc*2, 0.999999)
		}
		scenarios[i] = pf
	}

	// Baseline: every point pays the full compile (cold cache each time).
	baseStart := time.Now()
	for i := 0; i < points; i++ {
		ResetPlanCache()
		scaled := rescaleProbs(t, g, math.Min(float64(i)/float64(points-1)*2, 0.9/0.1))
		if _, err := Compute(scaled, dem, Config{Engine: EngineCore}); err != nil {
			t.Fatal(err)
		}
	}
	perPoint := time.Since(baseStart)

	// Plan path: one compile, twenty evaluations.
	ResetPlanCache()
	planStart := time.Now()
	plan, err := CompilePlan(g, dem, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.EvalBatch(scenarios); err != nil {
		t.Fatal(err)
	}
	planned := time.Since(planStart)

	if perPoint < 5*planned {
		t.Fatalf("plan reuse speedup %.1fx < 5x (per-point %v, plan %v)",
			float64(perPoint)/float64(planned), perPoint, planned)
	}
	t.Logf("20-point sweep: per-point %v, compile+eval %v (%.0fx)",
		perPoint, planned, float64(perPoint)/float64(planned))
}
