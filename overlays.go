package flowrel

import (
	"flowrel/internal/bitset"
	"flowrel/internal/flowdecomp"
	"flowrel/internal/overlay"
	"flowrel/internal/sim"
)

// Overlay is a generated P2P streaming topology: a media server, the
// subscriber peers, the natural sub-stream count, and (when the generator
// guarantees one) a planted bottleneck link set.
type Overlay = overlay.Overlay

// TreeOverlay builds a single fanout-ary delivery tree of the given depth
// (links carry the whole stream: capacity d).
func TreeOverlay(fanout, depth, d int, pFail float64) (*Overlay, error) {
	return overlay.Tree(fanout, depth, d, pFail)
}

// MultiTreeOverlay builds `trees` interior-disjoint delivery trees over
// the same peers (the SplitStream construction): the stream is divided
// into `trees` unit-rate sub-streams, one per tree.
func MultiTreeOverlay(peers, trees, fanout int, pFail float64) (*Overlay, error) {
	return overlay.MultiTree(peers, trees, fanout, pFail)
}

// MeshOverlay builds a randomized acyclic push mesh: each peer pulls from
// up to inDeg earlier peers with capacities in [1, maxCap].
func MeshOverlay(peers, inDeg, maxCap, d int, pFail float64, seed int64) (*Overlay, error) {
	return overlay.Mesh(peers, inDeg, maxCap, d, pFail, seed)
}

// ClusteredOverlay builds two random clusters joined by exactly k
// bottleneck links — the regime the decomposition algorithm targets. The
// planted link set is guaranteed to be a minimal cut.
func ClusteredOverlay(sideNodes, sideEdges, k, d, maxCap int, pFail float64, seed int64) (*Overlay, error) {
	return overlay.Clustered(sideNodes, sideEdges, k, d, maxCap, pFail, seed)
}

// overlayChain adapts overlay.Chain for the facade (see ChainOverlay).
func overlayChain(blocks, blockNodes, extraEdges, k, d, maxCap int, pFail float64, seed int64) (*Overlay, [][]EdgeID, error) {
	return overlay.Chain(blocks, blockNodes, extraEdges, k, d, maxCap, pFail, seed)
}

// Figure2Overlay reconstructs the bridge graph of the paper's Fig. 2.
func Figure2Overlay() *Overlay { return overlay.Figure2() }

// Figure4Overlay reconstructs the two-bottleneck graph of the paper's
// Fig. 4 (demand 2, assignment set {(2,0), (1,1), (0,2)}).
func Figure4Overlay() *Overlay { return overlay.Figure4() }

// Path is one unit-rate delivery path of a routed sub-stream.
type Path = flowdecomp.Path

// DeliveryPaths routes the demand on the fully operational overlay and
// returns the unit-rate sub-stream paths (fewer than d paths mean the
// demand is infeasible even without failures).
func DeliveryPaths(g *Graph, dem Demand) ([]Path, error) {
	return flowdecomp.Paths(g, dem, nil)
}

// DeliveryPathsAlive is DeliveryPaths on the subgraph of operational links
// (alive[i] = link i is up; len(alive) must equal g.NumEdges()).
func DeliveryPathsAlive(g *Graph, dem Demand, alive []bool) ([]Path, error) {
	set := bitset.New(len(alive))
	for i, up := range alive {
		if up {
			set.Set(i)
		}
	}
	return flowdecomp.Paths(g, dem, set)
}

// SimConfig tunes a streaming simulation run.
type SimConfig = sim.Config

// SimReport aggregates a streaming simulation run.
type SimReport = sim.Report

// Simulate runs session-level streaming simulation: each session draws an
// independent failure configuration and routes as many sub-streams as
// survive. The empirical delivery rate converges to the exact reliability.
func Simulate(g *Graph, dem Demand, cfg SimConfig) (SimReport, error) {
	return sim.Run(g, dem, cfg)
}

// LinkDynamics is a link's alternating-renewal failure/repair process
// (exponential up-times with mean MTBF, down-times with mean MTTR).
type LinkDynamics = sim.LinkDynamics

// ContinuousConfig tunes an event-driven availability simulation.
type ContinuousConfig = sim.ContinuousConfig

// ContinuousReport aggregates an event-driven availability run.
type ContinuousReport = sim.ContinuousReport

// SimulateContinuous runs an event-driven alternating-renewal simulation
// over a time horizon: links fail and repair with exponential sojourns and
// the service state is re-evaluated at every transition. The long-run
// availability converges to the static reliability at the steady-state
// probabilities p = MTTR/(MTBF+MTTR); on top of that it reports the
// dynamics — interruption frequency and mean outage length — that a
// static reliability cannot express.
func SimulateContinuous(g *Graph, dem Demand, cfg ContinuousConfig) (ContinuousReport, error) {
	return sim.Continuous(g, dem, cfg)
}

// UniformDynamics gives every link the same MTBF and MTTR.
func UniformDynamics(g *Graph, mtbf, mttr float64) []LinkDynamics {
	return sim.UniformDynamics(g, mtbf, mttr)
}

// PFailFromMTBF converts renewal dynamics to the static failure
// probability (the steady-state unavailability MTTR/(MTBF+MTTR)).
func PFailFromMTBF(mtbf, mttr float64) float64 { return sim.PFailFromMTBF(mtbf, mttr) }
