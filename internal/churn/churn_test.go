package churn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/bitset"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/reliability"
	"flowrel/internal/testutil"
)

// pathGraph builds s → a → b → t with perfect links.
func pathGraph() (*graph.Graph, graph.Demand) {
	b := graph.NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	bb := b.AddNamedNode("b")
	t := b.AddNamedNode("t")
	b.AddEdge(s, a, 1, 0)
	b.AddEdge(a, bb, 1, 0)
	b.AddEdge(bb, t, 1, 0)
	return b.MustBuild(), graph.Demand{S: s, T: t, D: 1}
}

func TestRelayChainClosedForm(t *testing.T) {
	g, dem := pathGraph()
	peers := []Peer{{Node: 1, PFail: 0.1}, {Node: 2, PFail: 0.2}}
	inst, err := Transform(g, dem, peers)
	if err != nil {
		t.Fatal(err)
	}
	res, err := reliability.Naive(inst.G, inst.Demand, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 0.9 * 0.8 // both relays must be present; links are perfect
	if math.Abs(res.Reliability-want) > 1e-12 {
		t.Fatalf("R = %g, want %g", res.Reliability, want)
	}
}

func TestFallibleTerminalsGateEverything(t *testing.T) {
	g, dem := pathGraph()
	inst, err := Transform(g, dem, []Peer{{Node: dem.S, PFail: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := reliability.Naive(inst.G, inst.Demand, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-0.7) > 1e-12 {
		t.Fatalf("fallible source: R = %g, want 0.7", res.Reliability)
	}
	inst, err = Transform(g, dem, []Peer{{Node: dem.T, PFail: 0.25}})
	if err != nil {
		t.Fatal(err)
	}
	res, err = reliability.Naive(inst.G, inst.Demand, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-0.75) > 1e-12 {
		t.Fatalf("fallible sink: R = %g, want 0.75", res.Reliability)
	}
}

func TestRelayCapacityLimits(t *testing.T) {
	// Two parallel routes through one relay with capacity 1: d=2 fails
	// even though link capacity allows it.
	b := graph.NewBuilder()
	s := b.AddNode()
	m := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, m, 2, 0)
	b.AddEdge(m, tt, 2, 0)
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 2}
	inst, err := Transform(g, dem, []Peer{{Node: m, PFail: 0, Relay: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := reliability.Naive(inst.G, inst.Demand, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability != 0 {
		t.Fatalf("relay cap ignored: R = %g", res.Reliability)
	}
	// Relay 0 = unlimited (clipped to d): succeeds.
	inst, err = Transform(g, dem, []Peer{{Node: m, PFail: 0, Relay: 0}})
	if err != nil {
		t.Fatal(err)
	}
	res, err = reliability.Naive(inst.G, inst.Demand, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability != 1 {
		t.Fatalf("unlimited relay: R = %g, want 1", res.Reliability)
	}
}

func TestNamesAndMappings(t *testing.T) {
	g, dem := pathGraph()
	inst, err := Transform(g, dem, []Peer{{Node: 1, PFail: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if inst.G.NodeName(inst.InOf[1]) != "a.in" || inst.G.NodeName(inst.OutOf[1]) != "a.out" {
		t.Fatal("split names wrong")
	}
	if inst.InOf[0] != inst.OutOf[0] {
		t.Fatal("unsplit node halves differ")
	}
	if inst.PeerLink[1] < 0 || inst.PeerLink[0] != -1 {
		t.Fatalf("PeerLink = %v", inst.PeerLink)
	}
	e := inst.G.Edge(inst.PeerLink[1])
	if !testutil.AlmostEqual(e.PFail, 0.1, 0) {
		t.Fatal("peer link probability lost")
	}
}

func TestErrors(t *testing.T) {
	g, dem := pathGraph()
	if _, err := Transform(nil, dem, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Transform(g, graph.Demand{S: 0, T: 0, D: 1}, nil); err == nil {
		t.Fatal("bad demand accepted")
	}
	bad := [][]Peer{
		{{Node: 99, PFail: 0.1}},
		{{Node: 1, PFail: 1.0}},
		{{Node: 1, PFail: -0.1}},
		{{Node: 1, PFail: 0.1, Relay: -1}},
		{{Node: 1, PFail: 0.1}, {Node: 1, PFail: 0.2}},
	}
	for _, peers := range bad {
		if _, err := Transform(g, dem, peers); err == nil {
			t.Fatalf("bad peers %+v accepted", peers)
		}
	}
}

// bruteForce enumerates node states and link states jointly on the
// ORIGINAL graph: a failed node disables all its incident links; a relay
// bound is enforced by... the brute force only handles Relay ≥ d (or 0),
// which the property test respects.
func bruteForce(t *testing.T, g *graph.Graph, dem graph.Demand, peers []Peer) float64 {
	t.Helper()
	m := g.NumEdges()
	total := 0.0
	nP := len(peers)
	for ls := uint64(0); ls < 1<<uint(m); ls++ {
		pl := 1.0
		for i, e := range g.Edges() {
			if ls&(1<<uint(i)) != 0 {
				pl *= 1 - e.PFail
			} else {
				pl *= e.PFail
			}
		}
		for ns := uint64(0); ns < 1<<uint(nP); ns++ {
			pn := 1.0
			alive := bitset.FromMask(m, ls)
			feasible := true
			for pi, p := range peers {
				if ns&(1<<uint(pi)) != 0 { // peer failed
					pn *= p.PFail
					if p.Node == dem.S || p.Node == dem.T {
						feasible = false
					}
					for _, eid := range g.Incident(p.Node) {
						alive.Clear(int(eid))
					}
				} else {
					pn *= 1 - p.PFail
				}
			}
			if pn == 0 {
				continue
			}
			if feasible {
				nw, handles := maxflow.FromGraph(g)
				for i := range handles {
					nw.SetEnabled(handles[i], alive.Test(i))
				}
				feasible = nw.MaxFlow(int32(dem.S), int32(dem.T), dem.D) >= dem.D
			}
			if feasible {
				total += pl * pn
			}
		}
	}
	return total
}

// Property: the node-split transformation matches joint brute-force
// enumeration over node and link states.
func TestQuickTransformMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(3)
		m := 2 + rng.Intn(6)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			b.AddEdge(u, v, 1+rng.Intn(2), rng.Float64()*0.7)
		}
		g := b.MustBuild()
		dem := graph.Demand{S: 0, T: graph.NodeID(n - 1), D: 1 + rng.Intn(2)}
		// Random subset of interior nodes as fallible peers (terminals
		// excluded so the brute force's feasibility shortcut is exact).
		var peers []Peer
		for v := 1; v < n-1; v++ {
			if rng.Intn(2) == 0 {
				peers = append(peers, Peer{Node: graph.NodeID(v), PFail: rng.Float64() * 0.6})
			}
		}
		want := bruteForce(t, g, dem, peers)
		inst, err := Transform(g, dem, peers)
		if err != nil {
			return false
		}
		got, err := reliability.Naive(inst.G, inst.Demand, reliability.Options{})
		if err != nil {
			return false
		}
		if math.Abs(got.Reliability-want) > 1e-9 {
			t.Logf("seed %d: transform %.12f brute %.12f", seed, got.Reliability, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
