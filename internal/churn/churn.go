// Package churn models peer failures — the dominant fault in P2P
// streaming (§II of the paper: mesh systems are "robust against peer
// churns", trees are not). A peer that leaves takes every link it
// terminates with it, which the link-failure engines cannot express
// directly. The classical node-splitting transformation fixes that
// exactly: each fallible peer v becomes v_in → v_out joined by an internal
// link carrying the peer's failure probability (and its relay capacity),
// in-links attach to v_in, out-links to v_out. The transformed instance is
// an ordinary independent-link-failure network, so every engine in this
// library — including the bottleneck decomposition — applies unchanged.
package churn

import (
	"fmt"

	"flowrel/internal/graph"
)

// Peer describes a fallible node.
type Peer struct {
	Node graph.NodeID
	// PFail is the probability the peer is absent (churned out).
	PFail float64
	// Relay caps the total flow the peer can forward; 0 means unlimited
	// (capped internally at the demand's bit-rate, which is equivalent).
	Relay int
}

// Instance is a transformed churn model.
type Instance struct {
	G      *graph.Graph
	Demand graph.Demand
	// InOf / OutOf map original nodes to their split halves (equal for
	// nodes without a Peer entry).
	InOf  []graph.NodeID
	OutOf []graph.NodeID
	// PeerLink maps each fallible original node to its internal link
	// (-1 for nodes without one); useful for highlighting and SRLG
	// grouping.
	PeerLink []graph.EdgeID
}

// Transform builds the node-split instance for the demand dem on g. The
// demand's own terminals may appear in peers (a fallible source or sink
// makes the whole demand fail with that probability — modelled faithfully
// by splitting them too). Link failure probabilities are preserved.
func Transform(g *graph.Graph, dem graph.Demand, peers []Peer) (*Instance, error) {
	if g == nil {
		return nil, fmt.Errorf("churn: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	peerOf := make(map[graph.NodeID]Peer, len(peers))
	for _, p := range peers {
		if err := g.CheckNode(p.Node); err != nil {
			return nil, err
		}
		if p.PFail < 0 || p.PFail >= 1 {
			return nil, fmt.Errorf("churn: peer %d failure probability %g outside [0,1)", p.Node, p.PFail)
		}
		if p.Relay < 0 {
			return nil, fmt.Errorf("churn: peer %d negative relay capacity", p.Node)
		}
		if _, dup := peerOf[p.Node]; dup {
			return nil, fmt.Errorf("churn: duplicate peer entry for node %d", p.Node)
		}
		peerOf[p.Node] = p
	}

	b := graph.NewBuilder()
	inst := &Instance{
		InOf:     make([]graph.NodeID, g.NumNodes()),
		OutOf:    make([]graph.NodeID, g.NumNodes()),
		PeerLink: make([]graph.EdgeID, g.NumNodes()),
	}
	for i := 0; i < g.NumNodes(); i++ {
		inst.PeerLink[i] = -1
		name := g.NodeName(graph.NodeID(i))
		if p, ok := peerOf[graph.NodeID(i)]; ok {
			inName, outName := "", ""
			if name != "" {
				inName, outName = name+".in", name+".out"
			}
			inst.InOf[i] = b.AddNamedNode(inName)
			inst.OutOf[i] = b.AddNamedNode(outName)
			relay := p.Relay
			if relay == 0 || relay > dem.D {
				relay = dem.D
			}
			inst.PeerLink[i] = b.AddEdge(inst.InOf[i], inst.OutOf[i], relay, p.PFail)
		} else {
			n := b.AddNamedNode(name)
			inst.InOf[i] = n
			inst.OutOf[i] = n
		}
	}
	for _, e := range g.Edges() {
		b.AddEdge(inst.OutOf[e.U], inst.InOf[e.V], e.Cap, e.PFail)
	}
	gg, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.G = gg
	// The source produces at its out half; the sink consumes at its in
	// half — so a fallible terminal's internal link correctly gates the
	// whole demand.
	inst.Demand = graph.Demand{S: inst.InOf[dem.S], T: inst.OutOf[dem.T], D: dem.D}
	return inst, nil
}

// Churn events as single-link mutations. In the node-split model a peer
// leaving or rejoining IS a mutation of its internal link, so the delta
// compiler (core.MutatePlan) absorbs peer churn without re-running the
// transformation: apply the returned mutation to the instance graph (or a
// descendant of it) and patch the plan.
//
// Leave and SetRelay name the internal link by its ID in inst.G; after
// earlier mutations renumbered links, translate the ID through the
// composed remap before use. Rejoin names only node IDs, which mutations
// never renumber, so it applies to any descendant graph.

// Leave returns the mutation for peer v churning out: its internal link
// is removed, taking every path through the peer with it.
func (inst *Instance) Leave(v graph.NodeID) (graph.Mutation, error) {
	link, err := inst.peerLink(v)
	if err != nil {
		return graph.Mutation{}, err
	}
	return graph.Mutation{Kind: graph.MutateRemove, Link: link}, nil
}

// Rejoin returns the mutation for peer v churning back in: its internal
// link is re-added with the relay capacity and failure probability the
// transformation gave it. The new link lands at the end of the link
// numbering — a rejoined peer is the same peer but not the same link ID.
func (inst *Instance) Rejoin(v graph.NodeID) (graph.Mutation, error) {
	link, err := inst.peerLink(v)
	if err != nil {
		return graph.Mutation{}, err
	}
	e := inst.G.Edge(link)
	return graph.Mutation{Kind: graph.MutateAdd, U: inst.InOf[v], V: inst.OutOf[v], Cap: e.Cap, PFail: e.PFail}, nil
}

// SetRelay returns the mutation for peer v changing its forwarding
// capacity; relay follows the Transform convention (0, or anything above
// the demand bit-rate, means "unlimited", i.e. the bit-rate itself).
func (inst *Instance) SetRelay(v graph.NodeID, relay int) (graph.Mutation, error) {
	link, err := inst.peerLink(v)
	if err != nil {
		return graph.Mutation{}, err
	}
	if relay < 0 {
		return graph.Mutation{}, fmt.Errorf("churn: peer %d negative relay capacity", v)
	}
	if relay == 0 || relay > inst.Demand.D {
		relay = inst.Demand.D
	}
	return graph.Mutation{Kind: graph.MutateCapacity, Link: link, Cap: relay}, nil
}

// peerLink resolves a fallible original node to its internal link.
func (inst *Instance) peerLink(v graph.NodeID) (graph.EdgeID, error) {
	if int(v) < 0 || int(v) >= len(inst.PeerLink) {
		return -1, fmt.Errorf("churn: node %d outside the original graph", v)
	}
	if inst.PeerLink[v] < 0 {
		return -1, fmt.Errorf("churn: node %d is not a fallible peer", v)
	}
	return inst.PeerLink[v], nil
}
