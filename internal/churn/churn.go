// Package churn models peer failures — the dominant fault in P2P
// streaming (§II of the paper: mesh systems are "robust against peer
// churns", trees are not). A peer that leaves takes every link it
// terminates with it, which the link-failure engines cannot express
// directly. The classical node-splitting transformation fixes that
// exactly: each fallible peer v becomes v_in → v_out joined by an internal
// link carrying the peer's failure probability (and its relay capacity),
// in-links attach to v_in, out-links to v_out. The transformed instance is
// an ordinary independent-link-failure network, so every engine in this
// library — including the bottleneck decomposition — applies unchanged.
package churn

import (
	"fmt"

	"flowrel/internal/graph"
)

// Peer describes a fallible node.
type Peer struct {
	Node graph.NodeID
	// PFail is the probability the peer is absent (churned out).
	PFail float64
	// Relay caps the total flow the peer can forward; 0 means unlimited
	// (capped internally at the demand's bit-rate, which is equivalent).
	Relay int
}

// Instance is a transformed churn model.
type Instance struct {
	G      *graph.Graph
	Demand graph.Demand
	// InOf / OutOf map original nodes to their split halves (equal for
	// nodes without a Peer entry).
	InOf  []graph.NodeID
	OutOf []graph.NodeID
	// PeerLink maps each fallible original node to its internal link
	// (-1 for nodes without one); useful for highlighting and SRLG
	// grouping.
	PeerLink []graph.EdgeID
}

// Transform builds the node-split instance for the demand dem on g. The
// demand's own terminals may appear in peers (a fallible source or sink
// makes the whole demand fail with that probability — modelled faithfully
// by splitting them too). Link failure probabilities are preserved.
func Transform(g *graph.Graph, dem graph.Demand, peers []Peer) (*Instance, error) {
	if g == nil {
		return nil, fmt.Errorf("churn: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	peerOf := make(map[graph.NodeID]Peer, len(peers))
	for _, p := range peers {
		if err := g.CheckNode(p.Node); err != nil {
			return nil, err
		}
		if p.PFail < 0 || p.PFail >= 1 {
			return nil, fmt.Errorf("churn: peer %d failure probability %g outside [0,1)", p.Node, p.PFail)
		}
		if p.Relay < 0 {
			return nil, fmt.Errorf("churn: peer %d negative relay capacity", p.Node)
		}
		if _, dup := peerOf[p.Node]; dup {
			return nil, fmt.Errorf("churn: duplicate peer entry for node %d", p.Node)
		}
		peerOf[p.Node] = p
	}

	b := graph.NewBuilder()
	inst := &Instance{
		InOf:     make([]graph.NodeID, g.NumNodes()),
		OutOf:    make([]graph.NodeID, g.NumNodes()),
		PeerLink: make([]graph.EdgeID, g.NumNodes()),
	}
	for i := 0; i < g.NumNodes(); i++ {
		inst.PeerLink[i] = -1
		name := g.NodeName(graph.NodeID(i))
		if p, ok := peerOf[graph.NodeID(i)]; ok {
			inName, outName := "", ""
			if name != "" {
				inName, outName = name+".in", name+".out"
			}
			inst.InOf[i] = b.AddNamedNode(inName)
			inst.OutOf[i] = b.AddNamedNode(outName)
			relay := p.Relay
			if relay == 0 || relay > dem.D {
				relay = dem.D
			}
			inst.PeerLink[i] = b.AddEdge(inst.InOf[i], inst.OutOf[i], relay, p.PFail)
		} else {
			n := b.AddNamedNode(name)
			inst.InOf[i] = n
			inst.OutOf[i] = n
		}
	}
	for _, e := range g.Edges() {
		b.AddEdge(inst.OutOf[e.U], inst.InOf[e.V], e.Cap, e.PFail)
	}
	gg, err := b.Build()
	if err != nil {
		return nil, err
	}
	inst.G = gg
	// The source produces at its out half; the sink consumes at its in
	// half — so a fallible terminal's internal link correctly gates the
	// whole demand.
	inst.Demand = graph.Demand{S: inst.InOf[dem.S], T: inst.OutOf[dem.T], D: dem.D}
	return inst, nil
}
