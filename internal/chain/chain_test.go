package chain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/core"
	"flowrel/internal/graph"
	"flowrel/internal/overlay"
	"flowrel/internal/reliability"
	"flowrel/internal/testutil"
)

// threeBlocks builds s-block → cut1 → middle block → cut2 → t-block, with
// k links per cut and capacities supporting demand d.
func threeBlocks(k, d int, pCut float64) (*graph.Graph, graph.Demand, [][]graph.EdgeID) {
	b := graph.NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNode()
	// Block 0: s plus helper a.
	b.AddEdge(s, a, d, 0.1)
	// Cut 1 tails: s and a alternately.
	mid := make([]graph.NodeID, 2)
	mid[0] = b.AddNode()
	mid[1] = b.AddNode()
	b.AddEdge(mid[0], mid[1], 1, 0.15)
	end := make([]graph.NodeID, 2)
	end[0] = b.AddNode()
	end[1] = b.AddNode()
	t := b.AddNamedNode("t")
	b.AddEdge(end[0], end[1], 1, 0.15)
	b.AddEdge(end[0], t, d, 0.1)
	b.AddEdge(end[1], t, d, 0.1)

	var cut1, cut2 []graph.EdgeID
	for i := 0; i < k; i++ {
		tail := s
		if i%2 == 1 {
			tail = a
		}
		cut1 = append(cut1, b.AddEdge(tail, mid[i%2], d, pCut))
		cut2 = append(cut2, b.AddEdge(mid[i%2], end[i%2], d, pCut))
	}
	return b.MustBuild(), graph.Demand{S: s, T: t, D: d}, [][]graph.EdgeID{cut1, cut2}
}

func TestChainMatchesNaiveThreeBlocks(t *testing.T) {
	for _, k := range []int{1, 2} {
		for _, d := range []int{1, 2} {
			g, dem, cuts := threeBlocks(k, d, 0.2)
			want, err := reliability.Naive(g, dem, reliability.Options{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Solve(g, dem, cuts, Options{})
			if err != nil {
				t.Fatalf("k=%d d=%d: %v", k, d, err)
			}
			if math.Abs(res.Reliability-want.Reliability) > 1e-9 {
				t.Fatalf("k=%d d=%d: chain %.12f vs naive %.12f", k, d, res.Reliability, want.Reliability)
			}
			if len(res.Cuts) != 2 || len(res.SegmentEdges) != 3 {
				t.Fatalf("structure: %+v", res)
			}
		}
	}
}

func TestChainSingleCutMatchesCore(t *testing.T) {
	// With one cut the chain solver is exactly the paper's algorithm.
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	want, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(o.G, dem, [][]graph.EdgeID{o.Bottleneck}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-want.Reliability) > 1e-12 {
		t.Fatalf("chain %.15f vs core %.15f", res.Reliability, want.Reliability)
	}
}

func TestChainCutOrderIrrelevant(t *testing.T) {
	g, dem, cuts := threeBlocks(2, 2, 0.2)
	a, err := Solve(g, dem, cuts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, dem, [][]graph.EdgeID{cuts[1], cuts[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Reliability-b.Reliability) > 1e-12 {
		t.Fatalf("order matters: %.15f vs %.15f", a.Reliability, b.Reliability)
	}
}

func TestChainTriviallyZero(t *testing.T) {
	g, dem, cuts := threeBlocks(1, 1, 0.2)
	dem.D = 5 // cut capacity is 1
	res, err := Solve(g, dem, cuts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability != 0 {
		t.Fatalf("R = %g, want 0", res.Reliability)
	}
}

func TestChainValidationErrors(t *testing.T) {
	g, dem, cuts := threeBlocks(2, 2, 0.2)
	cases := map[string][][]graph.EdgeID{
		"no cuts":        {},
		"empty cut":      {{}},
		"out of range":   {{999}},
		"duplicate link": {cuts[0], {cuts[0][0], cuts[1][0]}},
		"not minimal":    {{cuts[0][0]}}, // one link of a 2-link cut
	}
	for name, cs := range cases {
		if _, err := Solve(g, dem, cs, Options{}); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := Solve(nil, dem, cuts, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Solve(g, graph.Demand{S: 0, T: 0, D: 1}, cuts, Options{}); err == nil {
		t.Error("bad demand accepted")
	}
	if _, err := Solve(g, dem, cuts, Options{MaxSegmentEdges: 1}); err == nil {
		t.Error("segment limit not enforced")
	}
	if _, err := Solve(g, dem, cuts, Options{MaxAssignmentSet: 1}); err == nil {
		t.Error("assignment limit not enforced")
	}
}

func TestFindAssemblesChain(t *testing.T) {
	g, dem, _ := threeBlocks(2, 2, 0.2)
	cuts, err := Find(g, dem, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cuts) < 2 {
		t.Fatalf("found %d cuts, want ≥ 2", len(cuts))
	}
	res, err := Solve(g, dem, cuts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := reliability.Naive(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-want.Reliability) > 1e-9 {
		t.Fatalf("Find+Solve %.12f vs naive %.12f", res.Reliability, want.Reliability)
	}
	// maxCuts honored.
	one, err := Find(g, dem, 2, 1)
	if err != nil || len(one) != 1 {
		t.Fatalf("maxCuts=1: %v %v", one, err)
	}
}

func TestFindNoCut(t *testing.T) {
	// Dense graph with min cut 4: maxCutSize 2 fails.
	b := graph.NewBuilder()
	n := b.AddNodes(6)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(n+graph.NodeID(i), n+graph.NodeID(j), 1, 0.1)
		}
	}
	g := b.MustBuild()
	if _, err := Find(g, graph.Demand{S: 0, T: 5, D: 1}, 2, 0); err == nil {
		t.Fatal("expected error")
	}
}

// chainGraph builds a random chain of `blocks` small random blocks joined
// by planted cuts; returns the instance and the planted cut sequence.
func chainGraph(rng *rand.Rand, blocks, blockNodes, k, d int) (*graph.Graph, graph.Demand, [][]graph.EdgeID) {
	b := graph.NewBuilder()
	prevExits := []graph.NodeID{} // tails available in the previous block
	var cuts [][]graph.EdgeID
	var s, t graph.NodeID
	for blk := 0; blk < blocks; blk++ {
		first := b.AddNodes(blockNodes)
		// Weak spanning tree inside the block, random directions.
		for i := 1; i < blockNodes; i++ {
			j := first + graph.NodeID(rng.Intn(i))
			u, v := j, first+graph.NodeID(i)
			if rng.Intn(2) == 0 {
				u, v = v, u
			}
			b.AddEdge(u, v, 1+rng.Intn(d+1), rng.Float64()*0.8)
		}
		// A couple of extra links.
		for e := 0; e < 2; e++ {
			u := first + graph.NodeID(rng.Intn(blockNodes))
			v := first + graph.NodeID(rng.Intn(blockNodes))
			if u != v {
				b.AddEdge(u, v, 1+rng.Intn(d+1), rng.Float64()*0.8)
			}
		}
		if blk == 0 {
			s = first
		}
		if blk == blocks-1 {
			t = first + graph.NodeID(blockNodes-1)
		}
		if blk > 0 {
			// Join from previous block with k cut links; ensure
			// reachability so the cut is minimal.
			var cut []graph.EdgeID
			g0 := b.MustBuild()
			entryFixed := false
			for i := 0; i < k; i++ {
				x := prevExits[rng.Intn(len(prevExits))]
				y := first + graph.NodeID(rng.Intn(blockNodes))
				if !g0.Reaches(s, x, nil) {
					b.AddEdge(s, x, d, rng.Float64()*0.5)
					g0 = b.MustBuild()
				}
				cut = append(cut, b.AddEdge(x, y, 1+rng.Intn(d), rng.Float64()*0.5))
				_ = entryFixed
			}
			cuts = append(cuts, cut)
		}
		prevExits = prevExits[:0]
		for i := 0; i < blockNodes; i++ {
			prevExits = append(prevExits, first+graph.NodeID(i))
		}
	}
	// Ensure every cut head side reaches t: patch with direct links where
	// needed (keeps minimality of each cut).
	g0 := b.MustBuild()
	for _, cut := range cuts {
		for _, eid := range cut {
			y := g0.Edge(eid).V
			if !g0.Reaches(y, t, nil) {
				b.AddEdge(y, t, d, rng.Float64()*0.5)
				g0 = b.MustBuild()
			}
		}
	}
	return b.MustBuild(), graph.Demand{S: s, T: t, D: d}, cuts
}

// Property: on random chain graphs the chain solver agrees with naive.
func TestQuickChainMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		blocks := 2 + rng.Intn(2)
		k := 1 + rng.Intn(2)
		d := 1 + rng.Intn(2)
		g, dem, cuts := chainGraph(rng, blocks, 2+rng.Intn(2), k, d)
		if g.NumEdges() > 18 {
			return true // keep naive affordable
		}
		res, err := Solve(g, dem, cuts, Options{MaxAssignmentSet: 62})
		if err != nil {
			// Planted cuts can lose minimality to the reachability
			// patches; skip those instances.
			return true
		}
		want, err := reliability.Naive(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		if math.Abs(res.Reliability-want.Reliability) > 1e-9 {
			t.Logf("seed %d: chain %.12f naive %.12f", seed, res.Reliability, want.Reliability)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the chain solver is deterministic across parallelism levels
// (per-chunk partial sums are reduced in chunk order).
func TestQuickChainParallelDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem, cuts := chainGraph(rng, 3, 3, 1+rng.Intn(2), 1+rng.Intn(2))
		a, err := Solve(g, dem, cuts, Options{Parallelism: 1, MaxAssignmentSet: 62})
		if err != nil {
			return true
		}
		b, err := Solve(g, dem, cuts, Options{Parallelism: 8, MaxAssignmentSet: 62})
		if err != nil {
			return false
		}
		return testutil.AlmostEqual(a.Reliability, b.Reliability, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Find+Solve agrees with naive whenever it succeeds.
func TestQuickFindMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem, _ := chainGraph(rng, 2+rng.Intn(2), 2, 1+rng.Intn(2), 1+rng.Intn(2))
		if g.NumEdges() > 16 {
			return true
		}
		cuts, err := Find(g, dem, 3, 0)
		if err != nil {
			return true
		}
		res, err := Solve(g, dem, cuts, Options{MaxAssignmentSet: 62})
		if err != nil {
			return true
		}
		want, err := reliability.Naive(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		return math.Abs(res.Reliability-want.Reliability) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
