package chain

import (
	"runtime"
	"sort"

	"flowrel/internal/graph"
	"flowrel/internal/mincut"
)

func defaultParallelism() int { return runtime.GOMAXPROCS(0) }

// Find greedily assembles a chain of pairwise disjoint minimal s–t cuts
// (each with at most maxCutSize links, at most maxCuts of them) that
// validates as a chain decomposition, preferring small cuts and balanced
// segments. It returns the cut sequence for Solve, or an error when not
// even a single usable cut exists.
func Find(g *graph.Graph, dem graph.Demand, maxCutSize, maxCuts int) ([][]graph.EdgeID, error) {
	candidates := mincut.EnumerateMinimal(g, dem.S, dem.T, maxCutSize)
	// Prefer small cuts; among equals, earliest links first (the
	// enumeration order is already deterministic).
	sort.SliceStable(candidates, func(i, j int) bool {
		return len(candidates[i]) < len(candidates[j])
	})
	var chosen [][]graph.EdgeID
	for _, cand := range candidates {
		if maxCuts > 0 && len(chosen) >= maxCuts {
			break
		}
		trial := append(append([][]graph.EdgeID(nil), chosen...), cand)
		if _, err := validateChain(g, dem, trial); err == nil {
			chosen = trial
		}
	}
	if len(chosen) == 0 {
		if _, err := mincut.Find(g, dem.S, dem.T, maxCutSize); err != nil {
			return nil, err
		}
		// A single bottleneck exists but did not validate as a chain —
		// cannot happen (one minimal cut is always a chain of length 1),
		// so reaching here means the candidate list was empty.
		return nil, errNoChain
	}
	return chosen, nil
}

var errNoChain = chainError("chain: no usable cut sequence found")

type chainError string

func (e chainError) Error() string { return string(e) }
