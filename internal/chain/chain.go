// Package chain generalizes the paper's decomposition from one bottleneck
// cut to a *sequence* of them — the natural extension for P2P delivery
// chains (cluster → backbone → cluster → … → subscriber).
//
// Given disjoint minimal s–t cuts C₁,…,C_r whose joint removal splits G
// into segments G₀ ∋ s, G₁, …, G_r ∋ t (cut Cᵢ joining G_{i-1} to Gᵢ),
// a failure configuration admits the demand iff there is a *sequence* of
// assignments a¹ ∈ 𝒟₁, …, aʳ ∈ 𝒟_r such that every aⁱ is supported by
// Cᵢ's surviving links, G₀ realizes a¹, G_r absorbs aʳ, and every middle
// segment Gᵢ forwards aⁱ to a^{i+1}. The segments and cuts fail
// independently, so the reliability is computed by dynamic programming
// over the distribution of the *reachable assignment set*: the random
// subset S ⊆ 𝒟ᵢ of assignments the prefix can deliver across cut Cᵢ.
// Each segment maps S through its (random) realization relation; each cut
// intersects S with its supported class.
//
// With r cuts the work is Σᵢ 2^{|Eᵢ|} segment enumerations instead of the
// single-cut 2^{α|E|} — on a chain of b equal blocks, 2^{|E|/b}·b instead
// of 2^{|E|/2}·2. The paper's algorithm is the r = 1 special case (and
// the two implementations are cross-checked against each other and
// against naive enumeration).
package chain

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"time"

	"flowrel/internal/anytime"
	"flowrel/internal/assign"
	"flowrel/internal/bitset"
	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/mincut"
	"flowrel/internal/stats"
)

// Process-wide registry metrics, charged once per Solve (see
// docs/OBSERVABILITY.md for the catalogue).
var (
	mSolves       = stats.Default.Counter("chain.solves")
	mSolveTime    = stats.Default.Timer("chain.solve_time")
	mMaxFlowCalls = stats.Default.Counter("chain.max_flow_calls")
)

// tracePhase fires one segment-transition phase event when a tracer is
// installed on the controller (the nil fast path is a single branch).
func tracePhase(ctl *anytime.Ctl, phase string, start time.Time, calls int64) {
	if tr := ctl.Tracer(); tr != nil {
		tr.OnPhase(stats.PhaseEvent{
			Engine:       "chain",
			Phase:        phase,
			Duration:     time.Since(start),
			MaxFlowCalls: calls,
		})
	}
}

// Options tunes the solver.
type Options struct {
	// MaxSegmentEdges bounds each segment's enumerated link count
	// (default 20).
	MaxSegmentEdges int
	// MaxAssignmentSet bounds each cut's |𝒟ᵢ| (default 16; the DP state
	// space is 2^{|𝒟ᵢ|}).
	MaxAssignmentSet int
	// Parallelism is the worker count for segment enumeration
	// (≤ 0 = GOMAXPROCS).
	Parallelism int
	// Ctl optionally makes the run cancellable. The assignment-set DP is
	// all-or-nothing (a half-built segment distribution certifies no mass),
	// so an interrupted run returns an error wrapping
	// anytime.ErrInterrupted; callers fall back to an engine that can
	// certify partial answers.
	Ctl *anytime.Ctl
	// TestHook, when set, is called with each segment configuration mask
	// before its feasibility checks. Tests use it to inject faults.
	TestHook func(configIndex uint64)
}

func (o *Options) setDefaults() {
	if o.MaxSegmentEdges <= 0 {
		o.MaxSegmentEdges = 20
	}
	if o.MaxAssignmentSet <= 0 {
		o.MaxAssignmentSet = 16
	}
	if o.Parallelism <= 0 {
		o.Parallelism = defaultParallelism()
	}
}

// Result is the solver's answer plus the decomposition structure.
type Result struct {
	Reliability  float64
	Cuts         [][]graph.EdgeID // the cut sequence, source side first
	SegmentEdges []int            // |E₀|, …, |E_r|
	AssignSizes  []int            // |𝒟₁|, …, |𝒟_r|
	MaxFlowCalls int64
}

// chainStructure is the validated decomposition.
type chainStructure struct {
	cuts  [][]graph.EdgeID  // ordered source→sink
	segs  []*graph.Subgraph // r+1 segments, source side first
	heads [][]graph.NodeID  // per cut i: head endpoints inside segs[i+1]
	tails [][]graph.NodeID  // per cut i: tail endpoints inside segs[i]
	ds    []*assign.Set     // per cut i: assignment family 𝒟_{i+1}... index aligned with cuts
}

// Solve computes the exact reliability using the given cut sequence. The
// cuts may be passed in any order; they are validated and sorted along
// the chain.
func Solve(g *graph.Graph, dem graph.Demand, cuts [][]graph.EdgeID, opt Options) (Result, error) {
	if g == nil {
		return Result{}, fmt.Errorf("chain: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return Result{}, err
	}
	opt.setDefaults()
	st, err := validateChain(g, dem, cuts)
	if err != nil {
		return Result{}, err
	}

	res := Result{Cuts: st.cuts}
	for _, seg := range st.segs {
		if seg.G.NumEdges() > opt.MaxSegmentEdges {
			return Result{}, fmt.Errorf("chain: segment has %d links, exceeding MaxSegmentEdges %d", seg.G.NumEdges(), opt.MaxSegmentEdges)
		}
		res.SegmentEdges = append(res.SegmentEdges, seg.G.NumEdges())
	}

	// Assignment families per cut.
	for ci, cut := range st.cuts {
		caps := make([]int, len(cut))
		for j, eid := range cut {
			caps[j] = g.Edge(eid).Cap
		}
		ds, err := assign.NewSet(caps, dem.D)
		if err != nil {
			return Result{}, err
		}
		if ds.Len() == 0 {
			res.AssignSizes = append(res.AssignSizes, 0)
			return res, nil // some cut cannot carry d at all: reliability 0
		}
		if ds.Len() > opt.MaxAssignmentSet {
			return Result{}, fmt.Errorf("chain: |𝒟_%d| = %d exceeds MaxAssignmentSet %d", ci+1, ds.Len(), opt.MaxAssignmentSet)
		}
		st.ds = append(st.ds, ds)
		res.AssignSizes = append(res.AssignSizes, ds.Len())
	}

	// dist[m] = P(reachable assignment set across the current cut = m).
	// Start with segment 0 feeding cut 1.
	solveStart := time.Now()
	segStart := solveStart
	first, calls, err := sourceDistribution(st.segs[0], st.segs[0].NodeOf[dem.S], st.tails[0], st.ds[0], dem.D, opt)
	if err != nil {
		return Result{}, err
	}
	res.MaxFlowCalls += calls
	tracePhase(opt.Ctl, "segment/0", segStart, calls)
	dist := applyCut(first, g, st.cuts[0], st.ds[0])

	// Middle segments.
	for i := 1; i < len(st.cuts); i++ {
		segStart = time.Now()
		next, calls, err := middleTransition(dist, st.segs[i],
			st.heads[i-1], st.ds[i-1], st.tails[i], st.ds[i], dem.D, opt)
		if err != nil {
			return Result{}, err
		}
		res.MaxFlowCalls += calls
		tracePhase(opt.Ctl, fmt.Sprintf("segment/%d", i), segStart, calls)
		dist = applyCut(next, g, st.cuts[i], st.ds[i])
	}

	// Final segment absorbs.
	last := len(st.cuts)
	segStart = time.Now()
	r, calls, err := sinkProbability(dist, st.segs[last], st.segs[last].NodeOf[dem.T], st.heads[last-1], st.ds[last-1], dem.D, opt)
	if err != nil {
		return Result{}, err
	}
	res.MaxFlowCalls += calls
	tracePhase(opt.Ctl, fmt.Sprintf("segment/%d", last), segStart, calls)
	res.Reliability = r
	mSolves.Inc()
	mSolveTime.Observe(time.Since(solveStart))
	mMaxFlowCalls.Add(res.MaxFlowCalls)
	return res, nil
}

// validateChain checks the cuts are disjoint minimal s–t cuts whose joint
// removal yields exactly len(cuts)+1 weak components arranged in a chain,
// and extracts the ordered structure.
func validateChain(g *graph.Graph, dem graph.Demand, cuts [][]graph.EdgeID) (*chainStructure, error) {
	if len(cuts) == 0 {
		return nil, fmt.Errorf("chain: no cuts given")
	}
	seen := make(map[graph.EdgeID]bool)
	alive := bitset.New(g.NumEdges())
	alive.SetAll()
	for _, cut := range cuts {
		if len(cut) == 0 {
			return nil, fmt.Errorf("chain: empty cut")
		}
		for _, eid := range cut {
			if eid < 0 || int(eid) >= g.NumEdges() {
				return nil, fmt.Errorf("chain: link %d out of range", eid)
			}
			if seen[eid] {
				return nil, fmt.Errorf("chain: link %d appears in two cuts", eid)
			}
			seen[eid] = true
			alive.Clear(int(eid))
		}
		if !mincut.IsMinimalCut(g, dem.S, dem.T, cut) {
			return nil, fmt.Errorf("chain: %v is not a minimal s–t cut", cut)
		}
	}
	comp, count := g.WeakComponents(alive)
	if count != len(cuts)+1 {
		return nil, fmt.Errorf("chain: removing all cuts yields %d components, want %d", count, len(cuts)+1)
	}

	// Order components along the chain: each cut joins exactly two
	// components; build the component adjacency and walk from s's side.
	type link struct{ from, to int }
	cutBetween := make(map[[2]int]int) // component pair → cut index
	for ci, cut := range cuts {
		cu, cv := -1, -1
		for _, eid := range cut {
			e := g.Edge(eid)
			u, v := comp[e.U], comp[e.V]
			if u == v {
				return nil, fmt.Errorf("chain: cut link %d lies inside one component", eid)
			}
			if cu == -1 {
				cu, cv = u, v
			} else if cu != u || cv != v {
				return nil, fmt.Errorf("chain: cut %d joins more than two components or mixes orientations", ci)
			}
		}
		key := [2]int{cu, cv}
		if _, dup := cutBetween[key]; dup {
			return nil, fmt.Errorf("chain: two cuts join the same component pair")
		}
		cutBetween[key] = ci
	}
	// Walk from s's component following forward cuts.
	order := []int{comp[dem.S]}
	cutOrder := make([]int, 0, len(cuts))
	for len(order) <= len(cuts) {
		cur := order[len(order)-1]
		next := -1
		ci := -1
		for key, idx := range cutBetween {
			if key[0] == cur {
				if next != -1 {
					return nil, fmt.Errorf("chain: component %d has two outgoing cuts; not a chain", cur)
				}
				next = key[1]
				ci = idx
			}
		}
		if next == -1 {
			return nil, fmt.Errorf("chain: chain broken after %d segments", len(order))
		}
		order = append(order, next)
		cutOrder = append(cutOrder, ci)
	}
	if order[len(order)-1] != comp[dem.T] {
		return nil, fmt.Errorf("chain: the chain does not end at the sink component")
	}

	st := &chainStructure{}
	segOf := make(map[int]int, len(order)) // component id → chain position
	for pos, c := range order {
		segOf[c] = pos
		inside := make([]bool, g.NumNodes())
		for n, cn := range comp {
			inside[n] = cn == c
		}
		st.segs = append(st.segs, g.Induced(inside))
	}
	for _, ci := range cutOrder {
		cut := append([]graph.EdgeID(nil), cuts[ci]...)
		sort.Slice(cut, func(i, j int) bool { return cut[i] < cut[j] })
		st.cuts = append(st.cuts, cut)
		pos := segOf[comp[g.Edge(cut[0]).U]]
		tails := make([]graph.NodeID, len(cut))
		heads := make([]graph.NodeID, len(cut))
		for j, eid := range cut {
			e := g.Edge(eid)
			tails[j] = st.segs[pos].NodeOf[e.U]
			heads[j] = st.segs[pos+1].NodeOf[e.V]
			if tails[j] < 0 || heads[j] < 0 {
				return nil, fmt.Errorf("chain: cut link %d endpoints not in adjacent segments", eid)
			}
		}
		st.tails = append(st.tails, tails)
		st.heads = append(st.heads, heads)
	}
	return st, nil
}

// applyCut folds a cut's failure states into the distribution: each
// surviving subset E” keeps only the assignments it supports.
func applyCut(dist []float64, g *graph.Graph, cut []graph.EdgeID, ds *assign.Set) []float64 {
	pCut := make([]float64, len(cut))
	for i, eid := range cut {
		pCut[i] = g.Edge(eid).PFail
	}
	classes := ds.Classify()
	out := make([]float64, len(dist))
	//flowrelvet:unbounded single O(2^k)·|dist| fold over one cut; the segment enumerations that drive it charge the budget (reviewed: PR-3)
	for e := uint64(0); e < uint64(1)<<uint(len(cut)); e++ {
		pe := conf.Prob(pCut, e)
		if pe == 0 {
			continue
		}
		cls := classes[e]
		for m, p := range dist {
			if p != 0 {
				out[uint64(m)&cls] += p * pe
			}
		}
	}
	return out
}

// sourceDistribution enumerates segment 0's configurations and returns the
// distribution of the realized-assignment mask over 𝒟₁.
func sourceDistribution(seg *graph.Subgraph, s graph.NodeID, tails []graph.NodeID, ds *assign.Set, d int, opt Options) ([]float64, int64, error) {
	realized, probs, calls, err := endRealizations(seg, s, tails, true, ds, d, opt)
	if err != nil {
		return nil, 0, err
	}
	dist := make([]float64, uint64(1)<<uint(ds.Len()))
	for mask, rm := range realized {
		dist[rm] += probs[mask]
	}
	return dist, calls, nil
}

// sinkProbability folds the last segment: the answer is the probability
// that the final segment absorbs at least one assignment in the reachable
// set.
func sinkProbability(dist []float64, seg *graph.Subgraph, t graph.NodeID, heads []graph.NodeID, ds *assign.Set, d int, opt Options) (float64, int64, error) {
	realized, probs, calls, err := endRealizations(seg, t, heads, false, ds, d, opt)
	if err != nil {
		return 0, 0, err
	}
	// Aggregate sink realizations densely (a map would sum in random
	// iteration order and break bit-determinism), then pair with the
	// prefix distribution.
	agg := make([]float64, uint64(1)<<uint(ds.Len()))
	for mask, rm := range realized {
		agg[rm] += probs[mask]
	}
	total := 0.0
	for m, p := range dist {
		if p == 0 {
			continue
		}
		for rm, q := range agg {
			if q != 0 && uint64(m)&uint64(rm) != 0 {
				total += p * q
			}
		}
	}
	return total, calls, nil
}

// endRealizations is the §III-C side-array construction for an end
// segment: for each failure configuration, the bitmask over ds of the
// assignments it realizes. toSink=true for the source segment (route from
// the terminal to the cut tails), false for the sink segment (from the cut
// heads to the terminal).
func endRealizations(seg *graph.Subgraph, terminal graph.NodeID, ends []graph.NodeID, toSink bool, ds *assign.Set, d int, opt Options) ([]uint64, []float64, int64, error) {
	m := seg.G.NumEdges()
	if m > conf.MaxEnumEdges {
		return nil, nil, 0, &conf.ErrTooManyEdges{N: m, Where: "chain segment"}
	}
	proto := maxflow.New(seg.G.NumNodes())
	super := proto.AddNode()
	handles := make([]maxflow.Handle, m)
	for _, e := range seg.G.Edges() {
		handles[e.ID] = proto.AddDirected(int32(e.U), int32(e.V), e.Cap)
	}
	demandArcs := make([]maxflow.Handle, len(ends))
	for i, x := range ends {
		if toSink {
			demandArcs[i] = proto.AddDirected(int32(x), super, 0)
		} else {
			demandArcs[i] = proto.AddDirected(super, int32(x), 0)
		}
	}
	src, dst := int32(terminal), super
	if !toSink {
		src, dst = super, int32(terminal)
	}

	realized := make([]uint64, uint64(1)<<uint(m))
	probs := make([]float64, uint64(1)<<uint(m))
	pFail := make([]float64, m)
	for i, e := range seg.G.Edges() {
		pFail[i] = e.PFail
	}
	table := conf.NewTable(pFail)
	if err := table.Iter(func(mask conf.Mask, p float64) { probs[mask] = p }); err != nil {
		return nil, nil, 0, err
	}

	var calls int64
	var mu sync.Mutex
	chunks := conf.SplitEnum(m)
	for j, a := range ds.Assignments {
		for i := range demandArcs {
			proto.SetBaseCapDirected(demandArcs[i], a[i])
		}
		bit := uint64(1) << uint(j)
		errs := make([]error, len(chunks))
		var wg sync.WaitGroup
		sem := make(chan struct{}, opt.Parallelism)
		for ci, r := range chunks {
			wg.Add(1)
			go func(ci int, lo, hi uint64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cur := lo
				defer anytime.RecoverInto(&errs[ci], opt.Ctl, "chain end-segment worker", &cur)
				if opt.Ctl.Stopped() {
					return
				}
				nw := proto.Clone()
				prev := ^uint64(0)
				width := uint64(1)<<uint(m) - 1
				var sinceCheck uint64
				var callsMark int64
				for mask := lo; mask < hi; mask++ {
					if sinceCheck >= anytime.CheckEvery {
						if !opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark) {
							break
						}
						sinceCheck, callsMark = 0, nw.Stats.MaxFlowCalls
					}
					sinceCheck++
					cur = mask
					if opt.TestHook != nil {
						opt.TestHook(mask)
					}
					diff := (mask ^ prev) & width
					for diff != 0 {
						i := bits.TrailingZeros64(diff)
						diff &= diff - 1
						nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
					}
					prev = mask
					if nw.MaxFlow(src, dst, d) >= d {
						realized[mask] |= bit
					}
				}
				opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark)
				mu.Lock()
				calls += nw.Stats.MaxFlowCalls
				mu.Unlock()
			}(ci, r[0], r[1])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, nil, calls, err
			}
		}
		if opt.Ctl.Stopped() {
			return nil, nil, calls, fmt.Errorf("chain: segment enumeration interrupted: %w", opt.Ctl.Err())
		}
	}
	return realized, probs, calls, nil
}

// middleTransition pushes the reachable-set distribution through one
// middle segment: for each failure configuration of the segment, the
// relation rows[a] ⊆ 𝒟_{next} (which outgoing assignments the
// configuration can forward incoming assignment a to) maps every
// reachable set S to its image ∪_{a∈S} rows[a].
func middleTransition(dist []float64, seg *graph.Subgraph, heads []graph.NodeID, dsIn *assign.Set, tails []graph.NodeID, dsOut *assign.Set, d int, opt Options) ([]float64, int64, error) {
	m := seg.G.NumEdges()
	if m > conf.MaxEnumEdges {
		return nil, 0, &conf.ErrTooManyEdges{N: m, Where: "chain segment"}
	}
	// Collect the active states once; the image computation is linear in
	// the number of live masks rather than 2^{|𝒟in|}.
	type state struct {
		mask uint64
		p    float64
	}
	var active []state
	for mk, p := range dist {
		if p != 0 {
			active = append(active, state{uint64(mk), p})
		}
	}
	out := make([]float64, uint64(1)<<uint(dsOut.Len()))
	if len(active) == 0 {
		return out, 0, nil
	}

	proto := maxflow.New(seg.G.NumNodes())
	superIn := proto.AddNode()
	superOut := proto.AddNode()
	handles := make([]maxflow.Handle, m)
	for _, e := range seg.G.Edges() {
		handles[e.ID] = proto.AddDirected(int32(e.U), int32(e.V), e.Cap)
	}
	inArcs := make([]maxflow.Handle, len(heads))
	for i, y := range heads {
		inArcs[i] = proto.AddDirected(superIn, int32(y), 0)
	}
	outArcs := make([]maxflow.Handle, len(tails))
	for i, x := range tails {
		outArcs[i] = proto.AddDirected(int32(x), superOut, 0)
	}

	pFail := make([]float64, m)
	for i, e := range seg.G.Edges() {
		pFail[i] = e.PFail
	}
	table := conf.NewTable(pFail)

	chunks := conf.SplitEnum(m)
	partial := make([][]float64, len(chunks))
	callsPer := make([]int64, len(chunks))
	errs := make([]error, len(chunks))

	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Parallelism)
	for ci, r := range chunks {
		wg.Add(1)
		go func(ci int, lo, hi uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cur := lo
			defer anytime.RecoverInto(&errs[ci], opt.Ctl, "chain middle-segment worker", &cur)
			if opt.Ctl.Stopped() {
				return
			}
			nw := proto.Clone()
			local := make([]float64, len(out))
			rows := make([]uint64, dsIn.Len())
			width := uint64(1)<<uint(m) - 1
			prev := ^uint64(0)
			var callsMark int64
			for mask := lo; mask < hi; mask++ {
				// Each configuration costs |𝒟in|·|𝒟out| max flows, so a
				// per-configuration charge is already amortized.
				if !opt.Ctl.Charge(1, nw.Stats.MaxFlowCalls-callsMark) {
					break
				}
				callsMark = nw.Stats.MaxFlowCalls
				cur = mask
				if opt.TestHook != nil {
					opt.TestHook(mask)
				}
				diff := (mask ^ prev) & width
				for diff != 0 {
					i := bits.TrailingZeros64(diff)
					diff &= diff - 1
					nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
				}
				prev = mask
				// The relation of this configuration.
				for ai, a := range dsIn.Assignments {
					rows[ai] = 0
					for i := range inArcs {
						nw.SetBaseCapDirected(inArcs[i], a[i])
					}
					for bi, b := range dsOut.Assignments {
						for i := range outArcs {
							nw.SetBaseCapDirected(outArcs[i], b[i])
						}
						if nw.MaxFlow(superIn, superOut, d) >= d {
							rows[ai] |= 1 << uint(bi)
						}
					}
				}
				pc := table.Prob(mask)
				for _, st := range active {
					var img uint64
					rem := st.mask
					for rem != 0 {
						ai := bits.TrailingZeros64(rem)
						rem &= rem - 1
						img |= rows[ai]
					}
					local[img] += st.p * pc
				}
			}
			partial[ci] = local
			callsPer[ci] = nw.Stats.MaxFlowCalls
		}(ci, r[0], r[1])
	}
	wg.Wait()

	var calls int64
	for ci := range callsPer {
		calls += callsPer[ci]
	}
	for _, err := range errs {
		if err != nil {
			return nil, calls, err
		}
	}
	if opt.Ctl.Stopped() {
		return nil, calls, fmt.Errorf("chain: segment enumeration interrupted: %w", opt.Ctl.Err())
	}
	for ci := range partial {
		for mk, p := range partial[ci] {
			out[mk] += p
		}
	}
	return out, calls, nil
}
