package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestKernelMatchesScalarCorpus: on ≥ 50 random planted-bottleneck
// graphs, under both accumulation strategies, the compiled kernel must
// reproduce the scalar evaluate phase to 1e-12 — at the base
// probabilities, at a random re-weighting, and with a random link
// conditioned up (p = 0) and down (p = 1). Batch evaluation of the same
// vectors must match single-scenario Eval bit for bit.
func TestKernelMatchesScalarCorpus(t *testing.T) {
	const wantGraphs = 50
	count := 0
	for seed := int64(0); count < wantGraphs && seed < 50*wantGraphs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		d := 1 + rng.Intn(3)
		g, dem, cut := plantBottleneck(rng, 2+rng.Intn(3), 2+rng.Intn(4), k, d)
		counted := false
		for _, accum := range []Accumulation{AccumZeta, AccumDirect} {
			opt := Options{Bottleneck: cut, MaxAssignmentSet: 62, Accum: accum}
			plan, err := Compile(g, dem, opt)
			if err != nil {
				opt = Options{MaxAssignmentSet: 62, Accum: accum}
				plan, err = Compile(g, dem, opt)
				if err != nil {
					continue
				}
			}
			if plan.kern == nil {
				continue // trivially-zero plan: no kernel to compare
			}
			if !counted {
				count++
				counted = true
			}

			pf := plan.BasePFail()
			vectors := [][]float64{plan.BasePFail()}
			re := plan.BasePFail()
			for i := range re {
				re[i] = rng.Float64() * 0.95
			}
			vectors = append(vectors, re)
			link := rng.Intn(len(pf))
			up := append([]float64(nil), re...)
			up[link] = 0
			down := append([]float64(nil), re...)
			down[link] = 1
			vectors = append(vectors, up, down)

			for vi, v := range vectors {
				got, err := plan.Eval(v)
				if err != nil {
					t.Fatalf("seed %d accum %d vector %d: Eval: %v", seed, accum, vi, err)
				}
				want, err := plan.EvalScalar(v)
				if err != nil {
					t.Fatalf("seed %d accum %d vector %d: EvalScalar: %v", seed, accum, vi, err)
				}
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("seed %d accum %d vector %d: kernel %.17g vs scalar %.17g", seed, accum, vi, got, want)
				}
			}

			dst := make([]float64, len(vectors))
			if err := plan.EvalBatchInto(dst, vectors, BatchOptions{}); err != nil {
				t.Fatalf("seed %d accum %d: EvalBatchInto: %v", seed, accum, err)
			}
			for vi, v := range vectors {
				want, err := plan.Eval(v)
				if err != nil {
					t.Fatal(err)
				}
				if dst[vi] != want {
					t.Fatalf("seed %d accum %d vector %d: batch %.17g != Eval %.17g", seed, accum, vi, dst[vi], want)
				}
			}
		}
	}
	if count < wantGraphs {
		t.Fatalf("corpus produced only %d usable graphs, want ≥ %d", count, wantGraphs)
	}
}

// TestKernelSIMDLevels: every SIMD dispatch level supported by the host
// must produce bit-identical batch results — vectorization is a speed
// choice, never a numeric one.
func TestKernelSIMDLevels(t *testing.T) {
	detected := kernelSIMD
	defer func() { kernelSIMD = detected }()

	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(23))
	scenarios := make([][]float64, 40)
	for i := range scenarios {
		pf := plan.BasePFail()
		for j := range pf {
			pf[j] = rng.Float64()
		}
		scenarios[i] = pf
	}

	var want []float64
	for level := simdNone; level <= detected; level++ {
		kernelSIMD = level
		got := make([]float64, len(scenarios))
		if err := plan.EvalBatchInto(got, scenarios, BatchOptions{}); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if want == nil {
			want = got
			continue
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("level %d scenario %d: %.17g != portable %.17g", level, i, got[i], want[i])
			}
		}
	}
}

// TestEvalBatchBoundedConcurrency is the regression test for the
// goroutine-per-scenario dispatch the worker pool replaced: a large
// batch at parallelism 2 must never have more than two workers (plus the
// caller and ambient test goroutines) alive, where the old code spawned
// one goroutine per scenario up front.
func TestEvalBatchBoundedConcurrency(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	scenarios := make([][]float64, 512)
	pf := plan.BasePFail()
	for i := range scenarios {
		scenarios[i] = pf
	}
	baseline := runtime.NumGoroutine()
	var maxSeen atomic.Int64
	plan.setBlockHook(func() {
		n := int64(runtime.NumGoroutine())
		for {
			m := maxSeen.Load()
			if n <= m || maxSeen.CompareAndSwap(m, n) {
				return
			}
		}
	})
	defer plan.setBlockHook(nil)
	dst := make([]float64, len(scenarios))
	if err := plan.EvalBatchInto(dst, scenarios, BatchOptions{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	// Generous slack for runtime helpers; the pre-pool dispatch reached
	// baseline + hundreds here.
	if limit := int64(baseline + 2 + 8); maxSeen.Load() > limit {
		t.Fatalf("saw %d goroutines during a parallelism-2 batch (baseline %d): dispatch is not bounded", maxSeen.Load(), baseline)
	}
}

// TestEvalBatchSharedPlanConcurrent hammers one Plan from several
// goroutines, each running batches with different worker counts — the
// immutability contract under -race, with every caller getting the
// deterministic answers.
func TestEvalBatchSharedPlanConcurrent(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	scenarios := make([][]float64, 48)
	for i := range scenarios {
		pf := plan.BasePFail()
		for j := range pf {
			pf[j] = rng.Float64() * 0.9
		}
		scenarios[i] = pf
	}
	want, err := plan.EvalBatch(scenarios, 1)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := make([]float64, len(scenarios))
			for iter := 0; iter < 5; iter++ {
				if err := plan.EvalBatchInto(dst, scenarios, BatchOptions{Parallelism: 1 + w%4}); err != nil {
					errs[w] = err
					return
				}
				for i := range dst {
					if dst[i] != want[i] {
						errs[w] = fmt.Errorf("worker %d scenario %d: %.17g != %.17g", w, i, dst[i], want[i])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestEvalBatchIntoQuick: property check that EvalBatchInto agrees bit
// for bit with per-scenario Eval on randomized scenario sets that mix
// interior probabilities with the 0/1 conditioning sentinels and nil
// (base) rows.
func TestEvalBatchIntoQuick(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64, count uint8, par uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		scenarios := make([][]float64, int(count%21))
		for i := range scenarios {
			if rng.Intn(6) == 0 {
				continue // nil: base probabilities
			}
			pf := plan.BasePFail()
			for j := range pf {
				switch rng.Intn(10) {
				case 0:
					pf[j] = 0
				case 1:
					pf[j] = 1
				default:
					pf[j] = rng.Float64()
				}
			}
			scenarios[i] = pf
		}
		dst := make([]float64, len(scenarios))
		if err := plan.EvalBatchInto(dst, scenarios, BatchOptions{Parallelism: int(par%5) - 1}); err != nil {
			t.Logf("EvalBatchInto: %v", err)
			return false
		}
		for i, pf := range scenarios {
			want, err := plan.Eval(pf)
			if err != nil {
				t.Logf("Eval: %v", err)
				return false
			}
			if dst[i] != want {
				t.Logf("scenario %d: batch %.17g != Eval %.17g", i, dst[i], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestEvalBatchIntoBase: nil scenarios evaluate BatchOptions.Base when
// set (no per-scenario copying), the compile-time probabilities
// otherwise; dst sizing and base validation fail loudly.
func TestEvalBatchIntoBase(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	base := plan.BasePFail()
	for i := range base {
		base[i] = base[i] * 0.5
	}
	explicit := append([]float64(nil), base...)
	dst := make([]float64, 3)
	if err := plan.EvalBatchInto(dst, [][]float64{nil, explicit, nil}, BatchOptions{Base: base}); err != nil {
		t.Fatal(err)
	}
	want, err := plan.Eval(base)
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range dst {
		if got != want {
			t.Fatalf("entry %d: %.17g != Eval(base) %.17g", i, got, want)
		}
	}

	if err := plan.EvalBatchInto(make([]float64, 2), [][]float64{nil}, BatchOptions{}); err == nil {
		t.Fatal("dst/scenario length mismatch accepted")
	}
	bad := append([]float64(nil), base...)
	bad[0] = math.NaN()
	err = plan.EvalBatchInto(make([]float64, 1), [][]float64{nil}, BatchOptions{Base: bad})
	if err == nil || !strings.Contains(err.Error(), "base") {
		t.Fatalf("invalid base not rejected as base: %v", err)
	}
	if err := plan.EvalBatchInto(nil, nil, BatchOptions{}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestKernelGroupByRealized sanity-checks the counting sort: the
// permutation must list every configuration exactly once, grouped by
// realized mask with ascending masks inside each group (the scalar
// scatter's addition order).
func TestKernelGroupByRealized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(8)
		realized := make([]uint64, 1<<uint(m))
		for i := range realized {
			realized[i] = uint64(rng.Intn(1 << uint(n)))
		}
		perm, segRM, segOff := groupByRealized(realized, n)
		if len(perm) != len(realized) {
			t.Fatalf("trial %d: perm covers %d of %d configs", trial, len(perm), len(realized))
		}
		if len(segOff) != len(segRM)+1 || segOff[len(segRM)] != int32(len(realized)) {
			t.Fatalf("trial %d: inconsistent segment offsets", trial)
		}
		seen := make([]bool, len(realized))
		for s, rm := range segRM {
			if s > 0 && segRM[s-1] >= rm {
				t.Fatalf("trial %d: segment masks not ascending", trial)
			}
			group := perm[segOff[s]:segOff[s+1]]
			for i, mask := range group {
				if realized[mask] != uint64(rm) {
					t.Fatalf("trial %d: config %d grouped under rm %d, realized %d", trial, mask, rm, realized[mask])
				}
				if i > 0 && group[i-1] >= mask {
					t.Fatalf("trial %d: group for rm %d not in ascending mask order", trial, rm)
				}
				if seen[mask] {
					t.Fatalf("trial %d: config %d listed twice", trial, mask)
				}
				seen[mask] = true
			}
		}
	}
}
