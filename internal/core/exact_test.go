package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
	"flowrel/internal/reliability"
)

// TestExactDecompositionEqualsExactNaive asserts big.Rat EQUALITY between
// the decomposition (run entirely in rational arithmetic) and the exact
// naive enumeration: the algorithm is exactly correct, with zero
// tolerance, on the paper's worked examples.
func TestExactDecompositionEqualsExactNaive(t *testing.T) {
	for name, mk := range map[string]func() (*graph.Graph, graph.Demand, []graph.EdgeID){
		"bridge": func() (*graph.Graph, graph.Demand, []graph.EdgeID) {
			g, dem, bridge := bridgeGraph()
			return g, dem, []graph.EdgeID{bridge}
		},
		"twoBottleneck": func() (*graph.Graph, graph.Demand, []graph.EdgeID) {
			return twoBottleneck()
		},
	} {
		g, dem, cut := mk()
		want, err := reliability.NaiveExact(g, dem)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReliabilityExact(g, dem, Options{Bottleneck: cut})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Cmp(want) != 0 {
			t.Fatalf("%s: decomposition %s != naive %s", name, got.RatString(), want.RatString())
		}
	}
}

func TestExactTriviallyZero(t *testing.T) {
	g, dem, _ := bridgeGraph()
	dem.D = 3
	r, err := ReliabilityExact(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Sign() != 0 {
		t.Fatalf("R = %s, want 0", r.RatString())
	}
}

func TestExactErrors(t *testing.T) {
	g, dem, _ := twoBottleneck()
	if _, err := ReliabilityExact(nil, dem, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := ReliabilityExact(g, graph.Demand{S: 0, T: 0, D: 1}, Options{}); err == nil {
		t.Fatal("bad demand accepted")
	}
	if _, err := ReliabilityExact(g, dem, Options{MaxAssignmentSet: 1}); err == nil {
		t.Fatal("assignment limit not enforced")
	}
	if _, err := ReliabilityExact(g, dem, Options{Bottleneck: []graph.EdgeID{0}}); err == nil {
		t.Fatal("non-cut accepted")
	}
}

// Property: rational decomposition equals rational naive exactly, and the
// float decomposition is within float tolerance of both.
func TestQuickExactDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem, cut := plantBottleneck(rng, 2+rng.Intn(2), 2+rng.Intn(3), 1+rng.Intn(2), 1+rng.Intn(2))
		if g.NumEdges() > 14 {
			return true
		}
		exact, err := ReliabilityExact(g, dem, Options{Bottleneck: cut, MaxAssignmentSet: 62})
		if err != nil {
			return true // planted cut may fail minimality; skip
		}
		want, err := reliability.NaiveExact(g, dem)
		if err != nil {
			return false
		}
		if exact.Cmp(want) != 0 {
			t.Logf("seed %d: %s != %s", seed, exact.RatString(), want.RatString())
			return false
		}
		fl, err := Reliability(g, dem, Options{Bottleneck: cut, MaxAssignmentSet: 62})
		if err != nil {
			return false
		}
		ef, _ := exact.Float64()
		return math.Abs(fl.Reliability-ef) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
