package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/subset"
)

// This file is the data-oriented evaluate phase. Compile flattens the two
// closure-driven walks of the scalar evaluator into immutable tables:
//
//   - the per-bottleneck-configuration submask walk (classes[e] →
//     subset.Submasks callbacks) becomes a term table — one (x, sign)
//     entry per inclusion–exclusion term, grouped per configuration — so
//     evaluation is a linear pass over two contiguous slices;
//   - the realized arrays are grouped by realized-assignment mask into a
//     permutation plus segment table, so aggregateInto's random scatter
//     q[rm] += probs[mask] becomes independent segmented sums.
//
// Two kernels consume the tables. The one-lane kernel evaluates a single
// scenario over plain float64 arrays. The eight-lane kernel carries eight
// scenarios together in structure-of-arrays layout ([8]float64 lattice
// entries — one cache line each): the doubling construction, segmented
// aggregation, zeta transform and inclusion–exclusion all run stride-1
// over the lane dimension, turning the scalar evaluator's single serial
// floating-point dependency chain into eight independent ones.
//
// Every per-lane operation happens in exactly the one-lane kernel's
// order, so lane l of a block evaluation is bit-identical to evaluating
// scenario l alone — the contract TestKernelLaneEquivalence and
// TestPlanEvalBatchDeterministic enforce. The one-lane kernel in turn
// reproduces the original scalar evaluator (EvalScalar) bit for bit on
// the zeta path: segment sums add in the scatter's ascending-mask order,
// the term signs fold the parity negation (r += (-parity)·qs·qt is
// exactly r -= parity·qs·qt), and the configuration walk keeps its
// ascending order.

// batchLanes is the wide kernel's block width.
const batchLanes = 8

// block8 is one lattice entry of the eight-lane kernel.
type block8 = [8]float64

// Kernel construction guards. Outside these bounds the plan keeps only
// the scalar evaluator: the tables would cost more memory than the
// locality buys back.
const (
	// maxKernelSideEdges bounds 2^m per side so the permutation fits
	// uint32 and the lane-block probs arrays stay addressable.
	maxKernelSideEdges = 26
	// maxKernelAssignments bounds the dense lattice 2^n (counting-sort
	// counters and the zeta-path q arrays).
	maxKernelAssignments = 20
	// maxKernelTerms bounds the flattened inclusion–exclusion table
	// (Σ_e 2^|classes[e]| entries).
	maxKernelTerms = 1 << 22
	// maxBlockScratchFloats bounds the eight-lane scratch (in float64s,
	// ≈32MB); past it the batch path falls back to one-lane evaluation.
	maxBlockScratchFloats = 4 << 20
)

// kernelCfg is one bottleneck configuration E″ with a non-empty
// assignment class: its cut mask and its term range in the term table.
type kernelCfg struct {
	cut      uint64
	off, end int32
}

// evalKernel is the compile-time table set. Immutable after Compile.
type evalKernel struct {
	lanes int // batch block width (batchLanes, or 1 when scratch is too big)

	// Inclusion–exclusion term table, grouped per configuration in
	// ascending cut-mask order; within a configuration the terms follow
	// the descending Submasks order of the scalar walk. termSign[t] is
	// -PopcountParity(termX[t]).
	cfgs     []kernelCfg
	termX    []uint32
	termSign []float64
	// termXi maps each term to its index in xs, the deduplicated lattice
	// points; the direct (sparse) path computes each point once.
	termXi []int32
	xs     []uint32

	// Segmented aggregation, per side: perm lists the side configuration
	// masks grouped by realized mask (ascending mask within each group —
	// the scatter's addition order); segment s covers
	// perm[segOff[s]:segOff[s+1]] and has realized mask segRM[s].
	perm   [2][]uint32
	segRM  [2][]uint32
	segOff [2][]int32
}

// kscratch1 is the one-lane kernel's per-evaluation scratch. The zeta
// path uses q as the dense lattice; the direct path reuses q for the
// per-segment sums and px for the deduplicated superset probabilities.
type kscratch1 struct {
	probs [2][]float64
	q     [2][]float64
	px    [2][]float64
	pCut  []float64
}

// kscratch8 is the eight-lane kernel's per-worker scratch (same roles,
// lane blocks).
type kscratch8 struct {
	probs [2][]block8
	q     [2][]block8
	px    [2][]block8
	pcF   []block8
	pcL   []block8
	rows  [8][]float64
}

// compileKernel flattens the compiled structure into the evaluate-phase
// tables and returns them, or nil when the instance is outside the
// kernel guards (the plan then keeps the scalar evaluator only). It only
// reads the Plan; plan.go installs the result — Plan writes stay in the
// compile phase planimmut polices.
func (p *Plan) compileKernel() *evalKernel {
	n := p.ds.Len()
	if n > maxKernelAssignments || p.SideEdges[0] > maxKernelSideEdges || p.SideEdges[1] > maxKernelSideEdges {
		return nil
	}
	terms := 0
	//flowrelvet:unbounded compile phase: the 2^k·2^|𝒟| term count is bounded by the compiled plan's size and the full exponential cost was charged to the Ctl during the side builds (reviewed: PR-7).
	for e := uint64(0); e < uint64(1)<<uint(len(p.Cut)); e++ {
		dMask := p.classes[e]
		if dMask == 0 {
			continue
		}
		terms += (1 << uint(popcount(dMask))) - 1
	}
	if terms == 0 || terms > maxKernelTerms {
		return nil
	}

	k := &evalKernel{
		termX:    make([]uint32, 0, terms),
		termSign: make([]float64, 0, terms),
		termXi:   make([]int32, 0, terms),
	}
	xi := make([]int32, uint64(1)<<uint(n))
	for i := range xi {
		xi[i] = -1
	}
	//flowrelvet:unbounded compile phase: same 2^k walk as above — plan-sized, budget charged during Compile (reviewed: PR-7).
	for e := uint64(0); e < uint64(1)<<uint(len(p.Cut)); e++ {
		dMask := p.classes[e]
		if dMask == 0 {
			continue
		}
		off := int32(len(k.termX))
		subset.Submasks(dMask, func(x uint64) {
			if x == 0 {
				return
			}
			if xi[x] < 0 {
				xi[x] = int32(len(k.xs))
				k.xs = append(k.xs, uint32(x))
			}
			k.termX = append(k.termX, uint32(x))
			k.termSign = append(k.termSign, -subset.PopcountParity(x))
			k.termXi = append(k.termXi, xi[x])
		})
		k.cfgs = append(k.cfgs, kernelCfg{cut: e, off: off, end: int32(len(k.termX))})
	}

	for side := 0; side < 2; side++ {
		k.perm[side], k.segRM[side], k.segOff[side] = groupByRealized(p.realized[side], n)
	}

	k.lanes = batchLanes
	if k.scratchFloats(p, n)*batchLanes > maxBlockScratchFloats {
		k.lanes = 1
	}
	mKernelBuilds.Inc()
	mKernelTermEntries.Add(int64(len(k.termX)))
	return k
}

// compileKernelDelta builds the evaluate-phase tables for a mutated plan,
// sharing every table the mutation cannot touch: the term tables depend
// only on the bottleneck classes (identical by construction — the delta
// path shares the parent's assignment set), and the untouched side's
// segment grouping depends only on its realization array, which
// transferred verbatim. Only the touched side's grouping is recomputed,
// from the same groupByRealized a cold compile runs, so the resulting
// kernel is entry-for-entry identical to a cold build's. Like
// compileKernel it only reads the plans; plan.go installs the result.
func (p *Plan) compileKernelDelta(parent *Plan, touched int) *evalKernel {
	pk := parent.kern
	if pk == nil {
		// The parent was outside the kernel guards; re-derive from
		// scratch — the mutation may have moved the instance inside them.
		return p.compileKernel()
	}
	n := p.ds.Len()
	if n > maxKernelAssignments || p.SideEdges[0] > maxKernelSideEdges || p.SideEdges[1] > maxKernelSideEdges {
		return nil
	}
	k := &evalKernel{
		cfgs:     pk.cfgs,
		termX:    pk.termX,
		termSign: pk.termSign,
		termXi:   pk.termXi,
		xs:       pk.xs,
	}
	other := 1 - touched
	k.perm[other], k.segRM[other], k.segOff[other] = pk.perm[other], pk.segRM[other], pk.segOff[other]
	k.perm[touched], k.segRM[touched], k.segOff[touched] = groupByRealized(p.realized[touched], n)
	k.lanes = batchLanes
	if k.scratchFloats(p, n)*batchLanes > maxBlockScratchFloats {
		k.lanes = 1
	}
	mKernelBuilds.Inc()
	return k
}

// scratchFloats is the per-lane float64 footprint of one evaluation
// scratch — the block width multiplies it.
func (k *evalKernel) scratchFloats(p *Plan, n int) int {
	f := (1 << uint(p.SideEdges[0])) + (1 << uint(p.SideEdges[1]))
	if p.accum == AccumDirect {
		f += len(k.segRM[0]) + len(k.segRM[1]) + 2*len(k.xs)
	} else {
		f += 2 << uint(n)
	}
	return f + 2*len(p.Cut)
}

// groupByRealized counting-sorts the configuration masks of one side by
// realized-assignment mask: a permutation grouped by rm (ascending mask
// within each group, so segment sums add in the scalar scatter's order)
// plus the distinct rm values and their segment offsets.
func groupByRealized(realized []uint64, n int) (perm []uint32, segRM []uint32, segOff []int32) {
	counts := make([]int32, uint64(1)<<uint(n))
	nseg := 0
	for _, rm := range realized {
		if counts[rm] == 0 {
			nseg++
		}
		counts[rm]++
	}
	segRM = make([]uint32, 0, nseg)
	segOff = make([]int32, 0, nseg+1)
	total := int32(0)
	for rm, c := range counts {
		if c == 0 {
			continue
		}
		counts[rm] = total // reuse as the group's running write position
		segRM = append(segRM, uint32(rm))
		segOff = append(segOff, total)
		total += c
	}
	segOff = append(segOff, total)
	perm = make([]uint32, len(realized))
	for mask, rm := range realized {
		perm[counts[rm]] = uint32(mask)
		counts[rm]++
	}
	return perm, segRM, segOff
}

func popcount(x uint64) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

func newKScratch1(p *Plan) *kscratch1 {
	n := p.ds.Len()
	sc := &kscratch1{
		probs: [2][]float64{
			make([]float64, uint64(1)<<uint(p.SideEdges[0])),
			make([]float64, uint64(1)<<uint(p.SideEdges[1])),
		},
		pCut: make([]float64, len(p.Cut)),
	}
	for side := 0; side < 2; side++ {
		if p.accum == AccumDirect {
			sc.q[side] = make([]float64, len(p.kern.segRM[side]))
			sc.px[side] = make([]float64, len(p.kern.xs))
		} else {
			sc.q[side] = make([]float64, uint64(1)<<uint(n))
		}
	}
	return sc
}

func newKScratch8(p *Plan) *kscratch8 {
	n := p.ds.Len()
	sc := &kscratch8{
		probs: [2][]block8{
			make([]block8, uint64(1)<<uint(p.SideEdges[0])),
			make([]block8, uint64(1)<<uint(p.SideEdges[1])),
		},
		pcF: make([]block8, len(p.Cut)),
		pcL: make([]block8, len(p.Cut)),
	}
	for side := 0; side < 2; side++ {
		if p.accum == AccumDirect {
			sc.q[side] = make([]block8, len(p.kern.segRM[side]))
			sc.px[side] = make([]block8, len(p.kern.xs))
		} else {
			sc.q[side] = make([]block8, uint64(1)<<uint(n))
		}
	}
	return sc
}

// evalKernel1 evaluates one already-validated scenario through the
// one-lane kernel: existing doubling fill, then segmented aggregation and
// the term table.
//
//flowrelvet:hotpath one-lane evaluate kernel: runs once per scenario on caller-owned scratch; any heap traffic here is paid per evaluation (reviewed: PR-8)
func (p *Plan) evalKernel1(sc *kscratch1, pfail []float64) float64 {
	k := p.kern
	for side := 0; side < 2; side++ {
		fillConfigProbs(sc.probs[side], pfail, p.sideLinks[side])
	}
	for i, eid := range p.Cut {
		sc.pCut[i] = pfail[eid]
	}

	if p.accum == AccumDirect {
		return p.evalKernel1Direct(sc)
	}

	n := p.ds.Len()
	qs, qt := sc.q[0], sc.q[1]
	for side := 0; side < 2; side++ {
		q := sc.q[side]
		for i := range q {
			q[i] = 0
		}
		probs := sc.probs[side]
		perm, segRM, segOff := k.perm[side], k.segRM[side], k.segOff[side]
		for s, rm := range segRM {
			sum := 0.0
			for _, mask := range perm[segOff[s]:segOff[s+1]] {
				sum += probs[mask]
			}
			q[rm] = sum
		}
	}
	subset.SupersetZeta(qs, n)
	subset.SupersetZeta(qt, n)

	total := 0.0
	for _, cfg := range k.cfgs {
		r := 0.0
		for t := cfg.off; t < cfg.end; t++ {
			x := k.termX[t]
			r += k.termSign[t] * qs[x] * qt[x]
		}
		total += conf.Prob(sc.pCut, cfg.cut) * r
	}
	return total
}

// evalKernel1Direct is the paper-literal ACCUMULATION through the tables:
// per-segment sums stand in for the side-array scans, each distinct
// lattice point gets its superset probability once, then the term table
// drives the inclusion–exclusion.
//
//flowrelvet:hotpath direct-accumulation twin of the one-lane kernel, same per-scenario cost profile (reviewed: PR-8)
func (p *Plan) evalKernel1Direct(sc *kscratch1) float64 {
	k := p.kern
	for side := 0; side < 2; side++ {
		probs := sc.probs[side]
		perm, segOff := k.perm[side], k.segOff[side]
		seg := sc.q[side]
		for s := range seg {
			sum := 0.0
			for _, mask := range perm[segOff[s]:segOff[s+1]] {
				sum += probs[mask]
			}
			seg[s] = sum
		}
		segRM := k.segRM[side]
		px := sc.px[side]
		for i, x := range k.xs {
			sum := 0.0
			for s, rm := range segRM {
				if rm&x == x {
					sum += seg[s]
				}
			}
			px[i] = sum
		}
	}

	total := 0.0
	pxs, pxt := sc.px[0], sc.px[1]
	for _, cfg := range k.cfgs {
		r := 0.0
		for t := cfg.off; t < cfg.end; t++ {
			i := k.termXi[t]
			r += k.termSign[t] * pxs[i] * pxt[i]
		}
		total += conf.Prob(sc.pCut, cfg.cut) * r
	}
	return total
}

// fillConfigProbs8 is fillConfigProbs over eight lanes: probs[mask][l]
// becomes the occurrence probability of side configuration mask under
// scenario rows[l]. Same doubling construction, same per-lane multiply
// order.
//
//flowrelvet:hotpath doubling fill feeding the eight-lane kernel: O(2^m) inner loop per block (reviewed: PR-8)
func fillConfigProbs8(probs []block8, rows *[8][]float64, links []graph.EdgeID) {
	probs[0] = block8{1, 1, 1, 1, 1, 1, 1, 1}
	var pf, pl block8
	for i, eid := range links {
		for l, row := range rows {
			pf[l] = row[eid]
			pl[l] = 1 - pf[l]
		}
		half := 1 << uint(i)
		fillStep8(probs[:half], probs[half:2*half], &pf, &pl)
	}
}

// evalKernel8 runs the full evaluate phase for one block of eight
// already-validated scenarios (sc.rows) and returns the per-lane
// reliabilities.
//
//flowrelvet:hotpath eight-lane evaluate kernel: the batch throughput path, one call per lane block (reviewed: PR-8)
func (p *Plan) evalKernel8(sc *kscratch8) block8 {
	k := p.kern
	for side := 0; side < 2; side++ {
		fillConfigProbs8(sc.probs[side], &sc.rows, p.sideLinks[side])
	}
	for i, eid := range p.Cut {
		var fail, live block8
		for l, row := range sc.rows {
			fail[l] = row[eid]
			live[l] = 1 - row[eid]
		}
		sc.pcF[i] = fail
		sc.pcL[i] = live
	}

	if p.accum == AccumDirect {
		return p.evalKernel8Direct(sc)
	}

	n := p.ds.Len()
	qs, qt := sc.q[0], sc.q[1]
	for side := 0; side < 2; side++ {
		q := sc.q[side]
		for i := range q {
			q[i] = block8{}
		}
		probs := sc.probs[side]
		perm, segRM, segOff := k.perm[side], k.segRM[side], k.segOff[side]
		for s, rm := range segRM {
			segSum8(&q[rm], probs, perm[segOff[s]:segOff[s+1]])
		}
	}
	subset.SupersetZetaBlock(qs, n)
	subset.SupersetZetaBlock(qt, n)

	var total block8
	for _, cfg := range k.cfgs {
		var r block8
		for t := cfg.off; t < cfg.end; t++ {
			x := k.termX[t]
			sign := k.termSign[t]
			a := &qs[x]
			b := &qt[x]
			for l := 0; l < batchLanes; l++ {
				r[l] += sign * a[l] * b[l]
			}
		}
		pc := cutProb8(sc, cfg.cut)
		for l := 0; l < batchLanes; l++ {
			total[l] += pc[l] * r[l]
		}
	}
	return total
}

// evalKernel8Direct is evalKernel1Direct over eight lanes.
//
//flowrelvet:hotpath direct-accumulation twin of the eight-lane kernel (reviewed: PR-8)
func (p *Plan) evalKernel8Direct(sc *kscratch8) block8 {
	k := p.kern
	for side := 0; side < 2; side++ {
		probs := sc.probs[side]
		perm, segOff := k.perm[side], k.segOff[side]
		seg := sc.q[side]
		for s := range seg {
			segSum8(&seg[s], probs, perm[segOff[s]:segOff[s+1]])
		}
		segRM := k.segRM[side]
		px := sc.px[side]
		for i, x := range k.xs {
			var sum block8
			for s, rm := range segRM {
				if rm&x == x {
					sb := &seg[s]
					for l := 0; l < batchLanes; l++ {
						sum[l] += sb[l]
					}
				}
			}
			px[i] = sum
		}
	}

	var total block8
	pxs, pxt := sc.px[0], sc.px[1]
	for _, cfg := range k.cfgs {
		var r block8
		for t := cfg.off; t < cfg.end; t++ {
			i := k.termXi[t]
			sign := k.termSign[t]
			a := &pxs[i]
			b := &pxt[i]
			for l := 0; l < batchLanes; l++ {
				r[l] += sign * a[l] * b[l]
			}
		}
		pc := cutProb8(sc, cfg.cut)
		for l := 0; l < batchLanes; l++ {
			total[l] += pc[l] * r[l]
		}
	}
	return total
}

// cutProb8 is the lane-block twin of conf.Prob, multiplying the per-link
// factors in the same link order.
//
//flowrelvet:hotpath per-configuration cut probability, called 2^k times per lane block (reviewed: PR-8)
func cutProb8(sc *kscratch8, cut uint64) block8 {
	pc := block8{1, 1, 1, 1, 1, 1, 1, 1}
	for i := range sc.pcF {
		fac := &sc.pcF[i]
		if cut&(uint64(1)<<uint(i)) != 0 {
			fac = &sc.pcL[i]
		}
		for l := 0; l < batchLanes; l++ {
			pc[l] *= fac[l]
		}
	}
	return pc
}

// evalOneKernel evaluates a single already-validated scenario through the
// one-lane kernel with pooled scratch.
//
//flowrelvet:hotpath pooled-scratch helper behind Plan.Eval: Get/Put must be the only pool traffic, never a fresh scratch in steady state (reviewed: PR-8)
func (p *Plan) evalOneKernel(pfail []float64) float64 {
	sc := p.kpool1.Get().(*kscratch1)
	defer p.kpool1.Put(sc)
	return p.evalKernel1(sc, pfail)
}

// BatchOptions tunes EvalBatchInto.
type BatchOptions struct {
	// Parallelism is the worker count; ≤ 0 means GOMAXPROCS.
	Parallelism int
	// Base substitutes for nil scenarios (and pads partial lane blocks);
	// nil means the compile-time probabilities.
	Base []float64
}

// EvalBatchInto evaluates scenarios[i] into dst[i] without allocating
// result storage. Validation runs once up front; the hot loop is
// unchecked. nil scenarios evaluate opt.Base. Results are deterministic —
// bit-identical to per-scenario Eval — for any parallelism.
//
//flowrelvet:hotpath batch entry point: validation and worker setup may allocate only on the error path or once per batch, never per scenario (reviewed: PR-8)
func (p *Plan) EvalBatchInto(dst []float64, scenarios [][]float64, opt BatchOptions) error {
	if len(dst) != len(scenarios) {
		return fmt.Errorf("core: EvalBatchInto dst has %d entries for %d scenarios", len(dst), len(scenarios))
	}
	base := opt.Base
	if base == nil {
		base = p.basePFail
	}
	if err := p.validateVector(base, -1); err != nil {
		return err
	}
	for i, pfail := range scenarios {
		if pfail == nil {
			continue
		}
		if err := p.validateVector(pfail, i); err != nil {
			return err
		}
	}
	mEvalBatches.Inc()
	mEvals.Add(int64(len(scenarios)))
	if p.ds == nil {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	if len(scenarios) == 0 {
		return nil
	}
	workers := opt.Parallelism
	if workers <= 0 {
		workers = defaultParallelism()
	}
	lanes := 1
	if p.kern != nil {
		lanes = p.kern.lanes
	}
	nblocks := (len(scenarios) + lanes - 1) / lanes
	if workers > nblocks {
		workers = nblocks
	}
	if workers == 1 {
		// Single-worker fast path: drain inline on the calling goroutine.
		// No worker goroutines and no closure means no per-call heap
		// allocation — the shape the hotalloc gate and the AllocsPerRun
		// regression tests hold to zero steady-state allocations.
		var next atomic.Int64
		p.drain(&next, dst, scenarios, base, nblocks)
	} else {
		runPool(workers, func(next *atomic.Int64) {
			p.drain(next, dst, scenarios, base, nblocks)
		})
	}
	mEvalBlocks.Add(int64(nblocks))
	mKernelLanes.Add(int64(nblocks * lanes))
	if p.kern != nil {
		mSegmentSums.Add(int64(nblocks * (len(p.kern.segRM[0]) + len(p.kern.segRM[1]))))
	}
	return nil
}

// validateVector checks one probability vector; i < 0 names the base.
// The vector's name is only built on the error path: the happy path runs
// once per scenario per batch and must not allocate.
func (p *Plan) validateVector(pfail []float64, i int) error {
	if len(pfail) != p.numEdges {
		return fmt.Errorf("core: EvalBatch %s has %d entries, plan was compiled for %d links", vectorName(i), len(pfail), p.numEdges)
	}
	for j, v := range pfail {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("core: EvalBatch %s probability %g for link %d outside [0, 1]", vectorName(i), v, j)
		}
	}
	return nil
}

func vectorName(i int) string {
	if i < 0 {
		return "base"
	}
	return fmt.Sprintf("scenario %d", i)
}

// drain is the batch worker body: one pooled scratch checked out for the
// whole loop, work items handed out by the shared atomic counter. The
// counter is compared in 64 bits so the poisoned value runPool stores on
// a worker panic stops every drain loop on 32-bit targets too.
//
//flowrelvet:hotpath batch drain loop: pooled per-worker scratch, no per-item allocation; error paths were rejected by EvalBatchInto before the loop started (reviewed: PR-8)
func (p *Plan) drain(next *atomic.Int64, dst []float64, scenarios [][]float64, base []float64, nblocks int) {
	switch {
	case p.kern == nil:
		sc := p.scratch.Get().(*evalScratch)
		defer p.scratch.Put(sc)
		for {
			i := next.Add(1) - 1
			if i >= int64(len(scenarios)) {
				return
			}
			if h := p.blockHook; h != nil {
				h()
			}
			pfail := scenarios[i]
			if pfail == nil {
				pfail = base
			}
			dst[i] = p.evalScalarUnchecked(sc, pfail)
		}
	case p.kern.lanes == 1:
		sc := p.kpool1.Get().(*kscratch1)
		defer p.kpool1.Put(sc)
		for {
			i := next.Add(1) - 1
			if i >= int64(len(scenarios)) {
				return
			}
			if h := p.blockHook; h != nil {
				h()
			}
			pfail := scenarios[i]
			if pfail == nil {
				pfail = base
			}
			dst[i] = p.evalKernel1(sc, pfail)
		}
	default:
		sc := p.kpool8.Get().(*kscratch8)
		defer p.kpool8.Put(sc)
		for {
			b := next.Add(1) - 1
			if b >= int64(nblocks) {
				return
			}
			if h := p.blockHook; h != nil {
				h()
			}
			lo := int(b) * batchLanes
			hi := lo + batchLanes
			if hi > len(scenarios) {
				hi = len(scenarios)
			}
			// Partial final blocks pad with the base vector: valid
			// inputs, results discarded.
			for l := 0; l < batchLanes; l++ {
				sc.rows[l] = base
				if lo+l < hi && scenarios[lo+l] != nil {
					sc.rows[l] = scenarios[lo+l]
				}
			}
			r := p.evalKernel8(sc)
			for l := 0; l < hi-lo; l++ {
				dst[lo+l] = r[l]
			}
			for l := range sc.rows {
				sc.rows[l] = nil
			}
		}
	}
}

// poisonCounter is stored into the work counter when a worker panics:
// far past any real item count, so surviving workers see an exhausted
// batch at their next Add and exit instead of finishing the work, yet
// far enough from MaxInt64 that their increments cannot overflow.
const poisonCounter = int64(1) << 62

// runPool runs exactly `workers` goroutines, each draining work items off
// a shared atomic counter — the bounded replacement for the old
// goroutine-per-scenario dispatch. A panic in any worker is re-raised on
// the calling goroutine once every worker has exited; the counter is
// poisoned first so the surviving workers stop drawing new items instead
// of completing a batch whose result will never be seen.
//
//flowrelvet:hotpath worker-pool dispatch: the goroutines and the closure are one allocation per batch, amortized over every item in it (reviewed: PR-8)
func runPool(workers int, worker func(next *atomic.Int64)) {
	var next atomic.Int64
	if workers <= 1 {
		worker(&next)
		return
	}
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
					next.Store(poisonCounter)
				}
			}()
			worker(&next)
		}()
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
