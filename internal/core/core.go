// Package core implements the paper's contribution: exact flow-reliability
// calculation in O(2^{α|E|}·|V|·|E|) time for graphs with a constant-size
// set of α-bottleneck links (Fujita, IPDPSW 2017).
//
// The algorithm (§III–IV of the paper):
//
//  1. Split G by a minimal s–t cut E' = {e₁,…,e_k} into sides G_s and G_t.
//  2. Enumerate the assignment set 𝒟 of the d sub-streams to the k
//     bottleneck links (§III-B).
//  3. For each side, build an array indexed by the side's 2^{|E_side|}
//     failure configurations whose entries record, as a |𝒟|-bit vector,
//     which assignments the configuration realizes (§III-C); one max-flow
//     computation per (assignment, configuration) pair decides each bit.
//  4. For every bottleneck-link configuration E” ⊆ E', combine the two
//     arrays by the inclusion–exclusion principle over the supported
//     assignment class 𝒟_{E”} (procedure ACCUMULATION, §IV-B) and weight
//     by the probability p_{E”} of that configuration (Eq. 2–3).
//
// Two ablation axes mirror design choices the paper leaves implicit:
// side-array construction may recompute each max flow from scratch or walk
// the configurations in Gray-code order repairing the previous flow, and
// the accumulation may follow the paper's literal subset scan or aggregate
// once with a superset-zeta transform.
package core

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"flowrel/internal/anytime"
	"flowrel/internal/assign"
	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/mincut"
	"flowrel/internal/stats"
)

// SideEngine selects how the per-side realization arrays are built.
type SideEngine int

const (
	// SideFrontier (the default) enumerates configurations in
	// popcount-ascending order and exploits the monotonicity of flow
	// feasibility: a capacity bound discards configurations whose live
	// links cannot carry an assignment's load, and a bit-parallel superset
	// closure marks every configuration above an already-realized one —
	// so max-flow is paid only on the feasibility boundary. It produces
	// bit-identical realization arrays to SideBinary and falls back to it
	// automatically where the layered machinery cannot win (tiny sides).
	SideFrontier SideEngine = iota
	// SideBinary solves every (assignment, configuration) max-flow
	// problem from scratch, in plain binary counting order.
	SideBinary
	// SideGrayCode walks configurations in Gray-code order and repairs
	// the previous flow after the single link flip.
	SideGrayCode
)

// SideRecompute is the former name of SideBinary.
//
// Deprecated: use SideBinary.
const SideRecompute = SideBinary

// Accumulation selects how per-class probabilities are combined.
type Accumulation int

const (
	// AccumZeta aggregates configuration probabilities by realized
	// assignment mask and applies a superset-zeta transform once; each
	// inclusion–exclusion term is then a table lookup.
	AccumZeta Accumulation = iota
	// AccumDirect follows procedure ACCUMULATION literally: for every
	// subset X of the supported class, scan the side arrays to compute
	// p_X, then apply inclusion–exclusion.
	AccumDirect
)

// Options tunes the solver.
type Options struct {
	// Bottleneck optionally fixes the bottleneck link set E'. When nil the
	// solver searches for the minimal cut with the most balanced split
	// among cuts of at most MaxBottleneck links.
	Bottleneck []graph.EdgeID
	// MaxBottleneck bounds the bottleneck search (default 3).
	MaxBottleneck int
	// MaxSideEdges bounds the enumerated side size |E_side| (default 20;
	// side-array time and memory grow as 2^{|E_side|}).
	MaxSideEdges int
	// MaxAssignmentSet bounds |𝒟| (default 20; the accumulation lattice
	// takes O(2^{|𝒟|}) memory). The paper assumes d and k constant, which
	// is exactly this bound.
	MaxAssignmentSet int
	// Parallelism is the number of worker goroutines for side-array
	// construction; ≤ 0 means GOMAXPROCS.
	Parallelism int
	Side        SideEngine
	Accum       Accumulation
	// Ctl optionally makes the run cancellable. The decomposition cannot
	// certify a partial answer (the side arrays are all-or-nothing), so an
	// interrupted run returns an error wrapping anytime.ErrInterrupted;
	// callers fall back to an engine that can certify partial mass.
	Ctl *anytime.Ctl
	// TestHook, when set, is called with each side configuration mask just
	// before its feasibility checks. Tests use it to inject faults.
	TestHook func(configIndex uint64)
}

func (o *Options) setDefaults() {
	if o.MaxBottleneck <= 0 {
		o.MaxBottleneck = 3
	}
	if o.MaxSideEdges <= 0 {
		o.MaxSideEdges = 20
	}
	if o.MaxAssignmentSet <= 0 {
		o.MaxAssignmentSet = 20
	}
	if o.Parallelism <= 0 {
		o.Parallelism = defaultParallelism()
	}
}

// Stats reports the work performed.
type Stats struct {
	MaxFlowCalls int64
	AugmentUnits int64
	// AugmentingPaths counts individual augmenting paths found across all
	// max-flow solves — the inner-loop cost the call count hides.
	AugmentingPaths int64
	// SideConfigs is the number of failure configurations enumerated per
	// side (2^{|E_s|} and 2^{|E_t|}).
	SideConfigs [2]uint64
	// RealizationChecks counts (assignment, configuration) feasibility
	// decisions — the paper's |𝒟|·2^{|E_side|} cost term.
	RealizationChecks int64
	// PrunedCapacity counts (assignment, configuration) pairs the frontier
	// engine decided unrealizable because the live links' capacity sum
	// cannot carry the assignment's load — no max-flow call needed.
	PrunedCapacity int64
	// PrunedClosure counts pairs decided realizable by superset closure:
	// a submask of the configuration already realizes the assignment.
	PrunedClosure int64
	// FrontierMaxFlowCalls counts the max-flow invocations the frontier
	// engine actually paid (the feasibility-boundary size, including
	// incremental repair solves); the pruned pairs above are the calls a
	// dense enumeration would have made instead.
	FrontierMaxFlowCalls int64
	// DeltaReused counts (assignment, configuration) decisions a delta
	// compile (MutatePlan) inherited from the parent plan — copied or
	// index-remapped instead of re-decided. Zero for cold compiles.
	DeltaReused int64
	// KernelTerms is the size of the flattened inclusion–exclusion term
	// table the compile built for the evaluate phase (zero when the
	// instance is outside the kernel guards and evaluation stays scalar).
	KernelTerms int64
	// KernelSegments counts the realized-mask segments across both sides
	// — the contiguous runs the segmented aggregation sums per Eval.
	KernelSegments int64
	// KernelLanes is the batch kernel's block width (8, or 1 when the
	// eight-lane scratch would exceed the memory budget; 0 without a
	// kernel). Like every field here it is fixed at compile time.
	KernelLanes int64
}

// Result is the solver's answer plus the decomposition it used.
type Result struct {
	Reliability float64
	Cut         []graph.EdgeID // the bottleneck links E'
	K           int            // |E'|
	Alpha       float64        // max(|E_s|,|E_t|)/|E|
	Assignments []assign.Assignment
	SideEdges   [2]int // |E_s|, |E_t|
	Stats       Stats
}

// Reliability computes the exact reliability of g with respect to dem
// using the bottleneck decomposition. It is exactly Compile followed by
// one Eval of the graph's own probabilities; callers with repeated
// probability-only questions should hold on to the Plan instead.
func Reliability(g *graph.Graph, dem graph.Demand, opt Options) (Result, error) {
	plan, err := Compile(g, dem, opt)
	if err != nil {
		return Result{}, err
	}
	return planResult(plan)
}

// ReliabilityWithBottleneck runs the decomposition on a pre-validated
// bottleneck split.
func ReliabilityWithBottleneck(g *graph.Graph, dem graph.Demand, bt *mincut.Bottleneck, opt Options) (Result, error) {
	plan, err := CompileWithBottleneck(g, dem, bt, opt)
	if err != nil {
		return Result{}, err
	}
	return planResult(plan)
}

// planResult evaluates a freshly compiled plan at its own base
// probabilities and packages the decomposition description.
func planResult(plan *Plan) (Result, error) {
	r, err := plan.Eval(nil)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Reliability: r,
		Cut:         plan.Cut,
		K:           plan.K(),
		Alpha:       plan.Alpha,
		Assignments: plan.Assignments,
		SideEdges:   plan.SideEdges,
		Stats:       plan.Stats,
	}, nil
}

// sideArray is the §III-C data structure for one component: for every
// failure configuration of the component's links, the set of assignments
// it realizes (as a bit mask over 𝒟). Occurrence probabilities are *not*
// part of it — they belong to the evaluate phase (Plan.Eval), which is
// what makes a compiled Plan reusable across probability vectors.
type sideArray struct {
	m        int      // number of component links
	realized []uint64 // indexed by configuration mask
}

// buildSide constructs the realization array for one component. terminal
// is the component's real terminal (s or t, in component node IDs); ends
// are the component-side endpoints of the bottleneck links (x_i or y_i);
// toSink selects the G_s orientation (route from terminal to the
// bottleneck endpoints) versus G_t (from the endpoints to the terminal).
func buildSide(sub *graph.Subgraph, terminal graph.NodeID, ends []graph.NodeID, toSink bool, ds *assign.Set, opt *Options, st *Stats, sideIdx int) (*sideArray, error) {
	m := sub.G.NumEdges()
	if m > opt.MaxSideEdges {
		return nil, fmt.Errorf("core: component has %d links, exceeding MaxSideEdges %d", m, opt.MaxSideEdges)
	}
	buildStart := time.Now()
	callsBefore := st.MaxFlowCalls

	proto, handles, demandArcs, src, dst := sideProto(sub, terminal, ends, toSink)

	sa := &sideArray{
		m:        m,
		realized: make([]uint64, uint64(1)<<uint(m)),
	}
	st.SideConfigs[sideIdx] = uint64(1) << uint(m)

	engine := opt.Side
	if engine == SideFrontier && m < frontierMinEdges {
		// The layered walk cannot beat a straight scan over ≤ 2 configs.
		engine = SideBinary
	}
	var err error
	if engine == SideFrontier {
		f := &frontierCtx{
			proto:      proto,
			handles:    handles,
			demandArcs: demandArcs,
			src:        src,
			dst:        dst,
			d:          ds.D,
			ds:         ds,
			opt:        opt,
			sa:         sa,
			caps:       make([]int, m),
			need:       sideNeeds(ds, ends, terminal),
			allBits:    (uint64(1) << uint(ds.Len())) - 1,
		}
		for _, e := range sub.G.Edges() {
			f.caps[e.ID] = e.Cap
		}
		err = buildSideFrontier(f, st)
	} else {
		err = buildSideWave(proto, handles, demandArcs, src, dst, ds, opt, st, sa, engine)
	}
	if err != nil {
		return nil, err
	}
	if opt.Ctl.Stopped() {
		return nil, fmt.Errorf("core: side-array construction interrupted: %w", opt.Ctl.Err())
	}
	if tr := opt.Ctl.Tracer(); tr != nil {
		tr.OnPhase(stats.PhaseEvent{
			Engine:       "core",
			Phase:        fmt.Sprintf("side/%d", sideIdx),
			Duration:     time.Since(buildStart),
			Configs:      st.SideConfigs[sideIdx],
			MaxFlowCalls: st.MaxFlowCalls - callsBefore,
		})
	}
	return sa, nil
}

// sideProto builds the prototype max-flow network for one component: the
// component links plus one super terminal carrying the per-assignment
// demand arcs. Shared by the cold side build and the delta rebuild so
// both solve on byte-identical networks.
func sideProto(sub *graph.Subgraph, terminal graph.NodeID, ends []graph.NodeID, toSink bool) (proto *maxflow.Network, handles, demandArcs []maxflow.Handle, src, dst int32) {
	proto = maxflow.New(sub.G.NumNodes())
	super := proto.AddNode()
	handles = make([]maxflow.Handle, sub.G.NumEdges())
	for _, e := range sub.G.Edges() {
		handles[e.ID] = proto.AddDirected(int32(e.U), int32(e.V), e.Cap)
	}
	demandArcs = make([]maxflow.Handle, len(ends))
	for i, x := range ends {
		if toSink {
			demandArcs[i] = proto.AddDirected(int32(x), super, 0)
		} else {
			demandArcs[i] = proto.AddDirected(super, int32(x), 0)
		}
	}
	if toSink {
		src, dst = int32(terminal), super
	} else {
		src, dst = super, int32(terminal)
	}
	return proto, handles, demandArcs, src, dst
}

// sideNeeds computes the per-assignment net demand that must cross the
// side links. Flow that enters the super terminal straight from the real
// terminal (a bottleneck endpoint on the terminal itself) never crosses a
// side link; only the remainder bounds the live-capacity sum, so the
// capacity filter must use need = d − direct.
func sideNeeds(ds *assign.Set, ends []graph.NodeID, terminal graph.NodeID) []int {
	need := make([]int, ds.Len())
	for j, a := range ds.Assignments {
		direct := 0
		for i, x := range ends {
			if x == terminal {
				direct += a[i]
			}
		}
		need[j] = ds.D - direct
	}
	return need
}

// buildSideWave runs the dense enumeration engines (binary, Gray code):
// one worker wave where each chunk worker owns a private network clone and
// loops over all assignments itself (setting the demand-arc loads on its
// own copy), so the clone and spawn cost is paid once rather than once per
// assignment. Each chunk accumulates into its own Stats slot; the slots
// are summed after the wave completes, so the hot path takes no lock.
func buildSideWave(proto *maxflow.Network, handles []maxflow.Handle, demandArcs []maxflow.Handle, src, dst int32, ds *assign.Set, opt *Options, st *Stats, sa *sideArray, engine SideEngine) error {
	m := sa.m
	chunks := conf.SplitEnum(m)
	errs := make([]error, len(chunks))
	chunkStats := make([]Stats, len(chunks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.Parallelism)
	for ci, r := range chunks {
		wg.Add(1)
		go func(ci int, lo, hi uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cur := lo
			defer anytime.RecoverInto(&errs[ci], opt.Ctl, "core side-array worker", &cur)
			if opt.Ctl.Stopped() {
				return
			}
			nw := proto.Clone()
			cst := &chunkStats[ci]
			for j, a := range ds.Assignments {
				if opt.Ctl.Stopped() {
					break
				}
				for i := range demandArcs {
					nw.SetBaseCapDirected(demandArcs[i], a[i])
				}
				bit := uint64(1) << uint(j)
				var n uint64
				if engine == SideGrayCode {
					n = sideGrayChunk(nw, handles, src, dst, ds.D, bit, sa, lo, hi, opt, &cur)
				} else {
					n = sideBinaryChunk(nw, handles, src, dst, ds.D, bit, sa, lo, hi, opt, &cur)
				}
				cst.RealizationChecks += int64(n)
			}
			cst.MaxFlowCalls = nw.Stats.MaxFlowCalls
			cst.AugmentUnits = nw.Stats.AugmentUnits
			cst.AugmentingPaths = nw.Stats.AugmentingPaths
		}(ci, r[0], r[1])
	}
	wg.Wait()
	for ci := range chunkStats {
		st.add(&chunkStats[ci])
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// add accumulates the per-worker counters of o into st (SideConfigs is
// set once by buildSide, not summed).
func (st *Stats) add(o *Stats) {
	st.MaxFlowCalls += o.MaxFlowCalls
	st.AugmentUnits += o.AugmentUnits
	st.AugmentingPaths += o.AugmentingPaths
	st.RealizationChecks += o.RealizationChecks
	st.PrunedCapacity += o.PrunedCapacity
	st.PrunedClosure += o.PrunedClosure
	st.FrontierMaxFlowCalls += o.FrontierMaxFlowCalls
	st.DeltaReused += o.DeltaReused
}

// sideBinaryChunk solves each configuration in [lo,hi) from scratch,
// setting the given assignment bit where realized. It returns the number
// of configurations actually decided (fewer than hi−lo when interrupted).
func sideBinaryChunk(nw *maxflow.Network, handles []maxflow.Handle, src, dst int32, d int, bit uint64, sa *sideArray, lo, hi uint64, opt *Options, cur *uint64) uint64 {
	prev := ^uint64(0)
	width := uint64(1)<<uint(len(handles)) - 1
	var sinceCheck, n uint64
	callsMark := nw.Stats.MaxFlowCalls
	for mask := lo; mask < hi; mask++ {
		if sinceCheck >= anytime.CheckEvery {
			if !opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark) {
				return n
			}
			sinceCheck, callsMark = 0, nw.Stats.MaxFlowCalls
		}
		sinceCheck++
		*cur = mask
		if opt.TestHook != nil {
			opt.TestHook(mask)
		}
		diff := (mask ^ prev) & width
		for diff != 0 {
			i := trailingZeros(diff)
			diff &= diff - 1
			nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
		}
		prev = mask
		if nw.MaxFlow(src, dst, d) >= d {
			sa.realized[mask] |= bit
		}
		n++
	}
	opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark)
	return n
}

// sideGrayChunk walks Gray masks for indices [lo,hi), repairing the flow
// across single-link flips. Returns the number of configurations decided.
func sideGrayChunk(nw *maxflow.Network, handles []maxflow.Handle, src, dst int32, d int, bit uint64, sa *sideArray, lo, hi uint64, opt *Options, cur *uint64) uint64 {
	mask := conf.GrayMask(lo)
	for i := range handles {
		nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
	}
	*cur = mask
	if opt.TestHook != nil {
		opt.TestHook(mask)
	}
	nw.ResetFlow()
	value := nw.Augment(src, dst, d)
	if value >= d {
		sa.realized[mask] |= bit
	}
	var n uint64 = 1
	sinceCheck := uint64(1)
	callsMark := nw.Stats.MaxFlowCalls
	for i := lo + 1; i < hi; i++ {
		if sinceCheck >= anytime.CheckEvery {
			if !opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark) {
				return n
			}
			sinceCheck, callsMark = 0, nw.Stats.MaxFlowCalls
		}
		sinceCheck++
		flip := conf.GrayFlip(i)
		b := uint64(1) << uint(flip)
		mask ^= b
		*cur = mask
		if opt.TestHook != nil {
			opt.TestHook(mask)
		}
		if mask&b != 0 {
			nw.EnableIncremental(handles[flip])
		} else {
			value -= nw.DisableIncremental(handles[flip], src, dst)
		}
		value += nw.Augment(src, dst, d-value)
		if value >= d {
			sa.realized[mask] |= bit
		}
		n++
	}
	opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark)
	return n
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
