package core

// SIMD dispatch for the eight-lane kernel's two inner loops: one doubling
// layer of the configuration-probability fill and one segmented sum. The
// vector implementations perform exactly the scalar loop's per-lane
// multiplies and adds in the same order — packed IEEE-754 arithmetic is
// elementwise identical to scalar arithmetic, and no fused multiply-adds
// are used — so the dispatch level never changes results, only speed.
// kernel_simd_amd64.go probes the CPU at init; everything else falls back
// to the portable loops below.

const (
	simdNone   = 0 // portable Go loops
	simdAVX    = 1 // 256-bit lanes, two registers per block
	simdAVX512 = 2 // 512-bit lanes, one register per block
)

// fillStep8 runs one doubling layer over lane blocks: for every mask,
// hi[mask] = lo[mask]·pl and lo[mask] = lo[mask]·pf, per lane, in that
// store order. len(hi) ≥ len(lo) > 0.
//
//flowrelvet:hotpath SIMD dispatch for the doubling fill: branch, never allocate (reviewed: PR-8)
func fillStep8(lo, hi []block8, pf, pl *block8) {
	switch kernelSIMD {
	case simdAVX512:
		fillStepAVX512(&lo[0], &hi[0], len(lo), pf, pl)
	case simdAVX:
		fillStepAVX(&lo[0], &hi[0], len(lo), pf, pl)
	default:
		fillStepGo(lo, hi, pf, pl)
	}
}

//flowrelvet:hotpath portable twin of the fill-step vector routines (reviewed: PR-8)
func fillStepGo(lo, hi []block8, pf, pl *block8) {
	for mask := range lo {
		lob := &lo[mask]
		hib := &hi[mask]
		for l := 0; l < batchLanes; l++ {
			v := lob[l]
			hib[l] = v * pl[l]
			lob[l] = v * pf[l]
		}
	}
}

// segSum8 writes Σ_{i} probs[perm[i]] into dst, per lane, adding in
// perm order (the grouped scatter's ascending-mask order).
//
//flowrelvet:hotpath SIMD dispatch for the segmented sum (reviewed: PR-8)
func segSum8(dst *block8, probs []block8, perm []uint32) {
	if len(perm) == 0 {
		*dst = block8{}
		return
	}
	switch kernelSIMD {
	case simdAVX512:
		segSumAVX512(dst, &probs[0], &perm[0], len(perm))
	case simdAVX:
		segSumAVX(dst, &probs[0], &perm[0], len(perm))
	default:
		segSumGo(dst, probs, perm)
	}
}

//flowrelvet:hotpath portable twin of the segment-sum vector routines (reviewed: PR-8)
func segSumGo(dst *block8, probs []block8, perm []uint32) {
	var sum block8
	for _, mask := range perm {
		pb := &probs[mask]
		for l := 0; l < batchLanes; l++ {
			sum[l] += pb[l]
		}
	}
	*dst = sum
}
