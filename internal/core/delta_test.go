package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"flowrel/internal/anytime"
	"flowrel/internal/graph"
)

// randomMutation draws a valid single-link mutation against g: mostly
// capacity changes (the common churn event), with add/remove mixed in.
// Adds are suppressed once the graph is large enough that the compile
// guards could differ between runs.
func randomMutation(rng *rand.Rand, g *graph.Graph, d int) graph.Mutation {
	roll := rng.Intn(4)
	if roll == 2 && g.NumEdges() >= 15 {
		roll = 0
	}
	if roll == 3 && g.NumEdges() <= 2 {
		roll = 0
	}
	switch roll {
	case 2:
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		for v == u {
			v = graph.NodeID(rng.Intn(g.NumNodes()))
		}
		return graph.Mutation{Kind: graph.MutateAdd, U: u, V: v, Cap: 1 + rng.Intn(d+1), PFail: rng.Float64() * 0.9}
	case 3:
		return graph.Mutation{Kind: graph.MutateRemove, Link: graph.EdgeID(rng.Intn(g.NumEdges()))}
	default:
		return graph.Mutation{Kind: graph.MutateCapacity, Link: graph.EdgeID(rng.Intn(g.NumEdges())), Cap: rng.Intn(d + 2)}
	}
}

// assertPlansEqual checks every observable of the two plans bit for bit:
// decomposition, realization arrays, kernel tables, budget charges and
// evaluation results.
func assertPlansEqual(t *testing.T, seed int64, step int, delta, cold *Plan, chargedDelta, chargedCold uint64) {
	t.Helper()
	if !equalCuts(delta.Cut, cold.Cut) {
		t.Fatalf("seed %d step %d: delta cut %v, cold cut %v", seed, step, delta.Cut, cold.Cut)
	}
	if math.Float64bits(delta.Alpha) != math.Float64bits(cold.Alpha) {
		t.Fatalf("seed %d step %d: delta alpha %v, cold alpha %v", seed, step, delta.Alpha, cold.Alpha)
	}
	if len(delta.Assignments) != len(cold.Assignments) {
		t.Fatalf("seed %d step %d: |𝒟| delta %d, cold %d", seed, step, len(delta.Assignments), len(cold.Assignments))
	}
	for side := 0; side < 2; side++ {
		if len(delta.sideLinks[side]) != len(cold.sideLinks[side]) {
			t.Fatalf("seed %d step %d: side %d has %d links delta, %d cold", seed, step, side, len(delta.sideLinks[side]), len(cold.sideLinks[side]))
		}
		for i := range delta.sideLinks[side] {
			if delta.sideLinks[side][i] != cold.sideLinks[side][i] {
				t.Fatalf("seed %d step %d: side %d link %d: delta %d, cold %d", seed, step, side, i, delta.sideLinks[side][i], cold.sideLinks[side][i])
			}
		}
		a, b := delta.realized[side], cold.realized[side]
		if len(a) != len(b) {
			t.Fatalf("seed %d step %d: side %d has %d configs delta, %d cold", seed, step, side, len(a), len(b))
		}
		for m := range a {
			if a[m] != b[m] {
				t.Fatalf("seed %d step %d: side %d mask %#x: delta realized %#x, cold %#x", seed, step, side, m, a[m], b[m])
			}
		}
	}
	if (delta.kern == nil) != (cold.kern == nil) {
		t.Fatalf("seed %d step %d: delta kernel %v, cold kernel %v", seed, step, delta.kern != nil, cold.kern != nil)
	}
	if delta.kern != nil {
		if delta.kern.lanes != cold.kern.lanes || len(delta.kern.termX) != len(cold.kern.termX) {
			t.Fatalf("seed %d step %d: kernel shape diverges", seed, step)
		}
		for side := 0; side < 2; side++ {
			if len(delta.kern.segRM[side]) != len(cold.kern.segRM[side]) {
				t.Fatalf("seed %d step %d: side %d segment count delta %d, cold %d", seed, step, side, len(delta.kern.segRM[side]), len(cold.kern.segRM[side]))
			}
			for i := range delta.kern.segRM[side] {
				if delta.kern.segRM[side][i] != cold.kern.segRM[side][i] || delta.kern.perm[side][i] != cold.kern.perm[side][i] {
					t.Fatalf("seed %d step %d: side %d kernel segment tables diverge at %d", seed, step, side, i)
				}
			}
		}
	}
	if chargedDelta != chargedCold {
		t.Fatalf("seed %d step %d: delta charged %d configs, cold charged %d — budgets diverge", seed, step, chargedDelta, chargedCold)
	}
	if delta.Stats.RealizationChecks != cold.Stats.RealizationChecks {
		t.Fatalf("seed %d step %d: delta checked %d pairs, cold %d", seed, step, delta.Stats.RealizationChecks, cold.Stats.RealizationChecks)
	}
	rd, err := delta.Eval(nil)
	if err != nil {
		t.Fatalf("seed %d step %d: delta Eval: %v", seed, step, err)
	}
	rc, err := cold.Eval(nil)
	if err != nil {
		t.Fatalf("seed %d step %d: cold Eval: %v", seed, step, err)
	}
	if math.Float64bits(rd) != math.Float64bits(rc) {
		t.Fatalf("seed %d step %d: delta Eval %v, cold Eval %v", seed, step, rd, rc)
	}
	rds, _ := delta.EvalScalar(nil)
	rcs, _ := cold.EvalScalar(nil)
	if math.Float64bits(rds) != math.Float64bits(rcs) {
		t.Fatalf("seed %d step %d: delta EvalScalar %v, cold EvalScalar %v", seed, step, rds, rcs)
	}
}

// TestMutateEquivalenceCorpus is the delta-compile contract on the
// planted-bottleneck corpus: across ≥50 graphs, a chained stream of
// random single-link mutations (capacity change, add, remove) through
// MutatePlan must be bit-identical to a cold compile after every step —
// same realization arrays, same kernel tables, same Eval results, and
// the identical number of configurations charged to the anytime budget.
// The chain continues from the *delta* plan, so reuse errors compound
// instead of washing out.
func TestMutateEquivalenceCorpus(t *testing.T) {
	const wantGraphs = 50
	const steps = 6
	count := 0
	kinds := [3]int{}
	for seed := int64(0); count < wantGraphs && seed < 50*wantGraphs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		d := 1 + rng.Intn(3)
		g, dem, _ := plantBottleneck(rng, 2+rng.Intn(3), 2+rng.Intn(4), k, d)
		if g.NumEdges() > 12 {
			continue
		}
		ctl := anytime.New(context.Background(), anytime.Budget{})
		parent, err := Compile(g, dem, Options{MaxAssignmentSet: 62, Ctl: ctl})
		if err != nil {
			continue
		}
		count++
		if parent.Version() != 0 {
			t.Fatalf("seed %d: cold compile has version %d", seed, parent.Version())
		}
		for step := 0; step < steps; step++ {
			mut := randomMutation(rng, g, d)
			g2, remap, err := mut.Apply(g)
			if err != nil {
				t.Fatalf("seed %d step %d: %v applied to a valid graph: %v", seed, step, mut, err)
			}
			ctlCold := anytime.New(context.Background(), anytime.Budget{})
			cold, errCold := Compile(g2, dem, Options{MaxAssignmentSet: 62, Ctl: ctlCold})
			ctlDelta := anytime.New(context.Background(), anytime.Budget{})
			delta, errDelta := MutatePlan(parent, g, g2, dem, mut, remap, Options{MaxAssignmentSet: 62, Ctl: ctlDelta})
			if errCold != nil {
				// The mutation broke the instance (disconnected it, or
				// pushed it over a guard): the delta path must refuse it
				// the same way, and the stream continues from the parent.
				if errDelta == nil {
					t.Fatalf("seed %d step %d: cold compile failed (%v) but MutatePlan succeeded for %v", seed, step, errCold, mut)
				}
				continue
			}
			if errDelta != nil {
				t.Fatalf("seed %d step %d: MutatePlan failed for %v: %v", seed, step, mut, errDelta)
			}
			kinds[mut.Kind]++
			if delta.Version() != parent.Version()+1 {
				t.Fatalf("seed %d step %d: version %d after parent %d", seed, step, delta.Version(), parent.Version())
			}
			assertPlansEqual(t, seed, step, delta, cold, ctlDelta.Configs(), ctlCold.Configs())
			g, parent = g2, delta
		}
	}
	if count < wantGraphs {
		t.Fatalf("corpus produced only %d usable graphs, want ≥ %d", count, wantGraphs)
	}
	for kind, n := range kinds {
		if n == 0 {
			t.Fatalf("mutation stream never exercised kind %v", graph.MutationKind(kind))
		}
	}
}

// TestMutateReusesParentWork pins the point of the delta path: on a
// two-sided instance, a capacity change on one side must transfer the
// other side's array pointer-for-pointer, inherit decisions from the
// parent, and pay strictly fewer max-flow calls than the cold compile.
func TestMutateReusesParentWork(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, dem, _ := plantBottleneck(rng, 3, 5, 2, 2)
	parent, err := Compile(g, dem, Options{MaxAssignmentSet: 62})
	if err != nil {
		t.Fatal(err)
	}
	if parent.ds == nil {
		t.Skip("trivial instance")
	}
	// Pick a side link and nudge its capacity.
	link := parent.sideLinks[0][0]
	mut := graph.Mutation{Kind: graph.MutateCapacity, Link: link, Cap: g.Edge(link).Cap + 1}
	g2, remap, err := mut.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := MutatePlan(parent, g, g2, dem, mut, remap, Options{MaxAssignmentSet: 62})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Compile(g2, dem, Options{MaxAssignmentSet: 62})
	if err != nil {
		t.Fatal(err)
	}
	if &delta.realized[1][0] != &parent.realized[1][0] {
		t.Fatal("untouched side was rebuilt, not shared")
	}
	if delta.Stats.DeltaReused == 0 {
		t.Fatal("delta compile inherited no decisions")
	}
	coldCalls := cold.Stats.MaxFlowCalls + cold.Stats.FrontierMaxFlowCalls
	deltaCalls := delta.Stats.MaxFlowCalls + delta.Stats.FrontierMaxFlowCalls
	if deltaCalls >= coldCalls {
		t.Fatalf("delta paid %d max-flow calls, cold %d — no reuse", deltaCalls, coldCalls)
	}
	assertPlansEqual(t, 7, 0, delta, cold, 0, 0)
}

// TestMutateBudgetInterruption: an exhausted anytime budget must abort
// the delta compile with ErrInterrupted — the transfers charge the same
// configuration totals a cold build would, so a budget too small for a
// cold compile is too small for a mutation too.
func TestMutateBudgetInterruption(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, dem, _ := plantBottleneck(rng, 3, 5, 2, 2)
	parent, err := Compile(g, dem, Options{MaxAssignmentSet: 62})
	if err != nil || parent.ds == nil {
		t.Skipf("unusable instance: %v", err)
	}
	link := parent.sideLinks[0][0]
	mut := graph.Mutation{Kind: graph.MutateCapacity, Link: link, Cap: g.Edge(link).Cap + 1}
	g2, remap, err := mut.Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	ctl := anytime.New(context.Background(), anytime.Budget{MaxConfigs: 2})
	_, err = MutatePlan(parent, g, g2, dem, mut, remap, Options{MaxAssignmentSet: 62, Ctl: ctl})
	if err == nil {
		t.Fatal("exhausted budget produced a plan")
	}
	if !errors.Is(err, anytime.ErrInterrupted) {
		t.Fatalf("interruption error does not wrap ErrInterrupted: %v", err)
	}
}
