// Vector inner loops of the eight-lane evaluate kernel. Each routine
// performs exactly the portable loop's per-lane IEEE-754 multiplies and
// adds in the same order (no FMA contraction), so results are
// bit-identical across dispatch levels. One [8]float64 lane block is 64
// bytes: one ZMM register, or a YMM pair.

#include "textflag.h"

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (lo, hi uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, lo+0(FP)
	MOVL DX, hi+4(FP)
	RET

// func fillStepAVX512(lo, hi *block8, n int, pf, pl *block8)
//
// One doubling layer: for n masks, hi[m] = lo[m]·pl then lo[m] = lo[m]·pf
// (per lane). n ≥ 1.
TEXT ·fillStepAVX512(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), SI
	MOVQ hi+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ pf+24(FP), AX
	MOVQ pl+32(FP), BX
	VMOVUPD (AX), Z1
	VMOVUPD (BX), Z2

fill512loop:
	VMOVUPD (SI), Z0
	VMULPD  Z2, Z0, Z3
	VMOVUPD Z3, (DI)
	VMULPD  Z1, Z0, Z3
	VMOVUPD Z3, (SI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    CX
	JNZ     fill512loop
	VZEROUPPER
	RET

// func fillStepAVX(lo, hi *block8, n int, pf, pl *block8)
TEXT ·fillStepAVX(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), SI
	MOVQ hi+8(FP), DI
	MOVQ n+16(FP), CX
	MOVQ pf+24(FP), AX
	MOVQ pl+32(FP), BX
	VMOVUPD (AX), Y1
	VMOVUPD 32(AX), Y4
	VMOVUPD (BX), Y2
	VMOVUPD 32(BX), Y5

fillavxloop:
	VMOVUPD (SI), Y0
	VMOVUPD 32(SI), Y3
	VMULPD  Y2, Y0, Y6
	VMULPD  Y5, Y3, Y7
	VMOVUPD Y6, (DI)
	VMOVUPD Y7, 32(DI)
	VMULPD  Y1, Y0, Y6
	VMULPD  Y4, Y3, Y7
	VMOVUPD Y6, (SI)
	VMOVUPD Y7, 32(SI)
	ADDQ    $64, SI
	ADDQ    $64, DI
	DECQ    CX
	JNZ     fillavxloop
	VZEROUPPER
	RET

// func segSumAVX512(dst *block8, probs *block8, perm *uint32, n int)
//
// dst = Σ probs[perm[i]] per lane, adding in perm order. n ≥ 1.
TEXT ·segSumAVX512(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ probs+8(FP), SI
	MOVQ perm+16(FP), DX
	MOVQ n+24(FP), CX
	VXORPD X0, X0, X0

seg512loop:
	MOVL    (DX), AX
	SHLQ    $6, AX
	VADDPD  (SI)(AX*1), Z0, Z0
	ADDQ    $4, DX
	DECQ    CX
	JNZ     seg512loop
	VMOVUPD Z0, (DI)
	VZEROUPPER
	RET

// func segSumAVX(dst *block8, probs *block8, perm *uint32, n int)
TEXT ·segSumAVX(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ probs+8(FP), SI
	MOVQ perm+16(FP), DX
	MOVQ n+24(FP), CX
	VXORPD X0, X0, X0
	VXORPD X1, X1, X1

segavxloop:
	MOVL   (DX), AX
	SHLQ   $6, AX
	VADDPD (SI)(AX*1), Y0, Y0
	VADDPD 32(SI)(AX*1), Y1, Y1
	ADDQ   $4, DX
	DECQ   CX
	JNZ    segavxloop
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VZEROUPPER
	RET
