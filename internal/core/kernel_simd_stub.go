//go:build !amd64

package core

// Non-amd64 builds always run the portable loops; the vector entry
// points exist only so the dispatch switch compiles, and are unreachable
// because kernelSIMD never leaves simdNone.
var kernelSIMD = simdNone

func fillStepAVX512(lo, hi *block8, n int, pf, pl *block8) {
	panic("core: SIMD kernel on non-amd64")
}

func fillStepAVX(lo, hi *block8, n int, pf, pl *block8) {
	panic("core: SIMD kernel on non-amd64")
}

func segSumAVX512(dst *block8, probs *block8, perm *uint32, n int) {
	panic("core: SIMD kernel on non-amd64")
}

func segSumAVX(dst *block8, probs *block8, perm *uint32, n int) {
	panic("core: SIMD kernel on non-amd64")
}
