package core

import (
	"testing"
)

// The dynamic twin of the hotalloc static gate: after one warm-up call
// populates the scratch pools, the evaluate hot paths must run without a
// single heap allocation per operation. A real regression allocates at
// least once per run and fails loudly; the < 1 threshold only tolerates
// a GC emptying a sync.Pool mid-measurement, which shows up as a
// fractional average over the 200 runs.

func TestPlanEvalZeroAllocs(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	pf := plan.BasePFail()
	if _, err := plan.Eval(pf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := plan.Eval(pf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 1 {
		t.Errorf("Plan.Eval allocates %.2f times per op in steady state, want 0", allocs)
	}
}

func TestEvalBatchIntoZeroAllocs(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	scenarios := make([][]float64, 32)
	for i := range scenarios {
		scenarios[i] = plan.BasePFail()
	}
	dst := make([]float64, len(scenarios))
	opt := BatchOptions{Parallelism: 1} // the inline drain fast path
	if err := plan.EvalBatchInto(dst, scenarios, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := plan.EvalBatchInto(dst, scenarios, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 1 {
		t.Errorf("EvalBatchInto (preallocated dst, parallelism 1) allocates %.2f times per op, want 0", allocs)
	}
}

// The scalar path (no kernel) must hold the same contract: a plan whose
// decomposition is trivially zero never builds a kernel, and the pooled
// evalScratch branch of drain is the one exercised.
func TestEvalScalarPathZeroAllocs(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut, Accum: AccumDirect})
	if err != nil {
		t.Fatal(err)
	}
	pf := plan.BasePFail()
	if _, err := plan.Eval(pf); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := plan.Eval(pf); err != nil {
			t.Fatal(err)
		}
	})
	if allocs >= 1 {
		t.Errorf("Plan.Eval (direct accumulation) allocates %.2f times per op, want 0", allocs)
	}
}
