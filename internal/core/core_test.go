package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
	"flowrel/internal/mincut"
	"flowrel/internal/reliability"
	"flowrel/internal/testutil"
)

// bridgeGraph: triangle {s,a,b} → bridge b→c → triangle {c,d,t}, all
// oriented toward t. The Fig. 2 shape.
func bridgeGraph() (*graph.Graph, graph.Demand, graph.EdgeID) {
	b := graph.NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	bb := b.AddNamedNode("b")
	c := b.AddNamedNode("c")
	d := b.AddNamedNode("d")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, 1, 0.1)
	b.AddEdge(s, bb, 1, 0.15)
	b.AddEdge(a, bb, 1, 0.2)
	bridge := b.AddEdge(bb, c, 2, 0.05)
	b.AddEdge(c, d, 1, 0.1)
	b.AddEdge(c, tt, 1, 0.12)
	b.AddEdge(d, tt, 1, 0.3)
	return b.MustBuild(), graph.Demand{S: s, T: tt, D: 1}, bridge
}

func TestBridgeMatchesNaive(t *testing.T) {
	g, dem, bridge := bridgeGraph()
	want, err := reliability.Naive(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reliability(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-want.Reliability) > 1e-12 {
		t.Fatalf("core %.15f vs naive %.15f", res.Reliability, want.Reliability)
	}
	if res.K != 1 || res.Cut[0] != bridge {
		t.Fatalf("cut = %v, want bridge %d", res.Cut, bridge)
	}
	if len(res.Assignments) != 1 {
		t.Fatalf("assignments = %v", res.Assignments)
	}
}

// TestBridgeEquationOne verifies Eq. 1: r = r(G_s)·(1-p(e'))·r(G_t).
func TestBridgeEquationOne(t *testing.T) {
	g, dem, bridge := bridgeGraph()
	res, err := Reliability(g, dem, Options{Bottleneck: []graph.EdgeID{bridge}})
	if err != nil {
		t.Fatal(err)
	}
	// r(G_s): reliability of the source triangle delivering 1 unit from s
	// to node b ("x" of the bridge).
	bt, err := mincut.Split(g, dem.S, dem.T, []graph.EdgeID{bridge})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := reliability.Naive(bt.Gs.G, graph.Demand{S: bt.Gs.NodeOf[dem.S], T: bt.XS[0], D: dem.D}, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := reliability.Naive(bt.Gt.G, graph.Demand{S: bt.YT[0], T: bt.Gt.NodeOf[dem.T], D: dem.D}, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := rs.Reliability * (1 - g.Edge(bridge).PFail) * rt.Reliability
	if math.Abs(res.Reliability-want) > 1e-12 {
		t.Fatalf("core %.15f vs Eq.1 %.15f", res.Reliability, want)
	}
}

func TestTriviallyZeroWhenCutTooThin(t *testing.T) {
	g, dem, _ := bridgeGraph()
	dem.D = 3 // bridge capacity is 2
	res, err := Reliability(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reliability != 0 {
		t.Fatalf("R = %g, want 0", res.Reliability)
	}
	if len(res.Assignments) != 0 {
		t.Fatalf("assignments = %v, want empty", res.Assignments)
	}
}

// twoBottleneck builds two triangles joined by two links, demand d=2:
// the Fig. 4 regime with 𝒟 = {(2,0),(1,1),(0,2)}.
func twoBottleneck() (*graph.Graph, graph.Demand, []graph.EdgeID) {
	b := graph.NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	c := b.AddNamedNode("c")
	d := b.AddNamedNode("d")
	e := b.AddNamedNode("e")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, 2, 0.1)
	b.AddEdge(s, c, 2, 0.2)
	b.AddEdge(a, c, 1, 0.15)
	m1 := b.AddEdge(a, d, 2, 0.05)
	m2 := b.AddEdge(c, e, 2, 0.08)
	b.AddEdge(d, e, 1, 0.12)
	b.AddEdge(d, tt, 2, 0.1)
	b.AddEdge(e, tt, 2, 0.2)
	return b.MustBuild(), graph.Demand{S: s, T: tt, D: 2}, []graph.EdgeID{m1, m2}
}

func TestTwoBottleneckMatchesNaive(t *testing.T) {
	g, dem, cut := twoBottleneck()
	want, err := reliability.Naive(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, side := range []SideEngine{SideFrontier, SideBinary, SideGrayCode} {
		for _, acc := range []Accumulation{AccumZeta, AccumDirect} {
			res, err := Reliability(g, dem, Options{Side: side, Accum: acc})
			if err != nil {
				t.Fatalf("side=%d accum=%d: %v", side, acc, err)
			}
			if math.Abs(res.Reliability-want.Reliability) > 1e-12 {
				t.Fatalf("side=%d accum=%d: core %.15f vs naive %.15f", side, acc, res.Reliability, want.Reliability)
			}
			if res.K != 2 {
				t.Fatalf("K = %d", res.K)
			}
			if len(res.Assignments) != 3 {
				t.Fatalf("|D| = %d, want 3 {(2,0),(1,1),(0,2)}", len(res.Assignments))
			}
		}
	}
	// Explicit bottleneck gives the same answer.
	res, err := Reliability(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-want.Reliability) > 1e-12 {
		t.Fatalf("explicit cut: %.15f vs %.15f", res.Reliability, want.Reliability)
	}
}

func TestErrors(t *testing.T) {
	g, dem, _ := twoBottleneck()
	if _, err := Reliability(nil, dem, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Reliability(g, graph.Demand{S: 0, T: 0, D: 1}, Options{}); err == nil {
		t.Fatal("bad demand accepted")
	}
	if _, err := Reliability(g, dem, Options{Bottleneck: []graph.EdgeID{0}}); err == nil {
		t.Fatal("non-cut bottleneck accepted")
	}
	if _, err := Reliability(g, dem, Options{MaxSideEdges: 2}); err == nil {
		t.Fatal("side limit not enforced")
	}
	if _, err := Reliability(g, dem, Options{MaxAssignmentSet: 2}); err == nil {
		t.Fatal("assignment limit not enforced")
	}
	if _, err := Reliability(g, dem, Options{Accum: Accumulation(99)}); err == nil {
		t.Fatal("unknown accumulation accepted")
	}
}

// plantBottleneck builds a random graph made of two weakly connected random
// blobs joined only by k bottleneck links, with guaranteed minimality.
func plantBottleneck(rng *rand.Rand, sideNodes, sideEdges, k, d int) (*graph.Graph, graph.Demand, []graph.EdgeID) {
	b := graph.NewBuilder()
	ns := sideNodes
	// Source side: nodes [0, ns); s = 0. Random weak spanning tree + extras.
	b.AddNodes(ns)
	for i := 1; i < ns; i++ {
		j := graph.NodeID(rng.Intn(i))
		if rng.Intn(2) == 0 {
			b.AddEdge(j, graph.NodeID(i), 1+rng.Intn(d+1), rng.Float64()*0.9)
		} else {
			b.AddEdge(graph.NodeID(i), j, 1+rng.Intn(d+1), rng.Float64()*0.9)
		}
	}
	for e := ns - 1; e < sideEdges; e++ {
		u := graph.NodeID(rng.Intn(ns))
		v := graph.NodeID(rng.Intn(ns))
		if u != v {
			b.AddEdge(u, v, 1+rng.Intn(d+1), rng.Float64()*0.9)
		}
	}
	// Sink side: nodes [ns, 2ns); t = last.
	b.AddNodes(ns)
	off := graph.NodeID(ns)
	for i := 1; i < ns; i++ {
		j := off + graph.NodeID(rng.Intn(i))
		if rng.Intn(2) == 0 {
			b.AddEdge(j, off+graph.NodeID(i), 1+rng.Intn(d+1), rng.Float64()*0.9)
		} else {
			b.AddEdge(off+graph.NodeID(i), j, 1+rng.Intn(d+1), rng.Float64()*0.9)
		}
	}
	for e := ns - 1; e < sideEdges; e++ {
		u := off + graph.NodeID(rng.Intn(ns))
		v := off + graph.NodeID(rng.Intn(ns))
		if u != v {
			b.AddEdge(u, v, 1+rng.Intn(d+1), rng.Float64()*0.9)
		}
	}
	s := graph.NodeID(0)
	t := off + graph.NodeID(ns-1)
	// Bottleneck links x_i → y_i. To guarantee minimality, ensure s
	// reaches x_i and y_i reaches t by adding direct links if needed.
	g0 := b.MustBuild()
	cut := make([]graph.EdgeID, 0, k)
	for i := 0; i < k; i++ {
		x := graph.NodeID(rng.Intn(ns))
		y := off + graph.NodeID(rng.Intn(ns))
		if !g0.Reaches(s, x, nil) {
			b.AddEdge(s, x, 1+rng.Intn(d+1), rng.Float64()*0.9)
		}
		if !g0.Reaches(y, t, nil) {
			b.AddEdge(y, t, 1+rng.Intn(d+1), rng.Float64()*0.9)
		}
		g0 = b.MustBuild()
		cut = append(cut, b.AddEdge(x, y, 1+rng.Intn(d+1), rng.Float64()*0.9))
	}
	return b.MustBuild(), graph.Demand{S: s, T: t, D: d}, cut
}

// Property: on random planted-bottleneck graphs, every core variant agrees
// with the naive baseline.
func TestQuickCoreMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		d := 1 + rng.Intn(3)
		g, dem, cut := plantBottleneck(rng, 2+rng.Intn(3), 2+rng.Intn(4), k, d)
		if g.NumEdges() > 18 {
			return true // keep naive cheap
		}
		want, err := reliability.Naive(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		for _, side := range []SideEngine{SideFrontier, SideBinary, SideGrayCode} {
			for _, acc := range []Accumulation{AccumZeta, AccumDirect} {
				res, err := Reliability(g, dem, Options{
					Bottleneck: cut, Side: side, Accum: acc, MaxAssignmentSet: 62,
				})
				if err != nil {
					// The planted cut can fail minimality if a random side
					// link shortcuts it; fall back to discovery.
					res, err = Reliability(g, dem, Options{Side: side, Accum: acc, MaxAssignmentSet: 62})
					if err != nil {
						return true // no small cut found: out of scope
					}
				}
				if math.Abs(res.Reliability-want.Reliability) > 1e-9 {
					t.Logf("seed %d side %d acc %d: core %.12f naive %.12f", seed, side, acc, res.Reliability, want.Reliability)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: discovered bottleneck (no explicit cut) also matches naive.
func TestQuickDiscoveredCutMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem, _ := plantBottleneck(rng, 2+rng.Intn(3), 2+rng.Intn(3), 1+rng.Intn(2), 1+rng.Intn(2))
		if g.NumEdges() > 16 {
			return true
		}
		want, err := reliability.Naive(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		res, err := Reliability(g, dem, Options{MaxBottleneck: 3, MaxAssignmentSet: 62})
		if err != nil {
			return true // no usable cut; fine
		}
		return math.Abs(res.Reliability-want.Reliability) <= 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCostModel(t *testing.T) {
	// §III-C: the number of realization checks is |𝒟|·(2^{|E_s|}+2^{|E_t|}).
	g, dem, cut := twoBottleneck()
	res, err := Reliability(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	wantChecks := int64(len(res.Assignments)) * int64(res.Stats.SideConfigs[0]+res.Stats.SideConfigs[1])
	if res.Stats.RealizationChecks != wantChecks {
		t.Fatalf("RealizationChecks = %d, want %d", res.Stats.RealizationChecks, wantChecks)
	}
	if res.Stats.SideConfigs[0] != 8 || res.Stats.SideConfigs[1] != 8 {
		t.Fatalf("SideConfigs = %v, want [8 8]", res.Stats.SideConfigs)
	}
	if !testutil.AlmostEqual(res.Alpha, 3.0/8.0, 0) {
		t.Fatalf("alpha = %g", res.Alpha)
	}
}

// TestLargeScale pushes the decomposition to a 40-link instance (two
// 19-link sides): far beyond naive enumeration's reach, solvable in a few
// seconds. Cross-checked against Monte Carlo. Skipped under -short.
func TestLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(104))
	g, dem, cut := plantBottleneck(rng, 8, 18, 2, 2)
	if g.NumEdges() > 40 {
		t.Skipf("instance has %d links; generator drifted", g.NumEdges())
	}
	res, err := Reliability(g, dem, Options{Bottleneck: cut, MaxSideEdges: 24, MaxAssignmentSet: 62})
	if err != nil {
		// The planted cut may fail minimality for this seed; that would be
		// a generator artifact, not an engine bug.
		t.Skipf("planted cut unusable: %v", err)
	}
	est, err := reliability.MonteCarlo(g, dem, 300000, 5, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-est.Reliability) > 5*est.StdErr+1e-9 {
		t.Fatalf("core %.6f vs MC %.6f ± %.6f on %d links", res.Reliability, est.Reliability, est.StdErr, g.NumEdges())
	}
	t.Logf("solved %d links (sides %v) exactly: R = %.6f", g.NumEdges(), res.SideEdges, res.Reliability)
}

// TestParallelCutLinks exercises a bottleneck made of two parallel links
// between the same pair of nodes — every stage (assignments, side arrays,
// classification) must treat them as distinct links.
func TestParallelCutLinks(t *testing.T) {
	b := graph.NewBuilder()
	s := b.AddNode()
	x := b.AddNode()
	y := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, x, 2, 0.1)
	c1 := b.AddEdge(x, y, 1, 0.2)
	c2 := b.AddEdge(x, y, 1, 0.3)
	b.AddEdge(y, tt, 2, 0.1)
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 2}
	want, err := reliability.Naive(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reliability(g, dem, Options{Bottleneck: []graph.EdgeID{c1, c2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-want.Reliability) > 1e-12 {
		t.Fatalf("core %.15f vs naive %.15f", res.Reliability, want.Reliability)
	}
	// d=2 over two unit links: only (1,1) fits.
	if len(res.Assignments) != 1 || res.Assignments[0].String() != "(1, 1)" {
		t.Fatalf("assignments = %v", res.Assignments)
	}
	// Hand check: everything must be up.
	hand := 0.9 * 0.8 * 0.7 * 0.9
	if math.Abs(res.Reliability-hand) > 1e-12 {
		t.Fatalf("R = %g, want %g", res.Reliability, hand)
	}
}

// TestSourceAdjacentCut exercises a bottleneck whose links leave the
// source directly (G_s is a single node with no links).
func TestSourceAdjacentCut(t *testing.T) {
	b := graph.NewBuilder()
	s := b.AddNode()
	y1 := b.AddNode()
	y2 := b.AddNode()
	tt := b.AddNode()
	c1 := b.AddEdge(s, y1, 1, 0.2)
	c2 := b.AddEdge(s, y2, 1, 0.2)
	b.AddEdge(y1, tt, 1, 0.1)
	b.AddEdge(y2, tt, 1, 0.1)
	b.AddEdge(y1, y2, 1, 0.1)
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 1}
	want, err := reliability.Naive(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Reliability(g, dem, Options{Bottleneck: []graph.EdgeID{c1, c2}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-want.Reliability) > 1e-12 {
		t.Fatalf("core %.15f vs naive %.15f", res.Reliability, want.Reliability)
	}
	if res.SideEdges[0] != 0 {
		t.Fatalf("G_s should have no links, got %d", res.SideEdges[0])
	}
	// The Gray-code engine must handle the empty side too.
	gray, err := Reliability(g, dem, Options{Bottleneck: []graph.EdgeID{c1, c2}, Side: SideGrayCode})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(gray.Reliability, res.Reliability, 0) {
		t.Fatalf("gray %.17g vs recompute %.17g", gray.Reliability, res.Reliability)
	}
}

func TestParallelismConsistency(t *testing.T) {
	g, dem, cut := twoBottleneck()
	r1, err := Reliability(g, dem, Options{Bottleneck: cut, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Reliability(g, dem, Options{Bottleneck: cut, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk boundaries are independent of the worker count, so the result
	// is bit-identical, not merely close.
	if !testutil.AlmostEqual(r1.Reliability, r8.Reliability, 0) {
		t.Fatalf("parallelism changes result: %.17g vs %.17g", r1.Reliability, r8.Reliability)
	}
}
