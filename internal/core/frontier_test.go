package core

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"flowrel/internal/anytime"
	"flowrel/internal/graph"
)

// compileEngines is the cross-checked engine set: the frontier walk must
// be indistinguishable from the dense engines in everything but cost.
var compileEngines = []struct {
	name string
	side SideEngine
}{
	{"frontier", SideFrontier},
	{"binary", SideBinary},
	{"graycode", SideGrayCode},
}

// TestFrontierEquivalenceCorpus is the tentpole's contract on the 50-graph
// planted-bottleneck corpus: SideFrontier, SideBinary and SideGrayCode
// must produce bit-identical realization arrays for both sides, and charge
// the anytime budget the identical number of configurations — pruning
// changes what is *paid*, never what is *counted*. The frontier compile is
// additionally audited: every (assignment, configuration) pair must be
// accounted to exactly one of capacity-pruned, closure-pruned, or checked
// work that the dense engines also perform.
func TestFrontierEquivalenceCorpus(t *testing.T) {
	const wantGraphs = 50
	count := 0
	for seed := int64(0); count < wantGraphs && seed < 50*wantGraphs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		d := 1 + rng.Intn(3)
		g, dem, cut := plantBottleneck(rng, 2+rng.Intn(3), 2+rng.Intn(4), k, d)
		if g.NumEdges() > 14 {
			continue
		}
		type outcome struct {
			plan    *Plan
			charged uint64
		}
		var results []outcome
		usable := true
		for _, eng := range compileEngines {
			ctl := anytime.New(context.Background(), anytime.Budget{})
			opt := Options{Bottleneck: cut, MaxAssignmentSet: 62, Side: eng.side, Ctl: ctl}
			plan, err := Compile(g, dem, opt)
			if err != nil {
				// The planted cut can fail minimality; fall back to
				// discovery so every engine sees the same decomposition.
				ctl = anytime.New(context.Background(), anytime.Budget{})
				opt = Options{MaxAssignmentSet: 62, Side: eng.side, Ctl: ctl}
				plan, err = Compile(g, dem, opt)
				if err != nil {
					usable = false
					break
				}
			}
			results = append(results, outcome{plan, ctl.Configs()})
		}
		if !usable {
			continue
		}
		count++
		ref := results[0]
		for i, res := range results[1:] {
			name := compileEngines[i+1].name
			for side := 0; side < 2; side++ {
				a, b := ref.plan.realized[side], res.plan.realized[side]
				if len(a) != len(b) {
					t.Fatalf("seed %d: %s side %d has %d configs, frontier %d", seed, name, side, len(b), len(a))
				}
				for m := range a {
					if a[m] != b[m] {
						t.Fatalf("seed %d: side %d mask %#x: frontier realized %#x, %s %#x",
							seed, side, m, a[m], name, b[m])
					}
				}
			}
			if ref.charged != res.charged {
				t.Fatalf("seed %d: frontier charged %d configs, %s charged %d — budgets diverge",
					seed, ref.charged, name, res.charged)
			}
		}
		// The audit: pairs the frontier skipped plus the max-flow calls it
		// paid cannot exceed the dense pair count, and the per-pair
		// accounting (RealizationChecks) must equal the dense engines'.
		fst := ref.plan.Stats
		dense := results[1].plan.Stats
		if fst.RealizationChecks != dense.RealizationChecks {
			t.Fatalf("seed %d: frontier checked %d pairs, binary %d", seed, fst.RealizationChecks, dense.RealizationChecks)
		}
		if fst.PrunedCapacity+fst.PrunedClosure > fst.RealizationChecks {
			t.Fatalf("seed %d: pruned %d+%d pairs out of %d checked",
				seed, fst.PrunedCapacity, fst.PrunedClosure, fst.RealizationChecks)
		}
		if dense.PrunedCapacity != 0 || dense.PrunedClosure != 0 || dense.FrontierMaxFlowCalls != 0 {
			t.Fatalf("seed %d: dense engine reported frontier counters: %+v", seed, dense)
		}
	}
	if count < wantGraphs {
		t.Fatalf("corpus produced only %d usable graphs, want ≥ %d", count, wantGraphs)
	}
}

// TestFrontierCancellation stops each engine mid-build (via the TestHook,
// after a fixed number of visited configurations) and checks the anytime
// contract: compile is all-or-nothing, so every engine must return an
// error wrapping anytime.ErrInterrupted, and the configurations charged
// before the stop can never exceed a full run's total.
func TestFrontierCancellation(t *testing.T) {
	g, dem, cut := twoBottleneck()
	full, err := Reliability(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	total := uint64(len(full.Assignments)) * (full.Stats.SideConfigs[0] + full.Stats.SideConfigs[1])
	for _, eng := range compileEngines {
		t.Run(eng.name, func(t *testing.T) {
			ctl := anytime.New(context.Background(), anytime.Budget{})
			var visited atomic.Int64
			opt := Options{
				Bottleneck: cut,
				Side:       eng.side,
				Ctl:        ctl,
				TestHook: func(uint64) {
					if visited.Add(1) == 5 {
						ctl.Stop("test cancellation")
					}
				},
			}
			_, err := Compile(g, dem, opt)
			if err == nil {
				t.Fatal("interrupted compile returned a plan")
			}
			if !errors.Is(err, anytime.ErrInterrupted) {
				t.Fatalf("error does not wrap ErrInterrupted: %v", err)
			}
			if ctl.Configs() > total {
				t.Fatalf("interrupted run charged %d configs, full run charges %d", ctl.Configs(), total)
			}
		})
	}
}

// TestFrontierFallbackTinySide: sides below frontierMinEdges silently use
// the binary walk — same answer, no frontier counters.
func TestFrontierFallbackTinySide(t *testing.T) {
	// Source-adjacent cut: G_s has zero links, G_t has three.
	b := graph.NewBuilder()
	s := b.AddNode()
	y1 := b.AddNode()
	y2 := b.AddNode()
	tt := b.AddNode()
	c1 := b.AddEdge(s, y1, 1, 0.2)
	c2 := b.AddEdge(s, y2, 1, 0.2)
	b.AddEdge(y1, tt, 1, 0.1)
	b.AddEdge(y2, tt, 1, 0.1)
	b.AddEdge(y1, y2, 1, 0.1)
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 1}
	res, err := Reliability(g, dem, Options{Bottleneck: []graph.EdgeID{c1, c2}, Side: SideFrontier})
	if err != nil {
		t.Fatal(err)
	}
	bin, err := Reliability(g, dem, Options{Bottleneck: []graph.EdgeID{c1, c2}, Side: SideBinary})
	if err != nil {
		t.Fatal(err)
	}
	//flowrelvet:exactfloat identical realized arrays make the evaluation bit-identical, not merely close (reviewed: PR-5)
	if res.Reliability != bin.Reliability {
		t.Fatalf("frontier %.17g vs binary %.17g", res.Reliability, bin.Reliability)
	}
	// G_s (0 links) fell back to binary; G_t (3 links) ran the frontier.
	if res.Stats.FrontierMaxFlowCalls <= 0 {
		t.Fatalf("frontier never ran on the 3-link side: %+v", res.Stats)
	}
}
