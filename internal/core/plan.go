package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"flowrel/internal/anytime"
	"flowrel/internal/assign"
	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/mincut"
	"flowrel/internal/stats"
	"flowrel/internal/subset"
)

// Plan is the compiled form of a bottleneck decomposition: everything the
// solver learns about the *structure* of the instance — the cut, the
// assignment family 𝒟, and the two side realization arrays — none of
// which depends on the links' failure probabilities. Building a Plan costs
// the full O(2^{α|E|}·|V|·|E|) side-array phase (every max-flow call the
// solver will ever make); evaluating it against a probability vector costs
// only the aggregation O(2^{|E_s|} + 2^{|E_t|} + |𝒟|·2^{|𝒟|} + 3^k) —
// microseconds, no max-flow calls. One compile therefore answers every
// probability-only question about the instance: sweep curves, Birnbaum
// conditionals (p(e) ∈ {0,1}), shared-risk scenarios, what-if re-weightings.
//
// A Plan is immutable after Compile and safe for concurrent Eval calls.
type Plan struct {
	// Cut is the bottleneck link set E' (original-graph link IDs).
	Cut []graph.EdgeID
	// Alpha is the balance max(|E_s|, |E_t|)/|E| of the split.
	Alpha float64
	// Assignments is the enumerated family 𝒟 (empty when the cut cannot
	// carry the demand even fully operational — the plan then evaluates to
	// zero for every probability vector).
	Assignments []assign.Assignment
	// SideEdges is (|E_s|, |E_t|).
	SideEdges [2]int
	// Stats is the work of the compile phase; Eval adds nothing to it.
	Stats Stats

	numEdges  int                // links in the original graph
	version   int                // 0 for a cold compile; parent version + 1 after MutatePlan
	bt        *mincut.Bottleneck // the validated split, retained so MutatePlan can patch it
	ds        *assign.Set
	classes   []uint64 // ds.Classify(), indexed by bottleneck subset mask
	accum     Accumulation
	realized  [2][]uint64       // per side: realized-assignment mask per configuration
	sideLinks [2][]graph.EdgeID // per side: side link index → original link ID
	basePFail []float64         // the graph's probabilities at compile time
	scratch   sync.Pool         // *evalScratch (scalar evaluator)

	// kern is the data-oriented evaluate phase (kernel.go): term tables
	// and segment groupings flattened at compile time. nil when the
	// instance is outside the kernel guards; evaluation then uses the
	// scalar path. kpool1/kpool8 pool the one-lane and eight-lane
	// kernel scratches.
	kern   *evalKernel
	kpool1 sync.Pool // *kscratch1
	kpool8 sync.Pool // *kscratch8
	// blockHook, when non-nil, runs once per work item inside the batch
	// worker loops — a test seam for asserting bounded concurrency.
	blockHook func()

	// deltaState hands each side's warm delta-solver state down the
	// mutation chain (delta.go). It is solver scratch, not observable plan
	// state: consuming or storing it never changes what the plan computes,
	// and the atomic pointer keeps concurrent MutatePlan calls on the same
	// parent race-free — exactly one consumes the warm state, the rest
	// build fresh, with bit-identical results either way.
	deltaState [2]atomic.Pointer[deltaSideState]
}

// evalScratch holds the per-evaluation buffers so concurrent Eval calls
// never share mutable state; instances are pooled on the Plan.
type evalScratch struct {
	probs [2][]float64 // per side: configuration probability per mask
	q     [2][]float64 // per side: aggregated mass per realized set, zeta'd
	pCut  []float64    // bottleneck link probabilities
}

// Compile runs the structure phase once: cut search (unless fixed by
// opt.Bottleneck), assignment enumeration and parallel side-array
// construction. It honours opt.Ctl for cooperative cancellation; an
// interrupted compile returns an error wrapping anytime.ErrInterrupted
// (a half-built side array certifies nothing).
func Compile(g *graph.Graph, dem graph.Demand, opt Options) (*Plan, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	opt.setDefaults()

	var bt *mincut.Bottleneck
	var err error
	searchStart := time.Now()
	if opt.Bottleneck != nil {
		bt, err = mincut.Split(g, dem.S, dem.T, opt.Bottleneck)
	} else {
		bt, err = mincut.Find(g, dem.S, dem.T, opt.MaxBottleneck)
	}
	if err != nil {
		return nil, err
	}
	if tr := opt.Ctl.Tracer(); tr != nil {
		tr.OnPhase(stats.PhaseEvent{
			Engine:   "core",
			Phase:    "cut-search",
			Duration: time.Since(searchStart),
		})
	}
	return CompileWithBottleneck(g, dem, bt, opt)
}

// CompileWithBottleneck compiles on a pre-validated bottleneck split.
func CompileWithBottleneck(g *graph.Graph, dem graph.Demand, bt *mincut.Bottleneck, opt Options) (*Plan, error) {
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	opt.setDefaults()
	if opt.Accum != AccumZeta && opt.Accum != AccumDirect {
		return nil, fmt.Errorf("core: unknown accumulation strategy %d", opt.Accum)
	}
	compileStart := time.Now()

	p := &Plan{
		Cut:       append([]graph.EdgeID(nil), bt.Cut...),
		Alpha:     bt.Alpha,
		SideEdges: [2]int{bt.Gs.G.NumEdges(), bt.Gt.G.NumEdges()},
		numEdges:  g.NumEdges(),
		bt:        bt,
		accum:     opt.Accum,
	}
	p.basePFail = make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		p.basePFail[i] = e.PFail
	}

	// §III-B: the assignment set 𝒟.
	caps := make([]int, bt.K())
	for i, eid := range bt.Cut {
		caps[i] = g.Edge(eid).Cap
	}
	ds, err := assign.NewSet(caps, dem.D)
	if err != nil {
		return nil, err
	}
	p.Assignments = ds.Assignments
	if ds.Len() == 0 {
		// The cut cannot carry d even with every link alive: the plan is
		// trivially zero for any probability vector (paper, §III-A).
		return p, nil
	}
	if ds.Len() > opt.MaxAssignmentSet {
		return nil, fmt.Errorf("core: |𝒟| = %d exceeds MaxAssignmentSet %d (raise the limit or reduce d·k)", ds.Len(), opt.MaxAssignmentSet)
	}
	p.ds = ds
	p.classes = ds.Classify()

	// §III-C: per-side realization arrays (all the max-flow work).
	sideS, err := buildSide(bt.Gs, bt.Gs.NodeOf[dem.S], bt.XS, true, ds, &opt, &p.Stats, 0)
	if err != nil {
		return nil, err
	}
	sideT, err := buildSide(bt.Gt, bt.Gt.NodeOf[dem.T], bt.YT, false, ds, &opt, &p.Stats, 1)
	if err != nil {
		return nil, err
	}
	p.realized[0] = sideS.realized
	p.realized[1] = sideT.realized
	p.sideLinks[0] = append([]graph.EdgeID(nil), bt.Gs.ParentEdge...)
	p.sideLinks[1] = append([]graph.EdgeID(nil), bt.Gt.ParentEdge...)

	mCompiles.Inc()
	mCompileTime.Observe(time.Since(compileStart))
	mSideConfigs.Add(int64(p.Stats.SideConfigs[0] + p.Stats.SideConfigs[1]))
	mMaxFlowCalls.Add(p.Stats.MaxFlowCalls)
	mAugmentingPaths.Add(p.Stats.AugmentingPaths)
	mRealizationChecks.Add(p.Stats.RealizationChecks)
	mPrunedCapacity.Add(p.Stats.PrunedCapacity)
	mPrunedClosure.Add(p.Stats.PrunedClosure)
	mFrontierMaxFlow.Add(p.Stats.FrontierMaxFlowCalls)

	p.installEvalPhase(p.compileKernel())
	return p, nil
}

// installEvalPhase wires the evaluate phase onto a structurally complete
// plan: the pooled scalar scratch and, when k is non-nil, the kernel
// tables with their scratch pools.
func (p *Plan) installEvalPhase(k *evalKernel) {
	n := p.ds.Len()
	p.scratch.New = func() any {
		return &evalScratch{
			probs: [2][]float64{
				make([]float64, uint64(1)<<uint(p.SideEdges[0])),
				make([]float64, uint64(1)<<uint(p.SideEdges[1])),
			},
			q: [2][]float64{
				make([]float64, uint64(1)<<uint(n)),
				make([]float64, uint64(1)<<uint(n)),
			},
			pCut: make([]float64, len(p.Cut)),
		}
	}
	if k != nil {
		p.kern = k
		p.Stats.KernelTerms = int64(len(k.termX))
		p.Stats.KernelSegments = int64(len(k.segRM[0]) + len(k.segRM[1]))
		p.Stats.KernelLanes = int64(k.lanes)
		p.kpool1.New = func() any { return newKScratch1(p) }
		p.kpool8.New = func() any { return newKScratch8(p) }
	}
}

// MutatePlan compiles the successor of parent after the single-link
// mutation mut. gOld is the graph parent was compiled from; g and remap
// must be mut.Apply's results on it. When the mutation leaves the
// bottleneck cut (and its capacities) intact, the unaffected side's
// realization array and the shared assignment structures transfer from
// the parent and only the touched side is patched — re-running max-flow
// solely for configurations whose feasibility the mutation could change;
// otherwise it falls back to a cold compile on the re-searched cut. The
// result is always bit-identical to CompileWithBottleneck on the mutated
// graph, charges opt.Ctl the same configuration totals, and is a new
// immutable Plan — the parent is never written.
func MutatePlan(parent *Plan, gOld, g *graph.Graph, dem graph.Demand, mut graph.Mutation, remap []graph.EdgeID, opt Options) (*Plan, error) {
	if parent == nil {
		return nil, fmt.Errorf("core: MutatePlan requires a parent plan")
	}
	if gOld == nil || g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	switch mut.Kind {
	case graph.MutateCapacity, graph.MutateAdd, graph.MutateRemove:
	default:
		return nil, fmt.Errorf("core: unknown mutation kind %d", int(mut.Kind))
	}
	if len(remap) != gOld.NumEdges() {
		return nil, fmt.Errorf("core: MutatePlan remap has %d entries for %d parent links", len(remap), gOld.NumEdges())
	}
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	opt.setDefaults()
	if opt.Accum != AccumZeta && opt.Accum != AccumDirect {
		return nil, fmt.Errorf("core: unknown accumulation strategy %d", opt.Accum)
	}
	start := time.Now()
	child, err := mutateCompile(parent, gOld, g, dem, mut, remap, opt)
	if err != nil {
		return nil, err
	}
	child.version = parent.version + 1
	mDeltaTime.Observe(time.Since(start))
	return child, nil
}

// mutateCompile is MutatePlan after validation: classify how much of the
// parent survives, then patch or fall back.
func mutateCompile(parent *Plan, gOld, g *graph.Graph, dem graph.Demand, mut graph.Mutation, remap []graph.EdgeID, opt Options) (*Plan, error) {
	if parent.ds == nil {
		// Trivial parent (its cut cannot carry the demand): there are no
		// realization arrays to transfer, so compile the child cold.
		mDeltaFallbacks.Inc()
		return Compile(g, dem, opt)
	}

	// Re-establish the bottleneck on the mutated graph. The cut search is
	// capacity-blind, so a capacity mutation provably keeps the parent's
	// winning cut and the search is skipped (mincut never charges the
	// budget, so skipping it preserves cold-compile charge parity); a
	// topology mutation re-runs the search and the parent survives only
	// if the winner is its own cut under the link-ID remap.
	searchStart := time.Now()
	var bt *mincut.Bottleneck
	var err error
	switch {
	case opt.Bottleneck != nil:
		bt, err = mincut.Split(g, dem.S, dem.T, opt.Bottleneck)
	case mut.Kind == graph.MutateCapacity:
		// Split's validation is topology-only, so when the parent kept its
		// split the capacity change patches it in place of re-deriving it.
		if pb := parent.bt; pb != nil && !cutContains(parent.Cut, mut.Link) {
			bt = patchSplitCapacity(pb, parent, mut)
		}
		if bt == nil {
			bt, err = mincut.Split(g, dem.S, dem.T, parent.Cut)
		}
	default:
		bt, err = mincut.Find(g, dem.S, dem.T, opt.MaxBottleneck)
	}
	if err != nil {
		return nil, err
	}
	if tr := opt.Ctl.Tracer(); tr != nil {
		tr.OnPhase(stats.PhaseEvent{
			Engine:   "core",
			Phase:    "cut-search",
			Duration: time.Since(searchStart),
		})
	}

	cut2, ok := remapCutLinks(parent.Cut, remap)
	if !ok || !equalCuts(bt.Cut, cut2) {
		// The bottleneck moved or a cut link vanished: nothing below the
		// cut survives.
		mDeltaFallbacks.Inc()
		return CompileWithBottleneck(g, dem, bt, opt)
	}
	if mut.Kind == graph.MutateCapacity && cutContains(parent.Cut, mut.Link) {
		// Same cut, new capacity on it: the assignment family 𝒟 changes
		// wholesale and both sides' arrays are indexed by it.
		mDeltaFallbacks.Inc()
		return CompileWithBottleneck(g, dem, bt, opt)
	}

	// Locate the touched side and the mutated link's side-bit position.
	var touched, j int
	switch mut.Kind {
	case graph.MutateAdd:
		// The new link has the highest parent ID, and Induced preserves
		// parent order, so it must sit last in its side's link list.
		newID := graph.EdgeID(g.NumEdges() - 1)
		if idx := len(bt.Gs.ParentEdge) - 1; idx >= 0 && bt.Gs.ParentEdge[idx] == newID {
			touched, j = 0, idx
		} else if idx := len(bt.Gt.ParentEdge) - 1; idx >= 0 && bt.Gt.ParentEdge[idx] == newID {
			touched, j = 1, idx
		} else {
			mDeltaFallbacks.Inc()
			return CompileWithBottleneck(g, dem, bt, opt)
		}
	default:
		var onSide bool
		touched, j, onSide = locateSideLink(parent, mut.Link)
		if !onSide {
			mDeltaFallbacks.Inc()
			return CompileWithBottleneck(g, dem, bt, opt)
		}
	}
	sideNew := [2][]graph.EdgeID{bt.Gs.ParentEdge, bt.Gt.ParentEdge}
	other := 1 - touched
	skip, tail := -1, 0
	if mut.Kind == graph.MutateRemove {
		skip = j
	}
	if mut.Kind == graph.MutateAdd {
		tail = 1
	}
	touchedNew := sideNew[touched]
	if !sideAligned(parent.sideLinks[other], remap, sideNew[other], -1) ||
		!sideAligned(parent.sideLinks[touched], remap, touchedNew[:len(touchedNew)-tail], skip) {
		mDeltaFallbacks.Inc()
		return CompileWithBottleneck(g, dem, bt, opt)
	}

	// Same guards, same messages, same order as a cold compile.
	ds := parent.ds
	if ds.Len() > opt.MaxAssignmentSet {
		return nil, fmt.Errorf("core: |𝒟| = %d exceeds MaxAssignmentSet %d (raise the limit or reduce d·k)", ds.Len(), opt.MaxAssignmentSet)
	}
	for _, sub := range [2]*graph.Subgraph{bt.Gs, bt.Gt} {
		if m := sub.G.NumEdges(); m > opt.MaxSideEdges {
			return nil, fmt.Errorf("core: component has %d links, exceeding MaxSideEdges %d", m, opt.MaxSideEdges)
		}
	}

	p := &Plan{
		Cut:         append([]graph.EdgeID(nil), bt.Cut...),
		Alpha:       bt.Alpha,
		Assignments: ds.Assignments,
		SideEdges:   [2]int{bt.Gs.G.NumEdges(), bt.Gt.G.NumEdges()},
		numEdges:    g.NumEdges(),
		bt:          bt,
		accum:       opt.Accum,
	}
	if mut.Kind == graph.MutateCapacity {
		// A capacity change keeps every failure probability; share the
		// parent's vector (immutable after compile, like the realization
		// arrays below).
		p.basePFail = parent.basePFail
	} else {
		p.basePFail = make([]float64, g.NumEdges())
		for i, e := range g.Edges() {
			p.basePFail[i] = e.PFail
		}
	}
	p.ds = ds
	p.classes = parent.classes
	n := uint64(ds.Len())

	// Untouched side: the realization array transfers verbatim (shared —
	// both plans are immutable after compile). Charge exactly what a cold
	// enumeration of this side would have charged.
	p.realized[other] = parent.realized[other]
	p.sideLinks[other] = sideNew[other]
	otherConfigs := uint64(1) << uint(len(sideNew[other]))
	p.Stats.SideConfigs[other] = otherConfigs
	p.Stats.RealizationChecks += int64(otherConfigs * n)
	p.Stats.DeltaReused += int64(otherConfigs * n)
	if !opt.Ctl.Charge(otherConfigs*n, 0) {
		return nil, fmt.Errorf("core: delta compile interrupted: %w", opt.Ctl.Err())
	}

	// Touched side: patch against the parent array.
	buildStart := time.Now()
	mTouched := len(touchedNew)
	configs := uint64(1) << uint(mTouched)
	p.Stats.SideConfigs[touched] = configs
	var out []uint64
	var st *deltaSideState
	switch {
	case mut.Kind == graph.MutateRemove:
		// Pure index extraction — no solving for the array itself: charge
		// the child side's full enumeration up front, then fill.
		if !opt.Ctl.Charge(configs*n, 0) {
			return nil, fmt.Errorf("core: delta compile interrupted: %w", opt.Ctl.Err())
		}
		out = make([]uint64, configs)
		extractRemovedInto(out, parent.realized[touched], j)
		p.Stats.RealizationChecks += int64(configs * n)
		p.Stats.DeltaReused += int64(configs * n)
		// The warm solver state survives the removal when the dead arc can
		// be retired in place; the incremental flow repairs it pays for are
		// the state's only max-flow work, counted against this plan.
		if st0 := parent.deltaState[touched].Swap(nil); st0 != nil {
			var prevSub *graph.Subgraph
			if pb := parent.bt; pb != nil {
				prevSub = [2]*graph.Subgraph{pb.Gs, pb.Gt}[touched]
			}
			sub := [2]*graph.Subgraph{bt.Gs, bt.Gt}[touched]
			netBase := snapshotNets(st0.w)
			if adoptRemovedLink(st0, sub, prevSub, j) {
				now := snapshotNets(st0.w)
				p.Stats.MaxFlowCalls += now.calls - netBase.calls
				p.Stats.AugmentUnits += now.units - netBase.units
				p.Stats.AugmentingPaths += now.paths - netBase.paths
				st = st0
			}
		}
	case mut.Kind == graph.MutateCapacity && mut.Cap == gOld.Edge(mut.Link).Cap:
		// The capacity did not actually change: the whole side transfers,
		// shared pointer-wise like the untouched side, charged in bulk.
		if !opt.Ctl.Charge(configs*n, 0) {
			return nil, fmt.Errorf("core: delta compile interrupted: %w", opt.Ctl.Err())
		}
		out = parent.realized[touched]
		p.Stats.RealizationChecks += int64(configs * n)
		p.Stats.DeltaReused += int64(configs * n)
		st = parent.deltaState[touched].Swap(nil)
	default:
		var sub *graph.Subgraph
		var terminal graph.NodeID
		var ends []graph.NodeID
		var toSink bool
		if touched == 0 {
			sub, terminal, ends, toSink = bt.Gs, bt.Gs.NodeOf[dem.S], bt.XS, true
		} else {
			sub, terminal, ends, toSink = bt.Gt, bt.Gt.NodeOf[dem.T], bt.YT, false
		}
		// The parent's warm solver state (if no other successor claimed it)
		// carries over: a capacity mutation leaves the side's topology
		// intact, and an added link is appended to the warm networks as the
		// side's new top bit. When neither applies the state is rebuilt and
		// seeds the new chain.
		st = parent.deltaState[touched].Swap(nil)
		if st != nil && mut.Kind == graph.MutateAdd {
			var prevSub *graph.Subgraph
			if pb := parent.bt; pb != nil {
				prevSub = [2]*graph.Subgraph{pb.Gs, pb.Gt}[touched]
			}
			if !adoptAddedLink(st, sub, prevSub) {
				st = nil
			}
		}
		var f *frontierCtx
		var w *frontierWorker
		if st != nil {
			f, w = st.f, st.w
			f.opt = &opt
			w.stats = Stats{}
		} else {
			f = newDeltaSide(sub, terminal, ends, toSink, ds, &opt)
			w = &frontierWorker{
				nets: make([]*maxflow.Network, ds.Len()),
				cur:  make([]uint64, ds.Len()),
				val:  make([]int, ds.Len()),
			}
			st = &deltaSideState{f: f, w: w}
		}
		netBase := snapshotNets(w)
		mode := deltaAdd
		walkBit := mTouched - 1
		if mut.Kind == graph.MutateCapacity {
			walkBit = j
			if mut.Cap >= gOld.Edge(mut.Link).Cap {
				mode = deltaGrow
			} else {
				mode = deltaShrink
			}
			// The walk copies-on-first-write: a toggle that changes no
			// word hands the parent's array back untouched, and the
			// common no-op case never allocates.
			out = parent.realized[touched]
			// Patch the new capacity into the solver context: the
			// prototype (future clones), the capacity-bound vector and
			// every warm network, repairing the flows it carries.
			f.caps[j] = mut.Cap
			f.proto.SetBaseCapDirected(f.handles[j], mut.Cap)
			for j2, nw := range w.nets {
				if nw != nil {
					w.val[j2] -= nw.SetBaseCapDirectedIncremental(f.handles[j], mut.Cap, f.src, f.dst)
				}
			}
		} else {
			out = make([]uint64, configs)
			copy(out[:configs/2], parent.realized[touched])
		}
		var wErr error
		func() {
			cur := uint64(0)
			defer anytime.RecoverInto(&wErr, opt.Ctl, "core delta walk", &cur)
			out, _ = walkDelta(f, w, out, walkBit, mode, &cur)
		}()
		foldWorker(&p.Stats, w, netBase)
		if wErr != nil {
			return nil, wErr
		}
	}
	if opt.Ctl.Stopped() {
		return nil, fmt.Errorf("core: delta compile interrupted: %w", opt.Ctl.Err())
	}
	p.realized[touched] = out
	p.sideLinks[touched] = touchedNew
	p.deltaState[touched].Store(st)
	p.deltaState[other].Store(parent.deltaState[other].Swap(nil))
	if tr := opt.Ctl.Tracer(); tr != nil {
		tr.OnPhase(stats.PhaseEvent{
			Engine:       "core",
			Phase:        fmt.Sprintf("mutate/side/%d", touched),
			Duration:     time.Since(buildStart),
			Configs:      p.Stats.SideConfigs[touched],
			MaxFlowCalls: p.Stats.MaxFlowCalls,
		})
	}

	mDeltaCompiles.Inc()
	mSideConfigs.Add(int64(p.Stats.SideConfigs[0] + p.Stats.SideConfigs[1]))
	mMaxFlowCalls.Add(p.Stats.MaxFlowCalls)
	mAugmentingPaths.Add(p.Stats.AugmentingPaths)
	mRealizationChecks.Add(p.Stats.RealizationChecks)
	mPrunedCapacity.Add(p.Stats.PrunedCapacity)
	mPrunedClosure.Add(p.Stats.PrunedClosure)
	mFrontierMaxFlow.Add(p.Stats.FrontierMaxFlowCalls)
	mDeltaReused.Add(p.Stats.DeltaReused)

	// When the walk proved the touched side unchanged, both realization
	// arrays are the parent's own and the kernel tables — functions of the
	// arrays and the shared assignment structure only — transfer wholesale
	// (including a nil kernel: the guards are structure-only, so the parent
	// being outside them means the child is too).
	if sameWords(p.realized[touched], parent.realized[touched]) && p.accum == parent.accum {
		p.installEvalPhase(parent.kern)
	} else {
		p.installEvalPhase(p.compileKernelDelta(parent, touched))
	}
	return p, nil
}

// sameWords reports whether two slices share the same backing array (the
// pointer-wise transfer the delta path uses for unchanged sides).
func sameWords(a, b []uint64) bool {
	return len(a) == len(b) && len(a) > 0 && &a[0] == &b[0]
}

// setBlockHook installs the bounded-concurrency test seam: the hook runs
// once per work item inside the batch worker loops. Test-only; must be
// called before any concurrent use of the plan.
func (p *Plan) setBlockHook(h func()) { p.blockHook = h }

// Version returns the plan's mutation depth: 0 for a cold compile,
// parent version + 1 for each MutatePlan successor.
func (p *Plan) Version() int { return p.version }

// K returns the number of bottleneck links.
func (p *Plan) K() int { return len(p.Cut) }

// NumEdges returns the link count of the compiled graph; Eval probability
// vectors must have exactly this length.
func (p *Plan) NumEdges() int { return p.numEdges }

// BasePFail returns a copy of the per-link failure probabilities the graph
// carried at compile time — the natural starting point for building
// what-if vectors.
func (p *Plan) BasePFail() []float64 {
	return append([]float64(nil), p.basePFail...)
}

// Eval computes the exact reliability for the given per-link failure
// probabilities (indexed by original link ID; nil means the compile-time
// probabilities). Only the probability aggregation and accumulation run —
// no max-flow calls — so an Eval costs microseconds where a fresh solve
// costs the full side-array construction. Conditioning a link up or down
// is pfail[e] = 0 or 1; capacities cannot change without recompiling.
//
//flowrelvet:hotpath the public evaluate entry point: after validation, one pooled scratch and zero heap allocations in steady state (reviewed: PR-8)
func (p *Plan) Eval(pfail []float64) (float64, error) {
	if pfail == nil {
		pfail = p.basePFail
	}
	if len(pfail) != p.numEdges {
		return 0, fmt.Errorf("core: Eval probability vector has %d entries, plan was compiled for %d links", len(pfail), p.numEdges)
	}
	for i, v := range pfail {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return 0, fmt.Errorf("core: Eval probability %g for link %d outside [0, 1]", v, i)
		}
	}
	mEvals.Inc()
	if p.ds == nil {
		return 0, nil
	}
	if p.kern != nil {
		return p.evalOneKernel(pfail), nil
	}
	sc := p.scratch.Get().(*evalScratch)
	defer p.scratch.Put(sc)
	return p.evalScalarUnchecked(sc, pfail), nil
}

// EvalScalar is Eval on the scalar (pre-kernel) evaluate phase,
// regardless of whether the plan compiled kernel tables. It is the
// reference implementation the kernels are tested and benchmarked
// against; the kernels reproduce it bit for bit on the zeta path.
func (p *Plan) EvalScalar(pfail []float64) (float64, error) {
	if pfail == nil {
		pfail = p.basePFail
	}
	if len(pfail) != p.numEdges {
		return 0, fmt.Errorf("core: Eval probability vector has %d entries, plan was compiled for %d links", len(pfail), p.numEdges)
	}
	for i, v := range pfail {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return 0, fmt.Errorf("core: Eval probability %g for link %d outside [0, 1]", v, i)
		}
	}
	mEvals.Inc()
	if p.ds == nil {
		return 0, nil
	}
	sc := p.scratch.Get().(*evalScratch)
	defer p.scratch.Put(sc)
	return p.evalScalarUnchecked(sc, pfail), nil
}

// evalScalarUnchecked is the scalar evaluate phase on an already-
// validated vector and a caller-owned scratch.
//
//flowrelvet:hotpath scalar evaluate phase on caller-owned scratch (reviewed: PR-8)
func (p *Plan) evalScalarUnchecked(sc *evalScratch, pfail []float64) float64 {
	for side := 0; side < 2; side++ {
		fillConfigProbs(sc.probs[side], pfail, p.sideLinks[side])
	}
	for i, eid := range p.Cut {
		sc.pCut[i] = pfail[eid]
	}
	switch p.accum {
	case AccumDirect:
		return p.evalDirect(sc)
	default:
		return p.evalZeta(sc)
	}
}

// EvalBatch evaluates many probability scenarios in parallel (parallelism
// ≤ 0 means GOMAXPROCS; nil scenarios mean the compile-time
// probabilities). Each scenario is independent and deterministic, so the
// result slice is identical for any worker count.
func (p *Plan) EvalBatch(scenarios [][]float64, parallelism int) ([]float64, error) {
	out := make([]float64, len(scenarios))
	if err := p.EvalBatchInto(out, scenarios, BatchOptions{Parallelism: parallelism}); err != nil {
		return nil, err
	}
	return out, nil
}

// fillConfigProbs writes the occurrence probability of every failure
// configuration of the side links into probs (len 2^m): probs[mask] =
// Π_{alive}(1-p)·Π_{dead}p (Eq. 2). The doubling construction multiplies
// the per-link factors in link order, making each entry bit-identical to
// the conf.Table.Prob product the eager solver used — at O(2^m) total
// instead of O(m·2^m).
//
//flowrelvet:hotpath O(2^m) doubling fill, the largest single loop of every evaluation (reviewed: PR-8)
func fillConfigProbs(probs []float64, pfail []float64, links []graph.EdgeID) {
	probs[0] = 1
	for i, eid := range links {
		pf := pfail[eid]
		pl := 1 - pf
		half := uint64(1) << uint(i)
		for mask := uint64(0); mask < half; mask++ {
			v := probs[mask]
			probs[mask|half] = v * pl
			probs[mask] = v * pf
		}
	}
}

// aggregateInto sums configuration probabilities by realized-assignment
// mask: q[rm] = P(side configuration realizes exactly the set rm).
//
//flowrelvet:hotpath per-evaluation scatter over the side array (reviewed: PR-8)
func aggregateInto(q []float64, realized []uint64, probs []float64) {
	for i := range q {
		q[i] = 0
	}
	for mask, rm := range realized {
		q[rm] += probs[mask]
	}
}

// evalZeta computes Eq. 3 with the superset-zeta aggregation: Q[X] =
// P(side realizes every assignment in X) in one transform, then each
// r_{E”} is an inclusion–exclusion sum of lattice lookups.
//
//flowrelvet:hotpath zeta accumulation: Plan.Eval's default inner phase (reviewed: PR-8)
func (p *Plan) evalZeta(sc *evalScratch) float64 {
	n := p.ds.Len()
	qs, qt := sc.q[0], sc.q[1]
	aggregateInto(qs, p.realized[0], sc.probs[0])
	aggregateInto(qt, p.realized[1], sc.probs[1])
	subset.SupersetZeta(qs, n)
	subset.SupersetZeta(qt, n)

	total := 0.0
	//flowrelvet:unbounded evaluate phase: Plan.Eval is budget-free by contract — the 3^k aggregation is bounded by the compiled plan's size and the full exponential cost was charged to the Ctl during Compile (reviewed: PR-3).
	for e := uint64(0); e < uint64(1)<<uint(len(sc.pCut)); e++ {
		dMask := p.classes[e]
		if dMask == 0 {
			continue
		}
		r := 0.0
		subset.Submasks(dMask, func(x uint64) {
			if x == 0 {
				return
			}
			r -= subset.PopcountParity(x) * qs[x] * qt[x]
		})
		total += conf.Prob(sc.pCut, e) * r
	}
	return total
}

// evalDirect computes Eq. 3 with the paper's literal ACCUMULATION: for
// each bottleneck configuration E” and each non-empty X ⊆ 𝒟_{E”}, scan
// both side arrays for p_X = P_s(⊇X)·P_t(⊇X), then inclusion–exclusion.
// Kept as the ablation baseline.
//
//flowrelvet:hotpath direct accumulation: the ablation twin of evalZeta, same allocation contract (reviewed: PR-8)
func (p *Plan) evalDirect(sc *evalScratch) float64 {
	total := 0.0
	//flowrelvet:unbounded evaluate phase: Plan.Eval is budget-free by contract — the side-array scans are bounded by the compiled plan's size and the full exponential cost was charged to the Ctl during Compile (reviewed: PR-3).
	for e := uint64(0); e < uint64(1)<<uint(len(sc.pCut)); e++ {
		dMask := p.classes[e]
		if dMask == 0 {
			continue
		}
		r := 0.0
		subset.Submasks(dMask, func(x uint64) {
			if x == 0 {
				return
			}
			pX := scanSuperset(p.realized[0], sc.probs[0], x) * scanSuperset(p.realized[1], sc.probs[1], x)
			r -= subset.PopcountParity(x) * pX
		})
		total += conf.Prob(sc.pCut, e) * r
	}
	return total
}

// scanSuperset returns P(configurations whose realized set contains x).
//
//flowrelvet:hotpath side-array scan called per inclusion-exclusion term on the direct path (reviewed: PR-8)
func scanSuperset(realized []uint64, probs []float64, x uint64) float64 {
	p := 0.0
	for mask, rm := range realized {
		if rm&x == x {
			p += probs[mask]
		}
	}
	return p
}
