package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"flowrel/internal/assign"
	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/mincut"
	"flowrel/internal/stats"
	"flowrel/internal/subset"
)

// Plan is the compiled form of a bottleneck decomposition: everything the
// solver learns about the *structure* of the instance — the cut, the
// assignment family 𝒟, and the two side realization arrays — none of
// which depends on the links' failure probabilities. Building a Plan costs
// the full O(2^{α|E|}·|V|·|E|) side-array phase (every max-flow call the
// solver will ever make); evaluating it against a probability vector costs
// only the aggregation O(2^{|E_s|} + 2^{|E_t|} + |𝒟|·2^{|𝒟|} + 3^k) —
// microseconds, no max-flow calls. One compile therefore answers every
// probability-only question about the instance: sweep curves, Birnbaum
// conditionals (p(e) ∈ {0,1}), shared-risk scenarios, what-if re-weightings.
//
// A Plan is immutable after Compile and safe for concurrent Eval calls.
type Plan struct {
	// Cut is the bottleneck link set E' (original-graph link IDs).
	Cut []graph.EdgeID
	// Alpha is the balance max(|E_s|, |E_t|)/|E| of the split.
	Alpha float64
	// Assignments is the enumerated family 𝒟 (empty when the cut cannot
	// carry the demand even fully operational — the plan then evaluates to
	// zero for every probability vector).
	Assignments []assign.Assignment
	// SideEdges is (|E_s|, |E_t|).
	SideEdges [2]int
	// Stats is the work of the compile phase; Eval adds nothing to it.
	Stats Stats

	numEdges  int // links in the original graph
	ds        *assign.Set
	classes   []uint64 // ds.Classify(), indexed by bottleneck subset mask
	accum     Accumulation
	realized  [2][]uint64       // per side: realized-assignment mask per configuration
	sideLinks [2][]graph.EdgeID // per side: side link index → original link ID
	basePFail []float64         // the graph's probabilities at compile time
	scratch   sync.Pool         // *evalScratch (scalar evaluator)

	// kern is the data-oriented evaluate phase (kernel.go): term tables
	// and segment groupings flattened at compile time. nil when the
	// instance is outside the kernel guards; evaluation then uses the
	// scalar path. kpool1/kpool8 pool the one-lane and eight-lane
	// kernel scratches.
	kern   *evalKernel
	kpool1 sync.Pool // *kscratch1
	kpool8 sync.Pool // *kscratch8
	// blockHook, when non-nil, runs once per work item inside the batch
	// worker loops — a test seam for asserting bounded concurrency.
	blockHook func()
}

// evalScratch holds the per-evaluation buffers so concurrent Eval calls
// never share mutable state; instances are pooled on the Plan.
type evalScratch struct {
	probs [2][]float64 // per side: configuration probability per mask
	q     [2][]float64 // per side: aggregated mass per realized set, zeta'd
	pCut  []float64    // bottleneck link probabilities
}

// Compile runs the structure phase once: cut search (unless fixed by
// opt.Bottleneck), assignment enumeration and parallel side-array
// construction. It honours opt.Ctl for cooperative cancellation; an
// interrupted compile returns an error wrapping anytime.ErrInterrupted
// (a half-built side array certifies nothing).
func Compile(g *graph.Graph, dem graph.Demand, opt Options) (*Plan, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	opt.setDefaults()

	var bt *mincut.Bottleneck
	var err error
	searchStart := time.Now()
	if opt.Bottleneck != nil {
		bt, err = mincut.Split(g, dem.S, dem.T, opt.Bottleneck)
	} else {
		bt, err = mincut.Find(g, dem.S, dem.T, opt.MaxBottleneck)
	}
	if err != nil {
		return nil, err
	}
	if tr := opt.Ctl.Tracer(); tr != nil {
		tr.OnPhase(stats.PhaseEvent{
			Engine:   "core",
			Phase:    "cut-search",
			Duration: time.Since(searchStart),
		})
	}
	return CompileWithBottleneck(g, dem, bt, opt)
}

// CompileWithBottleneck compiles on a pre-validated bottleneck split.
func CompileWithBottleneck(g *graph.Graph, dem graph.Demand, bt *mincut.Bottleneck, opt Options) (*Plan, error) {
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	opt.setDefaults()
	if opt.Accum != AccumZeta && opt.Accum != AccumDirect {
		return nil, fmt.Errorf("core: unknown accumulation strategy %d", opt.Accum)
	}
	compileStart := time.Now()

	p := &Plan{
		Cut:       append([]graph.EdgeID(nil), bt.Cut...),
		Alpha:     bt.Alpha,
		SideEdges: [2]int{bt.Gs.G.NumEdges(), bt.Gt.G.NumEdges()},
		numEdges:  g.NumEdges(),
		accum:     opt.Accum,
	}
	p.basePFail = make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		p.basePFail[i] = e.PFail
	}

	// §III-B: the assignment set 𝒟.
	caps := make([]int, bt.K())
	for i, eid := range bt.Cut {
		caps[i] = g.Edge(eid).Cap
	}
	ds, err := assign.NewSet(caps, dem.D)
	if err != nil {
		return nil, err
	}
	p.Assignments = ds.Assignments
	if ds.Len() == 0 {
		// The cut cannot carry d even with every link alive: the plan is
		// trivially zero for any probability vector (paper, §III-A).
		return p, nil
	}
	if ds.Len() > opt.MaxAssignmentSet {
		return nil, fmt.Errorf("core: |𝒟| = %d exceeds MaxAssignmentSet %d (raise the limit or reduce d·k)", ds.Len(), opt.MaxAssignmentSet)
	}
	p.ds = ds
	p.classes = ds.Classify()

	// §III-C: per-side realization arrays (all the max-flow work).
	sideS, err := buildSide(bt.Gs, bt.Gs.NodeOf[dem.S], bt.XS, true, ds, &opt, &p.Stats, 0)
	if err != nil {
		return nil, err
	}
	sideT, err := buildSide(bt.Gt, bt.Gt.NodeOf[dem.T], bt.YT, false, ds, &opt, &p.Stats, 1)
	if err != nil {
		return nil, err
	}
	p.realized[0] = sideS.realized
	p.realized[1] = sideT.realized
	p.sideLinks[0] = append([]graph.EdgeID(nil), bt.Gs.ParentEdge...)
	p.sideLinks[1] = append([]graph.EdgeID(nil), bt.Gt.ParentEdge...)

	mCompiles.Inc()
	mCompileTime.Observe(time.Since(compileStart))
	mSideConfigs.Add(int64(p.Stats.SideConfigs[0] + p.Stats.SideConfigs[1]))
	mMaxFlowCalls.Add(p.Stats.MaxFlowCalls)
	mAugmentingPaths.Add(p.Stats.AugmentingPaths)
	mRealizationChecks.Add(p.Stats.RealizationChecks)
	mPrunedCapacity.Add(p.Stats.PrunedCapacity)
	mPrunedClosure.Add(p.Stats.PrunedClosure)
	mFrontierMaxFlow.Add(p.Stats.FrontierMaxFlowCalls)

	n := ds.Len()
	p.scratch.New = func() any {
		return &evalScratch{
			probs: [2][]float64{
				make([]float64, uint64(1)<<uint(p.SideEdges[0])),
				make([]float64, uint64(1)<<uint(p.SideEdges[1])),
			},
			q: [2][]float64{
				make([]float64, uint64(1)<<uint(n)),
				make([]float64, uint64(1)<<uint(n)),
			},
			pCut: make([]float64, len(p.Cut)),
		}
	}
	if k := p.compileKernel(); k != nil {
		p.kern = k
		p.Stats.KernelTerms = int64(len(k.termX))
		p.Stats.KernelSegments = int64(len(k.segRM[0]) + len(k.segRM[1]))
		p.Stats.KernelLanes = int64(k.lanes)
		p.kpool1.New = func() any { return newKScratch1(p) }
		p.kpool8.New = func() any { return newKScratch8(p) }
	}
	return p, nil
}

// setBlockHook installs the bounded-concurrency test seam: the hook runs
// once per work item inside the batch worker loops. Test-only; must be
// called before any concurrent use of the plan.
func (p *Plan) setBlockHook(h func()) { p.blockHook = h }

// K returns the number of bottleneck links.
func (p *Plan) K() int { return len(p.Cut) }

// NumEdges returns the link count of the compiled graph; Eval probability
// vectors must have exactly this length.
func (p *Plan) NumEdges() int { return p.numEdges }

// BasePFail returns a copy of the per-link failure probabilities the graph
// carried at compile time — the natural starting point for building
// what-if vectors.
func (p *Plan) BasePFail() []float64 {
	return append([]float64(nil), p.basePFail...)
}

// Eval computes the exact reliability for the given per-link failure
// probabilities (indexed by original link ID; nil means the compile-time
// probabilities). Only the probability aggregation and accumulation run —
// no max-flow calls — so an Eval costs microseconds where a fresh solve
// costs the full side-array construction. Conditioning a link up or down
// is pfail[e] = 0 or 1; capacities cannot change without recompiling.
//
//flowrelvet:hotpath the public evaluate entry point: after validation, one pooled scratch and zero heap allocations in steady state (reviewed: PR-8)
func (p *Plan) Eval(pfail []float64) (float64, error) {
	if pfail == nil {
		pfail = p.basePFail
	}
	if len(pfail) != p.numEdges {
		return 0, fmt.Errorf("core: Eval probability vector has %d entries, plan was compiled for %d links", len(pfail), p.numEdges)
	}
	for i, v := range pfail {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return 0, fmt.Errorf("core: Eval probability %g for link %d outside [0, 1]", v, i)
		}
	}
	mEvals.Inc()
	if p.ds == nil {
		return 0, nil
	}
	if p.kern != nil {
		return p.evalOneKernel(pfail), nil
	}
	sc := p.scratch.Get().(*evalScratch)
	defer p.scratch.Put(sc)
	return p.evalScalarUnchecked(sc, pfail), nil
}

// EvalScalar is Eval on the scalar (pre-kernel) evaluate phase,
// regardless of whether the plan compiled kernel tables. It is the
// reference implementation the kernels are tested and benchmarked
// against; the kernels reproduce it bit for bit on the zeta path.
func (p *Plan) EvalScalar(pfail []float64) (float64, error) {
	if pfail == nil {
		pfail = p.basePFail
	}
	if len(pfail) != p.numEdges {
		return 0, fmt.Errorf("core: Eval probability vector has %d entries, plan was compiled for %d links", len(pfail), p.numEdges)
	}
	for i, v := range pfail {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return 0, fmt.Errorf("core: Eval probability %g for link %d outside [0, 1]", v, i)
		}
	}
	mEvals.Inc()
	if p.ds == nil {
		return 0, nil
	}
	sc := p.scratch.Get().(*evalScratch)
	defer p.scratch.Put(sc)
	return p.evalScalarUnchecked(sc, pfail), nil
}

// evalScalarUnchecked is the scalar evaluate phase on an already-
// validated vector and a caller-owned scratch.
//
//flowrelvet:hotpath scalar evaluate phase on caller-owned scratch (reviewed: PR-8)
func (p *Plan) evalScalarUnchecked(sc *evalScratch, pfail []float64) float64 {
	for side := 0; side < 2; side++ {
		fillConfigProbs(sc.probs[side], pfail, p.sideLinks[side])
	}
	for i, eid := range p.Cut {
		sc.pCut[i] = pfail[eid]
	}
	switch p.accum {
	case AccumDirect:
		return p.evalDirect(sc)
	default:
		return p.evalZeta(sc)
	}
}

// EvalBatch evaluates many probability scenarios in parallel (parallelism
// ≤ 0 means GOMAXPROCS; nil scenarios mean the compile-time
// probabilities). Each scenario is independent and deterministic, so the
// result slice is identical for any worker count.
func (p *Plan) EvalBatch(scenarios [][]float64, parallelism int) ([]float64, error) {
	out := make([]float64, len(scenarios))
	if err := p.EvalBatchInto(out, scenarios, BatchOptions{Parallelism: parallelism}); err != nil {
		return nil, err
	}
	return out, nil
}

// fillConfigProbs writes the occurrence probability of every failure
// configuration of the side links into probs (len 2^m): probs[mask] =
// Π_{alive}(1-p)·Π_{dead}p (Eq. 2). The doubling construction multiplies
// the per-link factors in link order, making each entry bit-identical to
// the conf.Table.Prob product the eager solver used — at O(2^m) total
// instead of O(m·2^m).
//
//flowrelvet:hotpath O(2^m) doubling fill, the largest single loop of every evaluation (reviewed: PR-8)
func fillConfigProbs(probs []float64, pfail []float64, links []graph.EdgeID) {
	probs[0] = 1
	for i, eid := range links {
		pf := pfail[eid]
		pl := 1 - pf
		half := uint64(1) << uint(i)
		for mask := uint64(0); mask < half; mask++ {
			v := probs[mask]
			probs[mask|half] = v * pl
			probs[mask] = v * pf
		}
	}
}

// aggregateInto sums configuration probabilities by realized-assignment
// mask: q[rm] = P(side configuration realizes exactly the set rm).
//
//flowrelvet:hotpath per-evaluation scatter over the side array (reviewed: PR-8)
func aggregateInto(q []float64, realized []uint64, probs []float64) {
	for i := range q {
		q[i] = 0
	}
	for mask, rm := range realized {
		q[rm] += probs[mask]
	}
}

// evalZeta computes Eq. 3 with the superset-zeta aggregation: Q[X] =
// P(side realizes every assignment in X) in one transform, then each
// r_{E”} is an inclusion–exclusion sum of lattice lookups.
//
//flowrelvet:hotpath zeta accumulation: Plan.Eval's default inner phase (reviewed: PR-8)
func (p *Plan) evalZeta(sc *evalScratch) float64 {
	n := p.ds.Len()
	qs, qt := sc.q[0], sc.q[1]
	aggregateInto(qs, p.realized[0], sc.probs[0])
	aggregateInto(qt, p.realized[1], sc.probs[1])
	subset.SupersetZeta(qs, n)
	subset.SupersetZeta(qt, n)

	total := 0.0
	//flowrelvet:unbounded evaluate phase: Plan.Eval is budget-free by contract — the 3^k aggregation is bounded by the compiled plan's size and the full exponential cost was charged to the Ctl during Compile (reviewed: PR-3).
	for e := uint64(0); e < uint64(1)<<uint(len(sc.pCut)); e++ {
		dMask := p.classes[e]
		if dMask == 0 {
			continue
		}
		r := 0.0
		subset.Submasks(dMask, func(x uint64) {
			if x == 0 {
				return
			}
			r -= subset.PopcountParity(x) * qs[x] * qt[x]
		})
		total += conf.Prob(sc.pCut, e) * r
	}
	return total
}

// evalDirect computes Eq. 3 with the paper's literal ACCUMULATION: for
// each bottleneck configuration E” and each non-empty X ⊆ 𝒟_{E”}, scan
// both side arrays for p_X = P_s(⊇X)·P_t(⊇X), then inclusion–exclusion.
// Kept as the ablation baseline.
//
//flowrelvet:hotpath direct accumulation: the ablation twin of evalZeta, same allocation contract (reviewed: PR-8)
func (p *Plan) evalDirect(sc *evalScratch) float64 {
	total := 0.0
	//flowrelvet:unbounded evaluate phase: Plan.Eval is budget-free by contract — the side-array scans are bounded by the compiled plan's size and the full exponential cost was charged to the Ctl during Compile (reviewed: PR-3).
	for e := uint64(0); e < uint64(1)<<uint(len(sc.pCut)); e++ {
		dMask := p.classes[e]
		if dMask == 0 {
			continue
		}
		r := 0.0
		subset.Submasks(dMask, func(x uint64) {
			if x == 0 {
				return
			}
			pX := scanSuperset(p.realized[0], sc.probs[0], x) * scanSuperset(p.realized[1], sc.probs[1], x)
			r -= subset.PopcountParity(x) * pX
		})
		total += conf.Prob(sc.pCut, e) * r
	}
	return total
}

// scanSuperset returns P(configurations whose realized set contains x).
//
//flowrelvet:hotpath side-array scan called per inclusion-exclusion term on the direct path (reviewed: PR-8)
func scanSuperset(realized []uint64, probs []float64, x uint64) float64 {
	p := 0.0
	for mask, rm := range realized {
		if rm&x == x {
			p += probs[mask]
		}
	}
	return p
}
