package core

import (
	"math/bits"

	"flowrel/internal/anytime"
	"flowrel/internal/assign"
	"flowrel/internal/graph"
	"flowrel/internal/mincut"
)

// Delta-compile support: MutatePlan (plan.go) patches a compiled plan
// after a single-link mutation instead of recompiling from scratch. The
// helpers here classify how much of the parent survives and rebuild the
// touched side's realization array; they never write Plan fields — all
// assembly stays in plan.go, where the planimmut analyzer allows it.
//
// Why the parent transfers at all:
//
//   - The cut search (mincut.Find) is capacity-blind, so a capacity
//     mutation provably keeps the parent's winning cut; for add/remove
//     the search re-runs and the parent survives exactly when the winner
//     is the parent's cut under the link-ID remap.
//   - With the cut and its capacities unchanged, the assignment family 𝒟
//     and the bottleneck-subset classes are identical; both are shared
//     pointer-wise (they are immutable after compile).
//   - A mutation on one side cannot change the other side's max flows:
//     that side's realization array transfers verbatim.
//   - On the touched side, feasibility is monotone in both the link set
//     and the link capacities, so the parent's array brackets the new
//     one: removing a link is a pure index extraction (zero max-flow
//     calls), adding a link copies half the array, and a capacity change
//     re-solves only configurations containing the changed link whose
//     bit the parent cannot already decide.
//
// Budget parity: a cold compile charges its Ctl exactly
// (2^{|E_s|} + 2^{|E_t|})·|𝒟| configurations — one per (assignment,
// configuration) pair, pruned or solved. The delta path charges the same
// totals (bulk for transferred regions, per-mask for walked ones), so an
// anytime budget buys the same configuration count either way; only the
// max-flow call count differs, which is the point.

// deltaMode selects the touched-side walk variant.
type deltaMode int

const (
	// deltaAdd: the mutated link is new; it is the side's top bit, and
	// the half of the array without it transfers verbatim.
	deltaAdd deltaMode = iota
	// deltaGrow: the mutated link's capacity did not shrink; realized
	// bits transfer, unrealized ones are re-decided.
	deltaGrow
	// deltaShrink: the capacity shrank; unrealized bits transfer,
	// realized ones are re-decided (closure hits excepted).
	deltaShrink
)

// remapCutLinks maps a parent-graph cut through the mutation's link
// remap. ok is false when a cut link was removed — the parent's cut no
// longer exists in the mutated graph.
func remapCutLinks(cut []graph.EdgeID, remap []graph.EdgeID) ([]graph.EdgeID, bool) {
	out := make([]graph.EdgeID, len(cut))
	for i, id := range cut {
		nid := remap[id]
		if nid < 0 {
			return nil, false
		}
		out[i] = nid
	}
	return out, true
}

// equalCuts compares two sorted cut link-ID lists.
func equalCuts(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// cutContains reports whether the sorted cut holds the link.
func cutContains(cut []graph.EdgeID, link graph.EdgeID) bool {
	for _, id := range cut {
		if id == link {
			return true
		}
	}
	return false
}

// locateSideLink finds a parent-graph link in the parent plan's side
// tables, returning the side index and the link's side-bit position.
func locateSideLink(parent *Plan, link graph.EdgeID) (side, j int, ok bool) {
	for s := 0; s < 2; s++ {
		for i, id := range parent.sideLinks[s] {
			if id == link {
				return s, i, true
			}
		}
	}
	return 0, 0, false
}

// sideAligned verifies that a side of the mutated split lists exactly the
// remap image of the parent's side links, in the parent's order (skip is
// the parent index of a removed link, or -1). graph.Induced preserves
// parent edge order, so this holds by construction whenever the cut
// survived; the check is the cheap O(m) certificate that lets the
// realization arrays transfer index-for-index, and any mismatch drops the
// mutation to a cold recompile instead of a silent corruption.
func sideAligned(parentLinks, remap, newLinks []graph.EdgeID, skip int) bool {
	k := 0
	for i, old := range parentLinks {
		if i == skip {
			continue
		}
		nid := remap[old]
		if nid < 0 || k >= len(newLinks) || newLinks[k] != nid {
			return false
		}
		k++
	}
	return k == len(newLinks)
}

// newDeltaSide builds the sequential solver context for one touched side
// of the mutated graph: the same prototype network, capacity vector and
// need vector a cold frontier build would use.
func newDeltaSide(sub *graph.Subgraph, terminal graph.NodeID, ends []graph.NodeID, toSink bool, ds *assign.Set, opt *Options) *frontierCtx {
	proto, handles, demandArcs, src, dst := sideProto(sub, terminal, ends, toSink)
	f := &frontierCtx{
		proto:      proto,
		handles:    handles,
		demandArcs: demandArcs,
		src:        src,
		dst:        dst,
		d:          ds.D,
		ds:         ds,
		opt:        opt,
		caps:       make([]int, len(handles)),
		need:       sideNeeds(ds, ends, terminal),
		allBits:    (uint64(1) << uint(ds.Len())) - 1,
	}
	for _, e := range sub.G.Edges() {
		f.caps[e.ID] = e.Cap
	}
	return f
}

// extractRemovedInto fills the child side's realization array after link
// j was removed: child configuration c is the parent configuration with a
// zero inserted at bit j (a disabled link and an absent link induce the
// same network), so every entry is a pure index remap.
//
//flowrelvet:hotpath pure index-remap fill over the child side's configurations, zero allocations and zero max-flow calls (reviewed: PR-10)
func extractRemovedInto(dst, src []uint64, j int) {
	lowMask := uint64(1)<<uint(j) - 1
	for c := range dst {
		cm := uint64(c)
		dst[c] = src[(cm&lowMask)|(cm&^lowMask)<<1]
	}
}

// immediateClosure ORs the realization words of the mask's immediate
// submasks (drop one live link). When the walk visits masks in an order
// where every immediate submask is already final, the result is exactly
// the set of assignments realized by some proper submask — the superset
// closure the frontier engine computes layer by layer.
//
// full stops the scan as soon as the closure saturates — every assignment
// is already covered, so further submask words cannot add bits.
//
//flowrelvet:hotpath one uint64 OR per live link on the delta walk's feasibility boundary (reviewed: PR-10)
func immediateClosure(realized []uint64, mask, full uint64) uint64 {
	var w uint64
	for mm := mask; mm != 0; mm &= mm - 1 {
		w |= realized[mask&^(mm&-mm)]
		if w == full {
			break
		}
	}
	return w
}

// walkDelta re-decides the touched-side configurations that contain the
// mutated link (side bit j), in ascending numeric order of the remaining
// bits — every immediate submask of a visited mask either lacks bit j
// (transferred, final) or was visited earlier, so the closure is always
// exact. out must already hold the transferred entries: the low half for
// add, or the parent's own array for capacity modes — capacity walks
// copy-on-first-write, so the returned slice IS the parent array when no
// word changed (the caller shares it pointer-wise) and a private copy
// otherwise. Each visited mask charges for itself and its j-less twin,
// keeping the side's total at 2^m·|𝒟| exactly as a cold build would
// charge. The bool is false when the budget interrupts the walk.
//
// The entry point runs monotonicity-collapsed fast scans; walkDeltaFrom
// is the reference per-mask loop it defers to for test hooks and for the
// one case the scans cannot patch locally (a shrink dropping a bit,
// which invalidates closures of every superset).
//
// The fast scans rest on two consequences of the realization arrays
// being exact and therefore monotone (S ⊆ S' implies realized(S) ⊆
// realized(S')):
//
//   - The immediate-submask closure collapses to single array words:
//     for grow the closure is contained in parent[mask], for add it
//     equals the j-less twin, and for shrink no bit needs re-proving
//     when parent[mask] ⊆ twin.
//   - Infeasibility certifies downward. Grow and add scan top-down and
//     remember, per assignment, the maximal masks a solve proved
//     infeasible; any later (smaller) candidate contained in one is
//     decided without a solve. Feasible solves need no bookkeeping at
//     all: every superset was already decided by its own exact solve.
//
// Final words are bit-identical to the reference loop's in every case —
// each bit is either copied from an exact parent word or re-derived by
// an exact max-flow solve — and the charge totals are identical because
// both paths charge 2·|𝒟| per visited mask on the same cadence. A
// shrink whose re-proof fails hands the remaining masks to the
// reference loop instead of patching closures.
//
//flowrelvet:hotpath one or two array words per configuration replace the per-mask closure scan, and downward infeasibility certificates replace re-confirming solves; bit-exact against walkDeltaFrom by monotonicity (reviewed: PR-10)
func walkDelta(f *frontierCtx, w *frontierWorker, out []uint64, j int, mode deltaMode, cur *uint64) ([]uint64, bool) {
	owned := mode == deltaAdd
	ensureOwned := func() {
		if !owned {
			out = append([]uint64(nil), out...)
			owned = true
		}
	}
	if f.opt.TestHook != nil {
		ensureOwned()
		return out, walkDeltaFrom(f, w, out, j, mode, cur, 0, 0, w.stats.FrontierMaxFlowCalls)
	}
	m := len(f.handles)
	n := f.ds.Len()
	half := uint64(1) << uint(m-1)
	lowMask := uint64(1)<<uint(j) - 1
	jBit := uint64(1) << uint(j)
	step := 2 * uint64(n)
	var sinceCheck uint64
	callsMark := w.stats.FrontierMaxFlowCalls
	var checks, reused, prunedClo, prunedCap int64
	flush := func() bool {
		w.stats.RealizationChecks += checks
		w.stats.DeltaReused += reused
		w.stats.PrunedClosure += prunedClo
		w.stats.PrunedCapacity += prunedCap
		checks, reused, prunedClo, prunedCap = 0, 0, 0, 0
		ok := f.opt.Ctl.Charge(sinceCheck, w.stats.FrontierMaxFlowCalls-callsMark)
		sinceCheck, callsMark = 0, w.stats.FrontierMaxFlowCalls
		return ok
	}

	if mode == deltaShrink {
		for ww := uint64(0); ww < half; ww++ {
			mask := (ww & lowMask) | (ww&^lowMask)<<1 | jBit
			checks += int64(step)
			sinceCheck += step
			word := out[mask]
			twin := out[mask&^jBit]
			switch {
			case word == 0:
				reused += int64(step)
			case word&^twin == 0:
				// Every parent bit is justified by the j-less twin alone:
				// the closure equals the parent word and nothing is
				// re-decided.
				reused += int64(n) + int64(bits.OnesCount64(f.allBits&^word))
				prunedClo += int64(bits.OnesCount64(word))
			default:
				// Some parent bit is not twin-justified: run the exact
				// immediate closure for this mask. Bits it cannot justify
				// are re-proved under the smaller capacity; a failed
				// re-proof invalidates superset closures, so the reference
				// loop takes over from the next mask.
				closure := immediateClosure(out, mask, f.allBits)
				reused += int64(n) + int64(bits.OnesCount64(f.allBits&^word))
				prunedClo += int64(bits.OnesCount64(closure))
				nw := closure
				if cand := word &^ closure; cand != 0 {
					*cur = mask
					capSum := 0
					for mm := mask; mm != 0; mm &= mm - 1 {
						capSum += f.caps[bits.TrailingZeros64(mm)]
					}
					for r := cand; r != 0; r &= r - 1 {
						j2 := bits.TrailingZeros64(r)
						if capSum < f.need[j2] {
							prunedCap++
							continue
						}
						if w.solve(f, j2, mask) {
							nw |= uint64(1) << uint(j2)
						}
					}
				}
				if nw != word {
					ensureOwned()
					out[mask] = nw
					if !flush() {
						return out, false
					}
					return out, walkDeltaFrom(f, w, out, j, mode, cur, ww+1, 0, w.stats.FrontierMaxFlowCalls)
				}
			}
			if sinceCheck >= anytime.CheckEvery && !flush() {
				return out, false
			}
		}
		return out, flush()
	}

	// Grow and add: top-down scan with downward infeasibility
	// certificates. certs[r] holds maximal masks where assignment r was
	// solved infeasible under the mutated capacities; the list stays an
	// antichain because covered candidates never solve. The cap bounds
	// the containment scan on adversarial instances — beyond it the scan
	// degrades to solving, never past the reference loop's work.
	const certCap = 32
	certs := make([][]uint64, n)
	for ww := half; ww > 0; {
		ww--
		mask := (ww & lowMask) | (ww&^lowMask)<<1 | jBit
		checks += int64(step)
		sinceCheck += step
		var word uint64
		if mode == deltaGrow {
			word = out[mask]
		} else {
			word = out[mask&^jBit]
		}
		if cand := f.allBits &^ word; cand == 0 {
			reused += int64(step)
		} else {
			if mode == deltaGrow {
				reused += int64(n) + int64(bits.OnesCount64(word))
				prunedClo += int64(bits.OnesCount64(out[mask&^jBit]))
			} else {
				reused += int64(n)
				prunedClo += int64(bits.OnesCount64(word))
			}
			capSum := -1
			for r := cand; r != 0; r &= r - 1 {
				j2 := bits.TrailingZeros64(r)
				cl := certs[j2]
				covered := false
				for i := len(cl) - 1; i >= 0; i-- {
					if mask&^cl[i] == 0 {
						covered = true
						break
					}
				}
				if covered {
					reused++
					continue
				}
				if capSum < 0 {
					capSum = 0
					for mm := mask; mm != 0; mm &= mm - 1 {
						capSum += f.caps[bits.TrailingZeros64(mm)]
					}
				}
				if capSum < f.need[j2] {
					prunedCap++
					continue
				}
				*cur = mask
				if w.solve(f, j2, mask) {
					word |= uint64(1) << uint(j2)
				} else if len(cl) < certCap {
					certs[j2] = append(cl, mask)
				}
			}
		}
		if mode == deltaAdd {
			out[mask] = word
		} else if word != out[mask] {
			ensureOwned()
			out[mask] = word
		}
		if sinceCheck >= anytime.CheckEvery && !flush() {
			return out, false
		}
	}
	return out, flush()
}

// walkDeltaFrom is the reference per-mask delta walk, resumable at an
// arbitrary compressed index with carried charge state. walkDelta runs it
// outright when a test hook needs every mask visited in order, and
// resumes it mid-walk when a shrink drops a bit.
func walkDeltaFrom(f *frontierCtx, w *frontierWorker, out []uint64, j int, mode deltaMode, cur *uint64, start, sinceCheck uint64, callsMark int64) bool {
	m := len(f.handles)
	n := f.ds.Len()
	half := uint64(1) << uint(m-1)
	lowMask := uint64(1)<<uint(j) - 1
	jBit := uint64(1) << uint(j)
	for ww := start; ww < half; ww++ {
		mask := (ww & lowMask) | (ww&^lowMask)<<1 | jBit
		*cur = mask
		if f.opt.TestHook != nil {
			f.opt.TestHook(mask)
		}
		sinceCheck += 2 * uint64(n)
		w.stats.RealizationChecks += 2 * int64(n)
		parentWord := out[mask]
		var word, candidates uint64
		var skip bool
		// Saturation shortcuts — exact consequences of monotonicity, no
		// closure or capacity scan needed: growing capacity keeps a fully
		// realized parent mask fully realized; shrinking keeps a fully
		// unrealized one at zero; and for a new link, a fully realized
		// j-less twin forces the superset mask to full via the closure.
		switch mode {
		case deltaAdd:
			if tw := out[mask&^jBit]; tw == f.allBits {
				word, skip = tw, true
			}
		case deltaGrow:
			if parentWord == f.allBits {
				word, skip = parentWord, true
			}
		default: // deltaShrink
			if parentWord == 0 {
				word, skip = 0, true
			}
		}
		if skip {
			w.stats.DeltaReused += 2 * int64(n)
		} else {
			closure := immediateClosure(out, mask, f.allBits)
			w.stats.PrunedClosure += int64(bits.OnesCount64(closure))
			switch mode {
			case deltaAdd:
				// No parent entry exists for this mask; only the closure
				// transfers. The j-less twin transferred verbatim.
				word = closure
				candidates = f.allBits &^ closure
				w.stats.DeltaReused += int64(n)
			case deltaGrow:
				// More capacity never breaks a flow: parent-realized bits
				// stand. Parent-unrealized bits outside the closure must be
				// re-decided under the larger capacity.
				word = parentWord | closure
				candidates = f.allBits &^ word
				w.stats.DeltaReused += int64(n) + int64(bits.OnesCount64(parentWord))
			default: // deltaShrink
				// Less capacity never creates a flow: parent-unrealized bits
				// stand (at zero). Parent-realized bits survive via the
				// closure or must be re-proved under the smaller capacity.
				word = closure
				candidates = parentWord &^ closure
				w.stats.DeltaReused += int64(n) + int64(bits.OnesCount64(f.allBits&^parentWord))
			}
		}
		if candidates != 0 {
			capSum := 0
			for mm := mask; mm != 0; mm &= mm - 1 {
				capSum += f.caps[bits.TrailingZeros64(mm)]
			}
			for r := candidates; r != 0; r &= r - 1 {
				j2 := bits.TrailingZeros64(r)
				if capSum < f.need[j2] {
					w.stats.PrunedCapacity++
					continue
				}
				if w.solve(f, j2, mask) {
					word |= uint64(1) << uint(j2)
				}
			}
		}
		out[mask] = word
		if sinceCheck >= anytime.CheckEvery {
			if !f.opt.Ctl.Charge(sinceCheck, w.stats.FrontierMaxFlowCalls-callsMark) {
				return false
			}
			sinceCheck, callsMark = 0, w.stats.FrontierMaxFlowCalls
		}
	}
	return f.opt.Ctl.Charge(sinceCheck, w.stats.FrontierMaxFlowCalls-callsMark)
}

// deltaSideState is the warm solver state one delta walk leaves behind for
// the next: the side's solver context (prototype network, handles,
// capacity and need vectors) and the worker whose per-assignment residual
// networks still hold the flows of the last walked configurations. A
// successor capacity mutation on the same side patches the changed link's
// capacity into the context and the warm networks (repairing their flows
// incrementally) and walks from there — no network clones, no from-scratch
// solves. The state is handed down the plan chain through an atomic
// pointer: exactly one successor consumes it, everyone else builds fresh,
// and either way the walk's results are bit-identical (max-flow values do
// not depend on the starting flow).
type deltaSideState struct {
	f *frontierCtx
	w *frontierWorker
	// dead counts permanently disabled arcs left behind by removed links.
	// Adoption stops (and the chain restarts fresh) once they would
	// outnumber the live side links, bounding the networks' growth under
	// sustained churn.
	dead int
}

// sameSideNodes certifies that two side subgraphs list the same parent
// nodes in the same order. graph.Induced numbers local nodes by ascending
// parent ID, so equal ParentNode slices mean identical local numbering —
// the condition for a warm prototype network built against prev to stay
// valid for sub.
func sameSideNodes(sub, prev *graph.Subgraph) bool {
	if prev == nil || len(sub.ParentNode) != len(prev.ParentNode) {
		return false
	}
	for i := range sub.ParentNode {
		if sub.ParentNode[i] != prev.ParentNode[i] {
			return false
		}
	}
	return true
}

// adoptAddedLink extends a warm side state with the side's newly added
// link (last in sub's edge list, the walk's new top bit): one arc appended
// to the prototype (enabled, like every prototype arc) and to each warm
// network (disabled, carrying zero flow — consistent with the warm
// configuration masks, which predate the link). The add walk then
// retargets from the parent's flows instead of solving every network from
// scratch. Returns false — with st untouched — when the state cannot be
// certified against the new subgraph.
func adoptAddedLink(st *deltaSideState, sub, prev *graph.Subgraph) bool {
	if !sameSideNodes(sub, prev) {
		return false
	}
	f := st.f
	e := sub.G.Edge(graph.EdgeID(sub.G.NumEdges() - 1))
	h := f.proto.AddDirected(int32(e.U), int32(e.V), e.Cap)
	for _, nw := range st.w.nets {
		if nw == nil {
			continue
		}
		// Clones stay in arc-lockstep with the prototype, so the appended
		// arc receives the same handle value everywhere.
		nw.SetEnabled(nw.AddDirected(int32(e.U), int32(e.V), e.Cap), false)
	}
	f.handles = append(f.handles, h)
	f.caps = append(f.caps, e.Cap)
	return true
}

// adoptRemovedLink retires side bit j from a warm side state: the arc is
// permanently disabled in the prototype and every warm network (repairing
// each warm flow incrementally), the handle and capacity vectors contract,
// and the warm configuration masks shift down past the vacated bit. The
// removal itself never walks — the transform only keeps the chain warm for
// the next mutation on this side. Returns false — with st untouched — when
// the state cannot be certified or the dead-arc bound is hit.
func adoptRemovedLink(st *deltaSideState, sub, prev *graph.Subgraph, j int) bool {
	if st.dead+1 > len(st.f.handles) || !sameSideNodes(sub, prev) {
		return false
	}
	f, w := st.f, st.w
	dead := f.handles[j]
	jBit := uint64(1) << uint(j)
	lowMask := jBit - 1
	for j2, nw := range w.nets {
		if nw == nil {
			continue
		}
		if c := w.cur[j2]; c&jBit != 0 {
			w.val[j2] -= nw.DisableIncremental(dead, f.src, f.dst)
		}
		c := w.cur[j2]
		w.cur[j2] = (c & lowMask) | (c>>(uint(j)+1))<<uint(j)
	}
	f.proto.SetEnabled(dead, false)
	f.handles = append(f.handles[:j], f.handles[j+1:]...)
	f.caps = append(f.caps[:j], f.caps[j+1:]...)
	st.dead++
	return true
}

// netStats is a snapshot of the cumulative solver counters across a
// worker's warm networks. Warm states outlive a single walk, so each walk
// folds only the difference against its starting snapshot.
type netStats struct {
	calls, units, paths int64
}

// snapshotNets sums the worker's networks' cumulative solver stats.
func snapshotNets(w *frontierWorker) netStats {
	var s netStats
	for _, nw := range w.nets {
		if nw != nil {
			s.calls += nw.Stats.MaxFlowCalls
			s.units += nw.Stats.AugmentUnits
			s.paths += nw.Stats.AugmentingPaths
		}
	}
	return s
}

// foldWorker folds a delta worker's counters and its warm networks' solver
// stats into st, counting network work only past the base snapshot —
// exactly this walk's share when the worker was inherited warm.
func foldWorker(st *Stats, w *frontierWorker, base netStats) {
	st.add(&w.stats)
	now := snapshotNets(w)
	st.MaxFlowCalls += now.calls - base.calls
	st.AugmentUnits += now.units - base.units
	st.AugmentingPaths += now.paths - base.paths
}

// patchSplitCapacity rebuilds the parent's bottleneck split after a
// capacity change on a non-cut link without re-running mincut.Split: every
// validation Split performs (minimal cut, two components, link
// orientation) is topology-only, so the parent's split stays valid
// verbatim and only the touched side's subgraph needs the new capacity.
// Returns nil when the link is not on a side (the caller then falls back
// to the full Split).
func patchSplitCapacity(pb *mincut.Bottleneck, parent *Plan, mut graph.Mutation) *mincut.Bottleneck {
	side, j, ok := locateSideLink(parent, mut.Link)
	if !ok {
		return nil
	}
	subs := [2]*graph.Subgraph{pb.Gs, pb.Gt}
	old := subs[side]
	g2, err := old.G.WithCapacity(graph.EdgeID(j), mut.Cap)
	if err != nil {
		return nil
	}
	subs[side] = &graph.Subgraph{
		G:          g2,
		NodeOf:     old.NodeOf,
		ParentNode: old.ParentNode,
		ParentEdge: old.ParentEdge,
	}
	return &mincut.Bottleneck{
		Cut: pb.Cut, Gs: subs[0], Gt: subs[1],
		XS: pb.XS, YT: pb.YT, Alpha: pb.Alpha,
	}
}
