package core

import (
	"math/bits"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/assign"
	"flowrel/internal/conf"
	"flowrel/internal/maxflow"
	"flowrel/internal/subset"
)

// The frontier engine (SideFrontier) builds the same realization array as
// the dense engines while paying max-flow only on the feasibility
// boundary. It rests on one fact: realization is monotone in the link set.
// Adding a live link never removes an s–t flow, so if configuration S
// realizes assignment a then every superset of S does, and if the live
// links of S cannot jointly carry a's load then no max-flow call on S can
// succeed. Enumerating configurations in popcount-ascending layers makes
// both directions of that fact free to apply:
//
//   - upward (closure): before layer ℓ is decided, every layer below it
//     is complete, so OR-ing each mask's immediate-submask words
//     (subset.OrZetaLayer — one uint64 OR decides all ≤64 assignments at
//     once) marks exactly the pairs with a realized submask; they are
//     realized with zero max-flow calls.
//   - downward (capacity bound): Σ capacities of the live links, plus any
//     demand that enters the super terminal directly at the real
//     terminal, upper-bounds the max flow; assignments whose load exceeds
//     it are unrealizable with zero max-flow calls.
//
// Neither filter guesses: both are exact implications of max-flow
// feasibility, so the surviving pairs — the boundary between the two
// regions — are the only ones solved, and the resulting array is
// bit-identical to SideBinary's. Budget accounting is also identical:
// every (assignment, configuration) pair is charged whether it was pruned
// or solved, so anytime budgets and certified partial bounds see the same
// configuration counts as the dense engines.
//
// Layers are processed under a barrier (closure needs layer ℓ−1 final);
// within a layer, rank ranges from conf.SplitLayer fan out to workers.
// Worker states — per-assignment residual networks — persist across
// chunks and layers on a free stack, so popcount-adjacent masks warm-start
// via maxflow.RetargetIncremental instead of re-solving from scratch.

// frontierMinEdges is the smallest side the frontier engine takes on;
// below it buildSide falls back to the plain binary walk.
const frontierMinEdges = 2

// frontierCtx carries the per-side inputs shared by all frontier workers.
type frontierCtx struct {
	proto      *maxflow.Network
	handles    []maxflow.Handle
	demandArcs []maxflow.Handle
	src, dst   int32
	d          int
	ds         *assign.Set
	opt        *Options
	sa         *sideArray
	caps       []int  // per side link, for the capacity bound
	need       []int  // per assignment: d minus its direct-at-terminal demand
	allBits    uint64 // low ds.Len() bits set
}

// frontierWorker is one worker's private state: a lazily cloned residual
// network per assignment, each remembering the configuration and flow
// value it last solved, so the next mask repairs instead of recomputing.
type frontierWorker struct {
	nets  []*maxflow.Network
	cur   []uint64
	val   []int
	stats Stats
}

// buildSideFrontier drives the layered walk for one side. It returns the
// first worker error; interruption is left for the caller to detect via
// opt.Ctl.Stopped (matching buildSideWave).
func buildSideFrontier(f *frontierCtx, st *Stats) error {
	m := f.sa.m
	n := f.ds.Len()

	// Free stack of worker states: the semaphore bounds concurrency at
	// opt.Parallelism, so at most that many states are ever created, and
	// each keeps its warm networks across chunk and layer boundaries.
	var (
		poolMu  sync.Mutex
		pool    []*frontierWorker
		retired []*frontierWorker
	)
	getWorker := func() *frontierWorker {
		poolMu.Lock()
		defer poolMu.Unlock()
		if k := len(pool); k > 0 {
			w := pool[k-1]
			pool = pool[:k-1]
			return w
		}
		w := &frontierWorker{
			nets: make([]*maxflow.Network, n),
			cur:  make([]uint64, n),
			val:  make([]int, n),
		}
		retired = append(retired, w)
		return w
	}
	putWorker := func(w *frontierWorker) {
		poolMu.Lock()
		pool = append(pool, w)
		poolMu.Unlock()
	}

	sem := make(chan struct{}, f.opt.Parallelism)
	var firstErr error
	for layer := 0; layer <= m && firstErr == nil; layer++ {
		if f.opt.Ctl.Stopped() {
			break
		}
		ranges := conf.SplitLayer(m, layer)
		errs := make([]error, len(ranges))
		var wg sync.WaitGroup
		for ci, r := range ranges {
			wg.Add(1)
			go func(ci int, lo, hi uint64) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cur := lo
				defer anytime.RecoverInto(&errs[ci], f.opt.Ctl, "core frontier worker", &cur)
				if f.opt.Ctl.Stopped() {
					return
				}
				w := getWorker()
				defer putWorker(w)
				first := conf.NthOfLayer(m, layer, lo)
				// Close this chunk's masks over the (complete) layers
				// below, then decide what the closure left open.
				subset.OrZetaLayer(f.sa.realized, first, hi-lo)
				w.walk(f, first, hi-lo, &cur)
			}(ci, r[0], r[1])
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}

	// Fold the retired worker states — counters first, then each warm
	// network's solver stats — exactly as the wave engine sums its chunks.
	for _, w := range retired {
		st.add(&w.stats)
		for _, nw := range w.nets {
			if nw != nil {
				st.MaxFlowCalls += nw.Stats.MaxFlowCalls
				st.AugmentUnits += nw.Stats.AugmentUnits
				st.AugmentingPaths += nw.Stats.AugmentingPaths
			}
		}
	}
	return firstErr
}

// walk decides `count` masks of one popcount layer starting at `first`
// (numeric order). The chunk's closure pass has already run, so
// f.sa.realized[mask] holds the assignments realized by some submask;
// only the rest are filtered by capacity and, surviving that, solved.
func (w *frontierWorker) walk(f *frontierCtx, first, count uint64, cur *uint64) {
	n := f.ds.Len()
	mask := first
	var sinceCheck uint64
	callsMark := w.stats.FrontierMaxFlowCalls
	for i := uint64(0); i < count; i++ {
		if i > 0 {
			mask = conf.NextOfLayer(mask)
		}
		*cur = mask
		if f.opt.TestHook != nil {
			f.opt.TestHook(mask)
		}
		sinceCheck += uint64(n)
		w.stats.RealizationChecks += int64(n)
		closure := f.sa.realized[mask]
		w.stats.PrunedClosure += int64(bits.OnesCount64(closure))
		if rem := f.allBits &^ closure; rem != 0 {
			capSum := 0
			for mm := mask; mm != 0; mm &= mm - 1 {
				capSum += f.caps[bits.TrailingZeros64(mm)]
			}
			word := closure
			for r := rem; r != 0; r &= r - 1 {
				j := bits.TrailingZeros64(r)
				if capSum < f.need[j] {
					w.stats.PrunedCapacity++
					continue
				}
				if w.solve(f, j, mask) {
					word |= uint64(1) << uint(j)
				}
			}
			f.sa.realized[mask] = word
		}
		if sinceCheck >= anytime.CheckEvery {
			if !f.opt.Ctl.Charge(sinceCheck, w.stats.FrontierMaxFlowCalls-callsMark) {
				return
			}
			sinceCheck, callsMark = 0, w.stats.FrontierMaxFlowCalls
		}
	}
	f.opt.Ctl.Charge(sinceCheck, w.stats.FrontierMaxFlowCalls-callsMark)
}

// solve pays a max-flow call for one surviving (assignment, mask) pair,
// warm-starting from wherever this worker's network for the assignment
// last stood, and reports whether the mask realizes the assignment.
func (w *frontierWorker) solve(f *frontierCtx, j int, mask uint64) bool {
	nw := w.nets[j]
	if nw == nil {
		nw = f.proto.Clone()
		a := f.ds.Assignments[j]
		for i := range f.demandArcs {
			nw.SetBaseCapDirected(f.demandArcs[i], a[i])
		}
		for i := range f.handles {
			nw.SetEnabled(f.handles[i], false)
		}
		nw.ResetFlow()
		w.nets[j] = nw
	}
	before := nw.Stats.MaxFlowCalls
	value := nw.RetargetIncremental(f.handles, w.cur[j], mask, f.src, f.dst, w.val[j])
	if value < f.d {
		value += nw.Augment(f.src, f.dst, f.d-value)
	}
	w.stats.FrontierMaxFlowCalls += nw.Stats.MaxFlowCalls - before
	w.cur[j] = mask
	w.val[j] = value
	return value >= f.d
}
