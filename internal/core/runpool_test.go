package core

import (
	"sync/atomic"
	"testing"
)

// TestRunPoolZeroItems: every worker starts, sees an exhausted counter,
// and exits; the pool returns without hanging or skipping workers.
func TestRunPoolZeroItems(t *testing.T) {
	var started atomic.Int64
	runPool(4, func(next *atomic.Int64) {
		started.Add(1)
		for {
			if next.Add(1)-1 >= 0 { // zero items: first draw already past the end
				return
			}
		}
	})
	if started.Load() != 4 {
		t.Fatalf("%d workers ran, want 4", started.Load())
	}
}

// TestRunPoolWorkersExceedItems: EvalBatchInto clamps the worker count
// to the block count, and a tiny batch at huge parallelism still
// produces the exact per-scenario results.
func TestRunPoolWorkersExceedItems(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	scenarios := make([][]float64, 3)
	for i := range scenarios {
		scenarios[i] = plan.BasePFail()
	}
	want, err := plan.Eval(scenarios[0])
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, len(scenarios))
	if err := plan.EvalBatchInto(dst, scenarios, BatchOptions{Parallelism: 64}); err != nil {
		t.Fatal(err)
	}
	for i, got := range dst {
		if got != want {
			t.Fatalf("scenario %d: %.17g != Eval's %.17g", i, got, want)
		}
	}
}

// TestRunPoolPanicPropagates: a panic in one worker is re-raised on the
// caller, and the poisoned counter stops the surviving workers from
// draining the rest of the batch (without poisoning, the loop below
// would spin for 2^40 increments and the test would time out).
func TestRunPoolPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		if r != "boom" {
			t.Fatalf("propagated %v, want the worker's own panic value", r)
		}
	}()
	runPool(4, func(next *atomic.Int64) {
		i := next.Add(1) - 1
		if i == 0 {
			panic("boom")
		}
		for {
			if next.Add(1)-1 >= int64(1)<<40 {
				return
			}
		}
	})
}

// TestRunPoolSingleWorkerPanic: the workers <= 1 path runs inline on the
// calling goroutine, so its panic propagates undecorated.
func TestRunPoolSingleWorkerPanic(t *testing.T) {
	defer func() {
		if r := recover(); r != "inline" {
			t.Fatalf("recovered %v, want the inline worker's panic", r)
		}
	}()
	runPool(1, func(next *atomic.Int64) { panic("inline") })
}

// TestEvalBatchPanicPropagates: a panic inside the evaluate loop (via
// the per-block test hook) crosses the pool boundary back to the
// EvalBatchInto caller instead of crashing an anonymous worker.
func TestEvalBatchPanicPropagates(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	scenarios := make([][]float64, 256)
	for i := range scenarios {
		scenarios[i] = plan.BasePFail()
	}
	plan.setBlockHook(func() { panic("hook") })
	defer plan.setBlockHook(nil)
	dst := make([]float64, len(scenarios))
	defer func() {
		if r := recover(); r != "hook" {
			t.Fatalf("recovered %v, want the hook's panic", r)
		}
	}()
	if err := plan.EvalBatchInto(dst, scenarios, BatchOptions{Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	t.Fatal("EvalBatchInto returned normally past a panicking block hook")
}
