package core

import "flowrel/internal/stats"

// Process-wide registry metrics (the counter catalogue lives in
// docs/OBSERVABILITY.md). All of them are charged once per compile, per
// side build, or per evaluation — never inside the enumeration loops — so
// the cost is a handful of atomic adds per solver call.
var (
	mCompiles          = stats.Default.Counter("core.compiles")
	mCompileTime       = stats.Default.Timer("core.compile_time")
	mSideConfigs       = stats.Default.Counter("core.side_configs")
	mMaxFlowCalls      = stats.Default.Counter("core.max_flow_calls")
	mAugmentingPaths   = stats.Default.Counter("core.augmenting_paths")
	mRealizationChecks = stats.Default.Counter("core.realization_checks")
	mEvals             = stats.Default.Counter("core.evals")
	mEvalBatches       = stats.Default.Counter("core.eval_batches")
	mPrunedCapacity    = stats.Default.Counter("core.pruned_capacity")
	mPrunedClosure     = stats.Default.Counter("core.pruned_closure")
	mFrontierMaxFlow   = stats.Default.Counter("core.frontier_max_flow_calls")
	mKernelBuilds      = stats.Default.Counter("core.kernel_builds")
	mKernelTermEntries = stats.Default.Counter("core.kernel_terms")
	mEvalBlocks        = stats.Default.Counter("core.eval_blocks")
	mKernelLanes       = stats.Default.Counter("core.kernel_lanes")
	mSegmentSums       = stats.Default.Counter("core.eval_segment_sums")
	mDeltaCompiles     = stats.Default.Counter("core.delta_compiles")
	mDeltaFallbacks    = stats.Default.Counter("core.delta_fallbacks")
	mDeltaReused       = stats.Default.Counter("core.delta_reused_checks")
	mDeltaTime         = stats.Default.Timer("core.delta_compile_time")
)
