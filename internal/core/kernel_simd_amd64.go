package core

// kernelSIMD selects the vector implementation of the eight-lane inner
// loops. Probed once at init; tests may override it to exercise every
// dispatch level on one machine.
var kernelSIMD = detectSIMD()

// detectSIMD reports the best supported dispatch level: AVX-512F when the
// CPU and OS expose ZMM state, plain AVX (VMULPD/VADDPD on YMM need
// nothing newer) when they expose YMM state, else the portable loops.
func detectSIMD() int {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 1 {
		return simdNone
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsaveBit = 1 << 27
	const avxBit = 1 << 28
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return simdNone
	}
	xcr0, _ := xgetbv0()
	// XCR0 bits 1..2: XMM and YMM state enabled by the OS.
	if xcr0&0x6 != 0x6 {
		return simdNone
	}
	level := simdAVX
	// XCR0 bits 5..7: opmask, ZMM-hi256 and hi16-ZMM state.
	if maxLeaf >= 7 && xcr0&0xe0 == 0xe0 {
		_, ebx7, _, _ := cpuid(7, 0)
		const avx512fBit = 1 << 16
		if ebx7&avx512fBit != 0 {
			level = simdAVX512
		}
	}
	return level
}

// Implemented in kernel_amd64.s.

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv0() (lo, hi uint32)

//go:noescape
func fillStepAVX512(lo, hi *block8, n int, pf, pl *block8)

//go:noescape
func fillStepAVX(lo, hi *block8, n int, pf, pl *block8)

//go:noescape
func segSumAVX512(dst *block8, probs *block8, perm *uint32, n int)

//go:noescape
func segSumAVX(dst *block8, probs *block8, perm *uint32, n int)
