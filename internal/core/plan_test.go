package core

import (
	"math"
	"math/rand"
	"testing"

	"flowrel/internal/graph"
	"flowrel/internal/reliability"
	"flowrel/internal/testutil"
)

// rebuildWithProbs copies g with each link's failure probability replaced
// by pf[ID] (link IDs preserved); pf entries must lie in [0, 1).
func rebuildWithProbs(g *graph.Graph, pf []float64) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNamedNode(g.NodeName(graph.NodeID(i)))
	}
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V, e.Cap, pf[e.ID])
	}
	return b.MustBuild()
}

// rebuildWithoutLink copies g minus one link, with the surviving links'
// probabilities taken from pf — the graph-surgery form of conditioning
// that link down.
func rebuildWithoutLink(g *graph.Graph, pf []float64, link graph.EdgeID) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNamedNode(g.NodeName(graph.NodeID(i)))
	}
	for _, e := range g.Edges() {
		if e.ID != link {
			b.AddEdge(e.U, e.V, e.Cap, pf[e.ID])
		}
	}
	return b.MustBuild()
}

// TestPlanEvalMatchesDirect is the plan-reuse correctness corpus: on ≥ 50
// random planted-bottleneck graphs, one compiled Plan must reproduce the
// direct solve at the base probabilities, at a random re-weighting, and
// after conditioning a random link up (p = 0) and down (p = 1) — each to
// 1e-12 against an independent oracle on the modified instance.
func TestPlanEvalMatchesDirect(t *testing.T) {
	const wantGraphs = 50
	count := 0
	for seed := int64(0); count < wantGraphs && seed < 50*wantGraphs; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		d := 1 + rng.Intn(3)
		g, dem, cut := plantBottleneck(rng, 2+rng.Intn(3), 2+rng.Intn(4), k, d)
		if g.NumEdges() > 14 {
			continue // keep the naive oracle cheap
		}
		opt := Options{Bottleneck: cut, MaxAssignmentSet: 62}
		plan, err := Compile(g, dem, opt)
		if err != nil {
			// The planted cut can fail minimality; fall back to discovery.
			opt = Options{MaxAssignmentSet: 62}
			plan, err = Compile(g, dem, opt)
			if err != nil {
				continue // no usable cut: out of the decomposition's scope
			}
		}
		count++

		// Base probabilities: Eval(nil) must be bit-identical to the
		// direct solve (which is Compile + Eval by construction, but the
		// equality is the refactoring's contract).
		direct, err := Reliability(g, dem, opt)
		if err != nil {
			t.Fatalf("seed %d: direct solve: %v", seed, err)
		}
		got, err := plan.Eval(nil)
		if err != nil {
			t.Fatalf("seed %d: Eval(nil): %v", seed, err)
		}
		if !testutil.AlmostEqual(got, direct.Reliability, 0) {
			t.Fatalf("seed %d: Eval(nil) %.17g != direct %.17g", seed, got, direct.Reliability)
		}

		// Random re-weighting: oracle = naive enumeration on the rebuilt
		// graph.
		pf := plan.BasePFail()
		for i := range pf {
			pf[i] = rng.Float64() * 0.95
		}
		want, err := reliability.Naive(rebuildWithProbs(g, pf), dem, reliability.Options{})
		if err != nil {
			t.Fatalf("seed %d: naive oracle: %v", seed, err)
		}
		got, err = plan.Eval(pf)
		if err != nil {
			t.Fatalf("seed %d: Eval(reweighted): %v", seed, err)
		}
		if math.Abs(got-want.Reliability) > 1e-12 {
			t.Fatalf("seed %d: Eval(reweighted) %.15f vs naive %.15f", seed, got, want.Reliability)
		}

		// Conditioning up: p(e) = 0 against the rebuilt-graph oracle.
		link := graph.EdgeID(rng.Intn(g.NumEdges()))
		orig := pf[link]
		pf[link] = 0
		want, err = reliability.Naive(rebuildWithProbs(g, pf), dem, reliability.Options{})
		if err != nil {
			t.Fatalf("seed %d: naive up-oracle: %v", seed, err)
		}
		got, err = plan.Eval(pf)
		if err != nil {
			t.Fatalf("seed %d: Eval(up): %v", seed, err)
		}
		if math.Abs(got-want.Reliability) > 1e-12 {
			t.Fatalf("seed %d link %d: Eval(up) %.15f vs naive %.15f", seed, link, got, want.Reliability)
		}

		// Conditioning down: p(e) = 1 must equal removing the link.
		pf[link] = 1
		want, err = reliability.Naive(rebuildWithoutLink(g, pf, link), dem, reliability.Options{})
		if err != nil {
			t.Fatalf("seed %d: naive down-oracle: %v", seed, err)
		}
		got, err = plan.Eval(pf)
		if err != nil {
			t.Fatalf("seed %d: Eval(down): %v", seed, err)
		}
		if math.Abs(got-want.Reliability) > 1e-12 {
			t.Fatalf("seed %d link %d: Eval(down) %.15f vs naive %.15f", seed, link, got, want.Reliability)
		}
		pf[link] = orig
	}
	if count < wantGraphs {
		t.Fatalf("corpus produced only %d usable graphs, want ≥ %d", count, wantGraphs)
	}
}

// TestPlanEvalBatchDeterministic: EvalBatch must return exactly the
// sequential Eval results for any parallelism, including nil scenarios
// (base probabilities) — and be race-free under concurrency (run with
// -race).
func TestPlanEvalBatchDeterministic(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	scenarios := make([][]float64, 64)
	for i := range scenarios {
		if i%8 == 0 {
			continue // nil: base probabilities
		}
		pf := plan.BasePFail()
		for j := range pf {
			pf[j] = rng.Float64() * 0.9
		}
		scenarios[i] = pf
	}
	batch, err := plan.EvalBatch(scenarios, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, pf := range scenarios {
		want, err := plan.Eval(pf)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != want {
			t.Fatalf("scenario %d: batch %.17g != sequential %.17g", i, batch[i], want)
		}
	}
	// Worker count must not change a single bit.
	again, err := plan.EvalBatch(scenarios, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if batch[i] != again[i] {
			t.Fatalf("scenario %d: parallelism changes result", i)
		}
	}
}

// TestPlanEvalValidation covers the evaluate-phase input contract.
func TestPlanEvalValidation(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Eval(make([]float64, g.NumEdges()+1)); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
	bad := plan.BasePFail()
	bad[0] = math.NaN()
	if _, err := plan.Eval(bad); err == nil {
		t.Fatal("NaN probability accepted")
	}
	bad[0] = 1.5
	if _, err := plan.Eval(bad); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	bad[0] = -0.1
	if _, err := plan.Eval(bad); err == nil {
		t.Fatal("negative probability accepted")
	}
	// p = 1 is valid in the evaluate phase (conditioning down), unlike in
	// a Graph.
	ok := plan.BasePFail()
	ok[0] = 1
	if _, err := plan.Eval(ok); err != nil {
		t.Fatalf("p = 1 rejected: %v", err)
	}
	if _, err := plan.EvalBatch([][]float64{make([]float64, 1)}, 0); err == nil {
		t.Fatal("EvalBatch wrong-length scenario accepted")
	}
}

// TestPlanTriviallyZero: a cut too thin for the demand compiles to the
// all-zero plan, for every probability vector.
func TestPlanTriviallyZero(t *testing.T) {
	g, dem, _ := bridgeGraph()
	dem.D = 3 // bridge capacity is 2
	plan, err := Compile(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pf := plan.BasePFail()
	for i := range pf {
		pf[i] = 0
	}
	r, err := plan.Eval(pf)
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Fatalf("R = %g with all links perfect, want 0", r)
	}
}

// TestPlanCompileStatsFrozen: evaluation adds no max-flow work — the
// compile-phase counters are immutable afterwards.
func TestPlanCompileStatsFrozen(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	calls, checks := plan.Stats.MaxFlowCalls, plan.Stats.RealizationChecks
	if calls == 0 {
		t.Fatal("compile did no max-flow work?")
	}
	for i := 0; i < 50; i++ {
		if _, err := plan.Eval(nil); err != nil {
			t.Fatal(err)
		}
	}
	if plan.Stats.MaxFlowCalls != calls || plan.Stats.RealizationChecks != checks {
		t.Fatalf("Eval changed compile stats: %+v", plan.Stats)
	}
}

// TestPlanEvalBatchDefaultParallelism: parallelism ≤ 0 means "pick for
// me" (GOMAXPROCS), not zero workers — a zero or negative worker count
// must still evaluate every scenario and match the sequential answers.
func TestPlanEvalBatchDefaultParallelism(t *testing.T) {
	g, dem, cut := twoBottleneck()
	plan, err := Compile(g, dem, Options{Bottleneck: cut})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	scenarios := make([][]float64, 16)
	for i := range scenarios {
		pf := plan.BasePFail()
		for j := range pf {
			pf[j] = rng.Float64() * 0.9
		}
		scenarios[i] = pf
	}
	for _, par := range []int{0, -1, -64} {
		got, err := plan.EvalBatch(scenarios, par)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i, pf := range scenarios {
			want, err := plan.Eval(pf)
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != want {
				t.Fatalf("parallelism %d scenario %d: %.17g != %.17g", par, i, got[i], want)
			}
		}
	}
}
