package core

import (
	"fmt"
	"math/big"

	"flowrel/internal/assign"
	"flowrel/internal/graph"
	"flowrel/internal/mincut"
	"flowrel/internal/subset"
)

// ReliabilityExact runs the bottleneck decomposition in exact rational
// arithmetic: the side realization arrays are combinatorial (no floats
// involved), and the probability aggregation, zeta transform,
// inclusion–exclusion and Eq. 3 summation all use big.Rat with the exact
// rational values of the links' float64 probabilities. The result is
// therefore *identical* — not merely close — to the exact naive
// enumeration, which the test suite asserts with big.Rat equality. This
// validates the decomposition itself, separately from floating-point
// error. Sequential and slow; meant for verification, not production.
func ReliabilityExact(g *graph.Graph, dem graph.Demand, opt Options) (*big.Rat, error) {
	if g == nil {
		return nil, fmt.Errorf("core: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	opt.setDefaults()

	var bt *mincut.Bottleneck
	var err error
	if opt.Bottleneck != nil {
		bt, err = mincut.Split(g, dem.S, dem.T, opt.Bottleneck)
	} else {
		bt, err = mincut.Find(g, dem.S, dem.T, opt.MaxBottleneck)
	}
	if err != nil {
		return nil, err
	}

	caps := make([]int, bt.K())
	for i, eid := range bt.Cut {
		caps[i] = g.Edge(eid).Cap
	}
	ds, err := assign.NewSet(caps, dem.D)
	if err != nil {
		return nil, err
	}
	if ds.Len() == 0 {
		return new(big.Rat), nil
	}
	if ds.Len() > opt.MaxAssignmentSet {
		return nil, fmt.Errorf("core: |𝒟| = %d exceeds MaxAssignmentSet %d", ds.Len(), opt.MaxAssignmentSet)
	}

	var stats Stats
	sideS, err := buildSide(bt.Gs, bt.Gs.NodeOf[dem.S], bt.XS, true, ds, &opt, &stats, 0)
	if err != nil {
		return nil, err
	}
	sideT, err := buildSide(bt.Gt, bt.Gt.NodeOf[dem.T], bt.YT, false, ds, &opt, &stats, 1)
	if err != nil {
		return nil, err
	}

	qs := aggregateRat(sideS, bt.Gs, ds.Len())
	qt := aggregateRat(sideT, bt.Gt, ds.Len())
	supersetZetaRat(qs, ds.Len())
	supersetZetaRat(qt, ds.Len())

	pCut := make([]*big.Rat, bt.K())
	for i, eid := range bt.Cut {
		pCut[i] = new(big.Rat).SetFloat64(g.Edge(eid).PFail)
	}
	classes := ds.Classify()
	one := new(big.Rat).SetInt64(1)
	total := new(big.Rat)
	tmp := new(big.Rat)
	for e := uint64(0); e < uint64(1)<<uint(bt.K()); e++ {
		// Rational arithmetic makes each accumulation step orders of
		// magnitude slower than the float path, so this enumeration
		// charges the budget per bottleneck configuration rather than per
		// anytime.CheckEvery batch.
		if !opt.Ctl.Charge(1, 0) {
			return nil, opt.Ctl.Err()
		}
		dMask := classes[e]
		if dMask == 0 {
			continue
		}
		// p_{E''} (Eq. 2) in rationals.
		pe := new(big.Rat).SetInt64(1)
		for i := range pCut {
			if e&(1<<uint(i)) != 0 {
				tmp.Sub(one, pCut[i])
				pe.Mul(pe, tmp)
			} else {
				pe.Mul(pe, pCut[i])
			}
		}
		r := new(big.Rat)
		subset.Submasks(dMask, func(x uint64) {
			if x == 0 {
				return
			}
			tmp.Mul(qs[x], qt[x])
			if subset.PopcountParity(x) < 0 { // odd |X|: add
				r.Add(r, tmp)
			} else {
				r.Sub(r, tmp)
			}
		})
		tmp.Mul(pe, r)
		total.Add(total, tmp)
	}
	return total, nil
}

// aggregateRat sums exact configuration probabilities by realized mask.
func aggregateRat(sa *sideArray, sub *graph.Subgraph, n int) []*big.Rat {
	q := make([]*big.Rat, uint64(1)<<uint(n))
	for i := range q {
		q[i] = new(big.Rat)
	}
	pFail := make([]*big.Rat, sub.G.NumEdges())
	pLive := make([]*big.Rat, sub.G.NumEdges())
	one := new(big.Rat).SetInt64(1)
	for i, e := range sub.G.Edges() {
		pFail[i] = new(big.Rat).SetFloat64(e.PFail)
		pLive[i] = new(big.Rat).Sub(one, pFail[i])
	}
	pr := new(big.Rat)
	for mask, rm := range sa.realized {
		pr.SetInt64(1)
		for i := range pFail {
			if uint64(mask)&(1<<uint(i)) != 0 {
				pr.Mul(pr, pLive[i])
			} else {
				pr.Mul(pr, pFail[i])
			}
		}
		q[rm].Add(q[rm], pr)
	}
	return q
}

// supersetZetaRat is subset.SupersetZeta over rationals.
func supersetZetaRat(f []*big.Rat, n int) {
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := 0; m < len(f); m++ {
			if m&bit == 0 {
				f[m].Add(f[m], f[m|bit])
			}
		}
	}
}
