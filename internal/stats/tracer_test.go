package stats

import (
	"sync"
	"testing"
	"time"
)

type countingTracer struct {
	mu      sync.Mutex
	phases  int
	configs int
	rungs   int
}

func (c *countingTracer) OnPhase(PhaseEvent) {
	c.mu.Lock()
	c.phases++
	c.mu.Unlock()
}

func (c *countingTracer) OnConfig(ConfigEvent) {
	c.mu.Lock()
	c.configs++
	c.mu.Unlock()
}

func (c *countingTracer) OnRung(RungEvent) {
	c.mu.Lock()
	c.rungs++
	c.mu.Unlock()
}

func TestTeeNilHandling(t *testing.T) {
	if Tee() != nil {
		t.Fatal("Tee() should be nil")
	}
	if Tee(nil, nil) != nil {
		t.Fatal("Tee(nil, nil) should be nil")
	}
	a := &countingTracer{}
	if got := Tee(nil, a, nil); got != Tracer(a) {
		t.Fatal("Tee with one live tracer should return it directly")
	}
	b := &countingTracer{}
	tee := Tee(a, b)
	tee.OnPhase(PhaseEvent{})
	tee.OnConfig(ConfigEvent{})
	tee.OnRung(RungEvent{})
	for _, c := range []*countingTracer{a, b} {
		if c.phases != 1 || c.configs != 1 || c.rungs != 1 {
			t.Fatalf("tee fan-out: got %d/%d/%d, want 1/1/1", c.phases, c.configs, c.rungs)
		}
	}
}

func TestRecorderAccumulates(t *testing.T) {
	r := NewRecorder()
	r.OnPhase(PhaseEvent{Engine: "core", Phase: "side/0", Configs: 128})
	r.OnRung(RungEvent{Rung: "core", Outcome: "answered"})
	r.OnConfig(ConfigEvent{Configs: 100, MaxFlowCalls: 10, Elapsed: time.Millisecond})
	r.OnConfig(ConfigEvent{Configs: 50, MaxFlowCalls: 5, Elapsed: 2 * time.Millisecond})

	if ph := r.Phases(); len(ph) != 1 || ph[0].Phase != "side/0" {
		t.Fatalf("Phases = %+v", ph)
	}
	if rg := r.Rungs(); len(rg) != 1 || rg[0].Outcome != "answered" {
		t.Fatalf("Rungs = %+v", rg)
	}
	configs, calls := r.Totals()
	if configs != 150 || calls != 15 {
		t.Fatalf("Totals = %d/%d, want 150/15", configs, calls)
	}
	curve := r.Curve()
	if len(curve) != 2 {
		t.Fatalf("curve has %d points, want 2", len(curve))
	}
	last := curve[len(curve)-1]
	if last.Configs != 150 || last.MaxFlowCalls != 15 {
		t.Fatalf("curve tail = %+v, want cumulative 150/15", last)
	}
}

// TestRecorderCurveBounded feeds far more charges than maxCurvePoints and
// checks the curve stays bounded, monotone, and ends at the true totals.
func TestRecorderCurveBounded(t *testing.T) {
	r := NewRecorder()
	const n = 10 * maxCurvePoints
	for i := 1; i <= n; i++ {
		r.OnConfig(ConfigEvent{Configs: 1, Elapsed: time.Duration(i)})
	}
	curve := r.Curve()
	if len(curve) > maxCurvePoints {
		t.Fatalf("curve has %d points, cap is %d", len(curve), maxCurvePoints)
	}
	if len(curve) < maxCurvePoints/4 {
		t.Fatalf("curve has only %d points — compaction too aggressive", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Configs <= curve[i-1].Configs || curve[i].Elapsed < curve[i-1].Elapsed {
			t.Fatalf("curve not monotone at %d: %+v then %+v", i, curve[i-1], curve[i])
		}
	}
	if tail := curve[len(curve)-1]; tail.Configs != n {
		t.Fatalf("curve tail configs = %d, want %d", tail.Configs, n)
	}
	configs, _ := r.Totals()
	if configs != n {
		t.Fatalf("Totals = %d, want %d", configs, n)
	}
}

// TestRecorderConcurrent exercises the recorder under the race detector.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.OnConfig(ConfigEvent{Configs: 1, Elapsed: time.Duration(i)})
				if i%100 == 0 {
					r.OnPhase(PhaseEvent{Engine: "w", Phase: "p"})
					_ = r.Curve()
				}
			}
		}(w)
	}
	wg.Wait()
	configs, _ := r.Totals()
	if configs != 8*500 {
		t.Fatalf("Totals = %d, want 4000", configs)
	}
}
