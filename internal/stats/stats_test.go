package stats

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value = %d, want 42", got)
	}
	if again := r.Counter("x"); again != c {
		t.Fatal("Counter(\"x\") did not return the same instance")
	}
}

func TestDisabledRegistryDropsUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	tm := r.Timer("t")
	r.SetEnabled(false)
	c.Add(5)
	h.Observe(7)
	tm.Observe(time.Second)
	if c.Value() != 0 || h.Count() != 0 || tm.Count() != 0 {
		t.Fatalf("disabled registry recorded updates: c=%d h=%d t=%d", c.Value(), h.Count(), tm.Count())
	}
	r.SetEnabled(true)
	c.Add(5)
	if c.Value() != 5 {
		t.Fatalf("re-enabled counter = %d, want 5", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	s := h.snapshot()
	if s.Count != 7 {
		t.Fatalf("Count = %d, want 7", s.Count)
	}
	if s.Sum != 1011 {
		t.Fatalf("Sum = %d, want 1011", s.Sum)
	}
	// 0 → bucket 0; 1,1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3; 1000 → bucket 10.
	want := map[int]int64{0: 1, 1: 2, 2: 2, 3: 1, 10: 1}
	for b, n := range want {
		if s.Buckets[b] != n {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", b, s.Buckets[b], n, s.Buckets)
		}
	}
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(10)
	h.Observe(4)
	before := r.Snapshot()
	c.Add(7)
	h.Observe(4)
	h.Observe(9)
	after := r.Snapshot()
	d := after.Delta(before)
	if d.Counters["c"] != 7 {
		t.Fatalf("delta counter = %d, want 7", d.Counters["c"])
	}
	hd := d.Histograms["h"]
	if hd.Count != 2 || hd.Sum != 13 {
		t.Fatalf("delta histogram count=%d sum=%d, want 2/13", hd.Count, hd.Sum)
	}
	if hd.Buckets[3] != 1 || hd.Buckets[4] != 1 {
		t.Fatalf("delta buckets = %v, want one in 3 and one in 4", hd.Buckets)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("plancache.hits").Add(3)
	r.Timer("core.compile").Observe(1500 * time.Nanosecond)
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["plancache.hits"] != 3 {
		t.Fatalf("round-tripped counter = %d, want 3", back.Counters["plancache.hits"])
	}
	if back.Timers["core.compile"].Count != 1 {
		t.Fatalf("round-tripped timer count = %d, want 1", back.Timers["core.compile"].Count)
	}
}

func TestCounterNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b")
	r.Counter("a")
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("CounterNames = %v, want [a b]", names)
	}
}

// TestConcurrentMetrics exercises the lock-free paths under the race
// detector: concurrent Add/Observe against concurrent Snapshot.
func TestConcurrentMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d, want 8000", h.Count())
	}
}

func TestTimerTime(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("t")
	tm.Time(func() { time.Sleep(time.Millisecond) })
	if tm.Count() != 1 {
		t.Fatalf("Count = %d, want 1", tm.Count())
	}
	if tm.TotalNanos() < int64(time.Millisecond)/2 {
		t.Fatalf("TotalNanos = %d, implausibly small for a 1ms sleep", tm.TotalNanos())
	}
}
