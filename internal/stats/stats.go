// Package stats is the solver's observability layer: lock-free atomic
// counters, bounded histograms and timers grouped into a Registry with
// cheap snapshot diffing, plus the phase-tracing hook API (Tracer) the
// engines fire while they work.
//
// Two rules keep the layer production-safe:
//
//   - Hot loops never touch a metric per configuration. Counters are
//     charged at the same amortized grain as the anytime budget (once per
//     anytime.CheckEvery configurations, or once per compile/eval), so a
//     metric is at most a couple of atomic adds per batch.
//   - The disabled path is measurably free. SetEnabled(false) turns every
//     Add/Observe into a single atomic load and branch, and a nil Tracer
//     costs one nil check at each hook site. A dedicated benchmark
//     (BenchmarkNilTracerOverhead at the module root) asserts the default
//     mode stays within 2% of the instrumented-off baseline.
//
// All types are safe for concurrent use. The package is pure standard
// library and imports nothing from the rest of the module, so every layer
// — including internal/anytime — can depend on it.
package stats

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing lock-free counter. The zero value
// is usable but never disabled; counters obtained from a Registry honour
// the registry's enabled switch.
type Counter struct {
	v  atomic.Int64
	on *atomic.Bool // nil = always on
}

// Add adds n to the counter (no-op while the owning registry is disabled).
func (c *Counter) Add(n int64) {
	if c.on != nil && !c.on.Load() {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// histBuckets is the fixed bucket count of a Histogram: bucket i holds
// observations whose value has bit-length i (i.e. v in [2^(i-1), 2^i)),
// bucket 0 holds v ≤ 0. Bounded by construction — no allocation ever
// happens on the observe path.
const histBuckets = 65

// Histogram is a bounded power-of-two histogram of int64 observations.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	on      *atomic.Bool
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h.on != nil && !h.on.Load() {
		return
	}
	i := 0
	if v > 0 {
		i = bits.Len64(uint64(v))
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// snapshot captures the histogram's current state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]int64)
			}
			s.Buckets[i] = n
		}
	}
	return s
}

// Timer is a Histogram of durations in nanoseconds.
type Timer struct {
	h Histogram
}

// Observe records one duration.
func (t *Timer) Observe(d time.Duration) { t.h.Observe(int64(d)) }

// Time runs f and records its wall-clock duration.
func (t *Timer) Time(f func()) {
	start := time.Now()
	f()
	t.Observe(time.Since(start))
}

// Count returns the number of recorded durations.
func (t *Timer) Count() int64 { return t.h.Count() }

// TotalNanos returns the summed duration in nanoseconds.
func (t *Timer) TotalNanos() int64 { return t.h.Sum() }

// Registry groups named metrics for one process. Metric registration
// takes a mutex once; the metrics themselves are lock-free afterwards, so
// packages fetch their counters into package-level variables at init and
// never pay the lookup again.
type Registry struct {
	enabled atomic.Bool

	mu         sync.Mutex
	counters   map[string]*Counter
	histograms map[string]*Histogram
	timers     map[string]*Timer
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	r := &Registry{
		counters:   make(map[string]*Counter),
		histograms: make(map[string]*Histogram),
		timers:     make(map[string]*Timer),
	}
	r.enabled.Store(true)
	return r
}

// Default is the process-wide registry the solver layers record into.
var Default = NewRegistry()

// SetEnabled flips metric collection; disabled metrics drop updates after
// one atomic load. Snapshots remain readable either way.
func (r *Registry) SetEnabled(on bool) { r.enabled.Store(on) }

// Enabled reports whether the registry is collecting.
func (r *Registry) Enabled() bool { return r.enabled.Load() }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{on: &r.enabled}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{on: &r.enabled}
		r.histograms[name] = h
	}
	return h
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timers[name]
	if !ok {
		t = &Timer{h: Histogram{on: &r.enabled}}
		r.timers[name] = t
	}
	return t
}

// HistogramSnapshot is the frozen state of one histogram: observation
// count, value sum, and the non-empty power-of-two buckets keyed by value
// bit-length.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every metric in a registry. It is
// cheap to take (one atomic load per metric) and JSON-marshalable, so it
// feeds both the CLI -stats output and the expvar endpoint.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Timers     map[string]HistogramSnapshot `json:"timers,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for name, h := range r.histograms {
			s.Histograms[name] = h.snapshot()
		}
	}
	if len(r.timers) > 0 {
		s.Timers = make(map[string]HistogramSnapshot, len(r.timers))
		for name, t := range r.timers {
			s.Timers[name] = t.h.snapshot()
		}
	}
	return s
}

// Delta returns the change from prev to s: counter differences, histogram
// count/sum/bucket differences. Metrics absent from prev are reported at
// their full value; metrics absent from s are dropped. Use it to scope
// process-lifetime metrics to one request or one sweep.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	d := Snapshot{}
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			d.Counters[name] = v - prev.Counters[name]
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			d.Histograms[name] = h.delta(prev.Histograms[name])
		}
	}
	if len(s.Timers) > 0 {
		d.Timers = make(map[string]HistogramSnapshot, len(s.Timers))
		for name, t := range s.Timers {
			d.Timers[name] = t.delta(prev.Timers[name])
		}
	}
	return d
}

func (h HistogramSnapshot) delta(prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum}
	for i, n := range h.Buckets {
		if diff := n - prev.Buckets[i]; diff != 0 {
			if d.Buckets == nil {
				d.Buckets = make(map[int]int64)
			}
			d.Buckets[i] = diff
		}
	}
	return d
}

// CounterNames returns the registered counter names in sorted order — the
// counter catalogue, used by docs tests and the expvar endpoint.
func (r *Registry) CounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
