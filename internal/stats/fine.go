package stats

import (
	"math/bits"
	"sync/atomic"
)

// FineHistogram is a lock-free log-linear histogram of non-negative int64
// observations with bounded relative error, built for latency
// distributions: the power-of-two Histogram answers "which magnitude",
// this one answers "what is p99" to within ~3%.
//
// Values 0–15 get exact buckets. Larger values are bucketed by their
// leading bit (the major) subdivided into 16 linear minors — the classic
// HDR layout with 4 significant bits — so every bucket spans at most
// 1/16 of its value, and a quantile read off the bucket midpoint is
// within ±3.2% of the true order statistic. The bucket array is fixed
// (976 slots, ~8 KiB) and the observe path is three atomic adds; the
// zero value is ready to use and safe for concurrent use.
type FineHistogram struct {
	buckets [fineBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
}

// fineMinors is the linear subdivision per power-of-two major; 16 minors
// keep 4 significant bits of every observation.
const fineMinors = 16

// fineBuckets covers majors for bit lengths 5..63 (59 of them — an int64
// value's bit length never exceeds 63) after the 16 exact small-value
// buckets.
const fineBuckets = fineMinors + 59*fineMinors

// fineIndex maps a value to its bucket. Negative values clamp to 0.
func fineIndex(v int64) int {
	if v < fineMinors {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	msb := bits.Len64(uint64(v)) // ≥ 5 here
	minor := int(v>>(msb-5)) & (fineMinors - 1)
	return (msb-4)*fineMinors + minor
}

// fineLowerBound is the smallest value mapping to bucket i.
func fineLowerBound(i int) int64 {
	if i < fineMinors {
		return int64(i)
	}
	msb := i/fineMinors + 4
	minor := int64(i % fineMinors)
	base := int64(1) << (msb - 1)
	width := int64(1) << (msb - 5)
	return base + minor*width
}

// fineMidpoint is the representative value of bucket i: its midpoint,
// which bounds the quantile error by half the bucket width.
func fineMidpoint(i int) int64 {
	if i < fineMinors {
		return int64(i)
	}
	msb := i/fineMinors + 4
	width := int64(1) << (msb - 5)
	return fineLowerBound(i) + width/2
}

// Observe records one value.
func (h *FineHistogram) Observe(v int64) {
	h.buckets[fineIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *FineHistogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *FineHistogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 before any observation).
func (h *FineHistogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean (0 before any observation).
func (h *FineHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the q-quantile (0 < q ≤ 1) of the observations so far,
// to within the bucket resolution (~±3.2% for values ≥ 16, exact below).
// Concurrent Observes may or may not be included; before any observation
// it returns 0. q outside (0,1] clamps.
func (h *FineHistogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q <= 0 {
		q = 1e-9
	}
	if q > 1 {
		q = 1
	}
	// rank in 1..n: the smallest k with k ≥ q·n.
	rank := int64(q * float64(n))
	if float64(rank) < q*float64(n) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < fineBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			// The top bucket's midpoint can overshoot the largest value
			// actually seen; clamp so quantiles never exceed Max.
			mid := fineMidpoint(i)
			if m := h.max.Load(); mid > m {
				return m
			}
			return mid
		}
	}
	// Counts moved under us (concurrent observes); fall back to max.
	return h.max.Load()
}

// FineSnapshot freezes a FineHistogram for reporting: count, sum, max
// and the standard latency quantiles, all in the observed unit.
type FineSnapshot struct {
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
}

// FineSnapshot captures the histogram's current quantile summary.
func (h *FineHistogram) FineSnapshot() FineSnapshot {
	return FineSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}
