package stats

import (
	"math"
	"sync"
	"testing"
)

func TestFineIndexRoundTrip(t *testing.T) {
	// Every bucket's lower bound must map back to that bucket, and bucket
	// boundaries must be monotone.
	prev := int64(-1)
	for i := 0; i < fineBuckets; i++ {
		lo := fineLowerBound(i)
		if got := fineIndex(lo); got != i {
			t.Fatalf("fineIndex(fineLowerBound(%d)=%d) = %d", i, lo, got)
		}
		if lo <= prev && i > 0 {
			t.Fatalf("bucket %d lower bound %d not increasing past %d", i, lo, prev)
		}
		prev = lo
	}
	// Small values are exact.
	for v := int64(0); v < fineMinors; v++ {
		if got := fineMidpoint(fineIndex(v)); got != v {
			t.Errorf("small value %d represented as %d", v, got)
		}
	}
	// Negative values clamp to bucket 0.
	if got := fineIndex(-5); got != 0 {
		t.Errorf("fineIndex(-5) = %d, want 0", got)
	}
	// The largest int64 must stay in range.
	if got := fineIndex(math.MaxInt64); got >= fineBuckets {
		t.Errorf("fineIndex(MaxInt64) = %d out of %d buckets", got, fineBuckets)
	}
}

func TestFineHistogramQuantileUniform(t *testing.T) {
	// 1..100_000 observed once each: every quantile is known exactly, and
	// the log-linear buckets must land within 3.5% of it.
	var h FineHistogram
	const n = 100_000
	for v := int64(1); v <= n; v++ {
		h.Observe(v)
	}
	if h.Count() != n {
		t.Fatalf("count = %d, want %d", h.Count(), n)
	}
	if h.Max() != n {
		t.Fatalf("max = %d, want %d", h.Max(), n)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := q * n
		got := float64(h.Quantile(q))
		if rel := math.Abs(got-want) / want; rel > 0.035 {
			t.Errorf("q=%v: got %v, want ≈%v (rel err %.3f)", q, got, want, rel)
		}
	}
	if got := h.Quantile(1); got < n/2 {
		t.Errorf("q=1 returned %d, far below max", got)
	}
}

func TestFineHistogramEmptyAndClamp(t *testing.T) {
	var h FineHistogram
	if h.Quantile(0.99) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(42)
	if got := h.Quantile(2); got == 0 {
		t.Error("q>1 must clamp to the top, not report empty")
	}
	if got := h.Quantile(-1); got == 0 && h.Count() > 0 {
		t.Error("q≤0 must clamp to the bottom rank, not report empty")
	}
}

func TestFineHistogramSnapshotShape(t *testing.T) {
	var h FineHistogram
	for v := int64(0); v < 1000; v++ {
		h.Observe(v)
	}
	s := h.FineSnapshot()
	if s.Count != 1000 || s.Max != 999 {
		t.Errorf("snapshot count/max = %d/%d, want 1000/999", s.Count, s.Max)
	}
	if !(s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.P999) {
		t.Errorf("quantiles not monotone: %+v", s)
	}
	if s.Mean < 450 || s.Mean > 550 {
		t.Errorf("mean = %v, want ≈499.5", s.Mean)
	}
}

func TestFineHistogramConcurrent(t *testing.T) {
	// Concurrency smoke (meaningful under -race): total count and sum
	// must be exact regardless of interleaving.
	var h FineHistogram
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
	wantSum := int64(workers*per) * int64(workers*per-1) / 2
	if h.Sum() != wantSum {
		t.Errorf("sum = %d, want %d", h.Sum(), wantSum)
	}
	if h.Max() != int64(workers*per-1) {
		t.Errorf("max = %d, want %d", h.Max(), workers*per-1)
	}
}
