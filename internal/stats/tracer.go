package stats

import (
	"sync"
	"time"
)

// PhaseEvent reports one completed solver phase: a cut search, an
// assignment enumeration, one side-array construction, a chain segment
// transition. Configs and MaxFlowCalls are the work done *within* the
// phase, not cumulative totals.
type PhaseEvent struct {
	// Engine names the solver layer ("core", "chain", "plancache", …).
	Engine string
	// Phase names the step within the engine ("cut-search", "side/0", …).
	Phase string
	// Duration is the phase's wall-clock time.
	Duration time.Duration
	// Configs is the number of failure configurations examined in the phase.
	Configs uint64
	// MaxFlowCalls is the number of max-flow solves run in the phase.
	MaxFlowCalls int64
}

// ConfigEvent reports one amortized budget charge from a worker loop —
// the stream of these events is the budget consumption curve. Configs and
// MaxFlowCalls are the batch just charged; Elapsed is measured from the
// root controller's start, so events from ladder sub-controllers land on
// one time axis.
type ConfigEvent struct {
	Configs      uint64
	MaxFlowCalls int64
	Elapsed      time.Duration
}

// RungEvent reports a degradation-ladder transition: a rung answered,
// declined, or certified a partial interval.
type RungEvent struct {
	// Rung is "core", "chain", "factoring", "most-probable-states" or
	// "importance-sampling".
	Rung string
	// Outcome is "answered", "declined" or "partial".
	Outcome string
	// Reason explains a decline or interruption ("" when answered).
	Reason string
	// Duration is the rung's wall-clock time.
	Duration time.Duration
}

// Tracer receives solver progress events. Implementations must be safe
// for concurrent use: worker goroutines fire OnConfig concurrently.
//
// A nil Tracer is the fast path — every hook site guards with a single
// nil check, so untraced runs pay nothing beyond that branch.
type Tracer interface {
	OnPhase(PhaseEvent)
	OnConfig(ConfigEvent)
	OnRung(RungEvent)
}

// Tee combines tracers, skipping nils; it returns nil when every input is
// nil so the nil fast path is preserved.
func Tee(tracers ...Tracer) Tracer {
	var live []Tracer
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return teeTracer(live)
}

type teeTracer []Tracer

func (tt teeTracer) OnPhase(e PhaseEvent) {
	for _, t := range tt {
		t.OnPhase(e)
	}
}

func (tt teeTracer) OnConfig(e ConfigEvent) {
	for _, t := range tt {
		t.OnConfig(e)
	}
}

func (tt teeTracer) OnRung(e RungEvent) {
	for _, t := range tt {
		t.OnRung(e)
	}
}

// maxCurvePoints bounds the Recorder's budget consumption curve: when the
// buffer fills, it is compacted by merging adjacent pairs and the stride
// doubles, so memory stays constant while the curve keeps full time span
// at halved resolution.
const maxCurvePoints = 256

// Recorder is a Tracer that accumulates events in memory — the collector
// behind Report.Stats and the CLI -stats output. Phase and rung events
// are kept verbatim (their count is bounded by the solver structure); the
// OnConfig stream is folded into a bounded cumulative curve.
type Recorder struct {
	mu           sync.Mutex
	phases       []PhaseEvent
	rungs        []RungEvent
	curve        []CurvePoint
	stride       int // charges folded per curve point
	pending      int // charges folded into the trailing point so far
	totalConfigs uint64
	totalCalls   int64
}

// CurvePoint is one point of the recorded budget consumption curve:
// cumulative work as of Elapsed.
type CurvePoint struct {
	Elapsed      time.Duration
	Configs      uint64
	MaxFlowCalls int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{stride: 1} }

// OnPhase implements Tracer.
func (r *Recorder) OnPhase(e PhaseEvent) {
	r.mu.Lock()
	r.phases = append(r.phases, e)
	r.mu.Unlock()
}

// OnRung implements Tracer.
func (r *Recorder) OnRung(e RungEvent) {
	r.mu.Lock()
	r.rungs = append(r.rungs, e)
	r.mu.Unlock()
}

// OnConfig implements Tracer.
func (r *Recorder) OnConfig(e ConfigEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.totalConfigs += e.Configs
	r.totalCalls += e.MaxFlowCalls
	pt := CurvePoint{Elapsed: e.Elapsed, Configs: r.totalConfigs, MaxFlowCalls: r.totalCalls}
	if r.pending > 0 && r.pending < r.stride {
		// Fold into the trailing point: keep the latest cumulative state.
		r.curve[len(r.curve)-1] = pt
		r.pending++
		return
	}
	if len(r.curve) == maxCurvePoints {
		// Halve the resolution: keep every second point, double the stride.
		kept := r.curve[:0]
		for i := 1; i < len(r.curve); i += 2 {
			kept = append(kept, r.curve[i])
		}
		r.curve = kept
		r.stride *= 2
	}
	r.curve = append(r.curve, pt)
	r.pending = 1
}

// Phases returns the recorded phase events in arrival order.
func (r *Recorder) Phases() []PhaseEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]PhaseEvent(nil), r.phases...)
}

// Rungs returns the recorded ladder transitions in arrival order.
func (r *Recorder) Rungs() []RungEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RungEvent(nil), r.rungs...)
}

// Curve returns the bounded cumulative budget consumption curve.
func (r *Recorder) Curve() []CurvePoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]CurvePoint(nil), r.curve...)
}

// Totals returns the cumulative configs and max-flow calls observed.
func (r *Recorder) Totals() (configs uint64, maxFlowCalls int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.totalConfigs, r.totalCalls
}
