// Package sim is a session-level P2P streaming simulator: each session
// draws an independent failure configuration of the overlay links, routes
// as many of the d unit-rate sub-streams as the surviving overlay can
// carry (max flow), and decomposes them into delivery paths. Aggregated
// over many sessions it yields an empirical delivery rate that must agree
// with the exact reliability engines — the library's end-to-end
// cross-check — plus streaming-quality statistics (partial delivery,
// path lengths) that the exact engines do not expose.
package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/bitset"
	"flowrel/internal/flowdecomp"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// Config tunes a simulation run.
type Config struct {
	Sessions    int   // number of independent streaming sessions
	Seed        int64 // PRNG seed; runs are deterministic per seed
	Parallelism int   // worker goroutines; ≤ 0 = GOMAXPROCS
	// CollectPaths enables per-session path decomposition (hop
	// statistics); costs one extra pass per session.
	CollectPaths bool
	// Ctl optionally makes the run cancellable: an interrupted run reports
	// statistics over the sessions actually simulated, with Partial set.
	Ctl *anytime.Ctl
}

// Report aggregates a simulation run.
type Report struct {
	Sessions  int
	Delivered int // sessions in which all d sub-streams arrived
	// DeliveryRate = Delivered/Sessions: the empirical reliability.
	DeliveryRate float64
	// StdErr is the standard error of DeliveryRate.
	StdErr float64
	// MeanSubstreams is the average number of sub-streams delivered
	// (capped at d): the partial-delivery quality metric.
	MeanSubstreams float64
	// MeanHops is the average delivery-path length over all delivered
	// sub-streams (0 when CollectPaths is off or nothing was delivered).
	MeanHops float64
	// Partial reports an interrupted run; Sessions then counts only the
	// sessions actually simulated and all statistics cover those.
	Partial bool
	// Reason says why an interrupted run stopped.
	Reason string
}

// Run simulates the demand on the overlay.
func Run(g *graph.Graph, dem graph.Demand, cfg Config) (Report, error) {
	if g == nil {
		return Report{}, fmt.Errorf("sim: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return Report{}, err
	}
	if cfg.Sessions < 1 {
		return Report{}, fmt.Errorf("sim: session count %d must be ≥ 1", cfg.Sessions)
	}
	workers := cfg.Parallelism
	if workers <= 0 {
		workers = defaultParallelism()
	}

	proto, handles := maxflow.FromGraph(g)
	pFail := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}

	const blockSize = 1024
	nBlocks := (cfg.Sessions + blockSize - 1) / blockSize
	type blockStats struct {
		done       int
		delivered  int
		substreams int64
		hops       int64
		pathCount  int64
	}
	blocks := make([]blockStats, nBlocks)
	errs := make([]error, nBlocks)

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for bi := 0; bi < nBlocks; bi++ {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var cur uint64
			defer anytime.RecoverInto(&errs[bi], cfg.Ctl, "simulation worker", &cur)
			if cfg.Ctl.Stopped() {
				return
			}
			n := blockSize
			if bi == nBlocks-1 {
				n = cfg.Sessions - bi*blockSize
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(bi)*0x5851F42D4C957F2D))
			nw := proto.Clone()
			var alive *bitset.Set
			if cfg.CollectPaths {
				alive = bitset.New(g.NumEdges())
			}
			st := &blocks[bi]
			var callsMark int64
			for i := 0; i < n; i++ {
				if i > 0 && i%256 == 0 {
					if !cfg.Ctl.Charge(256, nw.Stats.MaxFlowCalls-callsMark) {
						break
					}
					callsMark = nw.Stats.MaxFlowCalls
				}
				cur = uint64(i)
				if alive != nil {
					alive.Reset()
				}
				for j := range handles {
					up := rng.Float64() >= pFail[j]
					nw.SetEnabled(handles[j], up)
					if up && alive != nil {
						alive.Set(j)
					}
				}
				got := nw.MaxFlow(int32(dem.S), int32(dem.T), dem.D)
				st.substreams += int64(got)
				if got >= dem.D {
					st.delivered++
				}
				if cfg.CollectPaths && got > 0 {
					paths, err := flowdecomp.Paths(g, dem, alive)
					if err == nil {
						for _, p := range paths {
							st.hops += int64(p.Hops())
							st.pathCount++
						}
					}
				}
				st.done++
			}
			cfg.Ctl.Charge(uint64(st.done%256), nw.Stats.MaxFlowCalls-callsMark)
		}(bi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Report{}, err
		}
	}

	rep := Report{}
	var substreams, hops, pathCount int64
	for i := range blocks {
		rep.Sessions += blocks[i].done
		rep.Delivered += blocks[i].delivered
		substreams += blocks[i].substreams
		hops += blocks[i].hops
		pathCount += blocks[i].pathCount
	}
	if rep.Sessions < cfg.Sessions {
		rep.Partial = true
		rep.Reason = cfg.Ctl.Reason()
	}
	if rep.Sessions == 0 {
		return rep, nil
	}
	rep.DeliveryRate = float64(rep.Delivered) / float64(rep.Sessions)
	rep.StdErr = math.Sqrt(rep.DeliveryRate * (1 - rep.DeliveryRate) / float64(rep.Sessions))
	rep.MeanSubstreams = float64(substreams) / float64(rep.Sessions)
	if pathCount > 0 {
		rep.MeanHops = float64(hops) / float64(pathCount)
	}
	return rep, nil
}
