package sim

import (
	"math"
	"testing"

	"flowrel/internal/graph"
	"flowrel/internal/overlay"
	"flowrel/internal/reliability"
)

func TestPFailFromMTBF(t *testing.T) {
	if got := PFailFromMTBF(90, 10); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("PFailFromMTBF(90,10) = %g, want 0.1", got)
	}
}

// TestContinuousSingleLink checks availability against the closed form on
// one link: A = MTBF/(MTBF+MTTR).
func TestContinuousSingleLink(t *testing.T) {
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, tt, 1, PFailFromMTBF(9, 1))
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 1}
	rep, err := Continuous(g, dem, ContinuousConfig{
		Dynamics: UniformDynamics(g, 9, 1),
		Horizon:  200000,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Availability-0.9) > 0.01 {
		t.Fatalf("availability = %g, want ≈0.9", rep.Availability)
	}
	if rep.Interruptions == 0 || rep.MeanOutage <= 0 {
		t.Fatalf("dynamics not measured: %+v", rep)
	}
	// Mean outage of a single link ≈ MTTR.
	if math.Abs(rep.MeanOutage-1) > 0.1 {
		t.Fatalf("mean outage = %g, want ≈1", rep.MeanOutage)
	}
	// Renewal rate: one interruption per MTBF+MTTR ≈ every 10 time units.
	if math.Abs(rep.MeanTimeBetweenInterruptions-10) > 1 {
		t.Fatalf("MTBI = %g, want ≈10", rep.MeanTimeBetweenInterruptions)
	}
}

// TestContinuousMatchesStaticReliability is the renewal-reward cross-check:
// long-run availability equals the static reliability at the steady-state
// link probabilities.
func TestContinuousMatchesStaticReliability(t *testing.T) {
	const mtbf, mttr = 20.0, 3.0
	p := PFailFromMTBF(mtbf, mttr)
	o := overlay.Figure2()
	// Rebuild with the steady-state probability on every link.
	b := graph.NewBuilder()
	b.AddNodes(o.G.NumNodes())
	for _, e := range o.G.Edges() {
		b.AddEdge(e.U, e.V, e.Cap, p)
	}
	g := b.MustBuild()
	dem := o.Demand(o.Peers[len(o.Peers)-1])

	want, err := reliability.Naive(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Continuous(g, dem, ContinuousConfig{
		Dynamics: UniformDynamics(g, mtbf, mttr),
		Horizon:  300000,
		Seed:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Availability-want.Reliability) > 0.01 {
		t.Fatalf("availability %g vs static reliability %g", rep.Availability, want.Reliability)
	}
}

// TestContinuousDeliverableFraction: on a single unit link with d=1 the
// deliverable fraction equals the availability; on two parallel links with
// d=2 it equals the per-link availability (each link contributes half).
func TestContinuousDeliverableFraction(t *testing.T) {
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, tt, 1, 0.1)
	b.AddEdge(s, tt, 1, 0.1)
	g := b.MustBuild()
	rep, err := Continuous(g, graph.Demand{S: s, T: tt, D: 2}, ContinuousConfig{
		Dynamics: UniformDynamics(g, 9, 1),
		Horizon:  200000,
		Seed:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// E[min(F,2)]/2 = E[X1+X2]/2 = A = 0.9.
	if math.Abs(rep.MeanDeliverableFraction-0.9) > 0.01 {
		t.Fatalf("deliverable fraction = %g, want ≈0.9", rep.MeanDeliverableFraction)
	}
	// Full service needs both: availability = A² = 0.81.
	if math.Abs(rep.Availability-0.81) > 0.01 {
		t.Fatalf("availability = %g, want ≈0.81", rep.Availability)
	}
}

// TestChurnComposesWithContinuous: the node-splitting transformation
// produces an ordinary instance, so peer dynamics drop straight into the
// event-driven simulator.
func TestChurnComposesWithContinuous(t *testing.T) {
	b := graph.NewBuilder()
	s := b.AddNode()
	relay := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, relay, 1, 0)
	b.AddEdge(relay, tt, 1, 0)
	g := b.MustBuild()
	inst, err := churnTransform(g, graph.Demand{S: s, T: tt, D: 1}, relay)
	if err != nil {
		t.Fatal(err)
	}
	// Links never fail; only the relay peer churns with MTBF 9, MTTR 1.
	dyn := make([]LinkDynamics, inst.g.NumEdges())
	for i := range dyn {
		dyn[i] = LinkDynamics{MTBF: 1e12, MTTR: 1e-12} // effectively always up
	}
	dyn[inst.peerLink] = LinkDynamics{MTBF: 9, MTTR: 1}
	rep, err := Continuous(inst.g, inst.dem, ContinuousConfig{
		Dynamics: dyn, Horizon: 100000, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Availability-0.9) > 0.01 {
		t.Fatalf("availability = %g, want ≈0.9 (the relay's availability)", rep.Availability)
	}
}

// churnTransform is a tiny local node-split (the churn package is not
// imported to keep sim's dependencies minimal).
type churnInstance struct {
	g        *graph.Graph
	dem      graph.Demand
	peerLink int
}

func churnTransform(g *graph.Graph, dem graph.Demand, relay graph.NodeID) (churnInstance, error) {
	b := graph.NewBuilder()
	inOf := make([]graph.NodeID, g.NumNodes())
	outOf := make([]graph.NodeID, g.NumNodes())
	peerLink := -1
	for i := 0; i < g.NumNodes(); i++ {
		if graph.NodeID(i) == relay {
			inOf[i] = b.AddNode()
			outOf[i] = b.AddNode()
			peerLink = int(b.AddEdge(inOf[i], outOf[i], dem.D, 0))
		} else {
			n := b.AddNode()
			inOf[i] = n
			outOf[i] = n
		}
	}
	for _, e := range g.Edges() {
		b.AddEdge(outOf[e.U], inOf[e.V], e.Cap, e.PFail)
	}
	gg, err := b.Build()
	if err != nil {
		return churnInstance{}, err
	}
	return churnInstance{g: gg, dem: graph.Demand{S: inOf[dem.S], T: outOf[dem.T], D: dem.D}, peerLink: peerLink}, nil
}

func TestContinuousDeterministicPerSeed(t *testing.T) {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	cfg := ContinuousConfig{Dynamics: UniformDynamics(o.G, 10, 1), Horizon: 5000, Seed: 3}
	a, err := Continuous(o.G, dem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Continuous(o.G, dem, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Availability != b.Availability || a.Events != b.Events {
		t.Fatal("not deterministic per seed")
	}
}

func TestContinuousErrors(t *testing.T) {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[0])
	good := UniformDynamics(o.G, 10, 1)
	cases := []ContinuousConfig{
		{Dynamics: good[:2], Horizon: 10},                   // wrong length
		{Dynamics: good, Horizon: 0},                        // bad horizon
		{Dynamics: good, Horizon: 10, WarmUp: 20},           // warm-up ≥ horizon
		{Dynamics: UniformDynamics(o.G, 0, 1), Horizon: 10}, // bad MTBF
		{Dynamics: UniformDynamics(o.G, 1, 0), Horizon: 10}, // bad MTTR
	}
	for i, cfg := range cases {
		if _, err := Continuous(o.G, dem, cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := Continuous(nil, dem, ContinuousConfig{Dynamics: good, Horizon: 10}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Continuous(o.G, graph.Demand{S: 0, T: 0, D: 1}, ContinuousConfig{Dynamics: good, Horizon: 10}); err == nil {
		t.Error("bad demand accepted")
	}
}
