package sim

import "runtime"

func defaultParallelism() int { return runtime.GOMAXPROCS(0) }
