package sim

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// LinkDynamics gives a link's alternating-renewal failure/repair process:
// up-times are Exp(1/MTBF), down-times Exp(1/MTTR). The long-run
// unavailability is MTTR/(MTBF+MTTR) — use graph.Edge.PFail for the static
// engines and PFailFromMTBF to convert.
type LinkDynamics struct {
	MTBF float64 // mean time between failures (up-time), > 0
	MTTR float64 // mean time to repair (down-time), > 0
}

// PFailFromMTBF converts renewal dynamics into the static failure
// probability the exact engines use: the steady-state unavailability
// MTTR/(MTBF+MTTR).
func PFailFromMTBF(mtbf, mttr float64) float64 { return mttr / (mtbf + mttr) }

// ContinuousConfig tunes an event-driven availability simulation.
type ContinuousConfig struct {
	// Dynamics per link (indexed by EdgeID). Nil entries are not allowed.
	Dynamics []LinkDynamics
	// Horizon is the simulated time span.
	Horizon float64
	// WarmUp is discarded before measurement starts (defaults to 10% of
	// Horizon) so the all-up initial state does not bias availability.
	WarmUp float64
	Seed   int64
}

// ContinuousReport aggregates an event-driven run.
type ContinuousReport struct {
	// Availability is the fraction of measured time the demand was
	// satisfiable — the time-average analogue of the static reliability.
	Availability float64
	// Interruptions counts service-loss transitions (per measured run).
	Interruptions int
	// MeanOutage is the average length of a service-loss period (0 when
	// none occurred).
	MeanOutage float64
	// MeanTimeBetweenInterruptions is measured time / Interruptions
	// (+Inf when none occurred).
	MeanTimeBetweenInterruptions float64
	// MeanDeliverableFraction is the time-average of min(maxflow, d)/d —
	// the layered-coding quality a subscriber experiences over time, not
	// just the all-or-nothing service state.
	MeanDeliverableFraction float64
	// Events is the number of link state transitions processed.
	Events int
}

// linkEvent is one scheduled link state flip.
type linkEvent struct {
	at   float64
	link int
}

type eventHeap []linkEvent

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(linkEvent)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Continuous runs an event-driven alternating-renewal simulation: every
// link flips between up and down with exponential sojourn times, and the
// service state (demand satisfiable or not) is re-evaluated at each flip.
// By renewal-reward theory the reported Availability converges, as the
// horizon grows, to the static reliability computed with
// p(e) = MTTR/(MTBF+MTTR) — the cross-check the test suite performs. On
// top of the static engines it reports *dynamics*: how often the stream
// is interrupted and for how long.
func Continuous(g *graph.Graph, dem graph.Demand, cfg ContinuousConfig) (ContinuousReport, error) {
	if g == nil {
		return ContinuousReport{}, fmt.Errorf("sim: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return ContinuousReport{}, err
	}
	m := g.NumEdges()
	if len(cfg.Dynamics) != m {
		return ContinuousReport{}, fmt.Errorf("sim: %d dynamics entries for %d links", len(cfg.Dynamics), m)
	}
	for i, dyn := range cfg.Dynamics {
		if dyn.MTBF <= 0 || dyn.MTTR <= 0 {
			return ContinuousReport{}, fmt.Errorf("sim: link %d needs positive MTBF and MTTR", i)
		}
	}
	if cfg.Horizon <= 0 {
		return ContinuousReport{}, fmt.Errorf("sim: horizon %g must be positive", cfg.Horizon)
	}
	warm := cfg.WarmUp
	if warm <= 0 {
		warm = cfg.Horizon * 0.1
	}
	if warm >= cfg.Horizon {
		return ContinuousReport{}, fmt.Errorf("sim: warm-up %g must be below the horizon %g", warm, cfg.Horizon)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	nw, handles := maxflow.FromGraph(g)
	up := make([]bool, m)
	h := make(eventHeap, 0, m)
	for i := 0; i < m; i++ {
		up[i] = true // start all-up; the warm-up absorbs the bias
		h = append(h, linkEvent{at: rng.ExpFloat64() * cfg.Dynamics[i].MTBF, link: i})
	}
	heap.Init(&h)

	s, t := int32(dem.S), int32(dem.T)
	rate := nw.MaxFlow(s, t, dem.D)
	served := rate >= dem.D

	var rep ContinuousReport
	now := 0.0
	measStart := warm
	upTime := 0.0
	outageTime := 0.0
	rateTime := 0.0 // ∫ min(F, d) dt over the measured window
	outages := 0

	account := func(from, to float64) {
		lo := math.Max(from, measStart)
		if to <= lo {
			return
		}
		if served {
			upTime += to - lo
		} else {
			outageTime += to - lo
		}
		rateTime += float64(rate) * (to - lo)
	}

	for len(h) > 0 {
		ev := heap.Pop(&h).(linkEvent)
		if ev.at >= cfg.Horizon {
			break
		}
		account(now, ev.at)
		now = ev.at
		rep.Events++

		up[ev.link] = !up[ev.link]
		nw.SetEnabled(handles[ev.link], up[ev.link])
		var sojourn float64
		if up[ev.link] {
			sojourn = rng.ExpFloat64() * cfg.Dynamics[ev.link].MTBF
		} else {
			sojourn = rng.ExpFloat64() * cfg.Dynamics[ev.link].MTTR
		}
		heap.Push(&h, linkEvent{at: now + sojourn, link: ev.link})

		rate = nw.MaxFlow(s, t, dem.D)
		nowServed := rate >= dem.D
		if nowServed != served {
			if !nowServed && now >= measStart {
				outages++
			}
			served = nowServed
		}
	}
	account(now, cfg.Horizon)

	measured := cfg.Horizon - measStart
	rep.Availability = upTime / measured
	rep.MeanDeliverableFraction = rateTime / measured / float64(dem.D)
	rep.Interruptions = outages
	if outages > 0 {
		rep.MeanOutage = outageTime / float64(outages)
		rep.MeanTimeBetweenInterruptions = measured / float64(outages)
	} else {
		rep.MeanTimeBetweenInterruptions = math.Inf(1)
	}
	return rep, nil
}

// UniformDynamics builds a Dynamics slice giving every link the same MTBF
// and MTTR.
func UniformDynamics(g *graph.Graph, mtbf, mttr float64) []LinkDynamics {
	d := make([]LinkDynamics, g.NumEdges())
	for i := range d {
		d[i] = LinkDynamics{MTBF: mtbf, MTTR: mttr}
	}
	return d
}
