package sim

import (
	"math"
	"testing"

	"flowrel/internal/graph"
	"flowrel/internal/overlay"
	"flowrel/internal/reliability"
)

func TestRunMatchesExactOnFigure2(t *testing.T) {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	exact, err := reliability.Naive(o.G, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(o.G, dem, Config{Sessions: 60000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tol := 5*rep.StdErr + 1e-9
	if math.Abs(rep.DeliveryRate-exact.Reliability) > tol {
		t.Fatalf("simulated %g vs exact %g (tol %g)", rep.DeliveryRate, exact.Reliability, tol)
	}
	if rep.MeanSubstreams <= 0 || rep.MeanSubstreams > 1 {
		t.Fatalf("mean substreams = %g, want in (0,1] for d=1", rep.MeanSubstreams)
	}
}

func TestRunCollectPaths(t *testing.T) {
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	rep, err := Run(o.G, dem, Config{Sessions: 4000, Seed: 2, CollectPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every delivery path in Figure 4 has exactly 3 hops (s → x → y → t)
	// except those via the y1→y2 detour (4 hops).
	if rep.MeanHops < 3 || rep.MeanHops > 4 {
		t.Fatalf("mean hops = %g, want within [3, 4]", rep.MeanHops)
	}
	if rep.MeanSubstreams <= 0 || rep.MeanSubstreams > 2 {
		t.Fatalf("mean substreams = %g, want in (0,2]", rep.MeanSubstreams)
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	a, err := Run(o.G, dem, Config{Sessions: 5000, Seed: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o.G, dem, Config{Sessions: 5000, Seed: 3, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Delivered != b.Delivered {
		t.Fatalf("not deterministic: %d vs %d delivered", a.Delivered, b.Delivered)
	}
}

func TestRunPartialDelivery(t *testing.T) {
	// Two parallel unit links, d = 2, p = 0.5: delivery rate 0.25, mean
	// substreams = 2·0.25 + 1·0.5 + 0·0.25 = 1.
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, tt, 1, 0.5)
	b.AddEdge(s, tt, 1, 0.5)
	g := b.MustBuild()
	rep, err := Run(g, graph.Demand{S: s, T: tt, D: 2}, Config{Sessions: 80000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.DeliveryRate-0.25) > 0.02 {
		t.Fatalf("delivery rate = %g, want ≈0.25", rep.DeliveryRate)
	}
	if math.Abs(rep.MeanSubstreams-1.0) > 0.02 {
		t.Fatalf("mean substreams = %g, want ≈1", rep.MeanSubstreams)
	}
}

func TestRunErrors(t *testing.T) {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[0])
	if _, err := Run(nil, dem, Config{Sessions: 1}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Run(o.G, graph.Demand{S: 0, T: 0, D: 1}, Config{Sessions: 1}); err == nil {
		t.Fatal("bad demand accepted")
	}
	if _, err := Run(o.G, dem, Config{Sessions: 0}); err == nil {
		t.Fatal("zero sessions accepted")
	}
}
