package assign

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// TestExample1 reproduces Example 1 of the paper: d = 5, three bottleneck
// links with capacities (3, 3, 3) yield exactly the 12 listed assignments.
func TestExample1(t *testing.T) {
	got, err := Enumerate([]int{3, 3, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []Assignment{
		{0, 2, 3}, {0, 3, 2}, {1, 1, 3}, {1, 2, 2}, {1, 3, 1},
		{2, 0, 3}, {2, 1, 2}, {2, 2, 1}, {2, 3, 0},
		{3, 0, 2}, {3, 1, 1}, {3, 2, 0},
	}
	if len(got) != len(want) {
		t.Fatalf("|D| = %d, want %d: %v", len(got), len(want), got)
	}
	// Compare as sets (the paper lists them in lexicographic order too,
	// but don't depend on it for the set check).
	key := func(a Assignment) string { return a.String() }
	gotKeys := make([]string, len(got))
	wantKeys := make([]string, len(want))
	for i := range got {
		gotKeys[i] = key(got[i])
		wantKeys[i] = key(want[i])
	}
	sort.Strings(gotKeys)
	sort.Strings(wantKeys)
	if !reflect.DeepEqual(gotKeys, wantKeys) {
		t.Fatalf("got %v\nwant %v", gotKeys, wantKeys)
	}
	if Count([]int{3, 3, 3}, 5) != 12 {
		t.Fatalf("Count = %d, want 12", Count([]int{3, 3, 3}, 5))
	}
}

func TestEnumerateLexicographic(t *testing.T) {
	got, err := Enumerate([]int{3, 3, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(got); i++ {
		if !lexLess(got[i-1], got[i]) {
			t.Fatalf("not lexicographic at %d: %v ≥ %v", i, got[i-1], got[i])
		}
	}
}

func lexLess(a, b Assignment) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestEnumerateEdgeCases(t *testing.T) {
	// Single link.
	got, err := Enumerate([]int{2}, 2)
	if err != nil || len(got) != 1 || got[0][0] != 2 {
		t.Fatalf("single link: %v %v", got, err)
	}
	// Infeasible: total capacity < d.
	got, err = Enumerate([]int{1, 1}, 3)
	if err != nil || len(got) != 0 {
		t.Fatalf("infeasible: %v %v", got, err)
	}
	// d = 0: one empty assignment.
	got, err = Enumerate([]int{1, 1}, 0)
	if err != nil || len(got) != 1 || got[0].Sum() != 0 {
		t.Fatalf("d=0: %v %v", got, err)
	}
	// Negative demand.
	if _, err := Enumerate([]int{1}, -1); err == nil {
		t.Fatal("negative demand accepted")
	}
	// Example 3 of the paper: d=2, two links of capacity ≥ 2.
	got, err = Enumerate([]int{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"(2, 0)": true, "(1, 1)": true, "(0, 2)": true}
	if len(got) != 3 {
		t.Fatalf("example 3: %v", got)
	}
	for _, a := range got {
		if !want[a.String()] {
			t.Fatalf("unexpected assignment %v", a)
		}
	}
}

func TestTooManyAssignments(t *testing.T) {
	// caps all d with large k ⇒ |𝒟| = C(d+k-1, k-1) grows fast.
	_, err := Enumerate([]int{9, 9, 9, 9, 9, 9}, 9)
	if err == nil {
		t.Fatal("expected ErrTooManyAssignments")
	}
	if _, ok := err.(*ErrTooManyAssignments); !ok {
		t.Fatalf("error type %T", err)
	}
}

// TestExample4 reproduces Example 4: with k = 3, subset {e1, e3} supports
// (2,0,1) and (3,0,4) but not (1,1,0).
func TestExample4(t *testing.T) {
	e13 := uint64(0b101)
	if !(Assignment{2, 0, 1}).SupportedBy(e13) {
		t.Error("(2,0,1) should be supported by {e1,e3}")
	}
	if !(Assignment{3, 0, 4}).SupportedBy(e13) {
		t.Error("(3,0,4) should be supported by {e1,e3}")
	}
	if (Assignment{1, 1, 0}).SupportedBy(e13) {
		t.Error("(1,1,0) should not be supported by {e1,e3}")
	}
	// Full set supports everything; empty set supports nothing positive.
	if !(Assignment{1, 1, 1}).SupportedBy(0b111) {
		t.Error("full set must support all")
	}
	if (Assignment{1, 0, 0}).SupportedBy(0) {
		t.Error("empty set supports no positive assignment")
	}
	if !(Assignment{0, 0, 0}).SupportedBy(0) {
		t.Error("empty set supports the zero assignment")
	}
}

// TestExample5 reproduces Example 5: classification of
// D = {(1,2,0),(2,1,0),(1,1,1),(0,2,1),(2,0,1)} by supporting subsets.
func TestExample5(t *testing.T) {
	ds := []Assignment{{1, 2, 0}, {2, 1, 0}, {1, 1, 1}, {0, 2, 1}, {2, 0, 1}}
	s := &Set{K: 3, D: 3, Assignments: ds, supports: make([]uint64, len(ds))}
	for i, a := range ds {
		s.supports[i] = a.SupportMask()
	}
	classes := s.Classify()
	// Helper: mask of assignment indices.
	idx := func(is ...int) uint64 {
		var m uint64
		for _, i := range is {
			m |= 1 << uint(i)
		}
		return m
	}
	cases := []struct {
		eMask uint64
		want  uint64
	}{
		{0b111, idx(0, 1, 2, 3, 4)}, // {e1,e2,e3} supports all of D
		{0b011, idx(0, 1)},          // {e1,e2}: (1,2,0), (2,1,0)
		{0b110, idx(3)},             // {e2,e3}: (0,2,1)
		{0b101, idx(4)},             // {e1,e3}: (2,0,1)
		{0b001, 0},
		{0b010, 0},
		{0b100, 0},
		{0b000, 0},
	}
	for _, c := range cases {
		if got := classes[c.eMask]; got != c.want {
			t.Errorf("D_{%03b} = %b, want %b", c.eMask, got, c.want)
		}
	}
}

func TestSetBasics(t *testing.T) {
	s, err := NewSet([]int{2, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.K != 2 || s.D != 2 {
		t.Fatalf("set = %+v", s)
	}
	// Full mask supports all three; singleton masks support only the
	// concentrated assignments.
	if got := s.SupportedMask(0b11); got != 0b111 {
		t.Fatalf("full = %b", got)
	}
	onlyFirst := s.SupportedMask(0b01)
	if c := popcount(onlyFirst); c != 1 {
		t.Fatalf("D_{e1} size = %d, want 1", c)
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestAssignmentString(t *testing.T) {
	if got := (Assignment{0, 2, 3}).String(); got != "(0, 2, 3)" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Enumerate and Count agree, every assignment sums to d, respects
// caps, and assignments are distinct.
func TestQuickEnumerateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		d := rng.Intn(5)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = rng.Intn(4)
		}
		n := Count(caps, d)
		as, err := Enumerate(caps, d)
		if err != nil {
			_, tooMany := err.(*ErrTooManyAssignments)
			return tooMany && n > MaxAssignments
		}
		if len(as) != n {
			return false
		}
		seen := map[string]bool{}
		for _, a := range as {
			if a.Sum() != d {
				return false
			}
			for i, v := range a {
				if v < 0 || v > caps[i] || v > d {
					return false
				}
			}
			if seen[a.String()] {
				return false
			}
			seen[a.String()] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: classes are monotone (E”⊆F” ⇒ 𝒟_{E”} ⊆ 𝒟_{F”}), the full
// set supports everything, and each class contains exactly the assignments
// whose support is inside E”.
func TestQuickClassifyInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(3)
		d := 1 + rng.Intn(4)
		caps := make([]int, k)
		for i := range caps {
			caps[i] = 1 + rng.Intn(3)
		}
		s, err := NewSet(caps, d)
		if err != nil {
			return true // size guard hit; fine
		}
		classes := s.Classify()
		full := uint64(1)<<uint(k) - 1
		if classes[full] != uint64(1)<<uint(s.Len())-1 {
			return false
		}
		for e := uint64(0); e <= full; e++ {
			for f2 := uint64(0); f2 <= full; f2++ {
				if e&^f2 == 0 && classes[e]&^classes[f2] != 0 {
					return false
				}
			}
			for i, a := range s.Assignments {
				want := a.SupportMask()&^e == 0
				got := classes[e]&(1<<uint(i)) != 0
				if want != got {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
