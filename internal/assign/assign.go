// Package assign enumerates and classifies assignments of sub-streams to
// bottleneck links (§III-B and §IV-A of the paper).
//
// Given bottleneck links e₁,…,e_k and demand d, an assignment is a k-tuple
// (a₁,…,a_k) with Σaᵢ = d and 0 ≤ aᵢ ≤ min(c(eᵢ), d): sub-stream loads on
// the bottleneck links. A subset E” of the bottleneck links *supports* an
// assignment iff every positively loaded link belongs to E” (Definition 1).
package assign

import "fmt"

// MaxAssignments bounds |𝒟| so that realized-assignment sets fit a uint64
// mask with room to spare. The paper assumes d and k constant, making |𝒟|
// ≤ d^k a constant; this is where that assumption becomes a hard limit.
const MaxAssignments = 62

// Assignment is one distribution (a₁,…,a_k) of the d sub-streams over the
// k bottleneck links.
type Assignment []int

// String renders the assignment as "(a1, a2, ...)" like the paper.
func (a Assignment) String() string {
	s := "("
	for i, v := range a {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprint(v)
	}
	return s + ")"
}

// Sum returns Σaᵢ.
func (a Assignment) Sum() int {
	s := 0
	for _, v := range a {
		s += v
	}
	return s
}

// SupportMask returns the bit mask over the k links of {i : aᵢ > 0}.
func (a Assignment) SupportMask() uint64 {
	var m uint64
	for i, v := range a {
		if v > 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// SupportedBy reports whether the link subset eMask supports a
// (Definition 1): aᵢ > 0 implies link i ∈ eMask.
func (a Assignment) SupportedBy(eMask uint64) bool {
	return a.SupportMask()&^eMask == 0
}

// ErrTooManyAssignments is returned when |𝒟| would exceed MaxAssignments.
type ErrTooManyAssignments struct {
	N int
}

func (e *ErrTooManyAssignments) Error() string {
	return fmt.Sprintf("assign: %d assignments exceed the supported maximum %d (d and k must be small constants)", e.N, MaxAssignments)
}

// Enumerate returns 𝒟: every assignment of d unit sub-streams to k links
// with per-link capacity caps[i] (loads are additionally capped at d).
// Assignments are produced in lexicographic order. It returns
// ErrTooManyAssignments if |𝒟| > MaxAssignments.
func Enumerate(caps []int, d int) ([]Assignment, error) {
	if d < 0 {
		return nil, fmt.Errorf("assign: negative demand %d", d)
	}
	if n := Count(caps, d); n > MaxAssignments {
		return nil, &ErrTooManyAssignments{N: n}
	}
	k := len(caps)
	var out []Assignment
	cur := make(Assignment, k)
	var rec func(i, left int)
	rec = func(i, left int) {
		if i == k {
			if left == 0 {
				out = append(out, append(Assignment(nil), cur...))
			}
			return
		}
		hi := caps[i]
		if hi > left {
			hi = left
		}
		// Remaining links must be able to absorb what we leave behind.
		rest := 0
		for j := i + 1; j < k; j++ {
			c := caps[j]
			if c > d {
				c = d
			}
			rest += c
		}
		lo := left - rest
		if lo < 0 {
			lo = 0
		}
		for v := lo; v <= hi; v++ {
			cur[i] = v
			rec(i+1, left-v)
		}
		cur[i] = 0
	}
	rec(0, d)
	return out, nil
}

// Count returns |𝒟| via dynamic programming, without materializing the
// assignments; used for the capacity check and as a test oracle.
func Count(caps []int, d int) int {
	if d < 0 {
		return 0
	}
	ways := make([]int, d+1)
	ways[0] = 1
	for _, c := range caps {
		if c > d {
			c = d
		}
		next := make([]int, d+1)
		for have := 0; have <= d; have++ {
			if ways[have] == 0 {
				continue
			}
			for v := 0; v <= c && have+v <= d; v++ {
				next[have+v] += ways[have]
			}
		}
		ways = next
	}
	return ways[d]
}

// Set is an enumerated assignment family 𝒟 with the derived support
// structure used by the ACCUMULATION procedure.
type Set struct {
	K           int          // number of bottleneck links
	D           int          // demand
	Assignments []Assignment // 𝒟, lexicographic
	supports    []uint64     // SupportMask per assignment
}

// NewSet enumerates 𝒟 for the given bottleneck capacities and demand.
func NewSet(caps []int, d int) (*Set, error) {
	as, err := Enumerate(caps, d)
	if err != nil {
		return nil, err
	}
	s := &Set{K: len(caps), D: d, Assignments: as, supports: make([]uint64, len(as))}
	for i, a := range as {
		s.supports[i] = a.SupportMask()
	}
	return s, nil
}

// Len returns |𝒟|.
func (s *Set) Len() int { return len(s.Assignments) }

// SupportedMask returns the mask over assignment indices of the class
// 𝒟_{E”}: assignments supported by the bottleneck-link subset eMask.
func (s *Set) SupportedMask(eMask uint64) uint64 {
	var m uint64
	for i, sup := range s.supports {
		if sup&^eMask == 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// Classify returns, for each of the 2^k bottleneck-link subsets E”
// (indexed by mask), the class 𝒟_{E”} as a mask over assignment indices
// (Example 5 of the paper).
func (s *Set) Classify() []uint64 {
	out := make([]uint64, 1<<uint(s.K))
	for e := range out {
		out[e] = s.SupportedMask(uint64(e))
	}
	return out
}
