package debughttp

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path string) string {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestNewMuxServesDebugTree checks both endpoint families answer, and —
// the point of the package — that two muxes coexist in one process
// without fighting over global registrations.
func TestNewMuxServesDebugTree(t *testing.T) {
	a := httptest.NewServer(NewMux())
	defer a.Close()
	b := httptest.NewServer(NewMux()) // would panic at registration time on a shared mux
	defer b.Close()

	for _, srv := range []*httptest.Server{a, b} {
		if body := get(t, srv, "/debug/vars"); !strings.Contains(body, "memstats") {
			t.Error("/debug/vars missing memstats")
		}
		if body := get(t, srv, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
			t.Error("/debug/pprof/ index missing goroutine profile")
		}
	}
}

// TestNewMuxDoesNotServeBeyondDebug pins the mux to the debug tree: no
// catch-all root handler sneaks in.
func TestNewMuxDoesNotServeBeyondDebug(t *testing.T) {
	srv := httptest.NewServer(NewMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /: status %d, want 404", resp.StatusCode)
	}
}
