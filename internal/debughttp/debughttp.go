// Package debughttp builds the process debug endpoints — /debug/vars
// (expvar) and /debug/pprof/* — on a private *http.ServeMux instead of
// http.DefaultServeMux.
//
// The net/http/pprof import registers its handlers on the default mux as
// a side effect, which is a process-wide singleton: two servers in one
// process (relcalc -serve and relcalcd's /debug/ tree, or two test
// fixtures in one package) would fight over the same registrations, and
// any stray http.ListenAndServe in a dependency would silently expose
// the profiles. Every binary that wants the debug tree mounts NewMux()
// explicitly instead.
package debughttp

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// NewMux returns a fresh mux serving the standard debug tree:
//
//	/debug/vars      expvar JSON (including the flowrel.stats and
//	                 flowrel.plancache trees once PublishExpvar ran)
//	/debug/pprof/    profile index, plus cmdline/profile/symbol/trace
//
// Each call returns an independent mux, so multiple servers in one
// process never share handler registrations.
func NewMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
