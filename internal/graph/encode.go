package graph

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Text format
//
// The text codec reads and writes a line-oriented description:
//
//	# comment
//	node s            # optional: declare a named node
//	node t
//	edge s t 3 0.1    # directed link s→t, capacity 3, failure prob 0.1
//	edge 0 1 2 0.05   # endpoints may also be bare node indices
//	duplex a b 2 0.1  # sugar: two anti-parallel links a→b and b→a
//	demand s t 2      # optional flow demand
//
// Nodes referenced by name are created on first use; nodes referenced by
// index must already exist.

// File bundles a graph and an optional demand parsed from one description.
type File struct {
	Graph  *Graph
	Demand *Demand // nil if the description declares none
}

// ParseText reads the text format from r.
func ParseText(r io.Reader) (*File, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var demand *Demand
	lineNo := 0

	nodeOf := func(tok string) (NodeID, error) {
		if id, ok := b.Node(tok); ok {
			return id, nil
		}
		if i, err := strconv.Atoi(tok); err == nil {
			if i < 0 || i >= len(b.g.adj) {
				return 0, fmt.Errorf("node index %d out of range [0,%d)", i, len(b.g.adj))
			}
			return NodeID(i), nil
		}
		return b.AddNamedNode(tok), nil
	}

	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		fail := func(format string, args ...any) error {
			return fmt.Errorf("graph: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch f[0] {
		case "node":
			if len(f) != 2 {
				return nil, fail("node wants 1 argument, got %d", len(f)-1)
			}
			if _, ok := b.Node(f[1]); ok {
				return nil, fail("duplicate node %q", f[1])
			}
			b.AddNamedNode(f[1])
		case "edge", "duplex":
			if len(f) != 5 {
				return nil, fail("%s wants 4 arguments (u v cap pfail), got %d", f[0], len(f)-1)
			}
			u, err := nodeOf(f[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			v, err := nodeOf(f[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			c, err := strconv.Atoi(f[3])
			if err != nil {
				return nil, fail("bad capacity %q", f[3])
			}
			p, err := strconv.ParseFloat(f[4], 64)
			if err != nil {
				return nil, fail("bad failure probability %q", f[4])
			}
			b.AddEdge(u, v, c, p)
			if f[0] == "duplex" {
				b.AddEdge(v, u, c, p)
			}
		case "demand":
			if len(f) != 4 {
				return nil, fail("demand wants 3 arguments (s t d), got %d", len(f)-1)
			}
			s, err := nodeOf(f[1])
			if err != nil {
				return nil, fail("%v", err)
			}
			t, err := nodeOf(f[2])
			if err != nil {
				return nil, fail("%v", err)
			}
			d, err := strconv.Atoi(f[3])
			if err != nil {
				return nil, fail("bad bit-rate %q", f[3])
			}
			if demand != nil {
				return nil, fail("duplicate demand")
			}
			demand = &Demand{S: s, T: t, D: d}
		default:
			return nil, fail("unknown directive %q", f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading description: %w", err)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if demand != nil {
		if err := demand.Validate(g); err != nil {
			return nil, err
		}
	}
	return &File{Graph: g, Demand: demand}, nil
}

// ParseTextString is ParseText on a string.
func ParseTextString(s string) (*File, error) {
	return ParseText(strings.NewReader(s))
}

// WriteText writes the file in the text format.
func (f *File) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	g := f.Graph
	name := func(n NodeID) string {
		if g.names[n] != "" {
			return g.names[n]
		}
		return strconv.Itoa(int(n))
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.names[i] != "" {
			fmt.Fprintf(bw, "node %s\n", g.names[i])
		} else {
			// Unnamed nodes get a synthetic unique name so indices survive
			// a round trip even when some nodes are isolated.
			fmt.Fprintf(bw, "node n%d\n", i)
		}
	}
	for _, e := range g.edges {
		fmt.Fprintf(bw, "edge %s %s %d %s\n", name(e.U), name(e.V), e.Cap, strconv.FormatFloat(e.PFail, 'g', -1, 64))
	}
	if f.Demand != nil {
		fmt.Fprintf(bw, "demand %s %s %d\n", name(f.Demand.S), name(f.Demand.T), f.Demand.D)
	}
	return bw.Flush()
}

// JSON codec

type jsonEdge struct {
	U     string  `json:"u"`
	V     string  `json:"v"`
	Cap   int     `json:"cap"`
	PFail float64 `json:"pfail"`
}

type jsonDemand struct {
	S string `json:"s"`
	T string `json:"t"`
	D int    `json:"d"`
}

type jsonFile struct {
	Nodes  []string    `json:"nodes"`
	Edges  []jsonEdge  `json:"edges"`
	Demand *jsonDemand `json:"demand,omitempty"`
}

// MarshalJSON encodes the file as JSON.
func (f *File) MarshalJSON() ([]byte, error) {
	g := f.Graph
	jf := jsonFile{Nodes: make([]string, g.NumNodes())}
	name := func(n NodeID) string {
		if g.names[n] != "" {
			return g.names[n]
		}
		return "n" + strconv.Itoa(int(n))
	}
	for i := range jf.Nodes {
		jf.Nodes[i] = name(NodeID(i))
	}
	for _, e := range g.edges {
		jf.Edges = append(jf.Edges, jsonEdge{U: name(e.U), V: name(e.V), Cap: e.Cap, PFail: e.PFail})
	}
	if f.Demand != nil {
		jf.Demand = &jsonDemand{S: name(f.Demand.S), T: name(f.Demand.T), D: f.Demand.D}
	}
	return json.Marshal(jf)
}

// UnmarshalJSON decodes the file from JSON.
func (f *File) UnmarshalJSON(data []byte) error {
	var jf jsonFile
	if err := json.Unmarshal(data, &jf); err != nil {
		return err
	}
	b := NewBuilder()
	idx := make(map[string]NodeID, len(jf.Nodes))
	for _, nm := range jf.Nodes {
		if _, dup := idx[nm]; dup {
			return fmt.Errorf("graph: duplicate node name %q", nm)
		}
		idx[nm] = b.AddNamedNode(nm)
	}
	lookup := func(nm string) (NodeID, error) {
		id, ok := idx[nm]
		if !ok {
			return 0, fmt.Errorf("graph: unknown node %q", nm)
		}
		return id, nil
	}
	for _, je := range jf.Edges {
		u, err := lookup(je.U)
		if err != nil {
			return err
		}
		v, err := lookup(je.V)
		if err != nil {
			return err
		}
		b.AddEdge(u, v, je.Cap, je.PFail)
	}
	g, err := b.Build()
	if err != nil {
		return err
	}
	f.Graph = g
	f.Demand = nil
	if jf.Demand != nil {
		s, err := lookup(jf.Demand.S)
		if err != nil {
			return err
		}
		t, err := lookup(jf.Demand.T)
		if err != nil {
			return err
		}
		f.Demand = &Demand{S: s, T: t, D: jf.Demand.D}
		if err := f.Demand.Validate(g); err != nil {
			return err
		}
	}
	return nil
}

// SortedEdgeKey returns a canonical "u-v" key with endpoints ordered; it is
// a convenience for deterministic test output.
func SortedEdgeKey(e Edge) string {
	u, v := int(e.U), int(e.V)
	if u > v {
		u, v = v, u
	}
	return fmt.Sprintf("%d-%d", u, v)
}

// EdgeIDs returns the IDs of the given edges, sorted.
func EdgeIDs(edges []Edge) []EdgeID {
	out := make([]EdgeID, len(edges))
	for i, e := range edges {
		out[i] = e.ID
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
