package graph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flowrel/internal/testutil"
)

// TestParseDOTRoundTrip renders every shipped network to DOT and parses
// it back: structure, attributes, and demand endpoints must survive.
func TestParseDOTRoundTrip(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.g"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata networks: %v", err)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := ParseTextString(string(data))
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := f.Graph.WriteDOT(&sb, DOTOptions{Demand: f.Demand}); err != nil {
			t.Fatal(err)
		}
		f2, err := ParseDOTString(sb.String())
		if err != nil {
			t.Fatalf("%s: parsing emitted DOT: %v\n%s", path, err, sb.String())
		}
		if f2.Graph.NumNodes() != f.Graph.NumNodes() || f2.Graph.NumEdges() != f.Graph.NumEdges() {
			t.Fatalf("%s: shape changed: %v vs %v", path, f.Graph, f2.Graph)
		}
		for i, e := range f.Graph.Edges() {
			e2 := f2.Graph.Edge(EdgeID(i))
			if e.U != e2.U || e.V != e2.V || e.Cap != e2.Cap {
				t.Fatalf("%s: link %d changed: %+v vs %+v", path, i, e, e2)
			}
			// WriteDOT prints pfail at 3 significant digits.
			if !testutil.AlmostEqual(e.PFail, e2.PFail, 1e-3) {
				t.Fatalf("%s: link %d pfail %g vs %g", path, i, e.PFail, e2.PFail)
			}
		}
		if f.Demand != nil {
			if f2.Demand == nil {
				t.Fatalf("%s: demand endpoints lost", path)
			}
			if f2.Demand.S != f.Demand.S || f2.Demand.T != f.Demand.T {
				t.Fatalf("%s: demand endpoints moved: %+v vs %+v", path, f.Demand, f2.Demand)
			}
		}
	}
}

func TestParseDOTErrors(t *testing.T) {
	cases := map[string]string{
		"not dot":                 "graph g { a; }",
		"unterminated string":     `digraph g { "a`,
		"missing brace":           "digraph g { a;",
		"trailing tokens":         "digraph g { } extra",
		"edge without label":      "digraph g { a -> b; }",
		"malformed label":         `digraph g { a -> b [label="nope"]; }`,
		"bad capacity":            `digraph g { a -> b [label="x, 0.1"]; }`,
		"bad probability":         `digraph g { a -> b [label="1, x"]; }`,
		"capacity overflow":       `digraph g { a -> b [label="99999999999999999999, 0.1"]; }`,
		"probability above one":   `digraph g { a -> b [label="1, 1.5"]; }`,
		"duplicate node":          "digraph g { a; a; }",
		"two sources":             `digraph g { a [xlabel="source"]; b [xlabel="source"]; }`,
		"attr without value":      "digraph g { a [x]; }",
	}
	for name, src := range cases {
		if _, err := ParseDOTString(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}

	// One-sided demand marks degrade to no demand rather than an error.
	f, err := ParseDOTString(`digraph g { a [xlabel="source"]; }`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Demand != nil {
		t.Fatal("source-only mark produced a demand")
	}
}

func TestParseDOTDemand(t *testing.T) {
	f, err := ParseDOTString(`digraph g {
		s [style=filled, xlabel="source"];
		m;
		t [xlabel="sink"];
		s -> m [label="2, 0.1"];
		m -> t [label="1, 0.25", color=red, penwidth=2];
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Demand == nil || f.Demand.D != 1 {
		t.Fatalf("demand = %+v, want volume-1 demand", f.Demand)
	}
	s, _ := f.Graph.NodeByName("s")
	tt, _ := f.Graph.NodeByName("t")
	if f.Demand.S != s || f.Demand.T != tt {
		t.Fatalf("demand endpoints %+v, want s=%d t=%d", f.Demand, s, tt)
	}
	if f.Graph.NumEdges() != 2 || !testutil.AlmostEqual(f.Graph.Edge(1).PFail, 0.25, 0) {
		t.Fatalf("edges mis-parsed: %v", f.Graph)
	}
}
