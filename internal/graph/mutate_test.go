package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// rebuildMutated is the reference implementation of Mutation.Apply: a
// full Builder rebuild. The fast paths (WithCapacity, WithEdgeAdded,
// WithEdgeRemoved) must produce structurally identical graphs.
func rebuildMutated(t *testing.T, g *Graph, m Mutation) (*Graph, []EdgeID) {
	t.Helper()
	remap := make([]EdgeID, g.NumEdges())
	b := NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNamedNode(g.NodeName(NodeID(i)))
	}
	for _, e := range g.Edges() {
		if m.Kind == MutateRemove && e.ID == m.Link {
			remap[e.ID] = -1
			continue
		}
		c := e.Cap
		if m.Kind == MutateCapacity && e.ID == m.Link {
			c = m.Cap
		}
		remap[e.ID] = b.AddEdge(e.U, e.V, c, e.PFail)
	}
	if m.Kind == MutateAdd {
		b.AddEdge(m.U, m.V, m.Cap, m.PFail)
	}
	g2, err := b.Build()
	if err != nil {
		t.Fatalf("reference rebuild of %v: %v", m, err)
	}
	return g2, remap
}

func sameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("nodes: got %d, want %d", got.NumNodes(), want.NumNodes())
	}
	if !reflect.DeepEqual(got.Edges(), want.Edges()) {
		t.Fatalf("edges: got %v, want %v", got.Edges(), want.Edges())
	}
	for n := 0; n < got.NumNodes(); n++ {
		if got.NodeName(NodeID(n)) != want.NodeName(NodeID(n)) {
			t.Fatalf("node %d name: got %q, want %q", n, got.NodeName(NodeID(n)), want.NodeName(NodeID(n)))
		}
		gi, wi := got.Incident(NodeID(n)), want.Incident(NodeID(n))
		if len(gi) == 0 && len(wi) == 0 {
			continue
		}
		if !reflect.DeepEqual(gi, wi) {
			t.Fatalf("node %d incidence: got %v, want %v", n, gi, wi)
		}
	}
}

// TestMutationApplyMatchesRebuild pins every Apply fast path to the
// Builder-rebuild reference on a randomized mutation stream.
func TestMutationApplyMatchesRebuild(t *testing.T) {
	b := NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	c := b.AddNamedNode("c")
	d := b.AddNode()
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, 2, 0.1)
	b.AddEdge(s, c, 1, 0.2)
	b.AddEdge(a, d, 1, 0.1)
	b.AddEdge(c, d, 2, 0.3)
	b.AddEdge(a, c, 1, 0.05)
	b.AddEdge(d, tt, 3, 0.1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		var m Mutation
		switch rng.Intn(3) {
		case 0:
			m = Mutation{Kind: MutateCapacity, Link: EdgeID(rng.Intn(g.NumEdges())), Cap: rng.Intn(4)}
		case 1:
			u := NodeID(rng.Intn(g.NumNodes()))
			v := NodeID(rng.Intn(g.NumNodes()))
			if u == v {
				continue
			}
			m = Mutation{Kind: MutateAdd, U: u, V: v, Cap: 1 + rng.Intn(3), PFail: rng.Float64() * 0.9}
		default:
			if g.NumEdges() <= 4 {
				continue
			}
			m = Mutation{Kind: MutateRemove, Link: EdgeID(rng.Intn(g.NumEdges()))}
		}
		got, remap, err := m.Apply(g)
		if err != nil {
			t.Fatalf("step %d: Apply(%v): %v", i, m, err)
		}
		want, wantRemap := rebuildMutated(t, g, m)
		sameGraph(t, got, want)
		if !reflect.DeepEqual(remap, wantRemap) {
			t.Fatalf("step %d: remap for %v: got %v, want %v", i, m, remap, wantRemap)
		}
		g = got
	}
}

// TestMutationApplyErrors checks that fast-path validation still rejects
// what the Builder would have rejected.
func TestMutationApplyErrors(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode()
	v := b.AddNode()
	b.AddEdge(u, v, 1, 0.1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	bad := []Mutation{
		{Kind: MutateCapacity, Link: -1, Cap: 1},
		{Kind: MutateCapacity, Link: 7, Cap: 1},
		{Kind: MutateCapacity, Link: 0, Cap: -1},
		{Kind: MutateAdd, U: u, V: u, Cap: 1, PFail: 0.1},
		{Kind: MutateAdd, U: u, V: 9, Cap: 1, PFail: 0.1},
		{Kind: MutateAdd, U: u, V: v, Cap: -1, PFail: 0.1},
		{Kind: MutateAdd, U: u, V: v, Cap: 1, PFail: 1.0},
		{Kind: MutateAdd, U: u, V: v, Cap: 1, PFail: -0.5},
		{Kind: MutateRemove, Link: -2},
		{Kind: MutateRemove, Link: 1},
		{Kind: MutationKind(9)},
	}
	for _, m := range bad {
		if _, _, err := m.Apply(g); err == nil {
			t.Errorf("Apply(%v) succeeded, want error", m)
		}
	}
	if _, _, err := (Mutation{Kind: MutateCapacity, Link: 0, Cap: 2}).Apply(nil); err == nil {
		t.Error("Apply on nil graph succeeded, want error")
	}
}

// TestMutationApplySharesSafely verifies the mutated graph does not
// alias mutable state with its parent: changing the child must leave
// the parent untouched.
func TestMutationApplySharesSafely(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode()
	v := b.AddNode()
	w := b.AddNode()
	b.AddEdge(u, v, 1, 0.1)
	b.AddEdge(v, w, 2, 0.2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Clone()

	// An add followed by another add onto the child must not grow the
	// parent's adjacency rows through a shared backing array.
	c1, _, err := (Mutation{Kind: MutateAdd, U: u, V: w, Cap: 1, PFail: 0.1}).Apply(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := (Mutation{Kind: MutateAdd, U: u, V: v, Cap: 1, PFail: 0.1}).Apply(c1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := (Mutation{Kind: MutateRemove, Link: 0}).Apply(c1); err != nil {
		t.Fatal(err)
	}
	sameGraph(t, g, snap)
}
