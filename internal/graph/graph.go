// Package graph defines the capacitated probabilistic multigraph model used
// throughout flowrel.
//
// A Graph is a directed multigraph: each link e = (U → V) carries a
// capacity c(e) ∈ ℕ (the number of unit-bit-rate sub-streams it can
// transport from U to V) and an independent failure probability
// p(e) ∈ [0, 1). This matches the model of Fujita (IPDPSW 2017): "each
// link e can carry a stream of bit rate c(e) while it is out of use with
// probability p(e)" — with delivery directed from the media source toward
// the subscriber, as in P2P streaming overlays. Directedness is also what
// makes the paper's bottleneck decomposition exact: every unit of an s→t
// flow crosses a bottleneck link set in the forward direction, so the
// per-link loads are the non-negative assignments of §III-B. A full-duplex
// connection is modelled as two anti-parallel links with independent
// failures. Parallel links and arbitrary node labels are supported.
package graph

import (
	"errors"
	"fmt"

	"flowrel/internal/bitset"
)

// NodeID identifies a node; node IDs are dense indices [0, NumNodes).
type NodeID int32

// EdgeID identifies a link; edge IDs are dense indices [0, NumEdges).
type EdgeID int32

// Edge is one directed link U → V of the network.
type Edge struct {
	ID    EdgeID
	U, V  NodeID  // tail and head: the link carries flow from U to V
	Cap   int     // capacity in sub-stream units, ≥ 0
	PFail float64 // independent failure probability, in [0, 1)
}

// Other returns the endpoint of e that is not n. It panics if n is not an
// endpoint of e.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %d (%d-%d)", n, e.ID, e.U, e.V))
}

// Graph is an immutable-after-build directed capacitated multigraph.
// Build one with a Builder; the zero value is an empty graph.
type Graph struct {
	edges []Edge
	adj   [][]EdgeID // incident (in- and out-) edge lists per node
	names []string   // optional node names ("" if unnamed)
}

// Builder incrementally constructs a Graph.
type Builder struct {
	g       Graph
	nameIdx map[string]NodeID
	err     error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{nameIdx: make(map[string]NodeID)}
}

// AddNode appends a new unnamed node and returns its ID.
func (b *Builder) AddNode() NodeID {
	return b.AddNamedNode("")
}

// AddNamedNode appends a new node with the given name and returns its ID.
// Non-empty names must be unique; a duplicate records an error surfaced by
// Build.
func (b *Builder) AddNamedNode(name string) NodeID {
	id := NodeID(len(b.g.adj))
	b.g.adj = append(b.g.adj, nil)
	b.g.names = append(b.g.names, name)
	if name != "" {
		if _, dup := b.nameIdx[name]; dup && b.err == nil {
			b.err = fmt.Errorf("graph: duplicate node name %q", name)
		}
		b.nameIdx[name] = id
	}
	return id
}

// AddNodes appends n unnamed nodes and returns the ID of the first.
func (b *Builder) AddNodes(n int) NodeID {
	first := NodeID(len(b.g.adj))
	for i := 0; i < n; i++ {
		b.AddNode()
	}
	return first
}

// Node returns the ID of the node with the given name.
func (b *Builder) Node(name string) (NodeID, bool) {
	id, ok := b.nameIdx[name]
	return id, ok
}

// AddEdge appends a directed link u → v with the given capacity and
// failure probability and returns its ID. Invalid arguments record an
// error surfaced by Build.
func (b *Builder) AddEdge(u, v NodeID, cap int, pFail float64) EdgeID {
	id := EdgeID(len(b.g.edges))
	if u < 0 || int(u) >= len(b.g.adj) || v < 0 || int(v) >= len(b.g.adj) {
		if b.err == nil {
			b.err = fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range [0,%d)", id, u, v, len(b.g.adj))
		}
		return id
	}
	if b.err == nil {
		switch {
		case u == v:
			b.err = fmt.Errorf("graph: edge %d is a self-loop at node %d", id, u)
		case cap < 0:
			b.err = fmt.Errorf("graph: edge %d has negative capacity %d", id, cap)
		case pFail < 0 || pFail >= 1:
			b.err = fmt.Errorf("graph: edge %d has failure probability %g outside [0,1)", id, pFail)
		}
	}
	b.g.edges = append(b.g.edges, Edge{ID: id, U: u, V: v, Cap: cap, PFail: pFail})
	b.g.adj[u] = append(b.g.adj[u], id)
	b.g.adj[v] = append(b.g.adj[v], id)
	return id
}

// Build returns a deep copy of the graph built so far, or the first
// construction error. The Builder remains usable afterwards; graphs
// returned earlier are unaffected by later additions.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.g.Clone(), nil
}

// MustBuild is Build that panics on error; for tests and literals.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of links.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the link with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns all links. The returned slice must not be modified.
func (g *Graph) Edges() []Edge { return g.edges }

// Incident returns the IDs of links incident to n, both incoming and
// outgoing. The returned slice must not be modified.
func (g *Graph) Incident(n NodeID) []EdgeID { return g.adj[n] }

// Out returns the IDs of links leaving n (n is the tail).
func (g *Graph) Out(n NodeID) []EdgeID {
	var out []EdgeID
	for _, eid := range g.adj[n] {
		if g.edges[eid].U == n {
			out = append(out, eid)
		}
	}
	return out
}

// In returns the IDs of links entering n (n is the head).
func (g *Graph) In(n NodeID) []EdgeID {
	var in []EdgeID
	for _, eid := range g.adj[n] {
		if g.edges[eid].V == n {
			in = append(in, eid)
		}
	}
	return in
}

// NodeName returns the name of node n ("" if unnamed).
func (g *Graph) NodeName(n NodeID) string { return g.names[n] }

// NodeByName returns the node with the given non-empty name.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	if name == "" {
		return 0, false
	}
	for i, nm := range g.names {
		if nm == name {
			return NodeID(i), true
		}
	}
	return 0, false
}

// TotalCapacity returns the sum of all link capacities.
func (g *Graph) TotalCapacity() int {
	tot := 0
	for _, e := range g.edges {
		tot += e.Cap
	}
	return tot
}

// ErrNodeOutOfRange reports a node ID outside [0, NumNodes).
var ErrNodeOutOfRange = errors.New("graph: node out of range")

// CheckNode validates that n is a node of g.
func (g *Graph) CheckNode(n NodeID) error {
	if n < 0 || int(n) >= len(g.adj) {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrNodeOutOfRange, n, len(g.adj))
	}
	return nil
}

// Reaches reports whether t is reachable from s along directed links for
// which alive.Test(edgeID) is true. A nil alive means all links are alive.
func (g *Graph) Reaches(s, t NodeID, alive *bitset.Set) bool {
	if s == t {
		return true
	}
	seen := make([]bool, len(g.adj))
	stack := []NodeID{s}
	seen[s] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.adj[u] {
			if g.edges[eid].U != u {
				continue // incoming link; not traversable forward
			}
			if alive != nil && !alive.Test(int(eid)) {
				continue
			}
			v := g.edges[eid].V
			if seen[v] {
				continue
			}
			if v == t {
				return true
			}
			seen[v] = true
			stack = append(stack, v)
		}
	}
	return false
}

// WeakComponents returns, for every node, the index of its weakly
// connected component (link direction ignored) when only links with
// alive.Test(edgeID) true are present (nil alive means all links), along
// with the number of components. Component indices are assigned in
// increasing order of their lowest-numbered node.
func (g *Graph) WeakComponents(alive *bitset.Set) (comp []int, count int) {
	comp = make([]int, len(g.adj))
	for i := range comp {
		comp[i] = -1
	}
	var stack []NodeID
	for start := range g.adj {
		if comp[start] != -1 {
			continue
		}
		comp[start] = count
		stack = append(stack[:0], NodeID(start))
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, eid := range g.adj[u] {
				if alive != nil && !alive.Test(int(eid)) {
					continue
				}
				v := g.edges[eid].Other(u)
				if comp[v] == -1 {
					comp[v] = count
					stack = append(stack, v)
				}
			}
		}
		count++
	}
	return comp, count
}

// Subgraph describes one side of a bottleneck split: an induced standalone
// graph plus the mappings back to the parent.
type Subgraph struct {
	G *Graph
	// NodeOf maps parent node → subgraph node (-1 if absent).
	NodeOf []NodeID
	// ParentNode maps subgraph node → parent node.
	ParentNode []NodeID
	// ParentEdge maps subgraph edge → parent edge.
	ParentEdge []EdgeID
}

// HasNode reports whether parent node n is inside the subgraph.
func (sg *Subgraph) HasNode(n NodeID) bool {
	return int(n) < len(sg.NodeOf) && sg.NodeOf[n] >= 0
}

// Induced returns the subgraph induced by the nodes for which inside[n] is
// true, keeping every link whose two endpoints are inside.
func (g *Graph) Induced(inside []bool) *Subgraph {
	if len(inside) != len(g.adj) {
		panic("graph: Induced membership slice has wrong length")
	}
	sg := &Subgraph{NodeOf: make([]NodeID, len(g.adj))}
	b := NewBuilder()
	for i := range g.adj {
		if inside[i] {
			sg.NodeOf[i] = b.AddNamedNode(g.names[i])
			sg.ParentNode = append(sg.ParentNode, NodeID(i))
		} else {
			sg.NodeOf[i] = -1
		}
	}
	for _, e := range g.edges {
		if inside[e.U] && inside[e.V] {
			b.AddEdge(sg.NodeOf[e.U], sg.NodeOf[e.V], e.Cap, e.PFail)
			sg.ParentEdge = append(sg.ParentEdge, e.ID)
		}
	}
	sg.G = b.MustBuild()
	return sg
}

// SplitByCut removes the links in cut and, if the remainder has exactly two
// weakly connected components with s and t in different ones, returns the
// two induced sides (side containing s first). Otherwise it returns an
// error.
func (g *Graph) SplitByCut(s, t NodeID, cut []EdgeID) (gs, gt *Subgraph, err error) {
	alive := bitset.New(len(g.edges))
	alive.SetAll()
	for _, eid := range cut {
		if eid < 0 || int(eid) >= len(g.edges) {
			return nil, nil, fmt.Errorf("graph: cut edge %d out of range", eid)
		}
		alive.Clear(int(eid))
	}
	comp, count := g.WeakComponents(alive)
	if count != 2 {
		return nil, nil, fmt.Errorf("graph: removing the cut yields %d connected components, want exactly 2", count)
	}
	if comp[s] == comp[t] {
		return nil, nil, fmt.Errorf("graph: cut does not separate nodes %d and %d", s, t)
	}
	insideS := make([]bool, len(g.adj))
	insideT := make([]bool, len(g.adj))
	for n, c := range comp {
		if c == comp[s] {
			insideS[n] = true
		} else {
			insideT[n] = true
		}
	}
	return g.Induced(insideS), g.Induced(insideT), nil
}

// WithCapacity returns a copy of g with link e's capacity set to c. Only
// the edge slice is copied; the adjacency lists and node names — which a
// capacity change cannot affect — are shared with g (both graphs are
// immutable after build, so sharing is safe). The capacity must be valid
// per the Builder's AddEdge rules.
func (g *Graph) WithCapacity(e EdgeID, c int) (*Graph, error) {
	if e < 0 || int(e) >= len(g.edges) {
		return nil, fmt.Errorf("graph: edge %d out of range [0,%d)", e, len(g.edges))
	}
	if c < 0 {
		return nil, fmt.Errorf("graph: edge %d has negative capacity %d", e, c)
	}
	edges := append([]Edge(nil), g.edges...)
	edges[e].Cap = c
	return &Graph{edges: edges, adj: g.adj, names: g.names}, nil
}

// WithEdgeAdded returns a copy of g with one new link u → v appended
// under the next dense ID. Validation matches the Builder's AddEdge
// rules. Only the edge slice, the outer adjacency slice and the two
// endpoint rows are copied; every other adjacency row and the node
// names are shared with g (both graphs are immutable after build, so
// sharing is safe).
func (g *Graph) WithEdgeAdded(u, v NodeID, c int, pFail float64) (*Graph, error) {
	id := EdgeID(len(g.edges))
	if u < 0 || int(u) >= len(g.adj) || v < 0 || int(v) >= len(g.adj) {
		return nil, fmt.Errorf("graph: edge %d endpoints (%d,%d) out of range [0,%d)", id, u, v, len(g.adj))
	}
	switch {
	case u == v:
		return nil, fmt.Errorf("graph: edge %d is a self-loop at node %d", id, u)
	case c < 0:
		return nil, fmt.Errorf("graph: edge %d has negative capacity %d", id, c)
	case pFail < 0 || pFail >= 1:
		return nil, fmt.Errorf("graph: edge %d has failure probability %g outside [0,1)", id, pFail)
	}
	edges := make([]Edge, len(g.edges)+1)
	copy(edges, g.edges)
	edges[id] = Edge{ID: id, U: u, V: v, Cap: c, PFail: pFail}
	adj := append([][]EdgeID(nil), g.adj...)
	adj[u] = append(append(make([]EdgeID, 0, len(g.adj[u])+1), g.adj[u]...), id)
	adj[v] = append(append(make([]EdgeID, 0, len(g.adj[v])+1), g.adj[v]...), id)
	return &Graph{edges: edges, adj: adj, names: g.names}, nil
}

// WithEdgeRemoved returns a copy of g without link e. Links with IDs
// above e shift down by one so IDs stay dense — the same renumbering a
// Builder rebuild would produce. The adjacency lists are rebuilt (the
// shift touches nearly every row); node names are shared with g.
func (g *Graph) WithEdgeRemoved(e EdgeID) (*Graph, error) {
	if e < 0 || int(e) >= len(g.edges) {
		return nil, fmt.Errorf("graph: edge %d out of range [0,%d)", e, len(g.edges))
	}
	edges := make([]Edge, 0, len(g.edges)-1)
	for _, x := range g.edges {
		if x.ID == e {
			continue
		}
		if x.ID > e {
			x.ID--
		}
		edges = append(edges, x)
	}
	adj := make([][]EdgeID, len(g.adj))
	for _, x := range edges {
		adj[x.U] = append(adj[x.U], x.ID)
		adj[x.V] = append(adj[x.V], x.ID)
	}
	return &Graph{edges: edges, adj: adj, names: g.names}, nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		edges: append([]Edge(nil), g.edges...),
		adj:   make([][]EdgeID, len(g.adj)),
		names: append([]string(nil), g.names...),
	}
	for i, l := range g.adj {
		c.adj[i] = append([]EdgeID(nil), l...)
	}
	return c
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{%d nodes, %d links, total cap %d}", g.NumNodes(), g.NumEdges(), g.TotalCapacity())
}
