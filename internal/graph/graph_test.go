package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"flowrel/internal/bitset"
	"flowrel/internal/testutil"
)

// diamond builds s—a, s—b, a—t, b—t, a—b.
func diamond(t *testing.T) (*Graph, NodeID, NodeID) {
	t.Helper()
	b := NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	bb := b.AddNamedNode("b")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, 2, 0.1)
	b.AddEdge(s, bb, 1, 0.2)
	b.AddEdge(a, tt, 2, 0.1)
	b.AddEdge(bb, tt, 1, 0.2)
	b.AddEdge(a, bb, 1, 0.3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, s, tt
}

func TestBuilderBasics(t *testing.T) {
	g, s, tt := diamond(t)
	if g.NumNodes() != 4 || g.NumEdges() != 5 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.NodeName(s) != "s" || g.NodeName(tt) != "t" {
		t.Fatal("node names lost")
	}
	if id, ok := g.NodeByName("a"); !ok || id != 1 {
		t.Fatalf("NodeByName(a) = %d,%v", id, ok)
	}
	if _, ok := g.NodeByName(""); ok {
		t.Fatal("NodeByName(\"\") should fail")
	}
	if g.TotalCapacity() != 7 {
		t.Fatalf("TotalCapacity = %d, want 7", g.TotalCapacity())
	}
	e := g.Edge(0)
	if e.Other(s) != 1 || e.Other(1) != s {
		t.Fatal("Other broken")
	}
	if len(g.Incident(s)) != 2 {
		t.Fatalf("Incident(s) = %v", g.Incident(s))
	}
}

func TestEdgeOtherPanics(t *testing.T) {
	g, _, _ := diamond(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Edge(0).Other(3)
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"self-loop", func(b *Builder) { n := b.AddNode(); b.AddEdge(n, n, 1, 0) }},
		{"bad endpoint", func(b *Builder) { n := b.AddNode(); b.AddEdge(n, n+5, 1, 0) }},
		{"negative cap", func(b *Builder) { u, v := b.AddNode(), b.AddNode(); b.AddEdge(u, v, -1, 0) }},
		{"p=1", func(b *Builder) { u, v := b.AddNode(), b.AddNode(); b.AddEdge(u, v, 1, 1.0) }},
		{"p<0", func(b *Builder) { u, v := b.AddNode(), b.AddNode(); b.AddEdge(u, v, 1, -0.1) }},
		{"dup name", func(b *Builder) { b.AddNamedNode("x"); b.AddNamedNode("x") }},
	}
	for _, c := range cases {
		b := NewBuilder()
		c.build(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", c.name)
		}
	}
}

func TestParallelEdgesAllowed(t *testing.T) {
	b := NewBuilder()
	u, v := b.AddNode(), b.AddNode()
	b.AddEdge(u, v, 1, 0.1)
	b.AddEdge(u, v, 2, 0.2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 || g.TotalCapacity() != 3 {
		t.Fatal("parallel edges mishandled")
	}
}

func TestReaches(t *testing.T) {
	g, s, tt := diamond(t)
	if !g.Reaches(s, tt, nil) {
		t.Fatal("full graph should connect s,t")
	}
	if !g.Reaches(s, s, nil) {
		t.Fatal("node reaches itself")
	}
	if g.Reaches(tt, s, nil) {
		t.Fatal("links are directed: t must not reach s")
	}
	// Kill edges 0 (s→a) and 1 (s→b): s has no out-links.
	alive := bitset.New(g.NumEdges())
	alive.SetAll()
	alive.Clear(0)
	alive.Clear(1)
	if g.Reaches(s, tt, alive) {
		t.Fatal("s should be cut off")
	}
	// Kill s→a and b→t: the surviving route is s→b, but a→b points the
	// wrong way, so t is unreachable.
	alive.SetAll()
	alive.Clear(0)
	alive.Clear(3)
	if g.Reaches(s, tt, alive) {
		t.Fatal("a→b cannot be traversed backward")
	}
	// Kill s→b and a→t: s→a alive, a→b alive, b→t alive: reachable.
	alive.SetAll()
	alive.Clear(1)
	alive.Clear(2)
	if !g.Reaches(s, tt, alive) {
		t.Fatal("path s→a→b→t should connect")
	}
}

func TestOutIn(t *testing.T) {
	g, s, tt := diamond(t)
	if got := len(g.Out(s)); got != 2 {
		t.Fatalf("Out(s) = %d links, want 2", got)
	}
	if got := len(g.In(s)); got != 0 {
		t.Fatalf("In(s) = %d links, want 0", got)
	}
	if got := len(g.In(tt)); got != 2 {
		t.Fatalf("In(t) = %d links, want 2", got)
	}
	if got := len(g.Out(tt)); got != 0 {
		t.Fatalf("Out(t) = %d links, want 0", got)
	}
}

func TestWeakComponents(t *testing.T) {
	g, s, tt := diamond(t)
	comp, n := g.WeakComponents(nil)
	if n != 1 {
		t.Fatalf("components = %d, want 1", n)
	}
	_ = comp
	alive := bitset.New(g.NumEdges())
	alive.SetAll()
	alive.Clear(0) // s→a
	alive.Clear(1) // s→b
	comp, n = g.WeakComponents(alive)
	if n != 2 {
		t.Fatalf("components = %d, want 2", n)
	}
	if comp[s] == comp[tt] {
		t.Fatal("s and t should be in different components")
	}
	empty := bitset.New(g.NumEdges())
	_, n = g.WeakComponents(empty)
	if n != g.NumNodes() {
		t.Fatalf("all-dead components = %d, want %d", n, g.NumNodes())
	}
}

func TestInducedAndSplitByCut(t *testing.T) {
	g, s, tt := diamond(t)
	// Cut {a-t (2), b-t (3)} separates {s,a,b} from {t}.
	gs, gt, err := g.SplitByCut(s, tt, []EdgeID{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if gs.G.NumNodes() != 3 || gt.G.NumNodes() != 1 {
		t.Fatalf("split sizes %d/%d", gs.G.NumNodes(), gt.G.NumNodes())
	}
	if gs.G.NumEdges() != 3 || gt.G.NumEdges() != 0 {
		t.Fatalf("split edges %d/%d", gs.G.NumEdges(), gt.G.NumEdges())
	}
	if !gs.HasNode(s) || gs.HasNode(tt) || !gt.HasNode(tt) {
		t.Fatal("membership wrong")
	}
	// Mappings are mutually consistent.
	for sub, par := range gs.ParentNode {
		if gs.NodeOf[par] != NodeID(sub) {
			t.Fatal("node mapping inconsistent")
		}
	}
	for subE, parE := range gs.ParentEdge {
		pe := g.Edge(parE)
		se := gs.G.Edge(EdgeID(subE))
		if se.Cap != pe.Cap || !testutil.AlmostEqual(se.PFail, pe.PFail, 0) {
			t.Fatal("edge attributes lost in induction")
		}
	}
	// Name survives induction.
	if nm := gs.G.NodeName(gs.NodeOf[s]); nm != "s" {
		t.Fatalf("induced name = %q", nm)
	}
}

func TestSplitByCutErrors(t *testing.T) {
	g, s, tt := diamond(t)
	// Not a separating set.
	if _, _, err := g.SplitByCut(s, tt, []EdgeID{0}); err == nil {
		t.Fatal("expected error: cut does not separate")
	}
	// Out of range.
	if _, _, err := g.SplitByCut(s, tt, []EdgeID{99}); err == nil {
		t.Fatal("expected error: edge out of range")
	}
	// Three components: kill everything around a: {0 s-a, 2 a-t, 4 a-b}
	if _, _, err := g.SplitByCut(s, tt, []EdgeID{0, 2, 4, 1}); err == nil {
		t.Fatal("expected error: more than two components")
	}
}

func TestCloneDeep(t *testing.T) {
	g, _, _ := diamond(t)
	c := g.Clone()
	if c.NumNodes() != g.NumNodes() || c.NumEdges() != g.NumEdges() {
		t.Fatal("clone size mismatch")
	}
	c.edges[0].Cap = 99
	if g.edges[0].Cap == 99 {
		t.Fatal("clone shares edge storage")
	}
	c.adj[0] = append(c.adj[0], 0)
	if len(g.adj[0]) == len(c.adj[0]) {
		t.Fatal("clone shares adjacency storage")
	}
}

func TestDemandValidate(t *testing.T) {
	g, s, tt := diamond(t)
	if err := (Demand{S: s, T: tt, D: 2}).Validate(g); err != nil {
		t.Fatal(err)
	}
	bad := []Demand{
		{S: s, T: s, D: 1},
		{S: -1, T: tt, D: 1},
		{S: s, T: 100, D: 1},
		{S: s, T: tt, D: 0},
	}
	for _, dem := range bad {
		if err := dem.Validate(g); err == nil {
			t.Errorf("demand %v validated, want error", dem)
		}
	}
}

func TestParseTextRoundTrip(t *testing.T) {
	src := `
# a diamond
node s
node t
edge s a 2 0.1
edge s b 1 0.2
edge a t 2 0.1
edge b t 1 0.2
edge a b 1 0.3
demand s t 2
`
	f, err := ParseTextString(src)
	if err != nil {
		t.Fatal(err)
	}
	if f.Graph.NumNodes() != 4 || f.Graph.NumEdges() != 5 {
		t.Fatalf("parsed %d nodes %d edges", f.Graph.NumNodes(), f.Graph.NumEdges())
	}
	if f.Demand == nil || f.Demand.D != 2 {
		t.Fatalf("demand = %+v", f.Demand)
	}
	var sb strings.Builder
	if err := f.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	f2, err := ParseTextString(sb.String())
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, sb.String())
	}
	if f2.Graph.NumNodes() != 4 || f2.Graph.NumEdges() != 5 || f2.Demand == nil {
		t.Fatal("round trip lost structure")
	}
	for i, e := range f.Graph.Edges() {
		e2 := f2.Graph.Edge(EdgeID(i))
		if e.Cap != e2.Cap || !testutil.AlmostEqual(e.PFail, e2.PFail, 0) {
			t.Fatal("round trip lost edge attributes")
		}
	}
}

func TestParseTextErrors(t *testing.T) {
	bad := []string{
		"edge s t 1",                   // missing pfail
		"edge s t x 0.1",               // bad cap
		"edge s t 1 zz",                // bad pfail
		"frob s t",                     // unknown directive
		"node a\nnode a",               // dup node
		"demand s s 1",                 // s == t
		"edge s t 1 0.1\ndemand s t 0", // d=0
		"edge s t 1 0.1\ndemand s t 1\ndemand s t 1", // dup demand
		"edge 5 6 1 0.1", // index out of range
		"edge s t 1 1.0", // p = 1
	}
	for _, src := range bad {
		if _, err := ParseTextString(src); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", src)
		}
	}
}

func TestParseTextDuplex(t *testing.T) {
	f, err := ParseTextString("duplex a b 2 0.1\nedge b c 1 0.2\ndemand a c 1")
	if err != nil {
		t.Fatal(err)
	}
	if f.Graph.NumEdges() != 3 {
		t.Fatalf("links = %d, want 3 (duplex = 2 + 1)", f.Graph.NumEdges())
	}
	e0, e1 := f.Graph.Edge(0), f.Graph.Edge(1)
	if e0.U != e1.V || e0.V != e1.U || e0.Cap != e1.Cap || !testutil.AlmostEqual(e0.PFail, e1.PFail, 0) {
		t.Fatalf("duplex pair mismatch: %+v / %+v", e0, e1)
	}
	if _, err := ParseTextString("duplex a b 2"); err == nil {
		t.Fatal("short duplex accepted")
	}
}

func TestParseTextDemandByIndex(t *testing.T) {
	f, err := ParseTextString("node s\nnode t\nedge 0 1 2 0.1\ndemand 0 1 2")
	if err != nil {
		t.Fatal(err)
	}
	if f.Demand.S != 0 || f.Demand.T != 1 {
		t.Fatalf("demand = %+v", f.Demand)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g, s, tt := diamond(t)
	f := &File{Graph: g, Demand: &Demand{S: s, T: tt, D: 2}}
	data, err := f.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var f2 File
	if err := f2.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if f2.Graph.NumNodes() != 4 || f2.Graph.NumEdges() != 5 {
		t.Fatal("JSON round trip lost structure")
	}
	if f2.Demand == nil || f2.Demand.D != 2 || f2.Demand.S != s || f2.Demand.T != tt {
		t.Fatalf("JSON demand = %+v", f2.Demand)
	}
	if !testutil.AlmostEqual(f2.Graph.Edge(4).PFail, 0.3, 0) {
		t.Fatal("JSON round trip lost pfail")
	}
}

func TestJSONErrors(t *testing.T) {
	var f File
	bad := []string{
		`{"nodes":["a","a"],"edges":[]}`,
		`{"nodes":["a"],"edges":[{"u":"a","v":"zz","cap":1,"pfail":0}]}`,
		`{"nodes":["a","b"],"edges":[{"u":"a","v":"b","cap":1,"pfail":0}],"demand":{"s":"a","t":"zz","d":1}}`,
		`{nonsense`,
	}
	for _, src := range bad {
		if err := f.UnmarshalJSON([]byte(src)); err == nil {
			t.Errorf("UnmarshalJSON(%q) succeeded, want error", src)
		}
	}
}

// randomGraph builds a connected-ish random graph for property tests.
func randomGraph(rng *rand.Rand, nodes, edges int) *Graph {
	b := NewBuilder()
	b.AddNodes(nodes)
	for i := 0; i < edges; i++ {
		u := NodeID(rng.Intn(nodes))
		v := NodeID(rng.Intn(nodes))
		for v == u {
			v = NodeID(rng.Intn(nodes))
		}
		b.AddEdge(u, v, 1+rng.Intn(3), rng.Float64()*0.9)
	}
	return b.MustBuild()
}

// Property: WeakComponents matches a union-find over the alive links, and
// Reaches implies weak connectivity.
func TestQuickWeakComponentsVsUnionFind(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(6), rng.Intn(10))
		alive := bitset.New(g.NumEdges())
		for i := 0; i < g.NumEdges(); i++ {
			if rng.Intn(2) == 0 {
				alive.Set(i)
			}
		}
		// Union-find over alive links, ignoring direction.
		parent := make([]int, g.NumNodes())
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range g.Edges() {
			if alive.Test(int(e.ID)) {
				parent[find(int(e.U))] = find(int(e.V))
			}
		}
		comp, _ := g.WeakComponents(alive)
		for u := 0; u < g.NumNodes(); u++ {
			for v := 0; v < g.NumNodes(); v++ {
				if (comp[u] == comp[v]) != (find(u) == find(v)) {
					return false
				}
				if g.Reaches(NodeID(u), NodeID(v), alive) && comp[u] != comp[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: text round trip preserves node/edge counts and attributes.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 2+rng.Intn(6), rng.Intn(10))
		var sb strings.Builder
		if err := (&File{Graph: g}).WriteText(&sb); err != nil {
			return false
		}
		f2, err := ParseTextString(sb.String())
		if err != nil {
			return false
		}
		if f2.Graph.NumNodes() != g.NumNodes() || f2.Graph.NumEdges() != g.NumEdges() {
			return false
		}
		for i, e := range g.Edges() {
			e2 := f2.Graph.Edge(EdgeID(i))
			if e.Cap != e2.Cap || !testutil.AlmostEqual(e.PFail, e2.PFail, 0) || e.U != e2.U || e.V != e2.V {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
