package graph

import "fmt"

// MutationKind selects what a Mutation does to a graph.
type MutationKind int

const (
	// MutateCapacity changes the capacity of one existing link, keeping
	// its endpoints, failure probability and ID. Topology is unchanged,
	// so node and link IDs are stable.
	MutateCapacity MutationKind = iota
	// MutateAdd appends one new link U → V; it receives the next dense
	// link ID (NumEdges of the pre-mutation graph). Existing IDs are
	// stable.
	MutateAdd
	// MutateRemove deletes one link. Links with higher IDs shift down by
	// one to keep IDs dense; node IDs are stable.
	MutateRemove
)

// String names the kind for error messages and logs.
func (k MutationKind) String() string {
	switch k {
	case MutateCapacity:
		return "capacity"
	case MutateAdd:
		return "add"
	case MutateRemove:
		return "remove"
	}
	return fmt.Sprintf("MutationKind(%d)", int(k))
}

// Mutation is a single-link change — the churn events of a P2P overlay
// (bandwidth renegotiation, a connection appearing, a connection or peer
// going away) expressed against the link model. Node churn reduces to
// link churn through the node-splitting transform (internal/churn): a
// peer leaving is the removal of its internal link.
type Mutation struct {
	Kind MutationKind
	// Link is the target link for MutateCapacity and MutateRemove.
	Link EdgeID
	// U, V are the endpoints of the new link for MutateAdd.
	U, V NodeID
	// Cap is the new capacity for MutateCapacity and MutateAdd.
	Cap int
	// PFail is the failure probability of the new link for MutateAdd.
	PFail float64
}

// String renders the mutation compactly.
func (m Mutation) String() string {
	switch m.Kind {
	case MutateCapacity:
		return fmt.Sprintf("capacity(e%d→%d)", m.Link, m.Cap)
	case MutateAdd:
		return fmt.Sprintf("add(%d→%d cap %d p %g)", m.U, m.V, m.Cap, m.PFail)
	case MutateRemove:
		return fmt.Sprintf("remove(e%d)", m.Link)
	}
	return m.Kind.String()
}

// Apply builds the mutated graph. It returns the new graph plus the link
// remap: remap[old] is the post-mutation ID of pre-mutation link old, or
// -1 for the removed link. Node IDs are always stable; link IDs move only
// for MutateRemove (IDs above the removed link shift down by one). g is
// not modified.
func (m Mutation) Apply(g *Graph) (*Graph, []EdgeID, error) {
	if g == nil {
		return nil, nil, fmt.Errorf("graph: mutation on nil graph")
	}
	ne := g.NumEdges()
	remap := make([]EdgeID, ne)
	for i := range remap {
		remap[i] = EdgeID(i)
	}
	switch m.Kind {
	case MutateCapacity:
		if m.Link < 0 || int(m.Link) >= ne {
			return nil, nil, fmt.Errorf("graph: mutation %v targets link out of range [0,%d)", m, ne)
		}
		// Topology is untouched: share the adjacency structure instead
		// of rebuilding it. Link IDs are stable, so the remap is the
		// identity computed above.
		g2, err := g.WithCapacity(m.Link, m.Cap)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: mutation %v: %w", m, err)
		}
		return g2, remap, nil
	case MutateAdd:
		g2, err := g.WithEdgeAdded(m.U, m.V, m.Cap, m.PFail)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: mutation %v: %w", m, err)
		}
		// The new link gets the next dense ID; existing IDs are stable,
		// so the identity remap stands.
		return g2, remap, nil
	case MutateRemove:
		if m.Link < 0 || int(m.Link) >= ne {
			return nil, nil, fmt.Errorf("graph: mutation %v targets link out of range [0,%d)", m, ne)
		}
		g2, err := g.WithEdgeRemoved(m.Link)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: mutation %v: %w", m, err)
		}
		remap[m.Link] = -1
		for i := int(m.Link) + 1; i < ne; i++ {
			remap[i] = EdgeID(i - 1)
		}
		return g2, remap, nil
	}
	return nil, nil, fmt.Errorf("graph: unknown mutation kind %d", int(m.Kind))
}
