package graph

import (
	"encoding/json"
	"testing"
)

// FuzzJSON asserts the JSON codec never panics on arbitrary input and that
// accepted documents survive a marshal/unmarshal round trip.
func FuzzJSON(f *testing.F) {
	seeds := []string{
		`{}`,
		`{"nodes":[],"edges":[]}`,
		`{"nodes":["s","t"],"edges":[{"u":"s","v":"t","cap":1,"pfail":0.5}]}`,
		`{"nodes":["s","t"],"edges":[{"u":"s","v":"t","cap":1,"pfail":0.5}],"demand":{"s":"s","t":"t","d":1}}`,
		`{"nodes":["a","a"]}`,
		`{"nodes":["s"],"edges":[{"u":"s","v":"zzz","cap":1,"pfail":0}]}`,
		`{"nodes":["s","t"],"edges":[{"u":"s","v":"t","cap":-1,"pfail":0}]}`,
		`{"nodes":["s","t"],"edges":[{"u":"s","v":"t","cap":1,"pfail":2}]}`,
		`[1,2,3]`,
		`not json at all`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var file File
		if err := file.UnmarshalJSON(data); err != nil {
			return
		}
		out, err := file.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted document failed to marshal: %v", err)
		}
		var file2 File
		if err := file2.UnmarshalJSON(out); err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, out)
		}
		if file2.Graph.NumNodes() != file.Graph.NumNodes() || file2.Graph.NumEdges() != file.Graph.NumEdges() {
			t.Fatalf("round trip changed shape")
		}
		// The serialized forms must themselves be equal JSON documents.
		out2, err := file2.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var a, b any
		if json.Unmarshal(out, &a) != nil || json.Unmarshal(out2, &b) != nil {
			t.Fatal("emitted invalid JSON")
		}
	})
}
