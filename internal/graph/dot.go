package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// DOTOptions customizes WriteDOT output.
type DOTOptions struct {
	// Demand, when non-nil, highlights the source and sink nodes.
	Demand *Demand
	// Highlight marks the given links (e.g. a bottleneck cut) in red.
	Highlight []EdgeID
	// Name is the digraph name (default "flowrel").
	Name string
}

// WriteDOT renders the graph in Graphviz DOT format: one directed edge per
// link, labelled "cap, p". Useful for eyeballing bottleneck structure:
//
//	gengraph -type clustered | relcalc -dot | dot -Tsvg > net.svg
func (g *Graph) WriteDOT(w io.Writer, opt DOTOptions) error {
	bw := bufio.NewWriter(w)
	name := opt.Name
	if name == "" {
		name = "flowrel"
	}
	fmt.Fprintf(bw, "digraph %s {\n", dotID(name))
	fmt.Fprintf(bw, "  rankdir=LR;\n  node [shape=circle, fontsize=11];\n  edge [fontsize=9];\n")

	nodeName := func(n NodeID) string {
		if g.names[n] != "" {
			return g.names[n]
		}
		return "n" + strconv.Itoa(int(n))
	}
	for i := 0; i < g.NumNodes(); i++ {
		attrs := ""
		if opt.Demand != nil {
			switch NodeID(i) {
			case opt.Demand.S:
				attrs = ` [style=filled, fillcolor="#a7d3a6", xlabel="source"]`
			case opt.Demand.T:
				attrs = ` [style=filled, fillcolor="#a6b8d3", xlabel="sink"]`
			}
		}
		fmt.Fprintf(bw, "  %s%s;\n", dotID(nodeName(NodeID(i))), attrs)
	}
	hl := make(map[EdgeID]bool, len(opt.Highlight))
	for _, e := range opt.Highlight {
		hl[e] = true
	}
	for _, e := range g.edges {
		extra := ""
		if hl[e.ID] {
			extra = `, color=red, penwidth=2`
		}
		fmt.Fprintf(bw, "  %s -> %s [label=\"%d, %s\"%s];\n",
			dotID(nodeName(e.U)), dotID(nodeName(e.V)),
			e.Cap, strconv.FormatFloat(e.PFail, 'g', 3, 64), extra)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// dotID quotes a string as a DOT identifier when needed.
func dotID(s string) string {
	plain := s != ""
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				plain = false
			}
		default:
			plain = false
		}
	}
	if plain {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
