package graph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseText asserts the text parser never panics on arbitrary input
// and that anything it accepts survives a write/re-parse round trip with
// identical structure.
func FuzzParseText(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"node s\nnode t\nedge s t 1 0.5\ndemand s t 1\n",
		"duplex a b 2 0.25\n",
		"edge a b 3 0.1\nedge b c 2 0.2\nedge a c 1 0\ndemand a c 2\n",
		"edge 0 1 1 0.1",
		"node x\nedge x x 1 0.1",
		"edge s t -1 0.1",
		"edge s t 1 1.5",
		"demand s t 0",
		"node \xff\nedge \xff q 1 0.1",
		strings.Repeat("node n\n", 3),
		"edge s t 99999999999999999999 0.1",
		"edge s t 1 1e-300\ndemand s t 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Seed the corpus with every real network description shipped in
	// testdata/, so mutations start from well-formed inputs too.
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.g"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no testdata seeds found: %v", err)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Fuzz(func(t *testing.T, input string) {
		file, err := ParseTextString(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var sb strings.Builder
		if err := file.WriteText(&sb); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		file2, err := ParseTextString(sb.String())
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\noriginal: %q\nserialized: %q", err, input, sb.String())
		}
		if file2.Graph.NumNodes() != file.Graph.NumNodes() || file2.Graph.NumEdges() != file.Graph.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", file.Graph, file2.Graph)
		}
		for i, e := range file.Graph.Edges() {
			e2 := file2.Graph.Edge(EdgeID(i))
			if e.U != e2.U || e.V != e2.V || e.Cap != e2.Cap || e.PFail != e2.PFail {
				t.Fatalf("round trip changed link %d: %+v vs %+v", i, e, e2)
			}
		}
		if (file.Demand == nil) != (file2.Demand == nil) {
			t.Fatal("round trip changed demand presence")
		}
	})
}
