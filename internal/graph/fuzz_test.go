package graph

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"flowrel/internal/testutil"
)

// FuzzParseText asserts the text parser never panics on arbitrary input
// and that anything it accepts survives a write/re-parse round trip with
// identical structure.
func FuzzParseText(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"node s\nnode t\nedge s t 1 0.5\ndemand s t 1\n",
		"duplex a b 2 0.25\n",
		"edge a b 3 0.1\nedge b c 2 0.2\nedge a c 1 0\ndemand a c 2\n",
		"edge 0 1 1 0.1",
		"node x\nedge x x 1 0.1",
		"edge s t -1 0.1",
		"edge s t 1 1.5",
		"demand s t 0",
		"node \xff\nedge \xff q 1 0.1",
		strings.Repeat("node n\n", 3),
		"edge s t 99999999999999999999 0.1",
		"edge s t 1 1e-300\ndemand s t 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Seed the corpus with every real network description shipped in
	// testdata/, so mutations start from well-formed inputs too.
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.g"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no testdata seeds found: %v", err)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Fuzz(func(t *testing.T, input string) {
		file, err := ParseTextString(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var sb strings.Builder
		if err := file.WriteText(&sb); err != nil {
			t.Fatalf("accepted graph failed to serialize: %v", err)
		}
		file2, err := ParseTextString(sb.String())
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\noriginal: %q\nserialized: %q", err, input, sb.String())
		}
		if file2.Graph.NumNodes() != file.Graph.NumNodes() || file2.Graph.NumEdges() != file.Graph.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", file.Graph, file2.Graph)
		}
		for i, e := range file.Graph.Edges() {
			e2 := file2.Graph.Edge(EdgeID(i))
			if e.U != e2.U || e.V != e2.V || e.Cap != e2.Cap || !testutil.AlmostEqual(e.PFail, e2.PFail, 0) {
				t.Fatalf("round trip changed link %d: %+v vs %+v", i, e, e2)
			}
		}
		if (file.Demand == nil) != (file2.Demand == nil) {
			t.Fatal("round trip changed demand presence")
		}
	})
}

// FuzzParseDOT asserts the DOT parser never panics on arbitrary input
// and that write∘parse is a fixed point: anything ParseDOT accepts,
// once re-emitted by WriteDOT, parses back to a graph that emits the
// byte-identical DOT again.
func FuzzParseDOT(f *testing.F) {
	seeds := []string{
		"",
		"digraph flowrel {\n}\n",
		"digraph g { a; b; a -> b [label=\"1, 0.5\"]; }",
		"digraph g {\n  rankdir=LR;\n  node [shape=circle, fontsize=11];\n  edge [fontsize=9];\n  s [style=filled, fillcolor=\"#a7d3a6\", xlabel=\"source\"];\n  t [style=filled, fillcolor=\"#a6b8d3\", xlabel=\"sink\"];\n  s -> t [label=\"2, 0.25\", color=red, penwidth=2];\n}\n",
		"digraph \"odd name\" { \"1st\" -> x [label=\"3, 1e-300\"]; }",
		"digraph g { a -> b }",
		"digraph g { a -> b [label=\"nope\"]; }",
		"digraph g { a -> a [label=\"1, 0.1\"]; }",
		"digraph g { a; a; }",
		"graph g { a; }",
		"digraph g { a [xlabel=\"source\"]; }",
		"digraph g { \"\\\"q\\\\\" ; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// Seed from every shipped network description, rendered to DOT, so
	// mutations start from the writer's own output too.
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.g"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no testdata seeds found: %v", err)
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		gf, err := ParseTextString(string(data))
		if err != nil {
			f.Fatal(err)
		}
		var sb strings.Builder
		if err := gf.Graph.WriteDOT(&sb, DOTOptions{Demand: gf.Demand}); err != nil {
			f.Fatal(err)
		}
		f.Add(sb.String())
	}
	f.Fuzz(func(t *testing.T, input string) {
		file, err := ParseDOTString(input)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var s1 strings.Builder
		if err := file.Graph.WriteDOT(&s1, DOTOptions{Demand: file.Demand}); err != nil {
			t.Fatalf("accepted graph failed to render: %v", err)
		}
		file2, err := ParseDOTString(s1.String())
		if err != nil {
			t.Fatalf("re-parse of emitted DOT failed: %v\noriginal: %q\nemitted: %q", err, input, s1.String())
		}
		if file2.Graph.NumNodes() != file.Graph.NumNodes() || file2.Graph.NumEdges() != file.Graph.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", file.Graph, file2.Graph)
		}
		if (file.Demand == nil) != (file2.Demand == nil) {
			t.Fatal("round trip changed demand presence")
		}
		var s2 strings.Builder
		if err := file2.Graph.WriteDOT(&s2, DOTOptions{Demand: file2.Demand}); err != nil {
			t.Fatal(err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("write∘parse is not a fixed point:\nfirst:  %q\nsecond: %q", s1.String(), s2.String())
		}
	})
}
