package graph

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	g, s, tt := diamond(t)
	dem := Demand{S: s, T: tt, D: 2}
	var sb strings.Builder
	if err := g.WriteDOT(&sb, DOTOptions{Demand: &dem, Highlight: []EdgeID{2}, Name: "test graph"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`digraph "test graph" {`,
		"s -> a",
		"a -> t",
		`label="2, 0.1"`,
		"color=red",           // highlighted link
		`fillcolor="#a7d3a6"`, // source
		`fillcolor="#a6b8d3"`, // sink
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("DOT output not closed")
	}
}

func TestWriteDOTUnnamedNodes(t *testing.T) {
	b := NewBuilder()
	u := b.AddNode()
	v := b.AddNode()
	b.AddEdge(u, v, 1, 0.5)
	g := b.MustBuild()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, DOTOptions{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n0 -> n1") {
		t.Fatalf("unnamed nodes not rendered: %s", sb.String())
	}
	if !strings.Contains(sb.String(), "digraph flowrel {") {
		t.Fatal("default name missing")
	}
}

func TestDotID(t *testing.T) {
	cases := map[string]string{
		"abc":    "abc",
		"a_b9":   "a_b9",
		"9abc":   `"9abc"`,
		"a-b":    `"a-b"`,
		"":       `""`,
		`say"hi`: `"say\"hi"`,
	}
	for in, want := range cases {
		if got := dotID(in); got != want {
			t.Errorf("dotID(%q) = %s, want %s", in, got, want)
		}
	}
}
