package graph

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDOT reads the subset of Graphviz DOT that WriteDOT emits back
// into a File: a digraph whose node statements declare named nodes
// (xlabel="source"/"sink" marks recovering the demand endpoints) and
// whose edge statements carry a `label="cap, pfail"` attribute.
// Highlight colors and layout attributes are accepted and ignored.
//
// DOT does not record the demanded bit-rate, so a recovered demand has
// volume 1; a graph with no source/sink marks parses with a nil Demand.
func ParseDOT(r io.Reader) (*File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading DOT: %w", err)
	}
	return ParseDOTString(string(data))
}

// ParseDOTString is ParseDOT on a string.
func ParseDOTString(s string) (*File, error) {
	toks, err := dotTokenize(s)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	p := &dotParser{toks: toks, b: NewBuilder()}
	if err := p.parse(); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	g, err := p.b.Build()
	if err != nil {
		return nil, err
	}
	f := &File{Graph: g}
	if p.src != nil && p.sink != nil {
		f.Demand = &Demand{S: *p.src, T: *p.sink, D: 1}
		if err := f.Demand.Validate(g); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// DOT tokens.
const (
	dotEOF = iota
	dotPunct
	dotArrow
	dotWord
	dotString
)

type dotTok struct {
	kind int
	text string
}

func dotDelim(c byte) bool {
	switch c {
	case ' ', '\t', '\r', '\n', '{', '}', '[', ']', ';', ',', '=', '"':
		return true
	}
	return false
}

func dotTokenize(s string) ([]dotTok, error) {
	var toks []dotTok
	for i := 0; i < len(s); {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '{' || c == '}' || c == '[' || c == ']' || c == ';' || c == ',' || c == '=':
			toks = append(toks, dotTok{dotPunct, string(c)})
			i++
		case c == '-' && i+1 < len(s) && s[i+1] == '>':
			toks = append(toks, dotTok{dotArrow, "->"})
			i += 2
		case c == '"':
			i++
			var b strings.Builder
			closed := false
			for i < len(s) {
				c := s[i]
				if c == '\\' && i+1 < len(s) {
					// WriteDOT escapes only backslash and quote; any other
					// backslash sequence passes through verbatim.
					switch s[i+1] {
					case '"', '\\':
						b.WriteByte(s[i+1])
					default:
						b.WriteByte('\\')
						b.WriteByte(s[i+1])
					}
					i += 2
					continue
				}
				if c == '"' {
					i++
					closed = true
					break
				}
				b.WriteByte(c)
				i++
			}
			if !closed {
				return nil, fmt.Errorf("unterminated quoted string")
			}
			toks = append(toks, dotTok{dotString, b.String()})
		default:
			start := i
			for i < len(s) && !dotDelim(s[i]) {
				if s[i] == '-' && i+1 < len(s) && s[i+1] == '>' {
					break
				}
				i++
			}
			toks = append(toks, dotTok{dotWord, s[start:i]})
		}
	}
	return append(toks, dotTok{dotEOF, ""}), nil
}

type dotParser struct {
	toks []dotTok
	pos  int
	b    *Builder
	src  *NodeID
	sink *NodeID
}

func (p *dotParser) next() dotTok {
	t := p.toks[p.pos]
	if t.kind != dotEOF {
		p.pos++
	}
	return t
}

func (p *dotParser) peek() dotTok { return p.toks[p.pos] }

func (p *dotParser) peekPunct(text string) bool {
	t := p.peek()
	return t.kind == dotPunct && t.text == text
}

func (p *dotParser) expectPunct(text string) error {
	if t := p.next(); t.kind != dotPunct || t.text != text {
		return fmt.Errorf("expected %q, got %q", text, t.text)
	}
	return nil
}

func isDotID(t dotTok) bool { return t.kind == dotWord || t.kind == dotString }

func (p *dotParser) parse() error {
	if t := p.next(); t.kind != dotWord || t.text != "digraph" {
		return fmt.Errorf("expected 'digraph', got %q", t.text)
	}
	if isDotID(p.peek()) {
		p.next() // the graph name; File does not record it
	}
	if err := p.expectPunct("{"); err != nil {
		return err
	}
	for {
		t := p.next()
		switch {
		case t.kind == dotEOF:
			return fmt.Errorf("unexpected end of input inside digraph")
		case t.kind == dotPunct && t.text == "}":
			if end := p.next(); end.kind != dotEOF {
				return fmt.Errorf("trailing %q after closing brace", end.text)
			}
			return nil
		case t.kind == dotPunct && t.text == ";":
			// empty statement
		case isDotID(t):
			if err := p.parseStmt(t); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unexpected %q", t.text)
		}
	}
}

// parseStmt handles one statement whose leading ID token is t: an
// attribute default (node [...] / edge [...]), a key=value setting, a
// node declaration, or an edge.
func (p *dotParser) parseStmt(t dotTok) error {
	if t.kind == dotWord && (t.text == "node" || t.text == "edge") && p.peekPunct("[") {
		_, err := p.parseAttrs() // layout defaults: ignored
		return err
	}
	if p.peekPunct("=") {
		p.next()
		if v := p.next(); !isDotID(v) {
			return fmt.Errorf("expected value after %s=", t.text)
		}
		return nil // rankdir and friends: ignored
	}
	if p.peek().kind == dotArrow {
		p.next()
		to := p.next()
		if !isDotID(to) {
			return fmt.Errorf("expected node after ->, got %q", to.text)
		}
		var attrs map[string]string
		if p.peekPunct("[") {
			var err error
			if attrs, err = p.parseAttrs(); err != nil {
				return err
			}
		}
		label, ok := attrs["label"]
		if !ok {
			return fmt.Errorf("edge %s -> %s has no label attribute", t.text, to.text)
		}
		capStr, pStr, ok := strings.Cut(label, ",")
		if !ok {
			return fmt.Errorf("edge label %q is not \"cap, pfail\"", label)
		}
		c, err := strconv.Atoi(strings.TrimSpace(capStr))
		if err != nil {
			return fmt.Errorf("bad capacity in edge label %q", label)
		}
		pf, err := strconv.ParseFloat(strings.TrimSpace(pStr), 64)
		if err != nil {
			return fmt.Errorf("bad failure probability in edge label %q", label)
		}
		p.b.AddEdge(p.nodeOf(t.text), p.nodeOf(to.text), c, pf)
		return nil
	}
	// Node declaration.
	if _, ok := p.b.Node(t.text); ok {
		return fmt.Errorf("duplicate node %q", t.text)
	}
	id := p.b.AddNamedNode(t.text)
	if p.peekPunct("[") {
		attrs, err := p.parseAttrs()
		if err != nil {
			return err
		}
		switch attrs["xlabel"] {
		case "source":
			if p.src != nil {
				return fmt.Errorf("node %q: second source mark", t.text)
			}
			p.src = &id
		case "sink":
			if p.sink != nil {
				return fmt.Errorf("node %q: second sink mark", t.text)
			}
			p.sink = &id
		}
	}
	return nil
}

func (p *dotParser) nodeOf(name string) NodeID {
	if id, ok := p.b.Node(name); ok {
		return id
	}
	return p.b.AddNamedNode(name)
}

func (p *dotParser) parseAttrs() (map[string]string, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	attrs := make(map[string]string)
	for {
		t := p.next()
		switch {
		case t.kind == dotPunct && t.text == "]":
			return attrs, nil
		case t.kind == dotPunct && t.text == ",":
		case isDotID(t):
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			v := p.next()
			if !isDotID(v) {
				return nil, fmt.Errorf("expected value for attribute %s", t.text)
			}
			attrs[t.text] = v.text
		default:
			return nil, fmt.Errorf("unexpected %q in attribute list", t.text)
		}
	}
}
