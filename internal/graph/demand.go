package graph

import "fmt"

// Demand is a flow demand D = (s, t, d): a stream of bit-rate d (i.e. d
// unit-rate sub-streams) must be delivered from source s to sink t.
type Demand struct {
	S, T NodeID
	D    int
}

// Validate checks that the demand is well formed on g.
func (dem Demand) Validate(g *Graph) error {
	if err := g.CheckNode(dem.S); err != nil {
		return fmt.Errorf("demand source: %w", err)
	}
	if err := g.CheckNode(dem.T); err != nil {
		return fmt.Errorf("demand sink: %w", err)
	}
	if dem.S == dem.T {
		return fmt.Errorf("graph: demand source and sink are the same node %d", dem.S)
	}
	if dem.D < 1 {
		return fmt.Errorf("graph: demand bit-rate %d must be at least 1", dem.D)
	}
	return nil
}

func (dem Demand) String() string {
	return fmt.Sprintf("(s=%d, t=%d, d=%d)", dem.S, dem.T, dem.D)
}
