// Package overlay generates the P2P streaming topologies that motivate the
// paper (§I–II): single delivery trees, multiple interior-disjoint trees
// (the SplitStream/mTreebone family), randomized push meshes
// (Bullet/PRIME/CoolStreaming family), and two-cluster graphs joined by a
// few bottleneck links — the regime the paper's algorithm targets. It also
// reconstructs the paper's worked-example graphs (Fig. 2 and Fig. 4/5).
//
// All links are directed along the delivery direction (source toward
// subscribers), matching the flow model.
package overlay

import (
	"fmt"
	"math/rand"

	"flowrel/internal/graph"
)

// Overlay is a generated streaming topology.
type Overlay struct {
	G      *graph.Graph
	Source graph.NodeID   // the media server
	Peers  []graph.NodeID // subscriber nodes
	// Substreams is the natural demand bit-rate d for this overlay (the
	// number of sub-streams the stream is divided into).
	Substreams int
	// Bottleneck is the planted bottleneck link set, when the generator
	// guarantees one (nil otherwise).
	Bottleneck []graph.EdgeID
}

// Demand returns the flow demand for delivering the full stream to peer.
func (o *Overlay) Demand(peer graph.NodeID) graph.Demand {
	return graph.Demand{S: o.Source, T: peer, D: o.Substreams}
}

// Tree builds a single fanout-ary delivery tree of the given depth: the
// media server pushes the whole stream (d sub-streams over every link, so
// links have capacity d) down store-and-relay peers. Tree overlays are
// simple but fragile: every link is a bridge (§II).
func Tree(fanout, depth, d int, pFail float64) (*Overlay, error) {
	if fanout < 1 || depth < 1 || d < 1 {
		return nil, fmt.Errorf("overlay: Tree wants fanout, depth, d ≥ 1 (got %d, %d, %d)", fanout, depth, d)
	}
	b := graph.NewBuilder()
	src := b.AddNamedNode("server")
	o := &Overlay{Source: src, Substreams: d}
	level := []graph.NodeID{src}
	for l := 1; l <= depth; l++ {
		var next []graph.NodeID
		for _, parent := range level {
			for f := 0; f < fanout; f++ {
				p := b.AddNode()
				b.AddEdge(parent, p, d, pFail)
				o.Peers = append(o.Peers, p)
				next = append(next, p)
			}
		}
		level = next
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	o.G = g
	return o, nil
}

// MultiTree builds `trees` interior-disjoint delivery trees over the same
// peer set (the SplitStream construction, §II): the stream is divided into
// `trees` unit-rate sub-streams; sub-stream j is pushed down tree j, whose
// interior consists exactly of the peers with index ≡ j (mod trees), so
// each peer is internal in one tree and a leaf in all others. Links carry
// one sub-stream (capacity 1).
func MultiTree(peers, trees, fanout int, pFail float64) (*Overlay, error) {
	if peers < trees || trees < 1 || fanout < 1 {
		return nil, fmt.Errorf("overlay: MultiTree wants peers ≥ trees ≥ 1 and fanout ≥ 1 (got %d, %d, %d)", peers, trees, fanout)
	}
	b := graph.NewBuilder()
	src := b.AddNamedNode("server")
	o := &Overlay{Source: src, Substreams: trees}
	for i := 0; i < peers; i++ {
		o.Peers = append(o.Peers, b.AddNamedNode(fmt.Sprintf("p%d", i)))
	}
	for j := 0; j < trees; j++ {
		// Interior peers of stripe j, in index order.
		var interior []graph.NodeID
		for i := j; i < peers; i += trees {
			interior = append(interior, o.Peers[i])
		}
		// Fanout-ary tree over the interior, rooted under the server.
		b.AddEdge(src, interior[0], 1, pFail)
		for m := 1; m < len(interior); m++ {
			b.AddEdge(interior[(m-1)/fanout], interior[m], 1, pFail)
		}
		// Every other peer attaches as a leaf, spread round-robin.
		leafIdx := 0
		for i := 0; i < peers; i++ {
			if i%trees == j {
				continue
			}
			parent := interior[leafIdx%len(interior)]
			leafIdx++
			b.AddEdge(parent, o.Peers[i], 1, pFail)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	o.G = g
	return o, nil
}

// Mesh builds a randomized acyclic push mesh: peers are ordered by join
// time and each pulls from up to `inDeg` distinct earlier peers (or the
// server), with link capacities drawn from [1, maxCap]. This models the
// mesh-based systems of §II, where content flows along many partially
// redundant routes.
func Mesh(peers, inDeg, maxCap, d int, pFail float64, seed int64) (*Overlay, error) {
	return MeshRand(peers, inDeg, maxCap, d, pFail, rand.New(rand.NewSource(seed)))
}

// MeshRand is Mesh drawing randomness from an injected source, so a
// caller can share one stream across several generators (or substitute
// a recorded one) and still get reproducible topologies.
func MeshRand(peers, inDeg, maxCap, d int, pFail float64, rng *rand.Rand) (*Overlay, error) {
	if rng == nil {
		return nil, fmt.Errorf("overlay: MeshRand wants a non-nil rng")
	}
	if peers < 1 || inDeg < 1 || maxCap < 1 || d < 1 {
		return nil, fmt.Errorf("overlay: Mesh wants peers, inDeg, maxCap, d ≥ 1 (got %d, %d, %d, %d)", peers, inDeg, maxCap, d)
	}
	b := graph.NewBuilder()
	src := b.AddNamedNode("server")
	o := &Overlay{Source: src, Substreams: d}
	nodes := []graph.NodeID{src}
	for i := 0; i < peers; i++ {
		p := b.AddNamedNode(fmt.Sprintf("p%d", i))
		o.Peers = append(o.Peers, p)
		k := inDeg
		if k > len(nodes) {
			k = len(nodes)
		}
		for _, pi := range rng.Perm(len(nodes))[:k] {
			b.AddEdge(nodes[pi], p, 1+rng.Intn(maxCap), pFail)
		}
		nodes = append(nodes, p)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	o.G = g
	return o, nil
}

// Clustered builds two randomized clusters (each a weakly connected random
// digraph of sideNodes nodes and ≥ sideNodes-1 links) joined by exactly k
// bottleneck links — the structure the paper's algorithm exploits. The
// planted link set is guaranteed to be a minimal s–t cut splitting the
// graph into two components, so it is returned as the overlay's
// Bottleneck. The demand terminal is the last sink-side node.
func Clustered(sideNodes, sideEdges, k, d, maxCap int, pFail float64, seed int64) (*Overlay, error) {
	return ClusteredRand(sideNodes, sideEdges, k, d, maxCap, pFail, rand.New(rand.NewSource(seed)))
}

// ClusteredRand is Clustered drawing randomness from an injected source.
func ClusteredRand(sideNodes, sideEdges, k, d, maxCap int, pFail float64, rng *rand.Rand) (*Overlay, error) {
	if rng == nil {
		return nil, fmt.Errorf("overlay: ClusteredRand wants a non-nil rng")
	}
	if sideNodes < 1 || k < 1 || d < 1 || maxCap < 1 {
		return nil, fmt.Errorf("overlay: Clustered wants sideNodes, k, d, maxCap ≥ 1 (got %d, %d, %d, %d)", sideNodes, k, d, maxCap)
	}
	b := graph.NewBuilder()
	cap := func() int { return 1 + rng.Intn(maxCap) }

	blob := func(off graph.NodeID) {
		// Weak spanning tree with random directions, then extra links.
		for i := 1; i < sideNodes; i++ {
			j := off + graph.NodeID(rng.Intn(i))
			u, v := j, off+graph.NodeID(i)
			if rng.Intn(2) == 0 {
				u, v = v, u
			}
			b.AddEdge(u, v, cap(), pFail)
		}
		for e := sideNodes - 1; e < sideEdges; e++ {
			u := off + graph.NodeID(rng.Intn(sideNodes))
			v := off + graph.NodeID(rng.Intn(sideNodes))
			if u != v {
				b.AddEdge(u, v, cap(), pFail)
			}
		}
	}
	b.AddNodes(sideNodes)
	blob(0)
	b.AddNodes(sideNodes)
	blob(graph.NodeID(sideNodes))

	s := graph.NodeID(0)
	t := graph.NodeID(2*sideNodes - 1)
	o := &Overlay{Source: s, Substreams: d}
	for i := 1; i < 2*sideNodes; i++ {
		o.Peers = append(o.Peers, graph.NodeID(i))
	}
	// Plant the bottleneck links; patch reachability so the cut is minimal
	// (s must reach each tail, each head must reach t).
	for i := 0; i < k; i++ {
		x := graph.NodeID(rng.Intn(sideNodes))
		y := graph.NodeID(sideNodes + rng.Intn(sideNodes))
		g0, err := b.Build()
		if err != nil {
			return nil, err
		}
		if !g0.Reaches(s, x, nil) {
			b.AddEdge(s, x, cap(), pFail)
		}
		if !g0.Reaches(y, t, nil) {
			b.AddEdge(y, t, cap(), pFail)
		}
		o.Bottleneck = append(o.Bottleneck, b.AddEdge(x, y, cap(), pFail))
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	o.G = g
	return o, nil
}

// Chain builds a delivery chain: `blocks` strongly connected random blocks
// (a directed ring of blockNodes nodes plus extraEdges random links each)
// joined in series by cuts of k links each — the workload for the chain
// decomposition that generalizes the paper's single bottleneck. Every
// planted cut is a minimal s–t cut by construction (blocks are strongly
// connected), and BottleneckChain returns them in source-to-sink order.
func Chain(blocks, blockNodes, extraEdges, k, d, maxCap int, pFail float64, seed int64) (*Overlay, [][]graph.EdgeID, error) {
	return ChainRand(blocks, blockNodes, extraEdges, k, d, maxCap, pFail, rand.New(rand.NewSource(seed)))
}

// ChainRand is Chain drawing randomness from an injected source.
func ChainRand(blocks, blockNodes, extraEdges, k, d, maxCap int, pFail float64, rng *rand.Rand) (*Overlay, [][]graph.EdgeID, error) {
	if rng == nil {
		return nil, nil, fmt.Errorf("overlay: ChainRand wants a non-nil rng")
	}
	if blocks < 2 || blockNodes < 1 || k < 1 || d < 1 || maxCap < 1 {
		return nil, nil, fmt.Errorf("overlay: Chain wants blocks ≥ 2 and blockNodes, k, d, maxCap ≥ 1 (got %d, %d, %d, %d, %d)", blocks, blockNodes, k, d, maxCap)
	}
	b := graph.NewBuilder()
	var cuts [][]graph.EdgeID
	var blockStart []graph.NodeID
	for blk := 0; blk < blocks; blk++ {
		first := b.AddNodes(blockNodes)
		blockStart = append(blockStart, first)
		// Directed ring: the block is strongly connected.
		if blockNodes > 1 {
			for i := 0; i < blockNodes; i++ {
				b.AddEdge(first+graph.NodeID(i), first+graph.NodeID((i+1)%blockNodes), d, pFail)
			}
		}
		for e := 0; e < extraEdges; e++ {
			u := first + graph.NodeID(rng.Intn(blockNodes))
			v := first + graph.NodeID(rng.Intn(blockNodes))
			if u != v {
				b.AddEdge(u, v, 1+rng.Intn(maxCap), pFail)
			}
		}
		if blk > 0 {
			prev := blockStart[blk-1]
			var cut []graph.EdgeID
			for i := 0; i < k; i++ {
				x := prev + graph.NodeID(rng.Intn(blockNodes))
				y := first + graph.NodeID(rng.Intn(blockNodes))
				// Capacities chosen so the cut can carry d in aggregate.
				lo := (d + k - 1) / k
				hi := maxCap
				if hi < lo {
					hi = lo
				}
				if hi > d {
					hi = d
				}
				if lo > hi {
					lo = hi
				}
				cut = append(cut, b.AddEdge(x, y, lo+rng.Intn(hi-lo+1), pFail))
			}
			cuts = append(cuts, cut)
		}
	}
	s := blockStart[0]
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	o := &Overlay{G: g, Source: s, Substreams: d}
	for i := 0; i < g.NumNodes(); i++ {
		if graph.NodeID(i) != s {
			o.Peers = append(o.Peers, graph.NodeID(i))
		}
	}
	return o, cuts, nil
}

// Figure2 reconstructs the shape of the paper's Fig. 2: a source-side
// component G_s and a sink-side component G_t joined by a single bridge
// link e₉. The figure's exact capacities are not given in the text; this
// reconstruction uses two 4-link diamonds, which preserves every property
// the paper uses (the bridge is the unique single-link minimal cut, and
// Eq. 1 applies).
func Figure2() *Overlay {
	b := graph.NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	c := b.AddNamedNode("b")
	x := b.AddNamedNode("x")
	y := b.AddNamedNode("y")
	dd := b.AddNamedNode("c")
	e := b.AddNamedNode("d")
	t := b.AddNamedNode("t")
	b.AddEdge(s, a, 1, 0.10)           // e1
	b.AddEdge(s, c, 1, 0.10)           // e2
	b.AddEdge(a, x, 1, 0.10)           // e3
	b.AddEdge(c, x, 1, 0.10)           // e4
	bridge := b.AddEdge(x, y, 1, 0.05) // e9, the bridge
	b.AddEdge(y, dd, 1, 0.10)          // e5
	b.AddEdge(y, e, 1, 0.10)           // e6
	b.AddEdge(dd, t, 1, 0.10)          // e7
	b.AddEdge(e, t, 1, 0.10)           // e8
	return &Overlay{
		G:          b.MustBuild(),
		Source:     s,
		Peers:      []graph.NodeID{a, c, x, y, dd, e, t},
		Substreams: 1,
		Bottleneck: []graph.EdgeID{bridge},
	}
}

// Figure4 reconstructs the paper's Fig. 4: a 9-link graph separated by two
// bottleneck links e₁, e₂ (capacity 2 each), admitting a flow demand of
// amount two, with assignment set 𝒟 = {(2,0), (1,1), (0,2)}. The figure
// itself is not in the text; this reconstruction is chosen so that the
// three failure configurations of Fig. 5 exist, realizing exactly
// {(1,1),(0,2)}, {(1,1)}, and {(2,0),(1,1),(0,2)} (see Figure4Configs).
func Figure4() *Overlay {
	b := graph.NewBuilder()
	s := b.AddNamedNode("s")
	x1 := b.AddNamedNode("x1")
	x2 := b.AddNamedNode("x2")
	y1 := b.AddNamedNode("y1")
	y2 := b.AddNamedNode("y2")
	t := b.AddNamedNode("t")
	// G_s: two parallel unit links to each of x1, x2.
	b.AddEdge(s, x1, 1, 0.10) // c1
	b.AddEdge(s, x1, 1, 0.15) // c2
	b.AddEdge(s, x2, 1, 0.10) // c3
	b.AddEdge(s, x2, 1, 0.15) // c4
	// The bottleneck links e1, e2 of Fig. 4 (capacity 2 each).
	e1 := b.AddEdge(x1, y1, 2, 0.05)
	e2 := b.AddEdge(x2, y2, 2, 0.08)
	// G_t: enough capacity to absorb either concentration.
	b.AddEdge(y1, t, 2, 0.10)  // c5
	b.AddEdge(y2, t, 2, 0.10)  // c6
	b.AddEdge(y1, y2, 1, 0.12) // c7
	return &Overlay{
		G:          b.MustBuild(),
		Source:     s,
		Peers:      []graph.NodeID{t},
		Substreams: 2,
		Bottleneck: []graph.EdgeID{e1, e2},
	}
}

// Figure4Configs returns the three G_s failure configurations of Fig. 5 as
// alive-link masks over the Figure4 graph's first four links (the G_s
// links c1..c4), together with the assignment sets they realize:
//
//	(a) c1, c3, c4 alive          → {(1,1), (0,2)}
//	(b) c1, c3 alive              → {(1,1)}
//	(c) all of c1..c4 alive       → {(2,0), (1,1), (0,2)}
func Figure4Configs() []struct {
	Alive    []graph.EdgeID
	Realizes []string
} {
	return []struct {
		Alive    []graph.EdgeID
		Realizes []string
	}{
		{Alive: []graph.EdgeID{0, 2, 3}, Realizes: []string{"(1, 1)", "(0, 2)"}},
		{Alive: []graph.EdgeID{0, 2}, Realizes: []string{"(1, 1)"}},
		{Alive: []graph.EdgeID{0, 1, 2, 3}, Realizes: []string{"(2, 0)", "(1, 1)", "(0, 2)"}},
	}
}
