package overlay

import (
	"math/rand"
	"strings"
	"testing"

	"flowrel/internal/graph"
)

func renderGraph(t *testing.T, g *graph.Graph) string {
	t.Helper()
	var sb strings.Builder
	if err := (&graph.File{Graph: g}).WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestRandInjectionMatchesSeed pins the contract of the *Rand variants:
// a fresh source seeded with s produces exactly the topology the seed
// convenience wrapper produces, and the same source state always yields
// the same graph.
func TestRandInjectionMatchesSeed(t *testing.T) {
	const seed = 77

	mSeed, err := Mesh(12, 3, 2, 2, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	mRand, err := MeshRand(12, 3, 2, 2, 0.1, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if renderGraph(t, mSeed.G) != renderGraph(t, mRand.G) {
		t.Fatal("MeshRand with a fresh seeded source diverged from Mesh")
	}

	cSeed, err := Clustered(6, 9, 3, 2, 2, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	cRand, err := ClusteredRand(6, 9, 3, 2, 2, 0.1, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if renderGraph(t, cSeed.G) != renderGraph(t, cRand.G) {
		t.Fatal("ClusteredRand with a fresh seeded source diverged from Clustered")
	}

	chSeed, cutsSeed, err := Chain(3, 4, 3, 2, 2, 2, 0.1, seed)
	if err != nil {
		t.Fatal(err)
	}
	chRand, cutsRand, err := ChainRand(3, 4, 3, 2, 2, 2, 0.1, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	if renderGraph(t, chSeed.G) != renderGraph(t, chRand.G) {
		t.Fatal("ChainRand with a fresh seeded source diverged from Chain")
	}
	if len(cutsSeed) != len(cutsRand) {
		t.Fatalf("cut chains diverged: %v vs %v", cutsSeed, cutsRand)
	}
	for i := range cutsSeed {
		if len(cutsSeed[i]) != len(cutsRand[i]) {
			t.Fatalf("cut %d diverged: %v vs %v", i, cutsSeed[i], cutsRand[i])
		}
		for j := range cutsSeed[i] {
			if cutsSeed[i][j] != cutsRand[i][j] {
				t.Fatalf("cut %d diverged: %v vs %v", i, cutsSeed[i], cutsRand[i])
			}
		}
	}
}

// TestRandInjectionSharedStream checks that one injected source can feed
// several generators in sequence: the draws advance the stream, so the
// second topology differs from the first but the whole sequence is
// reproducible.
func TestRandInjectionSharedStream(t *testing.T) {
	build := func() []string {
		rng := rand.New(rand.NewSource(5))
		var out []string
		for i := 0; i < 3; i++ {
			o, err := MeshRand(10, 2, 2, 1, 0.2, rng)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, renderGraph(t, o.G))
		}
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replaying the stream changed topology %d", i)
		}
	}
	if a[0] == a[1] {
		t.Fatal("successive draws from one stream produced identical topologies")
	}
}

func TestRandInjectionNilRng(t *testing.T) {
	if _, err := MeshRand(4, 1, 1, 1, 0.1, nil); err == nil {
		t.Fatal("MeshRand accepted a nil rng")
	}
	if _, err := ClusteredRand(4, 5, 1, 1, 1, 0.1, nil); err == nil {
		t.Fatal("ClusteredRand accepted a nil rng")
	}
	if _, _, err := ChainRand(2, 3, 2, 1, 1, 1, 0.1, nil); err == nil {
		t.Fatal("ChainRand accepted a nil rng")
	}
}
