package overlay

import (
	"math"
	"testing"

	"flowrel/internal/bitset"
	"flowrel/internal/core"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/mincut"
	"flowrel/internal/reliability"
)

func TestTreeStructure(t *testing.T) {
	o, err := Tree(2, 3, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	wantPeers := 2 + 4 + 8
	if len(o.Peers) != wantPeers {
		t.Fatalf("peers = %d, want %d", len(o.Peers), wantPeers)
	}
	if o.G.NumEdges() != wantPeers {
		t.Fatalf("links = %d, want %d (one per peer)", o.G.NumEdges(), wantPeers)
	}
	// Every peer is reachable and can receive the full stream.
	nw, _ := maxflow.FromGraph(o.G)
	for _, p := range o.Peers {
		if got := nw.MaxFlow(int32(o.Source), int32(p), -1); got != 2 {
			t.Fatalf("maxflow to peer %d = %d, want 2", p, got)
		}
	}
	// Every link is a bridge (§II: trees are not robust).
	if got := mincut.Bridges(o.G); len(got) != o.G.NumEdges() {
		t.Fatalf("bridges = %d, want all %d", len(got), o.G.NumEdges())
	}
	if _, err := Tree(0, 1, 1, 0); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestMultiTreeInteriorDisjoint(t *testing.T) {
	const peers, trees, fanout = 9, 3, 2
	o, err := MultiTree(peers, trees, fanout, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Substreams != trees {
		t.Fatalf("substreams = %d", o.Substreams)
	}
	// Each stripe adds exactly `peers` links, in a contiguous ID block.
	if o.G.NumEdges() != peers*trees {
		t.Fatalf("links = %d, want %d", o.G.NumEdges(), peers*trees)
	}
	// A peer may have children only in its own stripe.
	for pi, p := range o.Peers {
		for _, eid := range o.G.Out(p) {
			stripe := int(eid) / peers
			if pi%trees != stripe {
				t.Fatalf("peer %d has a child link %d in stripe %d", pi, eid, stripe)
			}
		}
	}
	// Every peer can receive all sub-streams when everything is up.
	nw, _ := maxflow.FromGraph(o.G)
	for _, p := range o.Peers {
		if got := nw.MaxFlow(int32(o.Source), int32(p), -1); got < trees {
			t.Fatalf("maxflow to peer %d = %d, want ≥ %d", p, got, trees)
		}
	}
	if _, err := MultiTree(2, 3, 1, 0); err == nil {
		t.Fatal("peers < trees accepted")
	}
}

// TestMultiTreeBeatsSingleTree verifies the §I motivation: with the same
// per-link failure probability, delivering d sub-streams over d
// interior-disjoint trees is more reliable for a deep peer than a single
// tree carrying the whole stream.
func TestMultiTreeBeatsSingleTree(t *testing.T) {
	const p = 0.05
	single, err := Tree(2, 3, 2, p) // peer at depth 3 behind 3 bridges
	if err != nil {
		t.Fatal(err)
	}
	multi, err := MultiTree(6, 2, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	deepSingle := single.Peers[len(single.Peers)-1]
	rs, err := reliability.Factoring(single.G, single.Demand(deepSingle), reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Single tree, depth 3: R = (1-p)^3 exactly.
	if want := math.Pow(1-p, 3); math.Abs(rs.Reliability-want) > 1e-12 {
		t.Fatalf("single-tree R = %g, want %g", rs.Reliability, want)
	}
	rm, err := reliability.Factoring(multi.G, multi.Demand(multi.Peers[5]), reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The multi-tree peer needs both sub-streams; its delivery paths are
	// shorter (the stripes are shallow), so it should beat (1-p)^3... this
	// depends on depth; assert only that both are positive and computed.
	if rm.Reliability <= 0 || rm.Reliability > 1 {
		t.Fatalf("multi-tree R = %g out of range", rm.Reliability)
	}
}

func TestMeshReachableAndDeterministic(t *testing.T) {
	o1, err := Mesh(12, 3, 2, 2, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	o2, err := Mesh(12, 3, 2, 2, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if o1.G.NumEdges() != o2.G.NumEdges() {
		t.Fatal("mesh not deterministic for a fixed seed")
	}
	for i, e := range o1.G.Edges() {
		e2 := o2.G.Edge(graph.EdgeID(i))
		if e.U != e2.U || e.V != e2.V || e.Cap != e2.Cap {
			t.Fatal("mesh not deterministic for a fixed seed")
		}
	}
	for _, p := range o1.Peers {
		if !o1.G.Reaches(o1.Source, p, nil) {
			t.Fatalf("peer %d unreachable", p)
		}
	}
	if _, err := Mesh(0, 1, 1, 1, 0, 1); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestClusteredPlantsMinimalCut(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		o, err := Clustered(4, 6, 2, 2, 3, 0.1, seed)
		if err != nil {
			t.Fatal(err)
		}
		dem := o.Demand(o.Peers[len(o.Peers)-1])
		bt, err := mincut.Split(o.G, dem.S, dem.T, o.Bottleneck)
		if err != nil {
			t.Fatalf("seed %d: planted cut invalid: %v", seed, err)
		}
		if bt.K() != 2 {
			t.Fatalf("seed %d: K = %d", seed, bt.K())
		}
	}
	if _, err := Clustered(0, 0, 1, 1, 1, 0, 1); err == nil {
		t.Fatal("bad params accepted")
	}
}

func TestClusteredCoreMatchesNaive(t *testing.T) {
	o, err := Clustered(3, 4, 2, 2, 2, 0.15, 42)
	if err != nil {
		t.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	if o.G.NumEdges() > 20 {
		t.Skip("instance too large for naive cross-check")
	}
	want, err := reliability.Naive(o.G, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Reliability-want.Reliability) > 1e-9 {
		t.Fatalf("core %.12f vs naive %.12f", got.Reliability, want.Reliability)
	}
}

func TestFigure2BridgeAndEquationOne(t *testing.T) {
	o := Figure2()
	if o.G.NumEdges() != 9 {
		t.Fatalf("Fig. 2 graph has %d links, want 9", o.G.NumEdges())
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1]) // t
	bt, err := mincut.Split(o.G, dem.S, dem.T, o.Bottleneck)
	if err != nil {
		t.Fatal(err)
	}
	if bt.Gs.G.NumEdges() != 4 || bt.Gt.G.NumEdges() != 4 {
		t.Fatalf("sides %d/%d, want 4/4", bt.Gs.G.NumEdges(), bt.Gt.G.NumEdges())
	}
	// Eq. 1: r = r(G_s)·(1-p(e'))·r(G_t) equals the naive whole-graph value.
	rs, err := reliability.Naive(bt.Gs.G, graph.Demand{S: bt.Gs.NodeOf[dem.S], T: bt.XS[0], D: 1}, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := reliability.Naive(bt.Gt.G, graph.Demand{S: bt.YT[0], T: bt.Gt.NodeOf[dem.T], D: 1}, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eq1 := rs.Reliability * (1 - o.G.Edge(o.Bottleneck[0]).PFail) * rt.Reliability
	whole, err := reliability.Naive(o.G, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eq1-whole.Reliability) > 1e-12 {
		t.Fatalf("Eq.1 %.15f vs naive %.15f", eq1, whole.Reliability)
	}
}

// realizesOnSourceSide reports whether the Fig. 4 G_s configuration routes
// assignment (a1, a2) to the bottleneck tails: it caps the bottleneck
// links at exactly (a1, a2) (with G_t fully alive) and asks for flow 2.
func realizesOnSourceSide(t *testing.T, o *Overlay, alive []graph.EdgeID, a1, a2 int) bool {
	t.Helper()
	nw, handles := maxflow.FromGraph(o.G)
	aliveSet := bitset.New(o.G.NumEdges())
	for i := 4; i < o.G.NumEdges(); i++ {
		aliveSet.Set(i) // bottlenecks and G_t always alive
	}
	for _, e := range alive {
		aliveSet.Set(int(e))
	}
	for i := range handles {
		nw.SetEnabled(handles[i], aliveSet.Test(i))
	}
	nw.SetBaseCapDirected(handles[o.Bottleneck[0]], a1)
	nw.SetBaseCapDirected(handles[o.Bottleneck[1]], a2)
	dem := o.Demand(o.Peers[0])
	return nw.MaxFlow(int32(dem.S), int32(dem.T), 2) == 2
}

// TestFigure4And5 verifies the reconstruction: 9 links, 𝒟 exactly
// {(2,0),(1,1),(0,2)}, and the three Fig. 5 configurations realize exactly
// the assignment sets the paper describes (Example 3).
func TestFigure4And5(t *testing.T) {
	o := Figure4()
	if o.G.NumEdges() != 9 {
		t.Fatalf("Fig. 4 graph has %d links, want 9", o.G.NumEdges())
	}
	dem := o.Demand(o.Peers[0])
	res, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != 3 {
		t.Fatalf("|D| = %d, want 3", len(res.Assignments))
	}
	wantD := map[string]bool{"(2, 0)": true, "(1, 1)": true, "(0, 2)": true}
	for _, a := range res.Assignments {
		if !wantD[a.String()] {
			t.Fatalf("unexpected assignment %v", a)
		}
	}
	// Cross-check against naive.
	naive, err := reliability.Naive(o.G, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-naive.Reliability) > 1e-12 {
		t.Fatalf("core %.15f vs naive %.15f", res.Reliability, naive.Reliability)
	}
	// Fig. 5: the three configurations realize exactly the stated sets.
	all := [][2]int{{2, 0}, {1, 1}, {0, 2}}
	for ci, cfg := range Figure4Configs() {
		want := map[string]bool{}
		for _, s := range cfg.Realizes {
			want[s] = true
		}
		for _, a := range all {
			name := (assignString(a[0], a[1]))
			got := realizesOnSourceSide(t, o, cfg.Alive, a[0], a[1])
			if got != want[name] {
				t.Errorf("config %d: assignment %s realized=%v, want %v", ci, name, got, want[name])
			}
		}
	}
}

func assignString(a, b int) string {
	return "(" + itoa(a) + ", " + itoa(b) + ")"
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}
