package overlay

import (
	"math"
	"testing"

	"flowrel/internal/chain"
	"flowrel/internal/reliability"
)

func TestChainOverlayValidates(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		o, cuts, err := Chain(3, 3, 2, 2, 2, 2, 0.1, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(cuts) != 2 {
			t.Fatalf("seed %d: %d cuts", seed, len(cuts))
		}
		dem := o.Demand(o.Peers[len(o.Peers)-1])
		res, err := chain.Solve(o.G, dem, cuts, chain.Options{})
		if err != nil {
			t.Fatalf("seed %d: planted chain invalid: %v", seed, err)
		}
		if res.Reliability < 0 || res.Reliability > 1 {
			t.Fatalf("seed %d: R = %g", seed, res.Reliability)
		}
	}
}

func TestChainOverlayMatchesNaive(t *testing.T) {
	o, cuts, err := Chain(3, 2, 1, 2, 2, 2, 0.15, 4)
	if err != nil {
		t.Fatal(err)
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	if o.G.NumEdges() > 20 {
		t.Skip("instance too large for naive")
	}
	want, err := reliability.Naive(o.G, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := chain.Solve(o.G, dem, cuts, chain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Reliability-want.Reliability) > 1e-9 {
		t.Fatalf("chain %.12f vs naive %.12f", got.Reliability, want.Reliability)
	}
}

func TestChainOverlayBadParams(t *testing.T) {
	if _, _, err := Chain(1, 2, 1, 1, 1, 1, 0.1, 1); err == nil {
		t.Fatal("blocks < 2 accepted")
	}
	if _, _, err := Chain(2, 0, 1, 1, 1, 1, 0.1, 1); err == nil {
		t.Fatal("blockNodes < 1 accepted")
	}
}

func TestChainOverlaySingleNodeBlocks(t *testing.T) {
	o, cuts, err := Chain(3, 1, 0, 1, 1, 1, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Pure series of cut links: R = (1-p)^(number of cut links).
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	res, err := chain.Solve(o.G, dem, cuts, chain.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-0.8*0.8) > 1e-12 {
		t.Fatalf("R = %g, want 0.64", res.Reliability)
	}
}
