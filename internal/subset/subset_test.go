package subset

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func naiveSupersetZeta(f []float64, n int) []float64 {
	out := make([]float64, len(f))
	for x := range out {
		for y := range f {
			if y&x == x { // y ⊇ x
				out[x] += f[y]
			}
		}
	}
	return out
}

func naiveSubsetZeta(f []float64, n int) []float64 {
	out := make([]float64, len(f))
	for x := range out {
		for y := range f {
			if y&x == y { // y ⊆ x
				out[x] += f[y]
			}
		}
	}
	return out
}

func randVec(rng *rand.Rand, n int) []float64 {
	f := make([]float64, 1<<uint(n))
	for i := range f {
		f[i] = rng.Float64()*2 - 1
	}
	return f
}

func almostEq(a, b []float64) bool {
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			return false
		}
	}
	return true
}

func TestSupersetZetaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for n := 0; n <= 6; n++ {
		f := randVec(rng, n)
		want := naiveSupersetZeta(f, n)
		got := append([]float64(nil), f...)
		SupersetZeta(got, n)
		if !almostEq(got, want) {
			t.Fatalf("n=%d: zeta mismatch", n)
		}
	}
}

func TestSubsetZetaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for n := 0; n <= 6; n++ {
		f := randVec(rng, n)
		want := naiveSubsetZeta(f, n)
		got := append([]float64(nil), f...)
		SubsetZeta(got, n)
		if !almostEq(got, want) {
			t.Fatalf("n=%d: subset zeta mismatch", n)
		}
	}
}

func TestMobiusInvertsZeta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 8; n++ {
		f := randVec(rng, n)
		g := append([]float64(nil), f...)
		SupersetZeta(g, n)
		SupersetMobius(g, n)
		if !almostEq(g, f) {
			t.Fatalf("n=%d: Möbius did not invert zeta", n)
		}
	}
}

func TestLengthPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zeta":   func() { SupersetZeta(make([]float64, 3), 2) },
		"mobius": func() { SupersetMobius(make([]float64, 5), 2) },
		"subset": func() { SubsetZeta(make([]float64, 5), 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestInclusionExclusionAgainstSets checks P(∪A_b) computed by
// inclusion–exclusion against a direct union over an explicit finite
// probability space.
func TestInclusionExclusionAgainstSets(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const nEvents = 4
	const nOutcomes = 12
	for trial := 0; trial < 100; trial++ {
		// Random membership: outcome o belongs to event b?
		member := make([][]bool, nEvents)
		for b := range member {
			member[b] = make([]bool, nOutcomes)
			for o := range member[b] {
				member[b][o] = rng.Intn(2) == 0
			}
		}
		// Random outcome probabilities.
		w := make([]float64, nOutcomes)
		sum := 0.0
		for o := range w {
			w[o] = rng.Float64()
			sum += w[o]
		}
		for o := range w {
			w[o] /= sum
		}
		// pAll[X] = P(outcome in all events of X).
		pAll := make([]float64, 1<<nEvents)
		for x := 0; x < 1<<nEvents; x++ {
			for o := 0; o < nOutcomes; o++ {
				in := true
				for b := 0; b < nEvents; b++ {
					if x&(1<<b) != 0 && !member[b][o] {
						in = false
						break
					}
				}
				if in {
					pAll[x] += w[o]
				}
			}
		}
		u := uint64(rng.Intn(1 << nEvents))
		got := InclusionExclusion(pAll, u)
		// direct union
		want := 0.0
		for o := 0; o < nOutcomes; o++ {
			for b := 0; b < nEvents; b++ {
				if u&(1<<b) != 0 && member[b][o] {
					want += w[o]
					break
				}
			}
		}
		if math.Abs(got-want) > 1e-10 {
			t.Fatalf("trial %d: IE %g vs direct %g (u=%b)", trial, got, want, u)
		}
	}
}

func TestInclusionExclusionEmpty(t *testing.T) {
	if got := InclusionExclusion([]float64{1}, 0); got != 0 {
		t.Fatalf("empty union = %g, want 0", got)
	}
}

func TestSubmasksEnumeratesAll(t *testing.T) {
	u := uint64(0b10110)
	var got []uint64
	Submasks(u, func(x uint64) { got = append(got, x) })
	if len(got) != 1<<bits.OnesCount64(u) {
		t.Fatalf("visited %d submasks, want %d", len(got), 1<<bits.OnesCount64(u))
	}
	seen := map[uint64]bool{}
	for _, x := range got {
		if x&^u != 0 {
			t.Fatalf("%b is not a submask of %b", x, u)
		}
		if seen[x] {
			t.Fatalf("submask %b repeated", x)
		}
		seen[x] = true
	}
}

func TestPopcountParity(t *testing.T) {
	if PopcountParity(0) != 1 || PopcountParity(0b111) != -1 || PopcountParity(0b11) != 1 {
		t.Fatal("parity wrong")
	}
}

// Property: superset zeta then evaluating IE over full mask equals
// 1 - f'[0] where f' is the "no event" aggregation — checked indirectly:
// IE over U computed from zeta'd point masses equals P(mask intersects U).
func TestQuickIEFromZeta(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		// Random distribution over realized-assignment masks.
		p := make([]float64, 1<<uint(n))
		sum := 0.0
		for i := range p {
			p[i] = rng.Float64()
			sum += p[i]
		}
		for i := range p {
			p[i] /= sum
		}
		// zeta → q[X] = P(realized ⊇ X)
		q := append([]float64(nil), p...)
		SupersetZeta(q, n)
		u := uint64(rng.Intn(1 << uint(n)))
		got := InclusionExclusion(q, u)
		want := 0.0
		for m := range p {
			if uint64(m)&u != 0 {
				want += p[m]
			}
		}
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func naiveOrZeta(f []uint64) []uint64 {
	out := make([]uint64, len(f))
	for x := range out {
		for y := range f {
			if y&x == y { // y ⊆ x
				out[x] |= f[y]
			}
		}
	}
	return out
}

func randWords(rng *rand.Rand, n int) []uint64 {
	f := make([]uint64, 1<<uint(n))
	for i := range f {
		// Sparse words: most lattice points realize nothing, as in the
		// realization arrays this transform closes.
		if rng.Intn(4) == 0 {
			f[i] = rng.Uint64() & rng.Uint64() & rng.Uint64()
		}
	}
	return f
}

func TestOrZetaMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 8; n++ {
		f := randWords(rng, n)
		want := naiveOrZeta(f)
		got := append([]uint64(nil), f...)
		OrZeta(got, n)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d mask %#x: OrZeta %#x, naive %#x", n, i, got[i], want[i])
			}
		}
	}
}

// TestOrZetaLayerComposesToOrZeta drives OrZetaLayer the way the frontier
// engine does — every popcount layer in ascending order, each layer split
// into arbitrary rank ranges — and checks the result is the full upward
// closure: immediate-submask propagation composes transitively once the
// layers below are closed.
func TestOrZetaLayerComposesToOrZeta(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 0; n <= 8; n++ {
		f := randWords(rng, n)
		want := append([]uint64(nil), f...)
		OrZeta(want, n)
		got := append([]uint64(nil), f...)
		for layer := 0; layer <= n; layer++ {
			// Masks of one layer in increasing numeric order, chunked at a
			// random grain to mimic SplitLayer.
			var masks []uint64
			for m := uint64(0); m < uint64(len(got)); m++ {
				if bits.OnesCount64(m) == layer {
					masks = append(masks, m)
				}
			}
			for lo := 0; lo < len(masks); {
				count := 1 + rng.Intn(len(masks)-lo)
				OrZetaLayer(got, masks[lo], uint64(count))
				lo += count
			}
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d mask %#x: layered %#x, full %#x", n, i, got[i], want[i])
			}
		}
	}
}

func TestOrZetaPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	OrZeta(make([]uint64, 3), 2)
}

// TestSupersetZetaBlockLaneIdentity: each lane of the block transform
// must be bit-identical to running the scalar transform on that lane
// alone — the contract the transposed evaluate kernels build on.
func TestSupersetZetaBlockLaneIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for n := 0; n <= 6; n++ {
		blocks := make([][8]float64, 1<<uint(n))
		lanes := make([][]float64, 8)
		for l := range lanes {
			lanes[l] = make([]float64, len(blocks))
		}
		for m := range blocks {
			for l := 0; l < 8; l++ {
				v := rng.Float64()*2 - 1
				blocks[m][l] = v
				lanes[l][m] = v
			}
		}
		SupersetZetaBlock(blocks, n)
		for l := range lanes {
			SupersetZeta(lanes[l], n)
			for m := range blocks {
				if blocks[m][l] != lanes[l][m] {
					t.Fatalf("n=%d lane %d mask %#x: block %.17g, scalar %.17g", n, l, m, blocks[m][l], lanes[l][m])
				}
			}
		}
		one := make([][1]float64, 1<<uint(n))
		for m := range one {
			one[m][0] = lanes[0][m]
		}
		SupersetZetaBlock(one, n) // the single-lane instantiation compiles and runs
	}
}

func TestSupersetZetaBlockPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SupersetZetaBlock(make([][8]float64, 3), 2)
}
