// Package subset implements transforms over the subset lattice of a small
// ground set (≤ 62 elements addressed by bit masks), used by the paper's
// ACCUMULATION procedure: the probability that a component realizes *all*
// assignments in a set X is a superset sum over realized-assignment masks,
// and the probability of realizing *at least one* follows by
// inclusion–exclusion.
package subset

import "math/bits"

// SupersetZeta transforms f (indexed by masks over n elements) in place so
// that on return f[X] = Σ_{Y ⊇ X} f_in[Y]. O(n·2^n).
func SupersetZeta(f []float64, n int) {
	if len(f) != 1<<uint(n) {
		panic("subset: slice length must be 2^n")
	}
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := 0; m < len(f); m++ {
			if m&bit == 0 {
				f[m] += f[m|bit]
			}
		}
	}
}

// SupersetMobius inverts SupersetZeta in place:
// on return f[X] = Σ_{Y ⊇ X} (-1)^{|Y\X|} f_in[Y]. O(n·2^n).
func SupersetMobius(f []float64, n int) {
	if len(f) != 1<<uint(n) {
		panic("subset: slice length must be 2^n")
	}
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := 0; m < len(f); m++ {
			if m&bit == 0 {
				f[m] -= f[m|bit]
			}
		}
	}
}

// SubsetZeta transforms f in place so that f[X] = Σ_{Y ⊆ X} f_in[Y].
func SubsetZeta(f []float64, n int) {
	if len(f) != 1<<uint(n) {
		panic("subset: slice length must be 2^n")
	}
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := 0; m < len(f); m++ {
			if m&bit != 0 {
				f[m] += f[m&^bit]
			}
		}
	}
}

// InclusionExclusion computes P(∪_{b∈U} A_b) from pAll, where pAll[X] =
// P(∩_{b∈X} A_b) for every non-empty X ⊆ U; U is given as a mask over the
// ground set and pAll is indexed by ground-set masks. It enumerates the
// non-empty subsets of U directly: Σ (-1)^{|X|+1} pAll[X]. O(2^|U|).
func InclusionExclusion(pAll []float64, u uint64) float64 {
	if u == 0 {
		return 0
	}
	total := 0.0
	// Enumerate non-empty submasks of u.
	//flowrelvet:unbounded leaf lattice kernel: |U| ≤ k ≤ MaxBottleneck, so the walk is at most 2^k ≈ 8 steps; the enclosing engine charges its Ctl per bottleneck configuration.
	for x := u; ; x = (x - 1) & u {
		if x != 0 {
			if bits.OnesCount64(x)&1 == 1 {
				total += pAll[x]
			} else {
				total -= pAll[x]
			}
		}
		if x == 0 {
			break
		}
	}
	return total
}

// Submasks calls visit for every submask of u (including 0 and u itself),
// in decreasing numeric order.
func Submasks(u uint64, visit func(x uint64)) {
	//flowrelvet:unbounded leaf lattice kernel shared by every engine: |u| is an assignment-class mask bounded by MaxAssignmentSet, and the caller charges its Ctl around the enclosing enumeration.
	for x := u; ; x = (x - 1) & u {
		visit(x)
		if x == 0 {
			break
		}
	}
}

// PopcountParity returns +1.0 for even popcount, -1.0 for odd.
func PopcountParity(x uint64) float64 {
	if bits.OnesCount64(x)&1 == 1 {
		return -1
	}
	return 1
}
