// Package subset implements transforms over the subset lattice of a small
// ground set (≤ 62 elements addressed by bit masks), used by the paper's
// ACCUMULATION procedure: the probability that a component realizes *all*
// assignments in a set X is a superset sum over realized-assignment masks,
// and the probability of realizing *at least one* follows by
// inclusion–exclusion.
package subset

import "math/bits"

// SupersetZeta transforms f (indexed by masks over n elements) in place so
// that on return f[X] = Σ_{Y ⊇ X} f_in[Y]. O(n·2^n).
func SupersetZeta(f []float64, n int) {
	if len(f) != 1<<uint(n) {
		panic("subset: slice length must be 2^n")
	}
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := 0; m < len(f); m++ {
			if m&bit == 0 {
				f[m] += f[m|bit]
			}
		}
	}
}

// SupersetMobius inverts SupersetZeta in place:
// on return f[X] = Σ_{Y ⊇ X} (-1)^{|Y\X|} f_in[Y]. O(n·2^n).
func SupersetMobius(f []float64, n int) {
	if len(f) != 1<<uint(n) {
		panic("subset: slice length must be 2^n")
	}
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := 0; m < len(f); m++ {
			if m&bit == 0 {
				f[m] -= f[m|bit]
			}
		}
	}
}

// SubsetZeta transforms f in place so that f[X] = Σ_{Y ⊆ X} f_in[Y].
func SubsetZeta(f []float64, n int) {
	if len(f) != 1<<uint(n) {
		panic("subset: slice length must be 2^n")
	}
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := 0; m < len(f); m++ {
			if m&bit != 0 {
				f[m] += f[m&^bit]
			}
		}
	}
}

// InclusionExclusion computes P(∪_{b∈U} A_b) from pAll, where pAll[X] =
// P(∩_{b∈X} A_b) for every non-empty X ⊆ U; U is given as a mask over the
// ground set and pAll is indexed by ground-set masks. It enumerates the
// non-empty subsets of U directly: Σ (-1)^{|X|+1} pAll[X]. O(2^|U|).
func InclusionExclusion(pAll []float64, u uint64) float64 {
	if u == 0 {
		return 0
	}
	total := 0.0
	// Enumerate non-empty submasks of u.
	//flowrelvet:unbounded leaf lattice kernel: |U| ≤ k ≤ MaxBottleneck, so the walk is at most 2^k ≈ 8 steps; the enclosing engine charges its Ctl per bottleneck configuration (reviewed: PR-3).
	for x := u; ; x = (x - 1) & u {
		if x != 0 {
			if bits.OnesCount64(x)&1 == 1 {
				total += pAll[x]
			} else {
				total -= pAll[x]
			}
		}
		if x == 0 {
			break
		}
	}
	return total
}

// Submasks calls visit for every submask of u (including 0 and u itself),
// in decreasing numeric order.
func Submasks(u uint64, visit func(x uint64)) {
	//flowrelvet:unbounded leaf lattice kernel shared by every engine: |u| is an assignment-class mask bounded by MaxAssignmentSet, and the caller charges its Ctl around the enclosing enumeration (reviewed: PR-3).
	for x := u; ; x = (x - 1) & u {
		visit(x)
		if x == 0 {
			break
		}
	}
}

// OrZeta transforms f (indexed by masks over n elements, each entry one
// uint64 word of up to 64 parallel indicator bits) in place so that on
// return f[X] = OR_{Y ⊆ X} f_in[Y] — the upward closure of all 64
// indicator sets in a single O(n·2^n) pass. It is the bitwise sibling of
// SupersetZeta: a realization engine that stores "assignment j holds under
// configuration X" as bit j of f[X] closes every assignment's monotone
// feasibility set at once.
func OrZeta(f []uint64, n int) {
	if len(f) != 1<<uint(n) {
		panic("subset: slice length must be 2^n")
	}
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := 0; m < len(f); m++ {
			if m&bit != 0 {
				f[m] |= f[m&^bit]
			}
		}
	}
}

// OrZetaLayer propagates one popcount layer of the upward closure: for
// `count` masks starting at `first` (all of first's popcount, walked in
// increasing numeric order), it ORs the word of every immediate submask
// into f[mask]. When the layers below first's are already upward-closed,
// the visited entries become f[X] = OR_{Y ⊂ X} f_in[Y] restricted to
// strict submasks — exactly the closure a popcount-ascending frontier
// needs before deciding layer |first| itself. O(count·|first|).
func OrZetaLayer(f []uint64, first uint64, count uint64) {
	mask := first
	for i := uint64(0); i < count; i++ {
		if i > 0 {
			// Gosper's hack: next mask of the same popcount. Inline so
			// the walk stays self-contained (and safe for mask 0, which
			// never takes this branch: layer 0 has a single mask).
			c := mask & (^mask + 1)
			r := mask + c
			mask = (((mask ^ r) >> 2) / c) | r
		}
		w := f[mask]
		for rem := mask; rem != 0; rem &= rem - 1 {
			w |= f[mask^(rem&(^rem+1))]
		}
		f[mask] = w
	}
}

// Block is a fixed-width lane group for the transposed (structure-of-
// arrays) kernels: one lattice entry holding the same coordinate of
// several independent probability scenarios. The two widths are the
// scalar kernel (one lane) and the batch kernel (eight lanes — one cache
// line per lattice entry). Each lane is arithmetically independent, so a
// lane of a Block transform computes bit-for-bit what the scalar
// transform computes on that lane's scenario.
type Block interface {
	[1]float64 | [8]float64
}

// SupersetZetaBlock is SupersetZeta over lane blocks: f (indexed by masks
// over n elements, each entry a Block of independent lanes) is
// transformed in place so that on return f[X][l] = Σ_{Y ⊇ X} f_in[Y][l]
// for every lane l. The loop structure — and therefore the floating-point
// addition order within each lane — is exactly SupersetZeta's, so lane l
// of the result is bit-identical to running the scalar transform on lane
// l alone. O(n·2^n·lanes).
func SupersetZetaBlock[B Block](f []B, n int) {
	if len(f) != 1<<uint(n) {
		panic("subset: slice length must be 2^n")
	}
	lanes := len(f[0])
	for i := 0; i < n; i++ {
		bit := 1 << uint(i)
		for m := 0; m < len(f); m++ {
			if m&bit == 0 {
				for l := 0; l < lanes; l++ {
					f[m][l] += f[m|bit][l]
				}
			}
		}
	}
}

// PopcountParity returns +1.0 for even popcount, -1.0 for odd.
func PopcountParity(x uint64) float64 {
	if bits.OnesCount64(x)&1 == 1 {
		return -1
	}
	return 1
}
