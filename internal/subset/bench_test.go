package subset

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkSupersetZeta(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10, 16, 20} {
		src := make([]float64, 1<<uint(n))
		for i := range src {
			src[i] = rng.Float64()
		}
		buf := make([]float64, len(src))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				SupersetZeta(buf, n)
			}
		})
	}
}

func BenchmarkInclusionExclusion(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{8, 12, 16} {
		q := make([]float64, 1<<uint(n))
		for i := range q {
			q[i] = rng.Float64()
		}
		u := uint64(1)<<uint(n) - 1
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				InclusionExclusion(q, u)
			}
		})
	}
}

func BenchmarkOrZeta(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{10, 16, 20} {
		src := make([]uint64, 1<<uint(n))
		for i := range src {
			if rng.Intn(4) == 0 {
				src[i] = rng.Uint64()
			}
		}
		buf := make([]uint64, len(src))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(buf, src)
				OrZeta(buf, n)
			}
		})
	}
}
