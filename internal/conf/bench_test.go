package conf

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchTable(m int) *Table {
	rng := rand.New(rand.NewSource(int64(m)))
	p := make([]float64, m)
	for i := range p {
		p[i] = 0.01 + rng.Float64()*0.9
	}
	return NewTable(p)
}

// BenchmarkIter compares plain binary iteration (per-mask probability is
// O(m)) against the Gray-code walk (incremental probability update).
func BenchmarkIter(b *testing.B) {
	for _, m := range []int{12, 18} {
		t := benchTable(m)
		b.Run(fmt.Sprintf("binary/m=%d", m), func(b *testing.B) {
			sink := 0.0
			for i := 0; i < b.N; i++ {
				_ = t.Iter(func(_ Mask, p float64) { sink += p })
			}
			_ = sink
		})
		b.Run(fmt.Sprintf("gray/m=%d", m), func(b *testing.B) {
			sink := 0.0
			for i := 0; i < b.N; i++ {
				_ = t.IterGray(func(_ Mask, _ int, p float64) { sink += p })
			}
			_ = sink
		})
	}
}
