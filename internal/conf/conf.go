// Package conf handles failure configurations: subsets of links that are
// simultaneously operational, their occurrence probabilities (Eq. 2 of the
// paper), and iteration orders over the 2^m configuration space (plain
// binary counting and Gray code, the latter enabling incremental max-flow
// maintenance).
package conf

import (
	"fmt"
	"math/big"
	"math/bits"
)

// MaxEnumEdges is the widest link set the mask-based enumeration engines
// accept. Beyond this, exhaustive enumeration is infeasible anyway.
const MaxEnumEdges = 63

// ErrTooManyEdges is returned when an enumeration engine is asked to
// enumerate more than MaxEnumEdges links.
type ErrTooManyEdges struct {
	N     int
	Where string
}

func (e *ErrTooManyEdges) Error() string {
	return fmt.Sprintf("conf: %s has %d links; exhaustive enumeration supports at most %d", e.Where, e.N, MaxEnumEdges)
}

// Mask is a failure configuration over m ≤ 63 links: bit i set means link i
// is operational.
type Mask = uint64

// Prob returns the occurrence probability of configuration mask over the m
// links with failure probabilities p: Π_{alive}(1-p) · Π_{dead}p (Eq. 2).
func Prob(p []float64, mask Mask) float64 {
	pr := 1.0
	for i, pi := range p {
		if mask&(1<<uint(i)) != 0 {
			pr *= 1 - pi
		} else {
			pr *= pi
		}
	}
	return pr
}

// ProbRat is Prob in exact rational arithmetic; p gives each link's failure
// probability as a rational.
func ProbRat(p []*big.Rat, mask Mask) *big.Rat {
	pr := new(big.Rat).SetInt64(1)
	one := new(big.Rat).SetInt64(1)
	tmp := new(big.Rat)
	for i, pi := range p {
		if mask&(1<<uint(i)) != 0 {
			tmp.Sub(one, pi)
			pr.Mul(pr, tmp)
		} else {
			pr.Mul(pr, pi)
		}
	}
	return pr
}

// Table precomputes, for each link, the pair (p, 1-p) so that engines can
// update a running product incrementally along a Gray-code walk.
type Table struct {
	PFail []float64
	PLive []float64
}

// NewTable builds a Table from failure probabilities.
func NewTable(pFail []float64) *Table {
	t := &Table{PFail: append([]float64(nil), pFail...), PLive: make([]float64, len(pFail))}
	for i, p := range pFail {
		t.PLive[i] = 1 - p
	}
	return t
}

// Prob returns the probability of the configuration.
func (t *Table) Prob(mask Mask) float64 {
	pr := 1.0
	for i := range t.PFail {
		if mask&(1<<uint(i)) != 0 {
			pr *= t.PLive[i]
		} else {
			pr *= t.PFail[i]
		}
	}
	return pr
}

// GrayMask returns the i-th mask of the reflected binary Gray code.
func GrayMask(i uint64) Mask { return i ^ (i >> 1) }

// GrayFlip returns the index of the bit that changes between Gray mask i-1
// and Gray mask i (i ≥ 1): the number of trailing zeros of i.
func GrayFlip(i uint64) int { return bits.TrailingZeros64(i) }

// Iter visits all 2^m configurations in plain binary order, calling
// visit(mask, prob). m must be ≤ MaxEnumEdges.
func (t *Table) Iter(visit func(mask Mask, prob float64)) error {
	m := len(t.PFail)
	if m > MaxEnumEdges {
		return &ErrTooManyEdges{N: m, Where: "configuration space"}
	}
	total := uint64(1) << uint(m)
	for i := uint64(0); i < total; i++ {
		visit(i, t.Prob(i))
	}
	return nil
}

// IterGray visits all 2^m configurations in Gray-code order. The first call
// receives mask 0 (all links failed) with flip = -1; each subsequent call
// receives the next Gray mask and the index of the single link whose state
// flipped, along with the configuration probability (maintained
// incrementally with one multiply and one divide per step; probabilities
// with p = 0 links fall back to recomputation to avoid dividing by zero).
func (t *Table) IterGray(visit func(mask Mask, flip int, prob float64)) error {
	m := len(t.PFail)
	if m > MaxEnumEdges {
		return &ErrTooManyEdges{N: m, Where: "configuration space"}
	}
	total := uint64(1) << uint(m)
	prob := t.Prob(0)
	anyZero := false
	for _, p := range t.PFail {
		if p == 0 {
			anyZero = true
			break
		}
	}
	visit(0, -1, prob)
	mask := Mask(0)
	for i := uint64(1); i < total; i++ {
		flip := GrayFlip(i)
		mask ^= 1 << uint(flip)
		switch {
		case anyZero, i&1023 == 0:
			// Links with p = 0 forbid the divide; and a periodic full
			// recomputation caps floating-point drift along the walk.
			prob = t.Prob(mask)
		case mask&(1<<uint(flip)) != 0:
			prob = prob / t.PFail[flip] * t.PLive[flip]
		default:
			prob = prob / t.PLive[flip] * t.PFail[flip]
		}
		visit(mask, flip, prob)
	}
	return nil
}

// EnumChunks is the maximum chunk count SplitEnum produces: keeping the
// chunking independent of the worker count makes per-chunk partial sums —
// and therefore the floating-point result — bit-identical for any
// parallelism setting.
const EnumChunks = 64

// minChunkConfigs keeps chunks from shrinking below a useful grain: a
// per-chunk network clone must amortize over enough configurations.
const minChunkConfigs = 64

// SplitEnum partitions the 2^m configuration space for the enumeration
// engines: up to EnumChunks chunks, never smaller than minChunkConfigs
// configurations each, and a function of m alone (never of the worker
// count) so results are deterministic under any parallelism.
func SplitEnum(m int) [][2]uint64 {
	chunks := EnumChunks
	if total := uint64(1) << uint(m); uint64(chunks)*minChunkConfigs > total {
		chunks = int(total / minChunkConfigs)
		if chunks < 1 {
			chunks = 1
		}
	}
	return Split(m, chunks)
}

// Split partitions the 2^m configuration space into `chunks` contiguous
// ranges for parallel enumeration, returning [start, end) index pairs.
// Empty ranges are omitted.
func Split(m int, chunks int) [][2]uint64 {
	return splitRange(uint64(1)<<uint(m), chunks)
}

// splitRange partitions [0, total) into up to `chunks` contiguous
// near-equal ranges, earlier ranges taking the remainder. Empty ranges
// are omitted.
func splitRange(total uint64, chunks int) [][2]uint64 {
	if chunks < 1 {
		chunks = 1
	}
	if uint64(chunks) > total {
		chunks = int(total)
	}
	if chunks < 1 {
		chunks = 1
	}
	out := make([][2]uint64, 0, chunks)
	per := total / uint64(chunks)
	rem := total % uint64(chunks)
	var start uint64
	for c := 0; c < chunks; c++ {
		n := per
		if uint64(c) < rem {
			n++
		}
		if n == 0 {
			continue
		}
		out = append(out, [2]uint64{start, start + n})
		start += n
	}
	return out
}

// Binomial returns C(n, k) for 0 ≤ n ≤ MaxEnumEdges (and 0 when k is out
// of range). Computed by a Pascal-row recurrence: every intermediate value
// is itself a binomial coefficient ≤ C(63, 31) < 2^63, so the arithmetic
// cannot overflow where a multiply-then-divide unranking would.
func Binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	row := make([]uint64, k+1)
	row[0] = 1
	for i := 1; i <= n; i++ {
		hi := k
		if i < hi {
			hi = i
		}
		for j := hi; j >= 1; j-- {
			row[j] += row[j-1]
		}
	}
	return row[k]
}

// NextOfLayer returns the next mask after v with the same popcount in
// increasing numeric order (Gosper's hack). The caller bounds the walk;
// behaviour past the last mask of the layer is undefined.
func NextOfLayer(v Mask) Mask {
	c := v & (^v + 1)
	r := v + c
	return (((v ^ r) >> 2) / c) | r
}

// NthOfLayer returns the rank-th (0-based) m-bit mask with popcount k, in
// increasing numeric order. This is combinatorial-number-system unranking:
// masks with k bits sorted numerically coincide with colexicographic order
// of the bit-position sets, whose rank is Σ_{i=1..k} C(pos_i, i) over the
// ascending positions, so the digits peel off greedily from the top.
// rank must be < C(m, k).
func NthOfLayer(m, k int, rank uint64) Mask {
	var mask Mask
	hi := m - 1
	for j := k; j >= 1; j-- {
		c := hi
		for Binomial(c, j) > rank {
			c--
		}
		mask |= 1 << uint(c)
		rank -= Binomial(c, j)
		hi = c - 1
	}
	return mask
}

// SplitLayer partitions the C(m, layer) masks of one popcount layer into
// contiguous rank ranges under the same determinism policy as SplitEnum:
// up to EnumChunks chunks, never smaller than minChunkConfigs masks, and a
// function of (m, layer) alone so layered enumeration stays bit-identical
// for any worker count. Ranks convert to masks via NthOfLayer/NextOfLayer.
func SplitLayer(m, layer int) [][2]uint64 {
	total := Binomial(m, layer)
	chunks := EnumChunks
	if uint64(chunks)*minChunkConfigs > total {
		chunks = int(total / minChunkConfigs)
		if chunks < 1 {
			chunks = 1
		}
	}
	return splitRange(total, chunks)
}
