package conf

import (
	"math"
	"math/big"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProbBasic(t *testing.T) {
	p := []float64{0.1, 0.5}
	cases := []struct {
		mask Mask
		want float64
	}{
		{0b00, 0.1 * 0.5},
		{0b01, 0.9 * 0.5},
		{0b10, 0.1 * 0.5},
		{0b11, 0.9 * 0.5},
	}
	for _, c := range cases {
		if got := Prob(p, c.mask); math.Abs(got-c.want) > 1e-15 {
			t.Errorf("Prob(%b) = %g, want %g", c.mask, got, c.want)
		}
	}
}

func TestProbSumsToOne(t *testing.T) {
	p := []float64{0.1, 0.25, 0.7, 0.01}
	tab := NewTable(p)
	sum := 0.0
	if err := tab.Iter(func(_ Mask, pr float64) { sum += pr }); err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probabilities sum to %g, want 1", sum)
	}
}

func TestProbRatMatchesFloat(t *testing.T) {
	pf := []float64{0.1, 0.25, 0.5}
	pr := []*big.Rat{big.NewRat(1, 10), big.NewRat(1, 4), big.NewRat(1, 2)}
	for mask := Mask(0); mask < 8; mask++ {
		got, _ := ProbRat(pr, mask).Float64()
		want := Prob(pf, mask)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("mask %b: rat %g float %g", mask, got, want)
		}
	}
}

func TestGrayCodeProperties(t *testing.T) {
	const m = 10
	seen := make(map[Mask]bool)
	prev := GrayMask(0)
	seen[prev] = true
	for i := uint64(1); i < 1<<m; i++ {
		g := GrayMask(i)
		if bits.OnesCount64(prev^g) != 1 {
			t.Fatalf("Gray step %d flips %d bits", i, bits.OnesCount64(prev^g))
		}
		if flip := GrayFlip(i); prev^g != 1<<uint(flip) {
			t.Fatalf("GrayFlip(%d) = %d, but diff = %b", i, flip, prev^g)
		}
		if seen[g] {
			t.Fatalf("Gray mask %b repeated", g)
		}
		seen[g] = true
		prev = g
	}
	if len(seen) != 1<<m {
		t.Fatalf("visited %d masks, want %d", len(seen), 1<<m)
	}
}

func TestIterGrayProbMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := make([]float64, 12)
	for i := range p {
		p[i] = rng.Float64() * 0.95
	}
	p[3] = 0 // exercise the zero-probability fallback
	tab := NewTable(p)
	count := 0
	err := tab.IterGray(func(mask Mask, flip int, prob float64) {
		want := tab.Prob(mask)
		if math.Abs(prob-want) > 1e-12 {
			t.Fatalf("mask %b: incremental %g, direct %g", mask, prob, want)
		}
		if count == 0 && (mask != 0 || flip != -1) {
			t.Fatalf("first visit mask=%b flip=%d", mask, flip)
		}
		count++
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1<<12 {
		t.Fatalf("visited %d configurations, want %d", count, 1<<12)
	}
}

func TestIterGrayDriftResync(t *testing.T) {
	// No zero probabilities: the incremental path with periodic resync.
	rng := rand.New(rand.NewSource(7))
	p := make([]float64, 14)
	for i := range p {
		p[i] = 0.01 + rng.Float64()*0.9
	}
	tab := NewTable(p)
	worst := 0.0
	if err := tab.IterGray(func(mask Mask, _ int, prob float64) {
		want := tab.Prob(mask)
		rel := math.Abs(prob-want) / math.Max(want, 1e-300)
		if rel > worst {
			worst = rel
		}
	}); err != nil {
		t.Fatal(err)
	}
	if worst > 1e-10 {
		t.Fatalf("worst relative drift %g", worst)
	}
}

func TestTooManyEdges(t *testing.T) {
	p := make([]float64, MaxEnumEdges+1)
	tab := NewTable(p)
	if err := tab.Iter(func(Mask, float64) {}); err == nil {
		t.Fatal("Iter accepted too many links")
	}
	err := tab.IterGray(func(Mask, int, float64) {})
	if err == nil {
		t.Fatal("IterGray accepted too many links")
	}
	var tooMany *ErrTooManyEdges
	if ok := errorAs(err, &tooMany); !ok || tooMany.N != MaxEnumEdges+1 {
		t.Fatalf("error = %v", err)
	}
}

// errorAs is a tiny local errors.As to avoid importing errors for one use.
func errorAs(err error, target **ErrTooManyEdges) bool {
	e, ok := err.(*ErrTooManyEdges)
	if ok {
		*target = e
	}
	return ok
}

func TestSplitCoversRange(t *testing.T) {
	for _, m := range []int{0, 1, 3, 7} {
		for _, chunks := range []int{1, 2, 3, 8, 100} {
			ranges := Split(m, chunks)
			var next uint64
			for _, r := range ranges {
				if r[0] != next {
					t.Fatalf("m=%d chunks=%d: gap at %d", m, chunks, next)
				}
				if r[1] <= r[0] {
					t.Fatalf("m=%d chunks=%d: empty range", m, chunks)
				}
				next = r[1]
			}
			if next != 1<<uint(m) {
				t.Fatalf("m=%d chunks=%d: covered %d of %d", m, chunks, next, 1<<uint(m))
			}
		}
	}
	if got := Split(4, 0); len(got) != 1 {
		t.Fatalf("chunks=0 should clamp to 1, got %v", got)
	}
}

// Property: Split is balanced within one element.
func TestQuickSplitBalanced(t *testing.T) {
	f := func(mRaw, cRaw uint8) bool {
		m := int(mRaw % 16)
		chunks := int(cRaw%12) + 1
		ranges := Split(m, chunks)
		var lo, hi uint64 = math.MaxUint64, 0
		for _, r := range ranges {
			n := r[1] - r[0]
			if n < lo {
				lo = n
			}
			if n > hi {
				hi = n
			}
		}
		return len(ranges) == 0 || hi-lo <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: probabilities over any table sum to 1.
func TestQuickProbSum(t *testing.T) {
	f := func(seed int64, mRaw uint8) bool {
		m := int(mRaw%10) + 1
		rng := rand.New(rand.NewSource(seed))
		p := make([]float64, m)
		for i := range p {
			p[i] = rng.Float64() * 0.99
		}
		tab := NewTable(p)
		sum := 0.0
		if err := tab.Iter(func(_ Mask, pr float64) { sum += pr }); err != nil {
			return false
		}
		return math.Abs(sum-1) < 1e-10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestBinomialMatchesBig(t *testing.T) {
	for n := 0; n <= MaxEnumEdges; n++ {
		for _, k := range []int{0, 1, 2, n / 3, n / 2, n - 1, n} {
			if k < 0 {
				continue
			}
			want := new(big.Int).Binomial(int64(n), int64(k))
			if !want.IsUint64() {
				t.Fatalf("C(%d,%d) exceeds uint64", n, k)
			}
			if got := Binomial(n, k); got != want.Uint64() {
				t.Fatalf("Binomial(%d,%d) = %d, want %s", n, k, got, want)
			}
		}
	}
	if Binomial(5, -1) != 0 || Binomial(5, 6) != 0 {
		t.Fatal("out-of-range k must give 0")
	}
}

// Property: NthOfLayer enumerates exactly the popcount-k masks of m bits
// in increasing numeric order, and NextOfLayer steps between consecutive
// ones.
func TestLayerUnranking(t *testing.T) {
	for m := 0; m <= 12; m++ {
		for k := 0; k <= m; k++ {
			total := Binomial(m, k)
			prev := Mask(0)
			for rank := uint64(0); rank < total; rank++ {
				mask := NthOfLayer(m, k, rank)
				if bits.OnesCount64(mask) != k || mask >= 1<<uint(m) {
					t.Fatalf("NthOfLayer(%d,%d,%d) = %#x: not a %d-bit popcount-%d mask", m, k, rank, mask, m, k)
				}
				if rank > 0 {
					if mask <= prev {
						t.Fatalf("NthOfLayer(%d,%d,%d) = %#x not above predecessor %#x", m, k, rank, mask, prev)
					}
					if next := NextOfLayer(prev); next != mask {
						t.Fatalf("NextOfLayer(%#x) = %#x, want %#x", prev, next, mask)
					}
				}
				prev = mask
			}
		}
	}
}

// TestSplitLayer: the rank ranges partition [0, C(m,k)) contiguously
// under the SplitEnum chunking policy.
func TestSplitLayer(t *testing.T) {
	for m := 0; m <= 20; m++ {
		for k := 0; k <= m; k++ {
			total := Binomial(m, k)
			ranges := SplitLayer(m, k)
			if len(ranges) > EnumChunks {
				t.Fatalf("SplitLayer(%d,%d): %d chunks > EnumChunks", m, k, len(ranges))
			}
			var next uint64
			for _, r := range ranges {
				if r[0] != next || r[1] <= r[0] {
					t.Fatalf("SplitLayer(%d,%d): range %v does not continue at %d", m, k, r, next)
				}
				if n := r[1] - r[0]; len(ranges) > 1 && n < minChunkConfigs {
					t.Fatalf("SplitLayer(%d,%d): chunk of %d masks below the %d grain", m, k, n, minChunkConfigs)
				}
				next = r[1]
			}
			if next != total {
				t.Fatalf("SplitLayer(%d,%d) covers %d of %d masks", m, k, next, total)
			}
		}
	}
}
