package reduce

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
	"flowrel/internal/overlay"
	"flowrel/internal/reliability"
)

func TestSeriesChainCollapses(t *testing.T) {
	// s → a → b → t, unit caps: collapses to a single link with
	// p = 1 - 0.9·0.8·0.7.
	b := graph.NewBuilder()
	s := b.AddNode()
	a := b.AddNode()
	bb := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, a, 1, 0.1)
	b.AddEdge(a, bb, 1, 0.2)
	b.AddEdge(bb, tt, 1, 0.3)
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 1}
	res, err := Apply(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	if res.G.NumEdges() != 1 {
		t.Fatalf("reduced to %d links, want 1", res.G.NumEdges())
	}
	e := res.G.Edge(0)
	if e.U != s || e.V != tt || e.Cap != 1 {
		t.Fatalf("merged link = %+v", e)
	}
	want := 1 - 0.9*0.8*0.7
	if math.Abs(e.PFail-want) > 1e-12 {
		t.Fatalf("merged p = %g, want %g", e.PFail, want)
	}
	if res.Stats.SeriesMerges != 2 {
		t.Fatalf("series merges = %d, want 2", res.Stats.SeriesMerges)
	}
	if len(res.OriginLinks[0]) != 3 {
		t.Fatalf("origins = %v", res.OriginLinks[0])
	}
}

func TestCapacityClip(t *testing.T) {
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, tt, 10, 0.1)
	g := b.MustBuild()
	res, err := Apply(g, graph.Demand{S: s, T: tt, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.G.Edge(0).Cap != 2 || res.Stats.Clipped != 1 {
		t.Fatalf("cap = %d, clipped = %d", res.G.Edge(0).Cap, res.Stats.Clipped)
	}
}

func TestIrrelevantRemoved(t *testing.T) {
	// A dangling link out of t, a link into s, an unreachable island, and
	// a zero-capacity link all vanish.
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	x := b.AddNode()
	y := b.AddNode()
	b.AddEdge(s, tt, 1, 0.1) // the only useful link
	b.AddEdge(tt, x, 1, 0.1) // beyond t, x is a dead end
	b.AddEdge(x, s, 1, 0.1)  // hmm: via t? t→x→s: tail reachable...
	b.AddEdge(y, tt, 1, 0.1) // y unreachable from s
	b.AddEdge(s, tt, 0, 0.1) // zero capacity
	g := b.MustBuild()
	res, err := Apply(g, graph.Demand{S: s, T: tt, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The reductions are sound but not complete (the t→x→s detour merges
	// to a t→s link that reachability alone cannot prove useless), so the
	// test asserts reliability preservation plus strict shrinkage rather
	// than a specific remaining link set.
	naiveOrig, err := reliability.Naive(g, graph.Demand{S: s, T: tt, D: 1}, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	naiveRed, err := reliability.Naive(res.G, res.Demand, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(naiveOrig.Reliability-naiveRed.Reliability) > 1e-12 {
		t.Fatalf("reduction changed reliability: %g vs %g", naiveOrig.Reliability, naiveRed.Reliability)
	}
	if res.G.NumEdges() >= g.NumEdges() {
		t.Fatalf("nothing was removed: %d links", res.G.NumEdges())
	}
}

func TestParallelMerges(t *testing.T) {
	// Two parallel links each with capacity ≥ d merge multiplicatively.
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, tt, 2, 0.2)
	b.AddEdge(s, tt, 3, 0.5)
	g := b.MustBuild()
	res, err := Apply(g, graph.Demand{S: s, T: tt, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.G.NumEdges() != 1 {
		t.Fatalf("links = %d, want 1", res.G.NumEdges())
	}
	e := res.G.Edge(0)
	if e.Cap != 2 || math.Abs(e.PFail-0.1) > 1e-12 {
		t.Fatalf("merged = %+v", e)
	}

	// Perfectly reliable parallels pool capacity.
	b2 := graph.NewBuilder()
	s2 := b2.AddNode()
	t2 := b2.AddNode()
	b2.AddEdge(s2, t2, 1, 0)
	b2.AddEdge(s2, t2, 1, 0)
	g2 := b2.MustBuild()
	res2, err := Apply(g2, graph.Demand{S: s2, T: t2, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res2.G.NumEdges() != 1 || res2.G.Edge(0).Cap != 2 {
		t.Fatalf("p=0 pool failed: %v", res2.G.Edges())
	}
}

func TestDetourCycleRemoved(t *testing.T) {
	// s→t plus a relay m with u→m→u: the detour dies.
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	m := b.AddNode()
	b.AddEdge(s, tt, 1, 0.1)
	b.AddEdge(s, m, 1, 0.1)
	b.AddEdge(m, s, 1, 0.1)
	g := b.MustBuild()
	res, err := Apply(g, graph.Demand{S: s, T: tt, D: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.G.NumEdges() != 1 {
		t.Fatalf("links = %d, want 1", res.G.NumEdges())
	}
}

func TestErrors(t *testing.T) {
	if _, err := Apply(nil, graph.Demand{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	b := graph.NewBuilder()
	s := b.AddNode()
	g := b.MustBuild()
	if _, err := Apply(g, graph.Demand{S: s, T: s, D: 1}); err == nil {
		t.Fatal("bad demand accepted")
	}
}

func TestTreeOverlayReducesToOnePath(t *testing.T) {
	// A deep single tree reduces, for one peer, to a single series link.
	o, err := overlay.Tree(2, 4, 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	peer := o.Peers[len(o.Peers)-1]
	res, err := Apply(o.G, o.Demand(peer))
	if err != nil {
		t.Fatal(err)
	}
	if res.G.NumEdges() != 1 {
		t.Fatalf("tree reduced to %d links, want 1 (the root-to-peer chain)", res.G.NumEdges())
	}
	want := math.Pow(0.95, 4)
	if math.Abs((1-res.G.Edge(0).PFail)-want) > 1e-12 {
		t.Fatalf("chain survival = %g, want %g", 1-res.G.Edge(0).PFail, want)
	}
}

// Property: reduction preserves the exact reliability.
func TestQuickReductionPreservesReliability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(12)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			p := rng.Float64() * 0.9
			if rng.Intn(6) == 0 {
				p = 0 // exercise the p=0 parallel pooling
			}
			b.AddEdge(u, v, rng.Intn(4), p)
		}
		g := b.MustBuild()
		dem := graph.Demand{S: 0, T: graph.NodeID(n - 1), D: 1 + rng.Intn(3)}
		res, err := Apply(g, dem)
		if err != nil {
			return false
		}
		if res.G.NumEdges() > g.NumEdges() {
			return false
		}
		orig, err := reliability.Naive(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		red, err := reliability.Naive(res.G, res.Demand, reliability.Options{})
		if err != nil {
			return false
		}
		return math.Abs(orig.Reliability-red.Reliability) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: reduction is idempotent (a second pass changes nothing).
func TestQuickIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(10)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			b.AddEdge(u, v, 1+rng.Intn(3), rng.Float64()*0.9)
		}
		g := b.MustBuild()
		dem := graph.Demand{S: 0, T: graph.NodeID(n - 1), D: 1 + rng.Intn(2)}
		r1, err := Apply(g, dem)
		if err != nil {
			return false
		}
		r2, err := Apply(r1.G, r1.Demand)
		if err != nil {
			return false
		}
		return r2.G.NumEdges() == r1.G.NumEdges() &&
			r2.Stats.SeriesMerges == 0 && r2.Stats.ParallelMerges == 0 && r2.Stats.Irrelevant == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
