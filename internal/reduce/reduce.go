// Package reduce applies exact, reliability-preserving preprocessing to a
// network before the exponential engines run — the classical reductions of
// the network-reliability literature adapted to directed capacitated flow
// demands. Every transformation provably preserves R(G, (s,t,d)):
//
//   - capacity clipping: the s→t flow never exceeds d, so c(e) > d is
//     equivalent to c(e) = d;
//   - irrelevant links: a link whose tail s cannot reach, or whose head
//     cannot reach t, carries no flow in any configuration — its failure
//     state marginalizes out;
//   - series merge: an interior node with exactly one in-link and one
//     out-link forwards flow iff both links are up — replace with one link
//     of capacity min(c₁,c₂) and failure probability 1-(1-p₁)(1-p₂);
//   - parallel merge: two parallel links that are each individually
//     sufficient (capacity d after clipping) are jointly up-or-useless —
//     replace with one capacity-d link failing with probability p₁·p₂;
//     perfectly reliable (p = 0) parallel links simply pool capacity.
//
// Each reduction can expose more, so they run to a fixed point. Since
// every enumeration engine is exponential in the link count, removing even
// a handful of links halves, quarters, … the work.
package reduce

import (
	"fmt"

	"flowrel/internal/graph"
)

// Stats counts the reductions applied.
type Stats struct {
	Clipped        int // capacities clipped to d
	Irrelevant     int // links removed as unable to ever carry flow
	SeriesMerges   int // pairs merged through interior relay nodes
	ParallelMerges int // parallel pairs merged
	Rounds         int // fixed-point iterations
}

// Result is a reduced instance with the same reliability as the original.
type Result struct {
	G      *graph.Graph
	Demand graph.Demand
	Stats  Stats
	// OriginLinks maps every reduced link to the original links it stands
	// for (one for untouched links, several for merged chains/bundles).
	OriginLinks [][]graph.EdgeID
}

type medge struct {
	u, v    graph.NodeID
	cap     int
	pFail   float64
	origins []graph.EdgeID
	dead    bool
}

// Apply reduces the instance. The returned graph has the same node count
// (merging may leave isolated interior nodes, which cost nothing) and the
// same demand terminals.
func Apply(g *graph.Graph, dem graph.Demand) (*Result, error) {
	if g == nil {
		return nil, fmt.Errorf("reduce: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	edges := make([]medge, 0, g.NumEdges())
	for _, e := range g.Edges() {
		edges = append(edges, medge{u: e.U, v: e.V, cap: e.Cap, pFail: e.PFail, origins: []graph.EdgeID{e.ID}})
	}
	res := &Result{Demand: dem}

	// Capacity clipping (once; nothing re-raises capacities).
	for i := range edges {
		if edges[i].cap > dem.D {
			edges[i].cap = dem.D
			res.Stats.Clipped++
		}
	}

	n := g.NumNodes()
	for {
		res.Stats.Rounds++
		changed := false
		if dropIrrelevant(edges, n, dem, &res.Stats) {
			changed = true
		}
		if mergeSeries(edges, n, dem, &res.Stats) {
			changed = true
		}
		if mergeParallel(edges, dem, &res.Stats) {
			changed = true
		}
		if !changed {
			break
		}
	}

	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddNamedNode(g.NodeName(graph.NodeID(i)))
	}
	for i := range edges {
		if edges[i].dead {
			continue
		}
		b.AddEdge(edges[i].u, edges[i].v, edges[i].cap, edges[i].pFail)
		res.OriginLinks = append(res.OriginLinks, edges[i].origins)
	}
	rg, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("reduce: rebuilding graph: %w", err)
	}
	res.G = rg
	return res, nil
}

// dropIrrelevant removes links that cannot lie on any s→t flow: the tail
// must be reachable from s and t must be reachable from the head, and the
// capacity must be positive.
func dropIrrelevant(edges []medge, n int, dem graph.Demand, st *Stats) bool {
	fromS := reachSet(edges, n, dem.S, false)
	toT := reachSet(edges, n, dem.T, true)
	changed := false
	for i := range edges {
		if edges[i].dead {
			continue
		}
		if edges[i].cap <= 0 || !fromS[edges[i].u] || !toT[edges[i].v] {
			edges[i].dead = true
			st.Irrelevant++
			changed = true
		}
	}
	return changed
}

// reachSet returns the nodes reachable from start following live links
// forward (reverse = false) or backward (reverse = true).
func reachSet(edges []medge, n int, start graph.NodeID, reverse bool) []bool {
	adj := make([][]graph.NodeID, n)
	for i := range edges {
		if edges[i].dead || edges[i].cap <= 0 {
			continue
		}
		u, v := edges[i].u, edges[i].v
		if reverse {
			u, v = v, u
		}
		adj[u] = append(adj[u], v)
	}
	seen := make([]bool, n)
	seen[start] = true
	stack := []graph.NodeID{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// mergeSeries merges through interior relay nodes (exactly one live
// in-link and one live out-link, not a terminal). A relay whose two links
// form a 2-cycle (u == v) is a dead detour and is removed outright.
func mergeSeries(edges []medge, n int, dem graph.Demand, st *Stats) bool {
	changed := false
	for m := graph.NodeID(0); int(m) < n; m++ {
		if m == dem.S || m == dem.T {
			continue
		}
		in, out := -1, -1
		ok := true
		for i := range edges {
			if edges[i].dead {
				continue
			}
			if edges[i].v == m {
				if in != -1 {
					ok = false
					break
				}
				in = i
			}
			if edges[i].u == m {
				if out != -1 {
					ok = false
					break
				}
				out = i
			}
		}
		if !ok || in == -1 || out == -1 {
			continue
		}
		ein, eout := &edges[in], &edges[out]
		if ein.u == eout.v {
			// u → m → u: a detour cycle that can never carry s→t flow.
			ein.dead = true
			eout.dead = true
			st.Irrelevant += 2
			changed = true
			continue
		}
		cap := ein.cap
		if eout.cap < cap {
			cap = eout.cap
		}
		merged := medge{
			u:       ein.u,
			v:       eout.v,
			cap:     cap,
			pFail:   1 - (1-ein.pFail)*(1-eout.pFail),
			origins: append(append([]graph.EdgeID(nil), ein.origins...), eout.origins...),
		}
		eout.dead = true
		edges[in] = merged // reuse the in-link's slot for the merged link
		st.SeriesMerges++
		changed = true
	}
	return changed
}

// mergeParallel merges parallel bundles where the combination is exactly
// representable as a single link: both individually sufficient (capacity
// d), or at least one perfectly reliable.
func mergeParallel(edges []medge, dem graph.Demand, st *Stats) bool {
	changed := false
	for i := range edges {
		if edges[i].dead {
			continue
		}
		for j := i + 1; j < len(edges); j++ {
			if edges[j].dead || edges[i].dead {
				continue
			}
			if edges[i].u != edges[j].u || edges[i].v != edges[j].v {
				continue
			}
			a, b := &edges[i], &edges[j]
			switch {
			case a.cap >= dem.D && b.cap >= dem.D:
				// Either link alone suffices for everything routed u→v.
				a.pFail *= b.pFail
				a.cap = dem.D
				a.origins = append(a.origins, b.origins...)
				b.dead = true
				st.ParallelMerges++
				changed = true
			case a.pFail == 0 && b.pFail == 0:
				a.cap += b.cap
				if a.cap > dem.D {
					a.cap = dem.D
				}
				a.origins = append(a.origins, b.origins...)
				b.dead = true
				st.ParallelMerges++
				changed = true
			}
		}
	}
	return changed
}
