// Package anytime provides the cooperative cancellation and compute-budget
// machinery shared by every solver: a Budget (configuration, max-flow-call
// and wall-clock limits), a Ctl threaded through worker loops that turns
// context cancellation, deadlines and budget exhaustion into a single
// cheap "stop now" signal, and the PanicError type that worker goroutines
// use to convert a solver panic into a returned error instead of killing
// the process.
//
// Every exact engine in this repository is exponential in the link count,
// so a production caller must be able to bound the work it is willing to
// pay for. The contract is *anytime*: an interrupted engine does not
// discard the work it already did — it reports the mass it has proven
// admitting and the mass it has proven failing, which together certify an
// interval [lo, hi] containing the true reliability.
package anytime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flowrel/internal/stats"
)

// ErrInterrupted is wrapped by every error an engine returns when it was
// stopped by cancellation, deadline or budget exhaustion before producing
// a usable (even partial) answer. Test with errors.Is.
var ErrInterrupted = errors.New("anytime: computation interrupted")

// CheckEvery is the amortization grain of the cooperative cancellation
// checks: enumeration workers consult their Ctl once per CheckEvery
// configurations, so the hot loop pays one atomic load per batch rather
// than per configuration.
const CheckEvery = 4096

// Budget bounds the work of one computation. The zero value is unlimited.
type Budget struct {
	// MaxConfigs bounds the number of failure configurations (or
	// factoring branch nodes, or Monte Carlo samples) examined across all
	// workers; 0 = unlimited.
	MaxConfigs uint64
	// MaxMaxFlowCalls bounds the number of max-flow solver invocations;
	// 0 = unlimited. Charged at the same amortized grain as MaxConfigs,
	// so short overshoots of up to one batch per worker are possible.
	MaxMaxFlowCalls int64
	// SoftDeadline bounds the wall-clock time from the start of the
	// computation; 0 = none. "Soft" because workers notice it at the next
	// cooperative check, not instantaneously.
	SoftDeadline time.Duration
}

// IsZero reports whether the budget imposes no limit at all.
func (b Budget) IsZero() bool {
	return b.MaxConfigs == 0 && b.MaxMaxFlowCalls == 0 && b.SoftDeadline == 0
}

// Validate rejects nonsensical budgets.
func (b Budget) Validate() error {
	if b.MaxMaxFlowCalls < 0 {
		return fmt.Errorf("anytime: MaxMaxFlowCalls %d must be ≥ 0 (0 = unlimited)", b.MaxMaxFlowCalls)
	}
	if b.SoftDeadline < 0 {
		return fmt.Errorf("anytime: SoftDeadline %v must be ≥ 0 (0 = none)", b.SoftDeadline)
	}
	return nil
}

// Ctl is the cancellation controller threaded through the solver worker
// loops. A nil *Ctl is valid and means "never stop" with zero overhead, so
// engines thread it unconditionally. All methods are safe for concurrent
// use.
type Ctl struct {
	ctx      context.Context
	deadline time.Time // zero = none
	budget   Budget

	// tracer receives one ConfigEvent per amortized Charge batch — the
	// budget consumption curve. Set it with SetTracer before any worker
	// starts; it is inherited by Sub children so ladder rungs land on the
	// same curve. nil (the default) costs one branch per batch.
	tracer stats.Tracer
	// start anchors ConfigEvent.Elapsed; Sub children share the root's
	// start so the curve has a single time axis.
	start time.Time

	configs atomic.Uint64 // configurations examined so far
	calls   atomic.Int64  // max-flow calls so far
	stopped atomic.Bool

	mu     sync.Mutex
	reason string
}

// New builds a controller from a context and budget. ctx may be nil
// (treated as context.Background()). If both the budget and the context
// impose no limit the controller still honours explicit Stop calls.
func New(ctx context.Context, b Budget) *Ctl {
	if ctx == nil {
		ctx = context.Background()
	}
	c := &Ctl{ctx: ctx, budget: b, start: time.Now()}
	if b.SoftDeadline > 0 {
		c.deadline = c.start.Add(b.SoftDeadline)
	}
	// An already-expired context stops the run before any worker starts.
	c.Check()
	return c
}

// SetTracer installs the tracer that receives this controller's budget
// consumption events. Call it immediately after New, before any worker
// goroutine can Charge — the field is written without synchronization.
// A nil controller ignores the call; a nil tracer restores the fast path.
func (c *Ctl) SetTracer(tr stats.Tracer) {
	if c == nil {
		return
	}
	c.tracer = tr
}

// Tracer returns the installed tracer (nil for a nil controller). Engines
// use it to fire phase events alongside their budget charges.
func (c *Ctl) Tracer() stats.Tracer {
	if c == nil {
		return nil
	}
	return c.tracer
}

// Context returns the controller's context (context.Background() for a nil
// controller).
func (c *Ctl) Context() context.Context {
	if c == nil || c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Stopped reports whether the computation should wind down. It is the
// cheap check for hot loops: one atomic load.
func (c *Ctl) Stopped() bool {
	return c != nil && c.stopped.Load()
}

// Stop forces the computation to wind down with the given reason. The
// first reason wins.
func (c *Ctl) Stop(reason string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if c.reason == "" {
		c.reason = reason
	}
	c.mu.Unlock()
	c.stopped.Store(true)
}

// Reason returns why the computation stopped ("" while running or for a
// nil controller).
func (c *Ctl) Reason() string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reason
}

// Err returns the interruption as an error wrapping ErrInterrupted, or nil
// if the controller never stopped.
func (c *Ctl) Err() error {
	if !c.Stopped() {
		return nil
	}
	return fmt.Errorf("%w: %s", ErrInterrupted, c.Reason())
}

// Configs returns the number of configurations charged so far.
func (c *Ctl) Configs() uint64 {
	if c == nil {
		return 0
	}
	return c.configs.Load()
}

// MaxFlowCalls returns the number of max-flow calls charged so far.
func (c *Ctl) MaxFlowCalls() int64 {
	if c == nil {
		return 0
	}
	return c.calls.Load()
}

// Check re-evaluates the context and deadline without charging work.
// Returns true while the computation may continue.
func (c *Ctl) Check() bool {
	if c == nil {
		return true
	}
	if c.stopped.Load() {
		return false
	}
	if err := c.ctx.Err(); err != nil {
		c.Stop(fmt.Sprintf("context cancelled (%v)", err))
		return false
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		c.Stop(fmt.Sprintf("soft deadline %v exceeded", c.budget.SoftDeadline))
		return false
	}
	return true
}

// Charge records a batch of work (configs examined, max-flow calls made)
// and re-evaluates every stop condition. Workers call it once per
// CheckEvery configurations; it returns true while the computation may
// continue. A nil controller always returns true.
func (c *Ctl) Charge(configs uint64, calls int64) bool {
	if c == nil {
		return true
	}
	if c.tracer != nil && (configs > 0 || calls > 0) {
		c.tracer.OnConfig(stats.ConfigEvent{
			Configs:      configs,
			MaxFlowCalls: calls,
			Elapsed:      time.Since(c.start),
		})
	}
	return c.charge(configs, calls)
}

// charge records the work without firing the tracer — Absorb uses it so a
// child's batches, already traced once as they happened, are not reported
// a second time when folded into the parent.
func (c *Ctl) charge(configs uint64, calls int64) bool {
	total := c.configs.Add(configs)
	totalCalls := c.calls.Add(calls)
	if c.stopped.Load() {
		return false
	}
	if c.budget.MaxConfigs > 0 && total >= c.budget.MaxConfigs {
		c.Stop(fmt.Sprintf("configuration budget %d exhausted", c.budget.MaxConfigs))
		return false
	}
	if c.budget.MaxMaxFlowCalls > 0 && totalCalls >= c.budget.MaxMaxFlowCalls {
		c.Stop(fmt.Sprintf("max-flow call budget %d exhausted", c.budget.MaxMaxFlowCalls))
		return false
	}
	return c.Check()
}

// Sub derives a child controller that shares the parent's context and
// consumes at most the given fraction of the parent's *remaining* budget —
// the degradation ladder gives each rung its own slice so a stuck rung
// cannot starve the ones below it. Fractions are clamped to (0, 1]. A nil
// parent yields a nil child (still unlimited).
func (c *Ctl) Sub(fraction float64) *Ctl {
	if c == nil {
		return nil
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	var b Budget
	if c.budget.MaxConfigs > 0 {
		rem := uint64(0)
		if used := c.configs.Load(); used < c.budget.MaxConfigs {
			rem = c.budget.MaxConfigs - used
		}
		b.MaxConfigs = uint64(float64(rem)*fraction) + 1
	}
	if c.budget.MaxMaxFlowCalls > 0 {
		rem := int64(0)
		if used := c.calls.Load(); used < c.budget.MaxMaxFlowCalls {
			rem = c.budget.MaxMaxFlowCalls - used
		}
		b.MaxMaxFlowCalls = int64(float64(rem)*fraction) + 1
	}
	child := &Ctl{ctx: c.ctx, budget: b, tracer: c.tracer, start: c.start}
	if !c.deadline.IsZero() {
		rem := time.Until(c.deadline)
		if rem < 0 {
			rem = 0
		}
		child.budget.SoftDeadline = time.Duration(float64(rem) * fraction)
		child.deadline = time.Now().Add(child.budget.SoftDeadline)
	}
	if c.Stopped() {
		child.Stop(c.Reason())
	}
	child.Check()
	return child
}

// Absorb merges a finished child's work counters back into the parent so
// the parent's budget accounting stays truthful across ladder rungs.
func (c *Ctl) Absorb(child *Ctl) {
	if c == nil || child == nil {
		return
	}
	// The child's batches were traced as they happened (the child shares
	// the parent's tracer), so absorb without re-firing OnConfig.
	c.charge(child.configs.Load(), child.calls.Load())
}

// PanicError is a worker panic converted into an error: the process
// survives, the caller learns which configuration was being examined.
type PanicError struct {
	// Where names the worker loop that panicked.
	Where string
	// Config is the index of the failure configuration (or branch node,
	// or sample) being examined when the panic fired.
	Config uint64
	// Value is the recovered panic value.
	Value any
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("anytime: panic in %s at configuration %d: %v", e.Where, e.Config, e.Value)
}

// RecoverInto is the deferred guard for worker goroutines: it converts a
// panic into a *PanicError stored at *dst (first panic wins if dst is
// shared per worker) and stops the controller so sibling workers wind
// down instead of burning the rest of the budget.
func RecoverInto(dst *error, ctl *Ctl, where string, config *uint64) {
	if r := recover(); r != nil {
		var idx uint64
		if config != nil {
			idx = *config
		}
		err := &PanicError{Where: where, Config: idx, Value: r}
		if *dst == nil {
			*dst = err
		}
		ctl.Stop(err.Error())
	}
}
