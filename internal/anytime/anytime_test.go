package anytime

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilCtlIsUnlimited(t *testing.T) {
	var c *Ctl
	if c.Stopped() {
		t.Fatal("nil Ctl reports stopped")
	}
	if !c.Charge(1<<40, 1<<40) {
		t.Fatal("nil Ctl refused work")
	}
	if !c.Check() {
		t.Fatal("nil Ctl failed Check")
	}
	if c.Err() != nil {
		t.Fatal("nil Ctl has an error")
	}
	if c.Sub(0.5) != nil {
		t.Fatal("nil Ctl spawned a non-nil child")
	}
	c.Stop("ignored")
	c.Absorb(nil)
}

func TestCancelledContextStopsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := New(ctx, Budget{})
	if !c.Stopped() {
		t.Fatal("controller did not notice the already-cancelled context")
	}
	if err := c.Err(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("Err() = %v, want ErrInterrupted", err)
	}
}

func TestConfigBudget(t *testing.T) {
	c := New(context.Background(), Budget{MaxConfigs: 10000})
	if !c.Charge(4096, 0) || !c.Charge(4096, 0) {
		t.Fatal("stopped before the budget was reached")
	}
	if c.Charge(4096, 0) {
		t.Fatal("kept running past the configuration budget")
	}
	if !c.Stopped() || c.Reason() == "" {
		t.Fatal("no stop reason recorded")
	}
	if c.Configs() != 3*4096 {
		t.Fatalf("Configs() = %d, want %d", c.Configs(), 3*4096)
	}
}

func TestMaxFlowCallBudget(t *testing.T) {
	c := New(context.Background(), Budget{MaxMaxFlowCalls: 100})
	if c.Charge(10, 200) {
		t.Fatal("kept running past the max-flow call budget")
	}
}

func TestSoftDeadline(t *testing.T) {
	c := New(context.Background(), Budget{SoftDeadline: time.Nanosecond})
	time.Sleep(time.Millisecond)
	if c.Charge(1, 0) {
		t.Fatal("kept running past the soft deadline")
	}
}

func TestStopReasonFirstWins(t *testing.T) {
	c := New(context.Background(), Budget{})
	c.Stop("first")
	c.Stop("second")
	if c.Reason() != "first" {
		t.Fatalf("Reason() = %q, want first", c.Reason())
	}
}

func TestSubSlicesRemainingBudget(t *testing.T) {
	c := New(context.Background(), Budget{MaxConfigs: 1000})
	c.Charge(500, 0)
	child := c.Sub(0.5)
	if child == nil {
		t.Fatal("no child controller")
	}
	// Remaining 500, half of it ≈ 250 (+1 rounding headroom).
	if child.Charge(300, 0) {
		t.Fatal("child ignored its slice of the budget")
	}
	if c.Stopped() {
		t.Fatal("child exhaustion must not stop the parent")
	}
	c.Absorb(child)
	if c.Configs() != 800 {
		t.Fatalf("parent Configs() = %d after Absorb, want 800", c.Configs())
	}
}

func TestSubInheritsStop(t *testing.T) {
	c := New(context.Background(), Budget{})
	c.Stop("parent stopped")
	child := c.Sub(1)
	if !child.Stopped() {
		t.Fatal("child of a stopped parent is running")
	}
}

func TestBudgetValidate(t *testing.T) {
	if err := (Budget{}).Validate(); err != nil {
		t.Fatalf("zero budget rejected: %v", err)
	}
	if err := (Budget{MaxMaxFlowCalls: -1}).Validate(); err == nil {
		t.Fatal("negative MaxMaxFlowCalls accepted")
	}
	if err := (Budget{SoftDeadline: -time.Second}).Validate(); err == nil {
		t.Fatal("negative SoftDeadline accepted")
	}
}

func TestRecoverInto(t *testing.T) {
	c := New(context.Background(), Budget{})
	var err error
	func() {
		cur := uint64(7)
		defer RecoverInto(&err, c, "test worker", &cur)
		cur = 42
		panic("boom")
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("recovered error %v is not a PanicError", err)
	}
	if pe.Config != 42 || pe.Where != "test worker" {
		t.Fatalf("PanicError = %+v", pe)
	}
	if !c.Stopped() {
		t.Fatal("panic did not stop the controller")
	}
}
