// Package testutil holds helpers shared by test packages across the
// module. It exists so reliability comparisons in tests go through one
// explicit-tolerance helper instead of ad-hoc float equality — the
// floateq analyzer (docs/ANALYZERS.md) rejects == between reliability
// floats, because engine results are long floating-point sums whose
// rounding depends on summation order.
package testutil

import "math"

// AlmostEqual reports whether a and b agree to within tol. A tolerance
// of 0 asserts bit-identical results — the right choice when determinism
// of one fixed summation order is the property under test — while still
// making the intent explicit at the call site. NaN never compares equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= tol
}
