// Package reliability implements reference algorithms for the flow
// reliability of a capacitated network with independent link failures:
//
//   - Naive: the paper's baseline — enumerate all 2^|E| failure
//     configurations, test each with a max-flow computation, and sum the
//     probabilities of the admitting ones (Figure 1). Sequential,
//     parallel, and Gray-code incremental variants.
//   - NaiveExact: the same enumeration in exact rational arithmetic; the
//     validation oracle for every floating-point engine.
//   - Factoring: pivotal (conditioning) decomposition with two-sided
//     max-flow pruning — the classical exact method, included as a
//     stronger baseline than plain enumeration.
//   - MonteCarlo: an unbiased sampling estimator with a standard error.
//   - Bounds: cheap guaranteed lower/upper bounds (disjoint delivery
//     subgraphs / cut survival).
//
// All engines answer the same question: the probability that the surviving
// subgraph admits flow demand D = (s, t, d), i.e. has s–t max flow ≥ d.
package reliability

import (
	"fmt"
	"runtime"

	"flowrel/internal/anytime"
	"flowrel/internal/graph"
)

// Options tunes an engine run.
type Options struct {
	// Parallelism is the number of worker goroutines for the enumeration
	// and sampling engines; ≤ 0 means runtime.GOMAXPROCS(0).
	Parallelism int
	// GrayCode makes Naive walk the configuration space in Gray-code
	// order, maintaining the max flow incrementally across neighbouring
	// configurations instead of re-solving from scratch.
	GrayCode bool
	// Ctl, when non-nil, threads cooperative cancellation and compute
	// budgets through the worker loops (checked every anytime.CheckEvery
	// configurations). Interrupted engines return a partial Result with a
	// certified [Lo, Hi] interval instead of an error.
	Ctl *anytime.Ctl
	// TestHook, when non-nil, is invoked inside the worker loops before
	// each configuration's feasibility check with the configuration index
	// (or branch-node count for the factoring engine). Tests use it to
	// inject faults — e.g. panics — into the hot path.
	TestHook func(configIndex uint64)
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Stats reports the work an engine performed.
type Stats struct {
	Configs      uint64 // failure configurations examined
	Admitting    uint64 // configurations that admitted the demand
	MaxFlowCalls int64  // max-flow solver invocations
	AugmentUnits int64  // total flow units pushed by the solver

	// refuted is the probability mass proven non-admitting — the
	// factoring engine's bookkeeping for certified intervals on
	// interrupted runs.
	refuted float64
}

func (s *Stats) add(o Stats) {
	s.Configs += o.Configs
	s.Admitting += o.Admitting
	s.MaxFlowCalls += o.MaxFlowCalls
	s.AugmentUnits += o.AugmentUnits
	s.refuted += o.refuted
}

// Result is an exact engine's answer.
type Result struct {
	Reliability float64
	Stats       Stats

	// Partial reports that the run was interrupted (context cancellation,
	// deadline or budget exhaustion). [Lo, Hi] is then a certified
	// interval containing the true reliability: Lo is the probability
	// mass proven admitting, 1−Hi the mass proven failing, and the gap is
	// the unexplored remainder. Reliability is the midpoint — the best
	// single guess. On complete runs Partial is false and
	// Lo = Hi = Reliability.
	Partial bool
	Lo, Hi  float64
	// Reason says why an interrupted run stopped.
	Reason string
}

// seal finalizes a Result: on complete runs it pins Lo = Hi =
// Reliability; on interrupted runs it certifies [Lo, Hi] from the proven
// admitting mass lo and proven failing mass refuted, and reports the
// midpoint as the point estimate.
func (r *Result) seal(ctl *anytime.Ctl, lo, refuted float64) {
	if !ctl.Stopped() {
		r.Lo, r.Hi = r.Reliability, r.Reliability
		return
	}
	hi := 1 - refuted
	// Floating-point guards; mathematically 0 ≤ lo ≤ hi ≤ 1.
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	if hi < lo {
		hi = lo
	}
	r.Partial = true
	r.Lo, r.Hi = lo, hi
	r.Reliability = (lo + hi) / 2
	r.Reason = ctl.Reason()
}

// firstError returns the first non-nil error of a per-worker slice.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func validate(g *graph.Graph, dem graph.Demand) error {
	if g == nil {
		return fmt.Errorf("reliability: nil graph")
	}
	return dem.Validate(g)
}
