// Package reliability implements reference algorithms for the flow
// reliability of a capacitated network with independent link failures:
//
//   - Naive: the paper's baseline — enumerate all 2^|E| failure
//     configurations, test each with a max-flow computation, and sum the
//     probabilities of the admitting ones (Figure 1). Sequential,
//     parallel, and Gray-code incremental variants.
//   - NaiveExact: the same enumeration in exact rational arithmetic; the
//     validation oracle for every floating-point engine.
//   - Factoring: pivotal (conditioning) decomposition with two-sided
//     max-flow pruning — the classical exact method, included as a
//     stronger baseline than plain enumeration.
//   - MonteCarlo: an unbiased sampling estimator with a standard error.
//   - Bounds: cheap guaranteed lower/upper bounds (disjoint delivery
//     subgraphs / cut survival).
//
// All engines answer the same question: the probability that the surviving
// subgraph admits flow demand D = (s, t, d), i.e. has s–t max flow ≥ d.
package reliability

import (
	"fmt"
	"runtime"

	"flowrel/internal/graph"
)

// Options tunes an engine run.
type Options struct {
	// Parallelism is the number of worker goroutines for the enumeration
	// and sampling engines; ≤ 0 means runtime.GOMAXPROCS(0).
	Parallelism int
	// GrayCode makes Naive walk the configuration space in Gray-code
	// order, maintaining the max flow incrementally across neighbouring
	// configurations instead of re-solving from scratch.
	GrayCode bool
}

func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Stats reports the work an engine performed.
type Stats struct {
	Configs      uint64 // failure configurations examined
	Admitting    uint64 // configurations that admitted the demand
	MaxFlowCalls int64  // max-flow solver invocations
	AugmentUnits int64  // total flow units pushed by the solver
}

func (s *Stats) add(o Stats) {
	s.Configs += o.Configs
	s.Admitting += o.Admitting
	s.MaxFlowCalls += o.MaxFlowCalls
	s.AugmentUnits += o.AugmentUnits
}

// Result is an exact engine's answer.
type Result struct {
	Reliability float64
	Stats       Stats
}

func validate(g *graph.Graph, dem graph.Demand) error {
	if g == nil {
		return fmt.Errorf("reliability: nil graph")
	}
	return dem.Validate(g)
}
