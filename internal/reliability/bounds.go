package reliability

import (
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/mincut"
)

// Bound is a guaranteed reliability interval.
type Bound struct {
	Lower float64
	Upper float64
	// DisjointSubgraphs is the number of edge-disjoint delivery subgraphs
	// backing the lower bound.
	DisjointSubgraphs int
	// CutsExamined is the number of separating link sets backing the
	// upper bound.
	CutsExamined int
	// Partial reports that the computation behind the bound was
	// interrupted. The interval is still certified — interruption only
	// leaves it wider than a complete run would.
	Partial bool
	// Reason says why an interrupted run stopped.
	Reason string
}

// Bounds computes cheap guaranteed bounds on the reliability:
//
//   - Lower: greedily extract edge-disjoint subgraphs that each admit the
//     demand on their own; the demand is met if at least one subgraph
//     survives intact, and disjointness makes those events independent.
//   - Upper: every s–t separating link set C limits the deliverable rate
//     to the surviving capacity across C, so reliability ≤
//     P(surviving capacity of C ≥ d); take the minimum over all minimal
//     cuts with at most maxCutSize links plus the two trivial separators
//     (the links at s and at t).
//
// Both bounds are polynomial-time (given the cut enumeration budget) and
// apply to graphs far beyond the reach of the exact engines.
func Bounds(g *graph.Graph, dem graph.Demand, maxCutSize int) (Bound, error) {
	if err := validate(g, dem); err != nil {
		return Bound{}, err
	}
	b := Bound{Upper: 1}

	// Lower bound: disjoint delivery subgraphs.
	nw, handles := maxflow.FromGraph(g)
	pFailAll := 1.0
	for {
		if nw.MaxFlow(int32(dem.S), int32(dem.T), dem.D) < dem.D {
			break
		}
		pSurvive := 1.0
		for i := range handles {
			if f := nw.FlowOn(handles[i]); f != 0 {
				pSurvive *= 1 - g.Edge(graph.EdgeID(i)).PFail
				nw.SetEnabled(handles[i], false)
			}
		}
		b.DisjointSubgraphs++
		pFailAll *= 1 - pSurvive
	}
	b.Lower = 1 - pFailAll

	// Upper bound: cut survival probabilities. The trivial separators are
	// the out-links of s and the in-links of t (only forward capacity can
	// carry the demand).
	cuts := mincut.EnumerateMinimal(g, dem.S, dem.T, maxCutSize)
	cuts = append(cuts, g.Out(dem.S), g.In(dem.T))
	for _, cut := range cuts {
		if len(cut) == 0 {
			// s or t has no links at all: the demand can never be met.
			b.Upper = 0
			b.CutsExamined++
			continue
		}
		p := cutSurvivalProb(g, cut, dem.D)
		b.CutsExamined++
		if p < b.Upper {
			b.Upper = p
		}
	}
	if b.Lower > b.Upper {
		// Floating-point guard; mathematically Lower ≤ Upper.
		b.Lower = b.Upper
	}
	return b, nil
}

// cutSurvivalProb returns P(Σ_{e∈cut alive} c(e) ≥ d) by dynamic
// programming over the cut links (states: capacity so far, saturating at d).
func cutSurvivalProb(g *graph.Graph, cut []graph.EdgeID, d int) float64 {
	dist := make([]float64, d+1) // dist[c] = P(surviving capacity = min(c, d))
	dist[0] = 1
	next := make([]float64, d+1)
	for _, eid := range cut {
		e := g.Edge(eid)
		for i := range next {
			next[i] = 0
		}
		for c, p := range dist {
			if p == 0 {
				continue
			}
			next[c] += p * e.PFail // link fails
			nc := c + e.Cap
			if nc > d {
				nc = d
			}
			next[nc] += p * (1 - e.PFail) // link survives
		}
		dist, next = next, dist
	}
	return dist[d]
}
