package reliability

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"flowrel/internal/anytime"
	"flowrel/internal/graph"
	"flowrel/internal/testutil"
)

// randomGraph builds a connected-ish random instance small enough for the
// exact oracle.
func randomGraph(t *testing.T, nodes, extra int, seed int64) (*graph.Graph, graph.Demand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder()
	ids := make([]graph.NodeID, nodes)
	for i := range ids {
		ids[i] = b.AddNode()
	}
	for i := 1; i < nodes; i++ {
		b.AddEdge(ids[i-1], ids[i], 1+rng.Intn(2), 0.05+0.4*rng.Float64())
	}
	for i := 0; i < extra; i++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u == v {
			continue
		}
		b.AddEdge(ids[u], ids[v], 1+rng.Intn(2), 0.05+0.4*rng.Float64())
	}
	return b.MustBuild(), graph.Demand{S: ids[0], T: ids[nodes-1], D: 1}
}

// checkInterval asserts a partial result's certified interval contains
// the oracle reliability.
func checkInterval(t *testing.T, name string, lo, hi, want float64) {
	t.Helper()
	if lo > hi {
		t.Fatalf("%s: inverted interval [%g, %g]", name, lo, hi)
	}
	if lo < -1e-12 || hi > 1+1e-12 {
		t.Fatalf("%s: interval [%g, %g] outside [0, 1]", name, lo, hi)
	}
	if want < lo-1e-9 || want > hi+1e-9 {
		t.Fatalf("%s: interval [%g, %g] misses the true reliability %g", name, lo, hi, want)
	}
}

func TestNaiveCancelledReturnsCertifiedInterval(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g, dem := randomGraph(t, 8, 8, seed)
		exact, err := NaiveExact(g, dem)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.Float64()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for _, gray := range []bool{false, true} {
			res, err := Naive(g, dem, Options{GrayCode: gray, Ctl: anytime.New(ctx, anytime.Budget{})})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Partial {
				t.Fatalf("seed %d gray=%v: cancelled run not marked partial", seed, gray)
			}
			if res.Reason == "" {
				t.Fatalf("seed %d gray=%v: no stop reason", seed, gray)
			}
			checkInterval(t, "naive", res.Lo, res.Hi, want)
		}
	}
}

func TestNaiveBudgetInterval(t *testing.T) {
	// A budget that stops enumeration midway must still certify.
	for seed := int64(1); seed <= 5; seed++ {
		g, dem := randomGraph(t, 8, 8, seed)
		exact, err := NaiveExact(g, dem)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.Float64()
		// With CheckEvery amortization the workers overshoot a tiny
		// budget, but on a 2^15-ish space they still stop well short.
		ctl := anytime.New(context.Background(), anytime.Budget{MaxConfigs: 1})
		res, err := Naive(g, dem, Options{Ctl: ctl, Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		checkInterval(t, "naive budget", res.Lo, res.Hi, want)
		if !res.Partial && res.Stats.Configs < uint64(1)<<uint(g.NumEdges()) {
			t.Fatalf("seed %d: incomplete run not marked partial", seed)
		}
	}
}

func TestFactoringCancelledAndBudget(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g, dem := randomGraph(t, 8, 8, seed)
		exact, err := NaiveExact(g, dem)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := exact.Float64()

		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := Factoring(g, dem, Options{Ctl: anytime.New(ctx, anytime.Budget{})})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Partial {
			t.Fatal("cancelled factoring not marked partial")
		}
		checkInterval(t, "factoring cancelled", res.Lo, res.Hi, want)

		// A small node budget interrupts mid-tree; the explored mass
		// must certify.
		ctl := anytime.New(context.Background(), anytime.Budget{MaxConfigs: 8})
		res, err = Factoring(g, dem, Options{Ctl: ctl, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		checkInterval(t, "factoring budget", res.Lo, res.Hi, want)

		// Unlimited controller: complete run, interval collapses.
		res, err = Factoring(g, dem, Options{Ctl: anytime.New(context.Background(), anytime.Budget{})})
		if err != nil {
			t.Fatal(err)
		}
		if res.Partial {
			t.Fatal("complete factoring marked partial")
		}
		if !testutil.AlmostEqual(res.Lo, res.Reliability, 0) || !testutil.AlmostEqual(res.Hi, res.Reliability, 0) {
			t.Fatalf("complete run interval [%g, %g] not collapsed onto %g", res.Lo, res.Hi, res.Reliability)
		}
		if math.Abs(res.Reliability-want) > 1e-9 {
			t.Fatalf("factoring %g, oracle %g", res.Reliability, want)
		}
	}
}

func TestMostProbableStatesInterrupted(t *testing.T) {
	g, dem := randomGraph(t, 8, 8, 3)
	exact, err := NaiveExact(g, dem)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := exact.Float64()

	ctl := anytime.New(context.Background(), anytime.Budget{MaxConfigs: 64})
	b, err := MostProbableStatesOpt(g, dem, g.NumEdges(), Options{Ctl: ctl})
	if err != nil {
		t.Fatal(err)
	}
	checkInterval(t, "states budget", b.Lower, b.Upper, want)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b, err = MostProbableStatesOpt(g, dem, g.NumEdges(), Options{Ctl: anytime.New(ctx, anytime.Budget{})})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Partial {
		t.Fatal("cancelled states run not marked partial")
	}
	checkInterval(t, "states cancelled", b.Lower, b.Upper, want)

	// Full budget with maxFailures = |E| is exhaustive: interval collapses.
	b, err = MostProbableStatesOpt(g, dem, g.NumEdges(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Partial || math.Abs(b.Lower-want) > 1e-9 || b.Upper-b.Lower > 1e-9 {
		t.Fatalf("exhaustive states = %+v, want tight at %g", b, want)
	}
}

func TestMonteCarloCancelled(t *testing.T) {
	g, dem := randomGraph(t, 8, 8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	est, err := MonteCarlo(g, dem, 100000, 1, Options{Ctl: anytime.New(ctx, anytime.Budget{})})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Partial || est.Samples != 0 {
		t.Fatalf("cancelled MC: %+v", est)
	}

	ctl := anytime.New(context.Background(), anytime.Budget{MaxConfigs: 2000})
	est, err = MonteCarlo(g, dem, 1000000, 1, Options{Ctl: ctl, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Partial || est.Samples == 0 || est.Samples >= 1000000 {
		t.Fatalf("budgeted MC: %+v", est)
	}
}

func TestImportanceSamplingCancelled(t *testing.T) {
	g, dem := randomGraph(t, 8, 8, 1)
	ctl := anytime.New(context.Background(), anytime.Budget{MaxConfigs: 2000})
	est, err := UnreliabilityIS(g, dem, 1000000, 1, 0.3, Options{Ctl: ctl, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !est.Partial || est.Samples == 0 {
		t.Fatalf("budgeted IS: %+v", est)
	}
}

// TestPanicRecoveryNaive injects a panicking hook at the max-flow call
// site and asserts the process survives with a typed error naming the
// failing configuration.
func TestPanicRecoveryNaive(t *testing.T) {
	g, dem := randomGraph(t, 8, 8, 2)
	for _, gray := range []bool{false, true} {
		hook := func(cfg uint64) {
			if cfg == 100 {
				panic("injected max-flow fault")
			}
		}
		_, err := Naive(g, dem, Options{GrayCode: gray, TestHook: hook, Ctl: anytime.New(context.Background(), anytime.Budget{})})
		var pe *anytime.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("gray=%v: err = %v, want PanicError", gray, err)
		}
		if pe.Config != 100 {
			t.Fatalf("gray=%v: failing config %d, want 100", gray, pe.Config)
		}
	}
}

func TestPanicRecoveryFactoring(t *testing.T) {
	g, dem := randomGraph(t, 9, 10, 2)
	hook := func(node uint64) {
		if node == 5 {
			panic("injected factoring fault")
		}
	}
	_, err := Factoring(g, dem, Options{TestHook: hook, Parallelism: 4})
	var pe *anytime.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

func TestPanicRecoveryMonteCarlo(t *testing.T) {
	g, dem := randomGraph(t, 8, 8, 2)
	hook := func(i uint64) {
		if i == 3 {
			panic("injected sampling fault")
		}
	}
	_, err := MonteCarlo(g, dem, 50000, 1, Options{TestHook: hook})
	var pe *anytime.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want PanicError", err)
	}
}

func TestNaiveExactCtx(t *testing.T) {
	g, dem := randomGraph(t, 8, 8, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := NaiveExactCtx(ctx, g, dem)
	if !errors.Is(err, anytime.ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	r, err := NaiveExactCtx(context.Background(), g, dem)
	if err != nil || r == nil {
		t.Fatalf("uncancelled oracle failed: %v", err)
	}
}

// TestAnytimeMonotoneNarrowing sanity-checks the anytime contract: more
// budget, tighter (never wider) certified factoring intervals.
func TestAnytimeMonotoneNarrowing(t *testing.T) {
	g, dem := randomGraph(t, 10, 14, 4)
	prev := 1.1
	for _, budget := range []uint64{2, 8, 32, 1 << 20} {
		ctl := anytime.New(context.Background(), anytime.Budget{MaxConfigs: budget})
		res, err := Factoring(g, dem, Options{Ctl: ctl, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		width := res.Hi - res.Lo
		if width > prev+1e-12 {
			t.Fatalf("interval widened at budget %d: %g > %g", budget, width, prev)
		}
		prev = width
	}
	if prev > 1e-9 {
		t.Fatalf("unlimited run did not collapse the interval (width %g)", prev)
	}
}
