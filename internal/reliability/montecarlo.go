package reliability

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// Estimate is a Monte Carlo reliability estimate.
type Estimate struct {
	Reliability float64
	StdErr      float64 // standard error of the estimate
	Samples     int
	Admitting   int
}

// ConfidenceInterval returns the estimate ± z·stderr interval clamped to
// [0, 1]; z = 1.96 gives ≈95 % coverage.
func (e Estimate) ConfidenceInterval(z float64) (lo, hi float64) {
	lo = e.Reliability - z*e.StdErr
	hi = e.Reliability + z*e.StdErr
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// MonteCarlo estimates the reliability by sampling failure configurations.
// The sample set is split into fixed-size blocks, each driven by its own
// deterministic PRNG stream derived from seed, so the result is identical
// for any Parallelism setting. Unlike the exact engines it scales to
// arbitrarily large graphs.
func MonteCarlo(g *graph.Graph, dem graph.Demand, samples int, seed int64, opt Options) (Estimate, error) {
	if err := validate(g, dem); err != nil {
		return Estimate{}, err
	}
	if samples < 1 {
		return Estimate{}, fmt.Errorf("reliability: sample count %d must be ≥ 1", samples)
	}
	proto, handles := maxflow.FromGraph(g)
	pFail := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}
	s, t := int32(dem.S), int32(dem.T)

	const blockSize = 4096
	nBlocks := (samples + blockSize - 1) / blockSize
	hits := make([]int, nBlocks)

	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.workers())
	for b := 0; b < nBlocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			n := blockSize
			if b == nBlocks-1 {
				n = samples - b*blockSize
			}
			rng := rand.New(rand.NewSource(seed + int64(b)*0x5851F42D4C957F2D))
			nw := proto.Clone()
			h := 0
			for i := 0; i < n; i++ {
				for j := range handles {
					nw.SetEnabled(handles[j], rng.Float64() >= pFail[j])
				}
				if nw.MaxFlow(s, t, dem.D) >= dem.D {
					h++
				}
			}
			hits[b] = h
		}(b)
	}
	wg.Wait()

	total := 0
	for _, h := range hits {
		total += h
	}
	p := float64(total) / float64(samples)
	return Estimate{
		Reliability: p,
		StdErr:      math.Sqrt(p * (1 - p) / float64(samples)),
		Samples:     samples,
		Admitting:   total,
	}, nil
}
