package reliability

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// Estimate is a Monte Carlo reliability estimate.
type Estimate struct {
	Reliability float64
	StdErr      float64 // standard error of the estimate
	Samples     int
	Admitting   int
	// Partial reports an interrupted run: Samples is then the number of
	// samples actually completed (possibly 0, in which case the estimate
	// is vacuous) and the estimator statistics cover only those.
	Partial bool
	// Reason says why an interrupted run stopped.
	Reason string
}

// ConfidenceInterval returns the estimate ± z·stderr interval clamped to
// [0, 1]; z = 1.96 gives ≈95 % coverage.
func (e Estimate) ConfidenceInterval(z float64) (lo, hi float64) {
	lo = e.Reliability - z*e.StdErr
	hi = e.Reliability + z*e.StdErr
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// mcCheckEvery is the per-worker cancellation poll grain for the sampling
// engines; samples are dearer than enumeration steps (|E| PRNG draws plus
// a max flow each), so a finer grain than anytime.CheckEvery costs
// nothing measurable.
const mcCheckEvery = 256

// MonteCarlo estimates the reliability by sampling failure configurations.
// The sample set is split into fixed-size blocks, each driven by its own
// deterministic PRNG stream derived from seed, so the result is identical
// for any Parallelism setting. Unlike the exact engines it scales to
// arbitrarily large graphs.
//
// With opt.Ctl the run is anytime: an interrupted run returns the
// estimate over the samples completed so far with Partial set. (An
// interrupted run is deterministic only in distribution — how many
// samples finish before the stop lands depends on scheduling.)
func MonteCarlo(g *graph.Graph, dem graph.Demand, samples int, seed int64, opt Options) (Estimate, error) {
	if err := validate(g, dem); err != nil {
		return Estimate{}, err
	}
	if samples < 1 {
		return Estimate{}, fmt.Errorf("reliability: sample count %d must be ≥ 1", samples)
	}
	proto, handles := maxflow.FromGraph(g)
	pFail := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}
	s, t := int32(dem.S), int32(dem.T)

	const blockSize = 4096
	nBlocks := (samples + blockSize - 1) / blockSize
	hits := make([]int, nBlocks)
	done := make([]int, nBlocks)
	errs := make([]error, nBlocks)

	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.workers())
	for b := 0; b < nBlocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var cur uint64
			defer anytime.RecoverInto(&errs[b], opt.Ctl, "Monte Carlo worker", &cur)
			if opt.Ctl.Stopped() {
				return
			}
			n := blockSize
			if b == nBlocks-1 {
				n = samples - b*blockSize
			}
			rng := rand.New(rand.NewSource(seed + int64(b)*0x5851F42D4C957F2D))
			nw := proto.Clone()
			h := 0
			var callsMark int64
			for i := 0; i < n; i++ {
				if i > 0 && i%mcCheckEvery == 0 {
					if !opt.Ctl.Charge(mcCheckEvery, nw.Stats.MaxFlowCalls-callsMark) {
						break
					}
					callsMark = nw.Stats.MaxFlowCalls
				}
				cur = uint64(i)
				if opt.TestHook != nil {
					opt.TestHook(cur)
				}
				for j := range handles {
					nw.SetEnabled(handles[j], rng.Float64() >= pFail[j])
				}
				if nw.MaxFlow(s, t, dem.D) >= dem.D {
					h++
				}
				done[b]++
			}
			opt.Ctl.Charge(uint64(done[b]%mcCheckEvery), nw.Stats.MaxFlowCalls-callsMark)
			hits[b] = h
		}(b)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return Estimate{}, err
	}

	total, completed := 0, 0
	for b := range hits {
		total += hits[b]
		completed += done[b]
	}
	est := Estimate{Samples: completed, Admitting: total}
	if completed < samples {
		est.Partial = true
		est.Reason = opt.Ctl.Reason()
	}
	if completed == 0 {
		return est, nil
	}
	p := float64(total) / float64(completed)
	est.Reliability = p
	est.StdErr = math.Sqrt(p * (1 - p) / float64(completed))
	return est, nil
}
