package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
)

func TestMostProbableStatesExactWhenFull(t *testing.T) {
	// With maxFailures = |E| every configuration is examined: both bounds
	// equal the exact reliability.
	rng := rand.New(rand.NewSource(3))
	g, dem := randomTestGraph(rng, 5, 8)
	exact, err := Naive(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bd, err := MostProbableStates(g, dem, g.NumEdges())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Lower-exact.Reliability) > 1e-9 || math.Abs(bd.Upper-exact.Reliability) > 1e-9 {
		t.Fatalf("full enumeration bounds [%g, %g] vs exact %g", bd.Lower, bd.Upper, exact.Reliability)
	}
}

func TestMostProbableStatesTightensWithBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, dem := randomTestGraph(rng, 6, 10)
	exact, err := Naive(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	prevWidth := math.Inf(1)
	for L := 0; L <= g.NumEdges(); L++ {
		bd, err := MostProbableStates(g, dem, L)
		if err != nil {
			t.Fatal(err)
		}
		if bd.Lower > exact.Reliability+1e-9 || exact.Reliability > bd.Upper+1e-9 {
			t.Fatalf("L=%d: bounds [%g, %g] miss exact %g", L, bd.Lower, bd.Upper, exact.Reliability)
		}
		width := bd.Upper - bd.Lower
		if width > prevWidth+1e-9 {
			t.Fatalf("L=%d: interval widened from %g to %g", L, prevWidth, width)
		}
		prevWidth = width
	}
	if prevWidth > 1e-9 {
		t.Fatalf("final interval did not collapse: width %g", prevWidth)
	}
}

func TestMostProbableStatesReliableNetwork(t *testing.T) {
	// Very reliable links: two layers already give a tight interval.
	b := graph.NewBuilder()
	s := b.AddNode()
	a := b.AddNode()
	c := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, a, 1, 0.01)
	b.AddEdge(s, c, 1, 0.01)
	b.AddEdge(a, tt, 1, 0.01)
	b.AddEdge(c, tt, 1, 0.01)
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 1}
	bd, err := MostProbableStates(g, dem, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Upper-bd.Lower > 1e-4 {
		t.Fatalf("interval too wide for a reliable network: [%g, %g]", bd.Lower, bd.Upper)
	}
	exact, err := Naive(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Lower > exact.Reliability || exact.Reliability > bd.Upper {
		t.Fatalf("bounds [%g, %g] miss exact %g", bd.Lower, bd.Upper, exact.Reliability)
	}
}

func TestMostProbableStatesZeroProbLinks(t *testing.T) {
	// p = 0 links never fail and must not be branched on.
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, tt, 1, 0)
	b.AddEdge(s, tt, 1, 0.5)
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 1}
	bd, err := MostProbableStates(g, dem, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Lower-1) > 1e-12 || math.Abs(bd.Upper-1) > 1e-12 {
		t.Fatalf("bounds = [%g, %g], want [1, 1]", bd.Lower, bd.Upper)
	}
}

func TestMostProbableStatesErrors(t *testing.T) {
	g, dem := singleEdge(0.2)
	if _, err := MostProbableStates(g, dem, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
	if _, err := MostProbableStates(nil, dem, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestFailureLayerMass(t *testing.T) {
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, tt, 1, 0.1)
	b.AddEdge(s, tt, 1, 0.2)
	g := b.MustBuild()
	layers, tail := FailureLayerMass(g, 2)
	want := []float64{0.9 * 0.8, 0.1*0.8 + 0.9*0.2, 0.1 * 0.2}
	for i, w := range want {
		if math.Abs(layers[i]-w) > 1e-12 {
			t.Fatalf("layer %d = %g, want %g", i, layers[i], w)
		}
	}
	if math.Abs(tail) > 1e-12 {
		t.Fatalf("tail = %g, want 0", tail)
	}
	// Truncated: tail is the exact remainder.
	layers, tail = FailureLayerMass(g, 0)
	if math.Abs(layers[0]-0.72) > 1e-12 || math.Abs(tail-0.28) > 1e-12 {
		t.Fatalf("truncated = %v, %g", layers, tail)
	}
}

// Property: bounds always bracket the exact value, and the examined mass
// matches the layer-mass DP.
func TestQuickMostProbableStatesSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomTestGraph(rng, 5, 9)
		exact, err := Naive(g, dem, Options{})
		if err != nil {
			return false
		}
		L := rng.Intn(g.NumEdges() + 1)
		bd, err := MostProbableStates(g, dem, L)
		if err != nil {
			return false
		}
		if bd.Lower > exact.Reliability+1e-9 || exact.Reliability > bd.Upper+1e-9 {
			return false
		}
		// Interval width equals the unexamined tail mass.
		_, tail := FailureLayerMass(g, L)
		return math.Abs((bd.Upper-bd.Lower)-tail) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
