package reliability

import (
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// factorChargeEvery is the charging grain of the factoring engine: each
// branch node costs up to two max-flow computations, so a coarser grain
// than the enumeration engines' anytime.CheckEvery keeps accounting tight
// without touching the hot path.
const factorChargeEvery = 64

// Factoring computes the exact reliability by pivotal decomposition
// (conditioning on one link's state at a time) with two-sided pruning:
//
//   - if even with every undecided link operational the demand is not
//     admitted, the whole branch contributes 0;
//   - if with every undecided link failed the demand is still admitted,
//     the branch contributes its entire remaining probability mass.
//
// Between prunings it conditions on a link that carries flow in the
// optimistic max flow, because links off every optimal flow rarely decide
// feasibility. This is the classical exact alternative to plain
// enumeration; the paper's algorithm instead exploits bottleneck structure.
//
// With opt.Ctl the run is anytime: both prunings *prove* mass (admitting
// and failing respectively), so an interrupted run certifies the interval
// [proven admitting, 1 − proven failing] around the true reliability and
// returns it in a partial Result instead of discarding the work.
func Factoring(g *graph.Graph, dem graph.Demand, opt Options) (Result, error) {
	if err := validate(g, dem); err != nil {
		return Result{}, err
	}
	m := g.NumEdges()
	f := &factorer{
		g:    g,
		dem:  dem,
		ctl:  opt.Ctl,
		hook: opt.TestHook,
	}
	f.nw, f.handles = maxflow.FromGraph(g)
	f.state = make([]int8, m)
	// Parallelize the top of the conditioning tree: up to splitDepth
	// levels, the down-branch is handed to a fresh goroutine with its own
	// cloned solver state. Both orders compute `up + down` from the same
	// independently evaluated subtree values, so the result is identical
	// whether or not a split happens — scheduling cannot change it.
	f.sh = &factorShared{sem: make(chan struct{}, opt.workers())}
	if opt.workers() > 1 && m >= 8 {
		f.sh.splitDepth = 6
	}
	var res Result
	var topErr error
	func() {
		defer anytime.RecoverInto(&topErr, f.ctl, "factoring solver", &f.nodes)
		res.Reliability = f.rec(1.0, 0, &res.Stats)
	}()
	f.flushCharge()
	f.sh.mu.Lock() // all children joined before rec returned normally
	res.Stats.add(f.sh.childStats)
	err := f.sh.panicErr
	if err == nil {
		err = topErr
	}
	f.sh.mu.Unlock()
	if err != nil {
		return Result{}, err
	}
	res.Stats.MaxFlowCalls += f.nw.Stats.MaxFlowCalls
	res.Stats.AugmentUnits += f.nw.Stats.AugmentUnits
	res.seal(f.ctl, res.Reliability, res.Stats.refuted)
	return res, nil
}

const (
	stUndecided int8 = iota
	stUp
	stDown
)

// factorShared is the split machinery shared across the whole solver tree.
type factorShared struct {
	splitDepth int           // spawn goroutines above this depth (0 = off)
	sem        chan struct{} // bounds concurrent goroutines
	mu         sync.Mutex
	childStats Stats
	panicErr   error // first recovered worker panic
}

// recordPanic stores the first worker panic and stops the run.
func (sh *factorShared) recordPanic(ctl *anytime.Ctl, node uint64, v any) {
	err := &anytime.PanicError{Where: "factoring worker", Config: node, Value: v}
	sh.mu.Lock()
	if sh.panicErr == nil {
		sh.panicErr = err
	}
	sh.mu.Unlock()
	ctl.Stop(err.Error())
}

type factorer struct {
	g       *graph.Graph
	dem     graph.Demand
	nw      *maxflow.Network
	handles []maxflow.Handle
	state   []int8
	sh      *factorShared
	ctl     *anytime.Ctl
	hook    func(uint64)

	// Per-worker amortized budget accounting.
	nodes     uint64 // branch nodes visited by this worker
	pending   uint64 // nodes not yet charged to the controller
	callsMark int64  // nw.Stats.MaxFlowCalls at the last charge
}

// clone returns an independent solver positioned at the same partial
// state; the split machinery (sem, stats sink) is shared.
func (f *factorer) clone() *factorer {
	c := *f
	c.nw = f.nw.Clone()
	c.state = append([]int8(nil), f.state...)
	c.nodes, c.pending, c.callsMark = 0, 0, 0
	return &c
}

// flushInto merges a child's private counters into the shared sink.
func (f *factorer) flushInto(stats *Stats) {
	stats.MaxFlowCalls += f.nw.Stats.MaxFlowCalls
	stats.AugmentUnits += f.nw.Stats.AugmentUnits
	f.sh.mu.Lock()
	f.sh.childStats.add(*stats)
	f.sh.mu.Unlock()
}

// flushCharge reports this worker's outstanding work to the controller.
func (f *factorer) flushCharge() {
	if f.pending > 0 {
		f.ctl.Charge(f.pending, f.nw.Stats.MaxFlowCalls-f.callsMark)
		f.pending, f.callsMark = 0, f.nw.Stats.MaxFlowCalls
	}
}

// setPhase enables the links according to the optimistic (undecided = up)
// or pessimistic (undecided = down) view.
func (f *factorer) setPhase(optimistic bool) {
	for i, st := range f.state {
		on := st == stUp || (optimistic && st == stUndecided)
		f.nw.SetEnabled(f.handles[i], on)
	}
}

// rec returns the conditional reliability of the current partial state,
// weighted by branchProb (the probability of reaching this state).
// The returned value is already multiplied by branchProb. Mass proven
// non-admitting is recorded in stats.refuted; an interrupted branch
// contributes to neither side, leaving its mass in the certified gap.
func (f *factorer) rec(branchProb float64, depth int, stats *Stats) float64 {
	f.nodes++
	f.pending++
	if f.pending >= factorChargeEvery {
		calls := f.nw.Stats.MaxFlowCalls - f.callsMark
		f.callsMark = f.nw.Stats.MaxFlowCalls
		f.ctl.Charge(f.pending, calls)
		f.pending = 0
	}
	if f.ctl.Stopped() {
		return 0 // unexplored: stays inside the certified gap
	}
	stats.Configs++
	if f.hook != nil {
		f.hook(f.nodes)
	}
	s, t, d := int32(f.dem.S), int32(f.dem.T), f.dem.D

	// Optimistic check: can the demand be met at all down this branch?
	f.setPhase(true)
	if f.nw.MaxFlow(s, t, d) < d {
		stats.refuted += branchProb
		return 0
	}
	// Remember which links the optimistic flow uses, to pick the pivot.
	pivot := -1
	for i, st := range f.state {
		if st == stUndecided && f.nw.FlowOn(f.handles[i]) != 0 {
			pivot = i
			break
		}
	}
	// Pessimistic check: is the demand met even if every undecided link
	// fails? Then all remaining mass succeeds.
	f.setPhase(false)
	if f.nw.MaxFlow(s, t, d) >= d {
		stats.Admitting++
		return branchProb
	}
	if pivot == -1 {
		// No undecided link carries optimistic flow, yet optimistic
		// succeeds and pessimistic fails — impossible, because the two
		// phases then solve the same network. Guard anyway by picking the
		// first undecided link.
		for i, st := range f.state {
			if st == stUndecided {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			// Fully decided and pessimistic == optimistic failed above.
			stats.refuted += branchProb
			return 0
		}
	}
	p := f.g.Edge(graph.EdgeID(pivot)).PFail

	// Try to hand the down-branch to another worker near the top of the
	// tree; fall through to sequential evaluation when the pool is busy.
	if depth < f.sh.splitDepth {
		select {
		case f.sh.sem <- struct{}{}:
			child := f.clone()
			child.state[pivot] = stDown
			ch := make(chan float64, 1)
			go func() {
				defer func() { <-f.sh.sem }()
				defer func() {
					if r := recover(); r != nil {
						f.sh.recordPanic(f.ctl, child.nodes, r)
						ch <- 0
					}
				}()
				var childStats Stats
				v := child.rec(branchProb*p, depth+1, &childStats)
				child.flushCharge()
				child.flushInto(&childStats) // flush before signalling done
				ch <- v
			}()
			f.state[pivot] = stUp
			up := f.rec(branchProb*(1-p), depth+1, stats)
			f.state[pivot] = stUndecided
			return up + <-ch
		default:
		}
	}

	var total float64
	f.state[pivot] = stUp
	total += f.rec(branchProb*(1-p), depth+1, stats)
	f.state[pivot] = stDown
	total += f.rec(branchProb*p, depth+1, stats)
	f.state[pivot] = stUndecided
	return total
}

// Admits reports whether the subgraph of g consisting of the links with
// alive bit set admits the demand, using one max-flow computation.
func Admits(g *graph.Graph, dem graph.Demand, alive conf.Mask) (bool, error) {
	if err := validate(g, dem); err != nil {
		return false, err
	}
	if g.NumEdges() > conf.MaxEnumEdges {
		return false, &conf.ErrTooManyEdges{N: g.NumEdges(), Where: "graph"}
	}
	nw, handles := maxflow.FromGraph(g)
	for i := range handles {
		nw.SetEnabled(handles[i], alive&(1<<uint(i)) != 0)
	}
	return nw.MaxFlow(int32(dem.S), int32(dem.T), dem.D) >= dem.D, nil
}
