package reliability

import (
	"sync"

	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// Factoring computes the exact reliability by pivotal decomposition
// (conditioning on one link's state at a time) with two-sided pruning:
//
//   - if even with every undecided link operational the demand is not
//     admitted, the whole branch contributes 0;
//   - if with every undecided link failed the demand is still admitted,
//     the branch contributes its entire remaining probability mass.
//
// Between prunings it conditions on a link that carries flow in the
// optimistic max flow, because links off every optimal flow rarely decide
// feasibility. This is the classical exact alternative to plain
// enumeration; the paper's algorithm instead exploits bottleneck structure.
func Factoring(g *graph.Graph, dem graph.Demand, opt Options) (Result, error) {
	if err := validate(g, dem); err != nil {
		return Result{}, err
	}
	m := g.NumEdges()
	f := &factorer{
		g:   g,
		dem: dem,
	}
	f.nw, f.handles = maxflow.FromGraph(g)
	f.state = make([]int8, m)
	// Parallelize the top of the conditioning tree: up to splitDepth
	// levels, the down-branch is handed to a fresh goroutine with its own
	// cloned solver state. Both orders compute `up + down` from the same
	// independently evaluated subtree values, so the result is identical
	// whether or not a split happens — scheduling cannot change it.
	f.sh = &factorShared{sem: make(chan struct{}, opt.workers())}
	if opt.workers() > 1 && m >= 8 {
		f.sh.splitDepth = 6
	}
	var res Result
	res.Reliability = f.rec(1.0, 0, &res.Stats)
	f.sh.mu.Lock() // all children joined before rec returned
	res.Stats.add(f.sh.childStats)
	f.sh.mu.Unlock()
	res.Stats.MaxFlowCalls += f.nw.Stats.MaxFlowCalls
	res.Stats.AugmentUnits += f.nw.Stats.AugmentUnits
	return res, nil
}

const (
	stUndecided int8 = iota
	stUp
	stDown
)

// factorShared is the split machinery shared across the whole solver tree.
type factorShared struct {
	splitDepth int           // spawn goroutines above this depth (0 = off)
	sem        chan struct{} // bounds concurrent goroutines
	mu         sync.Mutex
	childStats Stats
}

type factorer struct {
	g       *graph.Graph
	dem     graph.Demand
	nw      *maxflow.Network
	handles []maxflow.Handle
	state   []int8
	sh      *factorShared
}

// clone returns an independent solver positioned at the same partial
// state; the split machinery (sem, stats sink) is shared.
func (f *factorer) clone() *factorer {
	c := *f
	c.nw = f.nw.Clone()
	c.state = append([]int8(nil), f.state...)
	return &c
}

// flushInto merges a child's private counters into the shared sink.
func (f *factorer) flushInto(stats *Stats) {
	stats.MaxFlowCalls += f.nw.Stats.MaxFlowCalls
	stats.AugmentUnits += f.nw.Stats.AugmentUnits
	f.sh.mu.Lock()
	f.sh.childStats.add(*stats)
	f.sh.mu.Unlock()
}

// setPhase enables the links according to the optimistic (undecided = up)
// or pessimistic (undecided = down) view.
func (f *factorer) setPhase(optimistic bool) {
	for i, st := range f.state {
		on := st == stUp || (optimistic && st == stUndecided)
		f.nw.SetEnabled(f.handles[i], on)
	}
}

// rec returns the conditional reliability of the current partial state,
// weighted by branchProb (the probability of reaching this state).
// The returned value is already multiplied by branchProb.
func (f *factorer) rec(branchProb float64, depth int, stats *Stats) float64 {
	stats.Configs++
	s, t, d := int32(f.dem.S), int32(f.dem.T), f.dem.D

	// Optimistic check: can the demand be met at all down this branch?
	f.setPhase(true)
	if f.nw.MaxFlow(s, t, d) < d {
		return 0
	}
	// Remember which links the optimistic flow uses, to pick the pivot.
	pivot := -1
	for i, st := range f.state {
		if st == stUndecided && f.nw.FlowOn(f.handles[i]) != 0 {
			pivot = i
			break
		}
	}
	// Pessimistic check: is the demand met even if every undecided link
	// fails? Then all remaining mass succeeds.
	f.setPhase(false)
	if f.nw.MaxFlow(s, t, d) >= d {
		stats.Admitting++
		return branchProb
	}
	if pivot == -1 {
		// No undecided link carries optimistic flow, yet optimistic
		// succeeds and pessimistic fails — impossible, because the two
		// phases then solve the same network. Guard anyway by picking the
		// first undecided link.
		for i, st := range f.state {
			if st == stUndecided {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			// Fully decided and pessimistic == optimistic failed above.
			return 0
		}
	}
	p := f.g.Edge(graph.EdgeID(pivot)).PFail

	// Try to hand the down-branch to another worker near the top of the
	// tree; fall through to sequential evaluation when the pool is busy.
	if depth < f.sh.splitDepth {
		select {
		case f.sh.sem <- struct{}{}:
			child := f.clone()
			child.state[pivot] = stDown
			ch := make(chan float64, 1)
			go func() {
				defer func() { <-f.sh.sem }()
				var childStats Stats
				v := child.rec(branchProb*p, depth+1, &childStats)
				child.flushInto(&childStats) // flush before signalling done
				ch <- v
			}()
			f.state[pivot] = stUp
			up := f.rec(branchProb*(1-p), depth+1, stats)
			f.state[pivot] = stUndecided
			return up + <-ch
		default:
		}
	}

	var total float64
	f.state[pivot] = stUp
	total += f.rec(branchProb*(1-p), depth+1, stats)
	f.state[pivot] = stDown
	total += f.rec(branchProb*p, depth+1, stats)
	f.state[pivot] = stUndecided
	return total
}

// Admits reports whether the subgraph of g consisting of the links with
// alive bit set admits the demand, using one max-flow computation.
func Admits(g *graph.Graph, dem graph.Demand, alive conf.Mask) (bool, error) {
	if err := validate(g, dem); err != nil {
		return false, err
	}
	if g.NumEdges() > conf.MaxEnumEdges {
		return false, &conf.ErrTooManyEdges{N: g.NumEdges(), Where: "graph"}
	}
	nw, handles := maxflow.FromGraph(g)
	for i := range handles {
		nw.SetEnabled(handles[i], alive&(1<<uint(i)) != 0)
	}
	return nw.MaxFlow(int32(dem.S), int32(dem.T), dem.D) >= dem.D, nil
}
