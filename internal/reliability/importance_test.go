package reliability

import (
	"math"
	"math/rand"
	"testing"

	"flowrel/internal/graph"
	"flowrel/internal/testutil"
)

func reliableDiamond(p float64) (*graph.Graph, graph.Demand) {
	b := graph.NewBuilder()
	s := b.AddNode()
	a := b.AddNode()
	c := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, a, 1, p)
	b.AddEdge(s, c, 1, p)
	b.AddEdge(a, tt, 1, p)
	b.AddEdge(c, tt, 1, p)
	return b.MustBuild(), graph.Demand{S: s, T: tt, D: 1}
}

func TestUnreliabilityISUnbiased(t *testing.T) {
	g, dem := reliableDiamond(0.05)
	exact, err := Naive(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantU := 1 - exact.Reliability
	est, err := UnreliabilityIS(g, dem, 60000, 3, 0.4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Reliability-wantU) > 5*est.StdErr+1e-9 {
		t.Fatalf("IS estimate %g ± %g vs exact U %g", est.Reliability, est.StdErr, wantU)
	}
}

func TestUnreliabilityISVarianceReduction(t *testing.T) {
	// On a very reliable network, IS at equal sample count must have far
	// smaller RELATIVE error on U than plain MC (which mostly samples the
	// all-up state).
	g, dem := reliableDiamond(0.005)
	exact, err := Naive(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantU := 1 - exact.Reliability // ≈ 5e-5

	const n = 20000
	is, err := UnreliabilityIS(g, dem, n, 7, 0.3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MonteCarlo(g, dem, n, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Plain MC's stderr on U is sqrt(U/n) ≈ 1.6e-6·… — compare relative
	// standard errors; IS should win by at least 3x here.
	mcRel := mc.StdErr / math.Max(wantU, 1e-12)
	isRel := is.StdErr / math.Max(wantU, 1e-12)
	if isRel*3 > mcRel {
		t.Fatalf("IS relative stderr %.3g not ≪ MC %.3g", isRel, mcRel)
	}
	// And it is still accurate.
	if math.Abs(is.Reliability-wantU) > 6*is.StdErr+1e-12 {
		t.Fatalf("IS %g ± %g vs exact U %g", is.Reliability, is.StdErr, wantU)
	}
}

func TestUnreliabilityISDeterministic(t *testing.T) {
	g, dem := reliableDiamond(0.05)
	a, err := UnreliabilityIS(g, dem, 10000, 9, 0.4, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnreliabilityIS(g, dem, 10000, 9, 0.4, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(a.Reliability, b.Reliability, 0) {
		t.Fatalf("not deterministic: %g vs %g", a.Reliability, b.Reliability)
	}
}

func TestUnreliabilityISErrors(t *testing.T) {
	g, dem := reliableDiamond(0.05)
	if _, err := UnreliabilityIS(g, dem, 0, 1, 0.4, Options{}); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := UnreliabilityIS(g, dem, 10, 1, 0, Options{}); err == nil {
		t.Fatal("bias 0 accepted")
	}
	if _, err := UnreliabilityIS(g, dem, 10, 1, 1, Options{}); err == nil {
		t.Fatal("bias 1 accepted")
	}
	if _, err := UnreliabilityIS(nil, dem, 10, 1, 0.4, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestUnreliabilityISRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 5; trial++ {
		g, dem := randomTestGraph(rng, 6, 9)
		exact, err := Naive(g, dem, Options{})
		if err != nil {
			t.Fatal(err)
		}
		est, err := UnreliabilityIS(g, dem, 40000, int64(trial), 0.5, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wantU := 1 - exact.Reliability
		if math.Abs(est.Reliability-wantU) > 6*est.StdErr+1e-9 {
			t.Fatalf("trial %d: IS %g ± %g vs %g", trial, est.Reliability, est.StdErr, wantU)
		}
	}
}
