package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
)

func TestSuggestUpgradesSeries(t *testing.T) {
	// Series s→a→t with p = 0.1, 0.3: the weakest link must be hardened
	// first; after both the system is perfect.
	b := graph.NewBuilder()
	s := b.AddNode()
	a := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, a, 1, 0.1)
	b.AddEdge(a, tt, 1, 0.3)
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 1}
	plan, err := SuggestUpgrades(g, dem, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Links) != 2 || plan.Links[0] != 1 {
		t.Fatalf("plan = %+v (want link 1 first)", plan)
	}
	if math.Abs(plan.Before-0.63) > 1e-12 {
		t.Fatalf("before = %g", plan.Before)
	}
	if math.Abs(plan.After[0]-0.9) > 1e-12 || math.Abs(plan.After[1]-1.0) > 1e-12 {
		t.Fatalf("after = %v", plan.After)
	}
}

func TestSuggestUpgradesStopsEarly(t *testing.T) {
	// All links already perfect: the plan is empty regardless of budget.
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, tt, 1, 0)
	g := b.MustBuild()
	plan, err := SuggestUpgrades(g, graph.Demand{S: s, T: tt, D: 1}, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Links) != 0 || plan.Before != 1 {
		t.Fatalf("plan = %+v", plan)
	}
}

func TestSuggestUpgradesErrors(t *testing.T) {
	g, dem := singleEdge(0.2)
	if _, err := SuggestUpgrades(g, dem, 0, Options{}); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := SuggestUpgrades(nil, dem, 1, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// Property: the plan's reliability sequence is non-decreasing, starts
// above the baseline, each step matches an independent recomputation, and
// budget 1 picks the globally best single link.
func TestQuickSuggestUpgrades(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomTestGraph(rng, 5, 8)
		plan, err := SuggestUpgrades(g, dem, 2, Options{})
		if err != nil {
			return false
		}
		prev := plan.Before
		cur := g
		for i, link := range plan.Links {
			if plan.After[i] < prev-1e-12 {
				return false
			}
			cur = hardenLink(cur, link)
			check, err := Factoring(cur, dem, Options{})
			if err != nil || math.Abs(check.Reliability-plan.After[i]) > 1e-9 {
				return false
			}
			prev = plan.After[i]
		}
		// Budget-1 optimality: no single link beats the first pick.
		if len(plan.Links) > 0 {
			for _, e := range g.Edges() {
				up, err := conditionalReliability(g, dem, e.ID, true, Options{})
				if err != nil {
					return false
				}
				if up > plan.After[0]+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
