package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
)

// figure2Like builds the bridge graph used across the suite.
func figure2Like() (*graph.Graph, graph.Demand, graph.EdgeID) {
	b := graph.NewBuilder()
	s := b.AddNode()
	a := b.AddNode()
	c := b.AddNode()
	x := b.AddNode()
	y := b.AddNode()
	d := b.AddNode()
	e := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, a, 1, 0.1)
	b.AddEdge(s, c, 1, 0.1)
	b.AddEdge(a, x, 1, 0.1)
	b.AddEdge(c, x, 1, 0.1)
	bridge := b.AddEdge(x, y, 1, 0.05)
	b.AddEdge(y, d, 1, 0.1)
	b.AddEdge(y, e, 1, 0.1)
	b.AddEdge(d, tt, 1, 0.1)
	b.AddEdge(e, tt, 1, 0.1)
	return b.MustBuild(), graph.Demand{S: s, T: tt, D: 1}, bridge
}

func TestBirnbaumBridgeDominates(t *testing.T) {
	g, dem, bridge := figure2Like()
	imps, err := BirnbaumImportance(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != g.NumEdges() {
		t.Fatalf("got %d importances", len(imps))
	}
	for _, imp := range imps {
		if imp.Link == bridge {
			continue
		}
		if imp.Birnbaum >= imps[bridge].Birnbaum {
			t.Fatalf("link %d importance %g ≥ bridge %g", imp.Link, imp.Birnbaum, imps[bridge].Birnbaum)
		}
	}
	// A down bridge kills everything: RDown = 0 exactly.
	if imps[bridge].RDown != 0 {
		t.Fatalf("bridge RDown = %g, want 0", imps[bridge].RDown)
	}
}

func TestBirnbaumSeriesClosedForm(t *testing.T) {
	// Series s→a→t: I_B(e) = survival probability of the other link.
	b := graph.NewBuilder()
	s := b.AddNode()
	a := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, a, 1, 0.1)
	b.AddEdge(a, tt, 1, 0.3)
	g := b.MustBuild()
	imps, err := BirnbaumImportance(g, graph.Demand{S: s, T: tt, D: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(imps[0].Birnbaum-0.7) > 1e-12 || math.Abs(imps[1].Birnbaum-0.9) > 1e-12 {
		t.Fatalf("importances = %+v", imps)
	}
}

func TestBirnbaumErrors(t *testing.T) {
	if _, err := BirnbaumImportance(nil, graph.Demand{}, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
}

// Property: the pivotal identity R = (1-p)·RUp + p·RDown holds for every
// link, and Birnbaum importances are non-negative (flow reliability is
// monotone in link availability).
func TestQuickPivotalIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomTestGraph(rng, 5, 8)
		r, err := Naive(g, dem, Options{})
		if err != nil {
			return false
		}
		imps, err := BirnbaumImportance(g, dem, Options{})
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			imp := imps[e.ID]
			if imp.Birnbaum < -1e-9 {
				return false
			}
			recon := (1-e.PFail)*imp.RUp + e.PFail*imp.RDown
			if math.Abs(recon-r.Reliability) > 1e-9 {
				return false
			}
			// Improvement = (RUp − R) = p·Birnbaum.
			if math.Abs(imp.Improvement-e.PFail*imp.Birnbaum) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
