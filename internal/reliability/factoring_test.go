package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/testutil"
)

// Property: parallel factoring is bit-identical to sequential factoring
// (the split reorders nothing: both compute up + down from independently
// evaluated subtrees), and the work statistics agree.
func TestQuickFactoringParallelDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomTestGraph(rng, 7, 14)
		seq, err := Factoring(g, dem, Options{Parallelism: 1})
		if err != nil {
			return false
		}
		for _, workers := range []int{2, 8} {
			par, err := Factoring(g, dem, Options{Parallelism: workers})
			if err != nil {
				return false
			}
			if !testutil.AlmostEqual(par.Reliability, seq.Reliability, 0) {
				t.Logf("seed %d workers %d: %.17g vs %.17g", seed, workers, par.Reliability, seq.Reliability)
				return false
			}
			if par.Stats.Configs != seq.Stats.Configs || par.Stats.Admitting != seq.Stats.Admitting {
				t.Logf("seed %d workers %d: stats %+v vs %+v", seed, workers, par.Stats, seq.Stats)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestFactoringParallelSpeedupSmoke only checks that the parallel path is
// actually exercised on a larger instance (it must still match naive).
func TestFactoringParallelExercised(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g, dem := randomTestGraph(rng, 8, 18)
	par, err := Factoring(g, dem, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Naive(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(par.Reliability-want.Reliability) > 1e-9 {
		t.Fatalf("parallel factoring %.12f vs naive %.12f", par.Reliability, want.Reliability)
	}
}
