package reliability

import (
	"context"
	"fmt"
	"math/big"
	"math/bits"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// Naive computes the exact reliability by enumerating all 2^|E| failure
// configurations (Figure 1 of the paper). The configuration space is split
// into contiguous chunks processed by parallel workers, each owning a
// private flow network; per-chunk partial sums are reduced in chunk order,
// so the result is deterministic for a fixed chunk count.
//
// With opt.Ctl the run is anytime: workers poll the controller every
// anytime.CheckEvery configurations, and an interrupted run returns a
// partial Result whose [Lo, Hi] interval is certified — Lo is the
// admitting mass among examined configurations and 1−Hi the refuted mass,
// so the true reliability always lies inside.
func Naive(g *graph.Graph, dem graph.Demand, opt Options) (Result, error) {
	if err := validate(g, dem); err != nil {
		return Result{}, err
	}
	m := g.NumEdges()
	if m > conf.MaxEnumEdges {
		return Result{}, &conf.ErrTooManyEdges{N: m, Where: "graph"}
	}

	pFail := make([]float64, m)
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}
	table := conf.NewTable(pFail)
	proto, handles := maxflow.FromGraph(g)
	s, t := int32(dem.S), int32(dem.T)

	chunks := conf.SplitEnum(m)
	partial := make([]float64, len(chunks))
	examined := make([]float64, len(chunks))
	stats := make([]Stats, len(chunks))
	errs := make([]error, len(chunks))

	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.workers())
	for ci, r := range chunks {
		wg.Add(1)
		go func(ci int, lo, hi uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cur := lo
			defer anytime.RecoverInto(&errs[ci], opt.Ctl, "naive enumeration worker", &cur)
			nw := proto.Clone()
			if opt.GrayCode {
				partial[ci], examined[ci], stats[ci] = naiveGrayChunk(nw, handles, table, s, t, dem.D, lo, hi, &opt, &cur)
			} else {
				partial[ci], examined[ci], stats[ci] = naiveBinaryChunk(nw, handles, table, s, t, dem.D, lo, hi, &opt, &cur)
			}
		}(ci, r[0], r[1])
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return Result{}, err
	}

	res := Result{}
	exam := 0.0
	for ci := range chunks {
		res.Reliability += partial[ci]
		exam += examined[ci]
		res.Stats.add(stats[ci])
	}
	res.seal(opt.Ctl, res.Reliability, exam-res.Reliability)
	return res, nil
}

// naiveBinaryChunk walks masks [lo, hi) in binary order, re-solving from
// scratch per configuration (only the edges whose state differs from the
// previous mask are toggled, but the flow restarts at zero). It returns
// the admitting and total probability mass of the configurations it
// actually examined before the controller stopped it.
func naiveBinaryChunk(nw *maxflow.Network, handles []maxflow.Handle, table *conf.Table, s, t int32, d int, lo, hi uint64, opt *Options, cur *uint64) (float64, float64, Stats) {
	var st Stats
	sum, exam := 0.0, 0.0
	prev := ^uint64(0) // all enabled, the state FromGraph builds
	var sinceCheck uint64
	var callsMark int64
	for mask := lo; mask < hi; mask++ {
		if sinceCheck >= anytime.CheckEvery {
			if !opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark) {
				break
			}
			sinceCheck, callsMark = 0, nw.Stats.MaxFlowCalls
		}
		*cur = mask
		if opt.TestHook != nil {
			opt.TestHook(mask)
		}
		diff := (mask ^ prev) & (1<<uint(len(handles)) - 1)
		for diff != 0 {
			i := trailingZeros(diff)
			diff &= diff - 1
			nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
		}
		prev = mask
		st.Configs++
		sinceCheck++
		p := table.Prob(mask)
		exam += p
		if nw.MaxFlow(s, t, d) >= d {
			st.Admitting++
			sum += p
		}
	}
	opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark)
	st.MaxFlowCalls = nw.Stats.MaxFlowCalls
	st.AugmentUnits = nw.Stats.AugmentUnits
	return sum, exam, st
}

// naiveGrayChunk walks Gray masks for indices [lo, hi), maintaining the
// flow incrementally: one edge flips per step, so the previous flow is
// repaired rather than recomputed.
func naiveGrayChunk(nw *maxflow.Network, handles []maxflow.Handle, table *conf.Table, s, t int32, d int, lo, hi uint64, opt *Options, cur *uint64) (float64, float64, Stats) {
	var st Stats
	sum, exam := 0.0, 0.0
	mask := conf.GrayMask(lo)
	for i := range handles {
		nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
	}
	nw.ResetFlow()
	value := nw.Augment(s, t, d)
	record := func() {
		st.Configs++
		p := table.Prob(mask)
		exam += p
		if value >= d {
			st.Admitting++
			sum += p
		}
	}
	*cur = mask
	if opt.TestHook != nil {
		opt.TestHook(mask)
	}
	record()
	var sinceCheck uint64
	var callsMark int64
	for i := lo + 1; i < hi; i++ {
		if sinceCheck >= anytime.CheckEvery {
			if !opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark) {
				break
			}
			sinceCheck, callsMark = 0, nw.Stats.MaxFlowCalls
		}
		flip := conf.GrayFlip(i)
		bit := uint64(1) << uint(flip)
		mask ^= bit
		*cur = mask
		if opt.TestHook != nil {
			opt.TestHook(mask)
		}
		if mask&bit != 0 {
			nw.EnableIncremental(handles[flip])
		} else {
			value -= nw.DisableIncremental(handles[flip], s, t)
		}
		value += nw.Augment(s, t, d-value)
		sinceCheck++
		record()
	}
	opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark)
	st.MaxFlowCalls = nw.Stats.MaxFlowCalls
	st.AugmentUnits = nw.Stats.AugmentUnits
	return sum, exam, st
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// NaiveExact computes the reliability by the same enumeration in exact
// rational arithmetic (link probabilities are taken as the exact rational
// values of their float64 representations). It is the correctness oracle
// for every floating-point engine. Sequential; exponential in |E|.
func NaiveExact(g *graph.Graph, dem graph.Demand) (*big.Rat, error) {
	return NaiveExactCtx(context.Background(), g, dem)
}

// NaiveExactCtx is NaiveExact with cooperative cancellation. The oracle is
// all-or-nothing: a cancelled run returns an error wrapping
// anytime.ErrInterrupted rather than a partial rational.
func NaiveExactCtx(ctx context.Context, g *graph.Graph, dem graph.Demand) (*big.Rat, error) {
	if err := validate(g, dem); err != nil {
		return nil, err
	}
	m := g.NumEdges()
	if m > conf.MaxEnumEdges {
		return nil, &conf.ErrTooManyEdges{N: m, Where: "graph"}
	}
	pFail := make([]*big.Rat, m)
	for i, e := range g.Edges() {
		// SetFloat64 is exact: every finite float64 is rational.
		pFail[i] = new(big.Rat).SetFloat64(e.PFail)
	}
	nw, handles := maxflow.FromGraph(g)
	s, t := int32(dem.S), int32(dem.T)
	sum := new(big.Rat)
	total := uint64(1) << uint(m)
	prev := ^uint64(0)
	for mask := uint64(0); mask < total; mask++ {
		if mask&(anytime.CheckEvery-1) == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w: oracle enumeration at configuration %d of %d (%v)", anytime.ErrInterrupted, mask, total, err)
			}
		}
		diff := (mask ^ prev) & (total - 1)
		for diff != 0 {
			i := trailingZeros(diff)
			diff &= diff - 1
			nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
		}
		prev = mask
		if nw.MaxFlow(s, t, dem.D) >= dem.D {
			sum.Add(sum, conf.ProbRat(pFail, mask))
		}
	}
	return sum, nil
}
