package reliability

import (
	"math/big"
	"math/bits"
	"sync"

	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// Naive computes the exact reliability by enumerating all 2^|E| failure
// configurations (Figure 1 of the paper). The configuration space is split
// into contiguous chunks processed by parallel workers, each owning a
// private flow network; per-chunk partial sums are reduced in chunk order,
// so the result is deterministic for a fixed chunk count.
func Naive(g *graph.Graph, dem graph.Demand, opt Options) (Result, error) {
	if err := validate(g, dem); err != nil {
		return Result{}, err
	}
	m := g.NumEdges()
	if m > conf.MaxEnumEdges {
		return Result{}, &conf.ErrTooManyEdges{N: m, Where: "graph"}
	}

	pFail := make([]float64, m)
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}
	table := conf.NewTable(pFail)
	proto, handles := maxflow.FromGraph(g)
	s, t := int32(dem.S), int32(dem.T)

	chunks := conf.SplitEnum(m)
	partial := make([]float64, len(chunks))
	stats := make([]Stats, len(chunks))

	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.workers())
	for ci, r := range chunks {
		wg.Add(1)
		go func(ci int, lo, hi uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			nw := proto.Clone()
			if opt.GrayCode {
				partial[ci], stats[ci] = naiveGrayChunk(nw, handles, table, s, t, dem.D, lo, hi)
			} else {
				partial[ci], stats[ci] = naiveBinaryChunk(nw, handles, table, s, t, dem.D, lo, hi)
			}
		}(ci, r[0], r[1])
	}
	wg.Wait()

	res := Result{}
	for ci := range chunks {
		res.Reliability += partial[ci]
		res.Stats.add(stats[ci])
	}
	return res, nil
}

// naiveBinaryChunk walks masks [lo, hi) in binary order, re-solving from
// scratch per configuration (only the edges whose state differs from the
// previous mask are toggled, but the flow restarts at zero).
func naiveBinaryChunk(nw *maxflow.Network, handles []maxflow.Handle, table *conf.Table, s, t int32, d int, lo, hi uint64) (float64, Stats) {
	var st Stats
	sum := 0.0
	prev := ^uint64(0) // all enabled, the state FromGraph builds
	for mask := lo; mask < hi; mask++ {
		diff := (mask ^ prev) & (1<<uint(len(handles)) - 1)
		for diff != 0 {
			i := trailingZeros(diff)
			diff &= diff - 1
			nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
		}
		prev = mask
		st.Configs++
		if nw.MaxFlow(s, t, d) >= d {
			st.Admitting++
			sum += table.Prob(mask)
		}
	}
	st.MaxFlowCalls = nw.Stats.MaxFlowCalls
	st.AugmentUnits = nw.Stats.AugmentUnits
	return sum, st
}

// naiveGrayChunk walks Gray masks for indices [lo, hi), maintaining the
// flow incrementally: one edge flips per step, so the previous flow is
// repaired rather than recomputed.
func naiveGrayChunk(nw *maxflow.Network, handles []maxflow.Handle, table *conf.Table, s, t int32, d int, lo, hi uint64) (float64, Stats) {
	var st Stats
	sum := 0.0
	mask := conf.GrayMask(lo)
	for i := range handles {
		nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
	}
	nw.ResetFlow()
	value := nw.Augment(s, t, d)
	record := func() {
		st.Configs++
		if value >= d {
			st.Admitting++
			sum += table.Prob(mask)
		}
	}
	record()
	for i := lo + 1; i < hi; i++ {
		flip := conf.GrayFlip(i)
		bit := uint64(1) << uint(flip)
		mask ^= bit
		if mask&bit != 0 {
			nw.EnableIncremental(handles[flip])
		} else {
			value -= nw.DisableIncremental(handles[flip], s, t)
		}
		value += nw.Augment(s, t, d-value)
		record()
	}
	st.MaxFlowCalls = nw.Stats.MaxFlowCalls
	st.AugmentUnits = nw.Stats.AugmentUnits
	return sum, st
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }

// NaiveExact computes the reliability by the same enumeration in exact
// rational arithmetic (link probabilities are taken as the exact rational
// values of their float64 representations). It is the correctness oracle
// for every floating-point engine. Sequential; exponential in |E|.
func NaiveExact(g *graph.Graph, dem graph.Demand) (*big.Rat, error) {
	if err := validate(g, dem); err != nil {
		return nil, err
	}
	m := g.NumEdges()
	if m > conf.MaxEnumEdges {
		return nil, &conf.ErrTooManyEdges{N: m, Where: "graph"}
	}
	pFail := make([]*big.Rat, m)
	for i, e := range g.Edges() {
		// SetFloat64 is exact: every finite float64 is rational.
		pFail[i] = new(big.Rat).SetFloat64(e.PFail)
	}
	nw, handles := maxflow.FromGraph(g)
	s, t := int32(dem.S), int32(dem.T)
	sum := new(big.Rat)
	total := uint64(1) << uint(m)
	prev := ^uint64(0)
	for mask := uint64(0); mask < total; mask++ {
		diff := (mask ^ prev) & (total - 1)
		for diff != 0 {
			i := trailingZeros(diff)
			diff &= diff - 1
			nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
		}
		prev = mask
		if nw.MaxFlow(s, t, dem.D) >= dem.D {
			sum.Add(sum, conf.ProbRat(pFail, mask))
		}
	}
	return sum, nil
}
