package reliability

import (
	"fmt"
	"sort"

	"flowrel/internal/anytime"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// MostProbableStates computes guaranteed reliability bounds by examining
// only the failure configurations with at most maxFailures failed links —
// the most probable states when links are reliable (the classical
// most-probable-states bounding method). With L = maxFailures:
//
//	lower = P(configurations with ≤ L failures that admit the demand)
//	upper = lower + P(more than L failures)
//
// The tail P(> L failures) is computed exactly (Poisson–binomial dynamic
// program), so the interval is certified. The work is Σ_{i≤L} C(|E|, i)
// max-flow calls — polynomial for constant L — which makes this the tool
// of choice for large, reliable networks where the interval collapses
// after a few layers. (Unlike Bounds it adapts: more budget, tighter
// interval.)
func MostProbableStates(g *graph.Graph, dem graph.Demand, maxFailures int) (Bound, error) {
	return MostProbableStatesOpt(g, dem, maxFailures, Options{})
}

// MostProbableStatesOpt is MostProbableStates under an Options — in
// particular a cancellation controller. The bounding trick generalizes to
// interrupted runs for free: the interval [admitting examined mass,
// admitting examined mass + unexamined mass] is certified no matter where
// the enumeration stopped, so a cancelled run simply returns a wider (but
// still guaranteed) interval with Partial set. Pass maxFailures = |E| and
// a budget to get the anytime form: the interval narrows monotonically
// until the budget runs out.
func MostProbableStatesOpt(g *graph.Graph, dem graph.Demand, maxFailures int, opt Options) (Bound, error) {
	if err := validate(g, dem); err != nil {
		return Bound{}, err
	}
	if maxFailures < 0 {
		return Bound{}, fmt.Errorf("reliability: maxFailures %d must be ≥ 0", maxFailures)
	}
	m := g.NumEdges()
	if maxFailures > m {
		maxFailures = m
	}
	pFail := make([]float64, m)
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}
	// Examine the likeliest links first so prefix products stay stable.
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return pFail[order[a]] > pFail[order[b]] })

	nw, handles := maxflow.FromGraph(g)
	s, t := int32(dem.S), int32(dem.T)

	// pAllUp = Π(1-p); each examined configuration's probability is
	// pAllUp · Π_{failed} p/(1-p), maintained along the DFS.
	pAllUp := 1.0
	for _, p := range pFail {
		pAllUp *= 1 - p
	}

	admitMass := 0.0
	examinedMass := 0.0
	var examined uint64
	var callsMark int64
	var recErr error
	var rec func(start, failures int, prob float64)
	rec = func(start, failures int, prob float64) {
		if examined%anytime.CheckEvery == 0 && examined > 0 {
			if !opt.Ctl.Charge(anytime.CheckEvery, nw.Stats.MaxFlowCalls-callsMark) {
				return
			}
			callsMark = nw.Stats.MaxFlowCalls
		}
		if opt.Ctl.Stopped() {
			return
		}
		examined++
		if opt.TestHook != nil {
			opt.TestHook(examined)
		}
		// Current configuration: links chosen so far are failed.
		examinedMass += prob
		if nw.MaxFlow(s, t, dem.D) >= dem.D {
			admitMass += prob
		}
		if failures == maxFailures {
			return
		}
		for oi := start; oi < m; oi++ {
			if opt.Ctl.Stopped() {
				return
			}
			e := order[oi]
			if pFail[e] == 0 {
				continue // a p=0 link never fails; skip its branch
			}
			nw.SetEnabled(handles[e], false)
			rec(oi+1, failures+1, prob*pFail[e]/(1-pFail[e]))
			nw.SetEnabled(handles[e], true)
		}
	}
	if pAllUp > 0 {
		func() {
			defer anytime.RecoverInto(&recErr, opt.Ctl, "most-probable-states enumeration", &examined)
			rec(0, 0, pAllUp)
		}()
		opt.Ctl.Charge(examined%anytime.CheckEvery, nw.Stats.MaxFlowCalls-callsMark)
		if recErr != nil {
			return Bound{}, recErr
		}
	} else {
		// Some link fails surely: configurations with it up have
		// probability 0; enumerate over the remaining links only. Rare
		// in practice (p(e)=1 is excluded by the model), but p very close
		// to 1 keeps pAllUp > 0, so only the degenerate exact-zero case
		// lands here — and the model forbids p = 1, so pAllUp == 0 cannot
		// occur. Guard anyway.
		return Bound{}, fmt.Errorf("reliability: degenerate link probabilities")
	}

	tail := 1 - examinedMass
	if tail < 0 {
		tail = 0
	}
	b := Bound{Lower: admitMass, Upper: admitMass + tail, CutsExamined: 0}
	if b.Upper > 1 {
		b.Upper = 1
	}
	if opt.Ctl.Stopped() {
		b.Partial = true
		b.Reason = opt.Ctl.Reason()
	}
	return b, nil
}

// FailureLayerMass returns, for i = 0…maxFailures, the exact probability
// that exactly i links fail (Poisson–binomial DP), plus the tail
// P(> maxFailures). Useful for choosing the layer budget.
func FailureLayerMass(g *graph.Graph, maxFailures int) (layers []float64, tail float64) {
	m := g.NumEdges()
	if maxFailures > m {
		maxFailures = m
	}
	dp := make([]float64, maxFailures+1)
	dp[0] = 1
	for _, e := range g.Edges() {
		p := e.PFail
		for i := maxFailures; i >= 0; i-- {
			v := dp[i] * (1 - p)
			if i > 0 {
				v += dp[i-1] * p
			}
			dp[i] = v
		}
	}
	sum := 0.0
	for _, v := range dp {
		sum += v
	}
	return dp, 1 - sum
}
