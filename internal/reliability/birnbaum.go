package reliability

import (
	"fmt"

	"flowrel/internal/graph"
)

// Importance ranks one link's contribution to the system reliability.
type Importance struct {
	Link graph.EdgeID
	// Birnbaum is ∂R/∂(1-p(e)) = R(G | e up) − R(G | e down): how much a
	// marginal improvement of this link's availability improves the
	// system. Bottleneck links dominate this ranking.
	Birnbaum float64
	// Improvement is R(G | e up) − R(G): the reliability gained by making
	// this link perfect (the "reliability achievement worth").
	Improvement float64
	// RUp and RDown are the conditional reliabilities.
	RUp, RDown float64
}

// BirnbaumImportance computes the Birnbaum importance of every link with
// 2|E| conditional factoring computations. The unconditional reliability
// satisfies, for every link e,
//
//	R = (1-p(e))·RUp(e) + p(e)·RDown(e)
//
// which the test suite asserts. The flowrel package wraps this with a
// compiled-plan fast path (two probability evaluations per link on one
// side-array construction) when the instance admits the bottleneck
// decomposition; this function is the engine-agnostic fallback.
func BirnbaumImportance(g *graph.Graph, dem graph.Demand, opt Options) ([]Importance, error) {
	if err := validate(g, dem); err != nil {
		return nil, err
	}
	out := make([]Importance, g.NumEdges())
	for _, e := range g.Edges() {
		up, err := conditionalReliability(g, dem, e.ID, true, opt)
		if err != nil {
			return nil, err
		}
		down, err := conditionalReliability(g, dem, e.ID, false, opt)
		if err != nil {
			return nil, err
		}
		out[e.ID] = Importance{
			Link:        e.ID,
			Birnbaum:    up - down,
			Improvement: up - ((1-e.PFail)*up + e.PFail*down),
			RUp:         up,
			RDown:       down,
		}
	}
	return out, nil
}

// UpgradePlan is a greedy hardening plan.
type UpgradePlan struct {
	// Links to harden (make perfectly reliable), in pick order.
	Links []graph.EdgeID
	// After[i] is the reliability once Links[:i+1] are hardened.
	After []float64
	// Before is the baseline reliability.
	Before float64
}

// SuggestUpgrades greedily picks up to budget links to harden (set
// p(e) = 0), each round choosing the link whose hardening buys the most —
// the reliability achievement worth RUp − R, recomputed after every pick
// because importances shift as the network improves. Greedy is optimal
// for budget 1 and a strong heuristic beyond (the marginal gains are not
// submodular in general, so global optimality is not guaranteed); the
// returned After sequence is non-decreasing by construction. Picking stops
// early when no link improves the reliability further.
func SuggestUpgrades(g *graph.Graph, dem graph.Demand, budget int, opt Options) (UpgradePlan, error) {
	if err := validate(g, dem); err != nil {
		return UpgradePlan{}, err
	}
	if budget < 1 {
		return UpgradePlan{}, fmt.Errorf("reliability: budget %d must be ≥ 1", budget)
	}
	base, err := Factoring(g, dem, opt)
	if err != nil {
		return UpgradePlan{}, err
	}
	plan := UpgradePlan{Before: base.Reliability}
	cur := g
	curR := base.Reliability
	hardened := make(map[graph.EdgeID]bool)
	for round := 0; round < budget; round++ {
		bestLink := graph.EdgeID(-1)
		bestR := curR
		for _, e := range cur.Edges() {
			if hardened[e.ID] || e.PFail == 0 {
				continue
			}
			up, err := conditionalReliability(cur, dem, e.ID, true, opt)
			if err != nil {
				return UpgradePlan{}, err
			}
			if up > bestR+1e-15 {
				bestR = up
				bestLink = e.ID
			}
		}
		if bestLink < 0 {
			break // nothing improves further
		}
		cur = hardenLink(cur, bestLink)
		// The winning candidate's conditional IS the next round's baseline:
		// no extra solve needed.
		curR = bestR
		hardened[bestLink] = true
		plan.Links = append(plan.Links, bestLink)
		plan.After = append(plan.After, curR)
	}
	return plan, nil
}

// hardenLink rebuilds g with the link's failure probability set to zero.
// Link IDs are preserved.
func hardenLink(g *graph.Graph, link graph.EdgeID) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNamedNode(g.NodeName(graph.NodeID(i)))
	}
	for _, e := range g.Edges() {
		p := e.PFail
		if e.ID == link {
			p = 0
		}
		b.AddEdge(e.U, e.V, e.Cap, p)
	}
	return b.MustBuild()
}

// conditionalReliability computes R(G | link state) by rebuilding the
// instance with the link forced up (p = 0) or removed.
func conditionalReliability(g *graph.Graph, dem graph.Demand, link graph.EdgeID, up bool, opt Options) (float64, error) {
	b := graph.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNamedNode(g.NodeName(graph.NodeID(i)))
	}
	for _, e := range g.Edges() {
		switch {
		case e.ID == link && up:
			b.AddEdge(e.U, e.V, e.Cap, 0)
		case e.ID == link: // forced down: drop it
		default:
			b.AddEdge(e.U, e.V, e.Cap, e.PFail)
		}
	}
	cg, err := b.Build()
	if err != nil {
		return 0, err
	}
	res, err := Factoring(cg, dem, opt)
	if err != nil {
		return 0, err
	}
	return res.Reliability, nil
}
