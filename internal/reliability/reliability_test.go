package reliability

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
	"flowrel/internal/testutil"
)

func edge(b *graph.Builder, u, v graph.NodeID, c int, p float64) {
	b.AddEdge(u, v, c, p)
}

func singleEdge(p float64) (*graph.Graph, graph.Demand) {
	b := graph.NewBuilder()
	s := b.AddNode()
	t := b.AddNode()
	edge(b, s, t, 1, p)
	return b.MustBuild(), graph.Demand{S: s, T: t, D: 1}
}

func TestNaiveSingleEdge(t *testing.T) {
	g, dem := singleEdge(0.2)
	res, err := Naive(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-0.8) > 1e-12 {
		t.Fatalf("R = %g, want 0.8", res.Reliability)
	}
	if res.Stats.Configs != 2 || res.Stats.Admitting != 1 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestNaiveParallelAndSeries(t *testing.T) {
	// Two parallel unit links, p = 0.5.
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	edge(b, s, tt, 1, 0.5)
	edge(b, s, tt, 1, 0.5)
	g := b.MustBuild()
	res, err := Naive(g, graph.Demand{S: s, T: tt, D: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-0.75) > 1e-12 {
		t.Fatalf("parallel d=1: R = %g, want 0.75", res.Reliability)
	}
	res, err = Naive(g, graph.Demand{S: s, T: tt, D: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-0.25) > 1e-12 {
		t.Fatalf("parallel d=2: R = %g, want 0.25", res.Reliability)
	}

	// Series: survival requires both.
	b2 := graph.NewBuilder()
	s2 := b2.AddNode()
	a := b2.AddNode()
	t2 := b2.AddNode()
	edge(b2, s2, a, 1, 0.1)
	edge(b2, a, t2, 1, 0.2)
	g2 := b2.MustBuild()
	res, err = Naive(g2, graph.Demand{S: s2, T: t2, D: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-0.72) > 1e-12 {
		t.Fatalf("series: R = %g, want 0.72", res.Reliability)
	}
}

func TestNaiveCapacityMatters(t *testing.T) {
	// One fat link (cap 2) and one thin path; d = 2 needs the fat link OR
	// both thin... make it simple: s=t links cap 1 and cap 2, d = 2:
	// admitted iff cap-2 link alive (alone, 2) or both alive (3).
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	edge(b, s, tt, 1, 0.5) // thin
	edge(b, s, tt, 2, 0.5) // fat
	g := b.MustBuild()
	res, err := Naive(g, graph.Demand{S: s, T: tt, D: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Reliability-0.5) > 1e-12 {
		t.Fatalf("R = %g, want 0.5 (fat link alive)", res.Reliability)
	}
}

func TestNaiveErrors(t *testing.T) {
	g, dem := singleEdge(0.2)
	if _, err := Naive(nil, dem, Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Naive(g, graph.Demand{S: 0, T: 0, D: 1}, Options{}); err == nil {
		t.Fatal("bad demand accepted")
	}
	if _, err := NaiveExact(g, graph.Demand{S: 0, T: 5, D: 1}); err == nil {
		t.Fatal("bad demand accepted by exact")
	}
	if _, err := Factoring(g, graph.Demand{S: 0, T: 0, D: 1}, Options{}); err == nil {
		t.Fatal("bad demand accepted by factoring")
	}
	if _, err := MonteCarlo(g, dem, 0, 1, Options{}); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := Bounds(g, graph.Demand{D: 0}, 2); err == nil {
		t.Fatal("bad demand accepted by bounds")
	}
}

func TestTooManyEdgesRejected(t *testing.T) {
	b := graph.NewBuilder()
	s := b.AddNode()
	tt := b.AddNode()
	for i := 0; i < 64; i++ {
		edge(b, s, tt, 1, 0.5)
	}
	g := b.MustBuild()
	dem := graph.Demand{S: s, T: tt, D: 1}
	if _, err := Naive(g, dem, Options{}); err == nil {
		t.Fatal("64 links accepted by Naive")
	}
	if _, err := NaiveExact(g, dem); err == nil {
		t.Fatal("64 links accepted by NaiveExact")
	}
	if _, err := Admits(g, dem, 1); err == nil {
		t.Fatal("64 links accepted by Admits")
	}
}

func randomTestGraph(rng *rand.Rand, maxNodes, maxEdges int) (*graph.Graph, graph.Demand) {
	n := 2 + rng.Intn(maxNodes-1)
	m := 1 + rng.Intn(maxEdges)
	b := graph.NewBuilder()
	b.AddNodes(n)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		for v == u {
			v = graph.NodeID(rng.Intn(n))
		}
		b.AddEdge(u, v, 1+rng.Intn(3), rng.Float64()*0.9)
	}
	g := b.MustBuild()
	return g, graph.Demand{S: 0, T: graph.NodeID(n - 1), D: 1 + rng.Intn(3)}
}

// Property: the float engines agree with the exact rational oracle.
func TestQuickEnginesMatchExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomTestGraph(rng, 6, 10)
		exact, err := NaiveExact(g, dem)
		if err != nil {
			return false
		}
		want, _ := exact.Float64()

		naive, err := Naive(g, dem, Options{})
		if err != nil || math.Abs(naive.Reliability-want) > 1e-9 {
			return false
		}
		gray, err := Naive(g, dem, Options{GrayCode: true})
		if err != nil || math.Abs(gray.Reliability-want) > 1e-9 {
			return false
		}
		seq, err := Naive(g, dem, Options{Parallelism: 1})
		if err != nil || math.Abs(seq.Reliability-want) > 1e-9 {
			return false
		}
		fact, err := Factoring(g, dem, Options{})
		if err != nil || math.Abs(fact.Reliability-want) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: naive is bit-identical across parallelism levels.
func TestQuickNaiveParallelDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomTestGraph(rng, 6, 10)
		a, err := Naive(g, dem, Options{Parallelism: 1})
		if err != nil {
			return false
		}
		b, err := Naive(g, dem, Options{Parallelism: 7})
		if err != nil {
			return false
		}
		return testutil.AlmostEqual(a.Reliability, b.Reliability, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gray-code and binary walks see the same admitting set.
func TestQuickGrayMatchesBinaryStats(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomTestGraph(rng, 5, 9)
		a, err := Naive(g, dem, Options{Parallelism: 2})
		if err != nil {
			return false
		}
		b, err := Naive(g, dem, Options{Parallelism: 3, GrayCode: true})
		if err != nil {
			return false
		}
		return a.Stats.Configs == b.Stats.Configs && a.Stats.Admitting == b.Stats.Admitting
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: factoring explores at most as many configurations as naive and
// typically far fewer.
func TestFactoringPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, dem := randomTestGraph(rng, 6, 12)
	naive, err := Naive(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fact, err := Factoring(g, dem, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Factoring recursion nodes ≤ 2^{m+1}; with pruning it should be well
	// under the naive configuration count on this size.
	if fact.Stats.Configs >= naive.Stats.Configs {
		t.Fatalf("factoring explored %d nodes vs naive %d configs", fact.Stats.Configs, naive.Stats.Configs)
	}
}

// Property: bounds sandwich the exact value.
func TestQuickBoundsSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomTestGraph(rng, 6, 10)
		exact, err := Naive(g, dem, Options{})
		if err != nil {
			return false
		}
		bd, err := Bounds(g, dem, 3)
		if err != nil {
			return false
		}
		return bd.Lower <= exact.Reliability+1e-9 && exact.Reliability <= bd.Upper+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsOnSeries(t *testing.T) {
	// On a pure series path the lower bound (the single delivery subgraph
	// must fully survive) is exact: 0.9·0.8 = 0.72. The upper bound is the
	// best single-cut survival: min(0.9, 0.8) = 0.8.
	b := graph.NewBuilder()
	s := b.AddNode()
	a := b.AddNode()
	tt := b.AddNode()
	edge(b, s, a, 1, 0.1)
	edge(b, a, tt, 1, 0.2)
	g := b.MustBuild()
	bd, err := Bounds(g, graph.Demand{S: s, T: tt, D: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bd.Lower-0.72) > 1e-9 || math.Abs(bd.Upper-0.8) > 1e-9 {
		t.Fatalf("bounds = [%g, %g], want [0.72, 0.8]", bd.Lower, bd.Upper)
	}
	if bd.DisjointSubgraphs != 1 {
		t.Fatalf("subgraphs = %d", bd.DisjointSubgraphs)
	}
}

func TestBoundsInfeasible(t *testing.T) {
	// Demand exceeds total capacity: upper bound must be 0.
	g, dem := singleEdge(0.2)
	dem.D = 5
	bd, err := Bounds(g, dem, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Upper != 0 || bd.Lower != 0 {
		t.Fatalf("bounds = %+v, want zero", bd)
	}
}

func TestMonteCarloConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g, dem := randomTestGraph(rng, 6, 10)
		exact, err := Naive(g, dem, Options{})
		if err != nil {
			t.Fatal(err)
		}
		est, err := MonteCarlo(g, dem, 60000, 42, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tol := 5*est.StdErr + 1e-9
		if math.Abs(est.Reliability-exact.Reliability) > tol {
			t.Fatalf("trial %d: MC %g vs exact %g (tol %g)", trial, est.Reliability, exact.Reliability, tol)
		}
	}
}

func TestMonteCarloDeterministicAcrossParallelism(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g, dem := randomTestGraph(rng, 6, 10)
	a, err := MonteCarlo(g, dem, 10000, 7, Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MonteCarlo(g, dem, 10000, 7, Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Admitting != b.Admitting {
		t.Fatalf("MC not deterministic: %d vs %d hits", a.Admitting, b.Admitting)
	}
}

func TestConfidenceInterval(t *testing.T) {
	e := Estimate{Reliability: 0.5, StdErr: 0.1}
	lo, hi := e.ConfidenceInterval(1.96)
	if math.Abs(lo-0.304) > 1e-9 || math.Abs(hi-0.696) > 1e-9 {
		t.Fatalf("CI = [%g, %g]", lo, hi)
	}
	e = Estimate{Reliability: 0.99, StdErr: 0.1}
	if _, hi := e.ConfidenceInterval(1.96); hi != 1 {
		t.Fatal("CI not clamped to 1")
	}
	e = Estimate{Reliability: 0.01, StdErr: 0.1}
	if lo, _ := e.ConfidenceInterval(1.96); lo != 0 {
		t.Fatal("CI not clamped to 0")
	}
}

func TestAdmits(t *testing.T) {
	g, dem := singleEdge(0.2)
	if ok, err := Admits(g, dem, 1); err != nil || !ok {
		t.Fatalf("alive link should admit: %v %v", ok, err)
	}
	if ok, err := Admits(g, dem, 0); err != nil || ok {
		t.Fatalf("dead link should not admit: %v %v", ok, err)
	}
}

// Property: reliability is monotone in link failure probabilities
// (increasing any p cannot increase R).
func TestQuickMonotoneInFailureProb(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomTestGraph(rng, 5, 8)
		r1, err := Naive(g, dem, Options{})
		if err != nil {
			return false
		}
		// Rebuild with uniformly larger failure probabilities.
		b := graph.NewBuilder()
		b.AddNodes(g.NumNodes())
		for _, e := range g.Edges() {
			p := e.PFail + (1-e.PFail)*0.3
			if p >= 1 {
				p = 0.999
			}
			b.AddEdge(e.U, e.V, e.Cap, p)
		}
		g2 := b.MustBuild()
		r2, err := Naive(g2, dem, Options{})
		if err != nil {
			return false
		}
		return r2.Reliability <= r1.Reliability+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
