package reliability

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// UnreliabilityIS estimates the UNreliability U = 1 − R by importance
// sampling with failure biasing: links are sampled down with probability
// q(e) = max(p(e), bias) and each sample carries the likelihood ratio
// Π p(x)/q(x). For highly reliable networks plain Monte Carlo wastes
// almost every sample on all-up configurations; failure biasing drives
// samples into the failure region while staying unbiased, cutting the
// relative error of U by orders of magnitude at equal sample count.
//
// The returned Estimate describes U (not R); use 1−U for the reliability.
// bias must lie in (0, 1); a few times the typical link failure
// probability is a reasonable choice, 0.25–0.5 a robust default.
//
// With opt.Ctl the run is anytime: an interrupted run returns the
// estimate over the samples completed so far with Partial set.
func UnreliabilityIS(g *graph.Graph, dem graph.Demand, samples int, seed int64, bias float64, opt Options) (Estimate, error) {
	if err := validate(g, dem); err != nil {
		return Estimate{}, err
	}
	if samples < 1 {
		return Estimate{}, fmt.Errorf("reliability: sample count %d must be ≥ 1", samples)
	}
	if bias <= 0 || bias >= 1 {
		return Estimate{}, fmt.Errorf("reliability: bias %g must be in (0, 1)", bias)
	}
	m := g.NumEdges()
	p := make([]float64, m)
	q := make([]float64, m)
	// wDown[e] = p/q (weight factor when e sampled down),
	// wUp[e] = (1-p)/(1-q).
	wDown := make([]float64, m)
	wUp := make([]float64, m)
	for i, e := range g.Edges() {
		p[i] = e.PFail
		q[i] = math.Max(p[i], bias)
		wDown[i] = p[i] / q[i]
		wUp[i] = (1 - p[i]) / (1 - q[i])
	}
	proto, handles := maxflow.FromGraph(g)
	s, t := int32(dem.S), int32(dem.T)

	const blockSize = 4096
	nBlocks := (samples + blockSize - 1) / blockSize
	type blockSum struct{ w, w2 float64 }
	sums := make([]blockSum, nBlocks)
	done := make([]int, nBlocks)
	errs := make([]error, nBlocks)

	var wg sync.WaitGroup
	sem := make(chan struct{}, opt.workers())
	for b := 0; b < nBlocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var cur uint64
			defer anytime.RecoverInto(&errs[b], opt.Ctl, "importance sampling worker", &cur)
			if opt.Ctl.Stopped() {
				return
			}
			n := blockSize
			if b == nBlocks-1 {
				n = samples - b*blockSize
			}
			rng := rand.New(rand.NewSource(seed + int64(b)*0x5851F42D4C957F2D))
			nw := proto.Clone()
			var sw, sw2 float64
			var callsMark int64
			for i := 0; i < n; i++ {
				if i > 0 && i%mcCheckEvery == 0 {
					if !opt.Ctl.Charge(mcCheckEvery, nw.Stats.MaxFlowCalls-callsMark) {
						break
					}
					callsMark = nw.Stats.MaxFlowCalls
				}
				cur = uint64(i)
				if opt.TestHook != nil {
					opt.TestHook(cur)
				}
				w := 1.0
				for j := range handles {
					down := rng.Float64() < q[j]
					nw.SetEnabled(handles[j], !down)
					if down {
						w *= wDown[j]
					} else {
						w *= wUp[j]
					}
				}
				if nw.MaxFlow(s, t, dem.D) < dem.D {
					sw += w
					sw2 += w * w
				}
				done[b]++
			}
			opt.Ctl.Charge(uint64(done[b]%mcCheckEvery), nw.Stats.MaxFlowCalls-callsMark)
			sums[b] = blockSum{sw, sw2}
		}(b)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return Estimate{}, err
	}

	var sw, sw2 float64
	completed := 0
	for b := range sums {
		sw += sums[b].w
		sw2 += sums[b].w2
		completed += done[b]
	}
	est := Estimate{Samples: completed}
	if completed < samples {
		est.Partial = true
		est.Reason = opt.Ctl.Reason()
	}
	if completed == 0 {
		return est, nil
	}
	n := float64(completed)
	mean := sw / n
	varEst := (sw2/n - mean*mean) / n
	if varEst < 0 {
		varEst = 0
	}
	est.Reliability = mean // the estimated UNreliability
	est.StdErr = math.Sqrt(varEst)
	return est, nil
}
