package maxflow

import (
	"fmt"
	"math/rand"
	"testing"
)

func benchNetwork(n, m int, seed int64) (*Network, []Handle) {
	rng := rand.New(rand.NewSource(seed))
	nw := New(n)
	hs := make([]Handle, 0, m)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		for v == u {
			v = int32(rng.Intn(n))
		}
		hs = append(hs, nw.AddDirected(u, v, 1+rng.Intn(4)))
	}
	return nw, hs
}

// BenchmarkSolvers compares the three max-flow implementations on random
// sparse digraphs (Dinic is the engines' workhorse).
func BenchmarkSolvers(b *testing.B) {
	for _, size := range []struct{ n, m int }{{20, 60}, {100, 300}, {400, 1200}} {
		nw, _ := benchNetwork(size.n, size.m, 1)
		s, t := int32(0), int32(size.n-1)
		b.Run(fmt.Sprintf("dinic/n=%d", size.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nw.MaxFlow(s, t, -1)
			}
		})
		b.Run(fmt.Sprintf("edmondskarp/n=%d", size.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nw.MaxFlowEK(s, t, -1)
			}
		})
		b.Run(fmt.Sprintf("pushrelabel/n=%d", size.n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nw.MaxFlowPR(s, t)
			}
		})
	}
}

// BenchmarkLimitedVsFull shows the early-exit saving when the engines only
// need to know "is the flow ≥ d".
func BenchmarkLimitedVsFull(b *testing.B) {
	nw, _ := benchNetwork(200, 800, 2)
	s, t := int32(0), int32(199)
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nw.MaxFlow(s, t, -1)
		}
	})
	b.Run("limit2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nw.MaxFlow(s, t, 2)
		}
	})
}

// BenchmarkIncrementalToggle measures the Gray-code primitive: disable one
// edge, repair, re-enable, re-augment.
func BenchmarkIncrementalToggle(b *testing.B) {
	nw, hs := benchNetwork(100, 300, 3)
	s, t := int32(0), int32(99)
	nw.MaxFlow(s, t, 4)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := hs[rng.Intn(len(hs))]
		nw.DisableIncremental(h, s, t)
		nw.Augment(s, t, 4)
		nw.EnableIncremental(h)
		nw.Augment(s, t, 4)
	}
}

// BenchmarkRecomputeToggle is the same workload solved from scratch, for
// contrast with BenchmarkIncrementalToggle.
func BenchmarkRecomputeToggle(b *testing.B) {
	nw, hs := benchNetwork(100, 300, 3)
	s, t := int32(0), int32(99)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := hs[rng.Intn(len(hs))]
		nw.SetEnabled(h, false)
		nw.MaxFlow(s, t, 4)
		nw.SetEnabled(h, true)
		nw.MaxFlow(s, t, 4)
	}
}
