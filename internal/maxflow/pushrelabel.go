package maxflow

// MaxFlowPR resets all flow and computes the s→t max flow with the FIFO
// push–relabel algorithm (with the gap heuristic). It is a third,
// structurally different implementation kept alongside Dinic and
// Edmonds–Karp purely for cross-validation: three independent algorithms
// agreeing on randomized networks is strong evidence none of them is
// wrong. It does not support an early-exit limit (push–relabel discharges
// excess globally), so the engines use Dinic; tests use all three.
//
// Only the returned value is meaningful: the network is left holding a
// maximum preflow (stranded excess is not returned to the source), so do
// not inspect per-edge flows or residuals afterwards — call ResetFlow or
// one of the augmenting-path solvers first.
func (nw *Network) MaxFlowPR(s, t int32) int {
	if s == t {
		panic("maxflow: source equals sink")
	}
	nw.ResetFlow()
	nw.Stats.MaxFlowCalls++
	n := nw.n
	height := make([]int32, n)
	excess := make([]int64, n)
	count := make([]int32, 2*n+1) // nodes per height, for the gap heuristic
	height[s] = int32(n)
	count[0] = int32(n - 1)
	count[n] = 1

	queue := make([]int32, 0, n)
	inQueue := make([]bool, n)
	enqueue := func(v int32) {
		if !inQueue[v] && v != s && v != t && excess[v] > 0 {
			inQueue[v] = true
			queue = append(queue, v)
		}
	}

	push := func(ai int32) {
		a := &nw.arcs[ai]
		u := nw.arcs[ai^1].to
		v := a.to
		d := excess[u]
		if int64(a.cap) < d {
			d = int64(a.cap)
		}
		if d <= 0 || height[u] != height[v]+1 {
			return
		}
		a.cap -= int32(d)
		nw.arcs[ai^1].cap += int32(d)
		excess[u] -= d
		excess[v] += d
		enqueue(v)
	}

	// Saturate all source arcs.
	for _, ai := range nw.adj[s] {
		a := &nw.arcs[ai]
		if a.cap > 0 && nw.arcs[ai^1].to == s {
			d := int64(a.cap)
			excess[s] += d // formal; source excess is unbounded
			av := a.to
			a.cap = 0
			nw.arcs[ai^1].cap += int32(d)
			excess[av] += d
			enqueue(av)
		}
	}

	relabel := func(u int32) {
		minH := int32(2 * n)
		for _, ai := range nw.adj[u] {
			a := nw.arcs[ai]
			if a.cap > 0 && nw.arcs[ai^1].to == u && height[a.to] < minH {
				minH = height[a.to]
			}
		}
		old := height[u]
		count[old]--
		if count[old] == 0 && old < int32(n) {
			// Gap heuristic: heights (old, n) are unreachable; lift them
			// past n so their excess returns to the source side.
			for v := int32(0); v < int32(n); v++ {
				if height[v] > old && height[v] < int32(n) {
					count[height[v]]--
					height[v] = int32(n) + 1
					count[height[v]]++
				}
			}
		}
		if minH < int32(2*n) {
			height[u] = minH + 1
		} else {
			height[u] = int32(2 * n)
		}
		count[height[u]]++
	}

	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		for excess[u] > 0 {
			pushed := false
			for _, ai := range nw.adj[u] {
				if nw.arcs[ai^1].to != u {
					continue // incoming arc representation
				}
				if nw.arcs[ai].cap > 0 && height[u] == height[nw.arcs[ai].to]+1 {
					push(ai)
					pushed = true
					if excess[u] == 0 {
						break
					}
				}
			}
			if excess[u] == 0 {
				break
			}
			if !pushed {
				if height[u] >= int32(2*n) {
					break // cannot route anywhere; stranded excess flows back
				}
				relabel(u)
			}
		}
		if excess[u] > 0 && height[u] < int32(2*n) {
			enqueue(u)
		}
	}
	nw.Stats.AugmentUnits += excess[t]
	return int(excess[t])
}
