// Package maxflow implements integral maximum flow on mixed networks of
// undirected links and directed arcs, tuned for the reliability engines:
//
//   - capacities are small integers (sub-stream counts), so Dinic with an
//     early exit at the demanded flow value is the workhorse;
//   - every edge can be switched on and off cheaply, because the engines
//     solve one max-flow per failure configuration;
//   - an incremental mode repairs the current flow after a single edge is
//     disabled or enabled, which lets the engines walk the configuration
//     space in Gray-code order instead of re-solving from scratch.
//
// An undirected link {u,v} of capacity c is represented as the residual
// arc pair (u→v, c), (v→u, c); a directed arc as (u→v, c), (v→u, 0).
package maxflow

import (
	"fmt"
	"math"
	"math/bits"

	"flowrel/internal/graph"
)

// Handle identifies an edge of the network (the index of its forward arc;
// arcs are always created in residual pairs, forward first).
type Handle int32

type arc struct {
	to  int32
	cap int32 // remaining (residual) capacity
}

// Network is a flow network. It is not safe for concurrent use; engines
// give each worker its own Clone.
type Network struct {
	n       int
	arcs    []arc
	base    []int32 // original capacity per arc
	enabled []bool  // per edge (indexed by Handle/2)
	adj     [][]int32

	// scratch for Dinic / BFS
	level []int32
	iter  []int32
	queue []int32

	// Stats counts work done, for the cost-model experiments.
	Stats Stats
}

// Stats accumulates operation counts.
type Stats struct {
	MaxFlowCalls    int64 // completed Augment/MaxFlow invocations
	BFSRuns         int64
	AugmentUnits    int64 // total flow units pushed
	AugmentingPaths int64 // individual augmenting paths found
}

// New returns an empty network with n nodes.
func New(n int) *Network {
	if n < 0 {
		panic("maxflow: negative node count")
	}
	return &Network{n: n, adj: make([][]int32, n)}
}

// NumNodes returns the node count.
func (nw *Network) NumNodes() int { return nw.n }

// AddNode appends a node and returns its index.
func (nw *Network) AddNode() int32 {
	nw.adj = append(nw.adj, nil)
	nw.n++
	return int32(nw.n - 1)
}

func (nw *Network) addPair(u, v int32, capFwd, capRev int32) Handle {
	if u < 0 || int(u) >= nw.n || v < 0 || int(v) >= nw.n {
		panic(fmt.Sprintf("maxflow: endpoint out of range (%d,%d) n=%d", u, v, nw.n))
	}
	h := Handle(len(nw.arcs))
	nw.arcs = append(nw.arcs, arc{to: v, cap: capFwd}, arc{to: u, cap: capRev})
	nw.base = append(nw.base, capFwd, capRev)
	nw.enabled = append(nw.enabled, true)
	nw.adj[u] = append(nw.adj[u], int32(h))
	nw.adj[v] = append(nw.adj[v], int32(h)+1)
	return h
}

// AddUndirected adds an undirected link {u,v} with capacity c.
func (nw *Network) AddUndirected(u, v int32, c int) Handle {
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	return nw.addPair(u, v, int32(c), int32(c))
}

// AddDirected adds a directed arc u→v with capacity c.
func (nw *Network) AddDirected(u, v int32, c int) Handle {
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	return nw.addPair(u, v, int32(c), 0)
}

// SetBaseCapDirected sets the base capacity of a directed arc created with
// AddDirected and resets its flow.
func (nw *Network) SetBaseCapDirected(h Handle, c int) {
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	nw.base[h] = int32(c)
	nw.base[h^1] = 0
	nw.resetEdge(h)
}

// SetBaseCapUndirected sets the base capacity of an undirected link created
// with AddUndirected and resets its flow.
func (nw *Network) SetBaseCapUndirected(h Handle, c int) {
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	nw.base[h] = int32(c)
	nw.base[h^1] = int32(c)
	nw.resetEdge(h)
}

// SetEnabled switches the edge on or off and resets its flow. Use ResetFlow
// before re-solving from scratch, or DisableIncremental/EnableIncremental
// to repair the current flow instead.
func (nw *Network) SetEnabled(h Handle, on bool) {
	nw.enabled[h/2] = on
	nw.resetEdge(h)
}

// Enabled reports whether the edge is on.
func (nw *Network) Enabled(h Handle) bool { return nw.enabled[h/2] }

func (nw *Network) resetEdge(h Handle) {
	if nw.enabled[h/2] {
		nw.arcs[h].cap = nw.base[h]
		nw.arcs[h^1].cap = nw.base[h^1]
	} else {
		nw.arcs[h].cap = 0
		nw.arcs[h^1].cap = 0
	}
}

// ResetFlow discards all flow: every enabled edge's residual capacities are
// restored to base, every disabled edge's to zero.
func (nw *Network) ResetFlow() {
	for h := Handle(0); int(h) < len(nw.arcs); h += 2 {
		nw.resetEdge(h)
	}
}

// FlowOn returns the net flow through the edge in its forward direction
// (negative if the net flow runs backward through an undirected link).
func (nw *Network) FlowOn(h Handle) int {
	if !nw.enabled[h/2] {
		return 0
	}
	return int(nw.base[h] - nw.arcs[h].cap)
}

// Clone returns an independent copy (Stats reset).
func (nw *Network) Clone() *Network {
	c := &Network{
		n:       nw.n,
		arcs:    append([]arc(nil), nw.arcs...),
		base:    append([]int32(nil), nw.base...),
		enabled: append([]bool(nil), nw.enabled...),
		adj:     make([][]int32, len(nw.adj)),
	}
	for i, l := range nw.adj {
		c.adj[i] = append([]int32(nil), l...)
	}
	return c
}

const inf = math.MaxInt32

// bfsLevel builds the level graph; returns false if t unreachable.
func (nw *Network) bfsLevel(s, t int32) bool {
	nw.Stats.BFSRuns++
	if cap(nw.level) < nw.n {
		nw.level = make([]int32, nw.n)
		nw.iter = make([]int32, nw.n)
		nw.queue = make([]int32, 0, nw.n)
	}
	nw.level = nw.level[:nw.n]
	for i := range nw.level {
		nw.level[i] = -1
	}
	nw.queue = nw.queue[:0]
	nw.level[s] = 0
	nw.queue = append(nw.queue, s)
	for qi := 0; qi < len(nw.queue); qi++ {
		u := nw.queue[qi]
		for _, ai := range nw.adj[u] {
			a := nw.arcs[ai]
			if a.cap > 0 && nw.level[a.to] < 0 {
				nw.level[a.to] = nw.level[u] + 1
				if a.to == t {
					return true
				}
				nw.queue = append(nw.queue, a.to)
			}
		}
	}
	return nw.level[t] >= 0
}

// dfsBlock sends up to up units from u toward t along the level graph.
func (nw *Network) dfsBlock(u, t int32, up int32) int32 {
	if u == t {
		return up
	}
	for ; nw.iter[u] < int32(len(nw.adj[u])); nw.iter[u]++ {
		ai := nw.adj[u][nw.iter[u]]
		a := &nw.arcs[ai]
		if a.cap > 0 && nw.level[a.to] == nw.level[u]+1 {
			d := nw.dfsBlock(a.to, t, min32(up, a.cap))
			if d > 0 {
				a.cap -= d
				nw.arcs[ai^1].cap += d
				return d
			}
		}
	}
	nw.level[u] = -1
	return 0
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// Augment pushes additional flow from s to t on top of the current flow
// state, stopping once `limit` additional units have been pushed (limit < 0
// means unbounded), and returns the amount pushed. Dinic's algorithm.
func (nw *Network) Augment(s, t int32, limit int) int {
	if s == t {
		panic("maxflow: source equals sink")
	}
	nw.Stats.MaxFlowCalls++
	lim := int32(inf)
	if limit >= 0 {
		lim = int32(limit)
	}
	var total int32
	for total < lim && nw.bfsLevel(s, t) {
		nw.iter = nw.iter[:nw.n]
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for total < lim {
			d := nw.dfsBlock(s, t, lim-total)
			if d == 0 {
				break
			}
			nw.Stats.AugmentingPaths++
			total += d
		}
	}
	nw.Stats.AugmentUnits += int64(total)
	return int(total)
}

// MaxFlow resets all flow and computes the s→t max flow, stopping early at
// limit (limit < 0 = unbounded).
func (nw *Network) MaxFlow(s, t int32, limit int) int {
	nw.ResetFlow()
	return nw.Augment(s, t, limit)
}

// MaxFlowEK resets all flow and computes the s→t max flow with the
// Edmonds–Karp algorithm (BFS shortest augmenting paths). It exists as an
// independent implementation to cross-check Dinic.
func (nw *Network) MaxFlowEK(s, t int32, limit int) int {
	nw.ResetFlow()
	nw.Stats.MaxFlowCalls++
	lim := int32(inf)
	if limit >= 0 {
		lim = int32(limit)
	}
	parent := make([]int32, nw.n) // arc index used to reach node, -1 none
	var total int32
	for total < lim {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		nw.queue = nw.queue[:0]
		nw.queue = append(nw.queue, s)
		found := false
		for qi := 0; qi < len(nw.queue) && !found; qi++ {
			u := nw.queue[qi]
			for _, ai := range nw.adj[u] {
				a := nw.arcs[ai]
				if a.cap > 0 && parent[a.to] == -1 {
					parent[a.to] = ai
					if a.to == t {
						found = true
						break
					}
					nw.queue = append(nw.queue, a.to)
				}
			}
		}
		if !found {
			break
		}
		// bottleneck
		push := lim - total
		for v := t; v != s; {
			ai := parent[v]
			if c := nw.arcs[ai].cap; c < push {
				push = c
			}
			v = nw.arcs[ai^1].to
		}
		for v := t; v != s; {
			ai := parent[v]
			nw.arcs[ai].cap -= push
			nw.arcs[ai^1].cap += push
			v = nw.arcs[ai^1].to
		}
		nw.Stats.AugmentingPaths++
		total += push
	}
	nw.Stats.AugmentUnits += int64(total)
	return int(total)
}

// ResidualReachable returns the set of nodes reachable from s in the
// residual graph; after an (un-limited) max flow this is the source side of
// a minimum cut.
func (nw *Network) ResidualReachable(s int32) []bool {
	seen := make([]bool, nw.n)
	seen[s] = true
	nw.queue = nw.queue[:0]
	nw.queue = append(nw.queue, s)
	for qi := 0; qi < len(nw.queue); qi++ {
		u := nw.queue[qi]
		for _, ai := range nw.adj[u] {
			a := nw.arcs[ai]
			if a.cap > 0 && !seen[a.to] {
				seen[a.to] = true
				nw.queue = append(nw.queue, a.to)
			}
		}
	}
	return seen
}

// DisableIncremental switches the edge off while preserving a feasible flow:
// any flow currently crossing the edge is first rerouted through the
// residual graph or, where rerouting is impossible, returned along the
// source and sink sides (reducing the flow value). It returns the number of
// flow units lost. s and t are the terminals of the flow being maintained.
func (nw *Network) DisableIncremental(h Handle, s, t int32) int {
	if !nw.enabled[h/2] {
		return 0
	}
	f := int32(nw.FlowOn(h))
	var u, v int32 // orient so flow of |f| runs u→v through the edge
	if f >= 0 {
		u, v = nw.arcs[h^1].to, nw.arcs[h].to
	} else {
		f = -f
		u, v = nw.arcs[h].to, nw.arcs[h^1].to
	}
	nw.enabled[h/2] = false
	nw.arcs[h].cap = 0
	nw.arcs[h^1].cap = 0
	if f == 0 {
		return 0
	}
	// Conservation is now violated: u has +f excess, v has -f deficit.
	// Repair by pushing f units u→v in the residual graph, with a virtual
	// arc s→t of capacity f acting as the "reduce the flow value" channel:
	// a repair path through the virtual arc cancels an s⇝u prefix and a
	// v⇝t suffix of existing flow.
	vh := nw.addPair(s, t, f, 0)
	pushed := nw.Augment(u, v, int(f))
	if int32(pushed) != f {
		panic("maxflow: internal error: could not repair flow after edge removal")
	}
	lost := nw.base[vh] - nw.arcs[vh].cap // flow through the virtual arc
	nw.removeLastPair(vh)
	return int(lost)
}

// EnableIncremental switches the edge back on (carrying zero flow); the
// caller typically follows with Augment to exploit the new capacity.
func (nw *Network) EnableIncremental(h Handle) {
	if nw.enabled[h/2] {
		return
	}
	nw.enabled[h/2] = true
	nw.arcs[h].cap = nw.base[h]
	nw.arcs[h^1].cap = nw.base[h^1]
}

// SetBaseCapDirectedIncremental changes the base capacity of a directed
// arc while preserving a feasible s→t flow: growing the capacity keeps
// the current flow and widens the residual; shrinking it below the flow
// currently crossing the arc first reroutes the excess through the
// residual graph or, where rerouting is impossible, returns it along the
// source and sink sides (reducing the flow value, exactly like
// DisableIncremental). It returns the number of flow units lost. On a
// disabled edge it only records the new base capacity.
func (nw *Network) SetBaseCapDirectedIncremental(h Handle, c int, s, t int32) int {
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	return nw.setBaseCapIncremental(h, int32(c), 0, s, t)
}

// SetBaseCapUndirectedIncremental is SetBaseCapDirectedIncremental for an
// undirected link created with AddUndirected.
func (nw *Network) SetBaseCapUndirectedIncremental(h Handle, c int, s, t int32) int {
	if c < 0 {
		panic("maxflow: negative capacity")
	}
	return nw.setBaseCapIncremental(h, int32(c), int32(c), s, t)
}

// setBaseCapIncremental installs new base capacities (fwd forward, rev
// backward), clamping the flow currently crossing the edge into the new
// window and repairing conservation for any excess via the virtual-arc
// trick of DisableIncremental. Returns the flow units lost.
func (nw *Network) setBaseCapIncremental(h Handle, fwd, rev int32, s, t int32) int {
	if !nw.enabled[h/2] {
		nw.base[h], nw.base[h^1] = fwd, rev
		return 0
	}
	f := nw.base[h] - nw.arcs[h].cap // signed flow in the forward direction
	nw.base[h], nw.base[h^1] = fwd, rev
	var excess, u, v int32 // excess runs u→v through the edge
	switch {
	case f > fwd:
		excess, u, v = f-fwd, nw.arcs[h^1].to, nw.arcs[h].to
		f = fwd
	case -f > rev:
		excess, u, v = -f-rev, nw.arcs[h].to, nw.arcs[h^1].to
		f = -rev
	}
	nw.arcs[h].cap = fwd - f
	nw.arcs[h^1].cap = rev + f
	if excess == 0 {
		return 0
	}
	// Conservation is violated by the clamp: u has +excess, v has
	// -excess. Repair exactly as DisableIncremental does, with a virtual
	// s→t arc as the "reduce the flow value" channel.
	vh := nw.addPair(s, t, excess, 0)
	pushed := nw.Augment(u, v, int(excess))
	if int32(pushed) != excess {
		panic("maxflow: internal error: could not repair flow after capacity change")
	}
	lost := nw.base[vh] - nw.arcs[vh].cap
	nw.removeLastPair(vh)
	return int(lost)
}

// RetargetIncremental transitions the enabled states of the edges in
// handles from the configuration `prev` (bit i set = handles[i] enabled)
// to `target`, preserving a feasible s→t flow of the given value across
// the change, and returns the flow value that survives. Edges leaving the
// configuration are removed with DisableIncremental (rerouting or
// returning their flow); edges entering come back carrying zero flow,
// ready for a follow-up Augment. When the configurations differ in more
// than half the edges — or there is no flow worth preserving — the repair
// work would rival a fresh solve, so it applies the states directly and
// resets all flow, returning 0.
func (nw *Network) RetargetIncremental(handles []Handle, prev, target uint64, s, t int32, value int) int {
	diff := prev ^ target
	if diff == 0 {
		return value
	}
	if value <= 0 || 2*bits.OnesCount64(diff) > len(handles) {
		for d := diff; d != 0; d &= d - 1 {
			i := bits.TrailingZeros64(d)
			nw.SetEnabled(handles[i], target&(1<<uint(i)) != 0)
		}
		nw.ResetFlow()
		return 0
	}
	for d := prev &^ target; d != 0; d &= d - 1 {
		value -= nw.DisableIncremental(handles[bits.TrailingZeros64(d)], s, t)
	}
	for e := target &^ prev; e != 0; e &= e - 1 {
		nw.EnableIncremental(handles[bits.TrailingZeros64(e)])
	}
	return value
}

// removeLastPair removes the most recently added arc pair (used for the
// virtual repair arc). h must be that pair's handle.
func (nw *Network) removeLastPair(h Handle) {
	if int(h) != len(nw.arcs)-2 {
		panic("maxflow: removeLastPair on non-last pair")
	}
	u := nw.arcs[h^1].to
	v := nw.arcs[h].to
	nw.arcs = nw.arcs[:h]
	nw.base = nw.base[:h]
	nw.enabled = nw.enabled[:h/2]
	nw.adj[u] = nw.adj[u][:len(nw.adj[u])-1]
	nw.adj[v] = nw.adj[v][:len(nw.adj[v])-1]
}

// CheckConservation verifies flow conservation at every node except s and t
// and that no residual capacity is negative; it returns the flow value (net
// out of s). For tests.
func (nw *Network) CheckConservation(s, t int32) (int, error) {
	net := make([]int32, nw.n)
	for h := Handle(0); int(h) < len(nw.arcs); h += 2 {
		if nw.arcs[h].cap < 0 || nw.arcs[h^1].cap < 0 {
			return 0, fmt.Errorf("maxflow: negative residual on pair %d", h)
		}
		if !nw.enabled[h/2] {
			if nw.arcs[h].cap != 0 || nw.arcs[h^1].cap != 0 {
				return 0, fmt.Errorf("maxflow: disabled pair %d has residual capacity", h)
			}
			continue
		}
		if got, want := nw.arcs[h].cap+nw.arcs[h^1].cap, nw.base[h]+nw.base[h^1]; got != want {
			return 0, fmt.Errorf("maxflow: pair %d residual sum %d, want %d", h, got, want)
		}
		f := nw.base[h] - nw.arcs[h].cap
		u := nw.arcs[h^1].to
		v := nw.arcs[h].to
		net[u] -= f
		net[v] += f
	}
	for i, x := range net {
		if int32(i) != s && int32(i) != t && x != 0 {
			return 0, fmt.Errorf("maxflow: conservation violated at node %d (net %d)", i, x)
		}
	}
	if net[s] != -net[t] {
		return 0, fmt.Errorf("maxflow: source/sink imbalance: %d vs %d", net[s], net[t])
	}
	return int(-net[s]), nil
}

// FromGraph builds a network with one directed arc per graph link and
// returns the per-link handles (indexed by graph.EdgeID).
func FromGraph(g *graph.Graph) (*Network, []Handle) {
	nw := New(g.NumNodes())
	handles := make([]Handle, g.NumEdges())
	for _, e := range g.Edges() {
		handles[e.ID] = nw.AddDirected(int32(e.U), int32(e.V), e.Cap)
	}
	return nw, handles
}
