package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
)

// buildDiamond: s=0, a=1, b=2, t=3 with caps s-a:2 s-b:1 a-t:2 b-t:1 a-b:1.
func buildDiamond() (*Network, []Handle) {
	nw := New(4)
	hs := []Handle{
		nw.AddUndirected(0, 1, 2),
		nw.AddUndirected(0, 2, 1),
		nw.AddUndirected(1, 3, 2),
		nw.AddUndirected(2, 3, 1),
		nw.AddUndirected(1, 2, 1),
	}
	return nw, hs
}

func TestMaxFlowDiamond(t *testing.T) {
	nw, _ := buildDiamond()
	if got := nw.MaxFlow(0, 3, -1); got != 3 {
		t.Fatalf("maxflow = %d, want 3", got)
	}
	if v, err := nw.CheckConservation(0, 3); err != nil || v != 3 {
		t.Fatalf("conservation: v=%d err=%v", v, err)
	}
	if got := nw.MaxFlowEK(0, 3, -1); got != 3 {
		t.Fatalf("EK maxflow = %d, want 3", got)
	}
}

func TestMaxFlowLimit(t *testing.T) {
	nw, _ := buildDiamond()
	if got := nw.MaxFlow(0, 3, 2); got != 2 {
		t.Fatalf("limited maxflow = %d, want 2", got)
	}
	if got := nw.MaxFlow(0, 3, 0); got != 0 {
		t.Fatalf("limit-0 maxflow = %d, want 0", got)
	}
	if got := nw.MaxFlowEK(0, 3, 2); got != 2 {
		t.Fatalf("limited EK = %d, want 2", got)
	}
}

func TestUndirectedBothDirections(t *testing.T) {
	nw := New(2)
	nw.AddUndirected(0, 1, 3)
	if got := nw.MaxFlow(0, 1, -1); got != 3 {
		t.Fatalf("0→1 = %d, want 3", got)
	}
	if got := nw.MaxFlow(1, 0, -1); got != 3 {
		t.Fatalf("1→0 = %d, want 3", got)
	}
}

func TestDirectedOneWay(t *testing.T) {
	nw := New(2)
	nw.AddDirected(0, 1, 3)
	if got := nw.MaxFlow(0, 1, -1); got != 3 {
		t.Fatalf("forward = %d, want 3", got)
	}
	if got := nw.MaxFlow(1, 0, -1); got != 0 {
		t.Fatalf("backward = %d, want 0", got)
	}
}

func TestParallelEdges(t *testing.T) {
	nw := New(2)
	nw.AddUndirected(0, 1, 2)
	nw.AddUndirected(0, 1, 3)
	if got := nw.MaxFlow(0, 1, -1); got != 5 {
		t.Fatalf("parallel = %d, want 5", got)
	}
}

func TestDisabledEdgeCarriesNothing(t *testing.T) {
	nw, hs := buildDiamond()
	nw.SetEnabled(hs[0], false) // kill s-a
	if got := nw.MaxFlow(0, 3, -1); got != 1 {
		t.Fatalf("maxflow without s-a = %d, want 1", got)
	}
	nw.SetEnabled(hs[0], true)
	if got := nw.MaxFlow(0, 3, -1); got != 3 {
		t.Fatalf("maxflow restored = %d, want 3", got)
	}
}

func TestSetBaseCap(t *testing.T) {
	nw := New(3)
	hu := nw.AddUndirected(0, 1, 1)
	hd := nw.AddDirected(1, 2, 1)
	nw.SetBaseCapUndirected(hu, 4)
	nw.SetBaseCapDirected(hd, 2)
	if got := nw.MaxFlow(0, 2, -1); got != 2 {
		t.Fatalf("maxflow = %d, want 2", got)
	}
	if got := nw.MaxFlow(2, 0, -1); got != 0 {
		t.Fatalf("reverse through directed arc = %d, want 0", got)
	}
}

func TestFlowOnAndSuperSink(t *testing.T) {
	// s -(2)- a, with demand arcs a→T of caps 1 and 1: classic side-array
	// shape: realize assignment (1,1).
	nw := New(3)
	he := nw.AddUndirected(0, 1, 2)
	d1 := nw.AddDirected(1, 2, 1)
	d2 := nw.AddDirected(1, 2, 1)
	if got := nw.MaxFlow(0, 2, -1); got != 2 {
		t.Fatalf("maxflow = %d, want 2", got)
	}
	if f := nw.FlowOn(he); f != 2 {
		t.Fatalf("FlowOn(link) = %d, want 2", f)
	}
	if nw.FlowOn(d1)+nw.FlowOn(d2) != 2 {
		t.Fatal("demand arcs should carry 2 total")
	}
}

func TestMinCutMatchesMaxFlow(t *testing.T) {
	nw, hs := buildDiamond()
	v := nw.MaxFlow(0, 3, -1)
	reach := nw.ResidualReachable(0)
	if reach[3] {
		t.Fatal("sink reachable after max flow")
	}
	// Cut capacity = sum of caps of edges crossing reach boundary.
	cut := 0
	for _, h := range hs {
		u := nw.arcs[h^1].to
		w := nw.arcs[h].to
		if reach[u] != reach[w] {
			cut += int(nw.base[h])
		}
	}
	if cut != v {
		t.Fatalf("cut capacity %d != flow %d", cut, v)
	}
}

func TestCloneIndependent(t *testing.T) {
	nw, hs := buildDiamond()
	c := nw.Clone()
	c.SetEnabled(hs[0], false)
	if got := nw.MaxFlow(0, 3, -1); got != 3 {
		t.Fatalf("original affected by clone: %d", got)
	}
	if got := c.MaxFlow(0, 3, -1); got != 1 {
		t.Fatalf("clone maxflow = %d, want 1", got)
	}
}

func TestAddNode(t *testing.T) {
	nw := New(1)
	v := nw.AddNode()
	nw.AddUndirected(0, v, 1)
	if got := nw.MaxFlow(0, v, -1); got != 1 {
		t.Fatalf("maxflow = %d, want 1", got)
	}
}

func TestFromGraph(t *testing.T) {
	b := graph.NewBuilder()
	s := b.AddNode()
	x := b.AddNode()
	tt := b.AddNode()
	b.AddEdge(s, x, 2, 0)
	b.AddEdge(x, tt, 1, 0)
	g := b.MustBuild()
	nw, hs := FromGraph(g)
	if len(hs) != 2 {
		t.Fatalf("handles = %d, want 2", len(hs))
	}
	if got := nw.MaxFlow(int32(s), int32(tt), -1); got != 1 {
		t.Fatalf("maxflow = %d, want 1", got)
	}
}

// randomNetwork builds a random undirected network on n nodes, m edges.
func randomNetwork(rng *rand.Rand, n, m int) (*Network, []Handle) {
	nw := New(n)
	hs := make([]Handle, 0, m)
	for i := 0; i < m; i++ {
		u := int32(rng.Intn(n))
		v := int32(rng.Intn(n))
		for v == u {
			v = int32(rng.Intn(n))
		}
		hs = append(hs, nw.AddUndirected(u, v, 1+rng.Intn(4)))
	}
	return nw, hs
}

// Property: Dinic and Edmonds–Karp agree.
func TestQuickDinicVsEK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		nw, _ := randomNetwork(rng, n, rng.Intn(20))
		s, tt := int32(0), int32(n-1)
		return nw.MaxFlow(s, tt, -1) == nw.MaxFlowEK(s, tt, -1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: max flow equals the capacity of the residual-reachability cut.
func TestQuickMaxFlowMinCut(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		nw, hs := randomNetwork(rng, n, rng.Intn(20))
		s, tt := int32(0), int32(n-1)
		v := nw.MaxFlow(s, tt, -1)
		reach := nw.ResidualReachable(s)
		if v > 0 && reach[tt] {
			return false
		}
		cut := 0
		for _, h := range hs {
			u := nw.arcs[h^1].to
			w := nw.arcs[h].to
			if reach[u] != reach[w] {
				cut += int(nw.base[h])
			}
		}
		if !reach[tt] && cut != v {
			return false
		}
		if cv, err := nw.CheckConservation(s, tt); err != nil || cv != v {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: incremental disable/enable tracks a from-scratch recompute
// through a random toggle sequence, and conservation holds at every step.
func TestQuickIncrementalVsRecompute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		m := 1 + rng.Intn(14)
		nw, hs := randomNetwork(rng, n, m)
		ref := nw.Clone()
		s, tt := int32(0), int32(n-1)

		value := nw.MaxFlow(s, tt, -1)
		enabled := make([]bool, len(hs))
		for i := range enabled {
			enabled[i] = true
		}
		for step := 0; step < 24; step++ {
			i := rng.Intn(len(hs))
			if enabled[i] {
				value -= nw.DisableIncremental(hs[i], s, tt)
				enabled[i] = false
			} else {
				nw.EnableIncremental(hs[i])
				enabled[i] = true
			}
			value += nw.Augment(s, tt, -1)
			if v, err := nw.CheckConservation(s, tt); err != nil || v != value {
				return false
			}
			// Reference from scratch.
			for j, on := range enabled {
				ref.SetEnabled(hs[j], on)
			}
			if want := ref.MaxFlow(s, tt, -1); want != value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: incremental with a flow-value limit (the engines cap at d).
func TestQuickIncrementalWithLimit(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(12)
		limit := 1 + rng.Intn(4)
		nw, hs := randomNetwork(rng, n, m)
		ref := nw.Clone()
		s, tt := int32(0), int32(n-1)

		value := nw.MaxFlow(s, tt, limit)
		enabled := make([]bool, len(hs))
		for i := range enabled {
			enabled[i] = true
		}
		for step := 0; step < 16; step++ {
			i := rng.Intn(len(hs))
			if enabled[i] {
				value -= nw.DisableIncremental(hs[i], s, tt)
				enabled[i] = false
			} else {
				nw.EnableIncremental(hs[i])
				enabled[i] = true
			}
			value += nw.Augment(s, tt, limit-value)
			for j, on := range enabled {
				ref.SetEnabled(hs[j], on)
			}
			want := ref.MaxFlow(s, tt, limit)
			// With a limit both engines either reach the limit or agree on
			// the max; reaching the limit must coincide.
			if (value >= limit) != (want >= limit) {
				return false
			}
			if value < limit && value != want {
				return false
			}
			if _, err := nw.CheckConservation(s, tt); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestDisableIncrementalNoFlowEdge(t *testing.T) {
	nw := New(3)
	h1 := nw.AddUndirected(0, 1, 1)
	h2 := nw.AddUndirected(1, 2, 1)
	h3 := nw.AddUndirected(0, 2, 1) // direct; after maxflow both paths used
	_ = h1
	v := nw.MaxFlow(0, 2, -1)
	if v != 2 {
		t.Fatalf("maxflow = %d", v)
	}
	lost := nw.DisableIncremental(h2, 0, 2)
	if lost != 1 {
		t.Fatalf("lost = %d, want 1", lost)
	}
	if _, err := nw.CheckConservation(0, 2); err != nil {
		t.Fatal(err)
	}
	lost = nw.DisableIncremental(h2, 0, 2) // already disabled: no-op
	if lost != 0 {
		t.Fatalf("second disable lost = %d, want 0", lost)
	}
	_ = h3
}

func TestStatsCounted(t *testing.T) {
	nw, _ := buildDiamond()
	nw.MaxFlow(0, 3, -1)
	if nw.Stats.MaxFlowCalls != 1 || nw.Stats.AugmentUnits != 3 || nw.Stats.BFSRuns == 0 {
		t.Fatalf("stats = %+v", nw.Stats)
	}
}

func TestPanics(t *testing.T) {
	nw := New(2)
	h := nw.AddUndirected(0, 1, 1)
	for name, f := range map[string]func(){
		"negative nodes": func() { New(-1) },
		"bad endpoint":   func() { nw.AddUndirected(0, 5, 1) },
		"negative cap":   func() { nw.AddUndirected(0, 1, -1) },
		"negative capD":  func() { nw.AddDirected(0, 1, -1) },
		"s==t":           func() { nw.Augment(0, 0, -1) },
		"set negative":   func() { nw.SetBaseCapUndirected(h, -2) },
		"set negative d": func() { nw.SetBaseCapDirected(h, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: RetargetIncremental tracks a from-scratch recompute through a
// random walk over enabled-edge bitmasks — exactly how the frontier side
// engine drives it, except here the transitions are arbitrary rather than
// popcount-adjacent, so both the incremental and the full-reset paths get
// exercised. Every fourth step is a per-edge capacity delta (the churn
// mutation) applied through SetBaseCapUndirectedIncremental, so the walk
// also proves a feasible flow survives capacity shrink/grow, not just
// enable/disable. Conservation must hold after every hop.
func TestQuickRetargetIncremental(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		m := 1 + rng.Intn(14)
		nw, hs := randomNetwork(rng, n, m)
		ref := nw.Clone()
		s, tt := int32(0), int32(n-1)

		// Frontier start state: everything disabled, zero flow.
		for _, h := range hs {
			nw.SetEnabled(h, false)
		}
		nw.ResetFlow()
		cur, value := uint64(0), 0
		all := uint64(1)<<uint(len(hs)) - 1

		for step := 0; step < 24; step++ {
			if step%4 == 3 {
				// Capacity delta on a random edge, live or not: shrinking
				// below the crossing flow must repair and report the loss.
				i := rng.Intn(len(hs))
				c := rng.Intn(5)
				value -= nw.SetBaseCapUndirectedIncremental(hs[i], c, s, tt)
				ref.SetBaseCapUndirected(hs[i], c)
			} else {
				var target uint64
				if step%3 == 0 {
					// Popcount-adjacent hop, the common case in the engine.
					target = cur ^ (uint64(1) << uint(rng.Intn(len(hs))))
				} else {
					target = rng.Uint64() & all
				}
				value = nw.RetargetIncremental(hs, cur, target, s, tt, value)
				cur = target
			}
			value += nw.Augment(s, tt, -1)
			if v, err := nw.CheckConservation(s, tt); err != nil || v != value {
				return false
			}
			for i, h := range hs {
				ref.SetEnabled(h, cur&(1<<uint(i)) != 0)
			}
			if want := ref.MaxFlow(s, tt, -1); want != value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// SetBaseCapDirectedIncremental on a saturated path: shrinking below the
// crossing flow loses exactly the excess, growing back restores headroom
// for Augment, and a disabled edge only records the new base.
func TestSetBaseCapIncremental(t *testing.T) {
	nw := New(3)
	a := nw.AddDirected(0, 1, 2)
	b := nw.AddDirected(1, 2, 2)
	if v := nw.MaxFlow(0, 2, -1); v != 2 {
		t.Fatalf("maxflow = %d, want 2", v)
	}
	if lost := nw.SetBaseCapDirectedIncremental(b, 1, 0, 2); lost != 1 {
		t.Fatalf("shrink 2→1 lost %d, want 1", lost)
	}
	if v, err := nw.CheckConservation(0, 2); err != nil || v != 1 {
		t.Fatalf("after shrink: value %d err %v", v, err)
	}
	if lost := nw.SetBaseCapDirectedIncremental(b, 0, 0, 2); lost != 1 {
		t.Fatalf("shrink 1→0 lost %d, want 1", lost)
	}
	if lost := nw.SetBaseCapDirectedIncremental(b, 2, 0, 2); lost != 0 {
		t.Fatalf("grow 0→2 lost %d, want 0", lost)
	}
	if got := nw.Augment(0, 2, -1); got != 2 {
		t.Fatalf("augment after grow = %d, want 2", got)
	}
	// Disabled edge: record the base, no flow change, conservation holds.
	lost := nw.DisableIncremental(a, 0, 2)
	if lost != 2 {
		t.Fatalf("disable lost %d, want 2", lost)
	}
	if lost := nw.SetBaseCapDirectedIncremental(a, 5, 0, 2); lost != 0 {
		t.Fatalf("set on disabled lost %d, want 0", lost)
	}
	nw.EnableIncremental(a)
	if got := nw.Augment(0, 2, -1); got != 2 {
		t.Fatalf("augment after enable = %d, want 2 (new cap visible)", got)
	}
	if v, err := nw.CheckConservation(0, 2); err != nil || v != 2 {
		t.Fatalf("final: value %d err %v", v, err)
	}
}

// RetargetIncremental with no change must be a no-op that keeps the
// caller's flow value, and a transition from zero flow must take the
// reset path (returning 0) regardless of the diff size.
func TestRetargetIncrementalEdgeCases(t *testing.T) {
	nw, hs := buildDiamond()
	all := uint64(1)<<uint(len(hs)) - 1
	v := nw.MaxFlow(0, 3, -1)
	if got := nw.RetargetIncremental(hs, all, all, 0, 3, v); got != v {
		t.Fatalf("no-op retarget changed value: %d -> %d", v, got)
	}
	// value=0 forces the reset path even for a single-bit diff.
	nw.ResetFlow()
	if got := nw.RetargetIncremental(hs, all, all&^1, 0, 3, 0); got != 0 {
		t.Fatalf("reset path returned %d, want 0", got)
	}
	if nw.Enabled(hs[0]) {
		t.Fatal("retarget did not disable handle 0")
	}
	if _, err := nw.CheckConservation(0, 3); err != nil {
		t.Fatal(err)
	}
}
