package maxflow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPushRelabelDiamond(t *testing.T) {
	nw, _ := buildDiamond()
	if got := nw.MaxFlowPR(0, 3); got != 3 {
		t.Fatalf("PR maxflow = %d, want 3", got)
	}
	// Reverse direction too (undirected links).
	if got := nw.MaxFlowPR(3, 0); got != 3 {
		t.Fatalf("PR reverse = %d, want 3", got)
	}
}

func TestPushRelabelDirected(t *testing.T) {
	nw := New(3)
	nw.AddDirected(0, 1, 2)
	nw.AddDirected(1, 2, 1)
	if got := nw.MaxFlowPR(0, 2); got != 1 {
		t.Fatalf("PR = %d, want 1", got)
	}
	if got := nw.MaxFlowPR(2, 0); got != 0 {
		t.Fatalf("PR backward = %d, want 0", got)
	}
}

func TestPushRelabelDisconnected(t *testing.T) {
	nw := New(4)
	nw.AddDirected(0, 1, 5)
	nw.AddDirected(2, 3, 5)
	if got := nw.MaxFlowPR(0, 3); got != 0 {
		t.Fatalf("PR disconnected = %d, want 0", got)
	}
}

func TestPushRelabelDisabledEdges(t *testing.T) {
	nw, hs := buildDiamond()
	nw.SetEnabled(hs[0], false)
	if got := nw.MaxFlowPR(0, 3); got != 1 {
		t.Fatalf("PR with disabled link = %d, want 1", got)
	}
}

func TestPushRelabelPanicsOnEqualTerminals(t *testing.T) {
	nw := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	nw.MaxFlowPR(1, 1)
}

// Property: three structurally different algorithms agree on random mixed
// networks.
func TestQuickThreeAlgorithmsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		nw := New(n)
		m := rng.Intn(24)
		for i := 0; i < m; i++ {
			u := int32(rng.Intn(n))
			v := int32(rng.Intn(n))
			for v == u {
				v = int32(rng.Intn(n))
			}
			if rng.Intn(2) == 0 {
				nw.AddDirected(u, v, 1+rng.Intn(5))
			} else {
				nw.AddUndirected(u, v, 1+rng.Intn(5))
			}
		}
		s, tt := int32(0), int32(n-1)
		dinic := nw.MaxFlow(s, tt, -1)
		ek := nw.MaxFlowEK(s, tt, -1)
		pr := nw.MaxFlowPR(s, tt)
		return dinic == ek && ek == pr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
