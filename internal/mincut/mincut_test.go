package mincut

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
)

// bridgeGraph builds the Fig. 2 shape: a triangle {s,a,b}, a bridge b—c,
// and a triangle {c,d,t}.
func bridgeGraph(t *testing.T) (*graph.Graph, graph.NodeID, graph.NodeID, graph.EdgeID) {
	t.Helper()
	b := graph.NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	bb := b.AddNamedNode("b")
	c := b.AddNamedNode("c")
	d := b.AddNamedNode("d")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, a, 1, 0.1)  // 0
	b.AddEdge(s, bb, 1, 0.1) // 1
	b.AddEdge(a, bb, 1, 0.1) // 2
	bridge := b.AddEdge(bb, c, 2, 0.05)
	b.AddEdge(c, d, 1, 0.1)  // 4
	b.AddEdge(c, tt, 1, 0.1) // 5
	b.AddEdge(d, tt, 1, 0.1) // 6
	return b.MustBuild(), s, tt, bridge
}

func TestCardinality(t *testing.T) {
	g, s, tt, _ := bridgeGraph(t)
	if got := Cardinality(g, s, tt); got != 1 {
		t.Fatalf("cardinality = %d, want 1 (bridge)", got)
	}
	// Disconnected graph.
	b := graph.NewBuilder()
	u := b.AddNode()
	v := b.AddNode()
	g2 := b.MustBuild()
	if got := Cardinality(g2, u, v); got != 0 {
		t.Fatalf("disconnected cardinality = %d, want 0", got)
	}
}

func TestIsCutIsMinimal(t *testing.T) {
	g, s, tt, bridge := bridgeGraph(t)
	if !IsCut(g, s, tt, []graph.EdgeID{bridge}) {
		t.Fatal("bridge should be a cut")
	}
	if !IsMinimalCut(g, s, tt, []graph.EdgeID{bridge}) {
		t.Fatal("bridge should be a minimal cut")
	}
	// Superset of a cut is a cut but not minimal.
	if !IsCut(g, s, tt, []graph.EdgeID{bridge, 0}) {
		t.Fatal("superset should still be a cut")
	}
	if IsMinimalCut(g, s, tt, []graph.EdgeID{bridge, 0}) {
		t.Fatal("superset should not be minimal")
	}
	if IsCut(g, s, tt, []graph.EdgeID{0}) {
		t.Fatal("single non-bridge is not a cut")
	}
	// {s-a, s-b} is a minimal cut isolating s.
	if !IsMinimalCut(g, s, tt, []graph.EdgeID{0, 1}) {
		t.Fatal("{0,1} should be minimal")
	}
}

func TestEnumerateMinimalBridgeGraph(t *testing.T) {
	g, s, tt, bridge := bridgeGraph(t)
	cuts := EnumerateMinimal(g, s, tt, 2)
	// Minimal cuts of size ≤ 2: the bridge {3}; {0,1} isolates s;
	// {1,2} isolates {s,a}; {5,6} isolates t; {4,5} isolates {t,d}'s
	// access through c (c–d and c–t removed leaves t unreachable).
	// Note {0,2} is not a cut (s still reaches b via s–b).
	want := map[string]bool{
		"[3]":   true,
		"[0 1]": true,
		"[1 2]": true,
		"[5 6]": true,
		"[4 5]": true,
	}
	got := map[string]bool{}
	for _, c := range cuts {
		key := ""
		for i, e := range c {
			if i > 0 {
				key += " "
			}
			key += itoa(int(e))
		}
		got["["+key+"]"] = true
		if !IsMinimalCut(g, s, tt, c) {
			t.Fatalf("enumerated non-minimal cut %v", c)
		}
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing cut %s (got %v)", k, got)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("unexpected cut %s", k)
		}
	}
	_ = bridge
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	s := ""
	for i > 0 {
		s = string(rune('0'+i%10)) + s
		i /= 10
	}
	return s
}

func TestBridges(t *testing.T) {
	g, _, _, bridge := bridgeGraph(t)
	got := Bridges(g)
	// Directed bridges: s→a (a has no other in-path from s), a→b is the
	// only a-to-b route, b→c, c→d, d→t. s→b and c→t have alternatives.
	want := []graph.EdgeID{0, 2, bridge, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("Bridges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bridges = %v, want %v", got, want)
		}
	}
	// A tree: every link is a bridge.
	b := graph.NewBuilder()
	r := b.AddNode()
	c1 := b.AddNode()
	c2 := b.AddNode()
	c3 := b.AddNode()
	b.AddEdge(r, c1, 1, 0)
	b.AddEdge(r, c2, 1, 0)
	b.AddEdge(c1, c3, 1, 0)
	tree := b.MustBuild()
	if got := Bridges(tree); len(got) != 3 {
		t.Fatalf("tree bridges = %v, want all 3", got)
	}
	// Parallel links are not bridges.
	b2 := graph.NewBuilder()
	u := b2.AddNode()
	v := b2.AddNode()
	b2.AddEdge(u, v, 1, 0)
	b2.AddEdge(u, v, 1, 0)
	if got := Bridges(b2.MustBuild()); len(got) != 0 {
		t.Fatalf("parallel bridges = %v, want none", got)
	}
	// In a directed cycle every arc is the only route between its
	// endpoints, so all arcs are directed bridges.
	b3 := graph.NewBuilder()
	n0 := b3.AddNode()
	n1 := b3.AddNode()
	n2 := b3.AddNode()
	b3.AddEdge(n0, n1, 1, 0)
	b3.AddEdge(n1, n2, 1, 0)
	b3.AddEdge(n2, n0, 1, 0)
	if got := Bridges(b3.MustBuild()); len(got) != 3 {
		t.Fatalf("directed cycle bridges = %v, want all 3", got)
	}
	// A pair of anti-parallel arcs still leaves each as the only route in
	// its direction: both are directed bridges.
	b4 := graph.NewBuilder()
	p0 := b4.AddNode()
	p1 := b4.AddNode()
	b4.AddEdge(p0, p1, 1, 0)
	b4.AddEdge(p1, p0, 1, 0)
	if got := Bridges(b4.MustBuild()); len(got) != 2 {
		t.Fatalf("anti-parallel bridges = %v, want both", got)
	}
}

func TestSplitBridge(t *testing.T) {
	g, s, tt, bridge := bridgeGraph(t)
	b, err := Split(g, s, tt, []graph.EdgeID{bridge})
	if err != nil {
		t.Fatal(err)
	}
	if b.K() != 1 {
		t.Fatalf("K = %d", b.K())
	}
	if b.Gs.G.NumEdges() != 3 || b.Gt.G.NumEdges() != 3 {
		t.Fatalf("sides have %d/%d links", b.Gs.G.NumEdges(), b.Gt.G.NumEdges())
	}
	if b.Alpha != 3.0/7.0 {
		t.Fatalf("alpha = %g, want 3/7", b.Alpha)
	}
	// XS is node "b" on the s side, YT node "c" on the t side.
	if nm := b.Gs.G.NodeName(b.XS[0]); nm != "b" {
		t.Fatalf("XS name = %q", nm)
	}
	if nm := b.Gt.G.NodeName(b.YT[0]); nm != "c" {
		t.Fatalf("YT name = %q", nm)
	}
}

func TestSplitErrors(t *testing.T) {
	g, s, tt, bridge := bridgeGraph(t)
	if _, err := Split(g, s, tt, nil); err == nil {
		t.Fatal("empty cut accepted")
	}
	if _, err := Split(g, s, tt, []graph.EdgeID{0}); err == nil {
		t.Fatal("non-cut accepted")
	}
	if _, err := Split(g, s, tt, []graph.EdgeID{bridge, 0}); err == nil {
		t.Fatal("non-minimal cut accepted")
	}
	if _, err := Split(g, s, tt, []graph.EdgeID{bridge, bridge}); err == nil {
		t.Fatal("duplicate edges accepted")
	}
}

func TestFindPrefersBalancedCut(t *testing.T) {
	g, s, tt, bridge := bridgeGraph(t)
	b, err := Find(g, s, tt, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The bridge split is 3/3 (alpha 3/7); isolating s or t leaves 6 links
	// on one side (alpha 6/7). The bridge must win.
	if b.K() != 1 || b.Cut[0] != bridge {
		t.Fatalf("Find chose %v, want bridge {%d}", b.Cut, bridge)
	}
	if _, err := Find(g, s, tt, 0); err == nil {
		t.Fatal("maxSize 0 accepted")
	}
}

func TestFindTwoBottleneckLinks(t *testing.T) {
	// Two triangles joined by two links: minimal cut of size 2 in the
	// middle is the most balanced.
	b := graph.NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNamedNode("a")
	c := b.AddNamedNode("c")
	d := b.AddNamedNode("d")
	tt := b.AddNamedNode("t")
	e := b.AddNamedNode("e")
	b.AddEdge(s, a, 2, 0.1) // 0
	b.AddEdge(s, c, 2, 0.1) // 1
	b.AddEdge(a, c, 1, 0.1) // 2
	m1 := b.AddEdge(a, d, 2, 0.1)
	m2 := b.AddEdge(c, e, 2, 0.1)
	b.AddEdge(d, e, 1, 0.1)  // 5
	b.AddEdge(d, tt, 2, 0.1) // 6
	b.AddEdge(e, tt, 2, 0.1) // 7
	g := b.MustBuild()
	bt, err := Find(g, s, tt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bt.K() != 2 || bt.Cut[0] != m1 || bt.Cut[1] != m2 {
		t.Fatalf("Find chose %v, want {%d,%d}", bt.Cut, m1, m2)
	}
	if bt.Gs.G.NumEdges() != 3 || bt.Gt.G.NumEdges() != 3 {
		t.Fatalf("sides %d/%d", bt.Gs.G.NumEdges(), bt.Gt.G.NumEdges())
	}
	if bt.Alpha != 3.0/8.0 {
		t.Fatalf("alpha = %g", bt.Alpha)
	}
}

func TestFindNoCut(t *testing.T) {
	// Complete graph K4 has min cut 3 between any pair; maxSize 2 fails.
	b := graph.NewBuilder()
	n := b.AddNodes(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(n+graph.NodeID(i), n+graph.NodeID(j), 1, 0.1)
		}
	}
	g := b.MustBuild()
	if _, err := Find(g, 0, 3, 2); err == nil {
		t.Fatal("expected no cut of size ≤ 2 in K4")
	}
	if bt, err := Find(g, 0, 3, 3); err != nil || bt.K() != 3 {
		t.Fatalf("K4 size-3 cut: %v %v", bt, err)
	}
}

// Property: enumerated cuts are exactly the minimal cuts found by brute
// force over all subsets of size ≤ maxSize.
func TestQuickEnumerateMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		m := 2 + rng.Intn(8)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			b.AddEdge(u, v, 1, 0.1)
		}
		g := b.MustBuild()
		s, tt := graph.NodeID(0), graph.NodeID(n-1)
		maxSize := 1 + rng.Intn(3)

		got := map[string]bool{}
		for _, c := range EnumerateMinimal(g, s, tt, maxSize) {
			got[fmtCut(c)] = true
		}
		want := map[string]bool{}
		var cur []graph.EdgeID
		var brute func(start int)
		brute = func(start int) {
			if len(cur) > 0 && len(cur) <= maxSize && IsMinimalCut(g, s, tt, cur) {
				want[fmtCut(cur)] = true
			}
			if len(cur) == maxSize {
				return
			}
			for e := start; e < m; e++ {
				cur = append(cur, graph.EdgeID(e))
				brute(e + 1)
				cur = cur[:len(cur)-1]
			}
		}
		brute(0)
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func fmtCut(c []graph.EdgeID) string {
	s := ""
	for _, e := range c {
		s += itoa(int(e)) + ","
	}
	return s
}

// Property: Bridges agrees with the definition (removal disconnects the
// endpoints).
func TestQuickBridgesDefinition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(10)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			b.AddEdge(u, v, 1, 0.1)
		}
		g := b.MustBuild()
		isBridge := map[graph.EdgeID]bool{}
		for _, e := range Bridges(g) {
			isBridge[e] = true
		}
		for _, e := range g.Edges() {
			if IsCut(g, e.U, e.V, []graph.EdgeID{e.ID}) != isBridge[e.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
