// Package mincut finds and enumerates minimal s–t disconnecting link sets
// and selects α-bottleneck links (§III-A of the paper): a minimal s–t cut
// E' of constant size whose removal leaves exactly two connected
// components, each containing at most α|E| links.
package mincut

import (
	"fmt"
	"sort"

	"flowrel/internal/bitset"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// Cardinality returns the minimum number of links whose removal disconnects
// s from t (0 if they are already disconnected), via unit-capacity max
// flow.
func Cardinality(g *graph.Graph, s, t graph.NodeID) int {
	nw := maxflow.New(g.NumNodes())
	for _, e := range g.Edges() {
		nw.AddDirected(int32(e.U), int32(e.V), 1)
	}
	return nw.MaxFlow(int32(s), int32(t), -1)
}

// IsCut reports whether removing the links disconnects s from t.
func IsCut(g *graph.Graph, s, t graph.NodeID, cut []graph.EdgeID) bool {
	alive := bitset.New(g.NumEdges())
	alive.SetAll()
	for _, e := range cut {
		alive.Clear(int(e))
	}
	return !g.Reaches(s, t, alive)
}

// IsMinimalCut reports whether cut is an s–t cut none of whose proper
// subsets is one (equivalently: every link of the cut, restored alone,
// reconnects s and t).
func IsMinimalCut(g *graph.Graph, s, t graph.NodeID, cut []graph.EdgeID) bool {
	alive := bitset.New(g.NumEdges())
	alive.SetAll()
	for _, e := range cut {
		alive.Clear(int(e))
	}
	if g.Reaches(s, t, alive) {
		return false
	}
	for _, e := range cut {
		alive.Set(int(e))
		reconnects := g.Reaches(s, t, alive)
		alive.Clear(int(e))
		if !reconnects {
			return false
		}
	}
	return true
}

// EnumerateMinimal returns every minimal s–t cut with at most maxSize
// links, as sorted edge-ID slices in deterministic order. It branches on
// the links of an s–t path (every cut must hit every path), so the work is
// output-sensitive rather than Θ(|E| choose maxSize).
func EnumerateMinimal(g *graph.Graph, s, t graph.NodeID, maxSize int) [][]graph.EdgeID {
	alive := bitset.New(g.NumEdges())
	alive.SetAll()
	seen := make(map[string]bool)
	var out [][]graph.EdgeID
	var removed []graph.EdgeID

	var rec func()
	rec = func() {
		path := findPath(g, s, t, alive)
		if path == nil {
			if len(removed) == 0 {
				return // s and t are disconnected in g itself
			}
			cut := append([]graph.EdgeID(nil), removed...)
			sort.Slice(cut, func(i, j int) bool { return cut[i] < cut[j] })
			if !IsMinimalCut(g, s, t, cut) {
				return
			}
			key := fmt.Sprint(cut)
			if !seen[key] {
				seen[key] = true
				out = append(out, cut)
			}
			return
		}
		if len(removed) >= maxSize {
			return
		}
		for _, e := range path {
			alive.Clear(int(e))
			removed = append(removed, e)
			rec()
			removed = removed[:len(removed)-1]
			alive.Set(int(e))
		}
	}
	rec()
	sort.Slice(out, func(i, j int) bool { return lessCut(out[i], out[j]) })
	return out
}

func lessCut(a, b []graph.EdgeID) bool {
	if len(a) != len(b) {
		return len(a) < len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// findPath returns the links of one directed s–t path in the alive
// subgraph, or nil.
func findPath(g *graph.Graph, s, t graph.NodeID, alive *bitset.Set) []graph.EdgeID {
	parent := make([]graph.EdgeID, g.NumNodes())
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, g.NumNodes())
	visited[s] = true
	queue := []graph.NodeID{s}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for _, eid := range g.Incident(u) {
			e := g.Edge(eid)
			if e.U != u || !alive.Test(int(eid)) {
				continue
			}
			v := e.V
			if visited[v] {
				continue
			}
			visited[v] = true
			parent[v] = eid
			if v == t {
				var path []graph.EdgeID
				for x := t; x != s; {
					pe := parent[x]
					path = append(path, pe)
					x = g.Edge(pe).U
				}
				return path
			}
			queue = append(queue, v)
		}
	}
	return nil
}

// Bridges returns the IDs of all links e whose sole removal makes e.V
// unreachable from e.U — the directed analogue of a bridge. Such links are
// single-link bottleneck candidates for any demand routed across them.
func Bridges(g *graph.Graph) []graph.EdgeID {
	var bridges []graph.EdgeID
	for _, e := range g.Edges() {
		if IsCut(g, e.U, e.V, []graph.EdgeID{e.ID}) {
			bridges = append(bridges, e.ID)
		}
	}
	sort.Slice(bridges, func(i, j int) bool { return bridges[i] < bridges[j] })
	return bridges
}

// Bottleneck is a validated α-bottleneck split of a graph.
type Bottleneck struct {
	Cut   []graph.EdgeID // the bottleneck links e₁,…,e_k (sorted)
	Gs    *graph.Subgraph
	Gt    *graph.Subgraph
	XS    []graph.NodeID // per cut link: its endpoint inside Gs.G (sub ID)
	YT    []graph.NodeID // per cut link: its endpoint inside Gt.G (sub ID)
	Alpha float64        // max(|E_s|, |E_t|) / |E|
}

// K returns the number of bottleneck links.
func (b *Bottleneck) K() int { return len(b.Cut) }

// Split validates that cut is a minimal s–t cut splitting g into exactly
// two components and returns the bottleneck structure (side containing s
// first).
func Split(g *graph.Graph, s, t graph.NodeID, cut []graph.EdgeID) (*Bottleneck, error) {
	if len(cut) == 0 {
		return nil, fmt.Errorf("mincut: empty cut")
	}
	sorted := append([]graph.EdgeID(nil), cut...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("mincut: duplicate link %d in cut", sorted[i])
		}
	}
	if !IsMinimalCut(g, s, t, sorted) {
		return nil, fmt.Errorf("mincut: %v is not a minimal s–t cut", sorted)
	}
	gs, gt, err := g.SplitByCut(s, t, sorted)
	if err != nil {
		return nil, err
	}
	b := &Bottleneck{
		Cut: sorted, Gs: gs, Gt: gt,
		XS: make([]graph.NodeID, len(sorted)),
		YT: make([]graph.NodeID, len(sorted)),
	}
	for i, eid := range sorted {
		e := g.Edge(eid)
		switch {
		case gs.HasNode(e.U) && gt.HasNode(e.V):
			b.XS[i] = gs.NodeOf[e.U]
			b.YT[i] = gt.NodeOf[e.V]
		case gs.HasNode(e.V) && gt.HasNode(e.U):
			// A backward-oriented link can never carry s→t flow, so it
			// cannot belong to a minimal directed cut; reject defensively.
			return nil, fmt.Errorf("mincut: cut link %d is oriented from the sink side to the source side", eid)
		default:
			return nil, fmt.Errorf("mincut: cut link %d does not join the two components", eid)
		}
	}
	m := gs.G.NumEdges()
	if gt.G.NumEdges() > m {
		m = gt.G.NumEdges()
	}
	if g.NumEdges() > 0 {
		b.Alpha = float64(m) / float64(g.NumEdges())
	}
	return b, nil
}

// Find searches for the α-bottleneck split with the smallest maximum side
// (ties: fewer bottleneck links, then lexicographically smallest cut),
// among all minimal s–t cuts of at most maxSize links. It returns an error
// if no such cut exists.
func Find(g *graph.Graph, s, t graph.NodeID, maxSize int) (*Bottleneck, error) {
	if maxSize < 1 {
		return nil, fmt.Errorf("mincut: maxSize %d must be ≥ 1", maxSize)
	}
	cuts := EnumerateMinimal(g, s, t, maxSize)
	var best *Bottleneck
	for _, cut := range cuts {
		b, err := Split(g, s, t, cut)
		if err != nil {
			continue // e.g. >2 components cannot happen for minimal cuts, but stay safe
		}
		if best == nil || better(b, best) {
			best = b
		}
	}
	if best == nil {
		return nil, fmt.Errorf("mincut: no minimal s–t cut with at most %d links", maxSize)
	}
	return best, nil
}

func better(a, b *Bottleneck) bool {
	if a.Alpha != b.Alpha {
		return a.Alpha < b.Alpha
	}
	if len(a.Cut) != len(b.Cut) {
		return len(a.Cut) < len(b.Cut)
	}
	return lessCut(a.Cut, b.Cut)
}
