package poly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
	"flowrel/internal/reliability"
)

// uniformize rebuilds g with every link's failure probability set to p.
func uniformize(g *graph.Graph, p float64) *graph.Graph {
	b := graph.NewBuilder()
	b.AddNodes(g.NumNodes())
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V, e.Cap, p)
	}
	return b.MustBuild()
}

func singleEdge() (*graph.Graph, graph.Demand) {
	b := graph.NewBuilder()
	s := b.AddNode()
	t := b.AddNode()
	b.AddEdge(s, t, 1, 0.5)
	return b.MustBuild(), graph.Demand{S: s, T: t, D: 1}
}

func TestSingleEdgePolynomial(t *testing.T) {
	g, dem := singleEdge()
	P, err := Compute(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// R(p) = 1 - p: N_0 = 0, N_1 = 1.
	if P.M != 1 || P.Admitting[0] != 0 || P.Admitting[1] != 1 {
		t.Fatalf("P = %+v", P)
	}
	for _, p := range []float64{0, 0.25, 0.5, 1} {
		if math.Abs(P.Eval(p)-(1-p)) > 1e-12 {
			t.Fatalf("Eval(%g) = %g, want %g", p, P.Eval(p), 1-p)
		}
	}
	if P.MinAdmittingLinks() != 1 {
		t.Fatalf("MinAdmittingLinks = %d", P.MinAdmittingLinks())
	}
	if P.MinDisconnectingLinks() != 1 {
		t.Fatalf("MinDisconnectingLinks = %d", P.MinDisconnectingLinks())
	}
	c := P.Coefficients()
	// 1 - p → c = [1, -1].
	if c[0].Int64() != 1 || c[1].Int64() != -1 {
		t.Fatalf("coefficients = %v", c)
	}
}

func TestInfeasibleDemand(t *testing.T) {
	g, dem := singleEdge()
	dem.D = 5
	P, err := Compute(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if P.MinAdmittingLinks() != -1 || P.MinDisconnectingLinks() != -1 {
		t.Fatalf("P = %+v", P)
	}
	if P.Eval(0.3) != 0 {
		t.Fatalf("Eval = %g, want 0", P.Eval(0.3))
	}
}

func TestSolveFor(t *testing.T) {
	g, dem := singleEdge()
	P, err := Compute(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// R(p) = 1-p: R >= 0.999 iff p <= 0.001.
	p, ok := P.SolveFor(0.999)
	if !ok || math.Abs(p-0.001) > 1e-9 {
		t.Fatalf("SolveFor(0.999) = %g, %v", p, ok)
	}
	if _, ok := P.SolveFor(1.1); ok {
		t.Fatal("impossible target accepted")
	}
	if p, ok := P.SolveFor(0); !ok || p != 1 {
		t.Fatalf("trivial target: %g, %v", p, ok)
	}
	for _, target := range []float64{0.5, 0.9, 0.99} {
		p, ok := P.SolveFor(target)
		if !ok {
			t.Fatalf("target %g unreachable", target)
		}
		if got := P.Eval(p); got < target-1e-9 {
			t.Fatalf("Eval(SolveFor(%g)) = %g", target, got)
		}
	}
}

func TestErrors(t *testing.T) {
	g, dem := singleEdge()
	if _, err := Compute(nil, dem, reliability.Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Compute(g, graph.Demand{S: 0, T: 0, D: 1}, reliability.Options{}); err == nil {
		t.Fatal("bad demand accepted")
	}
}

// Property: Eval(p) matches a naive computation at uniform p, and the
// power-basis expansion matches the Bernstein evaluation.
func TestQuickPolynomialMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(9)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			b.AddEdge(u, v, 1+rng.Intn(3), 0)
		}
		g := b.MustBuild()
		dem := graph.Demand{S: 0, T: graph.NodeID(n - 1), D: 1 + rng.Intn(2)}
		P, err := Compute(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		c := P.Coefficients()
		for _, p := range []float64{0.1, 0.37, 0.8} {
			want, err := reliability.Naive(uniformize(g, p), dem, reliability.Options{})
			if err != nil {
				return false
			}
			if math.Abs(P.Eval(p)-want.Reliability) > 1e-9 {
				return false
			}
			if math.Abs(EvalCoefficients(c, p)-want.Reliability) > 1e-6 {
				return false
			}
		}
		// Boundary values.
		full, err := reliability.Naive(uniformize(g, 0), dem, reliability.Options{})
		if err != nil {
			return false
		}
		if math.Abs(P.Eval(0)-full.Reliability) > 1e-9 || P.Eval(1) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: counts are bounded by binomials and monotone in the sense that
// supersets of admitting sets admit (N_i > 0 ⇒ N_j > 0 for j ≥ i, up to
// the full set, when the full set admits).
func TestQuickCountInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(8)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			b.AddEdge(u, v, 1, 0)
		}
		g := b.MustBuild()
		dem := graph.Demand{S: 0, T: graph.NodeID(n - 1), D: 1}
		P, err := Compute(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		seen := false
		for i, c := range P.Admitting {
			if c > binom(P.M, i) {
				return false
			}
			if seen && i == P.M && c == 0 {
				return false // an admitting subset but not the full set
			}
			if c > 0 {
				seen = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
