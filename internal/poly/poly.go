// Package poly computes the flow-reliability polynomial: when every link
// fails with the same probability p, the reliability is
//
//	R(p) = Σ_{i=0}^{m} N_i · (1-p)^i · p^{m-i}
//
// where N_i counts the failure configurations with exactly i operational
// links that admit the demand. One 2^m enumeration yields the whole curve
// R(·) — every sweep over link quality afterwards is a polynomial
// evaluation. The counts also expose structural coefficients familiar from
// classical reliability theory: the smallest i with N_i > 0 is the size of
// the smallest admitting link set (the "shortest delivery subgraph"), and
// m minus the largest i with N_i < C(m, i) is the size of the smallest
// disconnecting set relative to the demand.
package poly

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/reliability"
)

// Polynomial is a flow-reliability polynomial in Bernstein (count) form.
type Polynomial struct {
	M int // number of links
	// Admitting[i] = number of admitting configurations with exactly i
	// operational links; Admitting[i] ≤ C(M, i) always fits uint64 for
	// M ≤ 63.
	Admitting []uint64
}

// Compute enumerates all 2^m failure configurations once and tallies the
// admitting ones by operational-link count. Parallel and deterministic.
// The graph's per-link probabilities are ignored (the polynomial treats p
// as the variable).
//
// opt.Ctl makes the enumeration cancellable. The counts N_i certify
// nothing until the enumeration is complete — a missing configuration
// could shift any coefficient — so an interrupted run returns an error
// wrapping anytime.ErrInterrupted rather than a partial polynomial.
func Compute(g *graph.Graph, dem graph.Demand, opt reliability.Options) (Polynomial, error) {
	if g == nil {
		return Polynomial{}, fmt.Errorf("poly: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return Polynomial{}, err
	}
	m := g.NumEdges()
	if m > conf.MaxEnumEdges {
		return Polynomial{}, &conf.ErrTooManyEdges{N: m, Where: "graph"}
	}
	proto, handles := maxflow.FromGraph(g)
	s, t := int32(dem.S), int32(dem.T)

	ctl := opt.Ctl
	workers := workerCount(opt)
	chunks := conf.SplitEnum(m)
	partial := make([][]uint64, len(chunks))
	errs := make([]error, len(chunks))

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ci, r := range chunks {
		wg.Add(1)
		go func(ci int, lo, hi uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cur := lo
			defer anytime.RecoverInto(&errs[ci], ctl, "poly worker", &cur)
			if ctl.Stopped() {
				return
			}
			nw := proto.Clone()
			counts := make([]uint64, m+1)
			prev := ^uint64(0)
			width := uint64(1)<<uint(m) - 1
			var sinceCheck uint64
			callsMark := nw.Stats.MaxFlowCalls
			for mask := lo; mask < hi; mask++ {
				if sinceCheck >= anytime.CheckEvery {
					if !ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark) {
						return
					}
					sinceCheck, callsMark = 0, nw.Stats.MaxFlowCalls
				}
				sinceCheck++
				cur = mask
				diff := (mask ^ prev) & width
				for diff != 0 {
					i := bits.TrailingZeros64(diff)
					diff &= diff - 1
					nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
				}
				prev = mask
				if nw.MaxFlow(s, t, dem.D) >= dem.D {
					counts[bits.OnesCount64(mask)]++
				}
			}
			ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark)
			partial[ci] = counts
		}(ci, r[0], r[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Polynomial{}, err
		}
	}
	if ctl.Stopped() {
		return Polynomial{}, fmt.Errorf("poly: enumeration interrupted: %w", ctl.Err())
	}

	P := Polynomial{M: m, Admitting: make([]uint64, m+1)}
	for _, counts := range partial {
		for i, c := range counts {
			P.Admitting[i] += c
		}
	}
	return P, nil
}

// Eval returns R(p) for a uniform link failure probability p ∈ [0, 1].
// Evaluation in the Bernstein basis is numerically stable.
func (P Polynomial) Eval(p float64) float64 {
	q := 1 - p
	// Horner-like evaluation: Σ N_i q^i p^{m-i}. Compute powers directly;
	// m ≤ 63 keeps this cheap and stable.
	r := 0.0
	for i, n := range P.Admitting {
		if n == 0 {
			continue
		}
		r += float64(n) * math.Pow(q, float64(i)) * math.Pow(p, float64(P.M-i))
	}
	return r
}

// MinAdmittingLinks returns the smallest number of operational links that
// can admit the demand (-1 if no configuration admits it).
func (P Polynomial) MinAdmittingLinks() int {
	for i, n := range P.Admitting {
		if n > 0 {
			return i
		}
	}
	return -1
}

// MinDisconnectingLinks returns the size of the smallest link set whose
// failure defeats the demand (-1 if even the full graph does not admit it):
// m minus the largest i with Admitting[i] < C(m, i).
func (P Polynomial) MinDisconnectingLinks() int {
	if P.Admitting[P.M] == 0 {
		return -1
	}
	for i := P.M; i >= 0; i-- {
		if P.Admitting[i] < binom(P.M, i) {
			return P.M - i
		}
	}
	// Unreachable for a valid demand: the zero-link configuration never
	// admits, so Admitting[0] < C(m, 0) always triggers above.
	return -1
}

// SolveFor returns the largest uniform failure probability p ∈ [0, 1] at
// which R(p) ≥ target (bisection; R is non-increasing in p). It answers
// "how good must the links be for the service level I promised": ok is
// false when even perfect links miss the target.
func (P Polynomial) SolveFor(target float64) (p float64, ok bool) {
	if P.Eval(0) < target {
		return 0, false
	}
	if P.Eval(1) >= target {
		return 1, true
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if P.Eval(mid) >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}

// Coefficients expands the polynomial into the power basis:
// R(p) = Σ_j c_j p^j with exact integer coefficients
// (q^i = (1-p)^i expanded binomially).
func (P Polynomial) Coefficients() []*big.Int {
	c := make([]*big.Int, P.M+1)
	for j := range c {
		c[j] = new(big.Int)
	}
	term := new(big.Int)
	for i, n := range P.Admitting {
		if n == 0 {
			continue
		}
		// N_i · (1-p)^i · p^{m-i} = N_i Σ_k C(i,k) (-1)^k p^{k+m-i}.
		for k := 0; k <= i; k++ {
			term.Binomial(int64(i), int64(k))
			term.Mul(term, new(big.Int).SetUint64(n))
			if k&1 == 1 {
				term.Neg(term)
			}
			c[k+P.M-i].Add(c[k+P.M-i], term)
		}
	}
	return c
}

// EvalCoefficients evaluates the power-basis form at p (for tests; Eval is
// the stable route).
func EvalCoefficients(c []*big.Int, p float64) float64 {
	r := 0.0
	pw := 1.0
	for _, cj := range c {
		f, _ := new(big.Float).SetInt(cj).Float64()
		r += f * pw
		pw *= p
	}
	return r
}

func binom(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	return new(big.Int).Binomial(int64(n), int64(k)).Uint64()
}

func workerCount(opt reliability.Options) int {
	if opt.Parallelism > 0 {
		return opt.Parallelism
	}
	return defaultParallelism()
}
