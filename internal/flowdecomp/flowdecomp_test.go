package flowdecomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/bitset"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

func diamond() (*graph.Graph, graph.Demand) {
	b := graph.NewBuilder()
	s := b.AddNode()
	a := b.AddNode()
	c := b.AddNode()
	t := b.AddNode()
	b.AddEdge(s, a, 1, 0) // 0
	b.AddEdge(s, c, 1, 0) // 1
	b.AddEdge(a, t, 1, 0) // 2
	b.AddEdge(c, t, 1, 0) // 3
	return b.MustBuild(), graph.Demand{S: s, T: t, D: 2}
}

func TestPathsDiamond(t *testing.T) {
	g, dem := diamond()
	paths, err := Paths(g, dem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Nodes[0] != dem.S || p.Nodes[len(p.Nodes)-1] != dem.T {
			t.Fatalf("path endpoints wrong: %v", p.Nodes)
		}
		if p.Hops() != 2 {
			t.Fatalf("hops = %d, want 2", p.Hops())
		}
	}
	// The two paths must be link-disjoint here (unit capacities).
	seen := map[graph.EdgeID]bool{}
	for _, p := range paths {
		for _, e := range p.Edges {
			if seen[e] {
				t.Fatalf("link %d reused across unit paths on unit-capacity graph", e)
			}
			seen[e] = true
		}
	}
}

func TestPathsRespectAliveMask(t *testing.T) {
	g, dem := diamond()
	alive := bitset.New(g.NumEdges())
	alive.SetAll()
	alive.Clear(0) // kill s→a
	paths, err := Paths(g, dem, alive)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	for _, e := range paths[0].Edges {
		if e == 0 {
			t.Fatal("path uses a dead link")
		}
	}
}

func TestPathsErrors(t *testing.T) {
	g, dem := diamond()
	if _, err := Paths(g, graph.Demand{S: 0, T: 0, D: 1}, nil); err == nil {
		t.Fatal("bad demand accepted")
	}
	if _, err := Paths(g, dem, bitset.New(2)); err == nil {
		t.Fatal("wrong mask size accepted")
	}
	if _, err := Decompose(g, dem, []int{1}, 1); err == nil {
		t.Fatal("wrong flow length accepted")
	}
	if _, err := Decompose(g, dem, []int{-1, 0, 0, 0}, 0); err == nil {
		t.Fatal("negative flow accepted")
	}
	if _, err := Decompose(g, dem, []int{1, 0, 0, 0}, 1); err == nil {
		t.Fatal("non-conserving flow accepted")
	}
}

func TestDecomposeCancelsCycles(t *testing.T) {
	// s→a→t plus cycle a→b→a carrying 1 unit of junk flow.
	b := graph.NewBuilder()
	s := b.AddNode()
	a := b.AddNode()
	bb := b.AddNode()
	tt := b.AddNode()
	// a→b is added before a→t so the greedy trace walks into the cycle
	// and must cancel it.
	b.AddEdge(s, a, 1, 0)  // 0
	b.AddEdge(a, bb, 1, 0) // 1
	b.AddEdge(bb, a, 1, 0) // 2
	b.AddEdge(a, tt, 1, 0) // 3
	g := b.MustBuild()
	flow := []int{1, 1, 1, 1}
	paths, err := Decompose(g, graph.Demand{S: s, T: tt, D: 1}, flow, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("got %d paths", len(paths))
	}
	if paths[0].Hops() != 2 {
		t.Fatalf("path %v should skip the cycle", paths[0].Nodes)
	}
}

// Property: decomposition yields exactly min(maxflow, d) paths; each path
// is a valid directed walk s→t over alive links; per-link usage never
// exceeds capacity.
func TestQuickDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		m := 1 + rng.Intn(12)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			b.AddEdge(u, v, 1+rng.Intn(3), 0)
		}
		g := b.MustBuild()
		dem := graph.Demand{S: 0, T: graph.NodeID(n - 1), D: 1 + rng.Intn(4)}
		alive := bitset.New(g.NumEdges())
		for i := 0; i < g.NumEdges(); i++ {
			if rng.Intn(3) > 0 {
				alive.Set(i)
			}
		}
		// Reference max flow.
		nw, handles := maxflow.FromGraph(g)
		for i := range handles {
			nw.SetEnabled(handles[i], alive.Test(i))
		}
		want := nw.MaxFlow(int32(dem.S), int32(dem.T), dem.D)

		paths, err := Paths(g, dem, alive)
		if err != nil {
			return false
		}
		if len(paths) != want {
			return false
		}
		use := make([]int, g.NumEdges())
		for _, p := range paths {
			if p.Nodes[0] != dem.S || p.Nodes[len(p.Nodes)-1] != dem.T {
				return false
			}
			if len(p.Edges) != len(p.Nodes)-1 {
				return false
			}
			for i, eid := range p.Edges {
				e := g.Edge(eid)
				if !alive.Test(int(eid)) || e.U != p.Nodes[i] || e.V != p.Nodes[i+1] {
					return false
				}
				use[eid]++
			}
		}
		for i, u := range use {
			if u > g.Edge(graph.EdgeID(i)).Cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
