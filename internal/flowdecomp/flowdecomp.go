// Package flowdecomp decomposes an integral s→t flow into unit-bit-rate
// delivery paths — the "d sub-streams which can reach t through different
// delivery paths" of the paper's flow demand model. It is used by the
// streaming simulator to report which routes the sub-streams actually take.
package flowdecomp

import (
	"fmt"

	"flowrel/internal/bitset"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
)

// Path is one unit-rate delivery path from the demand's source to its sink.
type Path struct {
	Nodes []graph.NodeID // node sequence, Nodes[0] = s, last = t
	Edges []graph.EdgeID // links used, len(Nodes)-1 of them
}

// Hops returns the path length in links.
func (p Path) Hops() int { return len(p.Edges) }

// Paths computes a maximum flow of value at most dem.D on the alive
// subgraph (nil alive = every link operational) and decomposes it into
// unit-rate paths. It returns the paths found; fewer than dem.D paths mean
// the configuration does not admit the demand (the sub-streams that fit
// are still reported).
func Paths(g *graph.Graph, dem graph.Demand, alive *bitset.Set) ([]Path, error) {
	if err := dem.Validate(g); err != nil {
		return nil, err
	}
	nw, handles := maxflow.FromGraph(g)
	if alive != nil {
		if alive.Len() != g.NumEdges() {
			return nil, fmt.Errorf("flowdecomp: alive mask has %d bits, graph has %d links", alive.Len(), g.NumEdges())
		}
		for i := range handles {
			nw.SetEnabled(handles[i], alive.Test(i))
		}
	}
	value := nw.MaxFlow(int32(dem.S), int32(dem.T), dem.D)

	// Extract per-link flow, then decompose it on the graph directly.
	flow := make([]int, g.NumEdges())
	for i := range handles {
		flow[i] = nw.FlowOn(handles[i])
	}
	return Decompose(g, dem, flow, value)
}

// Decompose splits the given per-link flow (flow[e] units along link e in
// its direction) of the given value into unit paths. Flow cycles, which
// augmenting-path algorithms may leave behind, are cancelled on the fly.
func Decompose(g *graph.Graph, dem graph.Demand, flow []int, value int) ([]Path, error) {
	if len(flow) != g.NumEdges() {
		return nil, fmt.Errorf("flowdecomp: flow vector has %d entries, graph has %d links", len(flow), g.NumEdges())
	}
	for i, f := range flow {
		if f < 0 {
			return nil, fmt.Errorf("flowdecomp: negative flow %d on link %d", f, i)
		}
	}
	paths := make([]Path, 0, value)
	onPath := make([]int, g.NumNodes()) // position+1 on current trace, 0 = absent
	for unit := 0; unit < value; unit++ {
		var nodes []graph.NodeID
		var edges []graph.EdgeID
		u := dem.S
		nodes = append(nodes, u)
		onPath[u] = len(nodes)
		for u != dem.T {
			eid := graph.EdgeID(-1)
			for _, cand := range g.Incident(u) {
				e := g.Edge(cand)
				if e.U == u && flow[cand] > 0 {
					eid = cand
					break
				}
			}
			if eid < 0 {
				// Conservation guarantees an outgoing flow link exists on
				// every s→t trace of a feasible flow.
				return nil, fmt.Errorf("flowdecomp: flow conservation violated at node %d", u)
			}
			v := g.Edge(eid).V
			if pos := onPath[v]; pos > 0 {
				// The trace closed a flow cycle: v → … → u → v, made of
				// edges[pos-1:] plus eid. Cancel one unit around it (this
				// preserves conservation and the flow value) and resume
				// the trace from v.
				for i := pos - 1; i < len(edges); i++ {
					flow[edges[i]]--
				}
				flow[eid]--
				for i := pos; i < len(nodes); i++ {
					onPath[nodes[i]] = 0
				}
				nodes = nodes[:pos]
				edges = edges[:pos-1]
				u = v
				continue
			}
			edges = append(edges, eid)
			nodes = append(nodes, v)
			onPath[v] = len(nodes)
			u = v
		}
		for _, eid := range edges {
			flow[eid]--
		}
		for _, n := range nodes {
			onPath[n] = 0
		}
		paths = append(paths, Path{Nodes: nodes, Edges: edges})
	}
	return paths, nil
}
