package multicast

import (
	"math/rand"
	"testing"

	"flowrel/internal/overlay"
	"flowrel/internal/reliability"
	"flowrel/internal/testutil"
)

// TestMonteCarloRandDeterministic pins the injected-rng contract: block
// seeds are drawn from the source up front, so the estimate matches the
// seed wrapper exactly and is independent of worker scheduling.
func TestMonteCarloRandDeterministic(t *testing.T) {
	o, err := overlay.Mesh(14, 3, 2, 2, 0.15, 3)
	if err != nil {
		t.Fatal(err)
	}

	viaSeed, err := MonteCarlo(o.G, o.Source, nil, o.Substreams, 4000, 11, reliability.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		viaRand, err := MonteCarloRand(o.G, o.Source, nil, o.Substreams, 4000,
			rand.New(rand.NewSource(11)), reliability.Options{Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !testutil.AlmostEqual(viaSeed.Reliability, viaRand.Reliability, 0) ||
			viaSeed.Admitting != viaRand.Admitting || viaSeed.Samples != viaRand.Samples {
			t.Fatalf("workers=%d: %+v diverged from %+v", workers, viaRand, viaSeed)
		}
	}

	if _, err := MonteCarloRand(o.G, o.Source, nil, o.Substreams, 100, nil, reliability.Options{}); err == nil {
		t.Fatal("MonteCarloRand accepted a nil rng")
	}
}
