package multicast

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
	"flowrel/internal/overlay"
	"flowrel/internal/reliability"
)

func TestTreeAllReceiveClosedForm(t *testing.T) {
	// In a tree every link is the sole route to its subtree: all nodes
	// receive iff every link is alive → R = Π(1-p) = (1-p)^|E|.
	const p = 0.1
	o, err := overlay.Tree(2, 3, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Naive(o.G, o.Source, nil, 1, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(1-p, float64(o.G.NumEdges()))
	if math.Abs(res.Reliability-want) > 1e-12 {
		t.Fatalf("all-receive = %.12f, want %.12f", res.Reliability, want)
	}
	if res.Targets != len(o.Peers) {
		t.Fatalf("targets = %d", res.Targets)
	}
}

func TestSubsetOfTargets(t *testing.T) {
	// Asking only for shallow peers ignores deep-link failures.
	const p = 0.1
	o, err := overlay.Tree(2, 2, 1, p)
	if err != nil {
		t.Fatal(err)
	}
	// Targets: just the two depth-1 peers → only their two links matter.
	res, err := Naive(o.G, o.Source, o.Peers[:2], 1, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - p) * (1 - p)
	if math.Abs(res.Reliability-want) > 1e-12 {
		t.Fatalf("subset = %.12f, want %.12f", res.Reliability, want)
	}
}

func TestPerTargetAndMinBound(t *testing.T) {
	o, err := overlay.MultiTree(6, 2, 2, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	per, err := PerTarget(o.G, o.Source, o.Peers, 2, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(per) != len(o.Peers) {
		t.Fatalf("per-target count %d", len(per))
	}
	all, err := Naive(o.G, o.Source, o.Peers, 2, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	minP := 1.0
	for _, r := range per {
		if r < minP {
			minP = r
		}
	}
	if all.Reliability > minP+1e-9 {
		t.Fatalf("all-receive %g exceeds weakest target %g", all.Reliability, minP)
	}
}

func TestMonteCarloMatchesNaive(t *testing.T) {
	o, err := overlay.MultiTree(6, 2, 2, 0.08)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Naive(o.G, o.Source, nil, 2, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := MonteCarlo(o.G, o.Source, nil, 2, 60000, 3, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Reliability-exact.Reliability) > 5*est.StdErr+1e-9 {
		t.Fatalf("MC %g vs exact %g", est.Reliability, exact.Reliability)
	}
	a, _ := MonteCarlo(o.G, o.Source, nil, 2, 8000, 5, reliability.Options{Parallelism: 1})
	b, _ := MonteCarlo(o.G, o.Source, nil, 2, 8000, 5, reliability.Options{Parallelism: 8})
	if a.Admitting != b.Admitting {
		t.Fatal("MC not deterministic across parallelism")
	}
}

func TestErrors(t *testing.T) {
	o, err := overlay.Tree(2, 2, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Naive(nil, 0, nil, 1, reliability.Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Naive(o.G, o.Source, nil, 0, reliability.Options{}); err == nil {
		t.Fatal("d=0 accepted")
	}
	if _, err := Naive(o.G, 99, nil, 1, reliability.Options{}); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Naive(o.G, o.Source, []graph.NodeID{o.Source}, 1, reliability.Options{}); err == nil {
		t.Fatal("source as target accepted")
	}
	if _, err := Naive(o.G, o.Source, []graph.NodeID{99}, 1, reliability.Options{}); err == nil {
		t.Fatal("bad target accepted")
	}
	if _, err := Naive(o.G, o.Source, []graph.NodeID{}, 1, reliability.Options{}); err == nil {
		t.Fatal("empty target list accepted")
	}
	if _, err := MonteCarlo(o.G, o.Source, nil, 1, 0, 1, reliability.Options{}); err == nil {
		t.Fatal("zero samples accepted")
	}
	if _, err := PerTarget(o.G, o.Source, nil, 0, reliability.Options{}); err == nil {
		t.Fatal("PerTarget d=0 accepted")
	}
}

// Property: the all-targets reliability never exceeds any marginal and
// equals the single-target reliability when there is one target.
func TestQuickConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		m := 2 + rng.Intn(8)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			b.AddEdge(u, v, 1+rng.Intn(2), rng.Float64()*0.8)
		}
		g := b.MustBuild()
		s := graph.NodeID(0)
		d := 1 + rng.Intn(2)

		all, err := Naive(g, s, nil, d, reliability.Options{})
		if err != nil {
			return false
		}
		per, err := PerTarget(g, s, nil, d, reliability.Options{})
		if err != nil {
			return false
		}
		for i, r := range per {
			if all.Reliability > r+1e-9 {
				return false
			}
			// Single-target multicast equals plain reliability.
			one, err := Naive(g, s, []graph.NodeID{graph.NodeID(i + 1)}, d, reliability.Options{})
			if err != nil {
				return false
			}
			if math.Abs(one.Reliability-r) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
