// Package multicast computes delivery reliability to *many* subscribers at
// once — the actual service a P2P streaming system provides (§I of the
// paper frames reliability per sink; a session succeeds when every
// subscriber is served).
//
// Semantics. The stream is replicated, not consumed: a link carries each
// sub-stream at most once no matter how many downstream peers read it, so
// delivering d sub-streams to every node is a packing of d arc-disjoint
// (capacity-respecting) spanning arborescences rooted at the source. By
// Edmonds' arborescence-packing theorem such a packing exists iff the
// s→v max flow is at least d for every node v — so "every target can
// receive" with the per-target max-flow criterion is *exact* when the
// targets are all nodes, and it is the standard feasibility criterion for
// replicated push overlays in general (relay peers hold the stream too).
package multicast

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/reliability"
)

// Result is an exact all-targets reliability.
type Result struct {
	Reliability float64
	Targets     int
	Stats       reliability.Stats
	// Partial reports an interrupted run; [Lo, Hi] is then a certified
	// interval around the true reliability (examined admitting mass up to
	// one minus examined failing mass) and Reliability its midpoint.
	Partial bool
	Lo, Hi  float64
	Reason  string
}

// targetsOrAll returns the target list, defaulting to every node except s.
func targetsOrAll(g *graph.Graph, s graph.NodeID, targets []graph.NodeID) ([]graph.NodeID, error) {
	if err := g.CheckNode(s); err != nil {
		return nil, err
	}
	if targets == nil {
		for i := 0; i < g.NumNodes(); i++ {
			if graph.NodeID(i) != s {
				targets = append(targets, graph.NodeID(i))
			}
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("multicast: no targets")
	}
	for _, t := range targets {
		if err := g.CheckNode(t); err != nil {
			return nil, err
		}
		if t == s {
			return nil, fmt.Errorf("multicast: source %d cannot be a target", s)
		}
	}
	return targets, nil
}

// Naive computes the exact probability that every target can receive all d
// sub-streams, by enumerating the 2^{|E|} failure configurations; each
// configuration is checked with per-target max flows (early exit on the
// first starved target). Parallel and deterministic.
func Naive(g *graph.Graph, s graph.NodeID, targets []graph.NodeID, d int, opt reliability.Options) (Result, error) {
	if g == nil {
		return Result{}, fmt.Errorf("multicast: nil graph")
	}
	if d < 1 {
		return Result{}, fmt.Errorf("multicast: demand %d must be ≥ 1", d)
	}
	targets, err := targetsOrAll(g, s, targets)
	if err != nil {
		return Result{}, err
	}
	m := g.NumEdges()
	if m > conf.MaxEnumEdges {
		return Result{}, &conf.ErrTooManyEdges{N: m, Where: "graph"}
	}
	pFail := make([]float64, m)
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}
	table := conf.NewTable(pFail)
	proto, handles := maxflow.FromGraph(g)

	workers := workerCount(opt)
	chunks := conf.SplitEnum(m)
	partial := make([]float64, len(chunks))
	examined := make([]float64, len(chunks))
	stats := make([]reliability.Stats, len(chunks))
	errs := make([]error, len(chunks))

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ci, r := range chunks {
		wg.Add(1)
		go func(ci int, lo, hi uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cur := lo
			defer anytime.RecoverInto(&errs[ci], opt.Ctl, "multicast enumeration worker", &cur)
			if opt.Ctl.Stopped() {
				return
			}
			nw := proto.Clone()
			sum, exam := 0.0, 0.0
			var st reliability.Stats
			prev := ^uint64(0)
			width := uint64(1)<<uint(m) - 1
			var sinceCheck uint64
			var callsMark int64
			for mask := lo; mask < hi; mask++ {
				if sinceCheck >= anytime.CheckEvery {
					if !opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark) {
						break
					}
					sinceCheck, callsMark = 0, nw.Stats.MaxFlowCalls
				}
				sinceCheck++
				cur = mask
				if opt.TestHook != nil {
					opt.TestHook(mask)
				}
				diff := (mask ^ prev) & width
				for diff != 0 {
					i := tz(diff)
					diff &= diff - 1
					nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
				}
				prev = mask
				st.Configs++
				exam += table.Prob(mask)
				if allServed(nw, int32(s), targets, d) {
					st.Admitting++
					sum += table.Prob(mask)
				}
			}
			opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark)
			st.MaxFlowCalls = nw.Stats.MaxFlowCalls
			partial[ci] = sum
			examined[ci] = exam
			stats[ci] = st
		}(ci, r[0], r[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Result{}, err
		}
	}

	res := Result{Targets: len(targets)}
	exam := 0.0
	for ci := range chunks {
		res.Reliability += partial[ci]
		exam += examined[ci]
		res.Stats.Configs += stats[ci].Configs
		res.Stats.Admitting += stats[ci].Admitting
		res.Stats.MaxFlowCalls += stats[ci].MaxFlowCalls
	}
	if opt.Ctl.Stopped() {
		res.Partial = true
		res.Reason = opt.Ctl.Reason()
		res.Lo = res.Reliability
		res.Hi = 1 - (exam - res.Reliability)
		if res.Hi > 1 {
			res.Hi = 1
		}
		if res.Hi < res.Lo {
			res.Hi = res.Lo
		}
		res.Reliability = (res.Lo + res.Hi) / 2
	} else {
		res.Lo, res.Hi = res.Reliability, res.Reliability
	}
	return res, nil
}

func allServed(nw *maxflow.Network, s int32, targets []graph.NodeID, d int) bool {
	for _, t := range targets {
		if nw.MaxFlow(s, int32(t), d) < d {
			return false
		}
	}
	return true
}

// Estimate is a Monte Carlo all-targets estimate.
type Estimate = reliability.Estimate

// MonteCarlo estimates the all-targets reliability by sampling;
// deterministic per seed, any graph size.
func MonteCarlo(g *graph.Graph, s graph.NodeID, targets []graph.NodeID, d, samples int, seed int64, opt reliability.Options) (Estimate, error) {
	return MonteCarloRand(g, s, targets, d, samples, rand.New(rand.NewSource(seed)), opt)
}

// MonteCarloRand is MonteCarlo drawing its randomness from an injected
// source. Each sampling block gets its own generator seeded from rng up
// front, so the estimate is independent of worker scheduling.
func MonteCarloRand(g *graph.Graph, s graph.NodeID, targets []graph.NodeID, d, samples int, rng *rand.Rand, opt reliability.Options) (Estimate, error) {
	if rng == nil {
		return Estimate{}, fmt.Errorf("multicast: MonteCarloRand wants a non-nil rng")
	}
	if g == nil {
		return Estimate{}, fmt.Errorf("multicast: nil graph")
	}
	if d < 1 {
		return Estimate{}, fmt.Errorf("multicast: demand %d must be ≥ 1", d)
	}
	if samples < 1 {
		return Estimate{}, fmt.Errorf("multicast: sample count %d must be ≥ 1", samples)
	}
	targets, err := targetsOrAll(g, s, targets)
	if err != nil {
		return Estimate{}, err
	}
	proto, handles := maxflow.FromGraph(g)
	pFail := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}

	const blockSize = 1024
	nBlocks := (samples + blockSize - 1) / blockSize
	blockSeeds := make([]int64, nBlocks)
	for b := range blockSeeds {
		blockSeeds[b] = rng.Int63()
	}
	hits := make([]int, nBlocks)
	done := make([]int, nBlocks)
	errs := make([]error, nBlocks)
	workers := workerCount(opt)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for b := 0; b < nBlocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var cur uint64
			defer anytime.RecoverInto(&errs[b], opt.Ctl, "multicast sampling worker", &cur)
			if opt.Ctl.Stopped() {
				return
			}
			n := blockSize
			if b == nBlocks-1 {
				n = samples - b*blockSize
			}
			rng := rand.New(rand.NewSource(blockSeeds[b]))
			nw := proto.Clone()
			h := 0
			var callsMark int64
			for i := 0; i < n; i++ {
				if i > 0 && i%256 == 0 {
					if !opt.Ctl.Charge(256, nw.Stats.MaxFlowCalls-callsMark) {
						break
					}
					callsMark = nw.Stats.MaxFlowCalls
				}
				cur = uint64(i)
				if opt.TestHook != nil {
					opt.TestHook(cur)
				}
				for j := range handles {
					nw.SetEnabled(handles[j], rng.Float64() >= pFail[j])
				}
				if allServed(nw, int32(s), targets, d) {
					h++
				}
				done[b]++
			}
			opt.Ctl.Charge(uint64(done[b]%256), nw.Stats.MaxFlowCalls-callsMark)
			hits[b] = h
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Estimate{}, err
		}
	}
	total, completed := 0, 0
	for b := range hits {
		total += hits[b]
		completed += done[b]
	}
	est := Estimate{Samples: completed, Admitting: total}
	if completed < samples {
		est.Partial = true
		est.Reason = opt.Ctl.Reason()
	}
	if completed == 0 {
		return est, nil
	}
	p := float64(total) / float64(completed)
	est.Reliability = p
	est.StdErr = math.Sqrt(p * (1 - p) / float64(completed))
	return est, nil
}

// PerTarget returns each target's marginal reliability (the probability
// that this particular target can receive d), computed exactly with the
// factoring engine. The all-targets reliability is at most the minimum of
// these marginals.
func PerTarget(g *graph.Graph, s graph.NodeID, targets []graph.NodeID, d int, opt reliability.Options) ([]float64, error) {
	if g == nil {
		return nil, fmt.Errorf("multicast: nil graph")
	}
	if d < 1 {
		return nil, fmt.Errorf("multicast: demand %d must be ≥ 1", d)
	}
	targets, err := targetsOrAll(g, s, targets)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(targets))
	for i, t := range targets {
		res, err := reliability.Factoring(g, graph.Demand{S: s, T: t, D: d}, opt)
		if err != nil {
			return nil, err
		}
		out[i] = res.Reliability
	}
	return out, nil
}

func workerCount(opt reliability.Options) int {
	if opt.Parallelism > 0 {
		return opt.Parallelism
	}
	return defaultParallelism()
}

func tz(x uint64) int { return bits.TrailingZeros64(x) }
