package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/graph"
	"flowrel/internal/overlay"
	"flowrel/internal/reliability"
)

// twoParallel: two unit links s→t with p = 0.5: F ∈ {0,1,2} with
// probabilities 1/4, 1/2, 1/4.
func twoParallel() (*graph.Graph, graph.Demand) {
	b := graph.NewBuilder()
	s := b.AddNode()
	t := b.AddNode()
	b.AddEdge(s, t, 1, 0.5)
	b.AddEdge(s, t, 1, 0.5)
	return b.MustBuild(), graph.Demand{S: s, T: t, D: 2}
}

func TestExactTwoParallel(t *testing.T) {
	g, dem := twoParallel()
	ds, err := Exact(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 0.25}
	for v, p := range want {
		if math.Abs(ds.P[v]-p) > 1e-12 {
			t.Fatalf("P[%d] = %g, want %g", v, ds.P[v], p)
		}
	}
	if math.Abs(ds.Reliability()-0.25) > 1e-12 {
		t.Fatalf("Reliability = %g", ds.Reliability())
	}
	if math.Abs(ds.Mean()-1.0) > 1e-12 {
		t.Fatalf("Mean = %g, want 1", ds.Mean())
	}
	if math.Abs(ds.MeanFraction()-0.5) > 1e-12 {
		t.Fatalf("MeanFraction = %g", ds.MeanFraction())
	}
	if math.Abs(ds.AtLeast(1)-0.75) > 1e-12 {
		t.Fatalf("AtLeast(1) = %g", ds.AtLeast(1))
	}
	if ds.AtLeast(0) != 1 || ds.AtLeast(3) != 0 {
		t.Fatal("AtLeast boundary cases wrong")
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	ds, err := Exact(o.G, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, p := range ds.P {
		sum += p
	}
	if math.Abs(sum-1) > 1e-10 {
		t.Fatalf("distribution sums to %g", sum)
	}
}

func TestErrors(t *testing.T) {
	g, dem := twoParallel()
	if _, err := Exact(nil, dem, reliability.Options{}); err == nil {
		t.Fatal("nil graph accepted by Exact")
	}
	if _, err := Factored(nil, dem, reliability.Options{}); err == nil {
		t.Fatal("nil graph accepted by Factored")
	}
	if _, err := Sampled(nil, dem, 10, 1, reliability.Options{}); err == nil {
		t.Fatal("nil graph accepted by Sampled")
	}
	bad := graph.Demand{S: 0, T: 0, D: 1}
	if _, err := Exact(g, bad, reliability.Options{}); err == nil {
		t.Fatal("bad demand accepted")
	}
	if _, err := Sampled(g, dem, 0, 1, reliability.Options{}); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func randomInstance(rng *rand.Rand) (*graph.Graph, graph.Demand) {
	n := 2 + rng.Intn(5)
	m := 1 + rng.Intn(9)
	b := graph.NewBuilder()
	b.AddNodes(n)
	for i := 0; i < m; i++ {
		u := graph.NodeID(rng.Intn(n))
		v := graph.NodeID(rng.Intn(n))
		for v == u {
			v = graph.NodeID(rng.Intn(n))
		}
		b.AddEdge(u, v, 1+rng.Intn(3), rng.Float64()*0.9)
	}
	return b.MustBuild(), graph.Demand{S: 0, T: graph.NodeID(n - 1), D: 1 + rng.Intn(3)}
}

// Property: Exact and Factored agree, the distribution sums to 1, and the
// top bucket equals the naive reliability.
func TestQuickExactVsFactoredVsNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomInstance(rng)
		ex, err := Exact(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		fa, err := Factored(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		sum := 0.0
		for v := range ex.P {
			if math.Abs(ex.P[v]-fa.P[v]) > 1e-9 {
				return false
			}
			sum += ex.P[v]
		}
		if math.Abs(sum-1) > 1e-9 {
			return false
		}
		naive, err := reliability.Naive(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		return math.Abs(ex.Reliability()-naive.Reliability) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: AtLeast is a non-increasing tail and consistent with P.
func TestQuickTailConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomInstance(rng)
		ds, err := Exact(g, dem, reliability.Options{})
		if err != nil {
			return false
		}
		prev := 1.0
		for j := 0; j <= ds.D+1; j++ {
			tj := ds.AtLeast(j)
			if tj > prev+1e-12 {
				return false
			}
			prev = tj
		}
		// AtLeast(j) - AtLeast(j+1) == P[j].
		for j := 0; j <= ds.D; j++ {
			if math.Abs((ds.AtLeast(j)-ds.AtLeast(j+1))-ds.P[j]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSampledConverges(t *testing.T) {
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	exact, err := Exact(o.G, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	est, err := Sampled(o.G, dem, 60000, 13, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := range exact.P {
		if math.Abs(exact.P[v]-est.P[v]) > 0.01 {
			t.Fatalf("bucket %d: exact %g sampled %g", v, exact.P[v], est.P[v])
		}
	}
	// Determinism across parallelism.
	a, _ := Sampled(o.G, dem, 10000, 5, reliability.Options{Parallelism: 1})
	b, _ := Sampled(o.G, dem, 10000, 5, reliability.Options{Parallelism: 8})
	for v := range a.P {
		if a.P[v] != b.P[v] {
			t.Fatal("Sampled not deterministic across parallelism")
		}
	}
}

// Property: the exact distribution is bit-identical for any parallelism
// (chunking is a function of the instance alone).
func TestQuickExactParallelDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := randomInstance(rng)
		a, err := Exact(g, dem, reliability.Options{Parallelism: 1})
		if err != nil {
			return false
		}
		b, err := Exact(g, dem, reliability.Options{Parallelism: 8})
		if err != nil {
			return false
		}
		for v := range a.P {
			if a.P[v] != b.P[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	g, dem := twoParallel()
	ds, err := Exact(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s := ds.String(); s == "" {
		t.Fatal("empty String")
	}
}
