// Package dist computes the full probability distribution of the
// deliverable rate: P(max-flow from s to t equals v) for v = 0…d, under
// independent link failures. The flow reliability is the upper tail
// P(F ≥ d), but P2P streaming cares about the whole distribution — with
// layered or MDC-coded streams, receiving j of d sub-streams yields
// quality level j (§II of the paper motivates multiple-tree systems
// exactly this way). One distribution computation therefore answers every
// partial-delivery question at once:
//
//	P(full stream)  = P(F ≥ d)
//	P(≥ j layers)   = Σ_{v ≥ j} P(F = v)
//	E[delivered]    = Σ_v v·P(F = v)
package dist

import (
	"fmt"
	"math/bits"
	"math/rand"
	"runtime"
	"sync"

	"flowrel/internal/anytime"
	"flowrel/internal/conf"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/reliability"
)

// Distribution is the law of the deliverable rate, truncated at d:
// P[v] = P(min(maxflow, d) = v) for v = 0…d.
//
// A Partial distribution is a certified under-approximation: every tail
// AtLeast(j) — and hence Reliability() — is a guaranteed lower bound on
// the true tail, and the mass Unexamined() was never classified and may
// fall in any bucket.
type Distribution struct {
	D int
	P []float64 // length D+1
	// Partial reports an interrupted computation (see type comment).
	Partial bool
	// Reason says why an interrupted run stopped.
	Reason string
}

// Unexamined returns the probability mass an interrupted run never
// classified (0 for a complete run, up to float jitter).
func (ds Distribution) Unexamined() float64 {
	sum := 0.0
	for _, p := range ds.P {
		sum += p
	}
	if sum > 1 {
		return 0
	}
	return 1 - sum
}

// Reliability returns P(F ≥ D) — the paper's reliability.
func (ds Distribution) Reliability() float64 { return ds.P[ds.D] }

// AtLeast returns P(F ≥ j) for 0 ≤ j ≤ D.
func (ds Distribution) AtLeast(j int) float64 {
	if j <= 0 {
		return 1
	}
	if j > ds.D {
		return 0
	}
	p := 0.0
	for v := j; v <= ds.D; v++ {
		p += ds.P[v]
	}
	return p
}

// Mean returns E[min(F, D)], the expected number of delivered sub-streams.
func (ds Distribution) Mean() float64 {
	m := 0.0
	for v, p := range ds.P {
		m += float64(v) * p
	}
	return m
}

// MeanFraction returns Mean()/D, the expected delivered fraction.
func (ds Distribution) MeanFraction() float64 { return ds.Mean() / float64(ds.D) }

func (ds Distribution) String() string {
	return fmt.Sprintf("dist{d=%d, R=%.6f, E=%.4f}", ds.D, ds.Reliability(), ds.Mean())
}

// Exact computes the distribution by enumerating all 2^{|E|} failure
// configurations once — each configuration's max flow (computed up to d)
// classifies it into one bucket, so the whole distribution costs the same
// as a single naive reliability computation. Parallel and deterministic.
func Exact(g *graph.Graph, dem graph.Demand, opt reliability.Options) (Distribution, error) {
	if g == nil {
		return Distribution{}, fmt.Errorf("dist: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return Distribution{}, err
	}
	m := g.NumEdges()
	if m > conf.MaxEnumEdges {
		return Distribution{}, &conf.ErrTooManyEdges{N: m, Where: "graph"}
	}
	pFail := make([]float64, m)
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}
	table := conf.NewTable(pFail)
	proto, handles := maxflow.FromGraph(g)
	s, t := int32(dem.S), int32(dem.T)

	workers := workerCount(opt)
	chunks := conf.SplitEnum(m)
	partial := make([][]float64, len(chunks))
	errs := make([]error, len(chunks))

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ci, r := range chunks {
		wg.Add(1)
		go func(ci int, lo, hi uint64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			cur := lo
			defer anytime.RecoverInto(&errs[ci], opt.Ctl, "distribution enumeration worker", &cur)
			if opt.Ctl.Stopped() {
				return
			}
			nw := proto.Clone()
			buckets := make([]float64, dem.D+1)
			prev := ^uint64(0)
			width := uint64(1)<<uint(m) - 1
			var sinceCheck uint64
			var callsMark int64
			for mask := lo; mask < hi; mask++ {
				if sinceCheck >= anytime.CheckEvery {
					if !opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark) {
						break
					}
					sinceCheck, callsMark = 0, nw.Stats.MaxFlowCalls
				}
				sinceCheck++
				cur = mask
				if opt.TestHook != nil {
					opt.TestHook(mask)
				}
				diff := (mask ^ prev) & width
				for diff != 0 {
					i := trailingZeros(diff)
					diff &= diff - 1
					nw.SetEnabled(handles[i], mask&(1<<uint(i)) != 0)
				}
				prev = mask
				v := nw.MaxFlow(s, t, dem.D)
				buckets[v] += table.Prob(mask)
			}
			opt.Ctl.Charge(sinceCheck, nw.Stats.MaxFlowCalls-callsMark)
			partial[ci] = buckets
		}(ci, r[0], r[1])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Distribution{}, err
		}
	}

	out := Distribution{D: dem.D, P: make([]float64, dem.D+1)}
	for _, buckets := range partial {
		for v, p := range buckets {
			out.P[v] += p
		}
	}
	if opt.Ctl.Stopped() {
		out.Partial = true
		out.Reason = opt.Ctl.Reason()
	}
	return out, nil
}

// Factored computes the distribution as d+1 tail probabilities using the
// factoring engine: P(F ≥ j) is the flow reliability at demand j, and
// P(F = v) = P(F ≥ v) − P(F ≥ v+1). Slower per-point than Exact on tiny
// graphs but reaches far larger ones thanks to pruning.
//
// With opt.Ctl an interrupted run substitutes each unfinished tail's
// certified lower bound (Result.Lo). The bounds of independent runs need
// not be monotone in j, so they are monotonized with a suffix max — the
// true tails decrease in j, hence max(Lo_j, …, Lo_D) still lower-bounds
// P(F ≥ j) — before differencing into buckets. That keeps every
// AtLeast(j) certified (the Partial-Distribution contract), though a
// single bucket of a Partial result may overshoot its true value.
func Factored(g *graph.Graph, dem graph.Demand, opt reliability.Options) (Distribution, error) {
	if g == nil {
		return Distribution{}, fmt.Errorf("dist: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return Distribution{}, err
	}
	out := Distribution{D: dem.D, P: make([]float64, dem.D+1)}
	tails := make([]float64, dem.D+2) // tails[j] = P(F ≥ j), certified lower
	tails[0] = 1
	for j := 1; j <= dem.D; j++ {
		res, err := reliability.Factoring(g, graph.Demand{S: dem.S, T: dem.T, D: j}, opt)
		if err != nil {
			return Distribution{}, err
		}
		if res.Partial {
			out.Partial = true
			out.Reason = res.Reason
			tails[j] = res.Lo
		} else {
			tails[j] = res.Reliability
		}
	}
	for j := dem.D; j >= 0; j-- {
		if tails[j] < tails[j+1] {
			tails[j] = tails[j+1] // suffix max (float jitter on complete runs)
		}
	}
	for v := 0; v <= dem.D; v++ {
		out.P[v] = tails[v] - tails[v+1]
	}
	return out, nil
}

// Sampled estimates the distribution by Monte Carlo; deterministic per
// seed regardless of parallelism. StdErr of each bucket is ≤ 1/(2√n).
//
// A Partial Sampled result is normalized over the samples actually
// completed — a valid smaller-sample estimate rather than the certified
// under-approximation the exact engines return (estimates certify
// nothing either way).
func Sampled(g *graph.Graph, dem graph.Demand, samples int, seed int64, opt reliability.Options) (Distribution, error) {
	if g == nil {
		return Distribution{}, fmt.Errorf("dist: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return Distribution{}, err
	}
	if samples < 1 {
		return Distribution{}, fmt.Errorf("dist: sample count %d must be ≥ 1", samples)
	}
	proto, handles := maxflow.FromGraph(g)
	pFail := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}
	s, t := int32(dem.S), int32(dem.T)

	const blockSize = 4096
	nBlocks := (samples + blockSize - 1) / blockSize
	counts := make([][]int64, nBlocks)
	done := make([]int, nBlocks)
	errs := make([]error, nBlocks)

	workers := workerCount(opt)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for b := 0; b < nBlocks; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var cur uint64
			defer anytime.RecoverInto(&errs[b], opt.Ctl, "distribution sampling worker", &cur)
			if opt.Ctl.Stopped() {
				return
			}
			n := blockSize
			if b == nBlocks-1 {
				n = samples - b*blockSize
			}
			rng := rand.New(rand.NewSource(seed + int64(b)*0x5851F42D4C957F2D))
			nw := proto.Clone()
			local := make([]int64, dem.D+1)
			var callsMark int64
			for i := 0; i < n; i++ {
				if i > 0 && i%256 == 0 {
					if !opt.Ctl.Charge(256, nw.Stats.MaxFlowCalls-callsMark) {
						break
					}
					callsMark = nw.Stats.MaxFlowCalls
				}
				cur = uint64(i)
				if opt.TestHook != nil {
					opt.TestHook(cur)
				}
				for j := range handles {
					nw.SetEnabled(handles[j], rng.Float64() >= pFail[j])
				}
				local[nw.MaxFlow(s, t, dem.D)]++
				done[b]++
			}
			opt.Ctl.Charge(uint64(done[b]%256), nw.Stats.MaxFlowCalls-callsMark)
			counts[b] = local
		}(b)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return Distribution{}, err
		}
	}

	out := Distribution{D: dem.D, P: make([]float64, dem.D+1)}
	completed := 0
	for b, local := range counts {
		completed += done[b]
		for v, c := range local {
			out.P[v] += float64(c)
		}
	}
	if completed < samples {
		out.Partial = true
		out.Reason = opt.Ctl.Reason()
	}
	if completed == 0 {
		return out, nil
	}
	for v := range out.P {
		out.P[v] /= float64(completed)
	}
	return out, nil
}

func workerCount(opt reliability.Options) int {
	if opt.Parallelism > 0 {
		return opt.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
