// Package bitset provides a dense, growable bit set used throughout the
// library to represent sets of links (edge masks) on graphs that may have
// more than 64 edges. The hot enumeration loops in the reliability engines
// use raw uint64 masks instead; this type backs the general graph
// operations (component search, induced subgraphs, cut manipulation).
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bit set. The zero value is an empty set of
// capacity 0; use New to create a set able to hold n bits.
type Set struct {
	words []uint64
	n     int
}

// New returns a set able to hold bits [0, n).
func New(n int) *Set {
	if n < 0 {
		panic("bitset: negative size")
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromIndices returns a set of capacity n with the given bits set.
func FromIndices(n int, idx ...int) *Set {
	s := New(n)
	for _, i := range idx {
		s.Set(i)
	}
	return s
}

// FromMask returns a set of capacity n initialized from the low n bits of m.
// n must be at most 64.
func FromMask(n int, m uint64) *Set {
	if n > wordBits {
		panic("bitset: FromMask capacity exceeds 64")
	}
	s := New(n)
	if n > 0 {
		s.words[0] = m & maskLow(n)
	}
	return s
}

func maskLow(n int) uint64 {
	if n >= wordBits {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Len returns the capacity (number of addressable bits) of the set.
func (s *Set) Len() int { return s.n }

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Flip toggles bit i.
func (s *Set) Flip(i int) {
	s.check(i)
	s.words[i/wordBits] ^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// None reports whether no bit is set.
func (s *Set) None() bool { return !s.Any() }

// Clone returns an independent copy of s.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words)), n: s.n}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. The sets must have the
// same capacity.
func (s *Set) CopyFrom(o *Set) {
	s.sameCap(o)
	copy(s.words, o.words)
}

// SetAll sets every bit in [0, Len()).
func (s *Set) SetAll() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Reset clears every bit.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

func (s *Set) trim() {
	if r := s.n % wordBits; r != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= maskLow(r)
	}
}

func (s *Set) sameCap(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

// UnionWith sets s = s ∪ o.
func (s *Set) UnionWith(o *Set) {
	s.sameCap(o)
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// IntersectWith sets s = s ∩ o.
func (s *Set) IntersectWith(o *Set) {
	s.sameCap(o)
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// DifferenceWith sets s = s \ o.
func (s *Set) DifferenceWith(o *Set) {
	s.sameCap(o)
	for i := range s.words {
		s.words[i] &^= o.words[i]
	}
}

// SubsetOf reports whether every bit set in s is also set in o.
func (s *Set) SubsetOf(o *Set) bool {
	s.sameCap(o)
	for i := range s.words {
		if s.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and o share at least one set bit.
func (s *Set) Intersects(o *Set) bool {
	s.sameCap(o)
	for i := range s.words {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether s and o contain exactly the same bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Indices returns the positions of all set bits in increasing order.
func (s *Set) Indices() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls f for each set bit in increasing order.
func (s *Set) ForEach(f func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// NextSet returns the position of the first set bit at or after i, or -1
// if there is none.
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	wi := i / wordBits
	w := s.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(s.words); wi++ {
		if s.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(s.words[wi])
		}
	}
	return -1
}

// Mask returns the low 64 bits of the set as a raw mask. It panics if the
// capacity exceeds 64; it exists for the fast enumeration paths.
func (s *Set) Mask() uint64 {
	if s.n > wordBits {
		panic("bitset: Mask on set wider than 64 bits")
	}
	if len(s.words) == 0 {
		return 0
	}
	return s.words[0]
}

// String renders the set as a binary string, bit 0 leftmost, e.g. "10110".
func (s *Set) String() string {
	var b strings.Builder
	b.Grow(s.n)
	for i := 0; i < s.n; i++ {
		if s.Test(i) {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}
