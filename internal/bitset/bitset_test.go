package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicSetClearTest(t *testing.T) {
	s := New(130)
	if s.Len() != 130 {
		t.Fatalf("Len = %d, want 130", s.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("bit %d set in fresh set", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := s.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	s.Clear(64)
	if s.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	s.Flip(64)
	if !s.Test(64) {
		t.Fatal("bit 64 not set after Flip")
	}
	s.Flip(64)
	if s.Test(64) {
		t.Fatal("bit 64 set after second Flip")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, f := range []func(){
		func() { s.Set(10) },
		func() { s.Set(-1) },
		func() { s.Test(10) },
		func() { s.Clear(100) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic on out-of-range index")
				}
			}()
			f()
		}()
	}
}

func TestFromIndicesAndIndices(t *testing.T) {
	s := FromIndices(100, 3, 7, 99)
	got := s.Indices()
	want := []int{3, 7, 99}
	if len(got) != len(want) {
		t.Fatalf("Indices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Indices = %v, want %v", got, want)
		}
	}
}

func TestFromMaskRoundTrip(t *testing.T) {
	for _, m := range []uint64{0, 1, 0b1011, 1 << 40, (1 << 50) - 1} {
		s := FromMask(51, m)
		if s.Mask() != m&((1<<51)-1) {
			t.Fatalf("FromMask(%#x).Mask() = %#x", m, s.Mask())
		}
	}
}

func TestFromMaskTruncates(t *testing.T) {
	s := FromMask(4, 0xFF)
	if s.Mask() != 0xF {
		t.Fatalf("mask = %#x, want 0xF", s.Mask())
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
}

func TestSetAllRespectsCapacity(t *testing.T) {
	s := New(70)
	s.SetAll()
	if got := s.Count(); got != 70 {
		t.Fatalf("Count after SetAll = %d, want 70", got)
	}
	s.Reset()
	if s.Any() {
		t.Fatal("Any after Reset")
	}
	if !s.None() {
		t.Fatal("None false after Reset")
	}
}

func TestSetOps(t *testing.T) {
	a := FromIndices(100, 1, 2, 3, 70)
	b := FromIndices(100, 2, 3, 4, 99)

	u := a.Clone()
	u.UnionWith(b)
	wantU := FromIndices(100, 1, 2, 3, 4, 70, 99)
	if !u.Equal(wantU) {
		t.Fatalf("union = %v", u.Indices())
	}

	i := a.Clone()
	i.IntersectWith(b)
	if !i.Equal(FromIndices(100, 2, 3)) {
		t.Fatalf("intersection = %v", i.Indices())
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if !d.Equal(FromIndices(100, 1, 70)) {
		t.Fatalf("difference = %v", d.Indices())
	}

	if !i.SubsetOf(a) || !i.SubsetOf(b) {
		t.Fatal("intersection not subset of operands")
	}
	if a.SubsetOf(b) {
		t.Fatal("a should not be subset of b")
	}
	if !a.Intersects(b) {
		t.Fatal("a should intersect b")
	}
	if a.Intersects(FromIndices(100, 50)) {
		t.Fatal("a should not intersect {50}")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromIndices(64, 5)
	b := a.Clone()
	b.Set(6)
	if a.Test(6) {
		t.Fatal("Clone shares storage")
	}
	a.CopyFrom(b)
	if !a.Test(6) {
		t.Fatal("CopyFrom did not copy")
	}
}

func TestNextSet(t *testing.T) {
	s := FromIndices(200, 0, 5, 64, 130, 199)
	cases := []struct{ from, want int }{
		{0, 0}, {1, 5}, {5, 5}, {6, 64}, {64, 64}, {65, 130},
		{130, 130}, {131, 199}, {199, 199}, {-3, 0},
	}
	for _, c := range cases {
		if got := s.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	if got := s.NextSet(200); got != -1 {
		t.Errorf("NextSet(200) = %d, want -1", got)
	}
	if got := New(10).NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromIndices(300, 299, 1, 100)
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	want := []int{1, 100, 299}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order = %v, want %v", got, want)
		}
	}
}

func TestString(t *testing.T) {
	s := FromIndices(5, 0, 2, 3)
	if got := s.String(); got != "10110" {
		t.Fatalf("String = %q, want %q", got, "10110")
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on capacity mismatch")
		}
	}()
	New(10).UnionWith(New(11))
}

// Property: Count equals the number of distinct indices inserted.
func TestQuickCountMatchesDistinct(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		size := int(n)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		s := New(size)
		distinct := map[int]bool{}
		for k := 0; k < 50; k++ {
			i := rng.Intn(size)
			s.Set(i)
			distinct[i] = true
		}
		return s.Count() == len(distinct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish — |A ∪ B| + |A ∩ B| == |A| + |B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(am, bm uint64) bool {
		a := FromMask(64, am)
		b := FromMask(64, bm)
		u := a.Clone()
		u.UnionWith(b)
		i := a.Clone()
		i.IntersectWith(b)
		return u.Count()+i.Count() == a.Count()+b.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: ForEach visits exactly the set bits of the mask.
func TestQuickForEachMatchesMask(t *testing.T) {
	f := func(m uint64) bool {
		s := FromMask(64, m)
		var rebuilt uint64
		s.ForEach(func(i int) { rebuilt |= 1 << uint(i) })
		return rebuilt == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
