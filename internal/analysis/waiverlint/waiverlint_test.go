package waiverlint

import (
	"testing"

	"flowrel/internal/analysis/analysistest"
)

func TestWaiverLint(t *testing.T) {
	analysistest.Run(t, "../testdata", Analyzer, "waiverlint/p")
}
