// Package waiverlint enforces the lifecycle policy on //flowrelvet:
// waiver comments. A waiver that silences an analyzer is a standing
// exception to an invariant, so it must document itself:
//
//   - a rationale — prose after the marker saying why the exception is
//     sound;
//   - a review tag — "(reviewed: PR-N)" naming the PR whose review
//     accepted the exception, so every waiver can be traced to a
//     decision;
//   - adjacency — the waived construct must still be there. A waiver
//     whose loop, comparison, or call has been refactored away is
//     reported as orphaned, because an unanchored waiver silently
//     blesses whatever code drifts under it next.
//
// The adjacency rule is marker-specific: unbounded must sit on a
// for/range statement, exactfloat on an ==/!= comparison, context on a
// call. hotpath placement is policed by the hotalloc analyzer (it owns
// the annotation), so here hotpath waivers only get the rationale and
// review-tag checks. Unknown markers are reported outright.
package waiverlint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"flowrel/internal/analysis"
)

// Analyzer is the waiverlint pass.
var Analyzer = &analysis.Analyzer{
	Name: "waiverlint",
	Doc:  "every //flowrelvet: waiver needs a rationale, a (reviewed: PR-N) tag, and an adjacent construct it still waives",
	Run:  run,
}

// knownMarkers maps each marker to whether waiverlint owns its
// adjacency check (hotalloc owns hotpath placement).
var knownMarkers = map[string]bool{
	"unbounded":  true,
	"exactfloat": true,
	"context":    true,
	"hotpath":    false,
}

const prefix = "//flowrelvet:"

// reviewedRe matches the review tag a waiver must carry.
var reviewedRe = regexp.MustCompile(`\(reviewed: PR-\d+\)`)

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		anchors := collectAnchors(pass, file)
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				checkWaiver(pass, c, cg, anchors)
			}
		}
	}
	return nil, nil
}

// anchorSet records, per source line, which waivable constructs start
// there.
type anchorSet struct {
	loops    map[int]bool // for/range statements
	compares map[int]bool // ==/!= comparisons
	calls    map[int]bool // call expressions
}

func collectAnchors(pass *analysis.Pass, file *ast.File) anchorSet {
	a := anchorSet{
		loops:    make(map[int]bool),
		compares: make(map[int]bool),
		calls:    make(map[int]bool),
	}
	line := func(p token.Pos) int { return pass.Fset.Position(p).Line }
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			a.loops[line(n.Pos())] = true
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				a.compares[line(n.Pos())] = true
			}
		case *ast.CallExpr:
			a.calls[line(n.Pos())] = true
		}
		return true
	})
	return a
}

func checkWaiver(pass *analysis.Pass, c *ast.Comment, cg *ast.CommentGroup, anchors anchorSet) {
	rest := c.Text[len(prefix):]
	marker := rest
	if i := strings.IndexByte(marker, ' '); i >= 0 {
		marker = marker[:i]
	}
	adjacency, known := knownMarkers[marker]
	if !known {
		pass.Reportf(c.Pos(), "unknown flowrelvet marker %q; the suite defines unbounded, exactfloat, context and hotpath", marker)
		return
	}

	// The waiver's content: everything after the marker word, cut at an
	// embedded "//" so trailing commentary (or a fixture's want
	// expectation) is not mistaken for rationale.
	content := strings.TrimPrefix(rest, marker)
	if i := strings.Index(content, "//"); i >= 0 {
		content = content[:i]
	}
	hasTag := reviewedRe.MatchString(content)
	rationale := strings.TrimSpace(reviewedRe.ReplaceAllString(content, ""))
	if rationale == "" {
		pass.Reportf(c.Pos(), "flowrelvet:%s waiver is missing a rationale; say why the exception is sound", marker)
	}
	if !hasTag {
		pass.Reportf(c.Pos(), "flowrelvet:%s waiver is missing its review tag; append (reviewed: PR-N) naming the PR that accepted it", marker)
	}

	if !adjacency {
		return
	}
	// The lines a waiver covers, mirroring WaiverSet: its own line (a
	// trailing comment) and the line after its comment group ends.
	own := pass.Fset.Position(c.Pos()).Line
	next := pass.Fset.Position(cg.End()).Line + 1
	covered := func(m map[int]bool) bool { return m[own] || m[next] }
	orphaned := false
	switch marker {
	case "unbounded":
		orphaned = !covered(anchors.loops)
	case "exactfloat":
		orphaned = !covered(anchors.compares)
	case "context":
		orphaned = !covered(anchors.calls)
	}
	if orphaned {
		pass.Reportf(c.Pos(), "orphaned flowrelvet:%s waiver: no waivable construct on the line it covers — delete it or move it back beside the code it excuses", marker)
	}
}
