// Package floateq flags exact == / != comparisons between floating-point
// expressions that carry reliability semantics. Every engine in this
// module reports probabilities accumulated through long floating-point
// sums in different orders (parallel reductions, Gray-code walks, zeta
// transforms), so two mathematically equal reliabilities are only equal
// to within rounding — comparing them with == encodes a test that passes
// by accident. Compare with an explicit tolerance (math.Abs(a-b) < tol,
// or testutil.AlmostEqual) instead, or waive the finding with
// //flowrelvet:exactfloat <reason> when bit-identity is the property
// under test (e.g. determinism across worker counts of one fixed
// summation order).
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"flowrel/internal/analysis"
)

// Analyzer is the floateq pass.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between reliability-carrying float expressions; require an explicit tolerance or a //flowrelvet:exactfloat waiver",
	Run:  run,
}

// nameHint matches identifier/field/type names that carry reliability
// semantics: reliabilities, probabilities, certified Lo/Hi bounds,
// standard errors, masses.
var nameHint = regexp.MustCompile(`(?i)(reliab|probab|pfail|plive|stderr|mass)`)

// exactNames are short names matched whole (case-insensitively): the
// certified interval endpoints and the conventional probability names.
var exactNames = map[string]bool{"lo": true, "hi": true, "prob": true}

// reportTypes are named types whose fields are reliability outputs; a
// selector off one of them is a hint even when the field name is bland.
var reportTypes = map[string]bool{
	"Report": true, "Result": true, "Estimate": true, "Bound": true,
	"Importance": true, "Interval": true,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		waivers := analysis.WaiverSet(pass.Fset, file, "exactfloat")
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) || !isFloat(pass, be.Y) {
				return true
			}
			// Comparison against the exact sentinels 0 and 1 is fine:
			// conditioning sets probabilities to exactly 0 or 1 and IEEE
			// comparison against them is not subject to rounding.
			if isExactSentinel(pass, be.X) || isExactSentinel(pass, be.Y) {
				return true
			}
			if !hinted(pass, be.X) && !hinted(pass, be.Y) {
				return true
			}
			line := pass.Fset.Position(be.Pos()).Line
			if w, ok := waivers[line]; ok {
				if w.Reason == "" {
					pass.Reportf(w.Pos, "flowrelvet:exactfloat waiver needs a reason")
				}
				return true
			}
			pass.Reportf(be.Pos(), "exact %s between reliability floats; use a tolerance (math.Abs(a-b) < tol) or waive with //flowrelvet:exactfloat <reason>", be.Op)
			return true
		})
	}
	return nil, nil
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactSentinel reports whether e is a compile-time constant equal to
// exactly 0 or 1.
func isExactSentinel(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0 || f == 1
}

// hinted reports whether the expression's vocabulary — identifiers, field
// selections, or the named types they belong to — involves reliability.
func hinted(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if hintName(n.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if hintName(n.Sel.Name) {
				found = true
			}
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				t := tv.Type
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok && reportTypes[named.Obj().Name()] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func hintName(name string) bool {
	if nameHint.MatchString(name) {
		return true
	}
	return exactNames[strings.ToLower(name)]
}
