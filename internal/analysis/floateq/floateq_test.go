package floateq_test

import (
	"testing"

	"flowrel/internal/analysis/analysistest"
	"flowrel/internal/analysis/floateq"
)

func TestFloatEq(t *testing.T) {
	analysistest.Run(t, "../testdata", floateq.Analyzer, "floateq/a")
}
