// Package ctlthread enforces cancellation plumbing on solver entry
// points. Every exponential engine must be stoppable from the outside:
// an exported Compute*/Compile* function — and every reliability engine
// returning a Result or Estimate — must accept a context.Context or an
// *anytime.Ctl (directly, or inside an options struct), or have a
// sibling variant that does (the Compute/ComputeCtx convenience pair).
//
// The second rule targets the usual way the plumbing silently breaks:
// a library function calling context.Background() manufactures an
// uncancellable computation no matter what the caller passed. That call
// is only legal as the literal argument of a *Ctx sibling — the
// convenience-wrapper pattern `func F(...) { return FCtx(
// context.Background(), ...) }` — or under an explicit
// //flowrelvet:context <reason> waiver.
package ctlthread

import (
	"go/ast"
	"go/types"
	"strings"

	"flowrel/internal/analysis"
)

// Analyzer is the ctlthread pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctlthread",
	Doc:  "solver entry points must accept and forward a context.Context or *anytime.Ctl, and never call context.Background() outside the Compute/ComputeCtx wrapper pattern",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" || analysis.PathTail(pass.Pkg.Path(), "anytime") {
		// Binaries own their root context; the anytime package is the
		// abstraction being enforced.
		return nil, nil
	}
	for _, file := range pass.Files {
		name := pass.Fset.Position(file.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // tests may pin Background contexts freely
		}
		waivers := analysis.WaiverSet(pass.Fset, file, "context")
		checkEntryPoints(pass, file)
		checkBackground(pass, file, waivers)
	}
	return nil, nil
}

// checkEntryPoints applies the signature rule to exported entry points.
func checkEntryPoints(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv != nil || !fn.Name.IsExported() {
			continue
		}
		if !isEntryPoint(pass, fn) {
			continue
		}
		obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
		if !ok {
			continue
		}
		sig := obj.Type().(*types.Signature)
		if signatureCancellable(sig) || hasCancellableSibling(pass, fn.Name.Name) {
			continue
		}
		pass.Reportf(fn.Pos(), "exported solver entry point %s accepts no context.Context or *anytime.Ctl (directly, via an options struct, or via a %sCtx sibling); uncancellable engines break the anytime contract", fn.Name.Name, fn.Name.Name)
	}
}

// isEntryPoint: Compute*/Compile* anywhere, plus reliability engines
// (exported functions returning a named Result or Estimate in a package
// whose path ends in "reliability").
func isEntryPoint(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if strings.HasPrefix(name, "Compute") || strings.HasPrefix(name, "Compile") {
		return true
	}
	if !analysis.PathTail(pass.Pkg.Path(), "reliability") {
		return false
	}
	if fn.Type.Results == nil {
		return false
	}
	for _, res := range fn.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[res.Type]
		if !ok || tv.Type == nil {
			continue
		}
		if analysis.IsNamed(tv.Type, "", "Result") || analysis.IsNamed(tv.Type, "", "Estimate") {
			return true
		}
	}
	return false
}

// signatureCancellable reports whether any parameter carries a context:
// a context.Context, an *anytime.Ctl, or a named struct with such a
// field one level down (the Options pattern).
func signatureCancellable(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if cancellableType(t) {
			return true
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if st, ok := t.Underlying().(*types.Struct); ok {
			for j := 0; j < st.NumFields(); j++ {
				if cancellableType(st.Field(j).Type()) {
					return true
				}
			}
		}
	}
	return false
}

func cancellableType(t types.Type) bool {
	return analysis.IsNamed(t, "context", "Context") || analysis.IsNamed(t, "anytime", "Ctl")
}

// hasCancellableSibling looks for an exported package-level function
// whose name extends this one (FCtx, FOpt, FWithOptions, …) and whose
// own signature is cancellable.
func hasCancellableSibling(pass *analysis.Pass, name string) bool {
	scope := pass.Pkg.Scope()
	for _, other := range scope.Names() {
		if other == name || !strings.HasPrefix(other, name) {
			continue
		}
		fn, ok := scope.Lookup(other).(*types.Func)
		if !ok {
			continue
		}
		if signatureCancellable(fn.Type().(*types.Signature)) {
			return true
		}
	}
	return false
}

// checkBackground flags context.Background() calls that are not the
// direct argument of a *Ctx call.
func checkBackground(pass *analysis.Pass, file *ast.File, waivers map[int]analysis.Waiver) {
	analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isContextBackground(pass, call) {
			return true
		}
		// Legal shape: FooCtx(context.Background(), …) — the convenience
		// wrapper delegating to its context-threading sibling.
		if len(stack) > 0 {
			if parent, ok := stack[len(stack)-1].(*ast.CallExpr); ok {
				if calleeEndsCtx(parent) {
					for _, arg := range parent.Args {
						if arg == ast.Expr(call) {
							return true
						}
					}
				}
			}
		}
		line := pass.Fset.Position(call.Pos()).Line
		if w, ok := waivers[line]; ok {
			if w.Reason == "" {
				pass.Reportf(w.Pos, "flowrelvet:context waiver needs a reason")
			}
			return true
		}
		pass.Reportf(call.Pos(), "context.Background() in library code discards the caller's cancellation; thread the caller's context/Ctl, or waive with //flowrelvet:context <reason>")
		return true
	})
}

func isContextBackground(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Background" {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func calleeEndsCtx(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return strings.HasSuffix(fn.Name, "Ctx")
	case *ast.SelectorExpr:
		return strings.HasSuffix(fn.Sel.Name, "Ctx")
	}
	return false
}
