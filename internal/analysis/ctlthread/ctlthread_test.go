package ctlthread_test

import (
	"testing"

	"flowrel/internal/analysis/analysistest"
	"flowrel/internal/analysis/ctlthread"
)

func TestCtlThread(t *testing.T) {
	analysistest.Run(t, "../testdata", ctlthread.Analyzer,
		"ctlthread/engine", "ctlthread/reliability")
}
