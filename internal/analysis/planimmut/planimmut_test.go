package planimmut_test

import (
	"testing"

	"flowrel/internal/analysis/analysistest"
	"flowrel/internal/analysis/planimmut"
)

func TestPlanImmut(t *testing.T) {
	analysistest.Run(t, "../testdata", planimmut.Analyzer, "planimmut/p")
}
