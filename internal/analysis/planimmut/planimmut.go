// Package planimmut enforces Plan immutability. The compile/evaluate
// split (PR 2) makes a compiled Plan safe for concurrent Eval calls on
// one guarantee: after Compile returns, nothing writes to the Plan — not
// its fields, not the elements of its slice fields. A single assignment
// from the evaluate phase is a data race the race detector only catches
// if two Evals happen to collide during a test run; this analyzer
// catches it at build time.
//
// The rule: no assignment (including op-assign, ++/--, and writes through
// index expressions) whose left-hand side reaches through a value of a
// named type `Plan`, outside a file named plan.go — the compile phase
// lives in internal/core/plan.go and the public wrapper in plan.go, and
// those two files are exactly where Plan construction is allowed.
package planimmut

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"flowrel/internal/analysis"
)

// Analyzer is the planimmut pass.
var Analyzer = &analysis.Analyzer{
	Name: "planimmut",
	Doc:  "no writes to Plan fields (or elements of Plan slice fields) outside the compile phase in plan.go",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if name == "plan.go" {
			continue // the compile phase: construction writes are the point
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if st.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range st.Lhs {
					checkLHS(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkLHS(pass, st.X)
			}
			return true
		})
	}
	return nil, nil
}

// checkLHS reports the assignment if the left-hand side dereferences a
// Plan anywhere on its access path: p.F = …, p.S[i] = …, p.S[i].G = ….
func checkLHS(pass *analysis.Pass, lhs ast.Expr) {
	for {
		switch e := lhs.(type) {
		case *ast.SelectorExpr:
			if isPlan(pass, e.X) {
				pass.Reportf(lhs.Pos(), "write to field %s of immutable Plan outside the compile phase (plan.go); compiled plans must stay read-only for race-free concurrent Eval", e.Sel.Name)
				return
			}
			lhs = e.X
		case *ast.IndexExpr:
			if isPlan(pass, e.X) {
				pass.Reportf(lhs.Pos(), "write through Plan outside the compile phase (plan.go); compiled plans must stay read-only for race-free concurrent Eval")
				return
			}
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		default:
			return
		}
	}
}

func isPlan(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Plan"
}
