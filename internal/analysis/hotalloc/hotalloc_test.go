package hotalloc

import (
	"strings"
	"testing"

	"flowrel/internal/analysis/analysistest"
)

func TestPlacement(t *testing.T) {
	analysistest.Run(t, "../testdata", Analyzer, "hotalloc/p")
}

// TestGatedMessages pins the classifier: which compiler -m messages the
// gate cares about and which shapes are structurally exempt.
func TestGatedMessages(t *testing.T) {
	cases := []struct {
		msg           string
		gate, exemptd bool
	}{
		{"moved to heap: next", true, false},
		{"leaking param: p", true, false},
		{"leaking param content: scenarios", true, true},
		{"func literal escapes to heap", true, false},
		{"make([]float64, n) escapes to heap", true, false},
		{`"subset: slice length must be 2^n" escapes to heap`, true, true},
		{"can inline cutProb8", false, false},
		{"pfail does not escape", false, false},
		{"inlining call to popcount", false, false},
	}
	for _, c := range cases {
		if got := gated(c.msg); got != c.gate {
			t.Errorf("gated(%q) = %v, want %v", c.msg, got, c.gate)
		}
		if got := exempt(c.msg); got != c.exemptd {
			t.Errorf("exempt(%q) = %v, want %v", c.msg, got, c.exemptd)
		}
	}
}

// TestEscapeLine pins the diagnostic-line parser against real compiler
// output shapes, including the package headers go build interleaves.
func TestEscapeLine(t *testing.T) {
	good := "internal/core/plan.go:228:7: leaking param: p"
	m := escapeLine.FindStringSubmatch(good)
	if m == nil || m[1] != "internal/core/plan.go" || m[2] != "228" || m[3] != "leaking param: p" {
		t.Fatalf("escapeLine failed to parse %q: %#v", good, m)
	}
	for _, bad := range []string{"# flowrel/internal/core", "", "go: downloading nothing"} {
		if escapeLine.FindStringSubmatch(strings.TrimSpace(bad)) != nil {
			t.Errorf("escapeLine matched non-diagnostic %q", bad)
		}
	}
}
