package hotalloc

import "regexp"

// An allowance is one committed escape-analysis waiver: a pattern over
// the compiler's -m message plus the written reason the escape does not
// cost an allocation per operation. Keys are "<pkgtail>.<func>".
type allowance struct {
	re *regexp.Regexp
}

func allow(pats ...string) []allowance {
	out := make([]allowance, len(pats))
	for i, p := range pats {
		out[i] = allowance{re: regexp.MustCompile(p)}
	}
	return out
}

// allowlist is the committed record of every escape the hot path is
// permitted. Each entry states why the escape is free in steady state;
// an entry that stops matching is reported as stale by the module pass.
var allowlist = map[string][]allowance{
	// Plan.Eval: the receiver leaks into the pooled-scratch defer (a
	// *Plan is always heap-resident already, so no call site allocates),
	// and the remaining operands are fmt.Errorf boxing on the
	// reject-invalid-input error path, never taken in steady state.
	"core.Eval": allow(
		`^leaking param: p$`,
		`^(len\(pfail\)|p\.numEdges|v|i) escapes to heap$`,
	),

	// evalOneKernel: same receiver-into-defer leak as Eval; the pooled
	// kernel scratch round-trips through the defer closure.
	"core.evalOneKernel": allow(
		`^leaking param: p$`,
	),

	// EvalBatchInto: the slice headers and options leak into the worker
	// closure, the len() operands are error-path boxing, and the one
	// func literal is the multi-worker dispatch closure — a single
	// allocation per batch (workers > 1 only), amortized over every
	// scenario in it. The workers == 1 fast path allocates nothing.
	"core.EvalBatchInto": allow(
		`^leaking param: (p|dst|scenarios|opt)$`,
		`^(len\(dst\)|len\(scenarios\)) escapes to heap$`,
		`^func literal escapes to heap$`,
	),

	// drain: the receiver and the padded base vector are stored into the
	// pooled per-worker scratch's row table for the duration of the call;
	// the rows are cleared before the scratch is Put back.
	"core.drain": allow(
		`^leaking param: (p|base)$`,
	),

	// walkDelta: the realization array flows out through the result (the
	// walk copies-on-first-write, so the caller can share the parent's
	// array pointer-wise after a no-op walk — returning the slice is the
	// point), and the certificate table is one small allocation per
	// mutation walk, amortized over the side's 2^(m-1) configurations.
	// ensureOwned's clone only fires when a word actually changes, in
	// which case the array had to be materialized anyway.
	"core.walkDelta": allow(
		`^leaking param: out to result ~r0 level=0$`,
		`^make\(\[\]\[\]uint64, n\) escapes to heap$`,
	),

	// runPool: the worker closure, the shared counter, the WaitGroup and
	// the panic latch all live on the heap for the pool's lifetime — a
	// constant handful of allocations per batch, never per item. Callers
	// that need strict zero allocation take the workers == 1 path, which
	// never reaches runPool.
	"core.runPool": allow(
		`^leaking param: worker$`,
		`^moved to heap: (next|wg|panicMu|panicVal)$`,
		`^func literal escapes to heap$`,
	),
}
