// Package hotalloc is the allocation-escape gate for the evaluate hot
// path. A function annotated //flowrelvet:hotpath promises the batch
// throughput contract: zero heap allocations per operation in steady
// state. The per-package pass polices the annotation itself (it must be
// the doc comment of a function with a body, outside test files); the
// module pass replays the compiler's escape analysis
// (go build -gcflags=-m) over every annotated package and fails on any
// heap allocation or parameter escape inside an annotated function that
// is not on the committed allowlist (allowlist.go).
//
// Two escape shapes are structurally exempt:
//
//   - `"..." escapes to heap` — a constant string boxed on a panic or
//     error path; the string is static data, the box is never built in
//     steady state;
//   - `leaking param content: x` — a read-only borrow of memory the
//     caller already owns; no allocation happens at any call site.
//
// Everything else (`moved to heap`, `... escapes to heap`,
// `leaking param`, `func literal escapes to heap`) must match an
// allowlist pattern carrying a written rationale, and allowlist patterns
// that stop matching are reported as stale so the list cannot rot.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"flowrel/internal/analysis"
)

// Marker is the annotation comment prefix this analyzer owns.
const Marker = "//flowrelvet:hotpath"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "//flowrelvet:hotpath functions must be allocation-free per the compiler's escape analysis, modulo the committed allowlist",
	Run:       run,
	RunModule: runModule,
}

// run polices annotation placement: each //flowrelvet:hotpath comment
// must be (part of) the doc comment of a function declaration with a
// body, in a non-test file. Rationale and (reviewed: PR-N) hygiene on
// the annotation text is waiverlint's job, not ours.
func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		inTest := strings.HasSuffix(fname, "_test.go")

		// Function declarations by the line their doc comment must end on.
		funcByDocEnd := make(map[int]*ast.FuncDecl)
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				funcByDocEnd[pass.Fset.Position(fn.Pos()).Line-1] = fn
			}
		}

		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, Marker) {
					continue
				}
				if inTest {
					pass.Reportf(c.Pos(), "hotpath annotation in a test file: the escape gate only builds non-test packages, so this line gates nothing")
					continue
				}
				fn := funcByDocEnd[pass.Fset.Position(cg.End()).Line]
				switch {
				case fn == nil:
					pass.Reportf(c.Pos(), "hotpath annotation is not attached to a function: it must be the doc comment of the declaration it gates")
				case fn.Body == nil:
					pass.Reportf(c.Pos(), "hotpath annotation on a declaration without a body: annotate the dispatch function, not the asm stub")
				}
			}
		}
	}
	return nil, nil
}

// hasHotpathDoc reports whether fn's doc group carries the annotation.
// The raw comment list is scanned because (*ast.CommentGroup).Text()
// silently drops directive-shaped comments like //flowrelvet:hotpath.
func hasHotpathDoc(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(c.Text, Marker) {
			return true
		}
	}
	return false
}

// hotFunc is one annotated function the module gate checks.
type hotFunc struct {
	key        string // pkgtail.name, the allowlist key
	base       string // basename of the declaring file
	start, end int    // line range of the declaration
	pos        token.Pos
}

// escapeLine matches one compiler diagnostic: file.go:line:col: message.
var escapeLine = regexp.MustCompile(`^(\S+\.go):(\d+):\d+: (.*)$`)

// gated reports whether a -m message is an escape fact this gate cares
// about (as opposed to inlining chatter or "does not escape" noise).
func gated(msg string) bool {
	if strings.HasPrefix(msg, "moved to heap: ") {
		return true
	}
	if strings.HasPrefix(msg, "leaking param") {
		return true
	}
	return strings.HasSuffix(msg, "escapes to heap")
}

// exempt reports the two structurally allocation-free escape shapes.
func exempt(msg string) bool {
	if strings.HasPrefix(msg, "leaking param content: ") {
		return true
	}
	return strings.HasPrefix(msg, `"`) && strings.HasSuffix(msg, `" escapes to heap`)
}

func runModule(dir string, units []*analysis.Package) ([]analysis.Diagnostic, error) {
	var (
		funcs  []*hotFunc
		pkgs   []string
		seen   = make(map[string]bool)
		byLoc  = make(map[string][]*hotFunc)       // basename -> funcs
		counts = make(map[*hotFunc]map[string]int) // matched allowlist patterns
	)
	for _, u := range units {
		if strings.HasSuffix(u.PkgPath, "_test") {
			continue
		}
		tail := u.PkgPath
		if i := strings.LastIndexByte(tail, '/'); i >= 0 {
			tail = tail[i+1:]
		}
		for _, file := range u.Files {
			fname := u.Fset.Position(file.Pos()).Filename
			if strings.HasSuffix(fname, "_test.go") {
				continue
			}
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || !hasHotpathDoc(fn) {
					continue
				}
				hf := &hotFunc{
					key:   tail + "." + fn.Name.Name,
					base:  filepath.Base(fname),
					start: u.Fset.Position(fn.Pos()).Line,
					end:   u.Fset.Position(fn.End()).Line,
					pos:   fn.Pos(),
				}
				funcs = append(funcs, hf)
				byLoc[hf.base] = append(byLoc[hf.base], hf)
				if !seen[u.PkgPath] {
					seen[u.PkgPath] = true
					pkgs = append(pkgs, u.PkgPath)
				}
			}
		}
	}
	if len(funcs) == 0 {
		return nil, nil
	}

	// Replay escape analysis. -m output is replayed from the build cache
	// on repeat runs, so this is cheap after the first invocation.
	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, pkgs...)...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("hotalloc: go build -gcflags=-m: %v\n%s", err, out)
	}

	var diags []analysis.Diagnostic
	for _, line := range strings.Split(string(out), "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		lineNo, _ := strconv.Atoi(m[2])
		msg := m[3]
		if !gated(msg) || exempt(msg) {
			continue
		}
		var hf *hotFunc
		for _, cand := range byLoc[filepath.Base(m[1])] {
			if cand.start <= lineNo && lineNo <= cand.end {
				hf = cand
				break
			}
		}
		if hf == nil {
			continue
		}
		matched := false
		for _, pat := range allowlist[hf.key] {
			if pat.re.MatchString(msg) {
				if counts[hf] == nil {
					counts[hf] = make(map[string]int)
				}
				counts[hf][pat.re.String()]++
				matched = true
				break
			}
		}
		if !matched {
			diags = append(diags, analysis.Diagnostic{
				Pos: hf.pos,
				Message: fmt.Sprintf("hot path %s allocates: %s:%s: %s (not on the hotalloc allowlist — remove the allocation or add an allowlisted rationale)",
					hf.key, m[1], m[2], msg),
			})
		}
	}

	// Stale allowlist entries: a pattern for a function this run analyzed
	// that no compiler diagnostic matched means the escape it excused is
	// gone — prune it so the allowlist stays an honest record.
	for _, hf := range funcs {
		for _, pat := range allowlist[hf.key] {
			if counts[hf][pat.re.String()] == 0 {
				diags = append(diags, analysis.Diagnostic{
					Pos: hf.pos,
					Message: fmt.Sprintf("stale hotalloc allowlist entry for %s: pattern %q matched no escape diagnostic; delete it from allowlist.go",
						hf.key, pat.re.String()),
				})
			}
		}
	}
	return diags, nil
}
