// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring the contract of
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only driver.
//
// Fixtures live in a GOPATH-shaped tree: <root>/src/<importpath>/*.go.
// A fixture file marks an expected diagnostic with a trailing comment on
// the offending line:
//
//	bad := a.Reliability == b.Reliability // want `exact ==`
//
// Each quoted (or backquoted) string is a regular expression; every
// diagnostic on the line must match one regexp and every regexp must be
// matched by one diagnostic. Fixture imports resolve against sibling
// fixture packages first, then the standard library (via the go
// command's export data).
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"flowrel/internal/analysis"
)

// Run loads each named fixture package from root/src and applies the
// analyzer, failing t on any mismatch between diagnostics and // want
// comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	l := &fixtureLoader{
		root: filepath.Join(root, "src"),
		fset: token.NewFileSet(),
		pkgs: make(map[string]*fixturePkg),
	}
	for _, pkg := range pkgs {
		fp, err := l.load(pkg)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", pkg, err)
		}
		check(t, l.fset, a, fp)
	}
}

type fixturePkg struct {
	path  string
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

type fixtureLoader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*fixturePkg
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if fp, ok := l.pkgs[path]; ok {
		return fp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		af, err := parser.ParseFile(l.fset, filepath.Join(dir, ent.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: &fixtureImporter{l: l}}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking: %w", err)
	}
	fp := &fixturePkg{path: path, files: files, pkg: pkg, info: info}
	l.pkgs[path] = fp
	return fp, nil
}

// fixtureImporter resolves sibling fixture packages, then the standard
// library.
type fixtureImporter struct{ l *fixtureLoader }

func (im *fixtureImporter) Import(path string) (*types.Package, error) {
	dir := filepath.Join(im.l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		fp, err := im.l.load(path)
		if err != nil {
			return nil, err
		}
		return fp.pkg, nil
	}
	return stdlibImport(im.l.fset, path)
}

// stdlib export data, shared across fixtures and tests in the process.
var (
	stdMu  sync.Mutex
	stdExp = make(map[string]string) // import path -> export file
	stdImp = make(map[*token.FileSet]types.Importer)
)

func stdlibImport(fset *token.FileSet, path string) (*types.Package, error) {
	stdMu.Lock()
	if _, ok := stdExp[path]; !ok {
		out, err := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", path).Output()
		if err != nil {
			stdMu.Unlock()
			return nil, fmt.Errorf("resolving stdlib %q: %v", path, err)
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err != nil {
				if err == io.EOF {
					break
				}
				stdMu.Unlock()
				return nil, err
			}
			if p.Export != "" {
				stdExp[p.ImportPath] = p.Export
			}
		}
	}
	imp, ok := stdImp[fset]
	if !ok {
		imp = importer.ForCompiler(fset, "gc", func(p string) (io.ReadCloser, error) {
			stdMu.Lock()
			f, ok := stdExp[p]
			stdMu.Unlock()
			if !ok {
				return nil, fmt.Errorf("no export data for %q", p)
			}
			return os.Open(f)
		})
		stdImp[fset] = imp
	}
	stdMu.Unlock()
	return imp.Import(path)
}

// check runs the analyzer and reconciles diagnostics with want comments.
func check(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, fp *fixturePkg) {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     fp.files,
		Pkg:       fp.pkg,
		TypesInfo: fp.info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, fp.path, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, file := range fp.files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				res, ok := parseWant(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, re := range res {
					r, err := regexp.Compile(re)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, re, err)
					}
					wants[k] = append(wants[k], r)
				}
			}
		}
	}

	// Assembly fixtures: analyzers that read .s files (asmguard) report
	// positions inside them, so their want comments are scanned textually
	// — the Go parser never sees assembly sources.
	if len(fp.files) > 0 {
		dir := filepath.Dir(fset.Position(fp.files[0].Pos()).Filename)
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("scanning %s for asm fixtures: %v", dir, err)
		}
		for _, ent := range ents {
			if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".s") {
				continue
			}
			path := filepath.Join(dir, ent.Name())
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			for i, line := range strings.Split(string(blob), "\n") {
				j := strings.Index(line, "// want ")
				if j < 0 {
					continue
				}
				res, ok := parseWant(line[j:])
				if !ok {
					continue
				}
				k := key{path, i + 1}
				for _, re := range res {
					r, err := regexp.Compile(re)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, re, err)
					}
					wants[k] = append(wants[k], r)
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
		}
	}
}

// parseWant extracts the regexps from a `// want "re" ...` comment. The
// marker may also be embedded mid-comment (`//flowrelvet:unbounded // want
// "re"`), which is the only way to attach an expectation to a line whose
// offending construct is itself a comment.
func parseWant(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "want ") {
		if i := strings.Index(text, "// want "); i >= 0 {
			text = strings.TrimSpace(text[i+len("//"):])
		} else {
			return nil, false
		}
	}
	rest := strings.TrimSpace(text[len("want"):])
	var out []string
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, false
		}
		s, err := strconv.Unquote(q)
		if err != nil {
			return nil, false
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return out, len(out) > 0
}
