// Package asmguard vets the hand-written assembly kernels against their
// Go declarations, in the spirit of vet's asmdecl but specialized to the
// invariants the evaluate kernels rely on:
//
//   - every TEXT symbol has a Go stub (a body-less declaration) in the
//     same package, and every Go stub is backed by a TEXT symbol;
//   - the declared argument size ($frame-args) matches the ABI0 layout
//     of the stub's signature, so a signature edit cannot silently skew
//     the frame offsets the asm reads;
//   - every routine is NOSPLIT — the kernels run on goroutine stacks
//     inside the evaluate loop and must not trigger a stack split;
//   - no FMA opcodes: the portable loops do separate IEEE-754 multiply
//     and add, so a fused contraction in the vector path would break the
//     bit-identity contract across dispatch levels;
//   - every vector float routine has a portable twin (<base>Go) and a
//     dispatch function referencing both, so disabling SIMD can never
//     remove functionality.
//
// Feature-probe routines that touch no float data (cpuid, xgetbv) are
// exempt from the twin rule: bit-identity is a property of arithmetic,
// not of CPU identification.
package asmguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"strconv"
	"strings"

	"flowrel/internal/analysis"
)

// Analyzer is the asmguard pass.
var Analyzer = &analysis.Analyzer{
	Name: "asmguard",
	Doc:  "assembly kernels must match their Go stubs (arg sizes, NOSPLIT), avoid FMA, and keep a portable twin wired into the dispatch",
	Run:  run,
}

// knownArchs are the GOARCH suffixes recognized on .s file names.
var knownArchs = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "ppc64": true,
	"ppc64le": true, "riscv64": true, "s390x": true, "wasm": true,
}

func run(pass *analysis.Pass) (any, error) {
	// External test packages share the directory with their subject; the
	// subject's unit already vetted the .s files.
	if strings.HasSuffix(pass.Pkg.Name(), "_test") {
		return nil, nil
	}
	if len(pass.Files) == 0 {
		return nil, nil
	}
	dir := filepath.Dir(pass.Fset.Position(pass.Files[0].Pos()).Filename)
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var asmPaths []string
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".s") {
			continue
		}
		if arch := archSuffix(name); arch != "" && arch != runtime.GOARCH {
			continue
		}
		asmPaths = append(asmPaths, filepath.Join(dir, name))
	}
	if len(asmPaths) == 0 {
		return nil, nil
	}

	// Go-side view: stubs (no body) and full declarations by name, plus
	// the set of names each function body references, for the dispatch
	// check.
	stubs := make(map[string]*ast.FuncDecl)
	bodies := make(map[string]*ast.FuncDecl)
	refs := make(map[string]map[string]bool) // func name -> referenced idents
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv != nil {
				continue
			}
			if fn.Body == nil {
				stubs[fn.Name.Name] = fn
				continue
			}
			bodies[fn.Name.Name] = fn
			rs := make(map[string]bool)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					rs[id.Name] = true
				}
				return true
			})
			refs[fn.Name.Name] = rs
		}
	}

	backed := make(map[string]bool)
	for _, path := range asmPaths {
		routines, file, err := parseAsm(pass.Fset, path)
		if err != nil {
			return nil, err
		}
		for _, rt := range routines {
			backed[rt.name] = true
			checkRoutine(pass, file, rt, stubs, bodies, refs)
		}
	}

	// Reverse direction: a stub nothing implements is a link error
	// waiting for the first call; catch it at vet time.
	for name, fn := range stubs {
		if !backed[name] {
			pass.Reportf(fn.Pos(), "Go stub %s has no TEXT implementation in the package's assembly files for %s", name, runtime.GOARCH)
		}
	}
	return nil, nil
}

// archSuffix extracts a trailing _GOARCH from an .s file name, or "".
func archSuffix(name string) string {
	base := strings.TrimSuffix(name, ".s")
	if i := strings.LastIndexByte(base, '_'); i >= 0 {
		if suf := base[i+1:]; knownArchs[suf] {
			return suf
		}
	}
	return ""
}

// A routine is one TEXT block of an assembly file.
type routine struct {
	name     string
	flags    string
	argSize  int // declared -args bytes; -1 when absent
	line     int // TEXT directive line
	ops      []asmOp
	floatOps bool
}

type asmOp struct {
	op   string
	line int
}

// textRe matches a TEXT directive: TEXT ·name(SB), FLAGS, $frame-args
// (the flags field is optional, the -args suffix is optional).
var textRe = regexp.MustCompile(`^TEXT\s+·([A-Za-z_][A-Za-z0-9_]*)\(SB\)\s*(?:,\s*([A-Z0-9|]+)\s*)?,\s*\$(-?\d+)(?:-(\d+))?`)

// vectorFloatRe matches vector/scalar float opcodes (the VEX-prefixed
// packed/scalar double and single forms the kernels use).
var vectorFloatRe = regexp.MustCompile(`^V?(MOVU?|MUL|ADD|SUB|DIV|XOR|AND|OR|MIN|MAX|SQRT|ROUND)?.*P[SD]$|^V.*S[SD]$`)

// fmaRe matches the x86 fused-multiply-add families.
var fmaRe = regexp.MustCompile(`^VF(N?)M(ADD|SUB)`)

// parseAsm scans one assembly file into routines and registers it with
// the FileSet so diagnostics carry real positions.
func parseAsm(fset *token.FileSet, path string) ([]*routine, *token.File, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	tf := fset.AddFile(path, -1, len(blob))
	tf.SetLinesForContent(blob)

	var (
		routines []*routine
		cur      *routine
	)
	for i, raw := range strings.Split(string(blob), "\n") {
		line := raw
		if j := strings.Index(line, "//"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if m := textRe.FindStringSubmatch(line); m != nil {
			cur = &routine{name: m[1], flags: m[2], argSize: -1, line: i + 1}
			if m[4] != "" {
				n, _ := strconv.Atoi(m[4])
				cur.argSize = n
			}
			routines = append(routines, cur)
			continue
		}
		if cur == nil {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		op := fields[0]
		if strings.HasSuffix(op, ":") { // label
			continue
		}
		cur.ops = append(cur.ops, asmOp{op: op, line: i + 1})
		if vectorFloatRe.MatchString(op) {
			cur.floatOps = true
		}
	}
	return routines, tf, nil
}

func checkRoutine(pass *analysis.Pass, tf *token.File, rt *routine, stubs, bodies map[string]*ast.FuncDecl, refs map[string]map[string]bool) {
	at := func(line int) token.Pos { return tf.LineStart(line) }

	if !strings.Contains(rt.flags, "NOSPLIT") {
		pass.Reportf(at(rt.line), "asm routine %s is not NOSPLIT: the evaluate kernels must not trigger a stack split mid-loop", rt.name)
	}
	for _, op := range rt.ops {
		if fmaRe.MatchString(op.op) {
			pass.Reportf(at(op.line), "FMA opcode %s in %s: fused contraction breaks bit-identity with the portable twin", op.op, rt.name)
		}
	}

	stub, ok := stubs[rt.name]
	if !ok {
		pass.Reportf(at(rt.line), "asm routine %s has no Go stub in this package", rt.name)
		return
	}

	obj := pass.TypesInfo.Defs[stub.Name]
	if obj == nil {
		return
	}
	if sig, ok := obj.Type().(*types.Signature); ok {
		want := abi0ArgBytes(sig)
		switch {
		case rt.argSize < 0:
			pass.Reportf(at(rt.line), "asm routine %s declares no arg size; its Go signature needs $frame-%d", rt.name, want)
		case int64(rt.argSize) != want:
			pass.Reportf(at(rt.line), "asm routine %s declares arg size %d but its Go signature lays out %d bytes (ABI0)", rt.name, rt.argSize, want)
		}
	}

	if !rt.floatOps {
		return // feature probes need no portable twin
	}
	twin := ""
	for i := len(rt.name) - 1; i > 0; i-- {
		if fn, ok := bodies[rt.name[:i]+"Go"]; ok && fn != nil {
			twin = rt.name[:i] + "Go"
			break
		}
	}
	if twin == "" {
		pass.Reportf(at(rt.line), "vector routine %s has no portable twin (a <base>Go function with the same role)", rt.name)
		return
	}
	for _, rs := range refs {
		if rs[rt.name] && rs[twin] {
			return
		}
	}
	pass.Reportf(at(rt.line), "vector routine %s and its portable twin %s are not both referenced by any dispatch function", rt.name, twin)
}

// abi0ArgBytes computes the ABI0 argument-block size of a signature:
// parameters laid out in order with their natural alignment, results
// starting word-aligned after them.
func abi0ArgBytes(sig *types.Signature) int64 {
	sizes := types.SizesFor("gc", runtime.GOARCH)
	word := sizes.Sizeof(types.Typ[types.UnsafePointer])
	var off int64
	add := func(t types.Type) {
		a := sizes.Alignof(t)
		off = (off + a - 1) / a * a
		off += sizes.Sizeof(t)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		add(sig.Params().At(i).Type())
	}
	off = (off + word - 1) / word * word
	for i := 0; i < sig.Results().Len(); i++ {
		add(sig.Results().At(i).Type())
	}
	return off
}
