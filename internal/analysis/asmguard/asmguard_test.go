package asmguard

import (
	"runtime"
	"testing"

	"flowrel/internal/analysis/analysistest"
)

func TestAsmguard(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skipf("fixture assembly is amd64-only; GOARCH=%s skips it entirely", runtime.GOARCH)
	}
	analysistest.Run(t, "../testdata", Analyzer, "asmguard/a")
}
