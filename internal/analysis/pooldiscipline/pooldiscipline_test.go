package pooldiscipline

import (
	"testing"

	"flowrel/internal/analysis/analysistest"
)

func TestPoolDiscipline(t *testing.T) {
	analysistest.Run(t, "../testdata", Analyzer, "pooldiscipline/p")
}
