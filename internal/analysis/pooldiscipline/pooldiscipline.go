// Package pooldiscipline generalizes poolescape to the worker-pool
// shapes the batch evaluate path introduced: a bounded pool of
// goroutines (runPool) pulling work off a shared atomic counter, each
// holding pooled per-worker scratch.
//
// Three rules:
//
//   - a worker closure handed to runPool must not reference a loop
//     variable of an enclosing for/range statement — the pool outlives
//     the iteration, so the capture either races or pins the wrong
//     item;
//   - per-worker scratch drawn from a sync.Pool inside a worker must
//     not escape the worker: no store to a variable declared outside
//     the closure, a field, an element, or a package-level variable;
//   - sync/atomic counter types (atomic.Int64 and friends) must never
//     be copied: no value assignments, value arguments, value returns,
//     or value parameters, and no non-atomic stores to a counter
//     lvalue. A copied counter silently forks the coordination state.
package pooldiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"flowrel/internal/analysis"
)

// Analyzer is the pooldiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "pooldiscipline",
	Doc:  "runPool workers must not capture loop variables, per-worker scratch must not outlive the pool, and atomic counters must not be copied",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		loopVars := collectLoopVars(pass, file)
		checkWorkers(pass, file, loopVars)
		checkAtomicCopies(pass, file)
	}
	return nil, nil
}

// collectLoopVars gathers every object declared in a for-statement init
// or range-statement key/value position.
func collectLoopVars(pass *analysis.Pass, file *ast.File) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				vars[obj] = true
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ForStmt:
			if as, ok := st.Init.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					addIdent(lhs)
				}
			}
		case *ast.RangeStmt:
			addIdent(st.Key)
			addIdent(st.Value)
		}
		return true
	})
	return vars
}

// checkWorkers inspects every runPool call site.
func checkWorkers(pass *analysis.Pass, file *ast.File, loopVars map[types.Object]bool) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || calleeName(call) != "runPool" {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			checkWorkerCaptures(pass, lit, loopVars)
			checkWorkerScratch(pass, lit)
		}
		return true
	})
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// checkWorkerCaptures flags loop variables referenced inside the worker.
func checkWorkerCaptures(pass *analysis.Pass, lit *ast.FuncLit, loopVars map[types.Object]bool) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !loopVars[obj] {
			return true
		}
		// Declared outside the worker literal?
		if obj.Pos() < lit.Pos() || obj.Pos() >= lit.End() {
			pass.Reportf(id.Pos(), "runPool worker captures loop variable %s; the pool outlives the iteration — pass the item through the shared counter instead", id.Name)
		}
		return true
	})
}

// checkWorkerScratch flags pooled values obtained inside the worker that
// are stored somewhere outliving it.
func checkWorkerScratch(pass *analysis.Pass, lit *ast.FuncLit) {
	// Pooled objects: variables assigned from a (*sync.Pool).Get inside
	// the worker.
	pooled := make(map[types.Object]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && isPoolGet(pass, as.Rhs[0]) {
			var obj types.Object
			if as.Tok == token.DEFINE {
				obj = pass.TypesInfo.Defs[id]
			} else {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				pooled[obj] = true
			}
		}
		return true
	})
	if len(pooled) == 0 {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			obj := usedPooled(pass, rhs, pooled)
			if obj == nil || i >= len(as.Lhs) {
				continue
			}
			if escapesWorker(pass, as.Lhs[i], lit) {
				pass.Reportf(as.Pos(), "per-worker scratch %s escapes the worker; pooled scratch must not outlive the pool that drained it", obj.Name())
			}
		}
		return true
	})
}

// usedPooled returns the pooled object e carries (itself, its address,
// or via parens), or nil.
func usedPooled(pass *analysis.Pass, e ast.Expr, pooled map[types.Object]bool) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil && pooled[obj] {
			return obj
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return usedPooled(pass, e.X, pooled)
		}
	case *ast.ParenExpr:
		return usedPooled(pass, e.X, pooled)
	}
	return nil
}

// escapesWorker reports whether an assignment target outlives the worker
// literal: a field/element/deref write, a package-level variable, or any
// variable declared outside the literal.
func escapesWorker(pass *analysis.Pass, lhs ast.Expr, lit *ast.FuncLit) bool {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		if obj.Parent() == pass.Pkg.Scope() {
			return true
		}
		return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
	}
	return false
}

// isPoolGet matches pool.Get() and pool.Get().(*T).
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && tv.Type != nil && analysis.IsNamed(tv.Type, "sync", "Pool")
}

// atomicTypeName returns the sync/atomic counter type name of t (after
// no pointer stripping — a *atomic.Int64 is the correct shape), or "".
func atomicTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return ""
	}
	switch obj.Name() {
	case "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Bool", "Value", "Pointer":
		return obj.Name()
	}
	return ""
}

// checkAtomicCopies flags every context that copies an atomic counter by
// value or stores to one non-atomically.
func checkAtomicCopies(pass *analysis.Pass, file *ast.File) {
	isAtomic := func(e ast.Expr) string {
		tv, ok := pass.TypesInfo.Types[e]
		if !ok || tv.Type == nil {
			return ""
		}
		return atomicTypeName(tv.Type)
	}
	// A fresh composite literal is initialization, not a copy of shared
	// state; it is caught as a non-atomic store when assigned over a
	// live counter.
	isCopy := func(e ast.Expr) string {
		if _, ok := e.(*ast.CompositeLit); ok {
			return ""
		}
		return isAtomic(e)
	}
	checkFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			tv, ok := pass.TypesInfo.Types[f.Type]
			if !ok || tv.Type == nil {
				continue
			}
			if name := atomicTypeName(tv.Type); name != "" {
				pass.Reportf(f.Pos(), "atomic.%s passed by value; a copied counter forks the coordination state — use *atomic.%s", name, name)
			}
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				// Discarding into _ copies nothing observable.
				if len(st.Lhs) == len(st.Rhs) {
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if name := isCopy(rhs); name != "" {
					pass.Reportf(rhs.Pos(), "atomic.%s copied by value; share the counter through a pointer", name)
				}
			}
			for _, lhs := range st.Lhs {
				if name := isAtomic(lhs); name != "" && st.Tok != token.DEFINE {
					pass.Reportf(lhs.Pos(), "non-atomic store to atomic.%s; use its Store method", name)
				}
			}
		case *ast.CallExpr:
			for _, arg := range st.Args {
				if name := isCopy(arg); name != "" {
					pass.Reportf(arg.Pos(), "atomic.%s copied by value into a call; pass *atomic.%s", name, name)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range st.Results {
				if name := isCopy(res); name != "" {
					pass.Reportf(res.Pos(), "atomic.%s copied by value out of a return; return *atomic.%s", name, name)
				}
			}
		case *ast.FuncDecl:
			checkFields(st.Type.Params)
			checkFields(st.Type.Results)
		case *ast.FuncLit:
			checkFields(st.Type.Params)
			checkFields(st.Type.Results)
		}
		return true
	})
}
