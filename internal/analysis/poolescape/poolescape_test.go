package poolescape_test

import (
	"testing"

	"flowrel/internal/analysis/analysistest"
	"flowrel/internal/analysis/poolescape"
)

func TestPoolEscape(t *testing.T) {
	analysistest.Run(t, "../testdata", poolescape.Analyzer, "poolescape/a")
}
