// Package poolescape polices sync.Pool discipline on the evaluation
// scratch buffers. Plan.Eval draws its per-call scratch from a sync.Pool
// so concurrent evaluations never share mutable state; that only works if
// every Get is paired with a Put on every path out of the function, and
// the pooled value never outlives the call (a retained scratch buffer
// would be handed to a concurrent Eval while still referenced).
//
// For each function-local variable initialized from a (*sync.Pool).Get:
//
//   - there must be a Put of that variable, and unless the Put is
//     deferred, no return may sit between the Get and the Put (a plain
//     Put after an early return leaks the buffer on that path — use
//     defer pool.Put(v));
//   - the variable must not be returned, and must not be stored into a
//     field, element, or package-level variable.
package poolescape

import (
	"go/ast"
	"go/token"
	"go/types"

	"flowrel/internal/analysis"
)

// Analyzer is the poolescape pass.
var Analyzer = &analysis.Analyzer{
	Name: "poolescape",
	Doc:  "sync.Pool values must be Put back on all paths and must not escape the function",
	Run:  run,
}

func run(pass *analysis.Pass) (any, error) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil, nil
}

// pooled is one variable holding a sync.Pool Get result.
type pooled struct {
	obj    types.Object
	getPos token.Pos
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	var vars []pooled
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if !isPoolGet(pass, as.Rhs[0]) {
			return true
		}
		var obj types.Object
		if as.Tok == token.DEFINE {
			obj = pass.TypesInfo.Defs[id]
		} else {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj != nil {
			vars = append(vars, pooled{obj: obj, getPos: as.Pos()})
		}
		return true
	})

	for _, v := range vars {
		checkVar(pass, fn, v)
	}
}

// isPoolGet matches pool.Get() and pool.Get().(*T).
func isPoolGet(pass *analysis.Pass, e ast.Expr) bool {
	if ta, ok := e.(*ast.TypeAssertExpr); ok {
		e = ta.X
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Get" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	return ok && tv.Type != nil && analysis.IsNamed(tv.Type, "sync", "Pool")
}

func checkVar(pass *analysis.Pass, fn *ast.FuncDecl, v pooled) {
	// Calls syntactically under a defer count as covering every path;
	// the set also keeps them from being mistaken for plain Puts.
	inDefer := make(map[*ast.CallExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			ast.Inspect(d, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok {
					inDefer[c] = true
				}
				return true
			})
		}
		return true
	})

	// Returns inside nested function literals exit the closure, not fn.
	var closures []*ast.FuncLit
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			closures = append(closures, fl)
		}
		return true
	})
	inClosure := func(pos token.Pos) bool {
		for _, fl := range closures {
			if fl.Pos() <= pos && pos < fl.End() {
				return true
			}
		}
		return false
	}

	var (
		deferredPut bool
		plainPutPos = token.NoPos
		returnAfter = token.NoPos // first return after the Get
	)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.CallExpr:
			if isPutOf(pass, st, v.obj) {
				if inDefer[st] {
					deferredPut = true
				} else if plainPutPos == token.NoPos {
					plainPutPos = st.Pos()
				}
			}
		case *ast.ReturnStmt:
			if st.Pos() > v.getPos && !inClosure(st.Pos()) {
				if returnAfter == token.NoPos || st.Pos() < returnAfter {
					returnAfter = st.Pos()
				}
				for _, res := range st.Results {
					if directUse(pass, res, v.obj) {
						pass.Reportf(st.Pos(), "pooled %s escapes via return; a sync.Pool value must not outlive the function that Get it", v.obj.Name())
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !directUse(pass, rhs, v.obj) {
					continue
				}
				if i < len(st.Lhs) && retainsBeyondFunc(pass, st.Lhs[i]) {
					pass.Reportf(st.Pos(), "pooled %s stored into a retained location; a sync.Pool value must not outlive the function that Get it", v.obj.Name())
				}
			}
		}
		return true
	})

	switch {
	case deferredPut:
		// Covered on every path.
	case plainPutPos == token.NoPos:
		pass.Reportf(v.getPos, "pooled %s is never Put back; every sync.Pool Get needs a matching Put (prefer defer pool.Put)", v.obj.Name())
	case returnAfter != token.NoPos && returnAfter < plainPutPos:
		pass.Reportf(v.getPos, "pooled %s is not Put back on all paths: a return precedes the Put; use defer pool.Put", v.obj.Name())
	}
}

// isPutOf matches pool.Put(v) where v is exactly the pooled variable.
func isPutOf(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" || len(call.Args) != 1 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil || !analysis.IsNamed(tv.Type, "sync", "Pool") {
		return false
	}
	id, ok := call.Args[0].(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == obj
}

// directUse reports whether e is the variable itself, its address, or a
// composite literal carrying it — the forms that retain the value. The
// variable appearing as a call argument is fine: the callee uses the
// scratch, it does not keep it.
func directUse(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e] == obj
	case *ast.UnaryExpr:
		return e.Op == token.AND && directUse(pass, e.X, obj)
	case *ast.ParenExpr:
		return directUse(pass, e.X, obj)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if directUse(pass, elt, obj) {
				return true
			}
		}
	}
	return false
}

// retainsBeyondFunc reports whether the assignment target outlives the
// call: a field or element write, or a package-level variable.
func retainsBeyondFunc(pass *analysis.Pass, lhs ast.Expr) bool {
	switch lhs := lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		return obj != nil && obj.Parent() == pass.Pkg.Scope()
	}
	return false
}
