// Package anytimecheck enforces the anytime-budget contract on the
// exponential enumeration loops. Every engine in this module walks a
// configuration space of size 2^m; the certified-budget contract (PR 1)
// says such loops consult their *anytime.Ctl — Check or Charge — so a
// caller-imposed budget or cancellation actually stops the walk and the
// partial interval stays certified. One loop that forgets the check runs
// to completion no matter what budget the caller paid for.
//
// A loop counts as enumeration when any of these hold:
//   - its condition bounds the induction variable by a shifted mask
//     (x < 1<<k and variants) — the 2^m walk idiom;
//   - its body calls into the subset-lattice package (Submasks,
//     SupersetZeta, …) — an inclusion–exclusion walk;
//   - its body calls a popcount-layer iterator from the conf package
//     (NextOfLayer, NthOfLayer, SplitLayer) — the monotone-frontier
//     walk visits a whole binomial layer per loop;
//   - the comment directly above it says it enumerates.
//
// Such a loop must contain a call to Check/Charge/Stopped on an
// anytime.Ctl (or a helper whose name ends in "Charge"), or carry an
// explicit waiver: //flowrelvet:unbounded <reason>. The reason is
// mandatory — an undocumented waiver is itself a finding.
package anytimecheck

import (
	"go/ast"
	"go/token"
	"strings"

	"flowrel/internal/analysis"
)

// Analyzer is the anytimecheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "anytimecheck",
	Doc:  "enumeration loops must charge the anytime budget (Ctl.Check/Charge) or carry //flowrelvet:unbounded <reason>",
	Run:  run,
}

// policed names the packages (by import-path tail) whose loops are held
// to the contract: every package that hosts an exponential engine.
var policed = map[string]bool{
	"core": true, "reliability": true, "chain": true, "poly": true,
	"sim": true, "srlg": true, "subset": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !policedPath(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			// The anytime contract binds engines; tests drive the
			// transforms at fixed sizes and need no budget.
			continue
		}
		waivers := analysis.WaiverSet(pass.Fset, file, "unbounded")
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				if !isEnumLoop(pass, file, loop.Cond, loop.Body, loop.Pos()) {
					return true
				}
				body = loop.Body
			case *ast.RangeStmt:
				if !isEnumLoop(pass, file, nil, loop.Body, loop.Pos()) {
					return true
				}
				body = loop.Body
			default:
				return true
			}
			if chargesBudget(pass, body) {
				return true
			}
			line := pass.Fset.Position(n.Pos()).Line
			if w, ok := waivers[line]; ok {
				if w.Reason == "" {
					pass.Reportf(w.Pos, "flowrelvet:unbounded waiver needs a reason")
				}
				return true
			}
			pass.Reportf(n.Pos(), "enumeration loop never charges the anytime budget; call Ctl.Check/Charge inside it or waive with //flowrelvet:unbounded <reason>")
			return true
		})
	}
	return nil, nil
}

func policedPath(path string) bool {
	for name := range policed {
		if analysis.PathTail(path, name) {
			return true
		}
	}
	return false
}

// isEnumLoop classifies a loop as a configuration-space enumeration.
func isEnumLoop(pass *analysis.Pass, file *ast.File, cond ast.Expr, body *ast.BlockStmt, pos token.Pos) bool {
	if cond != nil {
		if be, ok := cond.(*ast.BinaryExpr); ok && (be.Op == token.LSS || be.Op == token.LEQ) {
			if containsShift(be.Y) {
				return true
			}
		}
	}
	if callsPackage(pass, body, "subset", nil) {
		return true
	}
	if callsPackage(pass, body, "conf", layerIterators) {
		return true
	}
	line := pass.Fset.Position(pos).Line
	return analysis.EnumComment(analysis.CommentBefore(pass.Fset, file, line))
}

// containsShift reports whether the expression tree contains a << — the
// "2^m bound" idiom (1<<k, uint64(1)<<uint(k), …).
func containsShift(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && be.Op == token.SHL {
			found = true
		}
		return !found
	})
	return found
}

// layerIterators are the conf-package functions that walk a popcount
// layer of the configuration lattice. Plain conf helpers (Split, chunk
// arithmetic) do not classify a loop; only the lattice walkers do.
var layerIterators = map[string]bool{
	"NextOfLayer": true, "NthOfLayer": true, "SplitLayer": true,
}

// callsPackage reports whether the body calls a function declared in a
// package whose import path ends in tail. A non-nil names set restricts
// the match to those functions.
func callsPackage(pass *analysis.Pass, body *ast.BlockStmt, tail string, names map[string]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		var id *ast.Ident
		switch fn := call.Fun.(type) {
		case *ast.Ident:
			id = fn
		case *ast.SelectorExpr:
			id = fn.Sel
		default:
			return true
		}
		if names != nil && !names[id.Name] {
			return true
		}
		if obj := pass.TypesInfo.Uses[id]; obj != nil && obj.Pkg() != nil &&
			analysis.PathTail(obj.Pkg().Path(), tail) {
			found = true
		}
		return !found
	})
	return found
}

// chargesBudget reports whether the loop body (at any depth) consults an
// anytime controller: a Check/Charge/Stopped method on a Ctl from an
// "anytime" package, or a helper whose name ends in "Charge" (the
// flush-and-charge idiom of the batched workers).
func chargesBudget(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			name := fn.Sel.Name
			if name == "Check" || name == "Charge" || name == "Stopped" {
				if tv, ok := pass.TypesInfo.Types[fn.X]; ok && tv.Type != nil &&
					analysis.IsNamed(tv.Type, "anytime", "Ctl") {
					found = true
				}
			}
			if hasSuffixCharge(name) {
				found = true
			}
		case *ast.Ident:
			if hasSuffixCharge(fn.Name) {
				found = true
			}
		}
		return !found
	})
	return found
}

func hasSuffixCharge(name string) bool {
	return len(name) >= len("Charge") && name[len(name)-len("Charge"):] == "Charge"
}
