package anytimecheck_test

import (
	"testing"

	"flowrel/internal/analysis/analysistest"
	"flowrel/internal/analysis/anytimecheck"
)

func TestAnytimeCheck(t *testing.T) {
	analysistest.Run(t, "../testdata", anytimecheck.Analyzer,
		"anytimecheck/core", "anytimecheck/notpoliced")
}
