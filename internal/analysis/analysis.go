// Package analysis is a dependency-free analysis driver for the
// flowrelvet suite: a re-implementation of the surface of
// golang.org/x/tools/go/analysis that this module's analyzers are written
// against. The module deliberately has no external dependencies (the
// solver is pure stdlib, and keeping it that way makes the supply chain
// auditable), so instead of importing x/tools the driver re-creates the
// three types the analyzers need — Analyzer, Pass, Diagnostic — with the
// same field names and calling conventions. An analyzer written here can
// be ported to the real go/analysis framework by changing one import.
//
// The driver loads packages with `go list -deps -test -export -json`:
// packages inside this module are parsed and type-checked from source
// (so analyzers see full syntax plus types.Info), while standard-library
// dependencies are imported from the compiler's export data, exactly the
// way `go vet` resolves them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// An Analyzer describes one analysis: a named invariant checker that runs
// once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the one-paragraph description printed by `flowrelvet help`.
	Doc string
	// Run applies the analyzer to a single type-checked package. It may
	// be nil for analyzers that only have a module-scoped pass.
	Run func(*Pass) (any, error)
	// RunModule, if set, runs once over the whole load after the
	// per-package passes. Module-scoped analyses need the go toolchain
	// (hotalloc replays the compiler's escape analysis), so they see the
	// load directory and every unit at once instead of a single Pass.
	RunModule func(dir string, units []*Package) ([]Diagnostic, error)
}

// A Pass presents one type-checked package to an Analyzer. It mirrors
// golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one diagnostic. The driver collects and sorts them.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message. The analyzer
// name is attached by the driver.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}

// PathTail reports whether the last slash-separated segment of the import
// path equals seg. Analyzers match packages by tail segment so that the
// same rule applies to "flowrel/internal/subset" in the repository and to
// the mock "subset" package in an analysistest fixture tree.
func PathTail(path, seg string) bool {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return path == seg
}

// IsNamed reports whether t, after stripping one level of pointer
// indirection, is a named type called name; if pkgTail is non-empty the
// defining package's path must also end in that segment.
func IsNamed(t types.Type, pkgTail, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name {
		return false
	}
	if pkgTail == "" {
		return true
	}
	return obj.Pkg() != nil && PathTail(obj.Pkg().Path(), pkgTail)
}

// A Waiver is a //flowrelvet:<marker> comment suppressing one finding.
// The reason is everything after the marker word; analyzers reject empty
// reasons so every suppression is self-documenting.
type Waiver struct {
	Pos    token.Pos
	Reason string
}

// WaiverSet scans one file for //flowrelvet:<marker> comments and returns
// a map from the source line each waiver covers to the waiver. A waiver
// covers the line immediately after the comment group it ends (the usual
// doc-comment position) and its own line (trailing-comment position).
func WaiverSet(fset *token.FileSet, file *ast.File, marker string) map[int]Waiver {
	needle := "flowrelvet:" + marker
	out := make(map[int]Waiver)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			idx := strings.Index(c.Text, needle)
			if idx < 0 {
				continue
			}
			reason := strings.TrimSpace(c.Text[idx+len(needle):])
			w := Waiver{Pos: c.Pos(), Reason: reason}
			line := fset.Position(c.Pos()).Line
			endLine := fset.Position(cg.End()).Line
			out[line] = w
			out[endLine+1] = w
		}
	}
	return out
}

// CommentBefore returns the text of the comment group that ends on the
// line directly above line (a doc comment for the node starting at line),
// or "".
func CommentBefore(fset *token.FileSet, file *ast.File, line int) string {
	for _, cg := range file.Comments {
		if fset.Position(cg.End()).Line == line-1 {
			return cg.Text()
		}
	}
	return ""
}

// WalkStack traverses the file like ast.Inspect but also hands the
// visitor the stack of enclosing nodes (outermost first, not including n).
func WalkStack(file *ast.File, visit func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		ok := visit(n, stack)
		if ok {
			// ast.Inspect only emits the nil pop for nodes it descended
			// into, so the stack must only grow for those.
			stack = append(stack, n)
		}
		return ok
	})
}

// enumRe matches comments that declare a loop to be an enumeration.
var enumRe = regexp.MustCompile(`(?i)enumerat`)

// EnumComment reports whether text marks an enumeration.
func EnumComment(text string) bool { return enumRe.MatchString(text) }
