package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked unit ready for analysis. For packages
// with in-package test files the unit is the test-augmented variant
// (GoFiles + TestGoFiles), so analyzers police test code too; external
// test packages (package foo_test) become their own unit.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath   string
	Dir          string
	Name         string
	Standard     bool
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	ImportMap    map[string]string
	Module       *struct{ Path string }
	Error        *struct{ Err string }
}

// loader resolves imports for source type-checking: module packages from
// source (memoized), everything else from compiler export data.
type loader struct {
	dir    string
	fset   *token.FileSet
	byPath map[string]*listPkg
	gc     types.Importer
	src    map[string]*types.Package // memoized module packages (GoFiles only)
}

// Load lists patterns with the go command and returns one analysis unit
// per matched package (plus an external-test unit where one exists). dir
// is the module root to run the go command in ("" = current directory).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// The match list first: -deps pulls the whole universe into the same
	// stream, so the loader needs to know which packages were actually
	// requested.
	out, err := runGo(dir, append([]string{"list"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	var targets []string
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if line = strings.TrimSpace(line); line != "" {
			targets = append(targets, line)
		}
	}

	// The universe: -test includes test-only dependencies (testing, …),
	// -export materializes compiler export data for every non-target so
	// imports resolve without type-checking the standard library.
	out, err = runGo(dir, append([]string{"list", "-deps", "-test", "-export", "-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	l := &loader{
		dir:    dir,
		fset:   token.NewFileSet(),
		byPath: make(map[string]*listPkg),
		src:    make(map[string]*types.Package),
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if strings.Contains(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test") {
			continue // test-binary variants; the loader builds its own augmented units
		}
		if prev, ok := l.byPath[p.ImportPath]; ok && prev.Export != "" {
			continue
		}
		cp := p
		l.byPath[p.ImportPath] = &cp
	}
	l.gc = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		e := l.byPath[path]
		if e == nil || e.Export == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(e.Export)
	})

	var units []*Package
	for _, path := range targets {
		e := l.byPath[path]
		if e == nil {
			return nil, fmt.Errorf("analysis: pattern matched %q but go list -deps did not describe it", path)
		}
		if e.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", path, e.Error.Err)
		}
		if len(e.GoFiles) == 0 && len(e.XTestGoFiles) == 0 {
			continue
		}
		aug, err := l.check(e, absFiles(e, append(append([]string{}, e.GoFiles...), e.TestGoFiles...)), nil)
		if err != nil {
			return nil, err
		}
		units = append(units, aug)
		if len(e.XTestGoFiles) > 0 {
			// The external test package imports the augmented variant of
			// its subject, like the real test binary does.
			xt, err := l.check(e, absFiles(e, e.XTestGoFiles),
				map[string]*types.Package{e.ImportPath: aug.Pkg})
			if err != nil {
				return nil, err
			}
			xt.PkgPath = e.ImportPath + "_test"
			units = append(units, xt)
		}
	}
	return units, nil
}

func absFiles(e *listPkg, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(e.Dir, n)
		}
	}
	return out
}

// check parses and type-checks one unit from source.
func (l *loader) check(e *listPkg, files []string, overlay map[string]*types.Package) (*Package, error) {
	var syntax []*ast.File
	for _, f := range files {
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		syntax = append(syntax, af)
	}
	info := newInfo()
	conf := types.Config{
		Importer: &unitImporter{l: l, importMap: e.ImportMap, overlay: overlay},
	}
	pkg, err := conf.Check(e.ImportPath, l.fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", e.ImportPath, err)
	}
	return &Package{PkgPath: e.ImportPath, Fset: l.fset, Files: syntax, Pkg: pkg, TypesInfo: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// unitImporter resolves one unit's imports: overlay first (the augmented
// subject for an external test package), then module source, then export
// data.
type unitImporter struct {
	l         *loader
	importMap map[string]string
	overlay   map[string]*types.Package
}

func (im *unitImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	if p, ok := im.overlay[path]; ok {
		return p, nil
	}
	return im.l.importPath(path)
}

func (l *loader) importPath(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	e := l.byPath[path]
	if e == nil {
		return nil, fmt.Errorf("analysis: unknown import %q", path)
	}
	if e.Standard || e.Module == nil {
		return l.gc.Import(path)
	}
	if p, ok := l.src[path]; ok {
		return p, nil
	}
	u, err := l.check(e, absFiles(e, e.GoFiles), nil)
	if err != nil {
		return nil, err
	}
	l.src[path] = u.Pkg
	return u.Pkg, nil
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return out, nil
}

// RunAnalyzers applies every analyzer to every unit, then every
// module-scoped analyzer (RunModule) once over the whole load, and
// returns the diagnostics sorted by position. dir is the module root the
// load ran in ("" = current directory).
func RunAnalyzers(dir string, units []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, u := range units {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      u.Fset,
				Files:     u.Files,
				Pkg:       u.Pkg,
				TypesInfo: u.TypesInfo,
			}
			name := a.Name
			pass.Report = func(d Diagnostic) {
				d.Analyzer = name
				diags = append(diags, d)
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, u.PkgPath, err)
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		ds, err := a.RunModule(dir, units)
		if err != nil {
			return nil, fmt.Errorf("analysis: %s (module pass): %w", a.Name, err)
		}
		for _, d := range ds {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
