// Package p is the planimmut fixture. This file is named plan.go, so it
// is the compile phase: construction writes here are the point.
package p

// Plan is the fixture's compiled artifact.
type Plan struct {
	Alpha float64
	Coef  []float64
	Calls int
}

// Compile builds a Plan; every write below is legal in this file.
func Compile(k int) *Plan {
	p := &Plan{Coef: make([]float64, k)}
	p.Alpha = 0.5
	for i := range p.Coef {
		p.Coef[i] = float64(i)
	}
	p.Calls++
	return p
}
