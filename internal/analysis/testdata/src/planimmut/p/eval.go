package p

// Eval only reads the Plan: legal everywhere.
func Eval(p *Plan, x float64) float64 {
	sum := 0.0
	for _, c := range p.Coef {
		sum += c * x
	}
	return sum + p.Alpha
}

func mutate(p *Plan) {
	p.Alpha = 1  // want `write to field Alpha of immutable Plan`
	p.Coef[0] = 2 // want `write to field Coef of immutable Plan`
	p.Calls++    // want `write to field Calls of immutable Plan`
}

func mutateValue(p Plan) {
	p.Alpha = 1 // want `write to field Alpha of immutable Plan`
}

func local(x float64) float64 {
	sum := 0.0
	sum += x // ordinary assignment, no Plan on the path
	return sum
}
