// Package core is an anytimecheck fixture; its import-path tail "core"
// puts it inside the policed set.
package core

import (
	"anytime"
	"conf"
	"subset"
)

func enumerateBad(k int) int {
	n := 0
	for e := uint64(0); e < uint64(1)<<uint(k); e++ { // want `enumeration loop never charges the anytime budget`
		n += int(e)
	}
	return n
}

func enumerateCharged(k int, ctl *anytime.Ctl) int {
	n := 0
	for e := uint64(0); e < uint64(1)<<uint(k); e++ {
		if !ctl.Charge(1, 0) {
			break
		}
		n += int(e)
	}
	return n
}

func enumerateChecked(k int, ctl *anytime.Ctl) {
	for e := uint64(0); e < uint64(1)<<uint(k); e++ {
		if !ctl.Check() {
			return
		}
	}
}

func flushAndCharge() bool { return true }

func enumerateViaHelper(k int) {
	for e := uint64(0); e < uint64(1)<<uint(k); e++ {
		if !flushAndCharge() {
			return
		}
	}
}

func latticeBad(masks []uint64) int {
	n := 0
	for _, m := range masks { // want `enumeration loop never charges the anytime budget`
		subset.Submasks(m, func(s uint64) bool { n++; return true })
	}
	return n
}

func latticeCharged(masks []uint64, ctl *anytime.Ctl) int {
	n := 0
	for _, m := range masks {
		if !ctl.Charge(1, 0) {
			break
		}
		subset.Submasks(m, func(s uint64) bool { n++; return true })
	}
	return n
}

func commentLoop(states []float64) float64 {
	total := 0.0
	// Enumerate every bottleneck configuration in the residual block.
	for _, p := range states { // want `enumeration loop never charges the anytime budget`
		total += p
	}
	return total
}

func waivedLoop(k int) int {
	n := 0
	//flowrelvet:unbounded fixture: the caller bounds k at 8
	for e := uint64(0); e < uint64(1)<<uint(k); e++ {
		n += int(e)
	}
	return n
}

func ordinaryLoop(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

func layeredBad(m, layer int, count uint64) uint64 {
	mask := conf.NthOfLayer(m, layer, 0)
	var sum uint64
	for i := uint64(0); i < count; i++ { // want `enumeration loop never charges the anytime budget`
		if i > 0 {
			mask = conf.NextOfLayer(mask)
		}
		sum += mask
	}
	return sum
}

func layeredCharged(m, layer int, count uint64, ctl *anytime.Ctl) uint64 {
	mask := conf.NthOfLayer(m, layer, 0)
	var sum uint64
	for i := uint64(0); i < count; i++ {
		if !ctl.Charge(1, 0) {
			break
		}
		if i > 0 {
			mask = conf.NextOfLayer(mask)
		}
		sum += mask
	}
	return sum
}

func plainConfHelperLoop(totals []uint64) int {
	n := 0
	for _, t := range totals {
		n += len(conf.Split(t, 8))
	}
	return n
}
