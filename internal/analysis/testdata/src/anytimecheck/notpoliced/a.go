// Package notpoliced sits outside the policed set: the same unbudgeted
// enumeration that fires in core must stay silent here.
package notpoliced

func enumerateAll(k int) int {
	n := 0
	for e := uint64(0); e < uint64(1)<<uint(k); e++ {
		n += int(e)
	}
	return n
}
