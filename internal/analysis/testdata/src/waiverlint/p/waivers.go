package p

import "context"

func loops(items []int) int {
	s := 0
	//flowrelvet:unbounded bounded by construction: len(items) <= 8 here (reviewed: PR-3)
	for _, it := range items {
		s += it
	}
	//flowrelvet:unbounded // want `missing a rationale` `missing its review tag`
	for i := 0; i < 8; i++ {
		s += i
	}
	//flowrelvet:unbounded tiny fixed walk // want `missing its review tag`
	for i := 0; i < 8; i++ {
		s += i
	}
	return s
}

//flowrelvet:unbounded the loop this excused is long gone (reviewed: PR-2) // want `orphaned flowrelvet:unbounded`
var notALoop = 3

//flowrelvet:bogus something plausible (reviewed: PR-1) // want `unknown flowrelvet marker`
func g() {}

func compares(a, b float64) bool {
	//flowrelvet:exactfloat bit-identity is the property under test (reviewed: PR-5)
	return a == b
}

func orphanFloat(a, b float64) float64 {
	//flowrelvet:exactfloat nothing below compares floats (reviewed: PR-5) // want `orphaned flowrelvet:exactfloat`
	return a + b
}

func background() context.Context {
	//flowrelvet:context this helper owns its own lifetime (reviewed: PR-2)
	return context.Background()
}

func orphanContext() int {
	//flowrelvet:context the call this excused was inlined away (reviewed: PR-2) // want `orphaned flowrelvet:context`
	return 7
}

//flowrelvet:hotpath placement is hotalloc's job, hygiene is ours // want `missing its review tag`
func hot(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
