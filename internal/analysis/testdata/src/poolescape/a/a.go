// Package a is the poolescape fixture.
package a

import "sync"

type buf struct{ xs []float64 }

var pool = sync.Pool{New: func() any { return new(buf) }}

var retained *buf

func good(n int) float64 {
	v := pool.Get().(*buf)
	defer pool.Put(v)
	v.xs = v.xs[:0]
	return float64(n)
}

func neverPut() {
	v := pool.Get().(*buf) // want `pooled v is never Put back`
	v.xs = nil
}

func putMissedOnPath(cond bool) int {
	v := pool.Get().(*buf) // want `pooled v is not Put back on all paths: a return precedes the Put`
	if cond {
		return 0
	}
	pool.Put(v)
	return 1
}

func plainPutBeforeAnyReturn(cond bool) int {
	v := pool.Get().(*buf)
	v.xs = append(v.xs[:0], 1)
	pool.Put(v)
	if cond {
		return 0
	}
	return 1
}

func escapes() *buf {
	v := pool.Get().(*buf) // want `pooled v is never Put back`
	return v               // want `pooled v escapes via return`
}

func stored() {
	v := pool.Get().(*buf)
	defer pool.Put(v)
	retained = v // want `pooled v stored into a retained location`
}

func closureReturnIsNotAnExit() func() int {
	v := pool.Get().(*buf)
	f := func() int { return len(v.xs) }
	pool.Put(v)
	return f
}

// workerLoopScratch is the batch-kernel dispatch shape: each worker
// goroutine checks out one scratch for its whole drain loop and returns
// it on the way out. The Get/defer-Put pair lives inside the goroutine
// closure, not the spawning function.
func workerLoopScratch(items []float64) {
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := pool.Get().(*buf)
			defer pool.Put(v)
			for range items {
				v.xs = v.xs[:0]
			}
		}()
	}
	wg.Wait()
}

// workerLoopLeak is the same shape with the Put forgotten: one scratch
// leaks per worker, not per batch item.
func workerLoopLeak(items []float64) {
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := pool.Get().(*buf) // want `pooled v is never Put back`
			for range items {
				v.xs = v.xs[:0]
			}
		}()
	}
	wg.Wait()
}
