// Package a is the floateq fixture.
package a

// Report mirrors the solver's result shape: its name alone marks every
// field selection off it as reliability-carrying.
type Report struct {
	Reliability float64
	Lo, Hi      float64
	N           float64
}

func compare(a, b Report, pFail, x, y float64) []bool {
	return []bool{
		a.Reliability == b.Reliability, // want `exact == between reliability floats`
		pFail != 0.3,                   // want `exact != between reliability floats`
		a.Lo == b.Hi,                   // want `exact == between reliability floats`
		a.N == b.N,                     // want `exact == between reliability floats`
		x == y,                         // bland names, no reliability vocabulary: fine
		pFail == 0,                     // exact sentinel: conditioning sets probabilities to 0
		a.Reliability == 1,             // exact sentinel: certainly-live
	}
}

func waived(a, b Report) bool {
	//flowrelvet:exactfloat fixture: bit-identity across worker counts is the property under test
	return a.Reliability == b.Reliability
}

func intsAreFine(n, m int) bool {
	return n == m
}
