// Package engine is the ctlthread fixture for the generic entry-point
// and context.Background rules.
package engine

import (
	"context"

	"anytime"
)

// Options mirrors the solver's options struct: a Ctl one level down
// makes a signature cancellable.
type Options struct {
	Parallelism int
	Ctl         *anytime.Ctl
}

// Plan is a stand-in compile artifact.
type Plan struct{ terms []float64 }

func ComputeBad(k int) float64 { // want `exported solver entry point ComputeBad accepts no context.Context or \*anytime.Ctl`
	return float64(k)
}

func ComputeGood(ctx context.Context, k int) float64 {
	_ = ctx
	return float64(k)
}

func CompileWithOptions(o Options) (*Plan, error) {
	_ = o
	return &Plan{}, nil
}

// Solve delegates to SolveCtx: the one position where calling
// context.Background() in library code is legal.
func Solve(k int) float64 {
	return SolveCtx(context.Background(), k)
}

func SolveCtx(ctx context.Context, k int) float64 {
	_ = ctx
	return float64(k)
}

func leak() {
	ctx := context.Background() // want `context.Background\(\) in library code discards the caller's cancellation`
	_ = ctx
}

func waived() {
	//flowrelvet:context fixture: this path is only reachable from the CLI root
	ctx := context.Background()
	_ = ctx
}
