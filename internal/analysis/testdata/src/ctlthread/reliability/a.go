// Package reliability is the ctlthread fixture for the engine rule: in
// a package whose path ends in "reliability", every exported function
// returning a named Result or Estimate is a solver entry point.
package reliability

import "anytime"

// Result mirrors the solver's result shape.
type Result struct {
	Reliability float64
	Partial     bool
}

// Options carries the controller.
type Options struct{ Ctl *anytime.Ctl }

func Naive(k int, opt Options) (Result, error) {
	_ = opt
	return Result{}, nil
}

func Exhaustive(k int) (Result, error) { // want `exported solver entry point Exhaustive accepts no context.Context or \*anytime.Ctl`
	return Result{}, nil
}

// Walk has a cancellable sibling WalkOpt: the Compute/ComputeCtx
// convenience-pair pattern.
func Walk(k int) (Result, error) {
	return WalkOpt(k, Options{})
}

func WalkOpt(k int, opt Options) (Result, error) {
	_ = opt
	return Result{}, nil
}

func montecarlo(k int) Result { // unexported: not an entry point
	return Result{}
}

// Helper returns no Result: not an engine.
func Helper(k int) int { return k + 1 }
