// Package conf is a fixture mock of the enumeration-splitting helpers;
// a call to one of its popcount-layer iterators marks the calling loop
// as a lattice walk.
package conf

// NextOfLayer steps to the next mask with the same popcount.
func NextOfLayer(v uint64) uint64 {
	c := v & -v
	r := v + c
	return (((v ^ r) >> 2) / c) | r
}

// NthOfLayer returns the rank-th m-bit mask with k bits set.
func NthOfLayer(m, k int, rank uint64) uint64 { return rank }

// SplitLayer partitions a popcount layer into rank ranges.
func SplitLayer(m, layer int) [][2]uint64 { return nil }

// Split partitions a dense range; calling it does NOT classify a loop.
func Split(total uint64, chunks int) [][2]uint64 { return nil }
