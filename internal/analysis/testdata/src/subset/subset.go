// Package subset is a fixture mock of the subset-lattice kernels; a
// call into it marks the calling loop as an inclusion–exclusion walk.
package subset

// Submasks visits every submask of m.
func Submasks(m uint64, f func(uint64) bool) {
	for s := m; ; s = (s - 1) & m {
		if !f(s) || s == 0 {
			return
		}
	}
}

// SupersetZeta is a no-op stand-in for the zeta transform.
func SupersetZeta(xs []float64) {}
