package p

//flowrelvet:hotpath benchmarks are not built by the gate // want `test file`
func hotTestOnly(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
