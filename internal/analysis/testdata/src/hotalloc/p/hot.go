package p

//flowrelvet:hotpath inner accumulation loop, no allocations (reviewed: PR-8)
func hot(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// A longer doc comment carrying the annotation mid-group is fine too.
//
//flowrelvet:hotpath scatter loop over a caller-owned buffer (reviewed: PR-8)
func hotDoc(dst, src []float64) {
	for i := range dst {
		dst[i] = src[i]
	}
}

//flowrelvet:hotpath stray annotation gating nothing // want `not attached to a function`
var notAFunc = 3

//flowrelvet:hotpath stub has nothing to gate // want `declaration without a body`
func stub(xs []float64) float64
