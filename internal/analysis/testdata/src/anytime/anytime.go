// Package anytime is a fixture mock of the real anytime controller:
// just enough surface for the analyzers' type-based checks. The import
// path tail "anytime" is what the analyzers match on, so fixtures
// exercise the same code paths as flowrel/internal/anytime.
package anytime

// Ctl is the mock controller.
type Ctl struct{ stopped bool }

// Check reports whether the computation may continue.
func (c *Ctl) Check() bool { return !c.stopped }

// Charge adds work to the budget and reports whether to continue.
func (c *Ctl) Charge(configs uint64, calls int64) bool { return !c.stopped }

// Stopped reports whether the controller has tripped.
func (c *Ctl) Stopped() bool { return c.stopped }
