// Fixture assembly exercising every asmguard rule.

#include "textflag.h"

TEXT ·goodAVX(SB), NOSPLIT, $0-16
	MOVQ   dst+0(FP), DI
	MOVQ   n+8(FP), CX
	VMULPD Y0, Y0, Y0
	VZEROUPPER
	RET

TEXT ·badSizeAVX(SB), NOSPLIT, $0-24 // want `declares arg size 24 but its Go signature lays out 16`
	MOVQ   dst+0(FP), DI
	VMULPD Y0, Y0, Y0
	RET

TEXT ·noSplitAVX(SB), $0-16 // want `not NOSPLIT`
	MOVQ   dst+0(FP), DI
	VMULPD Y0, Y0, Y0
	RET

TEXT ·fmaAVX(SB), NOSPLIT, $0-16
	MOVQ        dst+0(FP), DI
	VFMADD231PD Y0, Y1, Y2 // want `FMA opcode VFMADD231PD`
	RET

TEXT ·lonelyAVX(SB), NOSPLIT, $0-16 // want `no portable twin`
	MOVQ   dst+0(FP), DI
	VMULPD Y0, Y0, Y0
	RET

TEXT ·unwiredAVX(SB), NOSPLIT, $0-16 // want `not both referenced by any dispatch function`
	MOVQ   dst+0(FP), DI
	VMULPD Y0, Y0, Y0
	RET

TEXT ·probe(SB), NOSPLIT, $0-8
	XORL CX, CX
	MOVL AX, lo+0(FP)
	MOVL DX, hi+4(FP)
	RET

TEXT ·ghost(SB), NOSPLIT, $0-8 // want `no Go stub`
	MOVL AX, ret+0(FP)
	RET
