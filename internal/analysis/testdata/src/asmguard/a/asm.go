package a

type block8 [8]float64

var hasAVX bool

// Backed by TEXT, correct sizes, portable twin, dispatcher below: clean.
//
//go:noescape
func goodAVX(dst *block8, n int)

// TEXT declares 24 arg bytes; the signature lays out 16.
//
//go:noescape
func badSizeAVX(dst *block8, n int)

// TEXT omits NOSPLIT.
//
//go:noescape
func noSplitAVX(dst *block8, n int)

// TEXT body uses a fused multiply-add.
//
//go:noescape
func fmaAVX(dst *block8, n int)

// Vector routine with no <base>Go twin anywhere in the package.
//
//go:noescape
func lonelyAVX(dst *block8, n int)

// Integer-only feature probe: exempt from the twin rule.
func probe() (lo, hi uint32)

// Stub with no TEXT behind it: a link error caught at vet time.
func ghostStub(dst *block8, n int) // want `no TEXT implementation`

func goodGo(dst *block8, n int) {
	for i := 0; i < n; i++ {
		dst[0] *= 2
	}
}

func badSizeGo(dst *block8, n int)  { goodGo(dst, n) }
func noSplitGo(dst *block8, n int)  { goodGo(dst, n) }
func fmaGo(dst *block8, n int)      { goodGo(dst, n) }
func unwiredGo(dst *block8, n int)  { goodGo(dst, n) }
func unwiredAVX(dst *block8, n int) // twin exists but nothing dispatches over both

func dispatch(dst *block8, n int) {
	if hasAVX {
		goodAVX(dst, n)
		badSizeAVX(dst, n)
		noSplitAVX(dst, n)
		fmaAVX(dst, n)
		lonelyAVX(dst, n)
	} else {
		goodGo(dst, n)
		badSizeGo(dst, n)
		noSplitGo(dst, n)
		fmaGo(dst, n)
	}
	_, _ = probe()
}
