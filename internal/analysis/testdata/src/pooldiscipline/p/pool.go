package p

import (
	"sync"
	"sync/atomic"
)

var scratchPool = sync.Pool{New: func() any { return new([]float64) }}

// runPool mirrors the core worker pool: a bounded set of workers pulling
// item indices off one shared atomic counter.
func runPool(workers int, worker func(next *atomic.Int64)) {
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		worker(&next)
	}
}

func cleanWorkers(dst []float64, items [][]float64) {
	runPool(4, func(next *atomic.Int64) {
		buf := scratchPool.Get().(*[]float64)
		defer scratchPool.Put(buf)
		for {
			i := next.Add(1) - 1
			if i >= int64(len(items)) {
				return
			}
			dst[i] = float64(len(items[i]))
		}
	})
}

func capturesLoopVar(batches [][][]float64) {
	for _, batch := range batches {
		runPool(2, func(next *atomic.Int64) {
			_ = batch // want `captures loop variable batch`
		})
	}
	for i := 0; i < len(batches); i++ {
		runPool(2, func(next *atomic.Int64) {
			_ = batches[i] // want `captures loop variable i`
		})
	}
}

var leakedScratch *[]float64

func scratchOutlivesPool(sink []*[]float64) {
	var kept *[]float64
	runPool(2, func(next *atomic.Int64) {
		buf := scratchPool.Get().(*[]float64)
		defer scratchPool.Put(buf)
		leakedScratch = buf // want `scratch buf escapes the worker`
		sink[0] = buf       // want `scratch buf escapes the worker`
		kept = buf          // want `scratch buf escapes the worker`
	})
	_ = kept
}

func counterCopies() {
	var next atomic.Int64
	snapshot := next // want `atomic.Int64 copied by value`
	_ = snapshot
	readCounter(next)     // want `copied by value into a call`
	next = atomic.Int64{} // want `non-atomic store to atomic.Int64`
	_ = next.Load()
}

func readCounter(c atomic.Int64) int64 { // want `atomic.Int64 passed by value`
	return c.Load()
}

func returnsCounter() atomic.Int64 { // want `atomic.Int64 passed by value`
	var c atomic.Int64
	return c // want `copied by value out of a return`
}
