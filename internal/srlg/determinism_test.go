package srlg

import (
	"math/rand"
	"testing"

	"flowrel/internal/graph"
	"flowrel/internal/testutil"
)

// TestMonteCarloRandDeterministic pins the injected-rng contract: the
// seed wrapper equals a fresh source with the same seed, so replaying a
// source state reproduces the estimate bit for bit.
func TestMonteCarloRandDeterministic(t *testing.T) {
	g, dem := twoParallel(0.2)
	groups := []Group{{PFail: 0.1, Links: []graph.EdgeID{0, 1}}}

	viaSeed, err := MonteCarlo(g, dem, groups, 5000, 9)
	if err != nil {
		t.Fatal(err)
	}
	viaRand, err := MonteCarloRand(g, dem, groups, 5000, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if !testutil.AlmostEqual(viaSeed.Reliability, viaRand.Reliability, 0) ||
		viaSeed.Admitting != viaRand.Admitting {
		t.Fatalf("seed wrapper %+v diverged from injected source %+v", viaSeed, viaRand)
	}

	if _, err := MonteCarloRand(g, dem, groups, 100, nil); err == nil {
		t.Fatal("MonteCarloRand accepted a nil rng")
	}
}
