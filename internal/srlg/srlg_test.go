package srlg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"flowrel/internal/bitset"
	"flowrel/internal/graph"
	"flowrel/internal/reliability"
)

func twoParallel(p float64) (*graph.Graph, graph.Demand) {
	b := graph.NewBuilder()
	s := b.AddNode()
	t := b.AddNode()
	b.AddEdge(s, t, 1, p)
	b.AddEdge(s, t, 1, p)
	return b.MustBuild(), graph.Demand{S: s, T: t, D: 1}
}

func TestNoGroupsMatchesPlain(t *testing.T) {
	g, dem := twoParallel(0.3)
	plain, err := reliability.Naive(g, dem, reliability.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Reliability(g, dem, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-plain.Reliability) > 1e-12 {
		t.Fatalf("no-group %g vs plain %g", r, plain.Reliability)
	}
}

func TestSharedConduitHandComputed(t *testing.T) {
	// Two parallel links, own p = 0.1 each, sharing a conduit that fails
	// with probability 0.2. R = 0.8 · (1 - 0.1²) = 0.792.
	g, dem := twoParallel(0.1)
	groups := []Group{{PFail: 0.2, Links: []graph.EdgeID{0, 1}}}
	r, err := Reliability(g, dem, groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.8 * (1 - 0.01)
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("R = %g, want %g", r, want)
	}
	// Correlation destroys most of the redundancy: independence would
	// give 0.99·…, the conduit caps it at 0.8·0.99.
	plain, _ := reliability.Naive(g, dem, reliability.Options{})
	if r >= plain.Reliability {
		t.Fatal("correlated failure should reduce reliability")
	}
}

func TestZeroProbGroupNoEffect(t *testing.T) {
	g, dem := twoParallel(0.25)
	plain, _ := reliability.Naive(g, dem, reliability.Options{})
	r, err := Reliability(g, dem, []Group{{PFail: 0, Links: []graph.EdgeID{0}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-plain.Reliability) > 1e-12 {
		t.Fatalf("p=0 group changed result: %g vs %g", r, plain.Reliability)
	}
}

func TestGroupCoveringEverything(t *testing.T) {
	g, dem := twoParallel(0.1)
	groups := []Group{{PFail: 0.5, Links: []graph.EdgeID{0, 1}}}
	r, err := Reliability(g, dem, groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.5 * (1 - 0.01)
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("R = %g, want %g", r, want)
	}
}

func TestErrors(t *testing.T) {
	g, dem := twoParallel(0.1)
	if _, err := Reliability(nil, dem, nil, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := Reliability(g, graph.Demand{S: 0, T: 0, D: 1}, nil, nil); err == nil {
		t.Fatal("bad demand accepted")
	}
	bad := [][]Group{
		{{PFail: 1.0, Links: []graph.EdgeID{0}}},
		{{PFail: -0.1, Links: []graph.EdgeID{0}}},
		{{PFail: 0.1, Links: nil}},
		{{PFail: 0.1, Links: []graph.EdgeID{99}}},
	}
	for _, groups := range bad {
		if _, err := Reliability(g, dem, groups, nil); err == nil {
			t.Fatalf("bad groups %+v accepted", groups)
		}
	}
	many := make([]Group, MaxGroups+1)
	for i := range many {
		many[i] = Group{PFail: 0.1, Links: []graph.EdgeID{0}}
	}
	if _, err := Reliability(g, dem, many, nil); err == nil {
		t.Fatal("too many groups accepted")
	}
	if _, err := MonteCarlo(g, dem, nil, 0, 1); err == nil {
		t.Fatal("zero samples accepted")
	}
}

// bruteForce jointly enumerates link states AND group states, deciding
// admission per joint state — an independent implementation to check the
// conditioning.
func bruteForce(t *testing.T, g *graph.Graph, dem graph.Demand, groups []Group) float64 {
	t.Helper()
	m := g.NumEdges()
	total := 0.0
	for ls := uint64(0); ls < 1<<uint(m); ls++ {
		pl := 1.0
		for i, e := range g.Edges() {
			if ls&(1<<uint(i)) != 0 {
				pl *= 1 - e.PFail
			} else {
				pl *= e.PFail
			}
		}
		for gs := uint64(0); gs < 1<<uint(len(groups)); gs++ {
			pg := 1.0
			alive := bitset.FromMask(m, ls)
			for gi, grp := range groups {
				if gs&(1<<uint(gi)) != 0 {
					pg *= grp.PFail
					for _, eid := range grp.Links {
						alive.Clear(int(eid))
					}
				} else {
					pg *= 1 - grp.PFail
				}
			}
			ok, err := reliability.Admits(g, dem, alive.Mask())
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				total += pl * pg
			}
		}
	}
	return total
}

// Property: conditioning matches the joint brute force, and Monte Carlo
// agrees within 5σ.
func TestQuickAgainstJointBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(7)
		b := graph.NewBuilder()
		b.AddNodes(n)
		for i := 0; i < m; i++ {
			u := graph.NodeID(rng.Intn(n))
			v := graph.NodeID(rng.Intn(n))
			for v == u {
				v = graph.NodeID(rng.Intn(n))
			}
			b.AddEdge(u, v, 1+rng.Intn(2), rng.Float64()*0.8)
		}
		g := b.MustBuild()
		dem := graph.Demand{S: 0, T: graph.NodeID(n - 1), D: 1 + rng.Intn(2)}
		nGroups := rng.Intn(3)
		groups := make([]Group, nGroups)
		for gi := range groups {
			sz := 1 + rng.Intn(m)
			links := make([]graph.EdgeID, 0, sz)
			for len(links) < sz {
				links = append(links, graph.EdgeID(rng.Intn(m)))
			}
			groups[gi] = Group{PFail: rng.Float64() * 0.6, Links: links}
		}
		want := bruteForce(t, g, dem, groups)
		got, err := Reliability(g, dem, groups, nil)
		if err != nil {
			return false
		}
		if math.Abs(got-want) > 1e-9 {
			t.Logf("seed %d: cond %.12f brute %.12f", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMonteCarloAgrees(t *testing.T) {
	g, dem := twoParallel(0.1)
	groups := []Group{{PFail: 0.2, Links: []graph.EdgeID{0, 1}}}
	exact, err := Reliability(g, dem, groups, nil)
	if err != nil {
		t.Fatal(err)
	}
	est, err := MonteCarlo(g, dem, groups, 60000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Reliability-exact) > 5*est.StdErr+1e-9 {
		t.Fatalf("MC %g vs exact %g", est.Reliability, exact)
	}
}

// Property: adding a group never increases reliability.
func TestQuickGroupsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, dem := twoParallel(0.1 + rng.Float64()*0.3)
		base, err := Reliability(g, dem, nil, nil)
		if err != nil {
			return false
		}
		groups := []Group{{PFail: rng.Float64() * 0.9, Links: []graph.EdgeID{graph.EdgeID(rng.Intn(2))}}}
		withGroup, err := Reliability(g, dem, groups, nil)
		if err != nil {
			return false
		}
		return withGroup <= base+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
