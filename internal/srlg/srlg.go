// Package srlg adds shared-risk link groups to the failure model: a group
// of links that fails together (a shared conduit, a common ISP, one
// physical host carrying several overlay links), on top of each link's own
// independent failure. Correlated failures are what make bottleneck links
// genuinely dangerous in practice — two cross-cluster links in the same
// trench are nowhere near as redundant as independence suggests — and they
// cannot be expressed in the paper's independent-link model.
//
// The computation conditions on the 2^g group states (the paper's
// assumption that interesting structure is small carries over: g is the
// number of *groups*, typically a handful): in each state the failed
// groups' links are removed outright and the surviving instance — whose
// links keep their independent probabilities — is handed to any exact
// engine. The law of total probability combines the states.
package srlg

import (
	"fmt"
	"math"
	"math/rand"

	"flowrel/internal/core"
	"flowrel/internal/graph"
	"flowrel/internal/maxflow"
	"flowrel/internal/reliability"
)

// Group is a shared-risk link group.
type Group struct {
	// PFail is the probability the whole group goes down together.
	PFail float64
	// Links are the member links; a link may belong to several groups
	// (it fails if any of them does, or by itself).
	Links []graph.EdgeID
}

// MaxGroups bounds the conditioning (2^g states).
const MaxGroups = 20

// Engine computes the reliability of an independent-failure instance; the
// conditional sub-instances are delegated to it. Use an exact engine.
type Engine func(g *graph.Graph, dem graph.Demand) (float64, error)

// FactoringEngine is the default conditional engine.
func FactoringEngine(g *graph.Graph, dem graph.Demand) (float64, error) {
	res, err := reliability.Factoring(g, dem, reliability.Options{})
	return res.Reliability, err
}

func validateGroups(g *graph.Graph, groups []Group) error {
	if len(groups) > MaxGroups {
		return fmt.Errorf("srlg: %d groups exceed the supported maximum %d", len(groups), MaxGroups)
	}
	for gi, grp := range groups {
		if grp.PFail < 0 || grp.PFail >= 1 {
			return fmt.Errorf("srlg: group %d failure probability %g outside [0,1)", gi, grp.PFail)
		}
		if len(grp.Links) == 0 {
			return fmt.Errorf("srlg: group %d is empty", gi)
		}
		for _, eid := range grp.Links {
			if eid < 0 || int(eid) >= g.NumEdges() {
				return fmt.Errorf("srlg: group %d contains unknown link %d", gi, eid)
			}
		}
	}
	return nil
}

// Reliability computes the exact reliability under the group model by
// conditioning on group states and delegating each conditional instance to
// engine (nil means the compiled-plan fast path when the instance admits
// the bottleneck decomposition, FactoringEngine otherwise). On the plan
// path the structure is compiled once and every group state is one
// probability evaluation — a failed group's links get p = 1, which is
// exactly link removal — so the 2^g conditioning runs without a single
// extra max-flow call.
func Reliability(g *graph.Graph, dem graph.Demand, groups []Group, engine Engine) (float64, error) {
	if g == nil {
		return 0, fmt.Errorf("srlg: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return 0, err
	}
	if err := validateGroups(g, groups); err != nil {
		return 0, err
	}
	if engine == nil {
		if plan, err := core.Compile(g, dem, core.Options{}); err == nil {
			return reliabilityFromPlan(plan, groups)
		}
		engine = FactoringEngine
	}
	total := 0.0
	//flowrelvet:unbounded each of the 2^g group states delegates to a conditional engine run that enforces its own budget (reviewed: PR-3)
	for state := uint64(0); state < uint64(1)<<uint(len(groups)); state++ {
		pState := 1.0
		down := make([]bool, g.NumEdges())
		for gi, grp := range groups {
			if state&(1<<uint(gi)) != 0 {
				pState *= grp.PFail
				for _, eid := range grp.Links {
					down[eid] = true
				}
			} else {
				pState *= 1 - grp.PFail
			}
		}
		if pState == 0 {
			continue
		}
		cond, nodeMapOK := conditional(g, down)
		if !nodeMapOK {
			// No link survives the state at all; the demand fails.
			continue
		}
		r, err := engine(cond, dem)
		if err != nil {
			return 0, fmt.Errorf("srlg: conditional engine: %w", err)
		}
		total += pState * r
	}
	return total, nil
}

// reliabilityFromPlan conditions on the 2^g group states against one
// compiled plan: each state's scenario is the base probability vector with
// the failed groups' links forced down (p = 1), and the states evaluate in
// parallel.
func reliabilityFromPlan(plan *core.Plan, groups []Group) (float64, error) {
	base := plan.BasePFail()
	states := uint64(1) << uint(len(groups))
	weights := make([]float64, 0, states)
	scenarios := make([][]float64, 0, states)
	for state := uint64(0); state < states; state++ {
		pState := 1.0
		for gi, grp := range groups {
			if state&(1<<uint(gi)) != 0 {
				pState *= grp.PFail
			} else {
				pState *= 1 - grp.PFail
			}
		}
		if pState == 0 {
			continue
		}
		pf := append([]float64(nil), base...)
		for gi, grp := range groups {
			if state&(1<<uint(gi)) != 0 {
				for _, eid := range grp.Links {
					pf[eid] = 1
				}
			}
		}
		weights = append(weights, pState)
		scenarios = append(scenarios, pf)
	}
	rs := make([]float64, len(scenarios))
	if err := plan.EvalBatchInto(rs, scenarios, core.BatchOptions{}); err != nil {
		return 0, err
	}
	total := 0.0
	for i, r := range rs {
		total += weights[i] * r
	}
	return total, nil
}

// conditional builds the instance with the down links removed. Node IDs
// are preserved (only links are dropped), so the demand carries over. The
// second return is false when no links remain and the demand is trivially
// infeasible.
func conditional(g *graph.Graph, down []bool) (*graph.Graph, bool) {
	b := graph.NewBuilder()
	for i := 0; i < g.NumNodes(); i++ {
		b.AddNamedNode(g.NodeName(graph.NodeID(i)))
	}
	kept := 0
	for _, e := range g.Edges() {
		if !down[e.ID] {
			b.AddEdge(e.U, e.V, e.Cap, e.PFail)
			kept++
		}
	}
	if kept == 0 {
		return nil, false
	}
	return b.MustBuild(), true
}

// MonteCarlo estimates the group-model reliability by sampling group and
// link states jointly; deterministic per seed.
func MonteCarlo(g *graph.Graph, dem graph.Demand, groups []Group, samples int, seed int64) (reliability.Estimate, error) {
	return MonteCarloRand(g, dem, groups, samples, rand.New(rand.NewSource(seed)))
}

// MonteCarloRand is MonteCarlo drawing its group and link states from an
// injected random source, so callers can share or substitute the stream
// while keeping runs reproducible.
func MonteCarloRand(g *graph.Graph, dem graph.Demand, groups []Group, samples int, rng *rand.Rand) (reliability.Estimate, error) {
	if rng == nil {
		return reliability.Estimate{}, fmt.Errorf("srlg: MonteCarloRand wants a non-nil rng")
	}
	if g == nil {
		return reliability.Estimate{}, fmt.Errorf("srlg: nil graph")
	}
	if err := dem.Validate(g); err != nil {
		return reliability.Estimate{}, err
	}
	if err := validateGroups(g, groups); err != nil {
		return reliability.Estimate{}, err
	}
	if samples < 1 {
		return reliability.Estimate{}, fmt.Errorf("srlg: sample count %d must be ≥ 1", samples)
	}
	nw, handles := maxflow.FromGraph(g)
	pFail := make([]float64, g.NumEdges())
	for i, e := range g.Edges() {
		pFail[i] = e.PFail
	}
	down := make([]bool, g.NumEdges())
	hits := 0
	for i := 0; i < samples; i++ {
		for j := range down {
			down[j] = rng.Float64() < pFail[j]
		}
		for _, grp := range groups {
			if rng.Float64() < grp.PFail {
				for _, eid := range grp.Links {
					down[eid] = true
				}
			}
		}
		for j := range handles {
			nw.SetEnabled(handles[j], !down[j])
		}
		if nw.MaxFlow(int32(dem.S), int32(dem.T), dem.D) >= dem.D {
			hits++
		}
	}
	p := float64(hits) / float64(samples)
	return reliability.Estimate{
		Reliability: p,
		StdErr:      math.Sqrt(p * (1 - p) / float64(samples)),
		Samples:     samples,
		Admitting:   hits,
	}, nil
}
