package flowrel

import "testing"

// TestFrontierPruningA3 is the CI bench-smoke assertion for the frontier
// side engine on the A3 instance (overlay.Clustered side=6, 20 links,
// d=2): the monotone pruning must actually bite. The engine has to pay
// strictly fewer max-flow calls than the configurations it decides —
// and stay under 30% of the dense |𝒟|·2^m pair count the binary engine
// would solve — with both pruning counters contributing.
func TestFrontierPruningA3(t *testing.T) {
	g, dem, cut := clusteredInstance(t, 6)
	ResetPlanCache()
	rep, err := Compute(g, dem, Config{Engine: EngineCore, Bottleneck: cut, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Stats
	if s == nil || s.PlanCacheHit {
		t.Fatalf("want a cold compile with stats, got %+v", s)
	}
	if s.FrontierMaxFlowCalls <= 0 {
		t.Fatalf("frontier engine did not run: frontier_max_flow_calls = %d", s.FrontierMaxFlowCalls)
	}
	if s.FrontierMaxFlowCalls >= int64(s.Configs) {
		t.Errorf("frontier paid %d max-flow calls over %d configurations; want strictly fewer",
			s.FrontierMaxFlowCalls, s.Configs)
	}
	densePairs := int64(len(rep.Assignments)) * int64(s.Configs)
	if limit := 30 * densePairs / 100; s.FrontierMaxFlowCalls >= limit {
		t.Errorf("frontier paid %d max-flow calls; want < 30%% of the %d dense pairs (%d)",
			s.FrontierMaxFlowCalls, densePairs, limit)
	}
	if s.PrunedCapacity == 0 || s.PrunedClosure == 0 {
		t.Errorf("expected both pruning filters to fire: pruned_capacity=%d pruned_closure=%d",
			s.PrunedCapacity, s.PrunedClosure)
	}
	t.Logf("A3: |𝒟|=%d configs=%d dense_pairs=%d frontier_calls=%d pruned_capacity=%d pruned_closure=%d",
		len(rep.Assignments), s.Configs, densePairs,
		s.FrontierMaxFlowCalls, s.PrunedCapacity, s.PrunedClosure)
}
