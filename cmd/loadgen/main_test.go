package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubServer fakes just enough of the relcalcd API for the driver: ready
// after `notReadyFor` probes, a fixed handle on submit, and configurable
// eval behaviour.
type stubServer struct {
	notReadyFor  int32
	evalStatus   int
	batchStatus  int
	evals        atomic.Int64
	batches      atomic.Int64
	readyzProbes atomic.Int64
}

func (s *stubServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.readyzProbes.Add(1) <= int64(s.notReadyFor) {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v1/topologies", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"handle": "stubhandle", "links": 9}) //nolint:errcheck
	})
	mux.HandleFunc("POST /v1/plans/{handle}/eval", func(w http.ResponseWriter, r *http.Request) {
		s.evals.Add(1)
		status := s.evalStatus
		if status == 0 {
			status = http.StatusOK
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]any{"reliability": 0.5}) //nolint:errcheck
	})
	mux.HandleFunc("POST /v1/plans/{handle}/evalbatch", func(w http.ResponseWriter, r *http.Request) {
		s.batches.Add(1)
		status := s.batchStatus
		if status == 0 {
			status = http.StatusOK
		}
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(map[string]any{"reliabilities": []float64{0.5}}) //nolint:errcheck
	})
	return mux
}

func runAgainst(t *testing.T, stub *stubServer, extraArgs ...string) summary {
	t.Helper()
	srv := httptest.NewServer(stub.handler())
	t.Cleanup(srv.Close)
	out := filepath.Join(t.TempDir(), "summary.json")
	args := append([]string{
		"-addr", strings.TrimPrefix(srv.URL, "http://"),
		"-topology", "../../testdata/figure2.g",
		"-duration", "300ms",
		"-warmup", "50ms",
		"-qps", "400",
		"-workers", "4",
		"-batch", "4",
		"-out", out,
	}, extraArgs...)
	if err := run(args, os.Stderr); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res summary
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatalf("summary is not valid JSON: %v\n%s", err, blob)
	}
	return res
}

// TestDriverHappyPath runs the closed loop against a healthy stub and
// checks the summary: traffic flowed, both request kinds were exercised,
// no errors, and the quantiles are ordered.
func TestDriverHappyPath(t *testing.T) {
	stub := &stubServer{notReadyFor: 2} // exercise the readyz poll too
	res := runAgainst(t, stub, "-mix", "0.3")

	if res.Requests == 0 {
		t.Fatal("no requests measured")
	}
	if res.Errors != 0 || res.ErrorRate != 0 {
		t.Errorf("errors=%d error_rate=%v against a healthy stub", res.Errors, res.ErrorRate)
	}
	if res.QPS <= 0 {
		t.Errorf("qps = %v, want > 0", res.QPS)
	}
	if res.P50US > res.P99US || res.P99US > res.MaxUS {
		t.Errorf("quantiles out of order: p50=%d p99=%d max=%d", res.P50US, res.P99US, res.MaxUS)
	}
	if stub.evals.Load() == 0 || stub.batches.Load() == 0 {
		t.Errorf("mix not exercised: %d evals, %d batches", stub.evals.Load(), stub.batches.Load())
	}
	if stub.readyzProbes.Load() < 3 {
		t.Errorf("readyz polled %d times, want ≥ 3 (two unready probes)", stub.readyzProbes.Load())
	}
}

// TestDriverCountsErrors makes the stub fail every eval and checks the
// error accounting feeds through to error_rate.
func TestDriverCountsErrors(t *testing.T) {
	stub := &stubServer{evalStatus: http.StatusInternalServerError}
	res := runAgainst(t, stub, "-mix", "0")

	if res.Requests == 0 {
		t.Fatal("no requests measured")
	}
	if res.Errors != res.Requests {
		t.Errorf("errors=%d of %d requests, want all", res.Errors, res.Requests)
	}
	if res.ErrorRate < 0.999 {
		t.Errorf("error_rate = %v, want 1", res.ErrorRate)
	}
}

// TestDriverRejectsBadFlags pins the flag validation.
func TestDriverRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-qps", "0"},
		{"-duration", "-1s"},
		{"-mix", "1.5"},
		{"-workers", "0"},
	} {
		if err := run(args, os.Stderr); err == nil {
			t.Errorf("run(%v) accepted invalid flags", args)
		}
	}
}

// TestDriverClosedLoopCeiling: with a slow stub and one worker, the
// measured rate stays near the service rate rather than the offered
// rate — the closed-loop property the admission gate relies on.
func TestDriverClosedLoopCeiling(t *testing.T) {
	stub := &stubServer{}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/readyz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		if r.URL.Path == "/v1/topologies" {
			json.NewEncoder(w).Encode(map[string]any{"handle": "h", "links": 2}) //nolint:errcheck
			return
		}
		time.Sleep(20 * time.Millisecond) // service rate ≈ 50/s per worker
		stub.evals.Add(1)
		json.NewEncoder(w).Encode(map[string]any{"reliability": 1}) //nolint:errcheck
	}))
	t.Cleanup(srv.Close)

	out := filepath.Join(t.TempDir(), "summary.json")
	err := run([]string{
		"-addr", strings.TrimPrefix(srv.URL, "http://"),
		"-topology", "../../testdata/figure2.g",
		"-duration", "400ms",
		"-warmup", "0s",
		"-qps", "5000", // offered far above what one slow worker can serve
		"-workers", "1",
		"-mix", "0",
		"-out", out,
	}, os.Stderr)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res summary
	if err := json.Unmarshal(blob, &res); err != nil {
		t.Fatal(err)
	}
	// One worker at ~50/s: anywhere near the 5000 target would mean the
	// client queued open-loop. Allow generous slack for scheduler noise.
	if res.QPS > 200 {
		t.Errorf("closed loop leaked: measured %.0f qps with a 50/s server", res.QPS)
	}
}
