// Command loadgen is the closed-loop load driver for relcalcd: it
// submits one topology, then fires a mixed eval/evalbatch workload at a
// target QPS for a fixed duration and reports the latency distribution
// as machine-readable JSON. The CI service-smoke job boots relcalcd on
// an ephemeral port, runs loadgen for a few seconds, and feeds the
// summary to benchgate, which fails the build when throughput drops or
// tail latency grows past the committed baseline.
//
// Closed-loop means each worker waits for its response before taking the
// next send token, so offered load never outruns the server by more than
// the worker count — the same discipline relcalcd's admission gate
// assumes of well-behaved clients.
//
// Usage:
//
//	loadgen -addr 127.0.0.1:8080 -topology testdata/figure4.g \
//	        -duration 5s -qps 2000 -batch 16 -mix 0.2 -out loadgen.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"flowrel"
	"flowrel/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// summary is the machine-readable result benchgate consumes.
type summary struct {
	DurationS float64 `json:"duration_s"`
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	QPS       float64 `json:"qps"`
	P50US     int64   `json:"p50_us"`
	P90US     int64   `json:"p90_us"`
	P99US     int64   `json:"p99_us"`
	MaxUS     int64   `json:"max_us"`
	ErrorRate float64 `json:"error_rate"`
}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "relcalcd address (host:port)")
		topoPath = fs.String("topology", "testdata/figure4.g", "topology file (.g text format) to submit")
		duration = fs.Duration("duration", 5*time.Second, "measurement window")
		qps      = fs.Float64("qps", 1000, "target request rate (closed-loop ceiling)")
		workers  = fs.Int("workers", 8, "concurrent client connections")
		batch    = fs.Int("batch", 16, "scenarios per evalbatch request")
		mix      = fs.Float64("mix", 0.2, "fraction of requests that are evalbatch (rest are single evals)")
		out      = fs.String("out", "", "write the JSON summary to this file (default stdout)")
		warmup   = fs.Duration("warmup", 500*time.Millisecond, "unmeasured warmup before the window")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *qps <= 0 || *workers < 1 || *duration <= 0 {
		return fmt.Errorf("need positive -qps, -workers and -duration")
	}
	if *mix < 0 || *mix > 1 {
		return fmt.Errorf("-mix must be in [0,1]")
	}

	base := "http://" + *addr
	client := &http.Client{Timeout: 10 * time.Second}

	if err := waitReady(client, base, 10*time.Second); err != nil {
		return err
	}
	handle, links, err := submitTopology(client, base, *topoPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "loadgen: plan %s (%d links), driving %.0f qps for %v (mix %.0f%% batch×%d)\n",
		handle, links, *qps, *duration, *mix*100, *batch)

	evalBody, batchBody, err := requestBodies(links, *batch)
	if err != nil {
		return err
	}

	res := drive(client, base, handle, driveConfig{
		Duration: *duration,
		Warmup:   *warmup,
		QPS:      *qps,
		Workers:  *workers,
		Mix:      *mix,
		Eval:     evalBody,
		Batch:    batchBody,
	})

	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return nil
	}
	return os.WriteFile(*out, blob, 0o644)
}

// waitReady polls /readyz until the server answers 200.
func waitReady(client *http.Client, base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server never became ready: %w", err)
			}
			return fmt.Errorf("server never became ready (last /readyz status %d)", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// submitTopology posts the .g file and returns the plan handle and link
// count (needed to size scenario vectors).
func submitTopology(client *http.Client, base, path string) (handle string, links int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	file, err := flowrel.ParseText(f)
	if err != nil {
		return "", 0, fmt.Errorf("parsing %s: %w", path, err)
	}
	topo, err := json.Marshal(file)
	if err != nil {
		return "", 0, err
	}
	body, err := json.Marshal(map[string]any{"topology": json.RawMessage(topo)})
	if err != nil {
		return "", 0, err
	}
	resp, err := client.Post(base+"/v1/topologies", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", 0, fmt.Errorf("submit: status %d: %s", resp.StatusCode, msg)
	}
	var sub struct {
		Handle string `json:"handle"`
		Links  int    `json:"links"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		return "", 0, err
	}
	return sub.Handle, sub.Links, nil
}

// requestBodies pre-encodes the eval and evalbatch payloads once; the
// driver reuses them for every request so encoding cost stays off the
// latency it measures. Scenarios perturb one link per scenario so the
// batch exercises distinct inputs rather than the memoised base case.
func requestBodies(links, batch int) (evalBody, batchBody []byte, err error) {
	evalBody, err = json.Marshal(map[string]any{})
	if err != nil {
		return nil, nil, err
	}
	scenarios := make([][]float64, batch)
	for i := range scenarios {
		v := make([]float64, links)
		v[i%links] = math.Min(0.9, 0.05*float64(i+1))
		scenarios[i] = v
	}
	batchBody, err = json.Marshal(map[string]any{"scenarios": scenarios})
	if err != nil {
		return nil, nil, err
	}
	return evalBody, batchBody, nil
}

type driveConfig struct {
	Duration time.Duration
	Warmup   time.Duration
	QPS      float64
	Workers  int
	Mix      float64
	Eval     []byte
	Batch    []byte
}

// drive runs the closed-loop workload and aggregates the summary. A
// ticker feeds send tokens at the target rate; each worker takes a
// token, fires one request, and records the latency — so when the server
// slows down, the offered rate drops with it instead of queueing
// unboundedly on the client.
func drive(client *http.Client, base, handle string, cfg driveConfig) summary {
	var (
		hist     stats.FineHistogram
		requests atomic.Int64
		errs     atomic.Int64
	)
	evalURL := base + "/v1/plans/" + handle + "/eval"
	batchURL := base + "/v1/plans/" + handle + "/evalbatch"

	// Sub-millisecond tickers coalesce under scheduler jitter and silently
	// underdeliver; pace at ≥ 1ms and release a batch of tokens per tick
	// instead.
	interval := time.Duration(float64(time.Second) / cfg.QPS)
	perTick := 1
	if interval < time.Millisecond {
		perTick = int(math.Ceil(float64(time.Millisecond) / float64(interval)))
		interval = time.Duration(float64(interval) * float64(perTick))
	}
	tokens := make(chan int, cfg.Workers+perTick)
	stop := make(chan struct{})

	var measuring atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := range tokens {
				url, body := evalURL, cfg.Eval
				// Deterministic mix, spread evenly through the sequence:
				// request seq is a batch exactly when the running total
				// ⌊seq·mix⌋ ticks up at this step.
				if math.Floor(float64(seq+1)*cfg.Mix) > math.Floor(float64(seq)*cfg.Mix) {
					url, body = batchURL, cfg.Batch
				}
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				elapsed := time.Since(start)
				ok := err == nil && resp.StatusCode == http.StatusOK
				if err == nil {
					io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
					resp.Body.Close()
				}
				if measuring.Load() {
					requests.Add(1)
					if ok {
						hist.Observe(elapsed.Microseconds())
					} else {
						errs.Add(1)
					}
				}
			}
		}()
	}

	// Token source: one token per interval; drop tokens nobody is free to
	// take (closed loop — the backlog never grows past the channel).
	ticker := time.NewTicker(interval)
	go func() {
		defer ticker.Stop()
		seq := 0
		for {
			select {
			case <-ticker.C:
				for i := 0; i < perTick; i++ {
					select {
					case tokens <- seq:
						seq++
					default:
					}
				}
			case <-stop:
				close(tokens)
				return
			}
		}
	}()

	time.Sleep(cfg.Warmup)
	measuring.Store(true)
	windowStart := time.Now()
	time.Sleep(cfg.Duration)
	measuring.Store(false)
	window := time.Since(windowStart)
	close(stop)
	wg.Wait()

	n := requests.Load()
	e := errs.Load()
	out := summary{
		DurationS: window.Seconds(),
		Requests:  n,
		Errors:    e,
		QPS:       float64(n) / window.Seconds(),
		P50US:     hist.Quantile(0.50),
		P90US:     hist.Quantile(0.90),
		P99US:     hist.Quantile(0.99),
		MaxUS:     hist.Max(),
	}
	if n > 0 {
		out.ErrorRate = float64(e) / float64(n)
	}
	return out
}
