package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchOutput fabricates three runs of the tracked benchmarks with the
// given eval ns/op values (other rows pinned at their baseline), plus
// noise rows the parser must skip.
func benchOutput(evals ...string) string {
	var sb strings.Builder
	sb.WriteString("goos: linux\ngoarch: amd64\npkg: flowrel\n")
	sb.WriteString("cpu: Intel(R) Xeon(R) Processor @ 2.10GHz\n")
	for _, e := range evals {
		sb.WriteString("BenchmarkPlanReuse/cold-compile-4   \t       2\t  700000 ns/op\n")
		sb.WriteString("BenchmarkPlanReuse/cached-compile-4 \t  100000\t    1000 ns/op\n")
		sb.WriteString("BenchmarkPlanReuse/eval-4           \t   20000\t    " + e + " ns/op\n")
		sb.WriteString("BenchmarkSweepModes/per-point-4     \t       1\t15000000 ns/op\n")
		sb.WriteString("BenchmarkSweepModes/planned-4       \t       1\t 1300000 ns/op\n")
		sb.WriteString("BenchmarkSideBuild/frontier-4       \t      10\t  120000 ns/op\n")
		sb.WriteString("BenchmarkEvalBatch/kernel-4         \t    5000\t  260000 ns/op\t 984615 scenarios/s\n")
		sb.WriteString("BenchmarkEvalBatch/scalar-4         \t     700\t 1600000 ns/op\t 160000 scenarios/s\n")
	}
	sb.WriteString("PASS\nok  \tflowrel\t2.0s\n")
	return sb.String()
}

func writeBaseline(t *testing.T, dir string) string {
	t.Helper()
	base := map[string]any{
		"description": "test baseline",
		"cpu":         "test",
		"go":          "1.22",
		"benchmarks": map[string]float64{
			"cold_solve_ns_per_op":     739985,
			"cached_compile_ns_per_op": 1111,
			"plan_eval_ns_per_op":      5852,
			"sweep20_before_ns_per_op": 15125986,
			"sweep20_after_ns_per_op":  1352561,
		},
	}
	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestGatePassesWithinTolerance(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir)
	out := filepath.Join(dir, "result.json")

	// Medians: eval median of {5000, 7000, 6000} = 6000, a 2.5% slowdown
	// over 5852 — inside the 30% tolerance.
	var buf strings.Builder
	err := run(
		[]string{"-baseline", baseline, "-out", out, "-tolerance", "0.30"},
		strings.NewReader(benchOutput("5000", "7000", "6000")),
		&buf,
	)
	if err != nil {
		t.Fatalf("gate failed inside tolerance: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "plan_eval_ns_per_op") {
		t.Errorf("report missing plan_eval row:\n%s", buf.String())
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res resultFile
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Benchmarks["plan_eval_ns_per_op"] != 6000 {
		t.Errorf("median = %v, want 6000 (middle of three runs)", res.Benchmarks["plan_eval_ns_per_op"])
	}
	if res.Runs != 3 {
		t.Errorf("runs = %d, want 3", res.Runs)
	}
	if res.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", res.CPU)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir)

	// Median eval 9000 ns/op is a 54% slowdown: past tolerance.
	var buf strings.Builder
	err := run(
		[]string{"-baseline", baseline, "-tolerance", "0.30"},
		strings.NewReader(benchOutput("9000", "9000", "9000")),
		&buf,
	)
	if err == nil {
		t.Fatalf("gate passed a 54%% regression:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "plan_eval_ns_per_op") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", buf.String())
	}
}

func TestGateRejectsMissingSamples(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir)
	var buf strings.Builder
	err := run([]string{"-baseline", baseline}, strings.NewReader("PASS\n"), &buf)
	if err == nil || !strings.Contains(err.Error(), "no samples") {
		t.Errorf("empty bench output must fail the gate, got %v", err)
	}
}

func TestMedianOneOutlierDoesNotTrip(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir)
	// One preempted run at 60000 ns/op among five normal ones: the
	// median ignores it.
	var buf strings.Builder
	err := run(
		[]string{"-baseline", baseline},
		strings.NewReader(benchOutput("5800", "5900", "60000", "5850", "5900")),
		&buf,
	)
	if err != nil {
		t.Fatalf("one outlier tripped the gate: %v", err)
	}
}

// A tracked benchmark absent from the baseline is reported as "new" and
// never gates: the test baseline predates side_build_ns_per_op, and a
// wild measured value for it must not trip the run.
func TestNewBenchmarkDoesNotGate(t *testing.T) {
	dir := t.TempDir()
	baseline := writeBaseline(t, dir)
	var buf strings.Builder
	err := run(
		[]string{"-baseline", baseline},
		strings.NewReader(benchOutput("5800", "5900", "5850")),
		&buf,
	)
	if err != nil {
		t.Fatalf("new benchmark tripped the gate: %v\n%s", err, buf.String())
	}
	report := buf.String()
	if !strings.Contains(report, "side_build_ns_per_op") || !strings.Contains(report, "new") {
		t.Errorf("report does not mark the unbaselined benchmark as new:\n%s", report)
	}
}

func TestNewestBaseline(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"BENCH_2.json", "BENCH_4.json", "BENCH_10.json", "BENCH_x.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, lingering, err := newestBaseline(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Numeric order, not lexicographic: 10 > 4 even though "10" < "4".
	if got != "BENCH_10.json" {
		t.Errorf("newestBaseline = %q, want BENCH_10.json", got)
	}
	// Retention is newest + one prior: BENCH_2 is superseded twice over.
	if len(lingering) != 1 || lingering[0] != "BENCH_2.json" {
		t.Errorf("lingering = %v, want [BENCH_2.json]", lingering)
	}
	if _, _, err := newestBaseline(t.TempDir()); err == nil {
		t.Error("empty directory must be an error, not a silent default")
	}
}

// Alloc medians gate absolutely: a zero baseline fails on the first
// allocation regardless of tolerance, and runs without -benchmem leave
// the alloc keys unmeasured rather than erroring.
func TestAllocGateAbsolute(t *testing.T) {
	dir := t.TempDir()
	base := map[string]any{
		"description": "test baseline",
		"benchmarks": map[string]float64{
			"plan_eval_ns_per_op": 5852,
			"eval_allocs_per_op":  0,
		},
	}
	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	baseline := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(baseline, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	withMem := func(allocs string) string {
		out := benchOutput("5800", "5900", "5850")
		return strings.ReplaceAll(out, " ns/op\n",
			" ns/op\t       0 B/op\t       "+allocs+" allocs/op\n")
	}

	var buf strings.Builder
	if err := run([]string{"-baseline", baseline, "-tolerance", "10.0"},
		strings.NewReader(withMem("0")), &buf); err != nil {
		t.Fatalf("zero allocs tripped the gate: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "eval_allocs_per_op") {
		t.Errorf("report missing the alloc row:\n%s", buf.String())
	}

	buf.Reset()
	err = run([]string{"-baseline", baseline, "-tolerance", "10.0"},
		strings.NewReader(withMem("1")), &buf)
	if err == nil || !strings.Contains(err.Error(), "eval_allocs_per_op") {
		t.Fatalf("one alloc over a zero baseline must fail even at 1000%% tolerance, got %v\n%s", err, buf.String())
	}

	// Without -benchmem columns the alloc keys are simply not measured.
	buf.Reset()
	if err := run([]string{"-baseline", baseline},
		strings.NewReader(benchOutput("5800", "5900", "5850")), &buf); err != nil {
		t.Fatalf("run without -benchmem failed: %v\n%s", err, buf.String())
	}
	if strings.Contains(buf.String(), "eval_allocs_per_op") {
		t.Errorf("alloc row reported without -benchmem data:\n%s", buf.String())
	}
}

// writeLoadgenSummary writes a loadgen JSON summary for gate tests.
func writeLoadgenSummary(t *testing.T, dir string, qps, p99 float64, errorRate float64) string {
	t.Helper()
	blob, err := json.Marshal(map[string]float64{
		"duration_s": 5, "requests": qps * 5, "errors": errorRate * qps * 5,
		"qps": qps, "p50_us": p99 / 4, "p90_us": p99 / 2, "p99_us": p99,
		"max_us": p99 * 2, "error_rate": errorRate,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "loadgen.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeServiceBaseline(t *testing.T, dir string) string {
	t.Helper()
	blob, err := json.Marshal(map[string]any{
		"description": "service baseline",
		"benchmarks": map[string]float64{
			"service_qps":        2000,
			"service_p99_us":     20000,
			"service_error_rate": 0,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "service_baseline.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadgenGateDirections pins each metric kind's direction: qps gates
// higher-is-better (only a drop fails), p99 gates lower-is-better (only
// growth fails), and error_rate gates absolutely.
func TestLoadgenGateDirections(t *testing.T) {
	dir := t.TempDir()
	baseline := writeServiceBaseline(t, dir)

	cases := []struct {
		name           string
		qps, p99, errs float64
		wantFail       string // substring of the error, "" for pass
	}{
		{"within tolerance", 1800, 22000, 0, ""},
		{"qps improved far past baseline", 9000, 20000, 0, ""},
		{"p99 improved far below baseline", 2000, 1000, 0, ""},
		{"qps collapsed", 900, 20000, 0, "service_qps"},
		{"p99 blew up", 2000, 90000, 0, "service_p99_us"},
		{"errors appeared", 2000, 20000, 0.01, "service_error_rate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			summary := writeLoadgenSummary(t, t.TempDir(), tc.qps, tc.p99, tc.errs)
			var buf strings.Builder
			err := run([]string{"-baseline", baseline, "-tolerance", "0.50", "-loadgen", summary},
				strings.NewReader(""), &buf)
			if tc.wantFail == "" {
				if err != nil {
					t.Fatalf("gate failed: %v\n%s", err, buf.String())
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantFail) {
				t.Fatalf("want failure naming %s, got %v\n%s", tc.wantFail, err, buf.String())
			}
		})
	}
}

// TestLoadgenAllowsEmptyBenchInput: with -loadgen the bench input may be
// empty (the service-smoke job pipes /dev/null); without it that is
// still a hard error.
func TestLoadgenAllowsEmptyBenchInput(t *testing.T) {
	dir := t.TempDir()
	baseline := writeServiceBaseline(t, dir)
	summary := writeLoadgenSummary(t, dir, 2000, 20000, 0)

	var buf strings.Builder
	if err := run([]string{"-baseline", baseline, "-loadgen", summary},
		strings.NewReader(""), &buf); err != nil {
		t.Fatalf("empty bench input with -loadgen failed: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"service_qps", "service_p99_us", "service_error_rate"} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("report missing %s:\n%s", key, buf.String())
		}
	}

	if err := run([]string{"-baseline", baseline}, strings.NewReader(""), &buf); err == nil {
		t.Error("empty bench input without -loadgen must still fail")
	}
}

func writeChurnBaseline(t *testing.T, dir string) string {
	t.Helper()
	blob, err := json.Marshal(map[string]any{
		"description": "churn baseline",
		"benchmarks": map[string]float64{
			"churn_stream_ns_per_mutation": 16000,
			"delta_vs_cold_speedup":        10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "churn_baseline.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeChurnSummary(t *testing.T, dir string, streamNs, speedup float64) string {
	t.Helper()
	blob, err := json.Marshal(map[string]float64{
		"churn_stream_ns_per_mutation":   streamNs,
		"cold_recompile_ns_per_mutation": streamNs * speedup,
		"delta_vs_cold_speedup":          speedup,
		"mutations":                      200,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "churn.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestChurnGateDirections pins the churn metrics' directions: the stream
// cost gates lower-is-better with tolerance, and the speedup gates as an
// absolute floor — even a hair under the baseline fails regardless of
// tolerance, while any value at or above it passes.
func TestChurnGateDirections(t *testing.T) {
	dir := t.TempDir()
	baseline := writeChurnBaseline(t, dir)

	cases := []struct {
		name     string
		streamNs float64
		speedup  float64
		wantFail string // substring of the error, "" for pass
	}{
		{"at the floor", 15000, 10, ""},
		{"speedup well above floor", 12000, 13, ""},
		{"stream slower inside tolerance", 18000, 11, ""},
		{"stream cost blew up", 40000, 11, "churn_stream_ns_per_mutation"},
		{"speedup dipped below floor", 15000, 9.97, "delta_vs_cold_speedup"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			summary := writeChurnSummary(t, t.TempDir(), tc.streamNs, tc.speedup)
			var buf strings.Builder
			err := run([]string{"-baseline", baseline, "-tolerance", "0.50", "-churn", summary},
				strings.NewReader(""), &buf)
			if tc.wantFail == "" {
				if err != nil {
					t.Fatalf("gate failed: %v\n%s", err, buf.String())
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantFail) {
				t.Fatalf("want failure naming %s, got %v\n%s", tc.wantFail, err, buf.String())
			}
		})
	}
}

// TestChurnAllowsEmptyBenchInput: like -loadgen, -churn legitimizes an
// empty bench input, and a truncated summary fails loudly.
func TestChurnAllowsEmptyBenchInput(t *testing.T) {
	dir := t.TempDir()
	baseline := writeChurnBaseline(t, dir)
	summary := writeChurnSummary(t, dir, 15000, 11)

	var buf strings.Builder
	if err := run([]string{"-baseline", baseline, "-churn", summary},
		strings.NewReader(""), &buf); err != nil {
		t.Fatalf("empty bench input with -churn failed: %v\n%s", err, buf.String())
	}
	for _, key := range []string{"churn_stream_ns_per_mutation", "delta_vs_cold_speedup"} {
		if !strings.Contains(buf.String(), key) {
			t.Errorf("report missing %s:\n%s", key, buf.String())
		}
	}

	partial := filepath.Join(dir, "partial.json")
	if err := os.WriteFile(partial, []byte(`{"churn_stream_ns_per_mutation": 100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err := run([]string{"-baseline", baseline, "-churn", partial}, strings.NewReader(""), &buf)
	if err == nil || !strings.Contains(err.Error(), "delta_vs_cold_speedup") {
		t.Errorf("missing speedup field must fail the gate, got %v", err)
	}
}

// TestLoadgenMissingField: a truncated summary (no qps) is a loud error,
// not a silently unguarded gate.
func TestLoadgenMissingField(t *testing.T) {
	dir := t.TempDir()
	baseline := writeServiceBaseline(t, dir)
	path := filepath.Join(dir, "partial.json")
	if err := os.WriteFile(path, []byte(`{"p99_us": 100}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	err := run([]string{"-baseline", baseline, "-loadgen", path}, strings.NewReader(""), &buf)
	if err == nil || !strings.Contains(err.Error(), "qps") {
		t.Errorf("missing qps field must fail the gate, got %v", err)
	}
}
