// Command benchgate is the CI benchmark regression gate. It reads `go
// test -bench` output (repeated runs of the plan benchmarks), takes the
// median ns/op per benchmark, compares the medians against the recorded
// baselines in a BENCH_*.json file, and exits non-zero when any tracked
// benchmark regressed past the tolerance. The measured medians are also
// written out in the baseline's JSON shape, ready to upload as a CI
// artifact or to commit as the next baseline.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkPlanReuse|BenchmarkSweepModes|BenchmarkSideBuild' -benchtime=1x -count=5 . > bench.txt
//	benchgate -baseline auto -out BENCH_5.json bench.txt
//
// With no file the bench output is read from standard input. Medians —
// not minima or means — keep one cold-cache or one preempted run from
// tipping the gate either way.
//
// -baseline auto (the default) picks the newest committed BENCH_*.json
// in the working directory by its numeric suffix, so the tolerance
// ratchets against the latest recorded run instead of a stale baseline.
// A benchmark the baseline has never recorded is reported as "new" and
// cannot regress — it becomes gated once a baseline containing it is
// committed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// trackedBenchmarks maps `go test -bench` names to the baseline JSON
// keys of BENCH_2.json. Sub-benchmark names appear before the -N
// GOMAXPROCS suffix.
var trackedBenchmarks = map[string]string{
	"BenchmarkPlanReuse/cold-compile":   "cold_solve_ns_per_op",
	"BenchmarkPlanReuse/cached-compile": "cached_compile_ns_per_op",
	"BenchmarkPlanReuse/eval":           "plan_eval_ns_per_op",
	"BenchmarkSweepModes/per-point":     "sweep20_before_ns_per_op",
	"BenchmarkSweepModes/planned":       "sweep20_after_ns_per_op",
	"BenchmarkSideBuild/frontier":       "side_build_ns_per_op",
	"BenchmarkEvalBatch/kernel":         "eval_batch_ns_per_op",
	"BenchmarkEvalBatch/scalar":         "eval_batch_scalar_ns_per_op",
}

// benchLine matches one result row, e.g.
// "BenchmarkPlanReuse/eval-4   203   5852 ns/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op`)

// cpuLine matches the "cpu: ..." header go test prints.
var cpuLine = regexp.MustCompile(`^cpu:\s*(.+)$`)

type baselineFile struct {
	Description string             `json:"description"`
	CPU         string             `json:"cpu"`
	Go          string             `json:"go"`
	Benchmarks  map[string]float64 `json:"benchmarks"`
}

type resultFile struct {
	Description string             `json:"description"`
	CPU         string             `json:"cpu"`
	Go          string             `json:"go"`
	Baseline    string             `json:"baseline"`
	Tolerance   float64            `json:"tolerance"`
	Runs        int                `json:"runs"`
	Benchmarks  map[string]float64 `json:"benchmarks"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "auto", "baseline JSON file with a benchmarks map of ns/op, or 'auto' for the newest BENCH_*.json")
	outPath := fs.String("out", "", "write the measured medians as JSON to this file (the baseline's shape)")
	tolerance := fs.Float64("tolerance", 0.30, "allowed fractional slowdown over the baseline before failing")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	samples, cpu, err := parseBench(in)
	if err != nil {
		return err
	}

	if *baselinePath == "auto" {
		picked, err := newestBaseline(".")
		if err != nil {
			return err
		}
		*baselinePath = picked
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", *baselinePath, err)
	}

	medians := map[string]float64{}
	runs := 0
	for bench, key := range trackedBenchmarks {
		ss := samples[bench]
		if len(ss) == 0 {
			return fmt.Errorf("no samples for %s in the bench output", bench)
		}
		if len(ss) > runs {
			runs = len(ss)
		}
		medians[key] = median(ss)
	}

	if *outPath != "" {
		res := resultFile{
			Description: "Measured plan-benchmark medians (benchgate). Compare against the baseline's benchmarks map.",
			CPU:         cpu,
			Go:          runtime.Version(),
			Baseline:    *baselinePath,
			Tolerance:   *tolerance,
			Runs:        runs,
			Benchmarks:  medians,
		}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	var regressions []string
	var keys []string
	for key := range medians {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		got := medians[key]
		want, ok := base.Benchmarks[key]
		if !ok {
			// Tracked but never baselined: report, don't gate. The next
			// committed baseline picks it up.
			fmt.Fprintf(stdout, "%-28s %12.0f ns/op  baseline %12s  %s\n", key, got, "—", "new")
			continue
		}
		limit := want * (1 + *tolerance)
		status := "ok"
		if got > limit {
			status = "REGRESSION"
			regressions = append(regressions,
				fmt.Sprintf("%s: median %.0f ns/op exceeds baseline %.0f ns/op by %.1f%% (tolerance %.0f%%)",
					key, got, want, 100*(got/want-1), 100**tolerance))
		}
		fmt.Fprintf(stdout, "%-28s %12.0f ns/op  baseline %12.0f  (%+.1f%%)  %s\n",
			key, got, want, 100*(got/want-1), status)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}

// baselineName matches committed baseline files; the numeric suffix
// orders them (BENCH_10 beats BENCH_9 — compare numbers, not strings).
var baselineName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// newestBaseline returns the BENCH_<n>.json in dir with the largest n.
func newestBaseline(dir string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := baselineName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil || n <= bestN {
			continue
		}
		best, bestN = e.Name(), n
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_*.json baseline found in %s (pass -baseline explicitly)", dir)
	}
	return best, nil
}

// parseBench collects every ns/op sample per benchmark name (the -N
// GOMAXPROCS suffix stripped) and the reported CPU model.
func parseBench(r io.Reader) (map[string][]float64, string, error) {
	samples := map[string][]float64{}
	cpu := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			cpu = strings.TrimSpace(m[1])
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, "", fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	return samples, cpu, sc.Err()
}

// median returns the middle sample (mean of the middle two for even
// counts); the input is not modified.
func median(ss []float64) float64 {
	s := append([]float64(nil), ss...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
