// Command benchgate is the CI benchmark regression gate. It reads `go
// test -bench` output (repeated runs of the plan benchmarks), takes the
// median ns/op per benchmark, compares the medians against the recorded
// baselines in a BENCH_*.json file, and exits non-zero when any tracked
// benchmark regressed past the tolerance. The measured medians are also
// written out in the baseline's JSON shape, ready to upload as a CI
// artifact or to commit as the next baseline.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkPlanReuse|BenchmarkSweepModes|BenchmarkSideBuild' -benchtime=1x -count=5 . > bench.txt
//	benchgate -baseline auto -out BENCH_5.json bench.txt
//
// With no file the bench output is read from standard input. Medians —
// not minima or means — keep one cold-cache or one preempted run from
// tipping the gate either way.
//
// -baseline auto (the default) picks the newest committed BENCH_*.json
// in the working directory by its numeric suffix, so the tolerance
// ratchets against the latest recorded run instead of a stale baseline.
// A benchmark the baseline has never recorded is reported as "new" and
// cannot regress — it becomes gated once a baseline containing it is
// committed.
//
// -loadgen FILE additionally gates the service metrics from a loadgen
// JSON summary (see cmd/loadgen) against the same baseline: qps is
// higher-is-better (a drop past the tolerance fails), p99_us is
// lower-is-better, and error_rate gates absolutely like allocation
// counts. When -loadgen is given the bench output may be empty (e.g.
// /dev/null), so the CI service-smoke job can gate a pure service run
// without re-running the micro-benchmarks.
//
// -churn FILE gates the delta-compile metrics from a churnbench JSON
// summary (see cmd/churnbench): churn_stream_ns_per_mutation is
// lower-is-better, and delta_vs_cold_speedup gates as an absolute floor
// — the measured speedup may never fall below the baseline's recorded
// value, with no tolerance, because the ratio of two same-machine
// measurements is already machine-independent. Like -loadgen, -churn
// permits an empty bench input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// trackedBenchmarks maps `go test -bench` names to the baseline JSON
// keys of BENCH_2.json. Sub-benchmark names appear before the -N
// GOMAXPROCS suffix.
var trackedBenchmarks = map[string]string{
	"BenchmarkPlanReuse/cold-compile":   "cold_solve_ns_per_op",
	"BenchmarkPlanReuse/cached-compile": "cached_compile_ns_per_op",
	"BenchmarkPlanReuse/eval":           "plan_eval_ns_per_op",
	"BenchmarkSweepModes/per-point":     "sweep20_before_ns_per_op",
	"BenchmarkSweepModes/planned":       "sweep20_after_ns_per_op",
	"BenchmarkSideBuild/frontier":       "side_build_ns_per_op",
	"BenchmarkEvalBatch/kernel":         "eval_batch_ns_per_op",
	"BenchmarkEvalBatch/scalar":         "eval_batch_scalar_ns_per_op",
}

// trackedAllocs maps benchmark names to allocs/op baseline keys. Alloc
// counts are gated absolutely (any increase over the baseline fails; no
// tolerance) because the hot-path contract is exact: zero allocations
// per evaluate in steady state, enforced statically by hotalloc and
// dynamically here. Requires -benchmem in the bench run; without it the
// alloc columns are absent and these keys are simply not measured.
var trackedAllocs = map[string]string{
	"BenchmarkPlanReuse/eval": "eval_allocs_per_op",
}

// metricKind states which direction of drift counts as a regression for
// a baseline key.
type metricKind int

const (
	// lowerIsBetter is the ns/op (and p99_us) rule: the measurement may
	// exceed the baseline by at most the tolerance.
	lowerIsBetter metricKind = iota
	// higherIsBetter is the throughput rule: the measurement may fall
	// below the baseline by at most the tolerance.
	higherIsBetter
	// absoluteCeiling gates with no tolerance: any increase over the
	// baseline fails (allocs/op, error_rate).
	absoluteCeiling
	// absoluteFloor gates with no tolerance in the other direction: any
	// drop below the baseline fails. Used for same-machine ratios
	// (delta_vs_cold_speedup), where runner speed cancels out and the
	// baseline value is a contract, not a measurement to drift from.
	absoluteFloor
)

// loadgenMetrics maps loadgen summary fields to baseline keys with their
// gating direction.
var loadgenMetrics = []struct {
	field string // field in the loadgen JSON summary
	key   string // key in the baseline's benchmarks map
	kind  metricKind
	unit  string
}{
	{"qps", "service_qps", higherIsBetter, "req/s"},
	{"p99_us", "service_p99_us", lowerIsBetter, "µs"},
	{"error_rate", "service_error_rate", absoluteCeiling, "ratio"},
}

// churnMetrics maps churnbench summary fields to baseline keys with
// their gating direction.
var churnMetrics = []struct {
	field string
	key   string
	kind  metricKind
	unit  string
}{
	{"churn_stream_ns_per_mutation", "churn_stream_ns_per_mutation", lowerIsBetter, "ns/mut"},
	{"delta_vs_cold_speedup", "delta_vs_cold_speedup", absoluteFloor, "x"},
}

// benchLine matches one result row, with the optional -benchmem columns:
// "BenchmarkPlanReuse/eval-4   203   5852 ns/op   0 B/op   0 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?`)

// cpuLine matches the "cpu: ..." header go test prints.
var cpuLine = regexp.MustCompile(`^cpu:\s*(.+)$`)

type baselineFile struct {
	Description string             `json:"description"`
	CPU         string             `json:"cpu"`
	Go          string             `json:"go"`
	Benchmarks  map[string]float64 `json:"benchmarks"`
}

type resultFile struct {
	Description string             `json:"description"`
	CPU         string             `json:"cpu"`
	Go          string             `json:"go"`
	Baseline    string             `json:"baseline"`
	Tolerance   float64            `json:"tolerance"`
	Runs        int                `json:"runs"`
	Loadgen     string             `json:"loadgen,omitempty"`
	Churn       string             `json:"churn,omitempty"`
	Benchmarks  map[string]float64 `json:"benchmarks"`
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "auto", "baseline JSON file with a benchmarks map of ns/op, or 'auto' for the newest BENCH_*.json")
	outPath := fs.String("out", "", "write the measured medians as JSON to this file (the baseline's shape)")
	tolerance := fs.Float64("tolerance", 0.30, "allowed fractional slowdown over the baseline before failing")
	loadgenPath := fs.String("loadgen", "", "loadgen JSON summary whose service metrics (qps, p99_us, error_rate) gate against the baseline")
	churnPath := fs.String("churn", "", "churnbench JSON summary whose delta-compile metrics (churn_stream_ns_per_mutation, delta_vs_cold_speedup) gate against the baseline")
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	samples, allocSamples, cpu, err := parseBench(in)
	if err != nil {
		return err
	}

	if *baselinePath == "auto" {
		picked, lingering, err := newestBaseline(".")
		if err != nil {
			return err
		}
		*baselinePath = picked
		// Retention policy: the newest baseline plus one prior. More than
		// that and superseded runs linger as dead weight in the tree.
		if len(lingering) > 0 {
			fmt.Fprintf(stdout, "warning: superseded baselines linger (keep %s and one prior): delete %s\n",
				picked, strings.Join(lingering, ", "))
		}
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", *baselinePath, err)
	}

	medians := map[string]float64{}
	kinds := map[string]metricKind{}
	units := map[string]string{}
	runs := 0
	// With -loadgen or -churn an empty bench input is legitimate (a pure
	// service or churn gate); without either, a tracked benchmark with no
	// samples means the bench run itself is broken and must fail loudly.
	if len(samples) > 0 || (*loadgenPath == "" && *churnPath == "") {
		for bench, key := range trackedBenchmarks {
			ss := samples[bench]
			if len(ss) == 0 {
				return fmt.Errorf("no samples for %s in the bench output", bench)
			}
			if len(ss) > runs {
				runs = len(ss)
			}
			medians[key] = median(ss)
			units[key] = "ns/op"
		}
	}
	allocMedians := map[string]float64{}
	for bench, key := range trackedAllocs {
		ss := allocSamples[bench]
		if len(ss) == 0 {
			continue // run without -benchmem: alloc keys unmeasured, not an error
		}
		allocMedians[key] = median(ss)
		medians[key] = allocMedians[key]
		kinds[key] = absoluteCeiling
		units[key] = "allocs/op"
	}
	if *loadgenPath != "" {
		metrics, err := readLoadgen(*loadgenPath)
		if err != nil {
			return err
		}
		for _, m := range loadgenMetrics {
			v, ok := metrics[m.field]
			if !ok {
				return fmt.Errorf("%s: summary carries no %q field", *loadgenPath, m.field)
			}
			medians[m.key] = v
			kinds[m.key] = m.kind
			units[m.key] = m.unit
		}
	}
	if *churnPath != "" {
		metrics, err := readLoadgen(*churnPath)
		if err != nil {
			return err
		}
		for _, m := range churnMetrics {
			v, ok := metrics[m.field]
			if !ok {
				return fmt.Errorf("%s: summary carries no %q field", *churnPath, m.field)
			}
			medians[m.key] = v
			kinds[m.key] = m.kind
			units[m.key] = m.unit
		}
	}

	if *outPath != "" {
		res := resultFile{
			Description: "Measured plan-benchmark medians (benchgate). Compare against the baseline's benchmarks map.",
			CPU:         cpu,
			Go:          runtime.Version(),
			Baseline:    *baselinePath,
			Tolerance:   *tolerance,
			Runs:        runs,
			Loadgen:     *loadgenPath,
			Churn:       *churnPath,
			Benchmarks:  medians,
		}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}

	var regressions []string
	var keys []string
	for key := range medians {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		got := medians[key]
		unit := units[key]
		want, ok := base.Benchmarks[key]
		if !ok {
			// Tracked but never baselined: report, don't gate. The next
			// committed baseline picks it up.
			fmt.Fprintf(stdout, "%-28s %12.2f %-9s  baseline %12s  %s\n", key, got, unit, "—", "new")
			continue
		}
		status := "ok"
		var why string
		switch kinds[key] {
		case absoluteCeiling:
			// No tolerance: the contract is exact (zero allocations per
			// eval, zero errors under the smoke load), so any increase
			// over the baseline fails outright.
			if got > want {
				why = fmt.Sprintf("%s: %.2f %s exceeds baseline %.2f (%s gates absolutely)",
					key, got, unit, want, unit)
			}
		case absoluteFloor:
			// No tolerance: the baseline value is a recorded contract
			// (e.g. the delta path must stay ≥10× over cold recompile),
			// and the ratio cancels machine speed, so any shortfall is a
			// real regression.
			if got < want {
				why = fmt.Sprintf("%s: %.2f %s falls below baseline %.2f (%s gates absolutely)",
					key, got, unit, want, unit)
			}
		case higherIsBetter:
			if got < want*(1-*tolerance) {
				why = fmt.Sprintf("%s: %.0f %s fell %.1f%% below baseline %.0f (tolerance %.0f%%)",
					key, got, unit, 100*(1-got/want), want, 100**tolerance)
			}
		default: // lowerIsBetter
			if got > want*(1+*tolerance) {
				why = fmt.Sprintf("%s: %.0f %s exceeds baseline %.0f by %.1f%% (tolerance %.0f%%)",
					key, got, unit, want, 100*(got/want-1), 100**tolerance)
			}
		}
		if why != "" {
			status = "REGRESSION"
			regressions = append(regressions, why)
		}
		delta := "     —"
		if want != 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(got/want-1))
		}
		fmt.Fprintf(stdout, "%-28s %12.2f %-9s  baseline %12.2f  (%s)  %s\n",
			key, got, unit, want, delta, status)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchmark regression:\n  %s", strings.Join(regressions, "\n  "))
	}
	return nil
}

// readLoadgen parses a loadgen JSON summary into its numeric fields.
func readLoadgen(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var fields map[string]float64
	if err := json.Unmarshal(raw, &fields); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return fields, nil
}

// baselineName matches committed baseline files; the numeric suffix
// orders them (BENCH_10 beats BENCH_9 — compare numbers, not strings).
var baselineName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// newestBaseline returns the BENCH_<n>.json in dir with the largest n,
// plus any baselines older than the newest and its immediate prior —
// those are superseded and should be deleted from the tree.
func newestBaseline(dir string) (string, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, err
	}
	type found struct {
		name string
		n    int
	}
	var all []found
	for _, e := range entries {
		m := baselineName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		all = append(all, found{e.Name(), n})
	}
	if len(all) == 0 {
		return "", nil, fmt.Errorf("no BENCH_*.json baseline found in %s (pass -baseline explicitly)", dir)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].n > all[j].n })
	var lingering []string
	for _, f := range all[min(2, len(all)):] {
		lingering = append(lingering, f.name)
	}
	return all[0].name, lingering, nil
}

// parseBench collects every ns/op sample per benchmark name (the -N
// GOMAXPROCS suffix stripped), the allocs/op samples when the run used
// -benchmem, and the reported CPU model.
func parseBench(r io.Reader) (map[string][]float64, map[string][]float64, string, error) {
	samples := map[string][]float64{}
	allocs := map[string][]float64{}
	cpu := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			cpu = strings.TrimSpace(m[1])
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, nil, "", fmt.Errorf("bad ns/op in %q: %w", line, err)
		}
		samples[m[1]] = append(samples[m[1]], v)
		if m[4] != "" {
			a, err := strconv.ParseFloat(m[4], 64)
			if err != nil {
				return nil, nil, "", fmt.Errorf("bad allocs/op in %q: %w", line, err)
			}
			allocs[m[1]] = append(allocs[m[1]], a)
		}
	}
	return samples, allocs, cpu, sc.Err()
}

// median returns the middle sample (mean of the middle two for even
// counts); the input is not modified.
func median(ss []float64) float64 {
	s := append([]float64(nil), ss...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
