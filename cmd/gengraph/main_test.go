package main

import (
	"strings"
	"testing"

	"flowrel"
)

func gen(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

// parseBack round-trips the generated description through the parser.
func parseBack(t *testing.T, text string) *flowrel.File {
	t.Helper()
	f, err := flowrel.ParseTextString(text)
	if err != nil {
		t.Fatalf("generated description does not parse: %v\n%s", err, text)
	}
	if f.Demand == nil {
		t.Fatal("generated description has no demand")
	}
	return f
}

func TestAllTypesGenerateValidDescriptions(t *testing.T) {
	cases := map[string][]string{
		"tree":      {"-type", "tree", "-fanout", "2", "-depth", "2", "-d", "1"},
		"multitree": {"-type", "multitree", "-peers", "6", "-trees", "2"},
		"mesh":      {"-type", "mesh", "-peers", "8", "-indeg", "2"},
		"clustered": {"-type", "clustered", "-nodes", "4", "-edges", "6"},
		"chain":     {"-type", "chain", "-blocks", "3", "-nodes", "2"},
		"figure2":   {"-type", "figure2"},
		"figure4":   {"-type", "figure4"},
	}
	for name, args := range cases {
		out := gen(t, args...)
		f := parseBack(t, out)
		if f.Graph.NumEdges() == 0 {
			t.Errorf("%s: empty graph", name)
		}
		// Every generated instance must be solvable end to end.
		if _, err := flowrel.MonteCarlo(f.Graph, *f.Demand, 100, 1); err != nil {
			t.Errorf("%s: unsolvable: %v", name, err)
		}
	}
}

func TestChainEmitsCutComment(t *testing.T) {
	out := gen(t, "-type", "chain", "-blocks", "3", "-nodes", "2")
	if !strings.Contains(out, "# planted cut sequence:") {
		t.Fatalf("missing cut comment:\n%s", out)
	}
}

func TestClusteredEmitsBottleneckComment(t *testing.T) {
	out := gen(t, "-type", "clustered")
	if !strings.Contains(out, "# planted bottleneck links:") {
		t.Fatalf("missing bottleneck comment:\n%s", out)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := gen(t, "-type", "mesh", "-seed", "7")
	b := gen(t, "-type", "mesh", "-seed", "7")
	c := gen(t, "-type", "mesh", "-seed", "8")
	if a != b {
		t.Fatal("same seed produced different graphs")
	}
	if a == c {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-type", "nope"}, &out); err == nil {
		t.Fatal("unknown type accepted")
	}
	if err := run([]string{"-type", "tree", "-fanout", "0"}, &out); err == nil {
		t.Fatal("bad params accepted")
	}
	if err := run([]string{"-badflag"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}
