// Command gengraph emits P2P streaming overlay graphs in the flowrel text
// format, with a demand line, ready for relcalc.
//
// Usage:
//
//	gengraph -type tree -fanout 2 -depth 3 -d 2
//	gengraph -type multitree -peers 12 -trees 3
//	gengraph -type mesh -peers 20 -indeg 3 -d 2
//	gengraph -type clustered -nodes 5 -edges 8 -k 2 -d 2
//	gengraph -type chain -blocks 4 -nodes 3 -k 2
//	gengraph -type figure2
//	gengraph -type figure4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"flowrel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gengraph", flag.ContinueOnError)
	var (
		typeFlag   = fs.String("type", "clustered", "tree, multitree, mesh, clustered, chain, figure2, figure4")
		blocksFlag = fs.Int("blocks", 3, "blocks in series (chain)")
		fanoutFlag = fs.Int("fanout", 2, "tree/multitree fanout")
		depthFlag  = fs.Int("depth", 3, "tree depth")
		peersFlag  = fs.Int("peers", 12, "peer count (multitree, mesh)")
		treesFlag  = fs.Int("trees", 3, "tree count (multitree)")
		inDegFlag  = fs.Int("indeg", 3, "in-degree (mesh)")
		nodesFlag  = fs.Int("nodes", 5, "nodes per cluster/block (clustered, chain)")
		edgesFlag  = fs.Int("edges", 8, "links per cluster (clustered)")
		kFlag      = fs.Int("k", 2, "bottleneck links (clustered, chain)")
		dFlag      = fs.Int("d", 2, "demand bit-rate")
		capFlag    = fs.Int("cap", 2, "max link capacity (mesh, clustered, chain)")
		pFlag      = fs.Float64("p", 0.1, "link failure probability")
		seedFlag   = fs.Int64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var o *flowrel.Overlay
	var err error
	switch *typeFlag {
	case "tree":
		o, err = flowrel.TreeOverlay(*fanoutFlag, *depthFlag, *dFlag, *pFlag)
	case "multitree":
		o, err = flowrel.MultiTreeOverlay(*peersFlag, *treesFlag, *fanoutFlag, *pFlag)
	case "mesh":
		o, err = flowrel.MeshOverlay(*peersFlag, *inDegFlag, *capFlag, *dFlag, *pFlag, *seedFlag)
	case "clustered":
		o, err = flowrel.ClusteredOverlay(*nodesFlag, *edgesFlag, *kFlag, *dFlag, *capFlag, *pFlag, *seedFlag)
	case "chain":
		var cuts [][]flowrel.EdgeID
		o, cuts, err = flowrel.ChainOverlay(*blocksFlag, *nodesFlag, 2, *kFlag, *dFlag, *capFlag, *pFlag, *seedFlag)
		if err == nil {
			fmt.Fprintf(stdout, "# planted cut sequence: %v\n", cuts)
		}
	case "figure2":
		o = flowrel.Figure2Overlay()
	case "figure4":
		o = flowrel.Figure4Overlay()
	default:
		return fmt.Errorf("unknown overlay type %q", *typeFlag)
	}
	if err != nil {
		return err
	}
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	file := &flowrel.File{Graph: o.G, Demand: &dem}
	if len(o.Bottleneck) > 0 {
		fmt.Fprintf(stdout, "# planted bottleneck links: %v\n", o.Bottleneck)
	}
	return file.WriteText(stdout)
}
