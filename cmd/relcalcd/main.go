// Command relcalcd is the reliability query server: the compile/evaluate
// split as a service. Clients submit a topology once (POST
// /v1/topologies), get back a plan handle, and then answer
// probability-vector queries against the compiled plan in microseconds —
// single evaluations (POST /v1/plans/{handle}/eval) or scenario batches
// through the block kernels (POST /v1/plans/{handle}/evalbatch).
//
// Compiles are deduplicated process-wide through the sharded plan cache
// (structural-hash keyed singleflight), every request runs under the
// anytime admission budget it declares (max_configs, soft_deadline_ms),
// and a bounded worker/queue gate sheds overload as 429 + Retry-After
// instead of letting tail latency collapse. See docs/SERVICE.md for the
// API reference and capacity-planning notes.
//
// Usage:
//
//	relcalcd -addr 127.0.0.1:8080
//	relcalcd -addr 127.0.0.1:0 -addr-file /tmp/relcalcd.addr   # ephemeral port, written to the file
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "relcalcd:", err)
		os.Exit(1)
	}
}

func run(args []string, stderr *os.File) error {
	fs := flag.NewFlagSet("relcalcd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address (use port 0 for an ephemeral port)")
		addrFile = fs.String("addr-file", "", "write the bound listen address to this file once serving (for scripts driving an ephemeral port)")
		workers  = fs.Int("workers", 16, "concurrently executing compute requests")
		queue    = fs.Int("queue", 64, "requests allowed to wait for a worker slot before 429s")
		maxPlans = fs.Int("max-plans", 4096, "plan handles kept (LRU eviction beyond)")
		maxBatch = fs.Int("max-batch", 4096, "scenarios per evalbatch request")
		deadline = fs.Duration("compile-deadline", 5*time.Second, "default compile budget for submissions that declare none")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv := newServer(serverConfig{
		Workers:         *workers,
		Queue:           *queue,
		MaxPlans:        *maxPlans,
		MaxBatch:        *maxBatch,
		DefaultDeadline: *deadline,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			ln.Close()
			return fmt.Errorf("writing -addr-file: %w", err)
		}
	}
	fmt.Fprintf(stderr, "relcalcd: serving on http://%s (workers=%d queue=%d)\n", bound, *workers, *queue)

	httpSrv := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-stop:
		fmt.Fprintf(stderr, "relcalcd: %v, draining\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return httpSrv.Shutdown(ctx)
	}
}
