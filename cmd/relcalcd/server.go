package main

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"flowrel"
	"flowrel/internal/debughttp"
	"flowrel/internal/stats"
)

// compilePlanCtx is the compile entry point; a variable so tests can
// substitute a blocking or failing compile without building pathological
// topologies.
var compilePlanCtx = flowrel.CompilePlanCtx

// mutatePlanCtx is the delta-compile entry point, a test seam like
// compilePlanCtx.
var mutatePlanCtx = func(ctx context.Context, p *flowrel.Plan, m flowrel.Mutation, b flowrel.Budget) (*flowrel.Plan, error) {
	return p.MutateCtx(ctx, m, b)
}

// serverConfig sizes one relcalcd instance.
type serverConfig struct {
	// Workers bounds concurrently executing compute requests; Queue
	// bounds how many more may wait for a slot before 429s start.
	Workers int
	Queue   int
	// MaxPlans bounds the handle registry (LRU eviction beyond it). The
	// compiled arrays themselves live in the process-wide plan cache;
	// a registry entry is just the handle → plan binding.
	MaxPlans int
	// MaxBatch bounds the scenario count of one evalbatch request.
	MaxBatch int
	// MaxBodyBytes bounds request bodies (topologies and batches).
	MaxBodyBytes int64
	// DefaultDeadline is the compile budget applied when a submission
	// carries none, so an adversarial topology cannot pin a worker
	// forever.
	DefaultDeadline time.Duration
}

func (c serverConfig) withDefaults() serverConfig {
	if c.Workers <= 0 {
		c.Workers = 16
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.MaxPlans <= 0 {
		c.MaxPlans = 4096
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 5 * time.Second
	}
	return c
}

// planRecord binds one handle to a compiled plan and its submission
// metadata.
type planRecord struct {
	handle  string
	plan    *flowrel.Plan
	nodes   int
	links   int
	demand  demandSpec
	cached  bool
	created time.Time
	// cfg is the submission's decomposition configuration, kept so
	// mutation successors derive their handles under the same bounds.
	cfg flowrel.Config
}

// server is one relcalcd instance: a handle registry over the shared
// plan cache, an admission gate, and per-endpoint latency histograms.
type server struct {
	cfg serverConfig
	adm *admission
	mux *http.ServeMux

	mu    sync.Mutex
	byH   map[string]*list.Element // values are *planRecord wrapped in list elements
	order *list.List               // front = most recently used

	start time.Time

	latCompile   stats.FineHistogram // µs
	latMutate    stats.FineHistogram // µs
	latEval      stats.FineHistogram // µs
	latEvalBatch stats.FineHistogram // µs
	requests     stats.Counter
	errorsTotal  stats.Counter

	// resultPool recycles evalbatch result buffers so the steady-state
	// batch path allocates only what JSON encoding itself needs.
	resultPool sync.Pool
}

func newServer(cfg serverConfig) *server {
	cfg = cfg.withDefaults()
	s := &server{
		cfg:   cfg,
		adm:   newAdmission(cfg.Workers, cfg.Queue),
		mux:   http.NewServeMux(),
		byH:   make(map[string]*list.Element),
		order: list.New(),
		start: time.Now(),
	}
	s.resultPool.New = func() any { b := make([]float64, 0, 256); return &b }
	flowrel.PublishExpvar()

	s.mux.HandleFunc("POST /v1/topologies", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/plans/{handle}", s.handlePlanInfo)
	s.mux.HandleFunc("POST /v1/plans/{handle}/mutate", s.handleMutate)
	s.mux.HandleFunc("POST /v1/plans/{handle}/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/plans/{handle}/evalbatch", s.handleEvalBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.Handle("/debug/", debughttp.NewMux())
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// ---- wire types ----

type budgetSpec struct {
	MaxConfigs     uint64 `json:"max_configs,omitempty"`
	MaxFlowCalls   int64  `json:"max_flow_calls,omitempty"`
	SoftDeadlineMS int64  `json:"soft_deadline_ms,omitempty"`
}

func (b *budgetSpec) toBudget(def time.Duration) flowrel.Budget {
	out := flowrel.Budget{}
	if b != nil {
		out.MaxConfigs = b.MaxConfigs
		out.MaxMaxFlowCalls = b.MaxFlowCalls
		out.SoftDeadline = time.Duration(b.SoftDeadlineMS) * time.Millisecond
	}
	if out.SoftDeadline == 0 {
		out.SoftDeadline = def
	}
	return out
}

type demandSpec struct {
	S string `json:"s"`
	T string `json:"t"`
	D int    `json:"d"`
}

type submitRequest struct {
	Topology         json.RawMessage `json:"topology"`
	Budget           *budgetSpec     `json:"budget,omitempty"`
	MaxBottleneck    int             `json:"max_bottleneck,omitempty"`
	MaxSideEdges     int             `json:"max_side_edges,omitempty"`
	MaxAssignmentSet int             `json:"max_assignment_set,omitempty"`
	Parallelism      int             `json:"parallelism,omitempty"`
}

type submitResponse struct {
	Handle    string  `json:"handle"`
	Cached    bool    `json:"cached"`
	Nodes     int     `json:"nodes"`
	Links     int     `json:"links"`
	K         int     `json:"k"`
	Alpha     float64 `json:"alpha"`
	CompileUS int64   `json:"compile_us"`
}

type mutateRequest struct {
	// Kind is "capacity", "add" or "remove".
	Kind string `json:"kind"`
	// Link names the mutated link by ID for capacity and remove.
	Link int `json:"link,omitempty"`
	// U, V, Cap and PFail describe an added link; Cap is also the new
	// capacity of a capacity mutation.
	U      int         `json:"u,omitempty"`
	V      int         `json:"v,omitempty"`
	Cap    int         `json:"cap,omitempty"`
	PFail  float64     `json:"pfail,omitempty"`
	Budget *budgetSpec `json:"budget,omitempty"`
}

type mutateResponse struct {
	Handle   string `json:"handle"`
	Parent   string `json:"parent"`
	Version  int    `json:"version"`
	Cached   bool   `json:"cached"`
	Nodes    int    `json:"nodes"`
	Links    int    `json:"links"`
	MutateUS int64  `json:"mutate_us"`
}

type evalRequest struct {
	PFail []float64 `json:"pfail"`
}

type evalResponse struct {
	Handle      string  `json:"handle"`
	Reliability float64 `json:"reliability"`
}

type evalBatchRequest struct {
	Scenarios [][]float64 `json:"scenarios"`
}

type evalBatchResponse struct {
	Handle        string    `json:"handle"`
	Reliabilities []float64 `json:"reliabilities"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// ---- helpers ----

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client disconnects surface in the server log, not here
}

func (s *server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errorsTotal.Inc()
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// failSaturated is the 429 path: Retry-After tells closed-loop clients
// when to come back; one second is the admission queue's natural drain
// horizon for microsecond evals behind a stuck compile.
func (s *server) failSaturated(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	s.fail(w, http.StatusTooManyRequests, "server saturated: worker slots and queue full")
}

// admitCompute runs the admission gate for one compute request. On nil
// release the response has already been written.
func (s *server) admitCompute(w http.ResponseWriter, r *http.Request) func() {
	release, err := s.adm.admit(r.Context())
	if err == nil {
		return release
	}
	if errors.Is(err, errSaturated) {
		s.failSaturated(w)
	} else {
		// The client went away while queued; status is a formality.
		s.fail(w, http.StatusServiceUnavailable, "request cancelled while queued: %v", err)
	}
	return nil
}

// handleFor resolves a plan handle, refreshing its LRU position.
func (s *server) handleFor(handle string) (*planRecord, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byH[handle]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*planRecord), true
}

// remember stores a plan record, evicting the least recently used handle
// beyond MaxPlans. Re-registering an existing handle refreshes it.
func (s *server) remember(rec *planRecord) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byH[rec.handle]; ok {
		el.Value = rec
		s.order.MoveToFront(el)
		return
	}
	s.byH[rec.handle] = s.order.PushFront(rec)
	for s.order.Len() > s.cfg.MaxPlans {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.byH, oldest.Value.(*planRecord).handle)
	}
}

func (s *server) planCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.order.Len()
}

// planHandle derives the registry handle: the structural cache hash
// (topology + capacities + demand + decomposition bounds — the key the
// sharded plan cache dedups compiles by) extended with a hash of the
// submission's failure probabilities, because the probabilities are the
// evaluate-phase baseline the handle's nil-pfail queries resolve to.
func planHandle(g *flowrel.Graph, dem flowrel.Demand, cfg flowrel.Config) string {
	structural := flowrel.StructuralHash(g, dem, cfg)
	h := sha256.New()
	var buf [8]byte
	for _, e := range g.Edges() {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(e.PFail*1e18)))
		h.Write(buf[:])
	}
	return structural[:24] + hex.EncodeToString(h.Sum(nil))[:8]
}

// ---- handlers ----

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	release := s.admitCompute(w, r)
	if release == nil {
		return
	}
	defer release()

	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Topology) == 0 {
		s.fail(w, http.StatusBadRequest, "missing topology")
		return
	}
	var file flowrel.File
	if err := json.Unmarshal(req.Topology, &file); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding topology: %v", err)
		return
	}
	if file.Demand == nil {
		s.fail(w, http.StatusBadRequest, "topology carries no demand (s, t, d)")
		return
	}
	g, dem := file.Graph, *file.Demand

	cfg := flowrel.Config{
		MaxBottleneck:    req.MaxBottleneck,
		MaxSideEdges:     req.MaxSideEdges,
		MaxAssignmentSet: req.MaxAssignmentSet,
		Parallelism:      req.Parallelism,
		Budget:           req.Budget.toBudget(s.cfg.DefaultDeadline),
	}

	start := time.Now()
	plan, err := compilePlanCtx(r.Context(), g, dem, cfg)
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			// Client disconnected mid-compile; the controller cancelled
			// the compile and nobody reads this response.
			s.fail(w, http.StatusServiceUnavailable, "client cancelled: %v", err)
		case errors.Is(err, flowrel.ErrInterrupted):
			// The request's own budget ran out before the compile
			// finished: retryable with a bigger budget (or later, when
			// the structure is warm in the cache from a luckier caller).
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, "compile budget exhausted: %v", err)
		default:
			s.fail(w, http.StatusUnprocessableEntity, "compile: %v", err)
		}
		return
	}
	s.latCompile.Observe(elapsed.Microseconds())

	names := nodeNames(&file)
	rec := &planRecord{
		handle:  planHandle(g, dem, cfg),
		plan:    plan,
		nodes:   g.NumNodes(),
		links:   g.NumEdges(),
		demand:  demandSpec{S: names[dem.S], T: names[dem.T], D: dem.D},
		cached:  plan.Cached(),
		created: start,
		cfg:     cfg,
	}
	s.remember(rec)

	writeJSON(w, http.StatusOK, submitResponse{
		Handle:    rec.handle,
		Cached:    rec.cached,
		Nodes:     rec.nodes,
		Links:     rec.links,
		K:         plan.K(),
		Alpha:     plan.Alpha(),
		CompileUS: elapsed.Microseconds(),
	})
}

func (s *server) handlePlanInfo(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	rec, ok := s.handleFor(r.PathValue("handle"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown plan handle %q", r.PathValue("handle"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"handle":       rec.handle,
		"nodes":        rec.nodes,
		"links":        rec.links,
		"k":            rec.plan.K(),
		"alpha":        rec.plan.Alpha(),
		"cut":          rec.plan.Cut(),
		"demand":       rec.demand,
		"cached":       rec.cached,
		"version":      rec.plan.Version(),
		"created_unix": rec.created.Unix(),
	})
}

// handleMutate derives a successor plan from a registered one after a
// single-link change, delta-compiling against the parent instead of
// recompiling the topology. The successor gets its own handle (the
// mutated structure's hash — never the parent's) and both plans stay
// registered, so clients can track a churning overlay as a chain of
// cheap mutations and keep querying any version.
func (s *server) handleMutate(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	rec, ok := s.handleFor(r.PathValue("handle"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown plan handle %q", r.PathValue("handle"))
		return
	}
	release := s.admitCompute(w, r)
	if release == nil {
		return
	}
	defer release()

	var req mutateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var mut flowrel.Mutation
	switch req.Kind {
	case "capacity":
		mut = flowrel.Mutation{Kind: flowrel.MutateCapacity, Link: flowrel.EdgeID(req.Link), Cap: req.Cap}
	case "add":
		mut = flowrel.Mutation{Kind: flowrel.MutateAdd, U: flowrel.NodeID(req.U), V: flowrel.NodeID(req.V), Cap: req.Cap, PFail: req.PFail}
	case "remove":
		mut = flowrel.Mutation{Kind: flowrel.MutateRemove, Link: flowrel.EdgeID(req.Link)}
	default:
		s.fail(w, http.StatusBadRequest, "unknown mutation kind %q (want capacity, add or remove)", req.Kind)
		return
	}

	start := time.Now()
	child, err := mutatePlanCtx(r.Context(), rec.plan, mut, req.Budget.toBudget(s.cfg.DefaultDeadline))
	elapsed := time.Since(start)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			s.fail(w, http.StatusServiceUnavailable, "client cancelled: %v", err)
		case errors.Is(err, flowrel.ErrInterrupted):
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, "mutation budget exhausted: %v", err)
		default:
			s.fail(w, http.StatusUnprocessableEntity, "mutate: %v", err)
		}
		return
	}
	s.latMutate.Observe(elapsed.Microseconds())

	g2 := child.Graph()
	childRec := &planRecord{
		handle:  planHandle(g2, child.Demand(), rec.cfg),
		plan:    child,
		nodes:   g2.NumNodes(),
		links:   g2.NumEdges(),
		demand:  rec.demand, // mutations change links, never nodes
		cached:  child.Cached(),
		created: start,
		cfg:     rec.cfg,
	}
	s.remember(childRec)

	writeJSON(w, http.StatusOK, mutateResponse{
		Handle:   childRec.handle,
		Parent:   rec.handle,
		Version:  child.Version(),
		Cached:   childRec.cached,
		Nodes:    childRec.nodes,
		Links:    childRec.links,
		MutateUS: elapsed.Microseconds(),
	})
}

func (s *server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	rec, ok := s.handleFor(r.PathValue("handle"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown plan handle %q", r.PathValue("handle"))
		return
	}
	release := s.admitCompute(w, r)
	if release == nil {
		return
	}
	defer release()

	var req evalRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	start := time.Now()
	rel, err := rec.plan.Eval(req.PFail)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "eval: %v", err)
		return
	}
	s.latEval.Observe(time.Since(start).Microseconds())
	writeJSON(w, http.StatusOK, evalResponse{Handle: rec.handle, Reliability: rel})
}

func (s *server) handleEvalBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Inc()
	rec, ok := s.handleFor(r.PathValue("handle"))
	if !ok {
		s.fail(w, http.StatusNotFound, "unknown plan handle %q", r.PathValue("handle"))
		return
	}
	release := s.admitCompute(w, r)
	if release == nil {
		return
	}
	defer release()

	var req evalBatchRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Scenarios) == 0 {
		s.fail(w, http.StatusBadRequest, "empty scenario batch")
		return
	}
	if len(req.Scenarios) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest, "batch of %d scenarios exceeds the limit %d; split the request", len(req.Scenarios), s.cfg.MaxBatch)
		return
	}

	bufp := s.resultPool.Get().(*[]float64)
	if cap(*bufp) < len(req.Scenarios) {
		*bufp = make([]float64, len(req.Scenarios))
	}
	dst := (*bufp)[:len(req.Scenarios)]

	start := time.Now()
	err := rec.plan.EvalBatchInto(dst, req.Scenarios, flowrel.EvalBatchOptions{})
	if err != nil {
		*bufp = dst[:0]
		s.resultPool.Put(bufp)
		s.fail(w, http.StatusBadRequest, "evalbatch: %v", err)
		return
	}
	s.latEvalBatch.Observe(time.Since(start).Microseconds())
	writeJSON(w, http.StatusOK, evalBatchResponse{Handle: rec.handle, Reliabilities: dst})
	*bufp = dst[:0]
	s.resultPool.Put(bufp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.adm.saturated() {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "saturated")
		return
	}
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ready")
}

func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"uptime_s":   int64(time.Since(s.start).Seconds()),
		"requests":   s.requests.Value(),
		"errors":     s.errorsTotal.Value(),
		"plans":      s.planCount(),
		"admission":  s.adm.counters(),
		"plan_cache": flowrel.PlanCacheSnapshot(),
		"latency_us": map[string]stats.FineSnapshot{
			"compile":   s.latCompile.FineSnapshot(),
			"mutate":    s.latMutate.FineSnapshot(),
			"eval":      s.latEval.FineSnapshot(),
			"evalbatch": s.latEvalBatch.FineSnapshot(),
		},
	})
}

// nodeNames returns the display name of every node in the file (the
// submitted name, or a stable fallback for anonymous nodes).
func nodeNames(f *flowrel.File) []string {
	names := make([]string, f.Graph.NumNodes())
	for i := range names {
		if nm := f.Graph.NodeName(flowrel.NodeID(i)); nm != "" {
			names[i] = nm
		} else {
			names[i] = fmt.Sprintf("n%d", i)
		}
	}
	return names
}
