package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"flowrel"
)

// swapCompile substitutes the compile entry point for the duration of a
// test, restoring the real one afterwards.
func swapCompile(t *testing.T, fn func(context.Context, *flowrel.Graph, flowrel.Demand, flowrel.Config) (*flowrel.Plan, error)) {
	t.Helper()
	prev := compilePlanCtx
	compilePlanCtx = fn
	t.Cleanup(func() { compilePlanCtx = prev })
}

// submitBody is a minimal valid submission (two parallel s→t links).
func submitBody(t *testing.T) []byte {
	t.Helper()
	b := flowrel.NewBuilder()
	s := b.AddNamedNode("s")
	tt := b.AddNamedNode("t")
	b.AddEdge(s, tt, 1, 0.1)
	b.AddEdge(s, tt, 1, 0.1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	dem := flowrel.Demand{S: s, T: tt, D: 1}
	topo, err := json.Marshal(&flowrel.File{Graph: g, Demand: &dem})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{"topology": json.RawMessage(topo)})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// getStatus GETs a path and returns the status code plus Retry-After.
func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After")
}

// TestAdmissionOverloadSheds429 drives one worker + one queue slot into
// saturation with blocked compiles and checks the full overload ladder:
// the third concurrent request is rejected with 429 + Retry-After while
// /readyz reports 503, and once the compiles unblock the earlier two
// requests complete normally and readiness recovers.
func TestAdmissionOverloadSheds429(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{}, 4)
	swapCompile(t, func(ctx context.Context, g *flowrel.Graph, dem flowrel.Demand, cfg flowrel.Config) (*flowrel.Plan, error) {
		entered <- struct{}{}
		<-gate
		return flowrel.CompilePlan(g, dem, cfg)
	})

	srv := newTestServer(t, serverConfig{Workers: 1, Queue: 1})
	body := submitBody(t)

	type result struct {
		status int
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	post := func() {
		defer wg.Done()
		resp, err := http.Post(srv.URL+"/v1/topologies", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Error(err)
			results <- result{0}
			return
		}
		resp.Body.Close()
		results <- result{resp.StatusCode}
	}

	// Request A takes the only worker slot and blocks inside compile.
	wg.Add(1)
	go post()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("request A never reached the compile")
	}

	// Request B occupies the single queue slot. It never reaches the
	// compile while A blocks, so poll readiness: /readyz flips to 503
	// once the queue is full.
	wg.Add(1)
	go post()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if status, retry := getStatus(t, srv.URL+"/readyz"); status == http.StatusServiceUnavailable {
			if retry == "" {
				t.Error("saturated /readyz carries no Retry-After")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never reported saturation")
		}
		time.Sleep(time.Millisecond)
	}

	// Request C finds slots and queue full: immediate 429.
	resp, err := http.Post(srv.URL+"/v1/topologies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After")
	}

	// Unblock the compiles: A and B drain and both succeed.
	close(gate)
	wg.Wait()
	close(results)
	for r := range results {
		if r.status != http.StatusOK {
			t.Errorf("queued request finished with status %d, want 200", r.status)
		}
	}

	// Readiness recovers once the queue drains.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if status, _ := getStatus(t, srv.URL+"/readyz"); status == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never recovered after drain")
		}
		time.Sleep(time.Millisecond)
	}

	// The shed request is visible in the admission counters.
	var statsz struct {
		Admission admissionCounters `json:"admission"`
	}
	resp, err = http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&statsz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if statsz.Admission.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", statsz.Admission.Rejected)
	}
}

// TestClientDisconnectCancelsCompile verifies the request context is
// threaded into the compile: when the client goes away mid-compile, the
// compile's ctx fires and the worker slot frees for the next request.
func TestClientDisconnectCancelsCompile(t *testing.T) {
	entered := make(chan struct{})
	cancelled := make(chan struct{})
	swapCompile(t, func(ctx context.Context, g *flowrel.Graph, dem flowrel.Demand, cfg flowrel.Config) (*flowrel.Plan, error) {
		close(entered)
		<-ctx.Done()
		close(cancelled)
		return nil, ctx.Err()
	})

	srv := newTestServer(t, serverConfig{Workers: 1})
	body := submitBody(t)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		srv.URL+"/v1/topologies", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")

	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()

	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("compile never started")
	}
	cancel() // the client disconnects mid-compile

	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("compile context was not cancelled on client disconnect")
	}
	if err := <-done; err == nil {
		t.Error("cancelled client request unexpectedly succeeded")
	}

	// The slot the cancelled request held must be free again: a fresh
	// request (real compile) completes.
	swapCompile(t, flowrel.CompilePlanCtx)
	resp, err := http.Post(srv.URL+"/v1/topologies", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("follow-up request: status %d, want 200", resp.StatusCode)
	}
}

// TestClientDisconnectWhileQueued verifies a queued request that gives up
// leaves the queue: its slot is returned, so the gate does not leak
// capacity.
func TestClientDisconnectWhileQueued(t *testing.T) {
	adm := newAdmission(1, 2)

	release, err := adm.admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := adm.admit(ctx)
		errc <- err
	}()

	// Wait for the waiter to be counted, then abandon it.
	deadline := time.Now().Add(5 * time.Second)
	for adm.counters().Queued == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("cancelled waiter admitted")
	}

	// The queue slot must be back: a fresh waiter queues (rather than
	// being shed) and admits once the worker frees.
	if got := adm.counters().Queued; got != 0 {
		t.Fatalf("queued = %d after cancellation, want 0", got)
	}
	admitted := make(chan struct{})
	go func() {
		r2, err := adm.admit(context.Background())
		if err != nil {
			t.Error(err)
			close(admitted)
			return
		}
		close(admitted)
		r2()
	}()
	select {
	case <-admitted:
		t.Fatal("waiter admitted while the worker slot was held")
	case <-time.After(10 * time.Millisecond):
	}
	release()
	select {
	case <-admitted:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never admitted after release")
	}
}
