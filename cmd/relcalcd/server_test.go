package main

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"flowrel"
)

// loadTopology reads a testdata graph and returns its JSON encoding plus
// the parsed file for direct-library comparison.
func loadTopology(t *testing.T, path string) (json.RawMessage, *flowrel.File) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	file, err := flowrel.ParseText(f)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(file)
	if err != nil {
		t.Fatal(err)
	}
	return blob, file
}

func newTestServer(t *testing.T, cfg serverConfig) *httptest.Server {
	t.Helper()
	flowrel.ResetPlanCache()
	t.Cleanup(flowrel.ResetPlanCache)
	srv := httptest.NewServer(newServer(cfg))
	t.Cleanup(srv.Close)
	return srv
}

// postJSON sends v (pre-encoded JSON or a marshalable value) and decodes
// the JSON response into out (unless nil), returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	var body []byte
	switch b := v.(type) {
	case json.RawMessage:
		body = b
	case []byte:
		body = b
	default:
		var err error
		body, err = json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response from %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func submit(t *testing.T, srv *httptest.Server, topology json.RawMessage) submitResponse {
	t.Helper()
	var res submitResponse
	req := map[string]any{"topology": topology}
	if status := postJSON(t, srv.URL+"/v1/topologies", req, &res); status != http.StatusOK {
		t.Fatalf("submit: status %d", status)
	}
	if res.Handle == "" {
		t.Fatal("submit returned an empty handle")
	}
	return res
}

// TestSubmitEvalRoundTrip drives the full query API against figure4 and
// cross-checks every answer against the in-process library.
func TestSubmitEvalRoundTrip(t *testing.T) {
	topo, file := loadTopology(t, "../../testdata/figure4.g")
	srv := newTestServer(t, serverConfig{})

	res := submit(t, srv, topo)
	if res.Links != file.Graph.NumEdges() || res.Nodes != file.Graph.NumNodes() {
		t.Errorf("submit reported %d nodes / %d links, want %d / %d",
			res.Nodes, res.Links, file.Graph.NumNodes(), file.Graph.NumEdges())
	}

	plan, err := flowrel.CompilePlan(file.Graph, *file.Demand, flowrel.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantBase, err := plan.Eval(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Single eval, base probabilities (pfail omitted).
	var ev evalResponse
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/eval", map[string]any{}, &ev); status != http.StatusOK {
		t.Fatalf("eval: status %d", status)
	}
	if math.Abs(ev.Reliability-wantBase) > 1e-15 {
		t.Errorf("eval(base) = %v, library says %v", ev.Reliability, wantBase)
	}

	// Single eval, explicit vector with one link forced down.
	down := plan.BasePFail()
	down[0] = 1
	wantDown, err := plan.Eval(down)
	if err != nil {
		t.Fatal(err)
	}
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/eval", evalRequest{PFail: down}, &ev); status != http.StatusOK {
		t.Fatalf("eval(down): status %d", status)
	}
	if math.Abs(ev.Reliability-wantDown) > 1e-15 {
		t.Errorf("eval(link0 down) = %v, library says %v", ev.Reliability, wantDown)
	}

	// Batch: base (null), the down vector, and an all-up vector.
	up := make([]float64, file.Graph.NumEdges())
	scenarios := [][]float64{nil, down, up}
	var bv evalBatchResponse
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/evalbatch",
		evalBatchRequest{Scenarios: scenarios}, &bv); status != http.StatusOK {
		t.Fatalf("evalbatch: status %d", status)
	}
	if len(bv.Reliabilities) != 3 {
		t.Fatalf("evalbatch returned %d results, want 3", len(bv.Reliabilities))
	}
	wantBatch, err := plan.EvalBatch(scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantBatch {
		if math.Abs(bv.Reliabilities[i]-wantBatch[i]) > 1e-15 {
			t.Errorf("evalbatch[%d] = %v, library says %v", i, bv.Reliabilities[i], wantBatch[i])
		}
	}

	// Resubmitting the same topology returns the same handle, served from
	// the plan cache.
	res2 := submit(t, srv, topo)
	if res2.Handle != res.Handle {
		t.Errorf("resubmission changed the handle: %s vs %s", res2.Handle, res.Handle)
	}
	if !res2.Cached {
		t.Error("resubmission was not served from the plan cache")
	}

	// Plan metadata.
	resp, err := http.Get(srv.URL + "/v1/plans/" + res.Handle)
	if err != nil {
		t.Fatal(err)
	}
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info["handle"] != res.Handle {
		t.Errorf("plan info handle = %v", info["handle"])
	}
	if dem, ok := info["demand"].(map[string]any); !ok || dem["s"] != "s" || dem["t"] != "t" {
		t.Errorf("plan info demand = %v, want s→t", info["demand"])
	}

	// Liveness and stats surfaces.
	for _, path := range []string{"/healthz", "/readyz", "/statsz", "/debug/vars"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}
}

// TestEvalValidation covers the 4xx surface: unknown handles, malformed
// bodies, wrong vector lengths, oversized and empty batches, and
// demand-less topologies.
func TestEvalValidation(t *testing.T) {
	topo, file := loadTopology(t, "../../testdata/figure2.g")
	srv := newTestServer(t, serverConfig{MaxBatch: 4})
	res := submit(t, srv, topo)

	if status := postJSON(t, srv.URL+"/v1/plans/nosuchhandle/eval", map[string]any{}, nil); status != http.StatusNotFound {
		t.Errorf("unknown handle eval: status %d, want 404", status)
	}
	if status := postJSON(t, srv.URL+"/v1/topologies", []byte(`{"topology": 42}`), nil); status != http.StatusBadRequest {
		t.Errorf("malformed topology: status %d, want 400", status)
	}
	if status := postJSON(t, srv.URL+"/v1/topologies", []byte(`{}`), nil); status != http.StatusBadRequest {
		t.Errorf("missing topology: status %d, want 400", status)
	}

	// Topology without a demand line.
	var naked flowrel.File
	naked.Graph = file.Graph
	blob, err := json.Marshal(&naked)
	if err != nil {
		t.Fatal(err)
	}
	if status := postJSON(t, srv.URL+"/v1/topologies", map[string]any{"topology": json.RawMessage(blob)}, nil); status != http.StatusBadRequest {
		t.Errorf("demand-less topology: status %d, want 400", status)
	}

	// Wrong eval vector length.
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/eval",
		evalRequest{PFail: []float64{0.5}}, nil); status != http.StatusBadRequest {
		t.Errorf("short pfail vector: status %d, want 400", status)
	}

	// Batch limits.
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/evalbatch",
		evalBatchRequest{}, nil); status != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", status)
	}
	big := make([][]float64, 5) // MaxBatch is 4
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/evalbatch",
		evalBatchRequest{Scenarios: big}, nil); status != http.StatusBadRequest {
		t.Errorf("oversized batch: status %d, want 400", status)
	}
}

// TestCompileBudgetExhaustion429 maps an exhausted per-request anytime
// budget to 429 + Retry-After through the real compile path: MaxConfigs 1
// cannot cover figure4's side lattices, so the compile is interrupted and
// the request is told to retry (with a bigger budget, or once a luckier
// caller has warmed the cache).
func TestCompileBudgetExhaustion429(t *testing.T) {
	topo, _ := loadTopology(t, "../../testdata/figure4.g")
	srv := newTestServer(t, serverConfig{})

	body := map[string]any{
		"topology": topo,
		"budget":   budgetSpec{MaxConfigs: 1},
	}
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/topologies", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("budget-exhausted compile: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var e errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.Error, "budget") {
		t.Errorf("error %q does not name the budget", e.Error)
	}
}

// TestPlanRegistryLRU bounds the handle registry: with MaxPlans 2, the
// first of three submitted structures is forgotten (404) while the later
// two still answer.
func TestPlanRegistryLRU(t *testing.T) {
	srv := newTestServer(t, serverConfig{MaxPlans: 2})

	handles := make([]string, 3)
	for i := range handles {
		b := flowrel.NewBuilder()
		s := b.AddNamedNode("s")
		tt := b.AddNamedNode("t")
		b.AddEdge(s, tt, i+1, 0.1) // capacity varies → distinct structure
		b.AddEdge(s, tt, 1, 0.2)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		dem := flowrel.Demand{S: s, T: tt, D: 1}
		file := &flowrel.File{Graph: g, Demand: &dem}
		blob, err := json.Marshal(file)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = submit(t, srv, blob).Handle
	}

	status := postJSON(t, srv.URL+"/v1/plans/"+handles[0]+"/eval", map[string]any{}, nil)
	if status != http.StatusNotFound {
		t.Errorf("evicted handle: status %d, want 404", status)
	}
	for _, h := range handles[1:] {
		if status := postJSON(t, srv.URL+"/v1/plans/"+h+"/eval", map[string]any{}, nil); status != http.StatusOK {
			t.Errorf("resident handle %s: status %d, want 200", h, status)
		}
	}
}

// TestHandleDependsOnProbabilities pins the handle derivation: same
// structure with different failure probabilities must yield different
// handles (each handle's nil-pfail baseline is its own submission), while
// the underlying structural compile is shared through the plan cache.
func TestHandleDependsOnProbabilities(t *testing.T) {
	srv := newTestServer(t, serverConfig{})

	build := func(pfail float64) json.RawMessage {
		b := flowrel.NewBuilder()
		s := b.AddNamedNode("s")
		tt := b.AddNamedNode("t")
		b.AddEdge(s, tt, 1, pfail)
		b.AddEdge(s, tt, 1, 0.2)
		g, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		dem := flowrel.Demand{S: s, T: tt, D: 1}
		blob, err := json.Marshal(&flowrel.File{Graph: g, Demand: &dem})
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}

	a := submit(t, srv, build(0.1))
	b := submit(t, srv, build(0.3))
	if a.Handle == b.Handle {
		t.Fatal("different failure probabilities produced the same handle")
	}
	if !b.Cached {
		t.Error("structurally identical resubmission did not hit the plan cache")
	}

	// Each handle's nil-pfail eval answers its own baseline.
	var ra, rb evalResponse
	if status := postJSON(t, srv.URL+"/v1/plans/"+a.Handle+"/eval", map[string]any{}, &ra); status != http.StatusOK {
		t.Fatalf("eval a: %d", status)
	}
	if status := postJSON(t, srv.URL+"/v1/plans/"+b.Handle+"/eval", map[string]any{}, &rb); status != http.StatusOK {
		t.Fatalf("eval b: %d", status)
	}
	if math.Abs(ra.Reliability-rb.Reliability) < 1e-12 {
		t.Errorf("baselines coincide (%v); the handles are not carrying their own probabilities", ra.Reliability)
	}
}

// TestStatszShape checks the operational snapshot carries the sections
// capacity planning reads: admission counters, plan-cache counters and
// per-endpoint latency quantiles.
func TestStatszShape(t *testing.T) {
	topo, _ := loadTopology(t, "../../testdata/figure2.g")
	srv := newTestServer(t, serverConfig{})
	res := submit(t, srv, topo)
	for i := 0; i < 3; i++ {
		if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/eval", map[string]any{}, nil); status != http.StatusOK {
			t.Fatalf("eval %d: status %d", i, status)
		}
	}

	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statsz struct {
		Requests  int64             `json:"requests"`
		Plans     int               `json:"plans"`
		Admission admissionCounters `json:"admission"`
		PlanCache struct {
			Misses uint64 `json:"misses"`
			Shards int    `json:"shards"`
		} `json:"plan_cache"`
		LatencyUS map[string]struct {
			Count int64 `json:"count"`
			P99   int64 `json:"p99"`
		} `json:"latency_us"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statsz); err != nil {
		t.Fatal(err)
	}
	if statsz.Requests < 4 || statsz.Plans != 1 {
		t.Errorf("requests=%d plans=%d, want ≥4 and 1", statsz.Requests, statsz.Plans)
	}
	if statsz.Admission.Workers <= 0 {
		t.Error("admission counters missing")
	}
	if statsz.PlanCache.Misses == 0 || statsz.PlanCache.Shards == 0 {
		t.Errorf("plan cache section incomplete: %+v", statsz.PlanCache)
	}
	lat, ok := statsz.LatencyUS["eval"]
	if !ok || lat.Count != 3 {
		t.Errorf("eval latency histogram count = %+v, want 3 observations", lat)
	}
	if _, ok := statsz.LatencyUS["compile"]; !ok {
		t.Error("compile latency histogram missing")
	}
}

// TestMutateEndpoint walks a mutation chain over the wire: each POST to
// /v1/plans/{h}/mutate registers a successor under its own handle, both
// generations stay queryable, and the successors' answers match the
// in-process library on the mutated graphs.
func TestMutateEndpoint(t *testing.T) {
	topo, file := loadTopology(t, "../../testdata/figure4.g")
	srv := newTestServer(t, serverConfig{})
	res := submit(t, srv, topo)

	// Capacity bump on link 0, then a fresh parallel link.
	muts := []mutateRequest{
		{Kind: "capacity", Link: 0, Cap: file.Graph.Edge(0).Cap + 1},
		{Kind: "add", U: int(file.Demand.S), V: int(file.Demand.T), Cap: 1, PFail: 0.5},
	}
	g := file.Graph
	parent := res.Handle
	for i, mq := range muts {
		var mr mutateResponse
		if status := postJSON(t, srv.URL+"/v1/plans/"+parent+"/mutate", mq, &mr); status != http.StatusOK {
			t.Fatalf("mutate %d: status %d", i, status)
		}
		if mr.Handle == parent || mr.Handle == "" {
			t.Fatalf("mutate %d: successor handle %q aliases parent %q", i, mr.Handle, parent)
		}
		if mr.Parent != parent {
			t.Fatalf("mutate %d: parent %q, want %q", i, mr.Parent, parent)
		}
		if mr.Version != i+1 {
			t.Fatalf("mutate %d: version %d, want %d", i, mr.Version, i+1)
		}

		// The successor answers for the mutated graph.
		var mut flowrel.Mutation
		switch mq.Kind {
		case "capacity":
			mut = flowrel.Mutation{Kind: flowrel.MutateCapacity, Link: flowrel.EdgeID(mq.Link), Cap: mq.Cap}
		case "add":
			mut = flowrel.Mutation{Kind: flowrel.MutateAdd, U: flowrel.NodeID(mq.U), V: flowrel.NodeID(mq.V), Cap: mq.Cap, PFail: mq.PFail}
		}
		g2, _, err := mut.Apply(g)
		if err != nil {
			t.Fatal(err)
		}
		want, err := flowrel.CompilePlan(g2, *file.Demand, flowrel.Config{})
		if err != nil {
			t.Fatal(err)
		}
		wantR, err := want.Eval(nil)
		if err != nil {
			t.Fatal(err)
		}
		var ev evalResponse
		if status := postJSON(t, srv.URL+"/v1/plans/"+mr.Handle+"/eval", map[string]any{}, &ev); status != http.StatusOK {
			t.Fatalf("eval of successor %d: status %d", i, status)
		}
		if math.Abs(ev.Reliability-wantR) > 1e-15 {
			t.Fatalf("mutate %d: successor eval %v, library says %v", i, ev.Reliability, wantR)
		}
		g, parent = g2, mr.Handle
	}

	// The original plan is still registered and still answers.
	var ev evalResponse
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/eval", map[string]any{}, &ev); status != http.StatusOK {
		t.Fatalf("eval of original after mutations: status %d", status)
	}
}

// TestMutateEndpointValidation covers the failure surface: unknown
// handles, malformed kinds, invalid link IDs and exhausted budgets.
func TestMutateEndpointValidation(t *testing.T) {
	topo, _ := loadTopology(t, "../../testdata/figure4.g")
	srv := newTestServer(t, serverConfig{})
	res := submit(t, srv, topo)

	var er errorResponse
	if status := postJSON(t, srv.URL+"/v1/plans/nope/mutate", mutateRequest{Kind: "capacity"}, &er); status != http.StatusNotFound {
		t.Errorf("unknown handle: status %d, want 404", status)
	}
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/mutate", mutateRequest{Kind: "tweak"}, &er); status != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d, want 400", status)
	}
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/mutate", mutateRequest{Kind: "remove", Link: 9999}, &er); status != http.StatusUnprocessableEntity {
		t.Errorf("out-of-range link: status %d, want 422", status)
	}
	if !strings.Contains(er.Error, "mutate") {
		t.Errorf("422 error %q does not name the mutate phase", er.Error)
	}
	req := mutateRequest{Kind: "capacity", Link: 0, Cap: 5, Budget: &budgetSpec{MaxConfigs: 1}}
	if status := postJSON(t, srv.URL+"/v1/plans/"+res.Handle+"/mutate", req, &er); status != http.StatusTooManyRequests {
		t.Errorf("exhausted budget: status %d, want 429", status)
	}
}
