package main

import (
	"context"
	"errors"
	"sync/atomic"
)

// errSaturated is returned by admit when both the worker slots and the
// wait queue are full; the handler maps it to 429 + Retry-After.
var errSaturated = errors.New("relcalcd: worker slots and queue full")

// admission is the service's bounded worker/queue gate. Compute requests
// (compile, eval, evalbatch) must admit() before touching a plan:
// `workers` requests run concurrently, up to `queue` more wait for a
// slot, and everything beyond that is rejected immediately — the
// closed-loop behaviour that keeps tail latency bounded under overload
// instead of collapsing into an unbounded goroutine pileup.
//
// Saturation (the wait queue at capacity) also flips /readyz to 503, so
// a load balancer drains the instance before clients see 429s.
type admission struct {
	slots    chan struct{}
	queue    int64
	queued   atomic.Int64
	inflight atomic.Int64
	rejected atomic.Int64
}

func newAdmission(workers, queue int) *admission {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	return &admission{slots: make(chan struct{}, workers), queue: int64(queue)}
}

// admit blocks until a worker slot frees (queueing at most `queue`
// waiters) or ctx is cancelled. On success the caller must invoke the
// returned release exactly once. errSaturated means the request never
// queued; a ctx error means the client went away while queued.
func (a *admission) admit(ctx context.Context) (release func(), err error) {
	release = func() {
		a.inflight.Add(-1)
		<-a.slots
	}
	// Fast path: a free slot, no queueing.
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return release, nil
	default:
	}
	if a.queued.Add(1) > a.queue {
		a.queued.Add(-1)
		a.rejected.Add(1)
		return nil, errSaturated
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		a.inflight.Add(1)
		return release, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// saturated reports whether the wait queue is at capacity — the /readyz
// criterion. A zero-length queue is saturated whenever all slots are
// busy.
func (a *admission) saturated() bool {
	if a.queue == 0 {
		return len(a.slots) == cap(a.slots)
	}
	return a.queued.Load() >= a.queue
}

// admissionCounters is the snapshot surfaced on /statsz.
type admissionCounters struct {
	Workers  int   `json:"workers"`
	Queue    int   `json:"queue"`
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`
	Rejected int64 `json:"rejected"`
}

func (a *admission) counters() admissionCounters {
	return admissionCounters{
		Workers:  cap(a.slots),
		Queue:    int(a.queue),
		Inflight: a.inflight.Load(),
		Queued:   a.queued.Load(),
		Rejected: a.rejected.Load(),
	}
}
