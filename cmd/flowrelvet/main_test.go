package main

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The testdata/vetme package carries exactly one deliberate finding (an
// unknown waiver marker), giving the exit-code and output-mode tests a
// stable target that wildcard patterns never pull into the real vet run.
const vetme = "./testdata/vetme"

func TestExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"list is clean", []string{"-list"}, exitClean},
		{"unknown analyzer is an operational error", []string{"-c", "nosuch", vetme}, exitError},
		{"unparseable package is an operational error", []string{"./does/not/exist"}, exitError},
		{"findings exit 1", []string{vetme}, exitFindings},
		{"clean run exits 0", []string{"-c", "floateq", vetme}, exitClean},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(c.args, &stdout, &stderr); got != c.want {
				t.Errorf("run(%v) = %d, want %d\nstdout: %s\nstderr: %s",
					c.args, got, c.want, stdout.String(), stderr.String())
			}
		})
	}
}

func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-json", vetme}, &stdout, &stderr); got != exitFindings {
		t.Fatalf("run -json = %d, want %d (stderr: %s)", got, exitFindings, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	n := 0
	for dec.More() {
		var f finding
		if err := dec.Decode(&f); err != nil {
			t.Fatalf("decoding finding %d: %v", n, err)
		}
		n++
		if f.File == "" || f.Line == 0 || f.Analyzer == "" || f.Message == "" {
			t.Errorf("finding %d has empty fields: %+v", n, f)
		}
		if f.Analyzer != "waiverlint" {
			t.Errorf("finding %d from %q, want waiverlint", n, f.Analyzer)
		}
	}
	if n == 0 {
		t.Fatal("no JSON findings decoded")
	}
}

func TestOnlyFilter(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-only", "vetme.go", vetme}, &stdout, &stderr); got != exitFindings {
		t.Fatalf("run -only vetme.go = %d, want %d", got, exitFindings)
	}
	stdout.Reset()
	stderr.Reset()
	if got := run([]string{"-only", "unrelated.go", vetme}, &stdout, &stderr); got != exitClean {
		t.Fatalf("run -only unrelated.go = %d, want %d (stdout: %s)", got, exitClean, stdout.String())
	}
}

func TestMatchesAny(t *testing.T) {
	cases := []struct {
		file, filter string
		want         bool
	}{
		{"/repo/internal/core/plan.go", "plan.go", true},
		{"/repo/internal/core/plan.go", "internal/core/plan.go", true},
		{"/repo/internal/core/plan.go", "./internal/core/plan.go", true},
		{"/repo/internal/core/myplan.go", "plan.go", false},
		{"plan.go", "plan.go", true},
	}
	for _, c := range cases {
		if got := matchesAny(c.file, []string{c.filter}); got != c.want {
			t.Errorf("matchesAny(%q, %q) = %v, want %v", c.file, c.filter, got, c.want)
		}
	}
}
