// Command flowrelvet is the multichecker for this repository's custom
// static analyzers: the mechanically enforced correctness invariants the
// solver's design relies on (see docs/ANALYZERS.md).
//
//	flowrelvet [-c analyzer,...] [-only file,...] [-json] [packages]
//
// With no packages it checks ./... . -only restricts the report to
// findings in the named files (matched by path suffix), so a pre-commit
// hook can vet just the files it touched without narrowing the load.
// -json emits one JSON object per finding instead of the text report;
// CI turns that stream into GitHub annotations.
//
// Exit status: 0 clean, 1 findings, 2 usage, load or typecheck failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"flowrel/internal/analysis"
	"flowrel/internal/analysis/anytimecheck"
	"flowrel/internal/analysis/asmguard"
	"flowrel/internal/analysis/ctlthread"
	"flowrel/internal/analysis/floateq"
	"flowrel/internal/analysis/hotalloc"
	"flowrel/internal/analysis/planimmut"
	"flowrel/internal/analysis/pooldiscipline"
	"flowrel/internal/analysis/poolescape"
	"flowrel/internal/analysis/waiverlint"
)

var all = []*analysis.Analyzer{
	anytimecheck.Analyzer,
	asmguard.Analyzer,
	ctlthread.Analyzer,
	floateq.Analyzer,
	hotalloc.Analyzer,
	planimmut.Analyzer,
	pooldiscipline.Analyzer,
	poolescape.Analyzer,
	waiverlint.Analyzer,
}

// Exit codes: findings and operational failures are different events —
// CI treats 1 as "the code broke an invariant" and 2 as "the checker
// itself could not run".
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// A finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("flowrelvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("c", "", "comma-separated analyzer names to run (default: all)")
	onlyFiles := fs.String("only", "", "comma-separated file paths; report only findings whose file matches one (suffix match)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON stream instead of text")
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: flowrelvet [-c analyzer,...] [-only file,...] [-json] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(stderr, "  %-16s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, firstLine(a.Doc))
		}
		return exitClean
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "flowrelvet: unknown analyzer %q\n", name)
				return exitError
			}
			analyzers = append(analyzers, a)
		}
	}

	units, err := analysis.Load("", fs.Args()...)
	if err != nil {
		fmt.Fprintf(stderr, "flowrelvet: %v\n", err)
		return exitError
	}
	diags, err := analysis.RunAnalyzers("", units, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "flowrelvet: %v\n", err)
		return exitError
	}

	var filters []string
	if *onlyFiles != "" {
		for _, f := range strings.Split(*onlyFiles, ",") {
			if f = strings.TrimSpace(f); f != "" {
				filters = append(filters, f)
			}
		}
	}

	// One unit per package: with in-package tests the unit is the
	// augmented variant, so positions cover test files too.
	enc := json.NewEncoder(stdout)
	reported := 0
	for _, d := range diags {
		pos := units[0].Fset.Position(d.Pos)
		if len(filters) > 0 && !matchesAny(pos.Filename, filters) {
			continue
		}
		reported++
		if *jsonOut {
			enc.Encode(finding{
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			continue
		}
		fmt.Fprintf(stdout, "%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if reported > 0 {
		fmt.Fprintf(stderr, "flowrelvet: %d finding(s)\n", reported)
		return exitFindings
	}
	return exitClean
}

// matchesAny reports whether the diagnostic's file matches one of the
// -only filters: an exact path, or a suffix at a path boundary (so
// "plan.go" matches ".../core/plan.go" but not ".../myplan.go").
func matchesAny(file string, filters []string) bool {
	for _, f := range filters {
		if file == f || strings.HasSuffix(file, "/"+strings.TrimPrefix(f, "./")) {
			return true
		}
	}
	return false
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
