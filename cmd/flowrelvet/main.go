// Command flowrelvet is the multichecker for this repository's custom
// static analyzers: the mechanically enforced correctness invariants the
// solver's design relies on (see docs/ANALYZERS.md).
//
//	flowrelvet [-c analyzer,...] [packages]
//
// With no packages it checks ./... . Exit status: 0 clean, 1 findings,
// 2 usage or load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"flowrel/internal/analysis"
	"flowrel/internal/analysis/anytimecheck"
	"flowrel/internal/analysis/ctlthread"
	"flowrel/internal/analysis/floateq"
	"flowrel/internal/analysis/planimmut"
	"flowrel/internal/analysis/poolescape"
)

var all = []*analysis.Analyzer{
	anytimecheck.Analyzer,
	ctlthread.Analyzer,
	floateq.Analyzer,
	planimmut.Analyzer,
	poolescape.Analyzer,
}

func main() {
	only := flag.String("c", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: flowrelvet [-c analyzer,...] [packages]\n\nAnalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, firstLine(a.Doc))
		}
	}
	flag.Parse()

	if *list {
		for _, a := range all {
			fmt.Printf("%-14s %s\n", a.Name, firstLine(a.Doc))
		}
		return
	}

	analyzers := all
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "flowrelvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	units, err := analysis.Load("", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flowrelvet: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.RunAnalyzers(units, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flowrelvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		// One unit per package: with in-package tests the unit is the
		// augmented variant, so positions cover test files too.
		fmt.Printf("%s: %s: %s\n", units[0].Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "flowrelvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
