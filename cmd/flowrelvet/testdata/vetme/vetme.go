// Package vetme exists so flowrelvet's own tests have a package with a
// known finding: the marker below is deliberately not one the suite
// defines. Wildcard patterns (./...) never match testdata directories,
// so the repository-wide vet run stays clean.
package vetme

//flowrelvet:bogus deliberately unknown marker for the exit-code test
func Probe() int { return 1 }
