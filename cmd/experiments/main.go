// Command experiments regenerates every table and figure of the paper
// (Fujita, IPDPSW 2017) plus the ablations listed in DESIGN.md §5, and
// prints the results as text tables. EXPERIMENTS.md records one run.
//
// Usage:
//
//	experiments            # run everything
//	experiments -run E7    # one experiment
//	experiments -run E1,E2,A1
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	"flowrel/internal/anytime"
	"flowrel/internal/assign"
	"flowrel/internal/chain"
	"flowrel/internal/churn"
	"flowrel/internal/core"
	"flowrel/internal/graph"
	"flowrel/internal/mincut"
	"flowrel/internal/multicast"
	"flowrel/internal/overlay"
	"flowrel/internal/poly"
	"flowrel/internal/reduce"
	"flowrel/internal/reliability"
	"flowrel/internal/sim"
	"flowrel/internal/srlg"
	"flowrel/internal/subset"
)

var (
	runFlag     = flag.String("run", "all", "comma-separated experiment ids (E1..E17, A1..A8) or 'all'")
	timeoutFlag = flag.Duration("timeout", 0, "soft deadline for the whole run; experiments past it are skipped with a note")
	cfgsFlag    = flag.Uint64("max-configs", 0, "extra budget row for the A7 anytime ablation")
)

type experiment struct {
	id    string
	title string
	run   func()
}

func main() {
	flag.Parse()
	all := []experiment{
		{"E1", "Fig. 1 — naive enumeration of failure configurations", e1},
		{"E2", "Fig. 2 + Eq. 1 — bridge decomposition", e2},
		{"E3", "Example 1 — assignment set for d=5, caps (3,3,3)", e3},
		{"E4", "Fig. 4/5 + Example 3 — two bottleneck links", e4},
		{"E5", "Example 4/5 — support classification", e5},
		{"E6", "Example 6 / Table I — procedure ACCUMULATION", e6},
		{"E7", "Headline claim — naive 2^|E| vs proposed 2^{α|E|}", e7},
		{"E8", "§III-C cost model — |D|·2^{|E_side|} realization checks", e8},
		{"E9", "§I–II motivation — single tree vs multiple trees", e9},
		{"E10", "Exact reliability vs streaming simulation", e10},
		{"E11", "Extension — chain decomposition over r cuts", e11},
		{"E12", "Extension — multicast: serving every subscriber at once", e12},
		{"E13", "Extension — peer churn: trees vs meshes under node failures", e13},
		{"E14", "Extension — the reliability polynomial R(p)", e14},
		{"E15", "Extension — shared-risk groups on the bottleneck links", e15},
		{"E16", "Extension — Birnbaum importance finds the bottleneck links", e16},
		{"E17", "Extension — renewal dynamics: availability vs static reliability", e17},
		{"A1", "Ablation — accumulation: direct subset scan vs zeta transform", a1},
		{"A2", "Ablation — side arrays: binary recompute vs Gray-code vs monotone frontier", a2},
		{"A3", "Ablation — exact engines compared", a3},
		{"A4", "Ablation — Monte Carlo convergence", a4},
		{"A5", "Ablation — exact reductions as preprocessing", a5},
		{"A6", "Ablation — most-probable-states bounds convergence", a6},
		{"A7", "Ablation — anytime budgets: certified intervals from interrupted runs", a7},
		{"A8", "Ablation — plan reuse: compile once, sweep as probability evaluations", a8},
	}
	want := map[string]bool{}
	if *runFlag != "all" {
		for _, id := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	var deadline time.Time
	if *timeoutFlag > 0 {
		deadline = time.Now().Add(*timeoutFlag)
	}
	ran := 0
	for _, ex := range all {
		if *runFlag != "all" && !want[ex.id] {
			continue
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			fmt.Printf("\n=== %s: %s === SKIPPED (deadline %v passed)\n", ex.id, ex.title, *timeoutFlag)
			ran++
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", ex.id, ex.title)
		ex.run()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched -run %q\n", *runFlag)
		os.Exit(1)
	}
}

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// e1 reproduces Figure 1: enumerate every failure configuration of a small
// graph, test each with a max-flow computation, and sum the admitting
// probabilities. Cross-checked against exact rational arithmetic.
func e1() {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	res := must(reliability.Naive(o.G, dem, reliability.Options{}))
	exact := must(reliability.NaiveExact(o.G, dem))
	ef, _ := exact.Float64()
	fmt.Printf("graph: %d links → %d configurations examined\n", o.G.NumEdges(), res.Stats.Configs)
	fmt.Printf("admitting configurations: %d\n", res.Stats.Admitting)
	fmt.Printf("reliability (float)     : %.12f\n", res.Reliability)
	fmt.Printf("reliability (exact)     : %.12f  (%s)\n", ef, exact.RatString())
	fmt.Printf("agreement               : %.2e\n", abs(res.Reliability-ef))
}

// e2 reproduces Figure 2 / Equation 1: on a graph with a bridge e',
// r = r(G_s) · (1-p(e')) · r(G_t) equals the whole-graph reliability.
func e2() {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	bt := must(mincut.Split(o.G, dem.S, dem.T, o.Bottleneck))
	rs := must(reliability.Naive(bt.Gs.G, graph.Demand{S: bt.Gs.NodeOf[dem.S], T: bt.XS[0], D: dem.D}, reliability.Options{}))
	rt := must(reliability.Naive(bt.Gt.G, graph.Demand{S: bt.YT[0], T: bt.Gt.NodeOf[dem.T], D: dem.D}, reliability.Options{}))
	pe := o.G.Edge(o.Bottleneck[0]).PFail
	eq1 := rs.Reliability * (1 - pe) * rt.Reliability
	whole := must(reliability.Naive(o.G, dem, reliability.Options{}))
	coreRes := must(core.Reliability(o.G, dem, core.Options{}))
	fmt.Printf("r(G_s)            = %.12f   (%d links)\n", rs.Reliability, bt.Gs.G.NumEdges())
	fmt.Printf("1 - p(e')         = %.12f\n", 1-pe)
	fmt.Printf("r(G_t)            = %.12f   (%d links)\n", rt.Reliability, bt.Gt.G.NumEdges())
	fmt.Printf("Eq. 1 product     = %.12f\n", eq1)
	fmt.Printf("naive whole graph = %.12f\n", whole.Reliability)
	fmt.Printf("core (k=1)        = %.12f\n", coreRes.Reliability)
	fmt.Printf("max deviation     = %.2e\n", max3dev(eq1, whole.Reliability, coreRes.Reliability))
}

// e3 reproduces Example 1: the 12 assignments of d=5 sub-streams to three
// bottleneck links of capacity 3.
func e3() {
	ds := must(assign.Enumerate([]int{3, 3, 3}, 5))
	fmt.Printf("|D| = %d (paper: 12)\n", len(ds))
	var parts []string
	for _, a := range ds {
		parts = append(parts, a.String())
	}
	fmt.Println("D =", strings.Join(parts, ", "))
}

// e4 reproduces Figure 4/5 and Example 3: the two-bottleneck graph, the
// assignment sets realized by three G_s failure configurations, and why a
// plain Eq. 1-style product is wrong when k ≥ 2.
func e4() {
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	res := must(core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck}))
	naive := must(reliability.Naive(o.G, dem, reliability.Options{}))
	fmt.Printf("graph: %d links, bottleneck %v (capacities 2, 2), demand d=2\n", o.G.NumEdges(), o.Bottleneck)
	var parts []string
	for _, a := range res.Assignments {
		parts = append(parts, a.String())
	}
	fmt.Println("D =", strings.Join(parts, ", "), " (paper: (2,0), (1,1), (0,2))")
	fmt.Println("Fig. 5 configurations of G_s and the assignment sets they realize:")
	for i, cfg := range overlay.Figure4Configs() {
		fmt.Printf("  (%c) alive G_s links %v → realizes {%s}\n", 'a'+i, cfg.Alive, strings.Join(cfg.Realizes, ", "))
	}
	// The naive product r(G_s for d)·P(cut up)·r(G_t for d) ignores the
	// assignment structure and is wrong:
	bt := must(mincut.Split(o.G, dem.S, dem.T, o.Bottleneck))
	rs := must(reliability.Naive(bt.Gs.G, graph.Demand{S: bt.Gs.NodeOf[dem.S], T: bt.XS[0], D: 1}, reliability.Options{}))
	_ = rs
	fmt.Printf("correct (ACCUMULATION): %.12f\n", res.Reliability)
	fmt.Printf("naive enumeration     : %.12f   (agreement %.2e)\n", naive.Reliability, abs(res.Reliability-naive.Reliability))
	wrong := wrongEq1Product(o, dem)
	fmt.Printf("wrong Eq.1-style      : %.12f   (error %+.4f — Example 3's warning)\n", wrong, wrong-res.Reliability)
}

// wrongEq1Product mimics applying Eq. 1 with k=2 as if the two sides and
// the cut were independent of the assignment choice: r(G_s admits d to
// {x1,x2} jointly)·P(both cut links up)·r(G_t absorbs d).
func wrongEq1Product(o *overlay.Overlay, dem graph.Demand) float64 {
	bt := must(mincut.Split(o.G, dem.S, dem.T, o.Bottleneck))
	// Probability G_s can push d=2 anywhere across the cut (both links up).
	gs := bt.Gs.G
	b := graph.NewBuilder()
	b.AddNodes(gs.NumNodes())
	for _, e := range gs.Edges() {
		b.AddEdge(e.U, e.V, e.Cap, e.PFail)
	}
	super := b.AddNode()
	for _, x := range bt.XS {
		b.AddEdge(x, super, dem.D, 0)
	}
	gsx := b.MustBuild()
	rs := must(reliability.Naive(gsx, graph.Demand{S: bt.Gs.NodeOf[dem.S], T: super, D: dem.D}, reliability.Options{}))
	// Same for G_t.
	gt := bt.Gt.G
	b2 := graph.NewBuilder()
	b2.AddNodes(gt.NumNodes())
	for _, e := range gt.Edges() {
		b2.AddEdge(e.U, e.V, e.Cap, e.PFail)
	}
	super2 := b2.AddNode()
	for _, y := range bt.YT {
		b2.AddEdge(super2, y, dem.D, 0)
	}
	gtx := b2.MustBuild()
	rt := must(reliability.Naive(gtx, graph.Demand{S: super2, T: bt.Gt.NodeOf[dem.T], D: dem.D}, reliability.Options{}))
	pUp := 1.0
	for _, eid := range o.Bottleneck {
		pUp *= 1 - o.G.Edge(eid).PFail
	}
	return rs.Reliability * pUp * rt.Reliability
}

// e5 reproduces Examples 4 and 5: the support relation and the
// classification of an assignment family by supporting subsets.
func e5() {
	fmt.Println("Example 4 (k=3): subset {e1,e3} supports (2,0,1)?",
		assign.Assignment{2, 0, 1}.SupportedBy(0b101))
	fmt.Println("                 subset {e1,e3} supports (3,0,4)?",
		assign.Assignment{3, 0, 4}.SupportedBy(0b101))
	fmt.Println("                 subset {e1,e3} supports (1,1,0)?",
		assign.Assignment{1, 1, 0}.SupportedBy(0b101))

	ds := []assign.Assignment{{1, 2, 0}, {2, 1, 0}, {1, 1, 1}, {0, 2, 1}, {2, 0, 1}}
	fmt.Println("Example 5: D =", ds)
	names := []string{"{}", "{e1}", "{e2}", "{e1,e2}", "{e3}", "{e1,e3}", "{e2,e3}", "{e1,e2,e3}"}
	for eMask := uint64(0); eMask < 8; eMask++ {
		var class []string
		for _, a := range ds {
			if a.SupportedBy(eMask) {
				class = append(class, a.String())
			}
		}
		if len(class) > 0 {
			fmt.Printf("  D_%-10s = {%s}\n", names[eMask], strings.Join(class, ", "))
		}
	}
}

// e6 reproduces Example 6 / Table I: the ACCUMULATION procedure on the
// paper's abstract side arrays, with concrete configuration probabilities
// derived from two links per side.
func e6() {
	// Table I: realizations per configuration.
	//   G_s: c1 {b1}, c2 {b2}, c3 {b1,b2}, c4 {b2}
	//   G_t: c5 {b1,b2}, c6 {b2}, c7 {b1}, c8 {}
	sReal := []uint64{0b01, 0b10, 0b11, 0b10}
	tReal := []uint64{0b11, 0b10, 0b01, 0b00}
	// Concrete probabilities: two links per side with p = 0.2 and 0.3;
	// c1..c4 (and c5..c8) are the four on/off configurations.
	p1, p2 := 0.2, 0.3
	probs := []float64{p1 * p2, (1 - p1) * p2, p1 * (1 - p2), (1 - p1) * (1 - p2)}

	agg := func(real []uint64) []float64 {
		q := make([]float64, 4)
		for i, rm := range real {
			q[rm] += probs[i]
		}
		subset.SupersetZeta(q, 2)
		return q
	}
	qs := agg(sReal)
	qt := agg(tReal)
	pb1 := qs[0b01] * qt[0b01]
	pb2 := qs[0b10] * qt[0b10]
	pb12 := qs[0b11] * qt[0b11]
	r := pb1 + pb2 - pb12
	fmt.Println("Table I realizations: G_s c1..c4 → {b1},{b2},{b1,b2},{b2}; G_t c5..c8 → {b1,b2},{b2},{b1},{}")
	fmt.Printf("p(c1..c4) = p(c5..c8) = %.3f %.3f %.3f %.3f\n", probs[0], probs[1], probs[2], probs[3])
	fmt.Printf("p_{b1}      = (p(c1)+p(c3))·(p(c5)+p(c7)) = %.6f\n", pb1)
	fmt.Printf("p_{b2}      = (p(c2)+p(c3)+p(c4))·(p(c5)+p(c6)) = %.6f\n", pb2)
	fmt.Printf("p_{b1,b2}   = p(c3)·p(c5) = %.6f\n", pb12)
	fmt.Printf("r_{E''}     = p_{b1} + p_{b2} - p_{b1,b2} = %.6f  (inclusion–exclusion)\n", r)
	// Check the closed forms the paper states.
	wantPb1 := (probs[0] + probs[2]) * (probs[0] + probs[2])
	wantPb2 := (probs[1] + probs[2] + probs[3]) * (probs[0] + probs[1])
	wantPb12 := probs[2] * probs[0]
	fmt.Printf("closed-form check: |Δ| = %.2e, %.2e, %.2e\n",
		abs(pb1-wantPb1), abs(pb2-wantPb2), abs(pb12-wantPb12))
}

// e7 measures the headline claim: runtime of naive 2^{|E|} enumeration vs
// the proposed 2^{α|E|} decomposition on clustered overlays of growing
// size with a 2-link bottleneck (α ≈ 1/2).
func e7() {
	fmt.Printf("%-6s %-6s %-7s %-12s %-12s %-10s %-12s\n",
		"|E|", "alpha", "k", "t_naive", "t_core", "speedup", "2^((1-α)|E|)")
	for _, side := range []int{4, 5, 6, 7, 8, 9, 10, 11} {
		o, err := overlay.Clustered(side, side+3, 2, 2, 2, 0.1, int64(side))
		if err != nil {
			fmt.Println("  generation failed:", err)
			continue
		}
		dem := o.Demand(o.Peers[len(o.Peers)-1])
		m := o.G.NumEdges()

		t0 := time.Now()
		coreRes, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck})
		if err != nil {
			fmt.Printf("%-6d core failed: %v\n", m, err)
			continue
		}
		tCore := time.Since(t0)

		tNaiveS, speedup := "-", "-"
		if m <= 26 {
			t1 := time.Now()
			naive, err := reliability.Naive(o.G, dem, reliability.Options{})
			tNaive := time.Since(t1)
			if err == nil {
				if abs(naive.Reliability-coreRes.Reliability) > 1e-9 {
					fmt.Printf("%-6d MISMATCH core %.12f naive %.12f\n", m, coreRes.Reliability, naive.Reliability)
					continue
				}
				tNaiveS = tNaive.Round(time.Microsecond).String()
				speedup = fmt.Sprintf("%.1fx", float64(tNaive)/float64(tCore))
			}
		}
		pred := pow2((1 - coreRes.Alpha) * float64(m))
		fmt.Printf("%-6d %-6.3f %-7d %-12s %-12s %-10s %-12.0f\n",
			m, coreRes.Alpha, coreRes.K, tNaiveS, tCore.Round(time.Microsecond), speedup, pred)
	}
	fmt.Println("(t_naive omitted beyond |E|=26; the core column keeps growing only with the larger side)")
}

// e8 verifies the §III-C cost model: the number of realization checks is
// exactly |D|·(2^{|E_s|} + 2^{|E_t|}).
func e8() {
	fmt.Printf("%-8s %-6s %-8s %-8s %-14s %-14s %-8s\n", "|E|", "|D|", "|E_s|", "|E_t|", "checks", "formula", "match")
	for seed := int64(1); seed <= 5; seed++ {
		o, err := overlay.Clustered(4+int(seed), 6+int(seed), 2, 2, 2, 0.1, seed)
		if err != nil {
			continue
		}
		dem := o.Demand(o.Peers[len(o.Peers)-1])
		res, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck})
		if err != nil {
			continue
		}
		formula := int64(len(res.Assignments)) * int64(res.Stats.SideConfigs[0]+res.Stats.SideConfigs[1])
		fmt.Printf("%-8d %-6d %-8d %-8d %-14d %-14d %-8v\n",
			o.G.NumEdges(), len(res.Assignments), res.SideEdges[0], res.SideEdges[1],
			res.Stats.RealizationChecks, formula, res.Stats.RealizationChecks == formula)
	}
}

// e9 quantifies the §I–II motivation for multiple-tree delivery: in a
// single tree a failure on the path loses the whole stream, while with
// interior-disjoint stripes each failure loses one sub-stream — graceful
// degradation. P(≥ j sub-streams) is exactly the flow reliability with
// demand j, so every column is an exact computation.
func e9() {
	const p = 0.05
	fmt.Printf("%-26s %-4s %-12s %-14s %-12s\n", "overlay", "d", "P(full)", "P(≥ half)", "E[fraction]")

	report := func(name string, g *graph.Graph, s, t graph.NodeID, d int) {
		pFull := must(reliability.Factoring(g, graph.Demand{S: s, T: t, D: d}, reliability.Options{})).Reliability
		half := (d + 1) / 2
		pHalf := must(reliability.Factoring(g, graph.Demand{S: s, T: t, D: half}, reliability.Options{})).Reliability
		// E[min(F,d)]/d = (1/d)·Σ_{j=1..d} P(F ≥ j).
		frac := 0.0
		for j := 1; j <= d; j++ {
			frac += must(reliability.Factoring(g, graph.Demand{S: s, T: t, D: j}, reliability.Options{})).Reliability
		}
		frac /= float64(d)
		fmt.Printf("%-26s %-4d %-12.6f %-14.6f %-12.6f\n", name, d, pFull, pHalf, frac)
	}

	single := must(overlay.Tree(2, 3, 2, p))
	deep := single.Peers[len(single.Peers)-1]
	report("single tree (depth 3)", single.G, single.Source, deep, 2)
	for _, trees := range []int{2, 3} {
		o := must(overlay.MultiTree(12, trees, 2, p))
		peer := o.Peers[len(o.Peers)-1]
		report(fmt.Sprintf("multi-tree (%d stripes)", trees), o.G, o.Source, peer, trees)
	}
	fmt.Println("(single tree is all-or-nothing: P(full) = P(≥half) = E[fraction];")
	fmt.Println(" stripes degrade gracefully: losing a link costs one sub-stream, not the stream)")
}

// e10 cross-validates the exact engines against the streaming simulator.
func e10() {
	fmt.Printf("%-22s %-12s %-12s %-10s %-10s\n", "overlay", "exact", "simulated", "stderr", "|Δ|/σ")
	type inst struct {
		name string
		g    *graph.Graph
		dem  graph.Demand
	}
	f2 := overlay.Figure2()
	f4 := overlay.Figure4()
	cl := must(overlay.Clustered(4, 6, 2, 2, 2, 0.15, 3))
	insts := []inst{
		{"figure2 (d=1)", f2.G, f2.Demand(f2.Peers[len(f2.Peers)-1])},
		{"figure4 (d=2)", f4.G, f4.Demand(f4.Peers[0])},
		{"clustered (d=2)", cl.G, cl.Demand(cl.Peers[len(cl.Peers)-1])},
	}
	for _, in := range insts {
		exact := must(reliability.Factoring(in.g, in.dem, reliability.Options{}))
		rep := must(sim.Run(in.g, in.dem, sim.Config{Sessions: 200000, Seed: 17}))
		sigma := rep.StdErr
		if sigma == 0 {
			sigma = 1e-12
		}
		fmt.Printf("%-22s %-12.6f %-12.6f %-10.6f %-10.2f\n",
			in.name, exact.Reliability, rep.DeliveryRate, rep.StdErr,
			abs(exact.Reliability-rep.DeliveryRate)/sigma)
	}
}

// e13 quantifies the §II claim that tree overlays are fragile under peer
// churn while redundant topologies tolerate it: the same peer set, the
// same churn probability, three overlays, exact reliabilities via the
// node-splitting transformation.
func e13() {
	const churnP = 0.05
	fmt.Printf("%-26s %-8s %-14s\n", "overlay (links perfect)", "demand", "P(deep peer served)")
	type inst struct {
		name string
		o    *overlay.Overlay
	}
	tree := must(overlay.Tree(2, 3, 1, 0))
	mt := must(overlay.MultiTree(14, 2, 2, 0))
	mesh := must(overlay.Mesh(14, 3, 2, 1, 0, 5))
	for _, in := range []inst{{"single tree (depth 3)", tree}, {"multi-tree (2 stripes)", mt}, {"mesh (in-degree 3)", mesh}} {
		o := in.o
		deep := o.Peers[len(o.Peers)-1]
		var peers []churn.Peer
		for _, p := range o.Peers {
			if p != deep { // the observed subscriber itself stays
				peers = append(peers, churn.Peer{Node: p, PFail: churnP})
			}
		}
		ci, err := churn.Transform(o.G, o.Demand(deep), peers)
		if err != nil {
			fmt.Printf("%-26s transform failed: %v\n", in.name, err)
			continue
		}
		res, err := reliability.Factoring(ci.G, ci.Demand, reliability.Options{})
		if err != nil {
			fmt.Printf("%-26s solve failed: %v\n", in.name, err)
			continue
		}
		fmt.Printf("%-26s d=%-6d %-14.6f\n", in.name, o.Substreams, res.Reliability)
	}
	fmt.Println("(5% peer churn, perfect links: the mesh's redundant feeds absorb churn that")
	fmt.Println(" costs the tree every ancestor on the path)")
}

// e14 computes the reliability polynomial of the Fig. 2 graph and sweeps
// the uniform link failure probability.
func e14() {
	o := overlay.Figure2()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	P, err := poly.Compute(o.G, dem, reliability.Options{})
	if err != nil {
		fmt.Println("failed:", err)
		return
	}
	fmt.Printf("N_i (admitting configurations by operational-link count): %v\n", P.Admitting)
	fmt.Printf("smallest admitting link set: %d links; smallest disconnecting set: %d link(s)\n",
		P.MinAdmittingLinks(), P.MinDisconnectingLinks())
	fmt.Printf("%-8s %-14s %-14s\n", "p", "R(p)", "naive check")
	for _, p := range []float64{0.01, 0.05, 0.1, 0.2, 0.4} {
		b := graph.NewBuilder()
		b.AddNodes(o.G.NumNodes())
		for _, e := range o.G.Edges() {
			b.AddEdge(e.U, e.V, e.Cap, p)
		}
		check := must(reliability.Naive(b.MustBuild(), dem, reliability.Options{}))
		fmt.Printf("%-8.2f %-14.8f %-14.8f\n", p, P.Eval(p), check.Reliability)
	}
}

// e15 puts the two cross-cluster links of a clustered overlay into one
// shared-risk group: correlation erases exactly the redundancy the second
// link was supposed to buy.
func e15() {
	o := must(overlay.Clustered(5, 8, 2, 1, 2, 0.05, 6))
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	base := must(reliability.Factoring(o.G, dem, reliability.Options{}))
	fmt.Printf("clustered overlay, 2 cross-cluster links, d=1; independent R = %.6f\n", base.Reliability)
	fmt.Printf("%-12s %-14s %-12s\n", "conduit p", "R (correlated)", "ΔR")
	for _, pc := range []float64{0.01, 0.05, 0.1, 0.2} {
		groups := []srlg.Group{{PFail: pc, Links: o.Bottleneck}}
		r, err := srlg.Reliability(o.G, dem, groups, nil)
		if err != nil {
			fmt.Println("failed:", err)
			return
		}
		fmt.Printf("%-12.2f %-14.6f %+.6f\n", pc, r, r-base.Reliability)
	}
	fmt.Println("(both bottleneck links share a conduit: its failure probability subtracts")
	fmt.Println(" almost 1:1 from the reliability, regardless of per-link redundancy)")
}

// e16 ranks links by Birnbaum importance on a clustered overlay and
// relates the ranking to cut structure: single-link minimal cuts (bridges,
// RDown = 0) must top the list, members of small minimal cuts follow, and
// links on no small cut trail far behind — importance analysis rediscovers
// the bottleneck structure the decomposition exploits.
func e16() {
	o := must(overlay.Clustered(5, 8, 2, 1, 2, 0.1, 6))
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	imps := must(reliability.BirnbaumImportance(o.G, dem, reliability.Options{}))
	sort.Slice(imps, func(i, j int) bool { return imps[i].Birnbaum > imps[j].Birnbaum })

	// Smallest minimal cut each link belongs to (0 = none of size ≤ 2).
	cutSize := map[graph.EdgeID]int{}
	for _, cut := range mincut.EnumerateMinimal(o.G, dem.S, dem.T, 2) {
		for _, e := range cut {
			if cutSize[e] == 0 || len(cut) < cutSize[e] {
				cutSize[e] = len(cut)
			}
		}
	}
	planted := map[graph.EdgeID]bool{}
	for _, e := range o.Bottleneck {
		planted[e] = true
	}
	fmt.Printf("planted bottleneck links: %v\n", o.Bottleneck)
	fmt.Printf("%-6s %-8s %-12s %-12s %-14s %-8s\n", "rank", "link", "Birnbaum", "achievable", "min-cut size", "planted")
	for rank, imp := range imps {
		if rank >= 6 {
			break
		}
		cs := "-"
		if c := cutSize[imp.Link]; c > 0 {
			cs = fmt.Sprint(c)
		}
		fmt.Printf("%-6d %-8d %-12.6f %-12.6f %-14s %-8v\n",
			rank+1, imp.Link, imp.Birnbaum, imp.Improvement, cs, planted[imp.Link])
	}
	// Structural check: every top-ranked link lies on a small minimal cut,
	// and bridges (cut size 1) dominate everything else.
	bad := false
	for _, imp := range imps[:4] {
		if cutSize[imp.Link] == 0 {
			bad = true
		}
	}
	if bad {
		fmt.Println("NOTE: a link on no small cut reached the top ranks — unexpected")
	} else {
		fmt.Println("(all top-ranked links lie on minimal cuts of ≤ 2 links; bridges rank first,")
		fmt.Println(" then the planted 2-link bottleneck — the operator's hardening priority list)")
	}
}

// e17 runs the event-driven alternating-renewal simulator on the Fig. 2
// graph and checks the renewal-reward identity: long-run availability =
// static reliability at p = MTTR/(MTBF+MTTR) — plus the dynamics (outage
// rate and duration) that no static number carries.
func e17() {
	const mtbf, mttr = 20.0, 3.0
	p := sim.PFailFromMTBF(mtbf, mttr)
	o := overlay.Figure2()
	b := graph.NewBuilder()
	b.AddNodes(o.G.NumNodes())
	for _, e := range o.G.Edges() {
		b.AddEdge(e.U, e.V, e.Cap, p)
	}
	g := b.MustBuild()
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	static := must(reliability.Naive(g, dem, reliability.Options{}))
	fmt.Printf("MTBF=%.0f MTTR=%.0f → steady-state p=%.4f; static reliability %.6f\n",
		mtbf, mttr, p, static.Reliability)
	fmt.Printf("%-10s %-14s %-16s %-12s %-10s\n", "horizon", "availability", "interruptions", "mean outage", "|Δ|")
	for _, horizon := range []float64{1e3, 1e4, 1e5, 1e6} {
		rep, err := sim.Continuous(g, dem, sim.ContinuousConfig{
			Dynamics: sim.UniformDynamics(g, mtbf, mttr),
			Horizon:  horizon,
			Seed:     7,
		})
		if err != nil {
			fmt.Println("failed:", err)
			return
		}
		fmt.Printf("%-10.0f %-14.6f %-16d %-12.3f %-10.4f\n",
			horizon, rep.Availability, rep.Interruptions, rep.MeanOutage,
			abs(rep.Availability-static.Reliability))
	}
	fmt.Println("(availability converges to the static value — renewal-reward — while the")
	fmt.Println(" outage rate and duration are information the static number cannot give)")
}

// a1 times the two accumulation strategies at growing |D|. The direct
// scan costs Θ(2^{|D|}·2^{|E_side|}) while the zeta aggregation costs
// Θ(|D|·2^{|D|} + 2^{|E_side|}); the gap opens as |D| grows.
func a1() {
	fmt.Printf("%-6s %-6s %-6s %-12s %-12s %-10s\n", "d", "capE", "|D|", "t_direct", "t_zeta", "speedup")
	for _, row := range [][2]int{{2, 2}, {5, 3}, {6, 3}, {7, 4}} {
		d, capE := row[0], row[1]
		g, dem, cut := a1Instance(d, capE)
		t0 := time.Now()
		direct, err := core.Reliability(g, dem, core.Options{Bottleneck: cut, Accum: core.AccumDirect, MaxAssignmentSet: 62})
		if err != nil {
			fmt.Println("  direct failed:", err)
			continue
		}
		tD := time.Since(t0)
		t1 := time.Now()
		zeta, err := core.Reliability(g, dem, core.Options{Bottleneck: cut, Accum: core.AccumZeta, MaxAssignmentSet: 62})
		if err != nil {
			fmt.Println("  zeta failed:", err)
			continue
		}
		tZ := time.Since(t1)
		if abs(direct.Reliability-zeta.Reliability) > 1e-9 {
			fmt.Printf("MISMATCH d=%d: %.12f vs %.12f\n", d, direct.Reliability, zeta.Reliability)
			continue
		}
		fmt.Printf("%-6d %-6d %-6d %-12s %-12s %.2fx\n",
			d, capE, len(direct.Assignments), tD.Round(time.Microsecond), tZ.Round(time.Microsecond),
			float64(tD)/float64(tZ))
	}
}

// a1Instance builds a fixed two-cluster graph with three bottleneck links
// of capacity capE each (so |D| is the number of compositions of d into
// three parts ≤ capE) and 10 generously sized links per side.
func a1Instance(d, capE int) (*graph.Graph, graph.Demand, []graph.EdgeID) {
	b := graph.NewBuilder()
	s := b.AddNamedNode("s")
	a := b.AddNode()
	c := b.AddNode()
	x := make([]graph.NodeID, 3)
	y := make([]graph.NodeID, 3)
	for i := range x {
		x[i] = b.AddNode()
	}
	for i := range y {
		y[i] = b.AddNode()
	}
	e := b.AddNode()
	f := b.AddNode()
	t := b.AddNamedNode("t")
	big := d + capE
	p := 0.1
	// Source side (10 links).
	b.AddEdge(s, a, big, p)
	b.AddEdge(s, c, big, p)
	b.AddEdge(s, x[0], capE, p)
	b.AddEdge(a, x[0], capE, p)
	b.AddEdge(a, x[1], capE, p)
	b.AddEdge(c, x[1], capE, p)
	b.AddEdge(c, x[2], capE, p)
	b.AddEdge(s, x[2], capE, p)
	b.AddEdge(a, c, capE, p)
	b.AddEdge(c, x[0], capE, p)
	// Bottleneck links.
	cut := make([]graph.EdgeID, 3)
	for i := range cut {
		cut[i] = b.AddEdge(x[i], y[i], capE, 0.05)
	}
	// Sink side (10 links), mirrored.
	b.AddEdge(y[0], e, capE, p)
	b.AddEdge(y[0], t, capE, p)
	b.AddEdge(y[1], e, capE, p)
	b.AddEdge(y[1], f, capE, p)
	b.AddEdge(y[2], f, capE, p)
	b.AddEdge(y[2], t, capE, p)
	b.AddEdge(e, t, big, p)
	b.AddEdge(f, t, big, p)
	b.AddEdge(e, f, capE, p)
	b.AddEdge(y[0], f, capE, p)
	return b.MustBuild(), graph.Demand{S: s, T: t, D: d}, cut
}

// a2 times the three side-array engines.
func a2() {
	fmt.Printf("%-6s %-14s %-14s %-14s %-16s %-16s\n",
		"|E|", "t_binary", "t_graycode", "t_frontier", "units_binary", "pruned_frontier")
	for _, side := range []int{6, 8, 10} {
		o, err := overlay.Clustered(side, side+4, 2, 2, 2, 0.1, int64(side))
		if err != nil {
			continue
		}
		dem := o.Demand(o.Peers[len(o.Peers)-1])
		t0 := time.Now()
		rc, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck, Side: core.SideBinary})
		if err != nil {
			continue
		}
		tR := time.Since(t0)
		t1 := time.Now()
		gc, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck, Side: core.SideGrayCode})
		if err != nil {
			continue
		}
		tG := time.Since(t1)
		t2 := time.Now()
		fr, err := core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck, Side: core.SideFrontier})
		if err != nil {
			continue
		}
		tF := time.Since(t2)
		if abs(rc.Reliability-gc.Reliability) > 1e-9 || abs(rc.Reliability-fr.Reliability) > 1e-9 {
			fmt.Printf("MISMATCH |E|=%d\n", o.G.NumEdges())
			continue
		}
		fmt.Printf("%-6d %-14s %-14s %-14s %-16d %-16d\n",
			o.G.NumEdges(), tR.Round(time.Microsecond), tG.Round(time.Microsecond),
			tF.Round(time.Microsecond), rc.Stats.AugmentUnits,
			fr.Stats.PrunedCapacity+fr.Stats.PrunedClosure)
	}
	fmt.Println("(Gray code repairs instead of recomputing; the frontier skips most")
	fmt.Println(" max-flow calls outright via the capacity bound and superset closure)")
}

// a3 compares all exact engines on one instance.
func a3() {
	o := must(overlay.Clustered(7, 11, 2, 2, 2, 0.1, 5))
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	fmt.Printf("instance: %d links, demand d=%d\n", o.G.NumEdges(), dem.D)
	fmt.Printf("%-12s %-16s %-12s %-14s\n", "engine", "reliability", "time", "configs")
	type row struct {
		name string
		r    float64
		t    time.Duration
		c    uint64
	}
	var rows []row
	t0 := time.Now()
	nv := must(reliability.Naive(o.G, dem, reliability.Options{}))
	rows = append(rows, row{"naive", nv.Reliability, time.Since(t0), nv.Stats.Configs})
	t0 = time.Now()
	ng := must(reliability.Naive(o.G, dem, reliability.Options{GrayCode: true}))
	rows = append(rows, row{"naive-gray", ng.Reliability, time.Since(t0), ng.Stats.Configs})
	t0 = time.Now()
	fc := must(reliability.Factoring(o.G, dem, reliability.Options{}))
	rows = append(rows, row{"factoring", fc.Reliability, time.Since(t0), fc.Stats.Configs})
	t0 = time.Now()
	cr := must(core.Reliability(o.G, dem, core.Options{Bottleneck: o.Bottleneck}))
	rows = append(rows, row{"core", cr.Reliability, time.Since(t0), cr.Stats.SideConfigs[0] + cr.Stats.SideConfigs[1]})
	sort.Slice(rows, func(i, j int) bool { return rows[i].t < rows[j].t })
	for _, r := range rows {
		fmt.Printf("%-12s %-16.12f %-12s %-14d\n", r.name, r.r, r.t.Round(time.Microsecond), r.c)
	}
}

// a4 shows Monte Carlo convergence toward the exact value.
func a4() {
	o := overlay.Figure4()
	dem := o.Demand(o.Peers[0])
	exact := must(reliability.Naive(o.G, dem, reliability.Options{})).Reliability
	fmt.Printf("exact = %.6f\n", exact)
	fmt.Printf("%-10s %-12s %-10s %-8s\n", "samples", "estimate", "stderr", "|Δ|/σ")
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		est := must(reliability.MonteCarlo(o.G, dem, n, 5, reliability.Options{}))
		sigma := est.StdErr
		if sigma == 0 {
			sigma = 1e-12
		}
		fmt.Printf("%-10d %-12.6f %-10.6f %-8.2f\n", n, est.Reliability, est.StdErr, abs(est.Reliability-exact)/sigma)
	}
}

// e11 measures the chain-decomposition extension: on a chain of b blocks,
// the single-cut algorithm must enumerate everything on one side of its
// best cut (≈ half the graph), while the chain solver pays only the sum
// of per-block enumerations.
func e11() {
	fmt.Printf("%-8s %-6s %-8s %-12s %-12s %-12s %-14s\n",
		"blocks", "|E|", "cuts", "t_naive", "t_core", "t_chain", "agreement")
	for _, blocks := range []int{2, 3, 4, 5} {
		o, cuts, err := overlay.Chain(blocks, 3, 2, 2, 2, 2, 0.1, int64(blocks))
		if err != nil {
			fmt.Println("  generation failed:", err)
			continue
		}
		dem := o.Demand(o.Peers[len(o.Peers)-1])
		m := o.G.NumEdges()

		t0 := time.Now()
		ch, err := chain.Solve(o.G, dem, cuts, chain.Options{})
		if err != nil {
			fmt.Printf("%-8d chain failed: %v\n", blocks, err)
			continue
		}
		tChain := time.Since(t0)

		tCoreS := "-"
		agree := true
		t1 := time.Now()
		cr, err := core.Reliability(o.G, dem, core.Options{Bottleneck: cuts[0], MaxSideEdges: 40})
		if err == nil {
			tCoreS = time.Since(t1).Round(time.Microsecond).String()
			agree = agree && abs(cr.Reliability-ch.Reliability) < 1e-9
		}

		tNaiveS := "-"
		if m <= 24 {
			t2 := time.Now()
			nv, err := reliability.Naive(o.G, dem, reliability.Options{})
			if err == nil {
				tNaiveS = time.Since(t2).Round(time.Microsecond).String()
				agree = agree && abs(nv.Reliability-ch.Reliability) < 1e-9
			}
		}
		fmt.Printf("%-8d %-6d %-8d %-12s %-12s %-12s %-14v\n",
			blocks, m, len(ch.Cuts), tNaiveS, tCoreS, tChain.Round(time.Microsecond), agree)
	}
	fmt.Println("(core uses the first planted cut: one side still holds all remaining blocks,")
	fmt.Println(" so its cost grows as 2^{(b-1)/b·|E|}; the chain solver's as b·2^{|E|/b})")
}

// e12 measures service-level reliability: the probability that every
// subscriber receives the full stream, versus the weakest single
// subscriber's marginal (Edmonds' theorem makes the per-target max-flow
// criterion exact for replicated push delivery).
func e12() {
	fmt.Printf("%-26s %-6s %-14s %-14s %-14s\n", "overlay", "d", "all-receive", "min marginal", "mean marginal")
	type inst struct {
		name string
		o    *overlay.Overlay
	}
	tree := must(overlay.Tree(2, 3, 1, 0.03))
	mt2 := must(overlay.MultiTree(8, 2, 2, 0.03))
	// d=1 for the mesh: its first peer has a single feed link, so d=2
	// multicast is structurally impossible there.
	mesh := must(overlay.Mesh(8, 2, 2, 1, 0.03, 7))
	for _, in := range []inst{{"single tree (14 peers)", tree}, {"multi-tree (8 peers)", mt2}, {"mesh (8 peers)", mesh}} {
		d := in.o.Substreams
		all, err := multicast.Naive(in.o.G, in.o.Source, in.o.Peers, d, reliability.Options{})
		if err != nil {
			fmt.Printf("%-26s failed: %v\n", in.name, err)
			continue
		}
		per, err := multicast.PerTarget(in.o.G, in.o.Source, in.o.Peers, d, reliability.Options{})
		if err != nil {
			continue
		}
		minP, sum := 1.0, 0.0
		for _, r := range per {
			if r < minP {
				minP = r
			}
			sum += r
		}
		fmt.Printf("%-26s %-6d %-14.6f %-14.6f %-14.6f\n",
			in.name, d, all.Reliability, minP, sum/float64(len(per)))
	}
	fmt.Println("(per-subscriber numbers flatter the system: serving *everyone* at once is")
	fmt.Println(" strictly harder than serving the weakest subscriber)")
}

// a5 quantifies the exact-reduction preprocessing.
func a5() {
	fmt.Printf("%-26s %-10s %-10s %-12s %-12s %-10s\n",
		"instance", "|E| before", "|E| after", "t_direct", "t_reduced", "agreement")
	type inst struct {
		name string
		g    *graph.Graph
		dem  graph.Demand
	}
	tree := must(overlay.Tree(2, 4, 1, 0.05))
	mt := must(overlay.MultiTree(10, 2, 2, 0.05))
	cl := must(overlay.Clustered(5, 8, 2, 2, 2, 0.1, 6))
	insts := []inst{
		{"tree depth 4 (one peer)", tree.G, tree.Demand(tree.Peers[len(tree.Peers)-1])},
		{"multi-tree 10 peers", mt.G, mt.Demand(mt.Peers[len(mt.Peers)-1])},
		{"clustered", cl.G, cl.Demand(cl.Peers[len(cl.Peers)-1])},
	}
	for _, in := range insts {
		red, err := reduce.Apply(in.g, in.dem)
		if err != nil {
			fmt.Println("  reduce failed:", err)
			continue
		}
		t0 := time.Now()
		direct, err := reliability.Factoring(in.g, in.dem, reliability.Options{})
		if err != nil {
			continue
		}
		tD := time.Since(t0)
		t1 := time.Now()
		reduced, err := reliability.Factoring(red.G, red.Demand, reliability.Options{})
		if err != nil {
			continue
		}
		tR := time.Since(t1)
		fmt.Printf("%-26s %-10d %-10d %-12s %-12s %-10v\n",
			in.name, in.g.NumEdges(), red.G.NumEdges(),
			tD.Round(time.Microsecond), tR.Round(time.Microsecond),
			abs(direct.Reliability-reduced.Reliability) < 1e-9)
	}
}

// a6 shows most-probable-states bounds collapsing with the failure budget.
func a6() {
	o := must(overlay.Clustered(6, 10, 2, 2, 2, 0.05, 9))
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	exact := must(reliability.Factoring(o.G, dem, reliability.Options{}))
	fmt.Printf("instance: %d links, p=0.05/link; exact = %.8f\n", o.G.NumEdges(), exact.Reliability)
	fmt.Printf("%-8s %-12s %-12s %-12s %-12s\n", "budget", "lower", "upper", "width", "configs")
	for _, l := range []int{0, 1, 2, 3, 4} {
		t0 := time.Now()
		bd, err := reliability.MostProbableStates(o.G, dem, l)
		if err != nil {
			continue
		}
		_ = t0
		configs := int64(1)
		for i, c := 1, int64(1); i <= l; i++ {
			c = c * int64(o.G.NumEdges()-i+1) / int64(i)
			configs += c
		}
		fmt.Printf("%-8d %-12.8f %-12.8f %-12.2e %-12d\n", l, bd.Lower, bd.Upper, bd.Upper-bd.Lower, configs)
		if bd.Lower > exact.Reliability+1e-9 || exact.Reliability > bd.Upper+1e-9 {
			fmt.Println("  BOUNDS VIOLATED")
		}
	}
	fmt.Println("(the interval width is exactly the probability of deeper failure patterns,")
	fmt.Println(" so a handful of layers certify many digits on reliable networks)")
}

// a7 demonstrates the anytime layer: the same instance solved by the
// factoring engine under shrinking configuration budgets. Every
// interrupted run certifies an interval [lo, hi] from the branch mass it
// proved admitting and failing; the interval narrows monotonically with
// the budget and collapses to the exact value when the budget suffices.
func a7() {
	o := must(overlay.Clustered(12, 22, 2, 2, 2, 0.1, 9))
	dem := o.Demand(o.Peers[len(o.Peers)-1])
	exact := must(reliability.Factoring(o.G, dem, reliability.Options{}))
	fmt.Printf("instance: %d links, p=0.1/link; exact = %.8f (%d factoring configs)\n",
		o.G.NumEdges(), exact.Reliability, exact.Stats.Configs)
	budgets := []uint64{64, 128, 256, 512, 768, 0}
	if *cfgsFlag > 0 {
		budgets = append([]uint64{*cfgsFlag}, budgets...)
	}
	fmt.Printf("%-10s %-12s %-12s %-12s %s\n", "budget", "lower", "upper", "width", "stopped by")
	for _, b := range budgets {
		ctl := anytime.New(context.Background(), anytime.Budget{MaxConfigs: b})
		res, err := reliability.Factoring(o.G, dem, reliability.Options{Parallelism: 1, Ctl: ctl})
		if err != nil {
			fmt.Printf("%-10d ERROR %v\n", b, err)
			continue
		}
		label, reason := fmt.Sprintf("%d", b), "—"
		if b == 0 {
			label = "∞"
		}
		if res.Partial {
			reason = res.Reason
		}
		fmt.Printf("%-10s %-12.8f %-12.8f %-12.2e %s\n", label, res.Lo, res.Hi, res.Hi-res.Lo, reason)
		if res.Lo > exact.Reliability+1e-9 || exact.Reliability > res.Hi+1e-9 {
			fmt.Println("  BOUNDS VIOLATED")
		}
	}
	fmt.Println("(an interrupted run keeps everything it proved: the gap is exactly the")
	fmt.Println(" unexplored branch mass, so budget doublings narrow the interval for free)")
}

// a8 is the plan-reuse ablation: the compile/evaluate split on the E7
// instance family. A 20-point probability sweep pays the O(2^{α|E|})
// side-array construction once as a compiled plan, then answers every
// point as a pure probability evaluation; the per-point column rebuilds
// the instance and pays a full solve at each scale factor.
func a8() {
	const points = 20
	fmt.Printf("%-6s %-12s %-12s %-14s %-14s %-8s\n",
		"|E|", "t_compile", "t_eval", "sweep20_cold", "sweep20_plan", "speedup")
	for _, side := range []int{4, 6, 8, 10} {
		o, err := overlay.Clustered(side, side+3, 2, 2, 2, 0.1, int64(side))
		if err != nil {
			fmt.Println("  generation failed:", err)
			continue
		}
		dem := o.Demand(o.Peers[len(o.Peers)-1])

		t0 := time.Now()
		plan, err := core.Compile(o.G, dem, core.Options{Bottleneck: o.Bottleneck})
		if err != nil {
			fmt.Printf("%-6d compile failed: %v\n", o.G.NumEdges(), err)
			continue
		}
		tCompile := time.Since(t0)

		base := plan.BasePFail()
		scales := make([]float64, points)
		scenarios := make([][]float64, points)
		for i := range scales {
			scales[i] = 2 * float64(i) / float64(points-1)
			pf := make([]float64, len(base))
			for j := range pf {
				pf[j] = math.Min(base[j]*scales[i], 0.999999)
			}
			scenarios[i] = pf
		}

		t1 := time.Now()
		planned := make([]float64, points)
		for i, pf := range scenarios {
			r, err := plan.Eval(pf)
			if err != nil {
				fmt.Printf("%-6d eval failed: %v\n", o.G.NumEdges(), err)
				continue
			}
			planned[i] = r
		}
		tPlanned := time.Since(t1)

		t2 := time.Now()
		mismatch := false
		for i, sc := range scales {
			b := graph.NewBuilder()
			for n := 0; n < o.G.NumNodes(); n++ {
				b.AddNamedNode(o.G.NodeName(graph.NodeID(n)))
			}
			for _, e := range o.G.Edges() {
				b.AddEdge(e.U, e.V, e.Cap, math.Min(e.PFail*sc, 0.999999))
			}
			res, err := core.Reliability(b.MustBuild(), dem, core.Options{Bottleneck: o.Bottleneck})
			if err != nil {
				fmt.Printf("%-6d cold solve failed: %v\n", o.G.NumEdges(), err)
				mismatch = true
				break
			}
			if abs(res.Reliability-planned[i]) > 1e-12 {
				fmt.Printf("%-6d MISMATCH at scale %.2f: plan %.15f cold %.15f\n",
					o.G.NumEdges(), sc, planned[i], res.Reliability)
				mismatch = true
			}
		}
		tCold := time.Since(t2)
		if mismatch {
			continue
		}
		fmt.Printf("%-6d %-12s %-12s %-14s %-14s %-8s\n",
			o.G.NumEdges(), tCompile.Round(time.Microsecond),
			(tPlanned / points).Round(time.Microsecond),
			tCold.Round(time.Microsecond),
			(tCompile + tPlanned).Round(time.Microsecond),
			fmt.Sprintf("%.1fx", float64(tCold)/float64(tCompile+tPlanned)))
	}
	fmt.Println("(every sweep point agrees with its cold solve to 1e-12; the planned")
	fmt.Println(" column pays the side arrays once and evaluates in microseconds after)")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max3dev(a, b, c float64) float64 {
	d1 := abs(a - b)
	if d2 := abs(a - c); d2 > d1 {
		d1 = d2
	}
	if d3 := abs(b - c); d3 > d1 {
		d1 = d3
	}
	return d1
}

func pow2(x float64) float64 { return math.Pow(2, x) }
