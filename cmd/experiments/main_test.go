package main

import "testing"

// TestCheapExperimentsRun smoke-tests the experiments that finish in
// milliseconds (the paper's worked examples); any internal disagreement in
// them panics via must or prints MISMATCH, and regressions in the heavier
// experiments are covered by the unit and property tests of the packages
// they exercise.
func TestCheapExperimentsRun(t *testing.T) {
	for name, fn := range map[string]func(){
		"E1": e1, "E2": e2, "E3": e3, "E4": e4, "E5": e5, "E6": e6,
		"E8": e8, "E12": e12, "E13": e13, "E14": e14, "E15": e15, "E16": e16, "E17": e17, "A7": a7,
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("experiment %s panicked: %v", name, r)
				}
			}()
			fn()
		})
	}
}
